// Top-k suggestion — the paper's future-work extension in action: given a
// misspelled name, return the k most similar database entries ranked by IDF
// similarity, with no threshold to tune.
//
//   $ topk_suggest [--records=N] [--k=N] "jonh smth" ...

#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/timer.h"
#include "core/selector.h"
#include "eval/experiment.h"
#include "gen/corpus.h"
#include "gen/error_model.h"

int main(int argc, char** argv) {
  using namespace simsel;
  const size_t num_records = FlagValue(argc, argv, "records", 20000);
  const size_t k = FlagValue(argc, argv, "k", 5);

  CorpusOptions co;
  co.num_records = num_records;
  co.min_words = 2;
  co.max_words = 2;  // first/last "names"
  co.vocab_size = 4000;
  co.seed = 3;
  Corpus corpus = GenerateCorpus(co);
  SimilaritySelector selector = SimilaritySelector::Build(corpus.records);
  std::printf("indexed %zu two-word names\n", corpus.records.size());

  std::vector<std::string> queries;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) queries.push_back(arg);
  }
  if (queries.empty()) {
    // Misspell a few database entries as demo queries.
    Rng rng(17);
    for (int i = 0; i < 4; ++i) {
      std::string name = corpus.records[rng.NextBounded(corpus.records.size())];
      queries.push_back(ApplyModifications(name, 2, &rng));
    }
  }

  for (const std::string& query : queries) {
    WallTimer timer;
    QueryResult r = selector.SelectTopK(query, k);
    std::printf("\n\"%s\" -> top-%zu in %.2f ms (read %llu/%llu postings)\n",
                query.c_str(), k, timer.ElapsedMillis(),
                (unsigned long long)r.counters.elements_read,
                (unsigned long long)r.counters.elements_total);
    for (const Match& m : r.matches) {
      std::printf("  %-28s %.3f\n", selector.collection().text(m.id).c_str(),
                  m.score);
    }
  }
  return 0;
}
