// Approximate word search — the paper's evaluation scenario (Section VIII):
// a table of word occurrences (IMDB-style actor/movie words) indexed by
// 3-grams; queries are misspelled words and the system returns every
// occurrence above a similarity threshold, comparing the algorithms' costs.
//
//   $ word_search [--words=N] "main" "stret" ...
//
// Without positional arguments a demonstration workload is used.

#include <cstdio>
#include <string>
#include <vector>

#include "common/timer.h"
#include "eval/experiment.h"
#include "gen/workload.h"

int main(int argc, char** argv) {
  using namespace simsel;
  BenchEnvOptions opts;
  opts.num_words = FlagValue(argc, argv, "words", 50000);
  opts.with_sql_baseline = false;
  std::printf("indexing %zu word occurrences...\n", opts.num_words);
  WallTimer build_timer;
  BenchEnv env = MakeBenchEnv(opts);
  std::printf("built in %.2fs (%zu distinct 3-grams, %llu postings)\n",
              build_timer.ElapsedSeconds(), env.selector->index().num_tokens(),
              (unsigned long long)env.selector->index().total_postings());

  // Collect queries: command-line words, or a generated misspelled workload.
  std::vector<std::string> queries;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) queries.push_back(arg);
  }
  if (queries.empty()) {
    WorkloadOptions wo;
    wo.num_queries = 5;
    wo.min_tokens = 8;
    wo.max_tokens = 16;
    wo.modifications = 1;
    Workload wl =
        GenerateWordWorkload(env.words, env.selector->tokenizer(), wo);
    queries = wl.queries;
  }

  const double tau = 0.65;
  const AlgorithmKind kinds[] = {AlgorithmKind::kSf, AlgorithmKind::kInra,
                                 AlgorithmKind::kSortById};
  for (const std::string& query : queries) {
    std::printf("\nquery: \"%s\" (tau=%.2f)\n", query.c_str(), tau);
    PreparedQuery q = env.selector->Prepare(query);
    for (AlgorithmKind kind : kinds) {
      WallTimer timer;
      QueryResult r = env.selector->SelectPrepared(q, tau, kind, {});
      std::printf("  %-11s %6.2f ms  %5zu matches  read %8llu/%llu elements\n",
                  AlgorithmKindName(kind), timer.ElapsedMillis(),
                  r.matches.size(),
                  (unsigned long long)r.counters.elements_read,
                  (unsigned long long)r.counters.elements_total);
    }
    QueryResult best = env.selector->SelectPrepared(
        q, tau, AlgorithmKind::kSf, {});
    size_t shown = 0;
    for (const Match& m : best.matches) {
      if (shown++ >= 5) break;
      std::printf("    -> %-20s score=%.3f\n",
                  env.selector->collection().text(m.id).c_str(), m.score);
    }
    if (best.matches.size() > shown) {
      std::printf("    ... and %zu more\n", best.matches.size() - shown);
    }
  }
  return 0;
}
