// Data cleaning scenario: detect duplicate records in a dirty customer
// table — the use case that motivates the paper (Section I).
//
//   $ data_cleaning [--records=N]
//
// A synthetic "customer" table is generated with known duplicates (each
// clean record is copied a few times with typos). For every record we run a
// set similarity selection against the whole table and group records into
// duplicate clusters. Precision/recall against the generator's ground truth
// are reported, along with the cost of doing the same with a full scan.

#include <algorithm>
#include <cstdio>
#include <functional>
#include <unordered_map>

#include "common/timer.h"
#include "core/selector.h"
#include "eval/experiment.h"
#include "gen/corpus.h"
#include "gen/error_model.h"

int main(int argc, char** argv) {
  using namespace simsel;
  const size_t num_clean = FlagValue(argc, argv, "records", 1000);

  // Generate the dirty table: 1 clean + 2 dirty copies per customer.
  CorpusOptions co;
  co.num_records = num_clean;
  co.min_words = 2;
  co.max_words = 3;
  co.vocab_size = num_clean * 2;
  co.seed = 11;
  Corpus corpus = GenerateCorpus(co);
  DirtyDatasetOptions dso;
  dso.level = 6;  // moderate errors
  dso.num_clean = num_clean;
  dso.duplicates_per_record = 2;
  LabeledDataset table = MakeDirtyDataset(corpus.records, dso);
  std::printf("customer table: %zu records (%zu clean, %zu dirty copies)\n",
              table.records.size(), table.num_clean,
              table.records.size() - table.num_clean);

  WallTimer build_timer;
  SimilaritySelector selector = SimilaritySelector::Build(table.records);
  std::printf("index built in %.2fs\n", build_timer.ElapsedSeconds());

  // Cluster by selection queries: records scoring >= tau are duplicates.
  const double tau = 0.7;
  WallTimer query_timer;
  std::vector<uint32_t> cluster(table.records.size());
  for (uint32_t i = 0; i < cluster.size(); ++i) cluster[i] = i;
  // Union-find over match edges.
  std::function<uint32_t(uint32_t)> find = [&](uint32_t x) {
    while (cluster[x] != x) x = cluster[x] = cluster[cluster[x]];
    return x;
  };
  uint64_t pairs = 0;
  AccessCounters total;
  for (uint32_t i = 0; i < table.records.size(); ++i) {
    QueryResult r = selector.Select(table.records[i], tau);
    total.Merge(r.counters);
    for (const Match& m : r.matches) {
      if (m.id == i) continue;
      ++pairs;
      uint32_t a = find(i), b = find(m.id);
      if (a != b) cluster[std::max(a, b)] = std::min(a, b);
    }
  }
  double secs = query_timer.ElapsedSeconds();
  std::printf("%zu selection queries in %.2fs (%.2f ms/query), "
              "%llu duplicate pairs flagged\n",
              table.records.size(), secs,
              1e3 * secs / table.records.size(), (unsigned long long)pairs);
  std::printf("pruning power: %.1f%% of list elements never read\n",
              100.0 * total.PruningPower());

  // Score clustering against ground truth (pairwise precision/recall).
  uint64_t tp = 0, fp = 0, fn = 0;
  std::unordered_map<uint32_t, std::vector<uint32_t>> by_root;
  for (uint32_t i = 0; i < cluster.size(); ++i) {
    by_root[find(i)].push_back(i);
  }
  for (const auto& [root, members] : by_root) {
    for (size_t a = 0; a < members.size(); ++a) {
      for (size_t b = a + 1; b < members.size(); ++b) {
        if (table.source[members[a]] == table.source[members[b]]) {
          ++tp;
        } else {
          ++fp;
        }
      }
    }
  }
  // Ground-truth pairs: each clean record with its duplicates: C(3,2) = 3.
  uint64_t truth_pairs = table.num_clean * 3;
  fn = truth_pairs > tp ? truth_pairs - tp : 0;
  double precision = tp + fp == 0 ? 0 : tp / static_cast<double>(tp + fp);
  double recall = tp / static_cast<double>(tp + fn);
  std::printf("pairwise precision=%.3f recall=%.3f (tau=%.2f)\n", precision,
              recall, tau);
  return 0;
}
