// simsel_cli — command-line front end for building, persisting and querying
// set similarity indexes over plain text files (one record per line).
//
//   simsel_cli build <records.txt> <index.simsel>
//       Tokenizes the file (3-grams), builds the inverted index and writes
//       it next to the records for later use.
//
//   simsel_cli query <records.txt> <index.simsel> <text> [--tau=75]
//              [--algo=sf|inra|hybrid|ita|sortbyid|pf] [--k=N]
//              [--deadline-ms=N] [--max-elements=N]
//       Loads the saved index (verifying it matches the records) and runs
//       one selection (or top-k when --k is given). --deadline-ms and
//       --max-elements bound the query; a tripped run prints its partial
//       result with the termination reason.
//
//   simsel_cli repl <records.txt> <index.simsel>
//       Interactive loop: one query per stdin line.
//
//   simsel_cli stats <records.txt> <index.simsel>
//       Prints the Figure 5-style size breakdown of the loaded index.
//
//   simsel_cli join <records.txt> <index.simsel> [--tau=75]
//       Self-join: lists duplicate clusters among the records.
//
//   simsel_cli serve <records.txt> ["<text>"] [--shards=N] [--cache-mb=M]
//       Scatter-gather serving: partitions the records into N shards, runs
//       each query across them on a thread pool and caches complete answers
//       in a versioned LRU result cache (see docs/ARCHITECTURE.md). One
//       query when <text> is given, otherwise a repl.
//
//   simsel_cli serve <records.txt> --dynamic [--cache-mb=M]
//              [--rebuild-every=N]
//       Writable serving: one DynamicSelector (main + delta segments)
//       behind the versioned result cache. Repl lines starting with `+`
//       insert a record, `!rebuild` folds the delta online; both proceed
//       concurrently with queries and invalidate the cache through the
//       selector version. --rebuild-every=N folds automatically in the
//       background once the delta holds N records.
//
//   simsel_cli serve <records.txt> --port=N [--listen=ADDR] [--max-queue=N]
//       Network serving: the same sharded (or --dynamic) back end behind a
//       TCP line-protocol front end (src/serve/server.h) with queue-depth
//       admission control, per-request deadline SLOs (--deadline-ms) and
//       element budgets (--max-elements). SIGTERM/ctrl-c drains gracefully:
//       in-flight requests finish and flush before the process exits.
//
//   simsel_cli --explain "<text>" [--tau 0.8] [--words=N] [--stats]
//       Builds a self-contained demo environment, runs the query with SF,
//       iNRA and Hybrid, and prints the per-phase trace (durations, item
//       counts) plus the access counters for each. With --stats the
//       process-wide metrics registry is dumped afterwards.
//
//   simsel_cli --stats
//       Runs a small demo workload and dumps the metrics registry in
//       Prometheus text exposition format.
//
// --tau accepts either form everywhere: a fraction (`--tau 0.8`,
// `--tau=0.8`) or a percentage (`--tau=75`). Anything else — trailing
// junk, non-finite values, τ <= 0, τ > 100 — is a usage error; the CLI is
// strict so a typo like `--tau=abc` cannot silently query at some default.
// Every numeric flag is parsed with the same strictness (full consumption,
// range validation — common/cli_flags.h): a malformed value prints one
// diagnostic line on stdout and exits 2 instead of running with a default.

#include <atomic>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <thread>

#include "common/cli_flags.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/selector.h"
#include "core/self_join.h"
#include "eval/experiment.h"
#include "gen/corpus.h"
#include "gen/workload.h"
#include "obs/export.h"
#include "obs/flight_recorder.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"
#include "obs/trace_export.h"
#include "serve/dynamic_serving.h"
#include "serve/server.h"
#include "serve/sharded_selector.h"

namespace {

using namespace simsel;

// One help text for both paths: `--help` prints it on stdout and exits 0;
// a usage error prints it on stderr and exits 2. scripts/check_docs.py
// cross-checks every flag the documentation mentions against this output.
constexpr char kHelp[] =
    "usage: simsel_cli <command> [options]\n"
    "\n"
    "commands:\n"
    "  build <records.txt> <index.simsel>        tokenize the records (one\n"
    "                                            per line) and save the index\n"
    "  query <records.txt> <index.simsel> <text> run one selection\n"
    "  repl  <records.txt> <index.simsel>        one query per stdin line\n"
    "  stats <records.txt> <index.simsel>        index size breakdown\n"
    "  join  <records.txt> <index.simsel>        self-join duplicate clusters\n"
    "  serve <records.txt> [<text>]              sharded scatter-gather\n"
    "                                            serving with a result cache;\n"
    "                                            runs one query when <text>\n"
    "                                            is given, else a repl; with\n"
    "                                            --dynamic the repl also\n"
    "                                            accepts `+<text>` inserts\n"
    "                                            and a `!rebuild` command\n"
    "  --explain \"<text>\"                        self-contained demo: per-\n"
    "                                            phase trace for SF/iNRA/\n"
    "                                            Hybrid on a synthetic corpus\n"
    "  --stats                                   demo workload, then dump the\n"
    "                                            metrics registry\n"
    "\n"
    "options:\n"
    "  --tau=X           threshold: a fraction in (0,1] or a percentage in\n"
    "                    (1,100]; `--tau X` also accepted (default 0.75)\n"
    "  --algo=NAME       sf|inra|hybrid|ita|ta|nra|sortbyid|pf|scan\n"
    "  --k=N             top-k mode instead of a threshold query\n"
    "  --deadline-ms=N   wall-clock bound; a tripped query returns its exact\n"
    "                    partial result with the termination reason\n"
    "  --max-elements=N  posting-read budget; partial results as above\n"
    "  --shards=N        (serve) number of index shards, default 4\n"
    "  --cache-mb=M      (serve) result cache capacity in MiB; 0 disables,\n"
    "                    default 64\n"
    "  --dynamic         (serve) writable single-index serving: a main+delta\n"
    "                    DynamicSelector behind the result cache; inserts\n"
    "                    (`+<text>` repl lines) and online rebuilds proceed\n"
    "                    concurrently with queries\n"
    "  --rebuild-every=N (serve --dynamic) fold the delta into the main\n"
    "                    segment in the background once it holds N records;\n"
    "                    0 (default) rebuilds only on the `!rebuild` command\n"
    "  --port=N          (serve) serve the line protocol on TCP port N\n"
    "                    instead of the stdin repl (0 picks an ephemeral\n"
    "                    port, printed on startup); SIGTERM or ctrl-c drains\n"
    "                    in-flight requests and exits cleanly\n"
    "  --listen=ADDR     (serve --port) bind address, default 127.0.0.1\n"
    "  --max-queue=N     (serve --port) admission bound: requests arriving\n"
    "                    while N admitted ones are queued or executing are\n"
    "                    shed immediately with a SHED response; 0 = no\n"
    "                    bound, default 64\n"
    "  --index-version=N (build) serialized index format: 4 (default;\n"
    "                    compressed posting blocks + sketch section), 3\n"
    "                    (compressed blocks, no sketches) or 2 (legacy\n"
    "                    uncompressed, for migration); `query`/`repl` read\n"
    "                    all three\n"
    "  --sketch-k=N      (build) MinHash signature components per set for\n"
    "                    the prefilter tier (default 256; 0 disables the\n"
    "                    sketch section entirely)\n"
    "  --no-sketches     (build) same as --sketch-k=0\n"
    "  --no-prefilter    (query/repl/serve) answer with the exact kernels\n"
    "                    only, never the sketch tier; results are identical\n"
    "                    either way (the tier is exact), so this is for\n"
    "                    accounting and ablation\n"
    "  --words=N         synthetic corpus size for --explain / --stats\n"
    "  --explain         with `query`: print the per-phase trace\n"
    "  --trace-out=FILE  (query/serve) record a span trace of each query and\n"
    "                    write it as Chrome trace-event JSON (load in\n"
    "                    chrome://tracing or Perfetto); the file holds the\n"
    "                    most recent query\n"
    "  --slow-query-usec=N  (serve) queries slower than N microseconds dump\n"
    "                    their full span tree and counters as one JSON line\n"
    "                    on stderr; tripped or failed queries always do\n"
    "  --stats-every=N   (serve) dump the metrics registry to stderr every N\n"
    "                    seconds while serving\n"
    "  --help            print this help and exit\n";

int Usage() {
  std::fputs(kHelp, stderr);
  return 2;
}

bool HasFlag(int argc, char** argv, const char* flag) {
  return cli::HasFlag(argc, argv, flag);
}

/// `--key=value` string flag; empty string when absent.
std::string StringFlag(int argc, char** argv, const char* key) {
  return cli::StringFlag(argc, argv, key);
}

/// Strict `--key=N` parse (common/cli_flags.h): full consumption and range
/// validation, diagnostic on stdout. Returns false on a malformed value —
/// the caller exits 2 so a typo like `--shards=4x` can never run with a
/// default it did not ask for.
bool StrictCount(int argc, char** argv, const char* key, uint64_t fallback,
                 uint64_t min_value, uint64_t max_value, size_t* out) {
  uint64_t v = 0;
  std::string error;
  if (!cli::ParseCountFlag(argc, argv, key, fallback, min_value, max_value, &v,
                           &error)) {
    std::printf("%s\n", error.c_str());
    return false;
  }
  *out = static_cast<size_t>(v);
  return true;
}

/// Writes `trace` as Chrome trace-event JSON; logs where it went.
void WriteTraceFile(const std::string& path, const obs::QueryTrace& trace) {
  if (obs::WriteTextFile(path, obs::ToChromeTraceJson(trace))) {
    std::fprintf(stderr, "trace written to %s (chrome://tracing)\n",
                 path.c_str());
  }
}

/// Parses --tau in either `--tau=X` or `--tau X` form into `*tau` via the
/// shared strict parser (common/cli_flags.h). A value in (0, 1] is a
/// fraction; one in (1, 100] is a percentage (the historical `--tau=75`
/// form). Returns false — with the diagnostic printed on stdout — on any
/// malformed value. The flag being absent is not an error (`*tau` keeps the
/// fallback).
bool ParseTau(int argc, char** argv, double fallback, double* tau) {
  std::string error;
  if (!cli::ParseTauFlag(argc, argv, fallback, tau, &error)) {
    std::printf("%s\n", error.c_str());
    return false;
  }
  return true;
}

AlgorithmKind ParseAlgo(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--algo=", 7) == 0) {
      std::string a = argv[i] + 7;
      if (a == "sf") return AlgorithmKind::kSf;
      if (a == "inra") return AlgorithmKind::kInra;
      if (a == "hybrid") return AlgorithmKind::kHybrid;
      if (a == "ita") return AlgorithmKind::kIta;
      if (a == "ta") return AlgorithmKind::kTa;
      if (a == "nra") return AlgorithmKind::kNra;
      if (a == "sortbyid") return AlgorithmKind::kSortById;
      if (a == "pf") return AlgorithmKind::kPrefixFilter;
      if (a == "scan") return AlgorithmKind::kLinearScan;
      std::fprintf(stderr, "unknown --algo=%s, using sf\n", a.c_str());
    }
  }
  return AlgorithmKind::kSf;
}

Result<SimilaritySelector> LoadSelector(const std::string& records_path,
                                        const std::string& index_path) {
  Result<Corpus> corpus = LoadCorpusFromFile(records_path);
  if (!corpus.ok()) return corpus.status();
  return SimilaritySelector::BuildWithSavedIndex(corpus->records, index_path);
}

void PrintMatches(const Collection& collection, const QueryResult& r,
                  double elapsed_ms) {
  std::printf("%zu matches in %.2f ms (read %llu/%llu postings)\n",
              r.matches.size(), elapsed_ms,
              (unsigned long long)r.counters.elements_read,
              (unsigned long long)r.counters.elements_total);
  if (!r.status.ok()) {
    std::printf("  !! query failed: %s\n", r.status.ToString().c_str());
  } else if (r.termination != Termination::kCompleted) {
    std::printf("  !! partial result (%s tripped) — matches shown are exact "
                "but may be incomplete\n",
                TerminationName(r.termination));
  }
  size_t shown = 0;
  for (const Match& m : r.matches) {
    if (shown++ >= 20) {
      std::printf("  ... and %zu more\n", r.matches.size() - shown + 1);
      break;
    }
    std::printf("  [%u] %-40s %.3f\n", m.id, collection.text(m.id).c_str(),
                m.score);
  }
}

int RunQuery(const SimilaritySelector& sel, const std::string& text,
             double tau, AlgorithmKind kind, size_t k, bool explain = false,
             size_t deadline_ms = 0, size_t max_elements = 0,
             const std::string& trace_out = "", bool prefilter = true) {
  obs::QueryTrace trace;
  SelectOptions options;
  options.prefilter = prefilter;
  if (explain || !trace_out.empty()) options.trace = &trace;
  // The deadline is absolute, so anchor it here, per call — in the repl
  // every line gets its own `deadline_ms` of wall time.
  if (deadline_ms > 0) {
    options.control.deadline =
        QueryControl::DeadlineAfterMillis(static_cast<int64_t>(deadline_ms));
  }
  options.control.max_elements_read = max_elements;
  WallTimer timer;
  QueryResult r = (k > 0) ? sel.SelectTopK(text, k, options)
                          : sel.Select(text, tau, kind, options);
  PrintMatches(sel.collection(), r, timer.ElapsedMillis());
  if (explain) {
    std::printf("%s", trace.ToString().c_str());
    std::printf("counters: %s\n", r.counters.ToString().c_str());
  }
  if (!trace_out.empty()) WriteTraceFile(trace_out, trace);
  return 0;
}

void DumpRegistry() {
  std::fputs(
      obs::ToPrometheusText(obs::MetricsRegistry::Global().Snapshot()).c_str(),
      stdout);
}

/// `--explain "<text>"`: self-contained trace demo. Builds a synthetic
/// word-occurrence environment (no files needed), runs the query with each
/// of the paper's main algorithms and prints the per-phase breakdown.
int RunExplain(int argc, char** argv) {
  std::string text;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tau") == 0 || std::strcmp(argv[i], "--k") == 0) {
      ++i;  // skip the flag's value
      continue;
    }
    if (std::strncmp(argv[i], "--", 2) == 0) continue;
    if (!text.empty()) text += ' ';
    text += argv[i];
  }
  double tau;
  if (!ParseTau(argc, argv, 0.8, &tau)) return Usage();
  BenchEnvOptions env_opts;
  env_opts.num_words = FlagValue(argc, argv, "words", 20000);
  std::fprintf(stderr, "building demo index over %zu word occurrences...\n",
               env_opts.num_words);
  BenchEnv env = MakeBenchEnv(env_opts);
  if (text.empty()) text = env.words[123];
  std::printf("query=\"%s\" tau=%.2f\n", text.c_str(), tau);
  for (AlgorithmKind kind : {AlgorithmKind::kSf, AlgorithmKind::kInra,
                             AlgorithmKind::kHybrid}) {
    obs::QueryTrace trace;
    SelectOptions options;
    options.trace = &trace;
    QueryResult r = env.selector->Select(text, tau, kind, options);
    std::printf("\n--- %s: %zu matches ---\n", AlgorithmKindName(kind),
                r.matches.size());
    std::printf("%s", trace.ToString().c_str());
    std::printf("counters: %s\n", r.counters.ToString().c_str());
  }
  if (HasFlag(argc, argv, "--stats")) {
    std::printf("\n# metrics registry\n");
    DumpRegistry();
  }
  return 0;
}

/// `--stats` with no other command: run a small demo workload so the dump
/// has content, then print the registry in Prometheus text format.
int RunStats(int argc, char** argv) {
  BenchEnvOptions env_opts;
  env_opts.num_words = FlagValue(argc, argv, "words", 20000);
  std::fprintf(stderr, "building demo index over %zu word occurrences...\n",
               env_opts.num_words);
  BenchEnv env = MakeBenchEnv(env_opts);
  WorkloadOptions wo;
  wo.num_queries = 25;
  Workload wl = GenerateWordWorkload(env.words, env.selector->tokenizer(), wo);
  for (AlgorithmKind kind : {AlgorithmKind::kSf, AlgorithmKind::kInra,
                             AlgorithmKind::kHybrid}) {
    for (const std::string& q : wl.queries) {
      env.selector->Select(q, 0.8, kind);
    }
  }
  DumpRegistry();
  return 0;
}

/// `serve <records.txt> --dynamic`: the writable serving front end. One
/// DynamicSelector (main + delta) behind the versioned result cache; repl
/// lines starting with `+` insert, `!rebuild` folds the delta online. Every
/// insert/rebuild bumps the selector version, which invalidates all cached
/// answers in O(1) — the cache line after each query makes that visible.
int RunServeDynamic(const Corpus& corpus, int argc, char** argv, double tau,
                    AlgorithmKind kind) {
  size_t cache_mb, rebuild_every, deadline_ms, max_elements;
  if (!StrictCount(argc, argv, "cache-mb", 64, 0, 1u << 16, &cache_mb) ||
      !StrictCount(argc, argv, "rebuild-every", 0, 0, UINT32_MAX,
                   &rebuild_every) ||
      !StrictCount(argc, argv, "deadline-ms", 0, 0, 86400000, &deadline_ms) ||
      !StrictCount(argc, argv, "max-elements", 0, 0, UINT64_MAX,
                   &max_elements)) {
    return 2;
  }

  const unsigned hw = std::thread::hardware_concurrency();
  ThreadPool pool(std::max(1u, (hw == 0 ? 2u : hw) - 1));
  serve::DynamicServingOptions so;
  so.cache_bytes = cache_mb << 20;
  so.rebuild_threshold = rebuild_every;
  so.pool = &pool;
  WallTimer build_timer;
  serve::DynamicServing serving(corpus.records, so);
  std::fprintf(stderr,
               "dynamic serving over %zu records (%zu MiB cache%s) — built "
               "in %.2fs\n",
               corpus.records.size(), cache_mb,
               rebuild_every > 0 ? ", auto-rebuild" : "",
               build_timer.ElapsedSeconds());

  const bool use_prefilter = !HasFlag(argc, argv, "--no-prefilter");
  auto run_one = [&](const std::string& text) {
    SelectOptions options;
    options.prefilter = use_prefilter;
    if (deadline_ms > 0) {
      options.control.deadline =
          QueryControl::DeadlineAfterMillis(static_cast<int64_t>(deadline_ms));
    }
    options.control.max_elements_read = max_elements;
    WallTimer timer;
    QueryResult r = serving.Select(text, tau, kind, options);
    std::printf("%zu matches in %.2f ms (version %llu, %zu in delta)\n",
                r.matches.size(), timer.ElapsedMillis(),
                (unsigned long long)r.snapshot_version,
                serving.selector().delta_size());
    if (!r.status.ok()) {
      std::printf("  !! query failed: %s\n", r.status.ToString().c_str());
    } else if (r.termination != Termination::kCompleted) {
      std::printf("  !! partial result (%s tripped%s)\n",
                  TerminationName(r.termination),
                  r.delta_covered ? "" : ", delta not covered");
    }
    size_t shown = 0;
    for (const Match& m : r.matches) {
      if (shown++ >= 20) {
        std::printf("  ... and %zu more\n", r.matches.size() - shown + 1);
        break;
      }
      std::printf("  [%u] %-40s %.3f\n", m.id,
                  serving.selector().text(m.id).c_str(), m.score);
    }
    if (serving.result_cache() != nullptr) {
      const serve::ResultCache& cache = *serving.result_cache();
      std::printf("  cache: %llu hits / %llu misses (%.1f%% hit rate, "
                  "%zu entries)\n",
                  (unsigned long long)cache.hits(),
                  (unsigned long long)cache.misses(), 100.0 * cache.HitRate(),
                  cache.entries());
    }
  };

  // One-shot query text, same convention as the sharded path.
  std::string text;
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tau") == 0) {
      ++i;
      continue;
    }
    if (std::strncmp(argv[i], "--", 2) == 0) continue;
    if (!text.empty()) text += ' ';
    text += argv[i];
  }
  if (!text.empty()) {
    run_one(text);
    return 0;
  }
  std::printf("tau=%.2f algo=%s dynamic — `+<text>` inserts, `!rebuild` "
              "folds the delta, any other line queries, ctrl-d to exit\n",
              tau, AlgorithmKindName(kind));
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.empty()) continue;
    if (line[0] == '+') {
      std::string record = line.substr(1);
      if (record.empty()) continue;
      SetId id = serving.AddRecord(std::move(record));
      std::printf("inserted [%u] (version %llu, %zu in delta)\n", id,
                  (unsigned long long)serving.version(),
                  serving.selector().delta_size());
      continue;
    }
    if (line == "!rebuild") {
      WallTimer timer;
      serving.Rebuild();
      std::printf("rebuilt in %.2fs (version %llu, %zu records)\n",
                  timer.ElapsedSeconds(),
                  (unsigned long long)serving.version(),
                  serving.selector().size());
      continue;
    }
    run_one(line);
  }
  serving.selector().WaitForRebuild();
  return 0;
}

/// Drain target of the SIGTERM/SIGINT handler. RequestStop is one
/// async-signal-safe eventfd write, so calling it from the handler is legal.
serve::Server* g_signal_server = nullptr;

void OnStopSignal(int) {
  if (g_signal_server != nullptr) g_signal_server->RequestStop();
}

/// `serve <records.txt> --port=N`: the network front end. The same sharded
/// (default) or --dynamic back end as the repl paths, behind the TCP line
/// protocol of serve/server.h: queue-depth admission control (--max-queue),
/// a per-request deadline SLO (--deadline-ms, anchored at admission), a
/// default per-tenant element budget (--max-elements), and graceful drain
/// on SIGTERM/SIGINT — stop accepting, finish and flush every admitted
/// request, then exit with a reconciliation summary.
int RunServeNetwork(const Corpus& corpus, int argc, char** argv,
                    const std::string& listen, uint16_t port) {
  size_t shards, cache_mb, rebuild_every, deadline_ms, max_elements, max_queue;
  if (!StrictCount(argc, argv, "shards", 4, 1, 256, &shards) ||
      !StrictCount(argc, argv, "cache-mb", 64, 0, 1u << 16, &cache_mb) ||
      !StrictCount(argc, argv, "rebuild-every", 0, 0, UINT32_MAX,
                   &rebuild_every) ||
      !StrictCount(argc, argv, "deadline-ms", 0, 0, 86400000, &deadline_ms) ||
      !StrictCount(argc, argv, "max-elements", 0, 0, UINT64_MAX,
                   &max_elements) ||
      !StrictCount(argc, argv, "max-queue", 64, 0, 1u << 20, &max_queue)) {
    return 2;
  }
  const bool dynamic = HasFlag(argc, argv, "--dynamic");

  const unsigned hw = std::thread::hardware_concurrency();
  // Two pools on purpose: the server's executor workers block on each
  // query's shard fan-out / rebuild, which must land on a *different* pool
  // (the nested-fan-out starvation rule, docs/CONCURRENCY.md).
  ThreadPool backend_pool(std::max(1u, (hw == 0 ? 2u : hw) - 1));

  serve::ServerOptions so;
  so.listen_addr = listen;
  so.port = port;
  so.num_workers = std::max(2u, hw == 0 ? 2u : hw);
  so.max_queue = max_queue;
  so.deadline_ms = deadline_ms;
  so.default_element_budget = max_elements;

  WallTimer build_timer;
  std::unique_ptr<serve::ShardedSelector> sharded;
  std::unique_ptr<serve::DynamicServing> dyn;
  std::unique_ptr<serve::Server> server;
  if (dynamic) {
    serve::DynamicServingOptions dso;
    dso.cache_bytes = cache_mb << 20;
    dso.rebuild_threshold = rebuild_every;
    dso.pool = &backend_pool;
    dyn = std::make_unique<serve::DynamicServing>(corpus.records, dso);
    server = std::make_unique<serve::Server>(dyn.get(), so);
  } else {
    serve::ShardedSelectorOptions sso;
    sso.num_shards = shards;
    sso.cache_bytes = cache_mb << 20;
    sharded = std::make_unique<serve::ShardedSelector>(
        serve::ShardedSelector::Build(corpus.records, sso));
    sharded->set_thread_pool(&backend_pool);
    server = std::make_unique<serve::Server>(sharded.get(), so);
  }
  Status st = server->Start();
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  g_signal_server = server.get();
  std::signal(SIGTERM, OnStopSignal);
  std::signal(SIGINT, OnStopSignal);
  // The bound port goes to stdout (scripts parse it; --port=0 is ephemeral).
  std::printf("listening on %s:%u (%s back end over %zu records, "
              "workers=%zu max-queue=%zu deadline-ms=%zu) — built in %.2fs\n",
              listen.c_str(), server->port(), dynamic ? "dynamic" : "sharded",
              corpus.records.size(), so.num_workers, max_queue, deadline_ms,
              build_timer.ElapsedSeconds());
  std::fflush(stdout);
  server->Join();
  g_signal_server = nullptr;
  std::printf("drained: ok=%llu partial=%llu shed=%llu err=%llu inserts=%llu "
              "in-flight=%zu\n",
              (unsigned long long)server->ok_count(),
              (unsigned long long)server->partial_count(),
              (unsigned long long)server->shed_count(),
              (unsigned long long)server->error_count(),
              (unsigned long long)server->insert_count(),
              server->queue_depth());
  if (dyn != nullptr) dyn->selector().WaitForRebuild();
  return server->queue_depth() == 0 ? 0 : 1;
}

/// `serve <records.txt> [<text>]`: the serving-layer front end. Builds a
/// ShardedSelector over the records (global statistics, per-shard indexes),
/// attaches a thread pool sized to the machine and a versioned result
/// cache, then answers one query (when <text> is given) or a repl loop.
/// Prints the cache's cumulative hit/miss line after every query so the
/// effect of repeats is visible interactively.
int RunServe(int argc, char** argv) {
  if (argc < 3) return Usage();
  Result<Corpus> corpus = LoadCorpusFromFile(argv[2]);
  if (!corpus.ok()) {
    std::fprintf(stderr, "%s\n", corpus.status().ToString().c_str());
    return 1;
  }
  double tau;
  if (!ParseTau(argc, argv, 0.75, &tau)) return Usage();
  AlgorithmKind kind = ParseAlgo(argc, argv);
  // --port switches to the network front end (tau/algo then arrive per
  // request over the wire). The UINT64_MAX fallback distinguishes "absent"
  // from an explicit --port=0 (ephemeral).
  size_t port_flag;
  if (!StrictCount(argc, argv, "port", UINT64_MAX, 0, 65535, &port_flag)) {
    return 2;
  }
  const std::string listen = StringFlag(argc, argv, "listen");
  if (port_flag != static_cast<size_t>(UINT64_MAX)) {
    return RunServeNetwork(*corpus, argc, argv,
                           listen.empty() ? "127.0.0.1" : listen,
                           static_cast<uint16_t>(port_flag));
  }
  if (!listen.empty()) {
    std::printf("--listen requires --port\n");
    return 2;
  }
  if (HasFlag(argc, argv, "--dynamic")) {
    return RunServeDynamic(*corpus, argc, argv, tau, kind);
  }
  size_t shards, cache_mb, deadline_ms, max_elements, slow_usec, stats_every;
  if (!StrictCount(argc, argv, "shards", 4, 1, 256, &shards) ||
      !StrictCount(argc, argv, "cache-mb", 64, 0, 1u << 16, &cache_mb) ||
      !StrictCount(argc, argv, "deadline-ms", 0, 0, 86400000, &deadline_ms) ||
      !StrictCount(argc, argv, "max-elements", 0, 0, UINT64_MAX,
                   &max_elements) ||
      !StrictCount(argc, argv, "slow-query-usec", 0, 0, UINT64_MAX,
                   &slow_usec) ||
      !StrictCount(argc, argv, "stats-every", 0, 0, 86400, &stats_every)) {
    return 2;
  }
  const std::string trace_out = StringFlag(argc, argv, "trace-out");

  // Tail sampling is always on; the flag adds a latency threshold and makes
  // captured records visible (tripped/failed queries are captured even
  // without it — the sink is what surfaces them here).
  if (slow_usec > 0) {
    obs::FlightRecorder::Global().set_slow_query_usec(
        static_cast<uint64_t>(slow_usec));
  }
  if (slow_usec > 0 || deadline_ms > 0 || max_elements > 0) {
    obs::FlightRecorder::Global().SetSlowQuerySink(
        [](const std::string& json) {
          std::fprintf(stderr, "slow-query: %s\n", json.c_str());
        });
  }

  serve::ShardedSelectorOptions so;
  so.num_shards = shards;
  so.cache_bytes = cache_mb << 20;
  WallTimer build_timer;
  serve::ShardedSelector sel =
      serve::ShardedSelector::Build(corpus->records, so);
  const unsigned hw = std::thread::hardware_concurrency();
  ThreadPool pool(std::max(1u, (hw == 0 ? 2u : hw) - 1));
  sel.set_thread_pool(&pool);
  std::fprintf(stderr,
               "serving %zu records over %zu shards (%zu MiB cache) — built "
               "in %.2fs\n",
               corpus->records.size(), sel.num_shards(), cache_mb,
               build_timer.ElapsedSeconds());

  // Periodic registry dump: a detached-looking but joined helper thread so
  // long repl sessions show their serving stats without a scrape endpoint.
  std::atomic<bool> stop_stats{false};
  std::thread stats_thread;
  if (stats_every > 0) {
    stats_thread = std::thread([&stop_stats, stats_every] {
      auto next = std::chrono::steady_clock::now() +
                  std::chrono::seconds(stats_every);
      while (!stop_stats.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        if (std::chrono::steady_clock::now() < next) continue;
        next += std::chrono::seconds(stats_every);
        std::string text =
            obs::ToPrometheusText(obs::MetricsRegistry::Global().Snapshot());
        std::fprintf(stderr, "--- metrics ---\n%s--- end metrics ---\n",
                     text.c_str());
      }
    });
  }

  const bool use_prefilter = !HasFlag(argc, argv, "--no-prefilter");
  auto run_one = [&](const std::string& text) {
    obs::QueryTrace trace;
    SelectOptions options;
    options.prefilter = use_prefilter;
    if (!trace_out.empty()) options.trace = &trace;
    if (deadline_ms > 0) {
      options.control.deadline =
          QueryControl::DeadlineAfterMillis(static_cast<int64_t>(deadline_ms));
    }
    options.control.max_elements_read = max_elements;
    WallTimer timer;
    QueryResult r = sel.Select(text, tau, kind, options);
    PrintMatches(sel.collection(), r, timer.ElapsedMillis());
    if (!trace_out.empty()) WriteTraceFile(trace_out, trace);
    if (sel.result_cache() != nullptr) {
      const serve::ResultCache& cache = *sel.result_cache();
      std::printf("  cache: %llu hits / %llu misses (%.1f%% hit rate, "
                  "%zu entries)\n",
                  (unsigned long long)cache.hits(),
                  (unsigned long long)cache.misses(), 100.0 * cache.HitRate(),
                  cache.entries());
    }
  };

  // Non-flag arguments after the records path form a one-shot query.
  std::string text;
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tau") == 0) {
      ++i;
      continue;
    }
    if (std::strncmp(argv[i], "--", 2) == 0) continue;
    if (!text.empty()) text += ' ';
    text += argv[i];
  }
  auto stop_stats_thread = [&] {
    if (stats_thread.joinable()) {
      stop_stats.store(true, std::memory_order_relaxed);
      stats_thread.join();
    }
  };
  if (!text.empty()) {
    run_one(text);
    stop_stats_thread();
    return 0;
  }
  std::printf("tau=%.2f algo=%s shards=%zu — one query per line, ctrl-d to "
              "exit\n",
              tau, AlgorithmKindName(kind), sel.num_shards());
  std::string line;
  while (std::getline(std::cin, line)) {
    if (!line.empty()) run_one(line);
  }
  stop_stats_thread();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (HasFlag(argc, argv, "--help")) {
    std::fputs(kHelp, stdout);
    return 0;
  }
  if (argc < 2) return Usage();
  std::string cmd = argv[1];

  if (HasFlag(argc, argv, "--explain") && cmd[0] == '-') {
    return RunExplain(argc, argv);
  }
  if (cmd == "--stats") return RunStats(argc, argv);
  if (cmd == "serve") return RunServe(argc, argv);

  if (cmd == "build") {
    if (argc < 4) return Usage();
    size_t version;
    if (!StrictCount(argc, argv, "index-version",
                     InvertedIndex::kVersionLatest, 0, 255, &version)) {
      return 2;
    }
    if (version != InvertedIndex::kVersionLegacy &&
        version != InvertedIndex::kVersionBlocks &&
        version != InvertedIndex::kVersionLatest) {
      std::fprintf(stderr, "bad --index-version value %zu: supported are %u "
                   "(legacy, uncompressed), %u (compressed blocks) and %u "
                   "(compressed blocks + sketch section)\n",
                   version, InvertedIndex::kVersionLegacy,
                   InvertedIndex::kVersionBlocks,
                   InvertedIndex::kVersionLatest);
      return 2;
    }
    BuildOptions build_opts;
    size_t sketch_k;
    if (!StrictCount(argc, argv, "sketch-k", build_opts.index.sketch.k, 0,
                     1u << 16, &sketch_k)) {
      return 2;
    }
    if (sketch_k == 0 || HasFlag(argc, argv, "--no-sketches")) {
      build_opts.index.build_sketches = false;
    } else {
      build_opts.index.sketch.k = static_cast<uint32_t>(sketch_k);
      // Keep bands * rows <= k as k shrinks; fewer bands raise the engage
      // bar rather than invalidating the family (see sketch/minhash.h).
      build_opts.index.sketch.bands = std::max<uint32_t>(
          1, static_cast<uint32_t>(sketch_k) / build_opts.index.sketch.rows);
    }
    Result<Corpus> corpus = LoadCorpusFromFile(argv[2]);
    if (!corpus.ok()) {
      std::fprintf(stderr, "%s\n", corpus.status().ToString().c_str());
      return 1;
    }
    WallTimer timer;
    SimilaritySelector sel =
        SimilaritySelector::Build(corpus->records, build_opts);
    Status st = sel.SaveIndex(argv[3], static_cast<uint32_t>(version));
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    const IndexFileStats fs =
        sel.index().EncodedStats(static_cast<uint32_t>(version));
    std::printf("indexed %zu records (%zu tokens, %llu postings) in %.2fs "
                "-> %s (format v%zu, sketch section %llu bytes)\n",
                corpus->records.size(), sel.index().num_tokens(),
                (unsigned long long)sel.index().total_postings(),
                timer.ElapsedSeconds(), argv[3], version,
                (unsigned long long)fs.sketch_payload_bytes);
    return 0;
  }

  if (cmd == "query" || cmd == "repl" || cmd == "stats" || cmd == "join") {
    if (argc < 4) return Usage();
    Result<SimilaritySelector> sel = LoadSelector(argv[2], argv[3]);
    if (!sel.ok()) {
      std::fprintf(stderr, "%s\n", sel.status().ToString().c_str());
      return 1;
    }
    if (cmd == "stats") {
      IndexSizeReport sizes = sel->Sizes();
      std::printf("base table        %10zu bytes\n", sizes.base_table);
      std::printf("inverted lists    %10zu bytes\n", sizes.inverted_lists);
      std::printf("skip lists        %10zu bytes\n", sizes.skip_lists);
      std::printf("extendible hash   %10zu bytes\n", sizes.extendible_hash);
      std::printf("sketches          %10zu bytes\n", sizes.sketches);
      return 0;
    }
    double tau;
    if (!ParseTau(argc, argv, 0.75, &tau)) return Usage();
    size_t k, deadline_ms, max_elements;
    if (!StrictCount(argc, argv, "k", 0, 0, 1u << 20, &k) ||
        !StrictCount(argc, argv, "deadline-ms", 0, 0, 86400000,
                     &deadline_ms) ||
        !StrictCount(argc, argv, "max-elements", 0, 0, UINT64_MAX,
                     &max_elements)) {
      return 2;
    }
    AlgorithmKind kind = ParseAlgo(argc, argv);
    bool explain = HasFlag(argc, argv, "--explain");
    if (cmd == "join") {
      WallTimer timer;
      SelfJoinResult joined = SelfJoin(*sel, tau);
      auto clusters = ClusterPairs(sel->collection().size(), joined.pairs);
      std::printf("%zu duplicate pairs, %zu clusters in %.2fs (tau=%.2f)\n",
                  joined.pairs.size(), clusters.size(),
                  timer.ElapsedSeconds(), tau);
      size_t shown = 0;
      for (const auto& cluster : clusters) {
        if (shown++ >= 15) {
          std::printf("  ... and %zu more clusters\n",
                      clusters.size() - shown + 1);
          break;
        }
        std::printf("  cluster of %zu:\n", cluster.size());
        for (SetId id : cluster) {
          std::printf("    [%u] %s\n", id, sel->collection().text(id).c_str());
        }
      }
      return 0;
    }
    if (cmd == "query") {
      if (argc < 5) return Usage();
      // Non-flag arguments after the index path form the query text
      // (values of space-separated flags like `--tau 0.8` are not text).
      std::string text;
      for (int i = 4; i < argc; ++i) {
        if (std::strcmp(argv[i], "--tau") == 0 ||
            std::strcmp(argv[i], "--k") == 0) {
          ++i;
          continue;
        }
        if (std::strncmp(argv[i], "--", 2) != 0) {
          if (!text.empty()) text += ' ';
          text += argv[i];
        }
      }
      if (text.empty()) return Usage();
      return RunQuery(*sel, text, tau, kind, k, explain, deadline_ms,
                      max_elements, StringFlag(argc, argv, "trace-out"),
                      !HasFlag(argc, argv, "--no-prefilter"));
    }
    // repl
    std::printf("tau=%.2f algo=%s%s — one query per line, ctrl-d to exit\n",
                tau, AlgorithmKindName(kind),
                k > 0 ? (" k=" + std::to_string(k)).c_str() : "");
    std::string line;
    while (std::getline(std::cin, line)) {
      if (line.empty()) continue;
      RunQuery(*sel, line, tau, kind, k, /*explain=*/false, deadline_ms,
               max_elements, StringFlag(argc, argv, "trace-out"),
               !HasFlag(argc, argv, "--no-prefilter"));
    }
    return 0;
  }

  return Usage();
}
