// simsel_cli — command-line front end for building, persisting and querying
// set similarity indexes over plain text files (one record per line).
//
//   simsel_cli build <records.txt> <index.simsel>
//       Tokenizes the file (3-grams), builds the inverted index and writes
//       it next to the records for later use.
//
//   simsel_cli query <records.txt> <index.simsel> <text> [--tau=75]
//              [--algo=sf|inra|hybrid|ita|sortbyid|pf] [--k=N]
//       Loads the saved index (verifying it matches the records) and runs
//       one selection (or top-k when --k is given).
//
//   simsel_cli repl <records.txt> <index.simsel>
//       Interactive loop: one query per stdin line.
//
//   simsel_cli stats <records.txt> <index.simsel>
//       Prints the Figure 5-style size breakdown of the loaded index.
//
//   simsel_cli join <records.txt> <index.simsel> [--tau=75]
//       Self-join: lists duplicate clusters among the records.

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "common/timer.h"
#include "core/selector.h"
#include "core/self_join.h"
#include "eval/experiment.h"
#include "gen/corpus.h"

namespace {

using namespace simsel;

int Usage() {
  std::fprintf(stderr,
               "usage: simsel_cli build <records.txt> <index.simsel>\n"
               "       simsel_cli query <records.txt> <index.simsel> <text> "
               "[--tau=75] [--algo=sf] [--k=N]\n"
               "       simsel_cli repl  <records.txt> <index.simsel>\n"
               "       simsel_cli stats <records.txt> <index.simsel>\n");
  return 2;
}

AlgorithmKind ParseAlgo(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--algo=", 7) == 0) {
      std::string a = argv[i] + 7;
      if (a == "sf") return AlgorithmKind::kSf;
      if (a == "inra") return AlgorithmKind::kInra;
      if (a == "hybrid") return AlgorithmKind::kHybrid;
      if (a == "ita") return AlgorithmKind::kIta;
      if (a == "ta") return AlgorithmKind::kTa;
      if (a == "nra") return AlgorithmKind::kNra;
      if (a == "sortbyid") return AlgorithmKind::kSortById;
      if (a == "pf") return AlgorithmKind::kPrefixFilter;
      if (a == "scan") return AlgorithmKind::kLinearScan;
      std::fprintf(stderr, "unknown --algo=%s, using sf\n", a.c_str());
    }
  }
  return AlgorithmKind::kSf;
}

Result<SimilaritySelector> LoadSelector(const std::string& records_path,
                                        const std::string& index_path) {
  Result<Corpus> corpus = LoadCorpusFromFile(records_path);
  if (!corpus.ok()) return corpus.status();
  return SimilaritySelector::BuildWithSavedIndex(corpus->records, index_path);
}

void PrintMatches(const SimilaritySelector& sel, const QueryResult& r,
                  double elapsed_ms) {
  std::printf("%zu matches in %.2f ms (read %llu/%llu postings)\n",
              r.matches.size(), elapsed_ms,
              (unsigned long long)r.counters.elements_read,
              (unsigned long long)r.counters.elements_total);
  size_t shown = 0;
  for (const Match& m : r.matches) {
    if (shown++ >= 20) {
      std::printf("  ... and %zu more\n", r.matches.size() - shown + 1);
      break;
    }
    std::printf("  [%u] %-40s %.3f\n", m.id, sel.collection().text(m.id).c_str(),
                m.score);
  }
}

int RunQuery(const SimilaritySelector& sel, const std::string& text,
             double tau, AlgorithmKind kind, size_t k) {
  WallTimer timer;
  QueryResult r = (k > 0) ? sel.SelectTopK(text, k)
                          : sel.Select(text, tau, kind);
  PrintMatches(sel, r, timer.ElapsedMillis());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string cmd = argv[1];

  if (cmd == "build") {
    if (argc < 4) return Usage();
    Result<Corpus> corpus = LoadCorpusFromFile(argv[2]);
    if (!corpus.ok()) {
      std::fprintf(stderr, "%s\n", corpus.status().ToString().c_str());
      return 1;
    }
    WallTimer timer;
    SimilaritySelector sel = SimilaritySelector::Build(corpus->records);
    Status st = sel.SaveIndex(argv[3]);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("indexed %zu records (%zu tokens, %llu postings) in %.2fs "
                "-> %s\n",
                corpus->records.size(), sel.index().num_tokens(),
                (unsigned long long)sel.index().total_postings(),
                timer.ElapsedSeconds(), argv[3]);
    return 0;
  }

  if (cmd == "query" || cmd == "repl" || cmd == "stats" || cmd == "join") {
    if (argc < 4) return Usage();
    Result<SimilaritySelector> sel = LoadSelector(argv[2], argv[3]);
    if (!sel.ok()) {
      std::fprintf(stderr, "%s\n", sel.status().ToString().c_str());
      return 1;
    }
    if (cmd == "stats") {
      IndexSizeReport sizes = sel->Sizes();
      std::printf("base table        %10zu bytes\n", sizes.base_table);
      std::printf("inverted lists    %10zu bytes\n", sizes.inverted_lists);
      std::printf("skip lists        %10zu bytes\n", sizes.skip_lists);
      std::printf("extendible hash   %10zu bytes\n", sizes.extendible_hash);
      return 0;
    }
    double tau = FlagValue(argc, argv, "tau", 75) / 100.0;
    size_t k = FlagValue(argc, argv, "k", 0);
    AlgorithmKind kind = ParseAlgo(argc, argv);
    if (cmd == "join") {
      WallTimer timer;
      SelfJoinResult joined = SelfJoin(*sel, tau);
      auto clusters = ClusterPairs(sel->collection().size(), joined.pairs);
      std::printf("%zu duplicate pairs, %zu clusters in %.2fs (tau=%.2f)\n",
                  joined.pairs.size(), clusters.size(),
                  timer.ElapsedSeconds(), tau);
      size_t shown = 0;
      for (const auto& cluster : clusters) {
        if (shown++ >= 15) {
          std::printf("  ... and %zu more clusters\n",
                      clusters.size() - shown + 1);
          break;
        }
        std::printf("  cluster of %zu:\n", cluster.size());
        for (SetId id : cluster) {
          std::printf("    [%u] %s\n", id, sel->collection().text(id).c_str());
        }
      }
      return 0;
    }
    if (cmd == "query") {
      if (argc < 5) return Usage();
      // First non-flag argument after the index path is the query text.
      std::string text;
      for (int i = 4; i < argc; ++i) {
        if (std::strncmp(argv[i], "--", 2) != 0) {
          if (!text.empty()) text += ' ';
          text += argv[i];
        }
      }
      if (text.empty()) return Usage();
      return RunQuery(*sel, text, tau, kind, k);
    }
    // repl
    std::printf("tau=%.2f algo=%s%s — one query per line, ctrl-d to exit\n",
                tau, AlgorithmKindName(kind),
                k > 0 ? (" k=" + std::to_string(k)).c_str() : "");
    std::string line;
    while (std::getline(std::cin, line)) {
      if (line.empty()) continue;
      RunQuery(*sel, line, tau, kind, k);
    }
    return 0;
  }

  return Usage();
}
