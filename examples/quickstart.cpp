// Quickstart: index a handful of strings and run set similarity selections.
//
//   $ quickstart
//
// Demonstrates the three-line happy path of the library: Build, Select,
// inspect matches — plus what the access counters tell you about the work
// the chosen algorithm did.

#include <cstdio>

#include "core/selector.h"

int main() {
  using namespace simsel;

  // 1. A small, dirty address collection (the paper's motivating example).
  std::vector<std::string> records = {
      "Main St., Main",     // 0
      "Main St., Maine",    // 1
      "Main Street, Maine", // 2
      "Florham Park",       // 3
      "Florham Prk",        // 4
      "Madison Avenue",     // 5
      "Madisson Ave",       // 6
  };

  // 2. Build the selector: 3-gram tokenization, inverted lists sorted by
  //    (length, id), skip lists and per-list hash indexes.
  SimilaritySelector selector = SimilaritySelector::Build(records);

  // 3. Run selections with the Shortest-First algorithm (the default).
  for (double tau : {0.9, 0.7, 0.5}) {
    QueryResult result = selector.Select("Main St., Maine", tau);
    std::printf("tau=%.1f -> %zu matches\n", tau, result.matches.size());
    for (const Match& m : result.matches) {
      std::printf("  [%u] %-22s score=%.3f\n", m.id,
                  selector.collection().text(m.id).c_str(), m.score);
    }
  }

  // 4. The same query through the classic NRA baseline, to compare work.
  PreparedQuery q = selector.Prepare("Main St., Maine");
  QueryResult sf = selector.SelectPrepared(q, 0.7, AlgorithmKind::kSf, {});
  QueryResult nra = selector.SelectPrepared(q, 0.7, AlgorithmKind::kNra, {});
  std::printf("\nwork at tau=0.7:  SF read %llu of %llu list elements, "
              "NRA read %llu\n",
              (unsigned long long)sf.counters.elements_read,
              (unsigned long long)sf.counters.elements_total,
              (unsigned long long)nra.counters.elements_read);

  // 5. Top-k: the 3 nearest neighbours of a misspelling.
  QueryResult top = selector.SelectTopK("Madizon Avenu", 3);
  std::printf("\ntop-3 for 'Madizon Avenu':\n");
  for (const Match& m : top.matches) {
    std::printf("  %-22s score=%.3f\n",
                selector.collection().text(m.id).c_str(), m.score);
  }
  return 0;
}
