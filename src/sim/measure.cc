#include "sim/measure.h"

#include <cmath>

#include "common/logging.h"
#include "sim/bm25.h"
#include "sim/idf.h"
#include "sim/tfidf.h"

namespace simsel {

const char* MeasureKindName(MeasureKind kind) {
  switch (kind) {
    case MeasureKind::kIdf:
      return "IDF";
    case MeasureKind::kTfIdf:
      return "TFIDF";
    case MeasureKind::kBm25:
      return "BM25";
    case MeasureKind::kBm25Prime:
      return "BM25'";
  }
  return "UNKNOWN";
}

std::unique_ptr<SimilarityMeasure> MakeMeasure(MeasureKind kind,
                                               const Collection& collection) {
  switch (kind) {
    case MeasureKind::kIdf:
      return std::make_unique<IdfMeasure>(collection);
    case MeasureKind::kTfIdf:
      return std::make_unique<TfIdfMeasure>(collection);
    case MeasureKind::kBm25:
      return std::make_unique<Bm25Measure>(collection, /*drop_tf=*/false);
    case MeasureKind::kBm25Prime:
      return std::make_unique<Bm25Measure>(collection, /*drop_tf=*/true);
  }
  SIMSEL_CHECK_MSG(false, "unknown measure kind");
  return nullptr;
}

namespace internal {

IdfTable ComputeIdfTable(const Collection& collection) {
  IdfTable table;
  const Dictionary& dict = collection.dictionary();
  double n = static_cast<double>(collection.size());
  table.idf.resize(dict.size());
  for (TokenId t = 0; t < dict.size(); ++t) {
    // idf(t) = log2(1 + N / N(t)); every interned token has df >= 1.
    table.idf[t] = std::log2(1.0 + n / static_cast<double>(dict.df(t)));
  }
  // Unknown tokens are treated as df = 1 (the rarest possible).
  table.default_idf = std::log2(1.0 + n);
  return table;
}

}  // namespace internal

}  // namespace simsel
