#ifndef SIMSEL_SIM_IDF_H_
#define SIMSEL_SIM_IDF_H_

#include <vector>

#include "common/bitset.h"
#include "sim/measure.h"

namespace simsel {

/// The paper's IDF similarity (Equation 1):
///
///   idf(t)  = log2(1 + N / N(t))
///   len(s)  = sqrt( Σ_{t∈s} idf(t)² )
///   I(q, s) = Σ_{t∈q∩s} idf(t)² / (len(s) · len(q))
///
/// It is TF/IDF cosine with the tf component dropped (multisets reduced to
/// sets) and is length-normalized: I ∈ [0, 1] and I(q, q) = 1. Its semantic
/// properties (Order Preservation, Magnitude Boundedness, Length
/// Boundedness; Section IV) are what the iNRA/SF/Hybrid algorithms exploit.
///
/// Numeric convention: set lengths are stored as float — the same value that
/// is serialized in the inverted-list postings — and every component sums
/// common-token contributions in ascending query-token order, so LinearScan
/// and all list-merging algorithms produce bit-identical scores.
class IdfMeasure : public SimilarityMeasure {
 public:
  explicit IdfMeasure(const Collection& collection);

  std::string_view name() const override { return "IDF"; }
  PreparedQuery PrepareQuery(
      const std::vector<TokenCount>& tokens) const override;
  double Score(const PreparedQuery& q, SetId s) const override;

  double idf(TokenId t) const { return idf_.idf[t]; }
  double default_idf() const { return idf_.default_idf; }

  /// Normalized set length len(s), as stored in the inverted lists.
  float set_length(SetId s) const { return set_len_[s]; }

  /// Canonical score given the membership bit vector `bits` (bit i set iff
  /// q.tokens[i] ∈ s) and the set's length. All algorithms report through
  /// this function so scores agree bit-for-bit across strategies.
  double ScoreFromBits(const PreparedQuery& q, const DynamicBitset& bits,
                       float set_len) const;

  /// Per-list contribution w_i(s) of a set with length `set_len` on the list
  /// of q.tokens[i] (Section II): idf(q^i)² / (len(s)·len(q)).
  double Contribution(const PreparedQuery& q, size_t i, float set_len) const {
    return q.weights[i] / (static_cast<double>(set_len) * q.length);
  }

  const Collection& collection() const { return collection_; }

 private:
  const Collection& collection_;
  internal::IdfTable idf_;
  std::vector<float> set_len_;
};

}  // namespace simsel

#endif  // SIMSEL_SIM_IDF_H_
