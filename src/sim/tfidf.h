#ifndef SIMSEL_SIM_TFIDF_H_
#define SIMSEL_SIM_TFIDF_H_

#include <vector>

#include "sim/measure.h"

namespace simsel {

/// Cosine TF/IDF:
///
///   w(t, x)   = tf(t, x) · idf(t)
///   ||x||     = sqrt( Σ_t w(t, x)² )
///   S(q, s)   = Σ_{t∈q∩s} w(t, q)·w(t, s) / (||q||·||s||)
///
/// The classic weighted measure the paper's IDF variant is derived from;
/// included for the Table I precision comparison and the LinearScan path.
class TfIdfMeasure : public SimilarityMeasure {
 public:
  explicit TfIdfMeasure(const Collection& collection);

  std::string_view name() const override { return "TFIDF"; }
  PreparedQuery PrepareQuery(
      const std::vector<TokenCount>& tokens) const override;
  double Score(const PreparedQuery& q, SetId s) const override;

  double idf(TokenId t) const { return idf_.idf[t]; }

  /// TF/IDF-normalized set length ||s|| (used as posting lengths when an
  /// inverted index is built for TF/IDF selection).
  float set_length(SetId s) const { return set_len_[s]; }

  /// Maximum term frequency of `t` over all database sets (>= 1 for every
  /// interned token). This is the "maximum tf component" the paper's
  /// Section IV remark boosts the semantic-property bounds with.
  uint32_t max_tf(TokenId t) const { return max_tf_[t]; }

  const Collection& collection() const { return collection_; }

 private:
  const Collection& collection_;
  internal::IdfTable idf_;
  std::vector<float> set_len_;
  std::vector<uint32_t> max_tf_;
};

}  // namespace simsel

#endif  // SIMSEL_SIM_TFIDF_H_
