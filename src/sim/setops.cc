#include "sim/setops.h"

#include <algorithm>
#include <cmath>

namespace simsel {

SetOverlapMeasure::SetOverlapMeasure(const Collection& collection,
                                     SetOverlapKind kind)
    : collection_(collection), kind_(kind) {}

std::string_view SetOverlapMeasure::name() const {
  switch (kind_) {
    case SetOverlapKind::kJaccard:
      return "Jaccard";
    case SetOverlapKind::kDice:
      return "Dice";
    case SetOverlapKind::kCosine:
      return "Cosine";
    case SetOverlapKind::kOverlap:
      return "Overlap";
  }
  return "SetOverlap";
}

PreparedQuery SetOverlapMeasure::PrepareQuery(
    const std::vector<TokenCount>& tokens) const {
  PreparedQuery q;
  std::vector<TokenId> known;
  for (const TokenCount& tc : tokens) {
    q.multiset_size += tc.count;
    auto id = collection_.dictionary().Find(tc.token);
    if (!id.has_value()) {
      ++q.unknown_tokens;  // still counts toward |q|
      continue;
    }
    known.push_back(*id);
  }
  std::sort(known.begin(), known.end());
  q.tokens = std::move(known);
  q.tfs.assign(q.tokens.size(), 1);
  q.weights.assign(q.tokens.size(), 1.0);
  // |q| = distinct tokens including unknown ones.
  q.length = static_cast<double>(q.tokens.size() + q.unknown_tokens);
  return q;
}

double SetOverlapMeasure::Score(const PreparedQuery& q, SetId s) const {
  const SetRecord& set = collection_.set(s);
  size_t i = 0, j = 0, common = 0;
  while (i < q.tokens.size() && j < set.tokens.size()) {
    if (q.tokens[i] < set.tokens[j]) {
      ++i;
    } else if (set.tokens[j] < q.tokens[i]) {
      ++j;
    } else {
      ++common;
      ++i;
      ++j;
    }
  }
  double nq = q.length;
  double ns = static_cast<double>(set.tokens.size());
  if (nq == 0.0 || ns == 0.0) return 0.0;
  double c = static_cast<double>(common);
  switch (kind_) {
    case SetOverlapKind::kJaccard:
      return c / (nq + ns - c);
    case SetOverlapKind::kDice:
      return 2.0 * c / (nq + ns);
    case SetOverlapKind::kCosine:
      return c / std::sqrt(nq * ns);
    case SetOverlapKind::kOverlap:
      return c / std::min(nq, ns);
  }
  return 0.0;
}

}  // namespace simsel
