#ifndef SIMSEL_SIM_SETOPS_H_
#define SIMSEL_SIM_SETOPS_H_

#include "sim/measure.h"

namespace simsel {

/// Which unweighted set-overlap coefficient SetOverlapMeasure computes.
enum class SetOverlapKind {
  kJaccard,  ///< |q ∩ s| / |q ∪ s|
  kDice,     ///< 2|q ∩ s| / (|q| + |s|)
  kCosine,   ///< |q ∩ s| / sqrt(|q|·|s|)
  kOverlap,  ///< |q ∩ s| / min(|q|, |s|)
};

/// Classic unweighted set-overlap measures (Jaccard, Dice, unweighted
/// cosine, overlap coefficient), provided for comparison with the weighted
/// family — the paper's introduction surveys them before arguing for
/// idf-weighted scoring ("not all tokens are equally important").
///
/// All four are length-normalized into [0, 1] with exact-match score 1, so
/// LinearScanSelect and the precision evaluation work on them unchanged.
/// They deliberately have no inverted-list algorithm support: the point of
/// the paper's IDF variant is that its *semantic properties* enable the fast
/// algorithms, which these coefficients lack in weighted form.
class SetOverlapMeasure : public SimilarityMeasure {
 public:
  SetOverlapMeasure(const Collection& collection, SetOverlapKind kind);

  std::string_view name() const override;
  PreparedQuery PrepareQuery(
      const std::vector<TokenCount>& tokens) const override;
  double Score(const PreparedQuery& q, SetId s) const override;

 private:
  const Collection& collection_;
  SetOverlapKind kind_;
};

}  // namespace simsel

#endif  // SIMSEL_SIM_SETOPS_H_
