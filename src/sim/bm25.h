#ifndef SIMSEL_SIM_BM25_H_
#define SIMSEL_SIM_BM25_H_

#include <vector>

#include "sim/measure.h"

namespace simsel {

/// Okapi BM25 parameters (standard defaults).
struct Bm25Params {
  double k1 = 1.2;
  double b = 0.75;
  double k3 = 8.0;
};

/// Okapi BM25:
///
///   S(q, s) = Σ_{t∈q∩s} idf(t) · tf(s,t)·(k1+1) / (tf(s,t) + K)
///                      · tf(q,t)·(k3+1) / (tf(q,t) + k3)
///   K       = k1·((1-b) + b·|s| / avgdl)
///
/// with idf(t) = ln(1 + (N - N(t) + 0.5) / (N(t) + 0.5)) (the non-negative
/// Robertson-Sparck-Jones form). Scores are unnormalized, which is fine for
/// the Table I ranking experiment. The `drop_tf` flag yields the paper's
/// BM25' variant: both tf components forced to 1, multisets reduced to sets.
class Bm25Measure : public SimilarityMeasure {
 public:
  Bm25Measure(const Collection& collection, bool drop_tf,
              Bm25Params params = Bm25Params());

  std::string_view name() const override {
    return drop_tf_ ? "BM25'" : "BM25";
  }
  PreparedQuery PrepareQuery(
      const std::vector<TokenCount>& tokens) const override;
  double Score(const PreparedQuery& q, SetId s) const override;

  const Bm25Params& params() const { return params_; }
  bool drop_tf() const { return drop_tf_; }
  double idf(TokenId t) const { return idf_[t]; }
  double avgdl() const;

  /// Document length |s| as this flavor scores it (multiset size for BM25,
  /// distinct tokens for BM25').
  double doc_length(SetId s) const;

  /// Maximum tf of `t` this flavor can see (1 under drop_tf). Used by the
  /// boosted-bound selection engine (core/bm25_select.h).
  uint32_t max_tf(TokenId t) const { return drop_tf_ ? 1 : max_tf_[t]; }

  const Collection& collection() const { return collection_; }

 private:
  const Collection& collection_;
  bool drop_tf_;
  Bm25Params params_;
  std::vector<double> idf_;
  std::vector<uint32_t> max_tf_;
};

}  // namespace simsel

#endif  // SIMSEL_SIM_BM25_H_
