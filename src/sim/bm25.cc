#include "sim/bm25.h"

#include <algorithm>
#include <cmath>

namespace simsel {

Bm25Measure::Bm25Measure(const Collection& collection, bool drop_tf,
                         Bm25Params params)
    : collection_(collection), drop_tf_(drop_tf), params_(params) {
  const Dictionary& dict = collection.dictionary();
  double n = static_cast<double>(collection.size());
  idf_.resize(dict.size());
  for (TokenId t = 0; t < dict.size(); ++t) {
    double df = dict.df(t);
    idf_[t] = std::log(1.0 + (n - df + 0.5) / (df + 0.5));
  }
  max_tf_.assign(dict.size(), 1);
  for (SetId s = 0; s < collection.size(); ++s) {
    const SetRecord& set = collection.set(s);
    for (size_t j = 0; j < set.tokens.size(); ++j) {
      max_tf_[set.tokens[j]] = std::max(max_tf_[set.tokens[j]], set.tfs[j]);
    }
  }
}

double Bm25Measure::avgdl() const {
  return std::max(1.0, collection_.average_set_size());
}

double Bm25Measure::doc_length(SetId s) const {
  const SetRecord& set = collection_.set(s);
  return drop_tf_ ? static_cast<double>(set.tokens.size())
                  : static_cast<double>(set.multiset_size);
}

PreparedQuery Bm25Measure::PrepareQuery(
    const std::vector<TokenCount>& tokens) const {
  PreparedQuery q;
  q.length = 1.0;  // BM25 is unnormalized
  std::vector<std::pair<TokenId, uint32_t>> known;
  for (const TokenCount& tc : tokens) {
    q.multiset_size += tc.count;
    auto id = collection_.dictionary().Find(tc.token);
    if (!id.has_value()) {
      ++q.unknown_tokens;
      continue;
    }
    known.emplace_back(*id, tc.count);
  }
  std::sort(known.begin(), known.end());
  for (const auto& [t, tf] : known) {
    double tfq = drop_tf_ ? 1.0 : static_cast<double>(tf);
    q.tokens.push_back(t);
    q.tfs.push_back(tf);
    // Query-side factor: idf(t) · tf(q,t)(k3+1)/(tf(q,t)+k3).
    q.weights.push_back(idf_[t] * tfq * (params_.k3 + 1.0) /
                        (tfq + params_.k3));
  }
  return q;
}

double Bm25Measure::Score(const PreparedQuery& q, SetId s) const {
  const SetRecord& set = collection_.set(s);
  double doc_len = drop_tf_ ? static_cast<double>(set.tokens.size())
                            : static_cast<double>(set.multiset_size);
  double avgdl = std::max(1.0, collection_.average_set_size());
  double k = params_.k1 * ((1.0 - params_.b) + params_.b * doc_len / avgdl);
  double sum = 0.0;
  size_t i = 0, j = 0;
  while (i < q.tokens.size() && j < set.tokens.size()) {
    if (q.tokens[i] < set.tokens[j]) {
      ++i;
    } else if (set.tokens[j] < q.tokens[i]) {
      ++j;
    } else {
      double tfs = drop_tf_ ? 1.0 : static_cast<double>(set.tfs[j]);
      sum += q.weights[i] * tfs * (params_.k1 + 1.0) / (tfs + k);
      ++i;
      ++j;
    }
  }
  return sum;
}

}  // namespace simsel
