#include "sim/idf.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "simd/kernels.h"

namespace simsel {

IdfMeasure::IdfMeasure(const Collection& collection)
    : collection_(collection), idf_(internal::ComputeIdfTable(collection)) {
  set_len_.resize(collection.size());
  for (SetId s = 0; s < collection.size(); ++s) {
    double sum = 0.0;
    for (TokenId t : collection.set(s).tokens) {
      sum += idf_.idf[t] * idf_.idf[t];
    }
    set_len_[s] = static_cast<float>(std::sqrt(sum));
  }
}

PreparedQuery IdfMeasure::PrepareQuery(
    const std::vector<TokenCount>& tokens) const {
  PreparedQuery q;
  double len_sq = 0.0;
  for (const TokenCount& tc : tokens) {
    q.multiset_size += tc.count;
    auto id = collection_.dictionary().Find(tc.token);
    if (!id.has_value()) {
      // Unknown tokens have no list but still normalize the query length:
      // a heavily modified query should score lower against everything.
      ++q.unknown_tokens;
      len_sq += idf_.default_idf * idf_.default_idf;
      continue;
    }
    q.tokens.push_back(*id);
    q.tfs.push_back(tc.count);
  }
  // Sort by TokenId so scoring order is canonical.
  std::vector<size_t> order(q.tokens.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return q.tokens[a] < q.tokens[b]; });
  PreparedQuery out;
  out.multiset_size = q.multiset_size;
  out.unknown_tokens = q.unknown_tokens;
  out.tokens.reserve(order.size());
  out.tfs.reserve(order.size());
  out.weights.reserve(order.size());
  for (size_t i : order) {
    TokenId t = q.tokens[i];
    out.tokens.push_back(t);
    out.tfs.push_back(q.tfs[i]);
    double w = idf_.idf[t] * idf_.idf[t];  // idf(q^i)²
    out.weights.push_back(w);
    len_sq += w;
  }
  out.length = std::sqrt(len_sq);
  return out;
}

double IdfMeasure::Score(const PreparedQuery& q, SetId s) const {
  const SetRecord& set = collection_.set(s);
  // SIMD intersection emits the matching query positions in ascending order;
  // the weight sum then runs scalar over those positions in that same
  // canonical (ascending query-index) order, so the accumulation is
  // bit-identical to the classic two-pointer walk regardless of kernel.
  thread_local std::vector<uint32_t> pos;
  pos.resize(q.tokens.size());
  const size_t matches = simd::Kernels().intersect_pos_u32(
      q.tokens.data(), q.tokens.size(), set.tokens.data(), set.tokens.size(),
      pos.data());
  double sum = 0.0;
  for (size_t i = 0; i < matches; ++i) sum += q.weights[pos[i]];
  double denom = static_cast<double>(set_len_[s]) * q.length;
  if (denom == 0.0) return 0.0;
  return sum / denom;
}

double IdfMeasure::ScoreFromBits(const PreparedQuery& q,
                                 const DynamicBitset& bits,
                                 float set_len) const {
  double sum = 0.0;
  for (size_t i = 0; i < q.tokens.size(); ++i) {
    if (bits.Test(i)) sum += q.weights[i];
  }
  double denom = static_cast<double>(set_len) * q.length;
  if (denom == 0.0) return 0.0;
  return sum / denom;
}

}  // namespace simsel
