#include "sim/tfidf.h"

#include <algorithm>
#include <cmath>

namespace simsel {

TfIdfMeasure::TfIdfMeasure(const Collection& collection)
    : collection_(collection), idf_(internal::ComputeIdfTable(collection)) {
  set_len_.resize(collection.size());
  max_tf_.assign(collection.dictionary().size(), 1);
  for (SetId s = 0; s < collection.size(); ++s) {
    const SetRecord& set = collection.set(s);
    double sum = 0.0;
    for (size_t j = 0; j < set.tokens.size(); ++j) {
      double w = set.tfs[j] * idf_.idf[set.tokens[j]];
      sum += w * w;
      max_tf_[set.tokens[j]] = std::max(max_tf_[set.tokens[j]], set.tfs[j]);
    }
    set_len_[s] = static_cast<float>(std::sqrt(sum));
  }
}

PreparedQuery TfIdfMeasure::PrepareQuery(
    const std::vector<TokenCount>& tokens) const {
  PreparedQuery q;
  double len_sq = 0.0;
  std::vector<std::pair<TokenId, uint32_t>> known;
  for (const TokenCount& tc : tokens) {
    q.multiset_size += tc.count;
    auto id = collection_.dictionary().Find(tc.token);
    if (!id.has_value()) {
      ++q.unknown_tokens;
      double w = tc.count * idf_.default_idf;
      len_sq += w * w;
      continue;
    }
    known.emplace_back(*id, tc.count);
  }
  std::sort(known.begin(), known.end());
  for (const auto& [t, tf] : known) {
    q.tokens.push_back(t);
    q.tfs.push_back(tf);
    double w = tf * idf_.idf[t];  // query-side weight w(t, q)
    q.weights.push_back(w);
    len_sq += w * w;
  }
  q.length = std::sqrt(len_sq);
  return q;
}

double TfIdfMeasure::Score(const PreparedQuery& q, SetId s) const {
  const SetRecord& set = collection_.set(s);
  double sum = 0.0;
  size_t i = 0, j = 0;
  while (i < q.tokens.size() && j < set.tokens.size()) {
    if (q.tokens[i] < set.tokens[j]) {
      ++i;
    } else if (set.tokens[j] < q.tokens[i]) {
      ++j;
    } else {
      double ws = set.tfs[j] * idf_.idf[set.tokens[j]];
      sum += q.weights[i] * ws;
      ++i;
      ++j;
    }
  }
  double denom = static_cast<double>(set_len_[s]) * q.length;
  if (denom == 0.0) return 0.0;
  return sum / denom;
}

}  // namespace simsel
