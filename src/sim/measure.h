#ifndef SIMSEL_SIM_MEASURE_H_
#define SIMSEL_SIM_MEASURE_H_

#include <memory>
#include <string_view>
#include <vector>

#include "index/collection.h"
#include "text/tokenizer.h"

namespace simsel {

/// A query after measure-specific preprocessing: distinct tokens that exist
/// in the dictionary (ascending TokenId), per-token weights, and the
/// normalizer. Tokens absent from the database contribute to `length` (they
/// lower every score, as they should) but carry no list.
struct PreparedQuery {
  std::vector<TokenId> tokens;
  std::vector<uint32_t> tfs;      // query-side term frequencies
  std::vector<double> weights;    // measure-specific (see each measure)
  double length = 1.0;            // normalizer; 1.0 for unnormalized measures
  uint32_t multiset_size = 0;     // Σ tf over all query tokens (incl unknown)
  size_t unknown_tokens = 0;      // distinct query tokens not in the DB
};

/// Weighted set-similarity measure over a fixed Collection.
///
/// Implementations precompute their token weights and set normalizers at
/// construction; Score is then O(|q| log |s|). The paper's Table I compares
/// four members of this family (TF/IDF, IDF, BM25, BM25'); the selection
/// algorithms of Sections V-VII operate on the IDF member.
class SimilarityMeasure {
 public:
  virtual ~SimilarityMeasure() = default;

  virtual std::string_view name() const = 0;

  /// Preprocesses a tokenized query (output of Tokenizer::TokenizeCounted,
  /// mapped through the collection's dictionary internally).
  virtual PreparedQuery PrepareQuery(
      const std::vector<TokenCount>& tokens) const = 0;

  /// Similarity of the prepared query with database set `s`.
  virtual double Score(const PreparedQuery& q, SetId s) const = 0;
};

/// The four measures of Table I.
enum class MeasureKind {
  kIdf,        ///< length-normalized TF/IDF with tf dropped (the paper's)
  kTfIdf,      ///< cosine TF/IDF
  kBm25,       ///< Okapi BM25
  kBm25Prime,  ///< BM25 with the tf component dropped ("BM25'")
};

const char* MeasureKindName(MeasureKind kind);

/// Factory. The returned measure borrows `collection`, which must outlive it.
std::unique_ptr<SimilarityMeasure> MakeMeasure(MeasureKind kind,
                                               const Collection& collection);

namespace internal {
/// Shared idf table: idf(t) = log2(1 + N / N(t)) for every token, plus the
/// default idf for unknown tokens (df treated as 1).
struct IdfTable {
  std::vector<double> idf;
  double default_idf = 0.0;
};
IdfTable ComputeIdfTable(const Collection& collection);
}  // namespace internal

}  // namespace simsel

#endif  // SIMSEL_SIM_MEASURE_H_
