#include "text/tokenizer.h"

#include <algorithm>
#include <cctype>

#include "common/logging.h"

namespace simsel {

Tokenizer::Tokenizer(TokenizerOptions options) : options_(options) {
  SIMSEL_CHECK_MSG(options_.q >= 1, "q-gram width must be >= 1");
}

std::string Tokenizer::Normalize(std::string_view text) const {
  std::string out;
  out.reserve(text.size());
  bool last_space = true;  // strip leading space
  for (char raw : text) {
    unsigned char c = static_cast<unsigned char>(raw);
    if (std::isspace(c)) {
      if (!last_space) {
        out.push_back(options_.collapse_space_to_underscore ? '_' : ' ');
        last_space = true;
      }
      continue;
    }
    last_space = false;
    out.push_back(options_.lowercase ? static_cast<char>(std::tolower(c))
                                     : raw);
  }
  // Strip a trailing separator left by trailing whitespace.
  if (!out.empty() && (out.back() == '_' || out.back() == ' ')) out.pop_back();
  return out;
}

void Tokenizer::Words(std::string_view text,
                      std::vector<std::string>* out) const {
  std::string cur;
  for (char raw : text) {
    unsigned char c = static_cast<unsigned char>(raw);
    if (std::isalnum(c)) {
      cur.push_back(options_.lowercase ? static_cast<char>(std::tolower(c))
                                       : raw);
    } else if (!cur.empty()) {
      out->push_back(std::move(cur));
      cur.clear();
    }
  }
  if (!cur.empty()) out->push_back(std::move(cur));
}

void Tokenizer::QGrams(std::string_view word,
                       std::vector<std::string>* out) const {
  if (word.empty()) return;  // padding alone must not fabricate grams
  const int q = options_.q;
  std::string padded;
  if (options_.pad) {
    padded.reserve(word.size() + 2 * (q - 1));
    padded.append(q - 1, options_.pad_char);
    padded.append(word);
    padded.append(q - 1, options_.pad_char);
  } else {
    padded.assign(word);
  }
  if (static_cast<int>(padded.size()) < q) {
    if (!padded.empty()) out->push_back(padded);
    return;
  }
  for (size_t i = 0; i + q <= padded.size(); ++i) {
    out->emplace_back(padded.substr(i, q));
  }
}

std::vector<std::string> Tokenizer::Tokenize(std::string_view text) const {
  std::vector<std::string> out;
  if (options_.kind == TokenizerKind::kWord) {
    Words(text, &out);
    return out;
  }
  std::string norm = Normalize(text);
  QGrams(norm, &out);
  return out;
}

std::vector<TokenCount> Tokenizer::TokenizeCounted(
    std::string_view text) const {
  std::vector<std::string> toks = Tokenize(text);
  std::sort(toks.begin(), toks.end());
  std::vector<TokenCount> out;
  for (size_t i = 0; i < toks.size();) {
    size_t j = i;
    while (j < toks.size() && toks[j] == toks[i]) ++j;
    out.push_back(TokenCount{toks[i], static_cast<uint32_t>(j - i)});
    i = j;
  }
  return out;
}

size_t Tokenizer::CountTokens(std::string_view text) const {
  return Tokenize(text).size();
}

}  // namespace simsel
