#ifndef SIMSEL_TEXT_TOKENIZER_H_
#define SIMSEL_TEXT_TOKENIZER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace simsel {

/// How a record string is decomposed into tokens before set construction.
/// The paper tokenizes tuples into words and converts each word into a set
/// of 3-grams; both granularities are supported.
enum class TokenizerKind {
  kWord,   ///< Split on non-alphanumeric characters.
  kQGram,  ///< Overlapping character q-grams (optionally boundary-padded).
};

/// Options controlling tokenization.
struct TokenizerOptions {
  TokenizerKind kind = TokenizerKind::kQGram;
  /// Gram width for TokenizerKind::kQGram. Must be >= 1.
  int q = 3;
  /// When true, `q - 1` copies of `pad_char` are prepended and appended so a
  /// word of length L yields L + q - 1 grams and boundary characters are
  /// emphasized (the convention in the q-gram literature).
  bool pad = true;
  char pad_char = '#';
  /// Lowercase input before tokenizing.
  bool lowercase = true;
  /// Replace whitespace runs inside the record with a single '_' when q-gram
  /// tokenizing the full string (mirrors the paper's "Main_St" style grams).
  bool collapse_space_to_underscore = true;
};

/// A token and the number of times it occurs in the tokenized record.
struct TokenCount {
  std::string token;
  uint32_t count = 0;
};

/// Decomposes record strings into token multisets.
///
/// Thread-compatible: const methods may be called concurrently.
class Tokenizer {
 public:
  explicit Tokenizer(TokenizerOptions options = TokenizerOptions());

  const TokenizerOptions& options() const { return options_; }

  /// Normalizes `text` per the options (lowercasing, whitespace collapsing).
  std::string Normalize(std::string_view text) const;

  /// Splits `text` into the raw token sequence (with duplicates, in order).
  std::vector<std::string> Tokenize(std::string_view text) const;

  /// Tokenizes and aggregates duplicates into (token, tf) pairs, sorted by
  /// token for determinism.
  std::vector<TokenCount> TokenizeCounted(std::string_view text) const;

  /// Number of tokens `text` produces (cheap; used by workload bucketing).
  size_t CountTokens(std::string_view text) const;

 private:
  void QGrams(std::string_view word, std::vector<std::string>* out) const;
  void Words(std::string_view text, std::vector<std::string>* out) const;

  TokenizerOptions options_;
};

}  // namespace simsel

#endif  // SIMSEL_TEXT_TOKENIZER_H_
