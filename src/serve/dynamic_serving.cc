#include "serve/dynamic_serving.h"

#include <utility>

#include "core/internal.h"

namespace simsel::serve {

DynamicServing::DynamicServing(const std::vector<std::string>& initial,
                               const DynamicServingOptions& options)
    : selector_(initial, options.selector),
      rebuild_threshold_(options.rebuild_threshold),
      pool_(options.pool) {
  if (options.cache_bytes > 0) {
    ResultCacheOptions cache_options;
    cache_options.capacity_bytes = options.cache_bytes;
    cache_ = std::make_unique<ResultCache>(cache_options);
  }
}

SetId DynamicServing::AddRecord(std::string text) {
  SetId id = selector_.AddRecord(std::move(text));
  // No cache touch needed: the version bump the append released already
  // invalidated every older-stamped entry (stale entries miss and are
  // erased lazily on their next lookup).
  if (rebuild_threshold_ > 0 &&
      selector_.delta_size() >= rebuild_threshold_) {
    if (pool_ != nullptr) {
      // Best effort: false just means a rebuild is already folding the
      // delta we are worried about.
      selector_.StartRebuild(pool_);
    } else {
      selector_.Rebuild();
    }
  }
  return id;
}

QueryResult DynamicServing::Select(std::string_view query, double tau,
                                   AlgorithmKind kind,
                                   const SelectOptions& options) const {
  DynamicSelector::Snapshot snap = selector_.snapshot();
  PreparedQuery q = snap.Prepare(query);
  double clamped = internal::ClampTau(tau);
  std::string key;
  if (cache_ != nullptr) {
    key = ResultCache::MakeKey(q, clamped, kind, options,
                               selector_.disk_mode(),
                               snap.main().measure().name());
    // The lookup version is the pinned snapshot's: key and execution then
    // agree on one frozen-statistics generation even if a rebuild swap
    // lands between them.
    CachedResult cached;
    if (cache_->Lookup(key, snap.version(), &cached)) {
      QueryResult out;
      out.matches = std::move(cached.matches);
      out.counters = cached.counters;
      out.snapshot_version = snap.version();
      out.trace = options.trace;
      return out;
    }
  }
  QueryResult out = snap.SelectPrepared(q, clamped, kind, options);
  if (cache_ != nullptr && out.complete() && out.delta_covered) {
    cache_->Insert(key, out.snapshot_version, out.matches, out.counters);
  }
  return out;
}

}  // namespace simsel::serve
