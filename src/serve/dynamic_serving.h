#ifndef SIMSEL_SERVE_DYNAMIC_SERVING_H_
#define SIMSEL_SERVE_DYNAMIC_SERVING_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/thread_pool.h"
#include "core/dynamic.h"
#include "serve/result_cache.h"

namespace simsel::serve {

/// Construction knobs for the read-write serving front.
struct DynamicServingOptions {
  /// Build + storage knobs of the underlying DynamicSelector (disk_mode
  /// swaps a per-segment PostingStore with each rebuild).
  DynamicSelector::Options selector;
  /// Byte budget of the result cache in front of the selector. 0 = none.
  size_t cache_bytes = 0;
  /// Kick off a *background* rebuild (on `pool`) whenever an AddRecord
  /// leaves at least this many records in the delta. 0 disables the
  /// policy; Rebuild() can always be called explicitly.
  size_t rebuild_threshold = 0;
  /// Workers for background rebuilds (borrowed). Null downgrades the
  /// rebuild policy to synchronous rebuilds on the inserting thread.
  ThreadPool* pool = nullptr;
};

/// The read-write serving layer: a DynamicSelector fronted by a versioned
/// ResultCache, with an automatic online-rebuild policy.
///
/// This is the dynamic counterpart of ShardedSelector's caching: every
/// cache entry is stamped with the selector version of the snapshot that
/// produced it (QueryResult::snapshot_version), and lookups present the
/// *current* version — so one atomic counter bump per AddRecord/Rebuild
/// invalidates every stale answer in O(1), exactly the
/// `ShardedSelector::SetEpoch` wiring described in serve/result_cache.h,
/// with DynamicSelector::version() as the epoch source. A query racing an
/// insert can only under-stamp (its snapshot version), never over-stamp,
/// so a stale entry can cause a miss but never a wrong hit.
///
/// Thread-safe: Select/AddRecord/Rebuild may race freely (the selector is
/// internally synchronized; the cache is sharded). Do not call Select from
/// a task running on `pool` while a rebuild is queued behind it — the
/// usual pool-starvation rule (docs/CONCURRENCY.md).
class DynamicServing {
 public:
  DynamicServing(const std::vector<std::string>& initial_records,
                 const DynamicServingOptions& options);

  /// Inserts a record; may trigger a background rebuild per the threshold
  /// policy. Returns the stable id.
  SetId AddRecord(std::string text);

  /// Cache-fronted selection over the current snapshot. Same contract as
  /// DynamicSelector::Select; only complete results with the delta fully
  /// covered are cached.
  QueryResult Select(std::string_view query, double tau,
                     AlgorithmKind kind = AlgorithmKind::kSf,
                     const SelectOptions& options = SelectOptions()) const;

  /// Synchronous online rebuild (waits for a running one first).
  void Rebuild() { selector_.Rebuild(); }

  DynamicSelector& selector() { return selector_; }
  const DynamicSelector& selector() const { return selector_; }
  /// Null when built with cache_bytes == 0.
  ResultCache* result_cache() const { return cache_.get(); }
  uint64_t version() const { return selector_.version(); }

 private:
  DynamicSelector selector_;
  std::unique_ptr<ResultCache> cache_;
  size_t rebuild_threshold_;
  ThreadPool* pool_;
};

}  // namespace simsel::serve

#endif  // SIMSEL_SERVE_DYNAMIC_SERVING_H_
