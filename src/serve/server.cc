#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <string_view>
#include <utility>
#include <vector>

#include "common/logging.h"

namespace simsel::serve {

namespace {

/// Per-connection input cap: a single request line beyond this is a client
/// bug (the longest legitimate line is a query text), answered with ERR and
/// a close rather than unbounded buffering.
constexpr size_t kMaxLineBytes = 1u << 20;

std::string Errno(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

/// Splits the leading space-delimited token off `rest`. Empty tokens never
/// occur (consecutive separators yield an empty token -> caller rejects).
bool NextToken(std::string_view* rest, std::string_view* token) {
  size_t space = rest->find(' ');
  if (space == std::string_view::npos) {
    *token = *rest;
    *rest = std::string_view();
  } else {
    *token = rest->substr(0, space);
    *rest = rest->substr(space + 1);
  }
  return !token->empty();
}

/// One line, newlines stripped, so a Status message can never break the
/// one-response-per-line framing.
std::string Sanitize(std::string text) {
  for (char& c : text) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return text;
}

}  // namespace

bool ParseAlgoName(std::string_view name, AlgorithmKind* kind) {
  if (name == "sf") *kind = AlgorithmKind::kSf;
  else if (name == "inra") *kind = AlgorithmKind::kInra;
  else if (name == "hybrid") *kind = AlgorithmKind::kHybrid;
  else if (name == "ita") *kind = AlgorithmKind::kIta;
  else if (name == "ta") *kind = AlgorithmKind::kTa;
  else if (name == "nra") *kind = AlgorithmKind::kNra;
  else if (name == "sortbyid") *kind = AlgorithmKind::kSortById;
  else if (name == "pf") *kind = AlgorithmKind::kPrefixFilter;
  else if (name == "scan") *kind = AlgorithmKind::kLinearScan;
  else return false;
  return true;
}

const char* AlgoToken(AlgorithmKind kind) {
  switch (kind) {
    case AlgorithmKind::kSf: return "sf";
    case AlgorithmKind::kInra: return "inra";
    case AlgorithmKind::kHybrid: return "hybrid";
    case AlgorithmKind::kIta: return "ita";
    case AlgorithmKind::kTa: return "ta";
    case AlgorithmKind::kNra: return "nra";
    case AlgorithmKind::kSortById: return "sortbyid";
    case AlgorithmKind::kPrefixFilter: return "pf";
    case AlgorithmKind::kLinearScan: return "scan";
    case AlgorithmKind::kSql: return "sql";
  }
  return "unknown";
}

/// All fields except `out`/`closed` are I/O-thread-only. `out` and `closed`
/// are the worker/I/O rendezvous, guarded by `mu`; once `closed` is set no
/// append lands (a worker finishing after a disconnect is a no-op).
struct Server::Conn {
  int fd = -1;
  std::string in;  // I/O thread only
  bool want_write = false;  // I/O thread only: EPOLLOUT armed

  std::mutex mu;
  std::string out;
  bool closed = false;
};

struct Server::Request {
  std::string id;
  char verb = 'Q';
  std::string tenant;
  double tau = 0.0;
  AlgorithmKind kind = AlgorithmKind::kSf;
  std::string text;
  std::chrono::steady_clock::time_point arrival;
};

Server::Server(const ShardedSelector* sharded, const ServerOptions& options)
    : Server(sharded, nullptr, options) {}

Server::Server(DynamicServing* dynamic, const ServerOptions& options)
    : Server(nullptr, dynamic, options) {}

Server::Server(const ShardedSelector* sharded, DynamicServing* dynamic,
               const ServerOptions& options)
    : sharded_(sharded), dynamic_(dynamic), options_(options) {
  SIMSEL_CHECK_MSG((sharded_ != nullptr) != (dynamic_ != nullptr),
                   "exactly one back end");
  if (options_.num_workers == 0) options_.num_workers = 1;
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  queue_depth_metric_ = reg.GetGauge("simsel_server_queue_depth");
  conns_metric_ = reg.GetGauge("simsel_server_active_connections");
  inserts_metric_ = reg.GetCounter("simsel_server_inserts_total");
  latency_metric_ = reg.GetHistogram("simsel_server_request_usec");
  outcome_ok_metric_ = reg.GetCounter("simsel_server_requests_total",
                                      obs::LabelPair("outcome", "ok"));
  outcome_partial_metric_ = reg.GetCounter(
      "simsel_server_requests_total", obs::LabelPair("outcome", "partial"));
  outcome_shed_metric_ = reg.GetCounter("simsel_server_requests_total",
                                        obs::LabelPair("outcome", "shed"));
  outcome_error_metric_ = reg.GetCounter("simsel_server_requests_total",
                                         obs::LabelPair("outcome", "error"));
}

Server::~Server() { Shutdown(); }

Status Server::Start() {
  SIMSEL_CHECK_MSG(!running_.load(std::memory_order_acquire),
                   "Start called twice");
  listen_fd_ =
      socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return Status::Internal(Errno("socket"));
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (inet_pton(AF_INET, options_.listen_addr.c_str(), &addr.sin_addr) != 1) {
    close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad listen address \"" +
                                   options_.listen_addr + "\"");
  }
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      listen(listen_fd_, 128) < 0) {
    Status st = Status::Internal(Errno("bind/listen"));
    close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  socklen_t len = sizeof(addr);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_ = ntohs(addr.sin_port);
  }
  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    Status st = Status::Internal(Errno("epoll_create1/eventfd"));
    if (epoll_fd_ >= 0) close(epoll_fd_);
    if (wake_fd_ >= 0) close(wake_fd_);
    close(listen_fd_);
    listen_fd_ = epoll_fd_ = wake_fd_ = -1;
    return st;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.fd = wake_fd_;
  epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);
  workers_ = std::make_unique<ThreadPool>(options_.num_workers);
  stop_requested_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  io_thread_ = std::thread(&Server::IoLoop, this);
  return Status::Ok();
}

void Server::RequestStop() {
  stop_requested_.store(true, std::memory_order_release);
  // One eventfd write is the whole wake protocol precisely so a SIGTERM
  // handler can call this: write(2) is async-signal-safe, condition
  // variables and mutexes are not.
  if (wake_fd_ >= 0) {
    uint64_t n = 1;
    ssize_t ignored = write(wake_fd_, &n, sizeof(n));
    (void)ignored;
  }
}

void Server::Join() {
  if (io_thread_.joinable()) io_thread_.join();
  // The I/O loop exits only once in_system_ == 0, so the pool is idle;
  // drain mode here is belt and braces, not a wait.
  if (workers_) workers_->Shutdown(ThreadPool::ShutdownMode::kDrain);
  if (epoll_fd_ >= 0) {
    close(epoll_fd_);
    epoll_fd_ = -1;
  }
  if (wake_fd_ >= 0) {
    close(wake_fd_);
    wake_fd_ = -1;
  }
}

void Server::Shutdown() {
  RequestStop();
  Join();
}

void Server::IoLoop() {
  std::vector<epoll_event> events(64);
  while (true) {
    bool draining = stop_requested_.load(std::memory_order_acquire);
    if (draining && listen_fd_ >= 0) {
      // Stop accepting the moment the drain begins; live connections keep
      // flowing until every admitted request has flushed.
      epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
      close(listen_fd_);
      listen_fd_ = -1;
    }
    if (draining && DrainComplete()) break;
    int n = epoll_wait(epoll_fd_, events.data(),
                       static_cast<int>(events.size()), draining ? 20 : 200);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        uint64_t drainv;
        while (read(wake_fd_, &drainv, sizeof(drainv)) > 0) {
        }
        continue;
      }
      if (fd == listen_fd_) {
        AcceptNew();
        continue;
      }
      auto it = conns_.find(fd);
      if (it == conns_.end()) continue;  // closed earlier in this batch
      std::shared_ptr<Conn> conn = it->second;
      if (events[i].events & (EPOLLIN | EPOLLHUP | EPOLLERR)) {
        HandleReadable(conn);
      }
      if ((events[i].events & EPOLLOUT) && conns_.count(fd) != 0) {
        FlushConn(conn);
      }
    }
    std::vector<std::shared_ptr<Conn>> to_flush;
    {
      std::lock_guard<std::mutex> lock(flush_mu_);
      to_flush.swap(flush_queue_);
    }
    for (const std::shared_ptr<Conn>& conn : to_flush) FlushConn(conn);
  }
  for (auto& [fd, conn] : conns_) {
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      conn->closed = true;
      conn->out.clear();
    }
    close(fd);
    conns_metric_->Add(-1);
  }
  conns_.clear();
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
  }
  running_.store(false, std::memory_order_release);
}

void Server::AcceptNew() {
  while (true) {
    int fd = accept4(listen_fd_, nullptr, nullptr,
                     SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN or a transient accept failure: next event retries
    }
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_shared<Conn>();
    conn->fd = fd;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      close(fd);
      continue;
    }
    conns_.emplace(fd, std::move(conn));
    conns_metric_->Add(1);
  }
}

void Server::HandleReadable(const std::shared_ptr<Conn>& conn) {
  char buf[4096];
  while (true) {
    ssize_t n = recv(conn->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      conn->in.append(buf, static_cast<size_t>(n));
      if (conn->in.size() > kMaxLineBytes &&
          conn->in.find('\n') == std::string::npos) {
        Respond(conn, "- ERR request line too long", true);
        CloseConn(conn);
        return;
      }
      continue;
    }
    if (n == 0) {
      CloseConn(conn);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    CloseConn(conn);
    return;
  }
  size_t start = 0;
  size_t nl;
  while ((nl = conn->in.find('\n', start)) != std::string::npos) {
    std::string_view line(conn->in.data() + start, nl - start);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    HandleLine(conn, line);
    start = nl + 1;
    bool closed;
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      closed = conn->closed;
    }
    if (closed) return;  // HandleLine/Respond closed it mid-batch
  }
  conn->in.erase(0, start);
}

void Server::HandleLine(const std::shared_ptr<Conn>& conn,
                        std::string_view line) {
  if (line.empty()) return;
  std::string_view rest = line;
  std::string_view id, verb;
  if (!NextToken(&rest, &id) || !NextToken(&rest, &verb)) {
    error_n_.fetch_add(1, std::memory_order_relaxed);
    outcome_error_metric_->Increment();
    Respond(conn, "- ERR malformed request", true);
    return;
  }
  std::string sid(id);
  if (verb == "PING") {
    // Liveness stays answerable during drain and under full queues: PING is
    // never admitted, so it can neither shed nor occupy a worker.
    Respond(conn, sid + " PONG", true);
    return;
  }
  auto fail = [&](const std::string& msg) {
    error_n_.fetch_add(1, std::memory_order_relaxed);
    outcome_error_metric_->Increment();
    Respond(conn, sid + " ERR " + msg, true);
  };
  if (verb != "Q" && verb != "I") {
    fail("unknown verb \"" + std::string(verb) + "\"");
    return;
  }
  Request req;
  req.id = sid;
  req.verb = verb[0];
  req.arrival = std::chrono::steady_clock::now();
  std::string_view tenant;
  if (!NextToken(&rest, &tenant)) {
    fail("missing tenant");
    return;
  }
  req.tenant = std::string(tenant);
  if (req.verb == 'Q') {
    std::string_view tau_tok, algo_tok;
    if (!NextToken(&rest, &tau_tok) || !NextToken(&rest, &algo_tok)) {
      fail("usage: <id> Q <tenant> <tau> <algo> <text>");
      return;
    }
    std::string tau_str(tau_tok);
    char* end = nullptr;
    double tau = std::strtod(tau_str.c_str(), &end);
    if (end == tau_str.c_str() || *end != '\0' || !(tau > 0.0) ||
        tau > 100.0) {
      fail("bad tau \"" + tau_str + "\"");
      return;
    }
    req.tau = tau > 1.0 ? tau / 100.0 : tau;
    if (!ParseAlgoName(algo_tok, &req.kind)) {
      fail("unknown algorithm \"" + std::string(algo_tok) + "\"");
      return;
    }
  } else if (dynamic_ == nullptr) {
    fail("inserts require the dynamic back end");
    return;
  }
  if (rest.empty()) {
    fail("empty text");
    return;
  }
  req.text = std::string(rest);

  if (stop_requested_.load(std::memory_order_acquire)) {
    fail("draining");
    return;
  }
  // Admission: at most max_queue admitted requests in the system. The
  // rejected request never reaches a worker — shedding from the I/O thread
  // keeps the rejection latency flat no matter how deep the overload.
  size_t prev = in_system_.fetch_add(1, std::memory_order_seq_cst);
  if (options_.max_queue > 0 && prev >= options_.max_queue) {
    in_system_.fetch_sub(1, std::memory_order_seq_cst);
    shed_n_.fetch_add(1, std::memory_order_relaxed);
    outcome_shed_metric_->Increment();
    Respond(conn, sid + " SHED", true);
    return;
  }
  queue_depth_metric_->Add(1);
  std::shared_ptr<Conn> conn_ref = conn;
  Request moved = std::move(req);
  bool accepted = workers_->Submit(
      [this, conn_ref, moved = std::move(moved)] { Execute(conn_ref, moved); });
  if (!accepted) {
    in_system_.fetch_sub(1, std::memory_order_seq_cst);
    queue_depth_metric_->Add(-1);
    fail("draining");
  }
}

QueryResult Server::RunQuery(const Request& req,
                             const SelectOptions& options) const {
  if (dynamic_ != nullptr) {
    return dynamic_->Select(req.text, req.tau, req.kind, options);
  }
  return sharded_->Select(req.text, req.tau, req.kind, options);
}

void Server::Execute(const std::shared_ptr<Conn>& conn, const Request& req) {
  std::string line;
  if (req.verb == 'I') {
    SetId id = dynamic_->AddRecord(req.text);
    line = req.id + " INS " + std::to_string(id) + " " +
           std::to_string(dynamic_->version());
    insert_n_.fetch_add(1, std::memory_order_relaxed);
    inserts_metric_->Increment();
    ok_n_.fetch_add(1, std::memory_order_relaxed);
    outcome_ok_metric_->Increment();
  } else {
    SelectOptions options;
    if (options_.deadline_ms > 0) {
      // Anchored at arrival, not at execution start: time spent queued
      // counts against the SLO, so a backlogged server returns fast
      // partials instead of stacking full-length queries.
      options.control.deadline =
          req.arrival + std::chrono::milliseconds(options_.deadline_ms);
    }
    auto budget = options_.tenant_budgets.find(req.tenant);
    options.control.max_elements_read = budget != options_.tenant_budgets.end()
                                            ? budget->second
                                            : options_.default_element_budget;
    QueryResult result = RunQuery(req, options);
    uint64_t version =
        dynamic_ != nullptr ? result.snapshot_version : sharded_->epoch();
    if (!result.status.ok()) {
      line = req.id + " ERR " + Sanitize(result.status.ToString());
      error_n_.fetch_add(1, std::memory_order_relaxed);
      outcome_error_metric_->Increment();
    } else {
      bool complete = result.termination == Termination::kCompleted;
      line = req.id;
      line += complete ? " OK "
                       : std::string(" PARTIAL ") +
                             TerminationName(result.termination) + " ";
      line += std::to_string(version);
      line += ' ';
      line += std::to_string(result.matches.size());
      char buf[64];
      for (const Match& m : result.matches) {
        // %.17g round-trips a double exactly: the client-side score is
        // bit-identical to the one a direct in-process Select returns.
        std::snprintf(buf, sizeof(buf), " %llu:%.17g",
                      static_cast<unsigned long long>(m.id), m.score);
        line += buf;
      }
      if (complete) {
        ok_n_.fetch_add(1, std::memory_order_relaxed);
        outcome_ok_metric_->Increment();
      } else {
        partial_n_.fetch_add(1, std::memory_order_relaxed);
        outcome_partial_metric_->Increment();
      }
    }
  }
  uint64_t usec = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - req.arrival)
          .count());
  latency_usec_.Observe(usec);
  latency_metric_->Observe(usec);
  Respond(conn, std::move(line), false);
  // Leave the system only after the response bytes are appended: the drain
  // condition (in_system_ == 0 && all out buffers empty) must never observe
  // a request that is gone from the count but not yet in a buffer.
  in_system_.fetch_sub(1, std::memory_order_seq_cst);
  queue_depth_metric_->Add(-1);
}

void Server::Respond(const std::shared_ptr<Conn>& conn, std::string line,
                     bool on_io_thread) {
  line.push_back('\n');
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (conn->closed) return;
    conn->out += line;
  }
  if (on_io_thread) {
    FlushConn(conn);
  } else {
    {
      std::lock_guard<std::mutex> lock(flush_mu_);
      flush_queue_.push_back(conn);
    }
    uint64_t n = 1;
    ssize_t ignored = write(wake_fd_, &n, sizeof(n));
    (void)ignored;
  }
}

void Server::FlushConn(const std::shared_ptr<Conn>& conn) {
  bool fatal = false;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (conn->closed) return;
    while (!conn->out.empty()) {
      ssize_t n = send(conn->fd, conn->out.data(), conn->out.size(),
                       MSG_NOSIGNAL);
      if (n > 0) {
        conn->out.erase(0, static_cast<size_t>(n));
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        if (!conn->want_write) {
          epoll_event ev{};
          ev.events = EPOLLIN | EPOLLOUT;
          ev.data.fd = conn->fd;
          epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
          conn->want_write = true;
        }
        return;
      }
      fatal = true;
      break;
    }
    if (!fatal && conn->want_write) {
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.fd = conn->fd;
      epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
      conn->want_write = false;
    }
  }
  if (fatal) CloseConn(conn);
}

void Server::CloseConn(const std::shared_ptr<Conn>& conn) {
  if (conns_.erase(conn->fd) == 0) return;  // already closed
  epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    conn->closed = true;
    conn->out.clear();
  }
  close(conn->fd);
  conns_metric_->Add(-1);
}

bool Server::DrainComplete() {
  // Order matters: the count first. A worker appends its response (under
  // the conn mutex) before decrementing, so once in_system_ reads 0 every
  // response is visible to the buffer sweep below.
  if (in_system_.load(std::memory_order_seq_cst) != 0) return false;
  {
    std::lock_guard<std::mutex> lock(flush_mu_);
    if (!flush_queue_.empty()) return false;
  }
  for (const auto& [fd, conn] : conns_) {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (!conn->out.empty()) return false;
  }
  return true;
}

}  // namespace simsel::serve
