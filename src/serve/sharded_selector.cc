#include "serve/sharded_selector.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <utility>

#include "common/logging.h"
#include "common/timer.h"
#include "core/hybrid.h"
#include "core/inra.h"
#include "core/internal.h"
#include "core/nra.h"
#include "core/prefix_filter.h"
#include "core/sf.h"
#include "core/sort_by_id.h"
#include "core/ta.h"
#include "obs/flight_recorder.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"

namespace simsel::serve {

namespace {

// Per-stage serving latency attribution. Handles resolve once; recording a
// stage is one histogram Observe (relaxed atomics).
struct StageMetrics {
  obs::Histogram* cache_lookup;
  obs::Histogram* scatter;
  obs::Histogram* merge;
};

const StageMetrics& Stages() {
  static const StageMetrics m = [] {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
    auto get = [&reg](const char* stage) {
      return reg.GetHistogram("simsel_serve_stage_latency_usec",
                              obs::LabelPair("stage", stage));
    };
    return StageMetrics{get("cache_lookup"), get("scatter"), get("merge")};
  }();
  return m;
}

// Per-shard serving latency. Shard counts are small and fixed per process;
// handles are cached lock-free per index (shards beyond kMaxShardLabel share
// the last label so the family stays bounded).
obs::Histogram* ShardLatency(size_t shard) {
  constexpr size_t kMaxShardLabel = 64;
  static std::array<std::atomic<obs::Histogram*>, kMaxShardLabel> cache{};
  const size_t i = std::min(shard, kMaxShardLabel - 1);
  obs::Histogram* h = cache[i].load(std::memory_order_acquire);
  if (h == nullptr) {
    // Benign race: the registry returns one stable pointer per key.
    h = obs::MetricsRegistry::Global().GetHistogram(
        "simsel_shard_latency_usec",
        obs::LabelPair("shard", std::to_string(i)));
    cache[i].store(h, std::memory_order_release);
  }
  return h;
}

}  // namespace

ShardedSelector& ShardedSelector::operator=(ShardedSelector&& other) noexcept {
  tokenizer_ = std::move(other.tokenizer_);
  collection_ = std::move(other.collection_);
  measure_ = std::move(other.measure_);
  shards_ = std::move(other.shards_);
  disk_mode_ = other.disk_mode_;
  pool_ = other.pool_;
  cache_ = std::move(other.cache_);
  epoch_.store(other.epoch_.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
  return *this;
}

ShardedSelector ShardedSelector::Build(const std::vector<std::string>& records,
                                       const ShardedSelectorOptions& options) {
  ShardedSelector sel;
  // Global statistics first: one tokenizer, collection and measure over the
  // whole record set, so every shard scores with collection-wide df/idf and
  // lengths (the exactness contract in the class comment).
  sel.tokenizer_ = Tokenizer(options.build.tokenizer);
  sel.collection_ =
      std::make_unique<Collection>(Collection::Build(records, sel.tokenizer_));
  sel.measure_ = std::make_unique<IdfMeasure>(*sel.collection_);
  const size_t n = sel.collection_->size();
  const size_t num_shards =
      std::max<size_t>(1, std::min(options.num_shards, std::max<size_t>(n, 1)));
  const size_t chunk = (n + num_shards - 1) / num_shards;
  sel.disk_mode_ = options.disk_mode;
  sel.shards_.resize(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    Shard& shard = sel.shards_[i];
    shard.begin = static_cast<SetId>(std::min(n, i * chunk));
    shard.end = static_cast<SetId>(std::min(n, (i + 1) * chunk));
    shard.index = std::make_unique<InvertedIndex>(
        InvertedIndex::BuildShard(*sel.collection_, *sel.measure_, shard.begin,
                                  shard.end, options.build.index));
    shard.prefilter = sketch::AttachPrefilter(*sel.measure_, *shard.index);
    if (options.disk_mode) {
      // Storage is strictly per shard: a store images one index's lists, and
      // pool page keys (token, page) would collide across shards.
      shard.store =
          std::make_unique<PostingStore>(PostingStore::Build(*shard.index));
      if (options.pool_pages > 0) {
        shard.pool = std::make_unique<BufferPool>(
            std::max<size_t>(1, options.pool_pages / num_shards));
      }
    }
  }
  if (options.cache_bytes > 0) {
    ResultCacheOptions cache_options;
    cache_options.capacity_bytes = options.cache_bytes;
    sel.cache_ = std::make_unique<ResultCache>(cache_options);
  }
  return sel;
}

PreparedQuery ShardedSelector::Prepare(std::string_view query) const {
  return measure_->PrepareQuery(tokenizer_.TokenizeCounted(query));
}

QueryResult ShardedSelector::Select(std::string_view query, double tau,
                                    AlgorithmKind kind,
                                    const SelectOptions& options) const {
  obs::TraceScope root(options.trace, "query");
  PreparedQuery q;
  {
    obs::TraceScope span(options.trace, "tokenize");
    q = Prepare(query);
    span.SetItems(q.tokens.size());
  }
  return SelectPrepared(q, tau, kind, options);
}

QueryResult ShardedSelector::SelectPrepared(const PreparedQuery& q, double tau,
                                            AlgorithmKind kind,
                                            const SelectOptions& options) const {
  WallTimer timer;
  tau = internal::ClampTau(tau);
  if (kind == AlgorithmKind::kSql) {
    QueryResult out;
    internal::FailResult(
        Status::InvalidArgument(
            "AlgorithmKind::kSql has no sharded form (the clustered B-tree "
            "is a monolithic structure); query it through "
            "SimilaritySelector"),
        &out);
    out.trace = options.trace;
    return out;
  }

  // Tail sampling for untraced queries, as in SimilaritySelector: the
  // flight recorder's thread-local trace records the serving stages and the
  // stitched shard subtrees, but never escapes to the caller.
  const SelectOptions* run_options = &options;
  SelectOptions sampled;
  if (options.trace == nullptr) {
    if (obs::QueryTrace* t = obs::FlightRecorder::Global().ThreadTrace()) {
      sampled = options;
      sampled.trace = t;
      run_options = &sampled;
    }
  }

  std::string key;
  uint64_t at_epoch = 0;
  if (cache_ != nullptr) {
    WallTimer stage_timer;
    obs::TraceScope span(run_options->trace, "cache_lookup");
    key = ResultCache::MakeKey(q, tau, kind, options, disk_mode_,
                               measure_->name());
    // Read the epoch before executing: a bump landing mid-query then keeps
    // the stale-stamped insert invisible to post-bump lookups.
    at_epoch = epoch();
    CachedResult cached;
    const bool hit = cache_->Lookup(key, at_epoch, &cached);
    Stages().cache_lookup->Observe(
        static_cast<uint64_t>(stage_timer.ElapsedMicros()));
    if (hit) {
      QueryResult out;
      out.matches = std::move(cached.matches);
      out.counters = cached.counters;
      out.trace = options.trace;
      return out;
    }
  }

  QueryResult out = Scatter(q, tau, kind, *run_options);
  if (cache_ != nullptr && out.complete()) {
    cache_->Insert(key, at_epoch, out.matches, out.counters);
  }
  out.trace = options.trace;
  internal::RecordQueryMetrics(kind, out,
                               static_cast<uint64_t>(timer.ElapsedMicros()),
                               run_options->trace);
  return out;
}

QueryResult ShardedSelector::RunShard(const Shard& shard,
                                      const PreparedQuery& q, double tau,
                                      AlgorithmKind kind,
                                      const SelectOptions& options) const {
  if (options.prefilter && shard.prefilter != nullptr &&
      sketch::PrefilterEligible(kind)) {
    QueryResult out;
    if (shard.prefilter->TrySelect(q, tau, options, &out)) return out;
  }
  switch (kind) {
    case AlgorithmKind::kLinearScan: {
      // Range scan of the global collection over this shard's ids (the
      // ParallelLinearScanSelect shard body, rebased onto [begin, end)).
      QueryResult out;
      internal::ControlPoller poller(options.control, out.counters);
      for (SetId s = shard.begin; s < shard.end; ++s) {
        if (((s - shard.begin) & 1023u) == 0 && poller.ShouldStop()) {
          out.termination = poller.termination();
          break;
        }
        ++out.counters.rows_scanned;
        double score = measure_->Score(q, s);
        if (score >= tau) out.matches.push_back(Match{s, score});
      }
      return out;
    }
    case AlgorithmKind::kSql:
      break;  // rejected in SelectPrepared
    case AlgorithmKind::kSortById:
      return SortByIdSelect(*shard.index, *measure_, q, tau, options);
    case AlgorithmKind::kTa:
      return internal::TaEngineSelect(*shard.index, *measure_, q, tau, options,
                                      /*improved=*/false);
    case AlgorithmKind::kNra:
      return NraSelect(*shard.index, *measure_, q, tau, options);
    case AlgorithmKind::kIta:
      return ItaSelect(*shard.index, *measure_, q, tau, options);
    case AlgorithmKind::kInra:
      return InraSelect(*shard.index, *measure_, q, tau, options);
    case AlgorithmKind::kSf:
      return SfSelect(*shard.index, *measure_, q, tau, options);
    case AlgorithmKind::kHybrid:
      return HybridSelect(*shard.index, *measure_, q, tau, options);
    case AlgorithmKind::kPrefixFilter:
      return PrefixFilterSelect(*shard.index, *measure_, q, tau, options);
  }
  SIMSEL_CHECK_MSG(false, "unreachable algorithm kind in RunShard");
  return QueryResult{};
}

QueryResult ShardedSelector::Scatter(const PreparedQuery& q, double tau,
                                     AlgorithmKind kind,
                                     const SelectOptions& options) const {
  const size_t num_shards = shards_.size();
  std::vector<QueryResult> parts(num_shards);
  // First trip cancels siblings: whoever trips (or fails) first records the
  // root cause and raises the shared token; every other shard stops at its
  // next control poll with an induced kCancelled that the merge does NOT
  // report — the root cause is the query's verdict.
  std::atomic<bool> sibling_cancel{false};
  constexpr uint32_t kNoTrip = ~0u;
  std::atomic<uint32_t> first_trip{kNoTrip};

  // Cross-thread tracing: each shard records into its own private child
  // trace (no locks, no sharing while workers run) and the gather step
  // below stitches them under the scatter span in shard order, so the
  // stitched tree's shape is deterministic no matter how the shard tasks
  // interleaved.
  const bool traced = options.trace != nullptr;
  std::vector<obs::QueryTrace> shard_traces(traced ? num_shards : 0);

  // Per-shard execution options: the caller's control fields propagate, and
  // cancel2 is claimed for the sibling token (callers use `cancel`).
  SelectOptions shard_base = options;
  shard_base.trace = nullptr;
  shard_base.control.cancel2 = &sibling_cancel;

  auto run = [&](size_t i) {
    WallTimer shard_timer;
    const Shard& shard = shards_[i];
    SelectOptions shard_options = shard_base;
    if (traced) shard_options.trace = &shard_traces[i];
    shard_options.posting_store = shard.store.get();
    shard_options.buffer_pool = shard.pool.get();
    {
      obs::TraceScope span(shard_options.trace, AlgorithmKindName(kind));
      parts[i] = RunShard(shard, q, tau, kind, shard_options);
      span.SetItems(parts[i].matches.size());
    }
    ShardLatency(i)->Observe(static_cast<uint64_t>(shard_timer.ElapsedMicros()));
    if (parts[i].termination != Termination::kCompleted ||
        !parts[i].status.ok()) {
      uint32_t expected = kNoTrip;
      first_trip.compare_exchange_strong(
          expected, static_cast<uint32_t>(parts[i].termination),
          std::memory_order_acq_rel);
      sibling_cancel.store(true, std::memory_order_release);
    }
  };

  {
    WallTimer stage_timer;
    obs::TraceScope span(options.trace, "scatter");
    span.SetItems(num_shards);
    if (pool_ == nullptr || num_shards == 1) {
      for (size_t i = 0; i < num_shards; ++i) run(i);
    } else {
      // Private join latch instead of ThreadPool::Wait (which waits for the
      // whole pool — other queries' tasks included). Shard 0 runs inline on
      // the calling thread, so even a single-threaded pool makes progress.
      std::mutex mu;
      std::condition_variable done;
      size_t remaining = num_shards - 1;
      for (size_t i = 1; i < num_shards; ++i) {
        pool_->Submit([&run, &mu, &done, &remaining, i] {
          run(i);
          std::lock_guard<std::mutex> lock(mu);
          if (--remaining == 0) done.notify_one();
        });
      }
      run(0);
      std::unique_lock<std::mutex> lock(mu);
      done.wait(lock, [&remaining] { return remaining == 0; });
    }
    // Gather-side stitch: workers are joined, their traces are quiescent.
    if (traced) {
      for (size_t i = 0; i < num_shards; ++i) {
        options.trace->AdoptChild("shard", static_cast<uint32_t>(i),
                                  shard_traces[i], parts[i].matches.size());
      }
    }
    Stages().scatter->Observe(static_cast<uint64_t>(stage_timer.ElapsedMicros()));
  }

  WallTimer merge_timer;
  obs::TraceScope span(options.trace, "merge");
  QueryResult out;
  Status status;
  for (size_t i = 0; i < num_shards; ++i) {
    out.counters.Merge(parts[i].counters);
    // Shard id ranges are contiguous and ascending and each part is sorted
    // by id, so concatenation in shard order IS the canonical order.
    out.matches.insert(out.matches.end(), parts[i].matches.begin(),
                       parts[i].matches.end());
    if (status.ok() && !parts[i].status.ok()) status = parts[i].status;
  }
  const uint32_t trip = first_trip.load(std::memory_order_acquire);
  if (trip != kNoTrip) out.termination = static_cast<Termination>(trip);
  out.counters.results = out.matches.size();
  span.SetItems(out.matches.size());
  if (!status.ok()) internal::FailResult(std::move(status), &out);
  Stages().merge->Observe(static_cast<uint64_t>(merge_timer.ElapsedMicros()));
  return out;
}

std::vector<QueryResult> BatchSelect(const ShardedSelector& selector,
                                     const std::vector<std::string>& queries,
                                     double tau, AlgorithmKind kind,
                                     const SelectOptions& options) {
  std::vector<QueryResult> results(queries.size());
  // Each query records into a private child trace that is stitched into the
  // caller's trace as a `batch_query[i]` subtree after it completes — the
  // caller gets one span tree covering the whole batch (see
  // obs::QueryTrace::AdoptChild).
  const bool traced = options.trace != nullptr;
  obs::TraceScope batch_span(options.trace, "batch");
  obs::QueryTrace child_trace;
  SelectOptions per_query = options;
  constexpr int kMaxAttempts = 3;
  constexpr auto kBackoffBase = std::chrono::microseconds(100);
  for (size_t i = 0; i < queries.size(); ++i) {
    if (traced) {
      child_trace.Clear();
      per_query.trace = &child_trace;
    }
    for (int attempt = 0;; ++attempt) {
      if (traced && attempt > 0) child_trace.Clear();  // trace the last try
      results[i] = selector.Select(queries[i], tau, kind, per_query);
      const Status& st = results[i].status;
      if (st.ok() || !st.IsTransient() || attempt + 1 >= kMaxAttempts) break;
      if (per_query.control.has_deadline() &&
          QueryControl::Clock::now() >= per_query.control.deadline) {
        break;  // no time left to retry; surface the transient failure
      }
      std::this_thread::sleep_for(kBackoffBase * (1 << attempt));
    }
    if (traced) {
      options.trace->AdoptChild("batch_query", static_cast<uint32_t>(i),
                                child_trace, results[i].matches.size());
      // The child trace is reused for the next query; the stitched parent
      // is the only trace that outlives this call.
      results[i].trace = options.trace;
    }
  }
  batch_span.SetItems(queries.size());
  return results;
}

}  // namespace simsel::serve
