#ifndef SIMSEL_SERVE_SERVER_H_
#define SIMSEL_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>

#include "common/status.h"
#include "common/thread_pool.h"
#include "core/types.h"
#include "obs/metrics_registry.h"
#include "serve/dynamic_serving.h"
#include "serve/sharded_selector.h"

namespace simsel::serve {

/// Construction knobs for the network front end.
struct ServerOptions {
  /// Interface to bind (dotted IPv4).
  std::string listen_addr = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port (read it back via port()).
  uint16_t port = 0;
  /// Executor threads. Each admitted request runs on one worker; the
  /// ShardedSelector's own scatter pool (if any) must be a different pool —
  /// the usual nested-fan-out starvation rule (docs/CONCURRENCY.md).
  size_t num_workers = 2;
  /// Admission bound: the maximum number of admitted requests in the system
  /// (queued or executing). A request arriving at the bound is rejected
  /// immediately with the distinct SHED status — shedding early is the
  /// point, a rejected client can retry elsewhere instead of waiting for a
  /// deadline the queue has already spent.
  size_t max_queue = 64;
  /// Per-request SLO: every admitted query gets an absolute deadline of
  /// arrival + deadline_ms (QueryControl::deadline), so queue wait counts
  /// against the budget and an overloaded server degrades to fast partials
  /// instead of unbounded latency. 0 = no deadline.
  size_t deadline_ms = 0;
  /// Element budget (QueryControl::max_elements_read) applied to a query
  /// whose tenant has no entry in tenant_budgets. 0 = unlimited.
  uint64_t default_element_budget = 0;
  /// Per-tenant element budget overrides, keyed by the tenant field of the
  /// request line. The reserved tenant "-" is the anonymous default.
  std::map<std::string, uint64_t> tenant_budgets;
};

/// Minimal TCP serving front end over a ShardedSelector (read-only) or a
/// DynamicServing (read-write): one epoll I/O thread owning every socket,
/// a worker ThreadPool executing admitted requests, queue-depth admission
/// control, per-request deadlines, per-tenant element budgets, and graceful
/// drain.
///
/// **Protocol** — newline-delimited text, one request per line, any number
/// of requests pipelined per connection. The client-chosen id (any token
/// without spaces) is echoed in the response line, so pipelined responses
/// match up regardless of completion order:
///
///     <id> Q <tenant> <tau> <algo> <text...>   threshold selection
///     <id> I <tenant> <text...>                insert (dynamic back end)
///     <id> PING                                liveness probe
///
///     <id> OK <version> <n> <set>:<score> ...      complete answer
///     <id> PARTIAL <reason> <version> <n> <set>:<score> ...
///     <id> SHED                                admission rejection
///     <id> INS <set> <version>                 insert acknowledged
///     <id> ERR <message>                       malformed / failed / draining
///     <id> PONG
///
/// `tau` follows the CLI convention (fraction in (0,1] or percentage in
/// (1,100]); `algo` is the CLI name (sf|inra|hybrid|ita|ta|nra|sortbyid|
/// pf|scan); scores are printed with %.17g so a parsed double is
/// bit-identical to the server-side score. PARTIAL carries the termination
/// reason (deadline|budget|cancelled) — the matches listed are exact, the
/// set may be incomplete (core/types.h Termination).
///
/// **Admission and SLO.** A request is admitted only when fewer than
/// max_queue admitted requests are in the system; otherwise it is answered
/// SHED from the I/O thread without touching a worker. Admitted queries
/// carry an absolute deadline anchored at arrival, so under overload the
/// tail is bounded: either a request sheds instantly or its execution trips
/// at the SLO and returns a sound partial.
///
/// **Drain.** RequestStop (async-signal-safe, wire it to SIGTERM) makes the
/// I/O thread stop accepting connections, answer new requests on live
/// connections with `ERR draining`, and keep pumping until every admitted
/// request has executed and every response byte is flushed; then sockets
/// close, the worker pool shuts down in drain mode, and Join returns. No
/// admitted request is ever dropped.
///
/// **Metrics.** simsel_server_requests_total{outcome=ok|partial|shed|error},
/// simsel_server_inserts_total, simsel_server_queue_depth,
/// simsel_server_active_connections and simsel_server_request_usec (admitted
/// requests, arrival to response) mirror the per-instance tallies exposed
/// below for tests.
class Server {
 public:
  /// Serve a read-only sharded back end (Q only; I answers ERR).
  Server(const ShardedSelector* sharded, const ServerOptions& options);
  /// Serve a read-write dynamic back end (Q and I).
  Server(DynamicServing* dynamic, const ServerOptions& options);
  /// Shutdown() if still running.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and spawns the I/O thread + worker pool. Non-blocking;
  /// after an OK return the server is reachable on port().
  Status Start();

  /// The bound port (resolves an ephemeral request after Start).
  uint16_t port() const { return port_; }

  /// Begins a graceful drain. Async-signal-safe (one eventfd write), so a
  /// SIGTERM handler may call it directly. Idempotent.
  void RequestStop();

  /// Blocks until the drain completes and every thread exited.
  void Join();

  /// RequestStop() + Join().
  void Shutdown();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Per-instance tallies (the registry metrics aggregate across servers).
  uint64_t ok_count() const { return ok_n_.load(std::memory_order_relaxed); }
  uint64_t partial_count() const {
    return partial_n_.load(std::memory_order_relaxed);
  }
  uint64_t shed_count() const {
    return shed_n_.load(std::memory_order_relaxed);
  }
  uint64_t error_count() const {
    return error_n_.load(std::memory_order_relaxed);
  }
  uint64_t insert_count() const {
    return insert_n_.load(std::memory_order_relaxed);
  }
  /// Admitted requests currently in the system (queued or executing).
  size_t queue_depth() const {
    return in_system_.load(std::memory_order_relaxed);
  }
  /// Arrival-to-response latency of admitted requests, microseconds.
  obs::HistogramSnapshot latency_snapshot() const {
    return latency_usec_.Snapshot();
  }

 private:
  struct Conn;
  struct Request;

  Server(const ShardedSelector* sharded, DynamicServing* dynamic,
         const ServerOptions& options);

  void IoLoop();
  void HandleReadable(const std::shared_ptr<Conn>& conn);
  /// Parses and routes one request line (I/O thread).
  void HandleLine(const std::shared_ptr<Conn>& conn, std::string_view line);
  /// Executes one admitted request (worker thread).
  void Execute(const std::shared_ptr<Conn>& conn, const Request& req);
  QueryResult RunQuery(const Request& req, const SelectOptions& options) const;

  /// Appends a response line and (worker) queues the flush or (I/O thread)
  /// flushes inline.
  void Respond(const std::shared_ptr<Conn>& conn, std::string line,
               bool on_io_thread);
  /// Writes as much buffered output as the socket accepts (I/O thread).
  void FlushConn(const std::shared_ptr<Conn>& conn);
  void CloseConn(const std::shared_ptr<Conn>& conn);
  void AcceptNew();
  bool DrainComplete();

  const ShardedSelector* sharded_ = nullptr;
  DynamicServing* dynamic_ = nullptr;
  ServerOptions options_;
  uint16_t port_ = 0;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::thread io_thread_;
  std::unique_ptr<ThreadPool> workers_;

  std::map<int, std::shared_ptr<Conn>> conns_;  // I/O thread only

  /// Connections with response bytes appended by workers, awaiting an I/O
  /// thread flush.
  std::mutex flush_mu_;
  std::vector<std::shared_ptr<Conn>> flush_queue_;

  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> running_{false};
  std::atomic<size_t> in_system_{0};

  std::atomic<uint64_t> ok_n_{0};
  std::atomic<uint64_t> partial_n_{0};
  std::atomic<uint64_t> shed_n_{0};
  std::atomic<uint64_t> error_n_{0};
  std::atomic<uint64_t> insert_n_{0};
  obs::Histogram latency_usec_;

  obs::Gauge* queue_depth_metric_;
  obs::Gauge* conns_metric_;
  obs::Counter* inserts_metric_;
  obs::Histogram* latency_metric_;
  obs::Counter* outcome_ok_metric_;
  obs::Counter* outcome_partial_metric_;
  obs::Counter* outcome_shed_metric_;
  obs::Counter* outcome_error_metric_;
};

/// Parses the protocol's algorithm token (the CLI names); false on an
/// unknown name.
bool ParseAlgoName(std::string_view name, AlgorithmKind* kind);
/// The protocol token for `kind` (inverse of ParseAlgoName).
const char* AlgoToken(AlgorithmKind kind);

}  // namespace simsel::serve

#endif  // SIMSEL_SERVE_SERVER_H_
