#ifndef SIMSEL_SERVE_RESULT_CACHE_H_
#define SIMSEL_SERVE_RESULT_CACHE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "core/types.h"
#include "sim/measure.h"

namespace simsel {

namespace obs {
class Counter;
class Gauge;
}  // namespace obs

namespace serve {

/// Construction knobs for the serving layer's result cache.
struct ResultCacheOptions {
  /// Byte budget across all shards (keys + matches + per-entry overhead).
  /// Must be >= 1; an entry larger than its shard's slice is simply not
  /// cached.
  size_t capacity_bytes = 64u << 20;
  /// 0 picks max(1, min(16, capacity_bytes / 4MiB)) rounded down to a power
  /// of two — the same auto-sharding idea as BufferPool: small caches keep
  /// exact global LRU, serving-sized caches trade it for concurrency.
  size_t num_shards = 0;
};

/// The cached portion of a QueryResult: exactly what is identical across
/// re-executions of a complete query — the matches with their canonical
/// scores and the access counters of the execution that filled the entry.
/// Termination/status are not stored (only complete, OK results are ever
/// inserted) and the trace pointer is per-execution by contract.
struct CachedResult {
  std::vector<Match> matches;
  AccessCounters counters;
};

/// Sharded LRU cache of complete query answers, keyed by the full query
/// fingerprint and stamped with the owning index's *epoch*.
///
/// Invalidation is O(1) and scan-free: a collection update (see
/// DynamicSelector::version / ShardedSelector::BumpEpoch) bumps the epoch,
/// and every entry carrying an older stamp is treated as a miss — and
/// erased — the next time its key is looked up. Nothing walks the cache.
///
/// Thread-safe: entries are sharded by key hash with one mutex, one LRU
/// chain and one byte budget per shard (the BufferPool recipe); hit/miss/
/// insertion/eviction/invalidation tallies are relaxed atomics mirrored
/// into the process-wide `simsel_result_cache_*` metric family, and the
/// resident-bytes gauge is reconciled on Clear and destruction.
class ResultCache {
 public:
  explicit ResultCache(ResultCacheOptions options = {});
  ~ResultCache();

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Renders the query fingerprint every answer-affecting input feeds into:
  /// the prepared tokens with their query-side tfs (already normalized —
  /// distinct, ascending TokenId), the *clamped* τ and the query normalizer
  /// (bit patterns, so distinct unknown-token mass never aliases), the
  /// algorithm, the measure name, and the SelectOptions ablation toggles +
  /// `disk_mode` bit (they change counters, so distinct configurations must
  /// not share entries; the serving layer passes its own storage binding,
  /// not the caller's, which it ignores). Deadline/budget/cancel are
  /// deliberately excluded: they bound execution, never the complete answer,
  /// and only complete answers are cached.
  static std::string MakeKey(const PreparedQuery& q, double clamped_tau,
                             AlgorithmKind kind, const SelectOptions& options,
                             bool disk_mode, std::string_view measure_name);

  /// Looks `key` up at `epoch`. A fresh entry is copied into `*out` (moved
  /// to the front of its shard's LRU) and counted as a hit; a missing key is
  /// a miss; a stale-epoch entry is erased and counted as both an
  /// invalidation and a miss.
  bool Lookup(const std::string& key, uint64_t epoch, CachedResult* out);

  /// Inserts (or replaces) the entry for `key` at `epoch`. Call only with
  /// complete, OK results — the caller checks QueryResult::complete().
  /// Evicts from the tail of the key's shard until the entry fits; an entry
  /// larger than the whole shard budget is dropped without disturbing the
  /// cache.
  void Insert(const std::string& key, uint64_t epoch,
              const std::vector<Match>& matches, const AccessCounters& counters);

  /// Drops every entry (the instance tallies stay; the process-wide gauge is
  /// reconciled).
  void Clear();

  size_t capacity_bytes() const { return capacity_bytes_; }
  size_t num_shards() const { return shards_.size(); }
  /// Resident bytes / entries right now (locks each shard briefly; a
  /// snapshot under concurrent traffic).
  size_t size_bytes() const;
  size_t entries() const;

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  uint64_t insertions() const {
    return insertions_.load(std::memory_order_relaxed);
  }
  uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  uint64_t invalidations() const {
    return invalidations_.load(std::memory_order_relaxed);
  }
  double HitRate() const {
    uint64_t h = hits();
    uint64_t total = h + misses();
    return total == 0 ? 0.0 : static_cast<double>(h) / total;
  }

  /// Bytes an entry occupies in the accounting (exposed for tests sizing
  /// eviction scenarios).
  static size_t EntryBytes(const std::string& key, size_t num_matches);

 private:
  struct Entry {
    std::string key;
    uint64_t epoch = 0;
    size_t bytes = 0;
    CachedResult result;
  };
  struct Shard {
    std::mutex mu;
    // Front = most recently used.
    std::list<Entry> lru;
    std::unordered_map<std::string_view, std::list<Entry>::iterator> map;
    size_t capacity = 0;
    size_t bytes = 0;
  };

  Shard& ShardFor(const std::string& key);
  /// Unlinks `it` from `shard` (map, LRU chain, byte count + gauge).
  void Erase(Shard* shard, std::list<Entry>::iterator it);

  size_t capacity_bytes_;
  std::vector<std::unique_ptr<Shard>> shards_;
  size_t shard_mask_;

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> insertions_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> invalidations_{0};
  // Process-wide mirrors (simsel_result_cache_*), pooled across instances.
  obs::Counter* hits_metric_;
  obs::Counter* misses_metric_;
  obs::Counter* insertions_metric_;
  obs::Counter* evictions_metric_;
  obs::Counter* invalidations_metric_;
  obs::Gauge* bytes_metric_;
};

}  // namespace serve
}  // namespace simsel

#endif  // SIMSEL_SERVE_RESULT_CACHE_H_
