#ifndef SIMSEL_SERVE_SHARDED_SELECTOR_H_
#define SIMSEL_SERVE_SHARDED_SELECTOR_H_

#include <atomic>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/thread_pool.h"
#include "core/selector.h"
#include "core/types.h"
#include "serve/result_cache.h"
#include "storage/buffer_pool.h"
#include "storage/posting_store.h"

namespace simsel::serve {

/// Construction knobs for the serving layer.
struct ShardedSelectorOptions {
  /// Number of collection partitions (clamped to [1, #records]). Each shard
  /// gets its own InvertedIndex over a contiguous global-id range.
  size_t num_shards = 4;
  /// Tokenizer / index knobs for the global structures and every shard
  /// index. `build_sql_baseline` is ignored: the SQL baseline's clustered
  /// B-tree has no sharded form (AlgorithmKind::kSql is rejected, see
  /// Select).
  BuildOptions build;
  /// Serve postings from per-shard disk-resident PostingStores instead of
  /// the in-memory arrays.
  bool disk_mode = false;
  /// Frames of the per-shard BufferPool in disk mode (the modeled page
  /// cache, capacity split across shards). 0 = no pools.
  size_t pool_pages = 0;
  /// Byte budget of the result cache in front of the scatter-gather path.
  /// 0 = no cache.
  size_t cache_bytes = 0;
};

/// The serving layer: one `Collection` partitioned into K shards, queries
/// executed scatter-gather across a thread pool, a versioned result cache in
/// front.
///
/// **Exactness.** Global statistics, local postings: the tokenizer,
/// `Collection` and `IdfMeasure` (df, idf, len(s), len(q)) are built once
/// over the whole collection, and each shard's `InvertedIndex` covers the
/// contiguous global-id range [i·⌈N/K⌉, (i+1)·⌈N/K⌉) with *global* ids and
/// lengths (InvertedIndex::BuildShard). Every shard therefore scores with
/// the same numbers as a single global index, shard ranges are disjoint and
/// ascending, and the merged answer — matches concatenated in shard order,
/// counters summed — is byte-identical to the single-index answer.
///
/// **Cancellation.** Each scatter carries a per-query sibling-cancel token
/// through `QueryControl::cancel2` (the caller's own deadline / budget /
/// cancel token propagates untouched): the first shard to trip or fail
/// records the root cause and trips the token, so sibling shards stop at
/// their next poll instead of completing doomed work. The merged result
/// reports the root cause (e.g. kDeadline), not the siblings' induced
/// kCancelled.
///
/// **Caching.** With `cache_bytes > 0`, complete (untripped, OK) answers are
/// cached under the full query fingerprint (ResultCache::MakeKey) stamped
/// with the current epoch. `BumpEpoch` / `SetEpoch` — wire them to whatever
/// makes the collection stale, e.g. DynamicSelector::version() — invalidate
/// every older entry in O(1), without scanning.
///
/// Thread-compatible after Build: const queries may run concurrently (the
/// cache and epoch are internally synchronized). Do not call Select from a
/// task running on the same pool: the caller blocks on its shard fan-out,
/// and a pool whose every worker does that starves (the nested-ParallelFor
/// rule of docs/CONCURRENCY.md). Shard 0 always runs inline on the calling
/// thread, so a null or single-threaded pool degrades to serial execution
/// rather than deadlock.
class ShardedSelector {
 public:
  /// Tokenizes and indexes `records` into `options.num_shards` shards
  /// (record i becomes global SetId i).
  static ShardedSelector Build(const std::vector<std::string>& records,
                               const ShardedSelectorOptions& options = {});

  // Movable (the epoch atomic forces spelling it out), not copyable.
  ShardedSelector(ShardedSelector&& other) noexcept { *this = std::move(other); }
  ShardedSelector& operator=(ShardedSelector&& other) noexcept;
  ShardedSelector(const ShardedSelector&) = delete;
  ShardedSelector& operator=(const ShardedSelector&) = delete;

  /// Workers for the shard fan-out (borrowed; null = run shards serially on
  /// the calling thread). Not synchronized with in-flight queries: set it
  /// before serving.
  void set_thread_pool(ThreadPool* pool) { pool_ = pool; }

  /// Scatter-gather selection; same semantics as SimilaritySelector::Select
  /// (τ clamping, bounded execution, partial results) with two differences:
  /// AlgorithmKind::kSql returns InvalidArgument, and
  /// `options.posting_store` / `options.buffer_pool` are ignored — storage
  /// binding is per shard and owned by this class (a caller-supplied store
  /// would address the wrong index).
  QueryResult Select(std::string_view query, double tau,
                     AlgorithmKind kind = AlgorithmKind::kSf,
                     const SelectOptions& options = SelectOptions()) const;

  PreparedQuery Prepare(std::string_view query) const;
  QueryResult SelectPrepared(const PreparedQuery& q, double tau,
                             AlgorithmKind kind,
                             const SelectOptions& options) const;

  size_t num_shards() const { return shards_.size(); }
  SetId shard_begin(size_t shard) const { return shards_[shard].begin; }
  SetId shard_end(size_t shard) const { return shards_[shard].end; }
  const InvertedIndex& shard_index(size_t shard) const {
    return *shards_[shard].index;
  }
  bool disk_mode() const { return disk_mode_; }

  const Tokenizer& tokenizer() const { return tokenizer_; }
  const Collection& collection() const { return *collection_; }
  const IdfMeasure& measure() const { return *measure_; }

  /// Result cache, or null when built with cache_bytes == 0.
  ResultCache* result_cache() const { return cache_.get(); }

  /// The epoch cached answers are stamped with.
  uint64_t epoch() const { return epoch_.load(std::memory_order_relaxed); }
  /// Marks every currently cached answer stale (O(1)). Call on any change
  /// that can alter answers — collection updates, index rebuilds.
  void BumpEpoch() { epoch_.fetch_add(1, std::memory_order_relaxed); }
  /// Mirrors an external monotone version counter (DynamicSelector::version)
  /// into the epoch.
  void SetEpoch(uint64_t epoch) {
    epoch_.store(epoch, std::memory_order_relaxed);
  }

 private:
  struct Shard {
    SetId begin = 0;
    SetId end = 0;
    std::unique_ptr<InvertedIndex> index;
    std::unique_ptr<PostingStore> store;  // disk mode only
    std::unique_ptr<BufferPool> pool;     // disk mode with pool_pages > 0
    /// Sketch prefilter tier over this shard's id range (null when the
    /// shard index carries no sketches). Shard answers stay byte-identical
    /// to the kernels', so the scatter-gather merge argument is unchanged.
    std::unique_ptr<sketch::Prefilter> prefilter;
  };

  ShardedSelector() = default;

  /// Runs `kind` over one shard with the global measure/query. `options` has
  /// already been rebound (trace stripped, cancel2 + shard storage set).
  QueryResult RunShard(const Shard& shard, const PreparedQuery& q, double tau,
                       AlgorithmKind kind, const SelectOptions& options) const;

  /// The scatter-gather miss path; tau is already clamped.
  QueryResult Scatter(const PreparedQuery& q, double tau, AlgorithmKind kind,
                      const SelectOptions& options) const;

  Tokenizer tokenizer_;
  std::unique_ptr<Collection> collection_;
  std::unique_ptr<IdfMeasure> measure_;
  std::vector<Shard> shards_;
  bool disk_mode_ = false;
  ThreadPool* pool_ = nullptr;
  std::unique_ptr<ResultCache> cache_;
  std::atomic<uint64_t> epoch_{1};
};

/// Runs one selection per query string against the sharded selector,
/// sequentially on the calling thread — each query already fans out across
/// the pool, so stacking inter-query parallelism on top would oversubscribe
/// it (and worse, deadlock: Select must not run on the pool it scatters to).
/// Results are positionally aligned with `queries`. Matches core
/// BatchSelect's resilience contract: `options.control` applies to every
/// query (absolute deadline, shared cancel token) and transient
/// (kUnavailable) failures are retried up to two more times with bounded
/// exponential backoff unless the deadline has passed.
std::vector<QueryResult> BatchSelect(const ShardedSelector& selector,
                                     const std::vector<std::string>& queries,
                                     double tau, AlgorithmKind kind,
                                     const SelectOptions& options);

}  // namespace simsel::serve

#endif  // SIMSEL_SERVE_SHARDED_SELECTOR_H_
