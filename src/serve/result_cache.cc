#include "serve/result_cache.h"

#include <algorithm>
#include <cstring>
#include <iterator>

#include "common/logging.h"
#include "obs/metrics_registry.h"

namespace simsel::serve {

namespace {

/// Accounting charge per entry beyond key and matches: list/map node
/// bookkeeping plus the stored counters. An estimate — the budget models
/// memory, it does not meter the allocator.
constexpr size_t kEntryOverhead = 96 + sizeof(AccessCounters);

void AppendBytes(std::string* out, const void* data, size_t n) {
  out->append(static_cast<const char*>(data), n);
}

template <typename T>
void AppendPod(std::string* out, T value) {
  AppendBytes(out, &value, sizeof(value));
}

size_t PickShards(const ResultCacheOptions& options) {
  size_t shards = options.num_shards;
  if (shards == 0) {
    shards = std::max<size_t>(
        1, std::min<size_t>(16, options.capacity_bytes / (4u << 20)));
  }
  // Round down to a power of two so the Fibonacci mix can mask.
  while ((shards & (shards - 1)) != 0) shards &= shards - 1;
  return shards;
}

}  // namespace

ResultCache::ResultCache(ResultCacheOptions options)
    : capacity_bytes_(options.capacity_bytes) {
  SIMSEL_CHECK_MSG(capacity_bytes_ >= 1, "cache capacity must be >= 1 byte");
  size_t num_shards = PickShards(options);
  shard_mask_ = num_shards - 1;
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
    shards_.back()->capacity = capacity_bytes_ / num_shards;
  }
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  hits_metric_ = reg.GetCounter("simsel_result_cache_hits_total");
  misses_metric_ = reg.GetCounter("simsel_result_cache_misses_total");
  insertions_metric_ = reg.GetCounter("simsel_result_cache_insertions_total");
  evictions_metric_ = reg.GetCounter("simsel_result_cache_evictions_total");
  invalidations_metric_ =
      reg.GetCounter("simsel_result_cache_invalidations_total");
  bytes_metric_ = reg.GetGauge("simsel_result_cache_bytes");
}

ResultCache::~ResultCache() {
  // Reconcile the process-wide gauge: this instance's resident bytes leave
  // the process with it. Per shard under its lock, the same discipline as
  // Insert/Erase/Clear.
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    if (shard->bytes != 0) {
      bytes_metric_->Add(-static_cast<int64_t>(shard->bytes));
    }
  }
}

size_t ResultCache::EntryBytes(const std::string& key, size_t num_matches) {
  return kEntryOverhead + key.size() + num_matches * sizeof(Match);
}

std::string ResultCache::MakeKey(const PreparedQuery& q, double clamped_tau,
                                 AlgorithmKind kind,
                                 const SelectOptions& options, bool disk_mode,
                                 std::string_view measure_name) {
  std::string key;
  key.reserve(32 + measure_name.size() +
              q.tokens.size() * (sizeof(TokenId) + sizeof(uint32_t)));
  key.push_back(static_cast<char>(kind));
  uint8_t flags = 0;
  flags |= options.length_bounding ? 1u << 0 : 0;
  flags |= options.use_skip_index ? 1u << 1 : 0;
  flags |= options.order_preservation ? 1u << 2 : 0;
  flags |= options.magnitude_bound ? 1u << 3 : 0;
  flags |= options.f_cutoff ? 1u << 4 : 0;
  flags |= options.lazy_candidate_scan ? 1u << 5 : 0;
  flags |= disk_mode ? 1u << 6 : 0;
  key.push_back(static_cast<char>(flags));
  key.append(measure_name);
  key.push_back('\0');
  // Bit patterns, not values: -0.0 vs 0.0 never matters here, but distinct
  // lengths from distinct unknown-token mass must never alias.
  uint64_t tau_bits, len_bits;
  static_assert(sizeof(tau_bits) == sizeof(clamped_tau), "double is 64-bit");
  std::memcpy(&tau_bits, &clamped_tau, sizeof(tau_bits));
  std::memcpy(&len_bits, &q.length, sizeof(len_bits));
  AppendPod(&key, tau_bits);
  AppendPod(&key, len_bits);
  AppendPod(&key, q.multiset_size);
  AppendPod(&key, static_cast<uint32_t>(q.unknown_tokens));
  AppendPod(&key, static_cast<uint32_t>(q.tokens.size()));
  for (size_t i = 0; i < q.tokens.size(); ++i) {
    AppendPod(&key, q.tokens[i]);
    AppendPod(&key, q.tfs[i]);
  }
  return key;
}

ResultCache::Shard& ResultCache::ShardFor(const std::string& key) {
  // Fibonacci mix over the string hash so clustered hashes spread.
  size_t h = std::hash<std::string>{}(key);
  return *shards_[((h * 0x9E3779B97F4A7C15ull) >> 32) & shard_mask_];
}

void ResultCache::Erase(Shard* shard, std::list<Entry>::iterator it) {
  shard->bytes -= it->bytes;
  bytes_metric_->Add(-static_cast<int64_t>(it->bytes));
  shard->map.erase(std::string_view(it->key));
  shard->lru.erase(it);
}

bool ResultCache::Lookup(const std::string& key, uint64_t epoch,
                         CachedResult* out) {
  Shard& shard = ShardFor(key);
  bool invalidated = false;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto found = shard.map.find(std::string_view(key));
    if (found != shard.map.end()) {
      auto it = found->second;
      if (it->epoch == epoch) {
        shard.lru.splice(shard.lru.begin(), shard.lru, it);
        *out = it->result;
        hits_.fetch_add(1, std::memory_order_relaxed);
        hits_metric_->Increment();
        return true;
      }
      // Stamped before the last index update: the answer may have changed.
      Erase(&shard, it);
      invalidated = true;
    }
  }
  if (invalidated) {
    invalidations_.fetch_add(1, std::memory_order_relaxed);
    invalidations_metric_->Increment();
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  misses_metric_->Increment();
  return false;
}

void ResultCache::Insert(const std::string& key, uint64_t epoch,
                         const std::vector<Match>& matches,
                         const AccessCounters& counters) {
  const size_t bytes = EntryBytes(key, matches.size());
  Shard& shard = ShardFor(key);
  uint64_t evicted = 0;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    if (bytes > shard.capacity) return;  // would evict the whole shard
    auto found = shard.map.find(std::string_view(key));
    if (found != shard.map.end()) Erase(&shard, found->second);
    while (shard.bytes + bytes > shard.capacity) {
      Erase(&shard, std::prev(shard.lru.end()));
      ++evicted;
    }
    shard.lru.push_front(Entry{key, epoch, bytes, {matches, counters}});
    shard.map.emplace(std::string_view(shard.lru.front().key),
                      shard.lru.begin());
    shard.bytes += bytes;
    // The gauge mirror must move under the same shard lock as shard.bytes:
    // outside it, a racing Clear() can sweep the shard (subtracting the new
    // entry's bytes via the swept total) before this Add lands, leaving the
    // process-wide gauge permanently above the resident truth — the gauge
    // would no longer return to zero after Clear.
    bytes_metric_->Add(static_cast<int64_t>(bytes));
  }
  insertions_.fetch_add(1, std::memory_order_relaxed);
  insertions_metric_->Increment();
  if (evicted > 0) {
    evictions_.fetch_add(evicted, std::memory_order_relaxed);
    evictions_metric_->Increment(evicted);
  }
}

void ResultCache::Clear() {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    // Decrement the gauge under the same lock that zeroes the shard (see
    // Insert): deferring a captured total past the unlock lets concurrent
    // insert/evict traffic observe — and a destructor snapshot bake in — a
    // gauge that disagrees with the resident bytes.
    if (shard->bytes != 0) {
      bytes_metric_->Add(-static_cast<int64_t>(shard->bytes));
    }
    shard->map.clear();
    shard->lru.clear();
    shard->bytes = 0;
  }
}

size_t ResultCache::size_bytes() const {
  size_t bytes = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    bytes += shard->bytes;
  }
  return bytes;
}

size_t ResultCache::entries() const {
  size_t n = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    n += shard->lru.size();
  }
  return n;
}

}  // namespace simsel::serve
