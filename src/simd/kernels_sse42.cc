// SSE4.2 kernel variant. This file is compiled with -msse4.2 on x86-64
// targets only (see src/CMakeLists.txt); execution is additionally gated at
// runtime by __builtin_cpu_supports, so a binary carrying this code is safe
// on CPUs without the feature. On other targets the getter returns null.

#include "simd/kernels.h"

#if defined(__SSE4_2__)

#include <nmmintrin.h>

#include "simd/kernels_x86_inl.h"

namespace simsel::simd {
namespace {

void DeltaPrefixSumU32(uint32_t first, const uint32_t* deltas, size_t n,
                       uint32_t* out) {
  __m128i carry = _mm_set1_epi32(static_cast<int>(first));
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m128i x = _mm_loadu_si128(reinterpret_cast<const __m128i*>(deltas + i));
    x = x86::PrefixSum4(x);
    x = _mm_add_epi32(x, carry);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i), x);
    carry = _mm_shuffle_epi32(x, _MM_SHUFFLE(3, 3, 3, 3));
  }
  uint32_t run = i == 0 ? first : out[i - 1];
  for (; i < n; ++i) {
    run += deltas[i];
    out[i] = run;
  }
}

void BitsAddBaseF32(const uint32_t* deltas, size_t n, uint32_t base_bits,
                    float* out) {
  const __m128i base = _mm_set1_epi32(static_cast<int>(base_bits));
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m128i x = _mm_loadu_si128(reinterpret_cast<const __m128i*>(deltas + i));
    x = _mm_add_epi32(x, base);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i), x);
  }
  for (; i < n; ++i) {
    uint32_t bits = base_bits + deltas[i];
    __builtin_memcpy(&out[i], &bits, sizeof(float));
  }
}

size_t CountLeF32(const float* values, size_t n, float bound) {
  const __m128 b = _mm_set1_ps(bound);
  size_t count = 0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128 x = _mm_loadu_ps(values + i);
    count += static_cast<size_t>(
        _mm_popcnt_u32(static_cast<unsigned>(_mm_movemask_ps(_mm_cmple_ps(x, b)))));
  }
  for (; i < n; ++i) count += values[i] <= bound ? 1 : 0;
  return count;
}

size_t CountLtF32(const float* values, size_t n, float bound) {
  const __m128 b = _mm_set1_ps(bound);
  size_t count = 0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128 x = _mm_loadu_ps(values + i);
    count += static_cast<size_t>(
        _mm_popcnt_u32(static_cast<unsigned>(_mm_movemask_ps(_mm_cmplt_ps(x, b)))));
  }
  for (; i < n; ++i) count += values[i] < bound ? 1 : 0;
  return count;
}

size_t IntersectPosU32(const uint32_t* a, size_t na, const uint32_t* b,
                       size_t nb, uint32_t* pos_out) {
  return x86::IntersectPosU32Tiled(a, na, b, nb, pos_out);
}

constexpr SpanKernels kSse42 = {
    "sse4.2",      DeltaPrefixSumU32, BitsAddBaseF32,
    CountLeF32,    CountLtF32,        IntersectPosU32,
};

}  // namespace

const SpanKernels* Sse42Kernels() {
  return __builtin_cpu_supports("sse4.2") ? &kSse42 : nullptr;
}

}  // namespace simsel::simd

#else  // !defined(__SSE4_2__)

namespace simsel::simd {
const SpanKernels* Sse42Kernels() { return nullptr; }
}  // namespace simsel::simd

#endif
