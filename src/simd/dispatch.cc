#include <cstdlib>

#include "simd/kernels.h"

namespace simsel::simd {

namespace {

const SpanKernels& Resolve() {
  // SIMSEL_FORCE_SCALAR: any non-empty value other than "0" pins the
  // reference implementation (check.sh runs the whole unit suite this way
  // so both dispatch outcomes stay green).
  const char* force = std::getenv("SIMSEL_FORCE_SCALAR");
  if (force != nullptr && force[0] != '\0' &&
      !(force[0] == '0' && force[1] == '\0')) {
    return ScalarKernels();
  }
  if (const SpanKernels* avx2 = Avx2Kernels()) return *avx2;
  if (const SpanKernels* sse42 = Sse42Kernels()) return *sse42;
  return ScalarKernels();
}

}  // namespace

const SpanKernels& Kernels() {
  // Resolved exactly once per process; every caller thereafter pays one
  // indirect load. The env override is read at first use, matching how the
  // sanitizer runners set it (before the binary starts).
  static const SpanKernels& kernels = Resolve();
  return kernels;
}

}  // namespace simsel::simd
