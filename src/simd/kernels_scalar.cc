#include "simd/kernels.h"

namespace simsel::simd {
namespace {

// The reference semantics every vector variant must reproduce bit-for-bit.
// Kept branch-light but deliberately simple: this is the implementation the
// parity suite trusts and the SIMSEL_FORCE_SCALAR escape hatch runs.

void DeltaPrefixSumU32(uint32_t first, const uint32_t* deltas, size_t n,
                       uint32_t* out) {
  uint32_t run = first;
  for (size_t i = 0; i < n; ++i) {
    run += deltas[i];  // wrapping uint32 add
    out[i] = run;
  }
}

void BitsAddBaseF32(const uint32_t* deltas, size_t n, uint32_t base_bits,
                    float* out) {
  for (size_t i = 0; i < n; ++i) {
    uint32_t bits = base_bits + deltas[i];
    __builtin_memcpy(&out[i], &bits, sizeof(float));
  }
}

size_t CountLeF32(const float* values, size_t n, float bound) {
  size_t count = 0;
  for (size_t i = 0; i < n; ++i) count += values[i] <= bound ? 1 : 0;
  return count;
}

size_t CountLtF32(const float* values, size_t n, float bound) {
  size_t count = 0;
  for (size_t i = 0; i < n; ++i) count += values[i] < bound ? 1 : 0;
  return count;
}

size_t IntersectPosU32(const uint32_t* a, size_t na, const uint32_t* b,
                       size_t nb, uint32_t* pos_out) {
  size_t i = 0, j = 0, k = 0;
  while (i < na && j < nb) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      pos_out[k++] = static_cast<uint32_t>(i);
      ++i;
      ++j;
    }
  }
  return k;
}

constexpr SpanKernels kScalar = {
    "scalar",      DeltaPrefixSumU32, BitsAddBaseF32,
    CountLeF32,    CountLtF32,        IntersectPosU32,
};

}  // namespace

const SpanKernels& ScalarKernels() { return kScalar; }

}  // namespace simsel::simd
