#ifndef SIMSEL_SIMD_KERNELS_H_
#define SIMSEL_SIMD_KERNELS_H_

#include <cstddef>
#include <cstdint>

namespace simsel::simd {

/// The vectorizable inner loops of the span path, behind one function-
/// pointer table so the whole process picks an implementation exactly once
/// at startup (runtime CPUID dispatch; see Kernels()).
///
/// Every variant is *bit-exact* against the scalar reference — enforced by
/// tests/simd_kernels_test.cc — which is what lets the repo keep its
/// bit-identical-scores invariant (sim/idf.h): the kernels only move and
/// compare integers/float bit patterns; no floating-point sum is ever
/// reassociated. In particular the score path uses intersect_pos_u32 to
/// find matching query positions and then accumulates the weights in
/// ascending position order with plain scalar adds.
struct SpanKernels {
  /// Human-readable variant name ("scalar", "sse4.2", "avx2").
  const char* name;

  /// out[i] = first + deltas[0] + ... + deltas[i], with wrapping uint32
  /// adds (deltas are zigzag-decoded two's-complement values). This is the
  /// block delta-decode: the codec parses varints into `deltas` and one
  /// prefix-sum pass materializes absolute ids.
  void (*delta_prefix_sum_u32)(uint32_t first, const uint32_t* deltas,
                               size_t n, uint32_t* out);

  /// out[i] = bit_cast<float>(base_bits + deltas[i]) — the length half of
  /// the block decode (bit-packed deltas over IEEE-754 bit patterns).
  void (*bits_add_base_f32)(const uint32_t* deltas, size_t n,
                            uint32_t base_bits, float* out);

  /// Number of values[i] <= bound. On an ascending array this equals the
  /// std::upper_bound index — the λ-cutoff length filter that clips a span
  /// at a length bound inside a mixed block.
  size_t (*count_le_f32)(const float* values, size_t n, float bound);

  /// Number of values[i] < bound (== std::lower_bound index on an
  /// ascending array; the inclusive end of a window seek).
  size_t (*count_lt_f32)(const float* values, size_t n, float bound);

  /// Sorted-set intersection of two strictly-ascending uint32 arrays:
  /// writes the positions *in a* of the common elements, in ascending
  /// order, and returns the match count. pos_out must hold min(na, nb)
  /// entries. The score/overlap accumulate path runs this kernel and then
  /// sums weights at the returned positions in order, keeping the sum
  /// order — and therefore the score bits — identical to the scalar
  /// two-pointer walk.
  size_t (*intersect_pos_u32)(const uint32_t* a, size_t na, const uint32_t* b,
                              size_t nb, uint32_t* pos_out);
};

/// The portable reference implementation (always available).
const SpanKernels& ScalarKernels();

/// SSE4.2 / AVX2 variants: non-null only when the binary carries the code
/// path (x86-64 build) AND the running CPU reports the feature. Exposed so
/// the parity suite can test every variant the machine supports.
const SpanKernels* Sse42Kernels();
const SpanKernels* Avx2Kernels();

/// The process-wide table, resolved once on first use: AVX2 > SSE4.2 >
/// scalar, overridable with SIMSEL_FORCE_SCALAR=1 in the environment (any
/// non-empty value other than "0" forces the scalar reference — the knob
/// the check.sh scalar leg and A/B debugging use).
const SpanKernels& Kernels();

}  // namespace simsel::simd

#endif  // SIMSEL_SIMD_KERNELS_H_
