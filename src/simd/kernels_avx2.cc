// AVX2 kernel variant (see kernels_sse42.cc for the gating story: the file
// is compiled with -mavx2 on x86-64 only and execution is CPUID-guarded).
// The intersect kernel deliberately reuses the 128-bit 4x4 tile: the inputs
// it sees (query token arrays, candidate sets) are short, where a wider
// tile's cross-lane permutes cost more than they save.

#include "simd/kernels.h"

#if defined(__AVX2__)

#include <immintrin.h>

#include "simd/kernels_x86_inl.h"

namespace simsel::simd {
namespace {

/// In-register inclusive prefix sum of 8 uint32 lanes: log-step shifts
/// within each 128-bit lane, then the low lane's total is added to the
/// high lane.
inline __m256i PrefixSum8(__m256i x) {
  x = _mm256_add_epi32(x, _mm256_slli_si256(x, 4));
  x = _mm256_add_epi32(x, _mm256_slli_si256(x, 8));
  __m256i low_total = _mm256_permutevar8x32_epi32(x, _mm256_set1_epi32(3));
  low_total = _mm256_blend_epi32(_mm256_setzero_si256(), low_total, 0xF0);
  return _mm256_add_epi32(x, low_total);
}

void DeltaPrefixSumU32(uint32_t first, const uint32_t* deltas, size_t n,
                       uint32_t* out) {
  __m256i carry = _mm256_set1_epi32(static_cast<int>(first));
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(deltas + i));
    x = PrefixSum8(x);
    x = _mm256_add_epi32(x, carry);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), x);
    carry = _mm256_permutevar8x32_epi32(x, _mm256_set1_epi32(7));
  }
  uint32_t run = i == 0 ? first : out[i - 1];
  for (; i < n; ++i) {
    run += deltas[i];
    out[i] = run;
  }
}

void BitsAddBaseF32(const uint32_t* deltas, size_t n, uint32_t base_bits,
                    float* out) {
  const __m256i base = _mm256_set1_epi32(static_cast<int>(base_bits));
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(deltas + i));
    x = _mm256_add_epi32(x, base);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), x);
  }
  for (; i < n; ++i) {
    uint32_t bits = base_bits + deltas[i];
    __builtin_memcpy(&out[i], &bits, sizeof(float));
  }
}

size_t CountLeF32(const float* values, size_t n, float bound) {
  const __m256 b = _mm256_set1_ps(bound);
  size_t count = 0;
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 x = _mm256_loadu_ps(values + i);
    count += static_cast<size_t>(_mm_popcnt_u32(static_cast<unsigned>(
        _mm256_movemask_ps(_mm256_cmp_ps(x, b, _CMP_LE_OQ)))));
  }
  for (; i < n; ++i) count += values[i] <= bound ? 1 : 0;
  return count;
}

size_t CountLtF32(const float* values, size_t n, float bound) {
  const __m256 b = _mm256_set1_ps(bound);
  size_t count = 0;
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 x = _mm256_loadu_ps(values + i);
    count += static_cast<size_t>(_mm_popcnt_u32(static_cast<unsigned>(
        _mm256_movemask_ps(_mm256_cmp_ps(x, b, _CMP_LT_OQ)))));
  }
  for (; i < n; ++i) count += values[i] < bound ? 1 : 0;
  return count;
}

size_t IntersectPosU32(const uint32_t* a, size_t na, const uint32_t* b,
                       size_t nb, uint32_t* pos_out) {
  return x86::IntersectPosU32Tiled(a, na, b, nb, pos_out);
}

constexpr SpanKernels kAvx2 = {
    "avx2",        DeltaPrefixSumU32, BitsAddBaseF32,
    CountLeF32,    CountLtF32,        IntersectPosU32,
};

}  // namespace

const SpanKernels* Avx2Kernels() {
  return __builtin_cpu_supports("avx2") ? &kAvx2 : nullptr;
}

}  // namespace simsel::simd

#else  // !defined(__AVX2__)

namespace simsel::simd {
const SpanKernels* Avx2Kernels() { return nullptr; }
}  // namespace simsel::simd

#endif
