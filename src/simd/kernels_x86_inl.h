#ifndef SIMSEL_SIMD_KERNELS_X86_INL_H_
#define SIMSEL_SIMD_KERNELS_X86_INL_H_

// 128-bit building blocks shared by the SSE4.2 and AVX2 translation units.
// Everything here is `static`: each TU gets its own copy compiled under its
// own -m flags (the AVX2 TU emits VEX encodings), which keeps the two
// variants ODR-clean while sharing one source of truth for the algorithms.

#include <cstddef>
#include <cstdint>

#include <smmintrin.h>

namespace simsel::simd::x86 {

/// In-register inclusive prefix sum of 4 uint32 lanes (log-step shifts).
static inline __m128i PrefixSum4(__m128i x) {
  x = _mm_add_epi32(x, _mm_slli_si128(x, 4));
  x = _mm_add_epi32(x, _mm_slli_si128(x, 8));
  return x;
}

/// 4x4 tile sorted-set intersection (strictly-ascending inputs): compare
/// one block of a against every rotation of one block of b, emit matching
/// a-lane positions in ascending order, advance whichever block has the
/// smaller maximum. The scalar tail finishes the remainders.
static inline size_t IntersectPosU32Tiled(const uint32_t* a, size_t na,
                                          const uint32_t* b, size_t nb,
                                          uint32_t* pos_out) {
  size_t i = 0, j = 0, k = 0;
  while (i + 4 <= na && j + 4 <= nb) {
    const __m128i va =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i vb =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + j));
    __m128i eq = _mm_cmpeq_epi32(va, vb);
    eq = _mm_or_si128(
        eq, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, _MM_SHUFFLE(0, 3, 2, 1))));
    eq = _mm_or_si128(
        eq, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, _MM_SHUFFLE(1, 0, 3, 2))));
    eq = _mm_or_si128(
        eq, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, _MM_SHUFFLE(2, 1, 0, 3))));
    const int mask = _mm_movemask_ps(_mm_castsi128_ps(eq));
    for (int lane = 0; lane < 4; ++lane) {
      if (mask & (1 << lane)) {
        pos_out[k++] = static_cast<uint32_t>(i + lane);
      }
    }
    const uint32_t a_max = a[i + 3];
    const uint32_t b_max = b[j + 3];
    if (a_max <= b_max) i += 4;
    if (b_max <= a_max) j += 4;
  }
  while (i < na && j < nb) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      pos_out[k++] = static_cast<uint32_t>(i);
      ++i;
      ++j;
    }
  }
  return k;
}

}  // namespace simsel::simd::x86

#endif  // SIMSEL_SIMD_KERNELS_X86_INL_H_
