#ifndef SIMSEL_SKETCH_PREFILTER_H_
#define SIMSEL_SKETCH_PREFILTER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/types.h"
#include "sim/idf.h"
#include "sketch/minhash.h"
#include "sketch/partition_router.h"

namespace simsel {
class InvertedIndex;
}  // namespace simsel

namespace simsel::sketch {

/// Per-query screen for dynamic-index delta records (which live outside the
/// banding tables): window test, impossible-intersection test, then a
/// full-signature MinHash admission at the Chernoff–Hoeffding slack ε.
/// Unlike the banding stage, the full-signature screen is sound at *any*
/// similarity level (P(Ĵ < J − ε) ≤ δ regardless of J), so it needs no
/// engage gate and can run for every τ. Admits == false means "provably not
/// a match at the configured error bound"; true means "verify exactly".
class DeltaScreen {
 public:
  DeltaScreen() = default;

  /// False when the screen was built from an empty/weightless query and can
  /// never reject; callers skip it entirely then.
  bool active() const { return active_; }

  /// `sig` is the record's k-component signature (may not be null),
  /// `length` its frozen normalized length, `set_size` its distinct token
  /// count.
  bool Admits(const uint64_t* sig, float length, size_t set_size) const;

 private:
  friend class Prefilter;

  bool active_ = false;
  std::vector<uint64_t> qsig_;
  std::vector<double> prefix_;  // descending query weights, prefix-summed
  double total_ = 0.0;
  double tau_ = 0.0;
  double q_length_ = 0.0;
  double epsilon_ = 0.0;
  size_t q_size_ = 0;
  float win_lo_ = 0.0f;
  float win_hi_ = 0.0f;
};

/// The sketch prefilter tier: MinHash banding for candidate generation,
/// statistical partition routing for corpus-level pruning, and exact
/// verification of every admitted candidate — so results are byte-identical
/// to the exact kernels whenever the tier engages (see docs/SKETCHES.md for
/// the full exactness argument).
///
/// Per query the tier runs a two-phase engage gate:
///  - Phase A (allocation-light, O(|q| log |q| + log n)): derive the
///    minimum intersection cardinality m_min every answer must share with
///    the query, bound the candidate Jaccard from below, and fall through
///    to the exact kernels unless that bound clears EngageThreshold.
///  - Phase B: route through the PartitionRouter, tighten the set-size
///    bound to the admitted partitions, and re-check the gate.
/// Only when both phases pass does the tier answer the query itself:
/// banding probe → window/partition/signature admission → exact
/// measure.Score verification, with every stage charged to the standard
/// AccessCounters and its false positives measured.
class Prefilter {
 public:
  /// Introspection of the engage decision (tests, explain output).
  struct Plan {
    bool engaged = false;  ///< tier answers the query itself
    bool empty = false;    ///< engaged with a proof that no set matches
    double j_min = 0.0;    ///< Jaccard lower bound over possible answers
    double j_engage = 0.0;  ///< EngageThreshold(params)
    double epsilon = 0.0;   ///< AdmissionEpsilon(params)
    uint32_t m_min = 0;     ///< minimum intersection cardinality
    uint32_t max_set_size = 0;
    uint32_t admitted_partitions = 0;
    uint32_t total_partitions = 0;
  };

  /// Builds the derived structures (banding tables, partition router) over
  /// the persisted signatures of sets [begin, end). `signatures` holds
  /// (end - begin) rows of params.k words, row i belonging to set begin + i;
  /// it is borrowed and must outlive the Prefilter (the InvertedIndex owns
  /// it). Returns null when params are invalid or the range is empty.
  static std::unique_ptr<Prefilter> Build(const IdfMeasure& measure,
                                          const SketchParams& params,
                                          const uint64_t* signatures,
                                          SetId begin, SetId end,
                                          uint32_t partitions = 32,
                                          uint32_t buckets = 64);

  /// Runs the tier for one prepared query. Returns true when the tier
  /// engaged — `*result` then holds the complete (or control-tripped
  /// partial) answer, byte-identical in matches to any exact kernel — and
  /// false to fall through to the exact kernel unchanged (`*result` is then
  /// untouched).
  bool TrySelect(const PreparedQuery& q, double tau,
                 const SelectOptions& options, QueryResult* result) const;

  /// The engage decision alone, without executing (cheap; Phase A + B).
  Plan PlanFor(const PreparedQuery& q, double tau) const;

  /// Builds the delta-record screen for one query (DynamicSelector's delta
  /// scan). Never unsound: an inactive screen admits everything.
  DeltaScreen MakeDeltaScreen(const PreparedQuery& q, double tau) const;

  const SketchParams& params() const { return params_; }
  /// Component salts — DynamicSelector uses these to sketch delta records
  /// with the exact family the persisted signatures were built with.
  const std::vector<uint64_t>& seeds() const { return seeds_; }
  const PartitionRouter& router() const { return router_; }
  /// Bytes of derived (recomputed-at-load, not persisted) structures.
  size_t DerivedBytes() const;

 private:
  Prefilter() = default;

  struct Gate;  // internal Phase A/B working state (prefilter.cc)
  void RunGate(const PreparedQuery& q, double tau, Gate* gate) const;

  const IdfMeasure* measure_ = nullptr;
  SketchParams params_;
  const uint64_t* sigs_ = nullptr;  // borrowed rows of params_.k words
  SetId begin_ = 0;
  uint32_t num_sets_ = 0;
  std::vector<uint64_t> seeds_;
  double epsilon_ = 0.0;
  double j_engage_ = 0.0;
  PartitionRouter router_;
  // One banding-table entry. The set's normalized length rides along so the
  // probe loop screens hits against the query's length window and partition
  // mask sequentially, without a random set_length read per hit.
  struct BandEntry {
    uint64_t key;
    uint32_t row;
    float len;
    bool operator<(const BandEntry& o) const {
      return key != o.key ? key < o.key : row < o.row;
    }
  };
  // Banding tables: per band, entries sorted by (key, row); probing one
  // band is a binary search followed by a sequential run scan.
  std::vector<std::vector<BandEntry>> bands_;
};

/// True for the kinds the tier may answer: the index-kernel kinds. The
/// unindexed baselines (scan, SQL, sort-by-id) run every set / row anyway,
/// so the tier would only distort their accounting.
inline bool PrefilterEligible(AlgorithmKind kind) {
  switch (kind) {
    case AlgorithmKind::kLinearScan:
    case AlgorithmKind::kSql:
    case AlgorithmKind::kSortById:
      return false;
    default:
      return true;
  }
}

/// Builds the tier from an index's persisted sketch section over the
/// measure's collection; null when the index carries no sketches.
std::unique_ptr<Prefilter> AttachPrefilter(const IdfMeasure& measure,
                                           const InvertedIndex& index);

}  // namespace simsel::sketch

#endif  // SIMSEL_SKETCH_PREFILTER_H_
