#include "sketch/minhash.h"

#include <cmath>
#include <limits>

#include "common/rng.h"

namespace simsel::sketch {

std::vector<uint64_t> ComponentSeeds(const SketchParams& params) {
  std::vector<uint64_t> seeds(params.k);
  uint64_t state = params.seed;
  for (uint32_t i = 0; i < params.k; ++i) seeds[i] = SplitMix64Next(&state);
  return seeds;
}

void ComputeSignature(const uint32_t* tokens, size_t n,
                      const std::vector<uint64_t>& seeds, uint64_t* out) {
  const size_t k = seeds.size();
  for (size_t i = 0; i < k; ++i) out[i] = std::numeric_limits<uint64_t>::max();
  for (size_t j = 0; j < n; ++j) {
    // One shared mix of the token, salted per component: cheaper than k
    // independent mixes and just as well distributed for min-taking.
    const uint64_t base = Mix64(tokens[j] + 0x9E3779B97F4A7C15ULL);
    for (size_t i = 0; i < k; ++i) {
      const uint64_t h = Mix64(base ^ seeds[i]);
      if (h < out[i]) out[i] = h;
    }
  }
}

double EstimateJaccard(const uint64_t* a, const uint64_t* b, uint32_t k) {
  uint32_t equal = 0;
  for (uint32_t i = 0; i < k; ++i) equal += a[i] == b[i];
  return k == 0 ? 0.0 : static_cast<double>(equal) / k;
}

double AdmissionEpsilon(const SketchParams& params) {
  return std::sqrt(std::log(1.0 / params.miss_bound) / (2.0 * params.k));
}

double EngageThreshold(const SketchParams& params) {
  const double per_band = 1.0 - std::pow(params.miss_bound, 1.0 / params.bands);
  return std::pow(per_band, 1.0 / params.rows);
}

}  // namespace simsel::sketch
