#ifndef SIMSEL_SKETCH_MINHASH_H_
#define SIMSEL_SKETCH_MINHASH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace simsel::sketch {

/// Parameters of the MinHash sketch tier (see docs/SKETCHES.md).
///
/// Every set gets a signature of `k` 64-bit components: component i is the
/// minimum of a seeded mix of the set's distinct dictionary tokens. Equal
/// components between two signatures estimate the Jaccard similarity of the
/// token sets, and the first `bands * rows` components double as an LSH
/// banding table (`bands` keys of `rows` components each) for sub-linear
/// candidate generation.
///
/// `miss_bound` is the per-stage error budget δ of the exactness argument:
/// the banding stage only engages when every true answer collides with the
/// query in at least one band with probability ≥ 1 − δ, and the admission
/// stage keeps every true answer with probability ≥ 1 − δ (Chernoff–
/// Hoeffding; see AdmissionEpsilon). Everything is seeded, so a given build
/// + query is fully deterministic.
struct SketchParams {
  /// Signature components per set. More components shrink the admission
  /// slack ε ~ 1/sqrt(k) (fewer false positives) at k × 8 bytes per set.
  /// The default trades 2 KiB per set for ε ≈ 0.134 and an engage bar of
  /// j ≈ 0.263 (see EngageThreshold), which captures typical τ = 0.9
  /// selection queries.
  uint32_t k = 256;
  /// LSH bands × rows per band; bands * rows <= k. Lower rows engage at
  /// lower similarity; more bands lower the miss probability.
  uint32_t bands = 128;
  uint32_t rows = 2;
  /// Per-stage miss probability bound δ (banding and admission each).
  double miss_bound = 1e-4;
  /// Seed of the component hash family. Fixed default so two builds of the
  /// same collection produce byte-identical sketch sections.
  uint64_t seed = 0x53494D534B4554ULL;  // "SIMSKET"

  bool valid() const {
    return k > 0 && rows > 0 && bands > 0 &&
           static_cast<uint64_t>(bands) * rows <= k && miss_bound > 0.0 &&
           miss_bound < 1.0;
  }
};

/// SplitMix64 finalizer: a fast, well-distributed 64-bit mix.
inline uint64_t Mix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x;
}

/// The k per-component salts, expanded from params.seed via SplitMix64.
std::vector<uint64_t> ComponentSeeds(const SketchParams& params);

/// Fills out[0..seeds.size()) with the MinHash signature of the (distinct)
/// token array. An empty set yields the all-UINT64_MAX sentinel signature.
void ComputeSignature(const uint32_t* tokens, size_t n,
                      const std::vector<uint64_t>& seeds, uint64_t* out);

/// Fraction of equal components — the unbiased MinHash estimate of the
/// Jaccard similarity of the two underlying token sets.
double EstimateJaccard(const uint64_t* a, const uint64_t* b, uint32_t k);

/// Admission slack ε = sqrt(ln(1/δ) / 2k): by the Chernoff–Hoeffding bound,
/// the k-component estimate Ĵ satisfies P(Ĵ < J − ε) ≤ δ, so admitting
/// every candidate with Ĵ ≥ j_required − ε keeps a true answer with
/// probability ≥ 1 − δ.
double AdmissionEpsilon(const SketchParams& params);

/// Minimum true Jaccard at which the banding stage is allowed to engage:
/// j such that (1 − j^rows)^bands ≤ δ, i.e. (1 − δ^(1/bands))^(1/rows).
/// Below it the tier falls through to the exact kernels unchanged.
double EngageThreshold(const SketchParams& params);

/// Early-exit form of `EstimateJaccard(a, b, k) >= j`: accepts as soon as
/// the matched-component count reaches `need` (= j * k) and rejects as soon
/// as the remaining components cannot reach it. Callers shave a hair off
/// `need` so floating-point rounding can only ever admit *more* than the
/// full estimate would — admission stays a superset.
inline bool SignatureAdmits(const uint64_t* a, const uint64_t* b, uint32_t k,
                            double need) {
  uint32_t equal = 0;
  for (uint32_t i = 0; i < k; ++i) {
    equal += (a[i] == b[i]) ? 1u : 0u;
    if (equal >= need) return true;
    if (equal + (k - i - 1) < need) return false;
  }
  return equal >= need;
}

/// LSH key of one band: a mix-chain over `rows` consecutive signature
/// components starting at band * rows. Identical component runs always map
/// to identical keys; a 64-bit key makes cross-band collisions (which only
/// ever *add* candidates) negligible.
inline uint64_t BandKey(const uint64_t* sig, uint32_t band, uint32_t rows) {
  uint64_t key = Mix64(band + 0x62616E64ULL);  // "band"
  for (uint32_t r = 0; r < rows; ++r) {
    key = Mix64(key ^ sig[static_cast<size_t>(band) * rows + r]);
  }
  return key;
}

}  // namespace simsel::sketch

#endif  // SIMSEL_SKETCH_MINHASH_H_
