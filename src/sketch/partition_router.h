#ifndef SIMSEL_SKETCH_PARTITION_ROUTER_H_
#define SIMSEL_SKETCH_PARTITION_ROUTER_H_

#include <cstdint>
#include <vector>

#include "sim/idf.h"

namespace simsel::sketch {

/// Statistical partition router in the spirit of LES3: sets are split into
/// equi-depth partitions by normalized length, and each partition learns,
/// at Build time, the maximum idf² mass any of its member sets carries in
/// each of a fixed number of token hash buckets. A query is routed only to
/// the partitions whose learned statistics admit a τ-match:
///
///   score(q, s ∈ p) = Σ_b mass(q ∩ s, bucket b) / (len(s)·len(q))
///                   ≤ Σ_b min(Q_b, M[p][b]) / (max(min_len_p, win.lo)·len(q))
///
/// where Q_b is the query's mass in bucket b and M[p][b] the partition's
/// learned per-bucket maximum. The bound is sound per partition (every step
/// is a per-set upper bound), so skipping partitions below τ can never drop
/// an answer; a widened slack absorbs summation-order rounding.
class PartitionRouter {
 public:
  /// Per-query routing verdict: which partitions may contain a τ-match.
  struct Route {
    bool any = false;            ///< at least one partition admitted
    uint32_t admitted = 0;       ///< admitted partition count
    uint32_t total = 0;          ///< non-empty partition count
    uint32_t max_set_size = 0;   ///< max |s| over admitted partitions
    std::vector<uint8_t> mask;   ///< per-partition admission flags
  };

  /// Learns partition statistics over sets [begin, end) of the measure's
  /// collection. `partitions` is capped at the number of non-empty sets.
  static PartitionRouter Build(const IdfMeasure& measure, SetId begin,
                               SetId end, uint32_t partitions,
                               uint32_t buckets);

  /// Routes a prepared query at threshold tau, restricted to the Theorem-1
  /// length window [win_lo, win_hi].
  Route RouteQuery(const PreparedQuery& q, double tau, float win_lo,
                   float win_hi) const;

  /// Partition index of a set with normalized length `len`.
  uint32_t PartitionOf(float len) const;

  /// Largest distinct-token set size among sets with length <= hi — an O(log
  /// n) upper bound for the engage gate, before any routing work is done.
  uint32_t MaxSetSizeBelow(float hi) const;

  uint32_t num_partitions() const {
    return static_cast<uint32_t>(parts_.size());
  }
  uint32_t num_buckets() const { return buckets_; }
  size_t SizeBytes() const;

 private:
  struct Partition {
    float min_len = 0.0f;
    float max_len = 0.0f;
    uint32_t max_size = 0;
    uint32_t count = 0;
  };

  std::vector<float> lower_;   // partition lower boundaries, non-decreasing
  std::vector<Partition> parts_;
  std::vector<double> mass_;   // parts × buckets learned per-bucket maxima
  // Engage-gate support: lengths sorted ascending with a running maximum of
  // the set sizes, so MaxSetSizeBelow is one binary search.
  std::vector<float> sorted_lens_;
  std::vector<uint32_t> prefix_max_size_;
  uint32_t buckets_ = 0;
};

}  // namespace simsel::sketch

#endif  // SIMSEL_SKETCH_PARTITION_ROUTER_H_
