#include "sketch/prefilter.h"

#include <algorithm>
#include <cmath>

#include "common/timer.h"
#include "core/internal.h"
#include "index/inverted_index.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"

namespace simsel::sketch {

namespace {

// Handles resolved once; all hot-path updates are relaxed atomics.
struct PrefilterMetrics {
  obs::Counter* engaged;
  obs::Counter* fallthrough;
  obs::Counter* admitted;
  obs::Counter* fp;
  obs::Histogram* route_usec;
  obs::Histogram* probe_usec;
  obs::Histogram* verify_usec;
};

const PrefilterMetrics& Metrics() {
  static const PrefilterMetrics m = [] {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
    auto stage = [&reg](const char* name) {
      return reg.GetHistogram("simsel_prefilter_stage_latency_usec",
                              obs::LabelPair("stage", name));
    };
    return PrefilterMetrics{
        reg.GetCounter("simsel_prefilter_engaged_total"),
        reg.GetCounter("simsel_prefilter_fallthrough_total"),
        reg.GetCounter("simsel_prefilter_admitted_total"),
        reg.GetCounter("simsel_prefilter_fp_total"),
        stage("route"), stage("probe"), stage("verify")};
  }();
  return m;
}

// Smallest count of (descending-weight) query tokens whose mass reaches
// `required`; 0 when even the full query cannot. `prefix` is the prefix-sum
// array of the weights sorted descending.
uint32_t MinIntersection(const std::vector<double>& prefix, double required) {
  const auto it = std::lower_bound(prefix.begin(), prefix.end(), required);
  if (it == prefix.end()) return 0;
  return static_cast<uint32_t>(it - prefix.begin()) + 1;
}

// Jaccard lower bound over any answer sharing >= m tokens with a query of
// q_size distinct tokens against a set of at most set_size tokens.
double JaccardLowerBound(uint32_t m, size_t q_size, uint32_t set_size) {
  const double denom = static_cast<double>(q_size) + set_size - m;
  return denom <= 0.0 ? 1.0 : m / denom;
}

// Largest collision count c such that a true answer (per-band collision
// probability >= p) still lands in at least c of `bands` bands with
// probability >= 1 - delta: the binomial lower tail P(X <= c-1) stays
// within delta. Requiring c > 1 matches filters banding noise — whose hit
// counts concentrate near b * p_noise — before the signature screen.
uint32_t MinCollisions(uint32_t bands, double p, double delta) {
  if (p <= 0.0 || p >= 1.0) return 1;
  uint32_t c = 1;
  double pmf = std::pow(1.0 - p, bands);  // P(X = i), starting at i = 0
  double tail = pmf;                      // P(X <= i)
  for (uint32_t i = 0; c < 8 && i + 1 <= bands; ++i) {
    pmf *= (static_cast<double>(bands - i) / (i + 1)) * (p / (1.0 - p));
    tail += pmf;  // now P(X <= i + 1)
    if (tail > delta) break;
    c = i + 2;  // requiring c collisions misses with P(X <= c-1) <= delta
  }
  return c;
}

}  // namespace

bool DeltaScreen::Admits(const uint64_t* sig, float length,
                         size_t set_size) const {
  if (!active_) return true;
  // Theorem 1 window and the impossible-intersection tests are
  // deterministic rejections; only the final signature comparison spends
  // the per-record δ budget.
  if (length < win_lo_ || length > win_hi_) return false;
  const double required =
      tau_ * length * q_length_ * (1.0 - internal::kPruneSlack);
  if (required > total_) return false;
  const uint32_t m = MinIntersection(prefix_, required);
  if (m == 0) return true;  // requirement vacuous; nothing to reject on
  if (m > q_size_ || m > set_size) return false;
  const double j_min = JaccardLowerBound(m, q_size_, set_size);
  if (j_min <= epsilon_) return true;  // slack swallows the bound
  const uint32_t k = static_cast<uint32_t>(qsig_.size());
  return SignatureAdmits(qsig_.data(), sig, k, (j_min - epsilon_) * k - 1e-9);
}

std::unique_ptr<Prefilter> Prefilter::Build(const IdfMeasure& measure,
                                            const SketchParams& params,
                                            const uint64_t* signatures,
                                            SetId begin, SetId end,
                                            uint32_t partitions,
                                            uint32_t buckets) {
  if (!params.valid() || signatures == nullptr || end <= begin) return nullptr;
  std::unique_ptr<Prefilter> pf(new Prefilter());
  pf->measure_ = &measure;
  pf->params_ = params;
  pf->sigs_ = signatures;
  pf->begin_ = begin;
  pf->num_sets_ = end - begin;
  pf->seeds_ = ComponentSeeds(params);
  pf->epsilon_ = AdmissionEpsilon(params);
  pf->j_engage_ = EngageThreshold(params);
  pf->router_ = PartitionRouter::Build(measure, begin, end, partitions, buckets);
  pf->bands_.resize(params.bands);
  for (uint32_t b = 0; b < params.bands; ++b) {
    auto& table = pf->bands_[b];
    table.resize(pf->num_sets_);
    for (uint32_t row = 0; row < pf->num_sets_; ++row) {
      const uint64_t* sig = signatures + static_cast<size_t>(row) * params.k;
      table[row] = {BandKey(sig, b, params.rows), row,
                    measure.set_length(begin + row)};
    }
    std::sort(table.begin(), table.end());
  }
  return pf;
}

// Working state shared by PlanFor and TrySelect: everything the two-phase
// engage gate derives, kept off the Plan struct so the hot path reuses the
// prefix-sum buffer for per-candidate admission.
struct Prefilter::Gate {
  Plan plan;
  internal::LengthWindow win;
  std::vector<double> prefix;  // descending weights, prefix-summed
  PartitionRouter::Route route;
  double total = 0.0;
  double tau = 0.0;
};

void Prefilter::RunGate(const PreparedQuery& q, double tau, Gate* gate) const {
  Plan& plan = gate->plan;
  plan.j_engage = j_engage_;
  plan.epsilon = epsilon_;
  gate->tau = internal::ClampTau(tau);
  if (q.tokens.empty() || q.length <= 0.0) return;  // fall through

  // Phase A: query-local bounds only (no routing work yet).
  gate->win = internal::ComputeLengthWindow(q, gate->tau, /*enabled=*/true);
  gate->prefix.assign(q.weights.begin(), q.weights.end());
  std::sort(gate->prefix.begin(), gate->prefix.end(), std::greater<double>());
  double running = 0.0;
  for (double& w : gate->prefix) {
    running += w;
    w = running;
  }
  gate->total = running;
  const double required =
      gate->tau * gate->win.lo * q.length * (1.0 - internal::kPruneSlack);
  if (gate->total < required) {
    // Even a full-overlap set falls short of τ: provably no answers.
    plan.engaged = plan.empty = true;
    return;
  }
  plan.m_min = MinIntersection(gate->prefix, required);
  if (plan.m_min == 0) plan.m_min = 1;  // an answer shares >= 1 token
  const uint32_t size_below = router_.MaxSetSizeBelow(gate->win.hi);
  if (size_below == 0 || plan.m_min > size_below) {
    plan.engaged = plan.empty = true;  // window empty or intersection impossible
    return;
  }
  plan.max_set_size = size_below;
  plan.j_min = JaccardLowerBound(plan.m_min, q.tokens.size(), size_below);

  // Routing can shrink the set-size bound to at best m_min tokens, which
  // caps the achievable bound at m_min / |q|. Below the gate even that
  // best case falls through, so skip the routing work outright.
  if (JaccardLowerBound(plan.m_min, q.tokens.size(), plan.m_min) < j_engage_) {
    return;
  }

  // Phase B: partition routing, then re-check with the tightened size
  // bound. Run it even when Phase A's bound falls short of the gate:
  // Phase A's set-size bound is corpus-global over the window, and the few
  // partitions that actually admit a τ-match usually carry a much smaller
  // maximum — routing costs O(|q| + partitions · buckets) and frequently
  // rescues the engagement.
  gate->route = router_.RouteQuery(q, gate->tau, gate->win.lo, gate->win.hi);
  const PartitionRouter::Route& route = gate->route;
  plan.total_partitions = route.total;
  plan.admitted_partitions = route.admitted;
  if (!route.any) {
    plan.engaged = plan.empty = true;  // every partition excluded soundly
    return;
  }
  // A partition straddling win.hi can carry its max size from a set beyond
  // the window, so the two bounds are independently valid: take the min.
  plan.max_set_size = std::min(size_below, route.max_set_size);
  plan.j_min = JaccardLowerBound(plan.m_min, q.tokens.size(), plan.max_set_size);
  plan.engaged = plan.j_min >= j_engage_;
}

Prefilter::Plan Prefilter::PlanFor(const PreparedQuery& q, double tau) const {
  Gate gate;
  RunGate(q, tau, &gate);
  return gate.plan;
}

bool Prefilter::TrySelect(const PreparedQuery& q, double tau,
                          const SelectOptions& options,
                          QueryResult* result) const {
  obs::TraceScope tier_span(options.trace, "prefilter");
  Gate gate;
  {
    WallTimer route_timer;
    obs::TraceScope span(options.trace, "route");
    RunGate(q, tau, &gate);
    Metrics().route_usec->Observe(
        static_cast<uint64_t>(route_timer.ElapsedMicros()));
  }
  if (!gate.plan.engaged) {
    Metrics().fallthrough->Increment();
    return false;
  }
  Metrics().engaged->Increment();
  if (gate.plan.empty) {
    result->counters.results = 0;
    return true;  // engaged with a proof of emptiness
  }

  internal::ControlPoller poller(options.control, result->counters);
  const uint32_t k = params_.k;
  const uint32_t rows = params_.rows;
  std::vector<uint64_t> qsig(k);
  std::vector<uint32_t> candidates;
  bool tripped = false;
  {
    WallTimer probe_timer;
    obs::TraceScope span(options.trace, "probe");
    ComputeSignature(q.tokens.data(), q.tokens.size(), seeds_, qsig.data());
    // A true answer collides with the query in any one band with probability
    // at least j_min^rows, so across b bands its hit count is at least
    // Bin(b, j_min^rows). The engage gate guarantees one hit within δ at
    // j_engage over the full table; when the plan proves a higher j_min the
    // same budget buys slack, spent one of two ways: require several hits
    // (filters banding noise ahead of the signature screen) or, when only
    // one hit is affordable, probe ceil(ln δ / ln(1 - j_min^rows)) bands
    // instead of all of them.
    uint32_t probe_bands = params_.bands;
    const double p_band = std::pow(std::min(gate.plan.j_min, 1.0),
                                   static_cast<double>(rows));
    const uint32_t min_collisions =
        MinCollisions(params_.bands, p_band, params_.miss_bound);
    if (min_collisions == 1) {
      if (p_band >= 1.0) {
        probe_bands = 1;
      } else if (p_band > 0.0) {
        const double needed =
            std::ceil(std::log(params_.miss_bound) / std::log1p(-p_band));
        if (needed >= 1.0 && needed < probe_bands) {
          probe_bands = static_cast<uint32_t>(needed);
        }
      }
    }
    for (uint32_t b = 0; b < probe_bands; ++b) {
      if (poller.ShouldStop()) {
        tripped = true;
        break;
      }
      ++result->counters.hash_probes;
      const uint64_t key = BandKey(qsig.data(), b, rows);
      const auto& table = bands_[b];
      auto it = std::lower_bound(table.begin(), table.end(),
                                 BandEntry{key, 0, 0.0f});
      for (; it != table.end() && it->key == key; ++it) {
        ++result->counters.candidate_scan_steps;
        // Screen by the deterministic length window and partition mask
        // before dedup: the length rides in the table entry, so the bulk
        // of the banding noise never reaches the sort.
        if (!gate.win.Contains(it->len) ||
            gate.route.mask[router_.PartitionOf(it->len)] == 0) {
          ++result->counters.candidate_prunes;
          continue;
        }
        candidates.push_back(it->row);
      }
    }
    std::sort(candidates.begin(), candidates.end());
    // Dedup, keeping only rows that collided in >= min_collisions bands.
    // Screens are per-set deterministic, so a row's hits all survive to
    // here or none do — the count is an honest sample of Bin(b, j).
    size_t out = 0;
    for (size_t i = 0; i < candidates.size();) {
      size_t j = i;
      while (j < candidates.size() && candidates[j] == candidates[i]) ++j;
      if (j - i >= min_collisions) {
        candidates[out++] = candidates[i];
      } else {
        ++result->counters.candidate_prunes;
      }
      i = j;
    }
    candidates.resize(out);
    result->counters.candidate_inserts += candidates.size();
    span.SetItems(candidates.size());
    Metrics().probe_usec->Observe(
        static_cast<uint64_t>(probe_timer.ElapsedMicros()));
  }

  const Collection& collection = measure_->collection();
  uint64_t admitted = 0;
  uint64_t false_positives = 0;
  {
    WallTimer verify_timer;
    obs::TraceScope span(options.trace, "verify");
    for (size_t i = 0; i < candidates.size(); ++i) {
      if ((i & 63) == 0 && poller.ShouldStop()) {
        tripped = true;
        break;
      }
      // Window and partition-mask screening already happened at probe time,
      // so every surviving candidate is length-admissible.
      const SetId id = begin_ + candidates[i];
      const float len = measure_->set_length(id);
      const size_t set_size = collection.set(id).tokens.size();
      // Tighten m to this candidate's own length: an answer of length `len`
      // needs intersection mass >= τ·len·len(q).
      const double required =
          gate.tau * len * q.length * (1.0 - internal::kPruneSlack);
      const uint32_t m = MinIntersection(gate.prefix, required);
      if (m == 0 || m > q.tokens.size() || m > set_size) {
        ++result->counters.candidate_prunes;  // intersection impossible
        continue;
      }
      const double j_min = JaccardLowerBound(m, q.tokens.size(),
                                             static_cast<uint32_t>(set_size));
      ++result->counters.hash_probes;
      const uint64_t* sig = sigs_ + static_cast<size_t>(candidates[i]) * k;
      if (!SignatureAdmits(qsig.data(), sig, k,
                           (j_min - epsilon_) * k - 1e-9)) {
        ++result->counters.candidate_prunes;
        continue;
      }
      ++admitted;
      ++result->counters.rows_scanned;
      const double score = measure_->Score(q, id);
      if (score >= gate.tau) {
        result->matches.push_back(Match{id, score});
      } else {
        ++false_positives;
      }
    }
    span.SetItems(result->matches.size());
    Metrics().verify_usec->Observe(
        static_cast<uint64_t>(verify_timer.ElapsedMicros()));
  }
  Metrics().admitted->Increment(admitted);
  Metrics().fp->Increment(false_positives);
  if (tripped) result->termination = poller.termination();
  // Candidates are scanned in ascending row order and ids are begin_ + row,
  // so the canonical ascending-id order holds; sort anyway for uniformity.
  internal::SortMatches(&result->matches);
  result->counters.results = result->matches.size();
  return true;
}

DeltaScreen Prefilter::MakeDeltaScreen(const PreparedQuery& q,
                                       double tau) const {
  DeltaScreen screen;
  if (q.tokens.empty() || q.length <= 0.0) return screen;
  screen.tau_ = internal::ClampTau(tau);
  const internal::LengthWindow win =
      internal::ComputeLengthWindow(q, screen.tau_, /*enabled=*/true);
  screen.win_lo_ = win.lo;
  screen.win_hi_ = win.hi;
  screen.prefix_.assign(q.weights.begin(), q.weights.end());
  std::sort(screen.prefix_.begin(), screen.prefix_.end(),
            std::greater<double>());
  double running = 0.0;
  for (double& w : screen.prefix_) {
    running += w;
    w = running;
  }
  screen.total_ = running;
  screen.q_length_ = q.length;
  screen.q_size_ = q.tokens.size();
  screen.epsilon_ = epsilon_;
  screen.qsig_.resize(params_.k);
  ComputeSignature(q.tokens.data(), q.tokens.size(), seeds_,
                   screen.qsig_.data());
  screen.active_ = true;
  return screen;
}

std::unique_ptr<Prefilter> AttachPrefilter(const IdfMeasure& measure,
                                           const InvertedIndex& index) {
  if (!index.has_sketches()) return nullptr;
  const SetId begin = index.sketch_begin();
  return Prefilter::Build(measure, index.sketch_params(),
                          index.sketch_signatures(), begin,
                          begin + static_cast<SetId>(index.sketch_num_sets()));
}

size_t Prefilter::DerivedBytes() const {
  size_t bytes = seeds_.size() * sizeof(uint64_t) + router_.SizeBytes();
  for (const auto& table : bands_) {
    bytes += table.size() * sizeof(BandEntry);
  }
  return bytes;
}

}  // namespace simsel::sketch
