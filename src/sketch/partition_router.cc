#include "sketch/partition_router.h"

#include <algorithm>
#include <cmath>

#include "sketch/minhash.h"

namespace simsel::sketch {

namespace {

/// Routing slack: wider than core/internal.h's kPruneSlack because the
/// router's bound regroups the summation per bucket (different rounding than
/// the kernels' canonical ascending-token order). Pruning power is
/// insensitive at this magnitude; soundness is not.
constexpr double kRouteSlack = 1e-7;

uint32_t BucketOf(uint32_t token, uint32_t buckets) {
  return static_cast<uint32_t>(
      Mix64(token + 0x62756B74ULL) % buckets);  // "bukt"
}

}  // namespace

PartitionRouter PartitionRouter::Build(const IdfMeasure& measure, SetId begin,
                                       SetId end, uint32_t partitions,
                                       uint32_t buckets) {
  PartitionRouter router;
  router.buckets_ = std::max<uint32_t>(1, buckets);
  const Collection& collection = measure.collection();
  const uint32_t n = end - begin;

  // Engage-gate arrays: (len, |s|) sorted by len, sizes turned into a
  // running prefix maximum.
  std::vector<std::pair<float, uint32_t>> by_len;
  by_len.reserve(n);
  for (SetId s = begin; s < end; ++s) {
    by_len.emplace_back(
        measure.set_length(s),
        static_cast<uint32_t>(collection.set(s).tokens.size()));
  }
  std::sort(by_len.begin(), by_len.end());
  router.sorted_lens_.resize(n);
  router.prefix_max_size_.resize(n);
  uint32_t running = 0;
  for (uint32_t i = 0; i < n; ++i) {
    router.sorted_lens_[i] = by_len[i].first;
    running = std::max(running, by_len[i].second);
    router.prefix_max_size_[i] = running;
  }

  // Equi-depth boundaries over the sorted lengths. Duplicate boundary
  // values collapse some partitions to empty; they carry zero mass and are
  // never admitted.
  const uint32_t p = std::max<uint32_t>(1, std::min(partitions, std::max(n, 1u)));
  router.lower_.resize(p);
  router.lower_[0] = -std::numeric_limits<float>::infinity();
  for (uint32_t i = 1; i < p; ++i) {
    router.lower_[i] =
        router.sorted_lens_[static_cast<size_t>(i) * n / p];
  }
  router.parts_.assign(p, Partition{});
  router.mass_.assign(static_cast<size_t>(p) * router.buckets_, 0.0);

  std::vector<double> bucket_mass(router.buckets_);
  for (SetId s = begin; s < end; ++s) {
    const SetRecord& set = collection.set(s);
    const float len = measure.set_length(s);
    const uint32_t part = router.PartitionOf(len);
    Partition& stats = router.parts_[part];
    if (stats.count == 0) {
      stats.min_len = stats.max_len = len;
    } else {
      stats.min_len = std::min(stats.min_len, len);
      stats.max_len = std::max(stats.max_len, len);
    }
    ++stats.count;
    stats.max_size =
        std::max(stats.max_size, static_cast<uint32_t>(set.tokens.size()));
    std::fill(bucket_mass.begin(), bucket_mass.end(), 0.0);
    for (TokenId t : set.tokens) {
      const double idf = measure.idf(t);
      bucket_mass[BucketOf(t, router.buckets_)] += idf * idf;
    }
    double* learned = router.mass_.data() +
                      static_cast<size_t>(part) * router.buckets_;
    for (uint32_t b = 0; b < router.buckets_; ++b) {
      learned[b] = std::max(learned[b], bucket_mass[b]);
    }
  }
  return router;
}

uint32_t PartitionRouter::PartitionOf(float len) const {
  // Last boundary <= len. lower_[0] is -inf, so the result is in range.
  const auto it = std::upper_bound(lower_.begin(), lower_.end(), len);
  return static_cast<uint32_t>(it - lower_.begin()) - 1;
}

uint32_t PartitionRouter::MaxSetSizeBelow(float hi) const {
  const auto it =
      std::upper_bound(sorted_lens_.begin(), sorted_lens_.end(), hi);
  if (it == sorted_lens_.begin()) return 0;
  return prefix_max_size_[(it - sorted_lens_.begin()) - 1];
}

PartitionRouter::Route PartitionRouter::RouteQuery(const PreparedQuery& q,
                                                   double tau, float win_lo,
                                                   float win_hi) const {
  Route route;
  route.mask.assign(parts_.size(), 0);
  if (q.tokens.empty() || q.length <= 0.0) return route;
  std::vector<double> query_mass(buckets_, 0.0);
  for (size_t i = 0; i < q.tokens.size(); ++i) {
    query_mass[BucketOf(q.tokens[i], buckets_)] += q.weights[i];
  }
  const double threshold = tau * (1.0 - kRouteSlack);
  for (size_t p = 0; p < parts_.size(); ++p) {
    const Partition& part = parts_[p];
    if (part.count == 0) continue;
    ++route.total;
    if (part.max_len < win_lo || part.min_len > win_hi) continue;
    // Any member inside the window has len(s) >= max(min_len, win.lo) > 0.
    const double lo_den = std::max<double>(part.min_len, win_lo);
    if (lo_den <= 0.0) continue;  // only empty sets; they cannot match
    const double* learned = mass_.data() + p * buckets_;
    double bound = 0.0;
    for (uint32_t b = 0; b < buckets_; ++b) {
      bound += std::min(query_mass[b], learned[b]);
    }
    if (bound / (lo_den * q.length) < threshold) continue;
    route.mask[p] = 1;
    ++route.admitted;
    route.max_set_size = std::max(route.max_set_size, part.max_size);
  }
  route.any = route.admitted > 0;
  return route;
}

size_t PartitionRouter::SizeBytes() const {
  return lower_.size() * sizeof(float) +
         parts_.size() * sizeof(Partition) + mass_.size() * sizeof(double) +
         sorted_lens_.size() * sizeof(float) +
         prefix_max_size_.size() * sizeof(uint32_t);
}

}  // namespace simsel::sketch
