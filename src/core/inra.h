#ifndef SIMSEL_CORE_INRA_H_
#define SIMSEL_CORE_INRA_H_

#include "core/types.h"
#include "index/inverted_index.h"
#include "sim/idf.h"

namespace simsel {

/// Improved NRA (Algorithm 2, Section V). On top of the classic round-robin
/// NRA it applies every semantic property of the IDF measure:
///
///  - Length Boundedness: each list is entered at the first entry with
///    len >= τ·len(q) (via the skip index when enabled) and abandoned once
///    the frontier passes len(q)/τ;
///  - Order Preservation: a candidate shorter than a list's frontier that
///    has not appeared in that list never will — its upper bound tightens
///    without reading anything;
///  - Magnitude Boundedness: a candidate's best-case score is known from its
///    first encounter; hopeless sets are never inserted;
///  - the F < τ cutoff for admitting new candidates, and lazy candidate
///    scans with early termination (bookkeeping reductions).
///
/// Each feature is individually toggleable through `options` for the
/// Figure 8/9 ablations.
QueryResult InraSelect(const InvertedIndex& index, const IdfMeasure& measure,
                       const PreparedQuery& q, double tau,
                       const SelectOptions& options);

namespace internal {
/// Shared iNRA/Hybrid engine; `hybrid` enables Algorithm 4's max_len(C)
/// list-abandonment rule and the partitioned candidate organization.
QueryResult NraFamilySelect(const InvertedIndex& index,
                            const IdfMeasure& measure, const PreparedQuery& q,
                            double tau, const SelectOptions& options,
                            bool hybrid);
}  // namespace internal

}  // namespace simsel

#endif  // SIMSEL_CORE_INRA_H_
