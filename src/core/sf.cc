#include "core/sf.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/bitset.h"
#include "core/internal.h"
#include "index/list_cursor.h"
#include "obs/trace.h"

namespace simsel {

namespace {

struct Candidate {
  uint32_t id;
  float len;
  DynamicBitset present;
  // Optimistic numerator: Σ weights over present lists plus every list not
  // yet proven absent. Divided by len·len(q) it is the candidate's best
  // possible score (Magnitude Boundedness applied incrementally).
  double potential_num;
};

// Candidates and by-length postings share the (len, id) sort order.
bool CandBefore(const Candidate& c, float len, uint32_t id) {
  if (c.len != len) return c.len < len;
  return c.id < id;
}

}  // namespace

QueryResult SfSelect(const InvertedIndex& index, const IdfMeasure& measure,
                     const PreparedQuery& q, double tau,
                     const SelectOptions& options) {
  using internal::ComputeLengthWindow;
  using internal::kPruneSlack;
  using internal::LengthWindow;
  using internal::PruneThreshold;
  tau = internal::ClampTau(tau);
  QueryResult result;
  const size_t n = q.tokens.size();
  if (n == 0) return result;
  AccessCounters& counters = result.counters;
  internal::ControlPoller poller(options.control, counters);
  Status io_status;
  const double prune_at = PruneThreshold(tau);
  LengthWindow window;
  std::vector<size_t> perm(n);
  std::vector<double> suffix(n + 1, 0.0);
  {
    obs::TraceScope bounds_span(options.trace, "bounds");
    window = ComputeLengthWindow(q, tau, options.length_bounding);
    // Decreasing idf order == decreasing weight order (weights are idf²).
    std::iota(perm.begin(), perm.end(), 0);
    std::stable_sort(perm.begin(), perm.end(), [&](size_t a, size_t b) {
      return q.weights[a] > q.weights[b];
    });
    // suffix[k] = Σ_{j >= k} weights[perm[j]].
    for (size_t k = n; k-- > 0;) {
      suffix[k] = suffix[k + 1] + q.weights[perm[k]];
    }
  }

  std::vector<Candidate> cands;  // sorted by (len, id)
  std::vector<Candidate> next;

  auto viable = [&](const Candidate& c) {
    return c.potential_num / (static_cast<double>(c.len) * q.length) >=
           prune_at;
  };

  {
    obs::TraceScope rounds_span(options.trace, "rounds");
    rounds_span.SetItems(n);
    for (size_t k = 0; k < n; ++k) {
      obs::TraceScope list_span(options.trace, "list");
      const size_t list = perm[k];
      ListCursor cursor(index, q.tokens[list], options.use_skip_index,
                        &counters, options.buffer_pool,
                        options.posting_store);
      // λ_k: the deepest length at which a set first seen here could still
      // reach τ, assuming it appears in this and every later list
      // (Equation 2). ClampTau guarantees prune_at > 0, so the division is
      // always defined. Uses the same slacked threshold as viable() so
      // admission and scan depth agree exactly across lists.
      double lambda = suffix[k] / (prune_at * q.length);
      // All depth arithmetic in double so no float rounding can cut the
      // scan short of the admission bound.
      double mu = std::min<double>(lambda, window.hi);
      double pending_max = cands.empty()
                               ? -std::numeric_limits<double>::infinity()
                               : cands.back().len;
      double stop = std::max(pending_max, mu);
      // Largest float <= stop, so the float-keyed span bound admits exactly
      // the postings with (double)len <= stop.
      float stop_f = ListCursor::kNoLengthBound;
      if (!std::isinf(stop)) {
        stop_f = static_cast<float>(stop);
        if (static_cast<double>(stop_f) > stop) {
          stop_f = std::nextafterf(stop_f,
                                   -std::numeric_limits<float>::infinity());
        }
      }

      cursor.SeekSpanStart(window.lo);
      next.clear();
      size_t ci = 0;
      // Block-at-a-time merge: postings arrive in contiguous spans (charged
      // once per span), candidates in the same (len, id) order.
      const size_t bp = index.block_postings();
      PostingSpan span;
      size_t si = 0;
      bool more = true;
      bool tripped = false;
      for (;;) {
        if (si >= span.count && more) {
          // Control poll, once per span (off the per-posting path).
          if (poller.ShouldStop()) {
            tripped = true;
            break;
          }
          span = cursor.NextSpan(bp, stop_f);
          si = 0;
          more = !span.empty();
        }
        const bool have_p = si < span.count;
        const bool have_c = ci < cands.size();
        if (!have_p && !have_c) break;
        const uint32_t pid = have_p ? span.ids[si] : 0;
        const float plen = have_p ? span.lens[si] : 0.0f;
        if (have_c && (!have_p || CandBefore(cands[ci], plen, pid))) {
          // The list moved past this candidate without containing it:
          // absent by Order Preservation; its potential drops.
          ++counters.candidate_scan_steps;
          Candidate& c = cands[ci];
          c.potential_num -= q.weights[list];
          if (viable(c)) {
            next.push_back(std::move(c));
          } else {
            ++counters.candidate_prunes;
          }
          ++ci;
        } else if (have_p && have_c && cands[ci].id == pid &&
                   cands[ci].len == plen) {
          ++counters.candidate_scan_steps;
          Candidate& c = cands[ci];
          c.present.Set(list);
          next.push_back(std::move(c));
          ++ci;
          ++si;
        } else {
          // New set, first seen in this list.
          Candidate c;
          c.id = pid;
          c.len = plen;
          c.present = DynamicBitset(n);
          c.present.Set(list);
          c.potential_num = suffix[k];
          if (viable(c)) {
            next.push_back(std::move(c));
            ++counters.candidate_inserts;
          } else {
            ++counters.candidate_prunes;
          }
          ++si;
        }
      }
      cursor.MarkComplete();
      if (io_status.ok() && !cursor.ok()) io_status = cursor.status();
      if (tripped) {
        // Trip epilogue: candidates in flight are `next` (already merged
        // this round) plus the unmerged tail of `cands`; their bitmaps are
        // incomplete, so report them through exact verification only.
        next.insert(next.end(), std::make_move_iterator(cands.begin() + ci),
                    std::make_move_iterator(cands.end()));
        cands.swap(next);
        break;
      }
      cands.swap(next);
      list_span.SetItems(cands.size());
    }
  }

  obs::TraceScope verify_span(options.trace, "verify");
  verify_span.SetItems(cands.size());
  if (poller.termination() != Termination::kCompleted) {
    result.termination = poller.termination();
    std::vector<uint32_t> ids;
    ids.reserve(cands.size());
    for (const Candidate& c : cands) ids.push_back(c.id);
    internal::VerifyPartialCandidates(measure, q, tau, ids, &result);
  } else {
    for (const Candidate& c : cands) {
      double score = measure.ScoreFromBits(q, c.present, c.len);
      if (score >= tau) result.matches.push_back(Match{c.id, score});
    }
  }
  counters.results = result.matches.size();
  internal::SortMatches(&result.matches);
  if (!io_status.ok()) internal::FailResult(std::move(io_status), &result);
  return result;
}

}  // namespace simsel
