#include "core/parallel.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/bitset.h"
#include "common/logging.h"
#include "container/loser_tree.h"
#include "core/internal.h"
#include "obs/trace.h"

namespace simsel {

std::vector<QueryResult> BatchSelect(const SimilaritySelector& selector,
                                     const std::vector<std::string>& queries,
                                     double tau, AlgorithmKind kind,
                                     const SelectOptions& options,
                                     ThreadPool* pool) {
  std::vector<QueryResult> results(queries.size());
  // One QueryTrace records one query on one thread, so the caller's trace
  // cannot be handed to the workers directly. Instead every query records
  // into its own private child trace, and after the workers are joined the
  // children are stitched into the caller's trace as `batch_query[i]`
  // subtrees (obs::QueryTrace::AdoptChild) — the caller gets one span tree
  // with a subtree per query, in query order, regardless of how the batch
  // was scheduled. The control is shared as before: its fields are
  // shareable (the cancel token is atomic, the rest read-only) and the
  // absolute deadline is exactly what bounds a whole batch.
  const bool traced = options.trace != nullptr;
  obs::TraceScope batch_span(options.trace, "batch");
  std::vector<obs::QueryTrace> child_traces(traced ? queries.size() : 0);
  SelectOptions per_query = options;
  per_query.trace = nullptr;
  constexpr int kMaxAttempts = 3;
  constexpr auto kBackoffBase = std::chrono::microseconds(100);
  ParallelFor(pool, queries.size(), [&](size_t i) {
    SelectOptions query_options = per_query;
    if (traced) query_options.trace = &child_traces[i];
    for (int attempt = 0;; ++attempt) {
      if (traced && attempt > 0) child_traces[i].Clear();  // last try only
      results[i] = selector.Select(queries[i], tau, kind, query_options);
      const Status& st = results[i].status;
      if (st.ok() || !st.IsTransient() || attempt + 1 >= kMaxAttempts) break;
      if (query_options.control.has_deadline() &&
          QueryControl::Clock::now() >= query_options.control.deadline) {
        break;  // no time left to retry; surface the transient failure
      }
      std::this_thread::sleep_for(kBackoffBase * (1 << attempt));
    }
  });
  if (traced) {
    // Workers are joined; the child traces are quiescent and safe to read.
    for (size_t i = 0; i < queries.size(); ++i) {
      options.trace->AdoptChild("batch_query", static_cast<uint32_t>(i),
                                child_traces[i], results[i].matches.size());
      // Select() pointed each result at its (stack-owned) child trace; the
      // stitched parent is the only trace that outlives this call.
      results[i].trace = options.trace;
    }
  }
  batch_span.SetItems(queries.size());
  return results;
}

QueryResult ParallelLinearScanSelect(const SimilarityMeasure& measure,
                                     const Collection& collection,
                                     const PreparedQuery& q, double tau,
                                     ThreadPool* pool,
                                     const SelectOptions& options) {
  tau = internal::ClampTau(tau);
  const size_t num_shards = std::max<size_t>(1, pool->num_threads());
  const size_t n = collection.size();
  const size_t shard_size = (n + num_shards - 1) / num_shards;
  std::vector<QueryResult> shards(num_shards);

  ParallelFor(pool, num_shards, [&](size_t shard) {
    SetId begin = static_cast<SetId>(std::min(n, shard * shard_size));
    SetId end = static_cast<SetId>(std::min(n, (shard + 1) * shard_size));
    QueryResult& out = shards[shard];
    internal::ControlPoller poller(options.control, out.counters);
    for (SetId s = begin; s < end; ++s) {
      if (((s - begin) & 1023u) == 0 && poller.ShouldStop()) {
        out.termination = poller.termination();
        break;
      }
      ++out.counters.rows_scanned;
      double score = measure.Score(q, s);
      if (score >= tau) out.matches.push_back(Match{s, score});
    }
  });

  QueryResult result;
  for (QueryResult& shard : shards) {
    result.counters.Merge(shard.counters);
    result.matches.insert(result.matches.end(), shard.matches.begin(),
                          shard.matches.end());
    // Any tripped shard makes the whole result partial.
    if (shard.termination != Termination::kCompleted) {
      result.termination = shard.termination;
    }
  }
  // Shards are id-disjoint and internally sorted; a merge by id suffices,
  // and shard order is already ascending-id order.
  result.counters.results = result.matches.size();
  return result;
}

namespace {

// Merges one id range [lo_id, hi_id) of the query's id-sorted lists.
void MergeIdRange(const InvertedIndex& index, const IdfMeasure& measure,
                  const PreparedQuery& q, double tau, uint64_t lo_id,
                  uint64_t hi_id, const QueryControl& control,
                  QueryResult* out) {
  const size_t n = q.tokens.size();
  internal::ControlPoller poller(control, out->counters);
  struct ListSlice {
    const uint32_t* ids;
    const float* lens;
    size_t pos;
    size_t end;
  };
  std::vector<ListSlice> lists(n);
  LoserTree<uint32_t> tree(n);
  for (size_t i = 0; i < n; ++i) {
    const uint32_t* ids = index.IdIds(q.tokens[i]);
    size_t size = index.ListSize(q.tokens[i]);
    // Binary search the shard boundaries in this list.
    size_t begin = std::lower_bound(ids, ids + size, lo_id) - ids;
    size_t end = std::lower_bound(ids, ids + size, hi_id) - ids;
    lists[i] = ListSlice{ids, index.IdLens(q.tokens[i]), begin, end};
    out->counters.elements_total += end - begin;
    bool valid = begin < end;
    tree.SetInitial(i, valid ? ids[begin] : 0, valid);
    if (valid) ++out->counters.elements_read;
  }
  tree.Build();

  DynamicBitset bits(n);
  uint32_t current = 0;
  float current_len = 0.0f;
  bool have_current = false;
  auto flush = [&]() {
    if (!have_current) return;
    double score = measure.ScoreFromBits(q, bits, current_len);
    if (score >= tau) out->matches.push_back(Match{current, score});
    bits.ResetAll();
  };
  uint64_t pops = 0;
  while (!tree.empty()) {
    if ((++pops & 1023u) == 0 && poller.ShouldStop()) {
      // Flushed matches are complete (shard ranges are id-disjoint); the
      // merge head's bitmap is incomplete, so exact-verify it. The unread
      // slice tails count as skipped.
      out->termination = poller.termination();
      for (const ListSlice& ls : lists) {
        out->counters.elements_skipped += ls.end - ls.pos;
      }
      if (have_current) {
        internal::VerifyPartialCandidates(measure, q, tau, {current}, out);
      }
      return;
    }
    size_t i = tree.top_source();
    uint32_t id = tree.top_key();
    if (!have_current || id != current) {
      flush();
      current = id;
      current_len = lists[i].lens[lists[i].pos];
      have_current = true;
    }
    bits.Set(i);
    ListSlice& ls = lists[i];
    ++ls.pos;
    bool valid = ls.pos < ls.end;
    if (valid) ++out->counters.elements_read;
    tree.Replace(valid ? ls.ids[ls.pos] : 0, valid);
  }
  flush();
}

}  // namespace

QueryResult ParallelSortByIdSelect(const InvertedIndex& index,
                                   const IdfMeasure& measure,
                                   const PreparedQuery& q, double tau,
                                   ThreadPool* pool,
                                   const SelectOptions& options) {
  tau = internal::ClampTau(tau);
  QueryResult result;
  const size_t n = q.tokens.size();
  if (n == 0) return result;
  SIMSEL_CHECK_MSG(index.options().build_id_lists,
                   "parallel sort-by-id needs an index built with "
                   "build_id_lists");
  // Partition the id space by the largest id present in any query list.
  uint32_t max_id = 0;
  bool any = false;
  for (TokenId t : q.tokens) {
    size_t size = index.ListSize(t);
    if (size > 0) {
      any = true;
      max_id = std::max(max_id, index.IdIds(t)[size - 1]);
    }
  }
  if (!any) return result;

  const size_t shards = std::max<size_t>(1, pool->num_threads());
  std::vector<QueryResult> partial(shards);
  ParallelFor(pool, shards, [&](size_t s) {
    auto [lo, hi] = internal::SortByIdShardRange(max_id, shards, s);
    MergeIdRange(index, measure, q, tau, lo, hi, options.control,
                 &partial[s]);
  });
  for (QueryResult& p : partial) {
    result.counters.Merge(p.counters);
    result.matches.insert(result.matches.end(), p.matches.begin(),
                          p.matches.end());
    if (p.termination != Termination::kCompleted) {
      result.termination = p.termination;
    }
  }
  result.counters.results = result.matches.size();
  return result;
}

namespace internal {

std::pair<uint64_t, uint64_t> SortByIdShardRange(uint32_t max_id,
                                                 size_t shards, size_t shard) {
  // 64-bit end-to-end: uint32_t arithmetic wraps the last shard's exclusive
  // bound to 0 when max_id == UINT32_MAX.
  const uint64_t end = static_cast<uint64_t>(max_id) + 1;
  const uint64_t span = static_cast<uint64_t>(max_id) / shards + 1;
  uint64_t lo = std::min(end, shard * span);
  uint64_t hi = (shard + 1 == shards) ? end : std::min(end, (shard + 1) * span);
  return {lo, std::max(lo, hi)};
}

}  // namespace internal

}  // namespace simsel
