#include "core/parallel.h"

#include <algorithm>

#include "common/bitset.h"
#include "common/logging.h"
#include "container/loser_tree.h"
#include "core/internal.h"

namespace simsel {

std::vector<QueryResult> BatchSelect(const SimilaritySelector& selector,
                                     const std::vector<std::string>& queries,
                                     double tau, AlgorithmKind kind,
                                     const SelectOptions& options,
                                     ThreadPool* pool) {
  std::vector<QueryResult> results(queries.size());
  ParallelFor(pool, queries.size(), [&](size_t i) {
    results[i] = selector.Select(queries[i], tau, kind, options);
  });
  return results;
}

QueryResult ParallelLinearScanSelect(const SimilarityMeasure& measure,
                                     const Collection& collection,
                                     const PreparedQuery& q, double tau,
                                     ThreadPool* pool) {
  const size_t num_shards = std::max<size_t>(1, pool->num_threads());
  const size_t n = collection.size();
  const size_t shard_size = (n + num_shards - 1) / num_shards;
  std::vector<QueryResult> shards(num_shards);

  ParallelFor(pool, num_shards, [&](size_t shard) {
    SetId begin = static_cast<SetId>(std::min(n, shard * shard_size));
    SetId end = static_cast<SetId>(std::min(n, (shard + 1) * shard_size));
    QueryResult& out = shards[shard];
    for (SetId s = begin; s < end; ++s) {
      ++out.counters.rows_scanned;
      double score = measure.Score(q, s);
      if (score >= tau) out.matches.push_back(Match{s, score});
    }
  });

  QueryResult result;
  for (QueryResult& shard : shards) {
    result.counters.Merge(shard.counters);
    result.matches.insert(result.matches.end(), shard.matches.begin(),
                          shard.matches.end());
  }
  // Shards are id-disjoint and internally sorted; a merge by id suffices,
  // and shard order is already ascending-id order.
  result.counters.results = result.matches.size();
  return result;
}

namespace {

// Merges one id range [lo_id, hi_id) of the query's id-sorted lists.
void MergeIdRange(const InvertedIndex& index, const IdfMeasure& measure,
                  const PreparedQuery& q, double tau, uint32_t lo_id,
                  uint32_t hi_id, QueryResult* out) {
  const size_t n = q.tokens.size();
  struct ListSlice {
    const uint32_t* ids;
    const float* lens;
    size_t pos;
    size_t end;
  };
  std::vector<ListSlice> lists(n);
  LoserTree<uint32_t> tree(n);
  for (size_t i = 0; i < n; ++i) {
    const uint32_t* ids = index.IdIds(q.tokens[i]);
    size_t size = index.ListSize(q.tokens[i]);
    // Binary search the shard boundaries in this list.
    size_t begin = std::lower_bound(ids, ids + size, lo_id) - ids;
    size_t end = std::lower_bound(ids, ids + size, hi_id) - ids;
    lists[i] = ListSlice{ids, index.IdLens(q.tokens[i]), begin, end};
    out->counters.elements_total += end - begin;
    bool valid = begin < end;
    tree.SetInitial(i, valid ? ids[begin] : 0, valid);
    if (valid) ++out->counters.elements_read;
  }
  tree.Build();

  DynamicBitset bits(n);
  uint32_t current = 0;
  float current_len = 0.0f;
  bool have_current = false;
  auto flush = [&]() {
    if (!have_current) return;
    double score = measure.ScoreFromBits(q, bits, current_len);
    if (score >= tau) out->matches.push_back(Match{current, score});
    bits = DynamicBitset(n);
  };
  while (!tree.empty()) {
    size_t i = tree.top_source();
    uint32_t id = tree.top_key();
    if (!have_current || id != current) {
      flush();
      current = id;
      current_len = lists[i].lens[lists[i].pos];
      have_current = true;
    }
    bits.Set(i);
    ListSlice& ls = lists[i];
    ++ls.pos;
    bool valid = ls.pos < ls.end;
    if (valid) ++out->counters.elements_read;
    tree.Replace(valid ? ls.ids[ls.pos] : 0, valid);
  }
  flush();
}

}  // namespace

QueryResult ParallelSortByIdSelect(const InvertedIndex& index,
                                   const IdfMeasure& measure,
                                   const PreparedQuery& q, double tau,
                                   ThreadPool* pool) {
  QueryResult result;
  const size_t n = q.tokens.size();
  if (n == 0) return result;
  SIMSEL_CHECK_MSG(index.options().build_id_lists,
                   "parallel sort-by-id needs an index built with "
                   "build_id_lists");
  // Partition the id space by the largest id present in any query list.
  uint32_t max_id = 0;
  bool any = false;
  for (TokenId t : q.tokens) {
    size_t size = index.ListSize(t);
    if (size > 0) {
      any = true;
      max_id = std::max(max_id, index.IdIds(t)[size - 1]);
    }
  }
  if (!any) return result;

  const size_t shards = std::max<size_t>(1, pool->num_threads());
  const uint32_t span = max_id / static_cast<uint32_t>(shards) + 1;
  std::vector<QueryResult> partial(shards);
  ParallelFor(pool, shards, [&](size_t s) {
    uint32_t lo = static_cast<uint32_t>(s) * span;
    uint32_t hi = (s + 1 == shards) ? max_id + 1
                                    : static_cast<uint32_t>(s + 1) * span;
    MergeIdRange(index, measure, q, tau, lo, hi, &partial[s]);
  });
  for (QueryResult& p : partial) {
    result.counters.Merge(p.counters);
    result.matches.insert(result.matches.end(), p.matches.begin(),
                          p.matches.end());
  }
  result.counters.results = result.matches.size();
  return result;
}

}  // namespace simsel
