#ifndef SIMSEL_CORE_SORT_BY_ID_H_
#define SIMSEL_CORE_SORT_BY_ID_H_

#include "core/types.h"
#include "index/compressed_lists.h"
#include "index/inverted_index.h"
#include "sim/idf.h"

namespace simsel {

/// The sort-by-id baseline (Section III-B, Figure 2): a multiway merge of
/// the query tokens' id-sorted inverted lists through a loser tree. Every
/// list is read completely — the algorithm performs no pruning, so its cost
/// is flat in the threshold — but sets sharing no token with the query are
/// never touched. Requires the index to have been built with
/// `build_id_lists`. Only `options.control` is honored (the merge has no
/// use for the pruning toggles); with an active control the read accounting
/// switches from hoisted to per-posting so budget trips see true totals.
QueryResult SortByIdSelect(const InvertedIndex& index,
                           const IdfMeasure& measure, const PreparedQuery& q,
                           double tau, const SelectOptions& options = {});

/// The same merge over delta-varint compressed lists (see
/// index/compressed_lists.h): identical results, ~3-5x fewer list bytes, at
/// the cost of per-posting decode work.
QueryResult SortByIdCompressedSelect(const CompressedIdLists& lists,
                                     const IdfMeasure& measure,
                                     const PreparedQuery& q, double tau);

}  // namespace simsel

#endif  // SIMSEL_CORE_SORT_BY_ID_H_
