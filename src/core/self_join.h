#ifndef SIMSEL_CORE_SELF_JOIN_H_
#define SIMSEL_CORE_SELF_JOIN_H_

#include <vector>

#include "common/thread_pool.h"
#include "core/selector.h"

namespace simsel {

/// One pair of a similarity self-join: a < b and I(set_a, set_b) >= tau.
struct JoinPair {
  SetId a;
  SetId b;
  double score;
};

/// Result of a self-join: the matching pairs (sorted by (a, b)) plus the
/// pooled access counters of the underlying selection queries.
struct SelfJoinResult {
  std::vector<JoinPair> pairs;
  AccessCounters counters;
};

/// Options for SelfJoin.
struct SelfJoinOptions {
  AlgorithmKind algorithm = AlgorithmKind::kSf;
  SelectOptions select;
  /// Optional pool for inter-record parallelism (null = sequential).
  ThreadPool* pool = nullptr;
};

/// Set similarity self-join, the data-cleaning operation the paper's
/// introduction motivates ("various set similarity join operators have been
/// proposed..."), built from selection queries: each record is probed
/// against the index and pairs are emitted once (a < b). For the selection
/// algorithms the probe set is a prepared query of the record itself, so
/// every emitted score is the exact canonical IDF similarity.
SelfJoinResult SelfJoin(const SimilaritySelector& selector, double tau,
                        const SelfJoinOptions& options = SelfJoinOptions());

/// Groups join pairs into connected components (duplicate clusters) by
/// union-find. Returns one sorted member list per cluster with >= 2 members,
/// clusters ordered by their smallest member.
std::vector<std::vector<SetId>> ClusterPairs(size_t num_records,
                                             const std::vector<JoinPair>& pairs);

}  // namespace simsel

#endif  // SIMSEL_CORE_SELF_JOIN_H_
