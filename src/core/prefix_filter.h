#ifndef SIMSEL_CORE_PREFIX_FILTER_H_
#define SIMSEL_CORE_PREFIX_FILTER_H_

#include "core/types.h"
#include "index/inverted_index.h"
#include "sim/idf.h"

namespace simsel {

/// Prefix-filter baseline (Chaudhuri et al., ICDE 2006 — the paper's
/// Related Work [2]) adapted to the weighted, length-normalized IDF measure
/// for selection queries.
///
/// Query tokens are ordered by decreasing idf²; the *prefix* is the shortest
/// head of that order such that a set sharing only suffix tokens cannot
/// reach τ. With Length Boundedness (len(s) ≥ τ·len(q) for any answer), the
/// prefix is minimal p with
///
///   Σ_{j>p} idf(q^j)²  <  τ²·len(q)².
///
/// Candidates are the union of the prefix tokens' lists (restricted to the
/// Theorem 1 length window); each candidate is verified against the base
/// table with an exact score computation (one `rows_scanned` charge per
/// verification — the record fetch a relational implementation would pay).
///
/// Without `options.length_bounding` no lower bound on len(s) exists for a
/// normalized measure, the prefix degenerates to the whole query, and the
/// method reduces to merge-all-lists + verify — which is precisely why the
/// paper notes the technique is subsumed by its own approaches here.
QueryResult PrefixFilterSelect(const InvertedIndex& index,
                               const IdfMeasure& measure,
                               const PreparedQuery& q, double tau,
                               const SelectOptions& options);

}  // namespace simsel

#endif  // SIMSEL_CORE_PREFIX_FILTER_H_
