#ifndef SIMSEL_CORE_TA_H_
#define SIMSEL_CORE_TA_H_

#include "core/types.h"
#include "index/inverted_index.h"
#include "sim/idf.h"

namespace simsel {

/// Classic Threshold Algorithm (Fagin et al.): round-robin sequential access
/// over the weight-sorted lists; every newly seen set id is completed
/// immediately by probing the other lists' extendible hashes (one random
/// page I/O each). Terminates when the frontier bound F drops below tau.
/// Requires an index built with `build_hash`.
QueryResult TaSelect(const InvertedIndex& index, const IdfMeasure& measure,
                     const PreparedQuery& q, double tau);

/// iTA (Section V remark): TA plus Length Boundedness (skip to τ·len(q),
/// stop past len(q)/τ) and Magnitude Boundedness (a set whose best-case
/// score is below tau is discarded before any hash probe is issued).
QueryResult ItaSelect(const InvertedIndex& index, const IdfMeasure& measure,
                      const PreparedQuery& q, double tau,
                      const SelectOptions& options);

namespace internal {
/// Shared engine; `improved` selects iTA behaviour.
QueryResult TaEngineSelect(const InvertedIndex& index,
                           const IdfMeasure& measure, const PreparedQuery& q,
                           double tau, const SelectOptions& options,
                           bool improved);
}  // namespace internal

}  // namespace simsel

#endif  // SIMSEL_CORE_TA_H_
