#include "core/inra.h"

#include <cmath>
#include <deque>
#include <limits>
#include <unordered_map>

#include "common/bitset.h"
#include "core/internal.h"
#include "index/list_cursor.h"
#include "obs/trace.h"

namespace simsel {

namespace {

struct Candidate {
  DynamicBitset present;  // lists the set has been seen in
  DynamicBitset absent;   // lists the set provably does not appear in
  float len = 0.0f;
  double lb_num = 0.0;       // Σ weights[i] over present bits
  double missing_num = 0.0;  // Σ weights[i] over unresolved bits
};

}  // namespace

namespace internal {

// Shared engine for iNRA (Algorithm 2) and Hybrid (Algorithm 4). Hybrid
// adds the max_len(C) early-stop per list, implemented with the paper's
// partitioned candidate organization (one length-ordered queue per origin
// list + the candidate hash table) so max_len(C) costs O(n) per check.
//
// Deviation from the paper, documented in DESIGN.md: the stop fires only
// when the frontier also exceeds λ₁ = Σ_j idf(q^j)² / (τ·len(q)) — the
// deepest length at which ANY set could still be admitted as a new
// candidate (Equation 2 with i = 1). Without this guard a list abandoned at
// a shallow frontier could not resolve candidates admitted later from other
// lists, breaking exactness. λ₁-capped stops keep Hybrid never reading more
// than iNRA while preserving correct results.
QueryResult NraFamilySelect(const InvertedIndex& index,
                            const IdfMeasure& measure, const PreparedQuery& q,
                            double tau, const SelectOptions& options,
                            bool hybrid) {
  tau = ClampTau(tau);
  QueryResult result;
  const size_t n = q.tokens.size();
  if (n == 0) return result;
  AccessCounters& counters = result.counters;
  ControlPoller poller(options.control, counters);
  const double prune_at = PruneThreshold(tau);
  LengthWindow window;
  double total_weight = 0.0;
  double lambda1 = std::numeric_limits<double>::infinity();
  {
    obs::TraceScope bounds_span(options.trace, "bounds");
    bounds_span.SetItems(n);
    window = ComputeLengthWindow(q, tau, options.length_bounding);
    total_weight = TotalWeight(q);
    // ClampTau guarantees prune_at > 0, so λ₁ is always defined.
    lambda1 = total_weight / (prune_at * q.length);
  }

  // Spans never exceed the hi bound, so exhaustion checks and span clipping
  // share one float threshold (window.hi is +inf when bounding is off).
  const float hi_bound =
      options.length_bounding ? window.hi : ListCursor::kNoLengthBound;

  std::vector<ListCursor> cursors;
  std::vector<char> done(n, 0);
  cursors.reserve(n);
  {
    obs::TraceScope open_span(options.trace, "open_lists");
    open_span.SetItems(n);
    for (size_t i = 0; i < n; ++i) {
      cursors.emplace_back(index, q.tokens[i], options.use_skip_index,
                           &counters, options.buffer_pool,
                           options.posting_store);
      if (options.length_bounding) {
        cursors.back().SeekSpanStart(window.lo);
      }
    }
  }

  auto check_done = [&](size_t i) {
    if (done[i]) return true;
    if (cursors[i].FrontierPast(hi_bound)) {
      cursors[i].MarkComplete();
      done[i] = 1;
      return true;
    }
    return false;
  };

  std::unordered_map<uint32_t, Candidate> cands;
  // Hybrid's partitioned candidate set: ids in insertion (== ascending
  // length) order per origin list; stale entries removed lazily.
  std::vector<std::deque<uint32_t>> origin(hybrid ? n : 0);

  auto max_len_c = [&]() {
    double max_len = -std::numeric_limits<double>::infinity();
    for (size_t j = 0; j < n; ++j) {
      std::deque<uint32_t>& dq = origin[j];
      while (!dq.empty() && cands.find(dq.back()) == cands.end()) {
        dq.pop_back();
      }
      if (!dq.empty()) {
        max_len = std::max(max_len,
                           static_cast<double>(cands.at(dq.back()).len));
      }
    }
    return max_len;
  };

  auto frontier_w = [&](size_t i) {
    if (done[i]) return 0.0;
    const float frontier = cursors[i].FrontierLen();
    if (std::isinf(frontier)) return 0.0;
    return q.weights[i] / (static_cast<double>(frontier) * q.length);
  };

  double f = 0.0;
  auto recompute_f = [&]() {
    f = 0.0;
    for (size_t i = 0; i < n; ++i) f += frontier_w(i);
  };
  recompute_f();

  obs::TraceScope rounds_span(options.trace, "rounds");
  const size_t bp = index.block_postings();
  uint64_t rounds = 0;
  bool tripped = false;
  for (;;) {
    ++rounds;
    bool all_done = true;
    for (size_t i = 0; i < n; ++i) {
      if (check_done(i)) continue;
      all_done = false;
      // Control poll, once per span fetch (off the per-posting path).
      if (poller.ShouldStop()) {
        tripped = true;
        break;
      }
      // One block-sized span per list per round (the batched form of the
      // paper's one-posting round-robin). f is recomputed per round either
      // way, so admission within the batch uses the same — conservative —
      // frontier sum the per-posting rounds would have started from.
      float span_hi = hi_bound;
      if (hybrid) {
        // Algorithm 4's stop depth, applied as a span clip so the batched
        // walk abandons at the same posting the one-at-a-time walk would:
        // nothing deeper than max(λ₁, max_len(C)) can admit or resolve.
        const double cap = std::max(lambda1, max_len_c());
        if (std::isfinite(cap) && cap < static_cast<double>(span_hi)) {
          float cap_f = static_cast<float>(cap);
          if (static_cast<double>(cap_f) > cap) {
            cap_f = std::nextafterf(cap_f,
                                    -std::numeric_limits<float>::infinity());
          }
          span_hi = std::min(span_hi, cap_f);
        }
      }
      PostingSpan span = cursors[i].NextSpan(bp, span_hi);
      for (size_t s = 0; s < span.count; ++s) {
        const uint32_t id = span.ids[s];
        const float len = span.lens[s];
        auto it = cands.find(id);
        if (it == cands.end()) {
          bool admit = !(options.f_cutoff && f < prune_at);
          if (admit && options.magnitude_bound) {
            // Property 2: best case assumes the set appears in every list.
            double best =
                total_weight / (static_cast<double>(len) * q.length);
            if (best < prune_at) {
              ++counters.candidate_prunes;
              admit = false;
            }
          }
          if (admit) {
            Candidate cand;
            cand.present = DynamicBitset(n);
            cand.absent = DynamicBitset(n);
            cand.len = len;
            cand.missing_num = total_weight;
            it = cands.emplace(id, std::move(cand)).first;
            ++counters.candidate_inserts;
            if (hybrid) origin[i].push_back(id);
          }
        }
        if (it != cands.end()) {
          Candidate& cand = it->second;
          if (!cand.present.Test(i) && !cand.absent.Test(i)) {
            cand.present.Set(i);
            cand.lb_num += q.weights[i];
            cand.missing_num -= q.weights[i];
          }
        }
      }
      check_done(i);
      if (hybrid && !done[i]) {
        // Algorithm 4: abandon the list once its frontier is past every
        // candidate that could need resolution here and past the deepest
        // admissible new candidate (the λ₁ guard).
        double frontier = cursors[i].FrontierLen();
        if (frontier > lambda1 && frontier > max_len_c()) {
          cursors[i].MarkComplete();
          done[i] = 1;
        }
      }
    }
    if (tripped) break;
    recompute_f();

    const bool do_scan =
        !options.lazy_candidate_scan || f < prune_at || all_done;
    if (do_scan) {
      for (auto it = cands.begin(); it != cands.end();) {
        ++counters.candidate_scan_steps;
        // Control poll once per scan batch: the sweep itself can dominate
        // on huge candidate sets.
        if ((counters.candidate_scan_steps & 1023u) == 0 &&
            poller.ShouldStop()) {
          tripped = true;
          break;
        }
        Candidate& cand = it->second;
        // Resolve absences: exhausted/abandoned lists, and Order
        // Preservation against each frontier.
        double frontier_extra = 0.0;  // only used without magnitude bound
        bool complete = true;
        for (size_t i = 0; i < n; ++i) {
          if (cand.present.Test(i) || cand.absent.Test(i)) continue;
          bool is_absent = done[i];
          if (!is_absent && options.order_preservation &&
              cand.len < cursors[i].FrontierLen()) {
            is_absent = true;  // Property 1: it would have appeared already
          }
          if (is_absent) {
            cand.absent.Set(i);
            cand.missing_num -= q.weights[i];
            continue;
          }
          complete = false;
          frontier_extra += frontier_w(i);
        }
        double denom = static_cast<double>(cand.len) * q.length;
        double ub = options.magnitude_bound
                        ? (cand.lb_num + cand.missing_num) / denom
                        : cand.lb_num / denom + frontier_extra;
        if (complete) {
          double score = measure.ScoreFromBits(q, cand.present, cand.len);
          if (score >= tau) result.matches.push_back(Match{it->first, score});
          it = cands.erase(it);
          continue;
        }
        if (ub < prune_at) {
          ++counters.candidate_prunes;
          it = cands.erase(it);
          continue;
        }
        if (options.lazy_candidate_scan && !all_done) break;
        ++it;
      }
    }
    if (tripped) break;

    if (all_done && cands.empty()) break;
    if (!all_done && f < prune_at && cands.empty()) break;
  }
  rounds_span.SetItems(rounds);

  Status io_status;
  for (size_t i = 0; i < n; ++i) {
    cursors[i].MarkComplete();
    if (io_status.ok() && !cursors[i].ok()) io_status = cursors[i].status();
  }
  if (tripped) {
    // The matches reported so far were fully resolved (exact scores); the
    // surviving candidates have incomplete bitmaps, so each gets one exact
    // verification before being reported.
    result.termination = poller.termination();
    std::vector<uint32_t> ids;
    ids.reserve(cands.size());
    for (const auto& [id, cand] : cands) ids.push_back(id);
    VerifyPartialCandidates(measure, q, tau, ids, &result);
  }
  counters.results = result.matches.size();
  internal::SortMatches(&result.matches);
  if (!io_status.ok()) FailResult(std::move(io_status), &result);
  return result;
}

}  // namespace internal

QueryResult InraSelect(const InvertedIndex& index, const IdfMeasure& measure,
                       const PreparedQuery& q, double tau,
                       const SelectOptions& options) {
  return internal::NraFamilySelect(index, measure, q, tau, options,
                                   /*hybrid=*/false);
}

}  // namespace simsel
