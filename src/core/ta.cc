#include "core/ta.h"

#include <unordered_set>

#include "common/bitset.h"
#include "common/logging.h"
#include "core/internal.h"
#include "index/list_cursor.h"
#include "obs/trace.h"
#include "storage/buffer_pool.h"

namespace simsel {

namespace internal {

QueryResult TaEngineSelect(const InvertedIndex& index,
                           const IdfMeasure& measure, const PreparedQuery& q,
                           double tau, const SelectOptions& options,
                           bool improved) {
  tau = ClampTau(tau);
  QueryResult result;
  const size_t n = q.tokens.size();
  if (n == 0) return result;
  SIMSEL_CHECK_MSG(index.options().build_hash,
                   "TA needs an index built with build_hash");
  AccessCounters& counters = result.counters;
  ControlPoller poller(options.control, counters);

  const bool use_lb = improved && options.length_bounding;
  const bool use_skip = improved && options.use_skip_index;
  const bool use_mb = improved && options.magnitude_bound;
  LengthWindow window;
  const double prune_at = PruneThreshold(tau);
  double total_weight = 0.0;
  {
    obs::TraceScope bounds_span(options.trace, "bounds");
    bounds_span.SetItems(n);
    window = ComputeLengthWindow(q, tau, use_lb);
    total_weight = TotalWeight(q);
  }

  std::vector<ListCursor> cursors;
  cursors.reserve(n);
  {
    obs::TraceScope open_span(options.trace, "open_lists");
    open_span.SetItems(n);
    for (size_t i = 0; i < n; ++i) {
      cursors.emplace_back(index, q.tokens[i], use_skip, &counters,
                           options.buffer_pool,
                           options.posting_store);
      if (use_lb) {
        cursors.back().SeekLengthGE(window.lo);
      } else {
        cursors.back().Next();
      }
    }
  }

  std::unordered_set<uint32_t> seen;
  std::vector<char> done(n, 0);

  auto list_done = [&](size_t i) {
    if (done[i]) return true;
    if (cursors[i].AtEnd() || (use_lb && cursors[i].len() > window.hi)) {
      cursors[i].MarkComplete();
      done[i] = 1;
      return true;
    }
    return false;
  };

  obs::TraceScope rounds_span(options.trace, "rounds");
  uint64_t rounds = 0;
  for (;;) {
    ++rounds;
    // Control poll once per round (n postings + their probes): every match
    // reported so far is fully resolved, so a trip needs no extra
    // verification.
    if (poller.ShouldStop()) {
      result.termination = poller.termination();
      break;
    }
    bool all_done = true;
    for (size_t i = 0; i < n; ++i) {
      if (list_done(i)) continue;
      all_done = false;
      uint32_t id = cursors[i].id();
      float len = cursors[i].len();
      cursors[i].Next();
      if (!seen.insert(id).second) continue;
      if (use_mb) {
        // Property 2: best case assumes membership in every list.
        double best = total_weight / (static_cast<double>(len) * q.length);
        if (best < prune_at) {
          ++counters.candidate_prunes;
          continue;
        }
      }
      // Complete the score with one random-access probe per other list.
      DynamicBitset bits(n);
      bits.Set(i);
      for (size_t j = 0; j < n; ++j) {
        if (j == i) continue;
        const ExtendibleHash* hash = index.hash(q.tokens[j]);
        // A token with an empty posting list has no hash (shard indexes over
        // a global dictionary hit this routinely): absence means non-member.
        if (hash == nullptr) continue;
        ++counters.hash_probes;
        if (options.buffer_pool != nullptr) {
          bool hit = options.buffer_pool->Touch(
              reinterpret_cast<uint64_t>(hash->ProbePageId(id)));
          if (hit) {
            ++counters.pool_hits;
          } else {
            ++counters.pool_misses;
          }
        }
        if (hash->Lookup(id, nullptr, &counters.rand_page_reads)) bits.Set(j);
      }
      double score = measure.ScoreFromBits(q, bits, len);
      if (score >= tau) result.matches.push_back(Match{id, score});
    }
    if (all_done) break;
    // Frontier bound: the best score any unseen set could still achieve.
    double f = 0.0;
    for (size_t i = 0; i < n; ++i) {
      if (done[i] || cursors[i].AtEnd()) continue;
      f += q.weights[i] / (static_cast<double>(cursors[i].len()) * q.length);
    }
    if (f < prune_at) break;
  }
  rounds_span.SetItems(rounds);

  Status io_status;
  for (size_t i = 0; i < n; ++i) {
    cursors[i].MarkComplete();
    if (io_status.ok() && !cursors[i].ok()) io_status = cursors[i].status();
  }
  counters.results = result.matches.size();
  SortMatches(&result.matches);
  if (!io_status.ok()) FailResult(std::move(io_status), &result);
  return result;
}

}  // namespace internal

QueryResult TaSelect(const InvertedIndex& index, const IdfMeasure& measure,
                     const PreparedQuery& q, double tau) {
  return internal::TaEngineSelect(index, measure, q, tau, SelectOptions{},
                                  /*improved=*/false);
}

QueryResult ItaSelect(const InvertedIndex& index, const IdfMeasure& measure,
                      const PreparedQuery& q, double tau,
                      const SelectOptions& options) {
  return internal::TaEngineSelect(index, measure, q, tau, options,
                                  /*improved=*/true);
}

}  // namespace simsel
