#ifndef SIMSEL_CORE_TYPES_H_
#define SIMSEL_CORE_TYPES_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string_view>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "index/collection.h"

namespace simsel {

namespace obs {
class QueryTrace;
}  // namespace obs

class BufferPool;
class PostingStore;

/// One reported set: its id and exact IDF similarity (>= the threshold).
struct Match {
  SetId id;
  double score;
};

/// How a query run ended. Anything other than kCompleted means the result is
/// a *partial*: every reported match is a true match with its exact
/// canonical score (a sound subset of the complete answer), but further
/// matches may have been cut off by the tripped limit.
enum class Termination : uint8_t {
  kCompleted = 0,  ///< ran to the end; the result is the complete answer
  kDeadline,       ///< QueryControl::deadline passed mid-query
  kBudget,         ///< QueryControl::max_elements_read exceeded
  kCancelled,      ///< QueryControl::cancel token observed true
};

inline const char* TerminationName(Termination t) {
  switch (t) {
    case Termination::kCompleted:
      return "completed";
    case Termination::kDeadline:
      return "deadline";
    case Termination::kBudget:
      return "budget";
    case Termination::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

/// Per-query execution limits. All limits are optional and compose; the
/// algorithms poll them once per posting span / candidate-scan batch (off
/// the per-posting hot path), so a tripped control stops the query within
/// one block of extra work and returns a valid partial QueryResult with
/// `termination` set. The default-constructed control never trips.
struct QueryControl {
  using Clock = std::chrono::steady_clock;
  static constexpr Clock::time_point kNoDeadline = Clock::time_point::max();

  /// Absolute wall-clock deadline on the monotonic clock. Absolute rather
  /// than a duration so one value bounds a whole retry/batch pipeline:
  /// queries dispatched later in a batch inherit the remaining time.
  Clock::time_point deadline = kNoDeadline;
  /// Budget on work done: elements_read + rows_scanned (postings decoded
  /// plus base-table/B-tree rows fetched, the dominant per-algorithm work
  /// unit). 0 means unlimited. The budget is a trip wire, not a hard cap:
  /// the query stops at the first poll after crossing it, so overshoot is
  /// bounded by one posting span / scan batch.
  uint64_t max_elements_read = 0;
  /// Caller-owned cancellation token (borrowed; may be shared by any number
  /// of concurrent queries). Set it to true from any thread and every query
  /// polling it stops at its next poll with kCancelled.
  const std::atomic<bool>* cancel = nullptr;
  /// Secondary cancellation token, polled exactly like `cancel`. Exists so a
  /// layer that fans one query out (the serving layer's scatter-gather) can
  /// combine the caller's token with its own sibling-cancel token without
  /// wrapping or copying atomics; either token tripping cancels the query.
  const std::atomic<bool>* cancel2 = nullptr;

  bool has_deadline() const { return deadline != kNoDeadline; }
  /// True when any limit is set (the poller short-circuits otherwise).
  bool active() const {
    return has_deadline() || max_elements_read > 0 || cancel != nullptr ||
           cancel2 != nullptr;
  }
  /// Convenience: a deadline `ms` milliseconds from now.
  static Clock::time_point DeadlineAfterMillis(int64_t ms) {
    return Clock::now() + std::chrono::milliseconds(ms);
  }
};

/// Output of one selection query: matches sorted by ascending id, plus the
/// access accounting the benchmarks aggregate.
struct QueryResult {
  std::vector<Match> matches;
  AccessCounters counters;
  /// How the run ended. Anything but kCompleted marks a partial result (see
  /// Termination); counters always reflect the work actually performed.
  Termination termination = Termination::kCompleted;
  /// Non-OK when a storage read failed mid-query (see FaultInjector).
  /// `matches` is then cleared — a failed read means the result can no
  /// longer be trusted — and callers (BatchSelect) retry transient codes.
  Status status;
  /// The per-phase trace this query was run with (== SelectOptions::trace),
  /// filled by the time the result is returned; null when tracing was off.
  const obs::QueryTrace* trace = nullptr;
  /// Dynamic-index provenance (DynamicSelector only; 0 otherwise): the
  /// selector version this query's snapshot corresponds to. The result is
  /// byte-identical to a serial query against the collection frozen at
  /// exactly this version, and a cached copy stamped with it is valid while
  /// DynamicSelector::version() still returns it.
  uint64_t snapshot_version = 0;
  /// False when the delta segment of a DynamicSelector was not (fully)
  /// scanned: the main-segment query failed or tripped, or the control
  /// tripped inside the delta scan itself. The reported matches are then
  /// sound but may omit delta records even beyond what `termination`
  /// implies for the main segment. Always true for non-dynamic selectors
  /// (there is no delta) and for complete dynamic results.
  bool delta_covered = true;

  /// True when this is the full, trustworthy answer.
  bool complete() const {
    return termination == Termination::kCompleted && status.ok();
  }
};

/// Feature toggles of the selection algorithms. Defaults enable everything
/// (the paper's configuration); the Figure 8/9 ablations switch individual
/// properties off. Algorithms ignore toggles that do not apply to them
/// (e.g. classic NRA never length-bounds regardless of the flag).
struct SelectOptions {
  /// Theorem 1: restrict every list to lengths in [τ·len(q), len(q)/τ].
  bool length_bounding = true;
  /// Use per-list skip indexes for the initial seek (Figure 9's "NSL"
  /// ablation disables this: the prefix is scanned and discarded).
  bool use_skip_index = true;
  /// Property 1: deduce absence from the list frontiers (iNRA/Hybrid/SF).
  bool order_preservation = true;
  /// Property 2: tight best-case upper bounds from the set length.
  bool magnitude_bound = true;
  /// Stop admitting new candidates once F < τ (Section V). Also applied to
  /// the classic NRA baseline, as in the paper's experimental setup.
  bool f_cutoff = true;
  /// Scan the candidate set only while F < τ and stop at the first viable
  /// candidate (Section V's bookkeeping reductions).
  bool lazy_candidate_scan = true;
  /// Consult the MinHash sketch prefilter tier (src/sketch/) before the
  /// exact kernel. When the index carries sketches and the query's engage
  /// gate clears, the tier answers the query itself — banding candidate
  /// generation, partition routing, then exact verification of every
  /// admitted candidate, so the matches are byte-identical to the kernel's
  /// (see docs/SKETCHES.md for the exactness argument). Otherwise the query
  /// falls through unchanged. Ignored by the unindexed baselines
  /// (scan/SQL/sort-by-id).
  bool prefilter = true;
  /// Optional cache simulator: when set, every list page and hash bucket
  /// the inverted-list algorithms touch goes through this LRU and the
  /// hit/miss counts land in QueryResult counters (see
  /// storage/buffer_pool.h). Borrowed, not owned. Thread-safe (sharded):
  /// one pool may back any number of concurrent queries, modeling a shared
  /// server-wide page cache.
  BufferPool* buffer_pool = nullptr;
  /// Optional disk mode: when set, cursors fetch postings block-by-block
  /// out of this page-aligned store (real byte copies, page-granular I/O
  /// accounting) instead of the in-memory arrays (see
  /// storage/posting_store.h). Must have been built from the same index.
  /// Reads are side-effect-free on the image (per-cursor accounting), so
  /// one store serves concurrent queries.
  const PostingStore* posting_store = nullptr;
  /// Optional per-phase trace: when set, the selector and algorithms record
  /// timed spans (tokenize, planning, list rounds, verification) into it
  /// (see obs/trace.h). Owned by the caller, strictly one trace per query
  /// per thread — never share one across concurrent queries. Concurrent
  /// executors (BatchSelect, ShardedSelector) honor this by recording each
  /// worker into a private child trace and stitching the children into this
  /// trace after the join (obs::QueryTrace::AdoptChild), so the caller still
  /// gets one hierarchical span tree. Null (the default) costs a single
  /// pointer test per phase; untraced serving-layer queries may still be
  /// tail-sampled by the always-on flight recorder (obs/flight_recorder.h),
  /// which records into its own thread-local trace without touching this
  /// field.
  obs::QueryTrace* trace = nullptr;
  /// Per-query deadline/budget/cancellation limits. Default: no limits.
  /// Unlike the trace, the control may be shared across concurrent queries
  /// (the cancel token is an atomic, the other fields are read-only), so
  /// BatchSelect passes it through unchanged.
  QueryControl control;
};

/// The algorithms of the paper's evaluation (Section VIII).
enum class AlgorithmKind {
  kLinearScan,  ///< no index; exact scores for every set (testing baseline)
  kSql,         ///< relational plan on the q-gram table's clustered B-tree
  kSortById,    ///< multiway merge of id-sorted lists (no pruning)
  kTa,          ///< classic Threshold Algorithm (random access via hashes)
  kNra,         ///< classic No-Random-Access algorithm
  kIta,         ///< TA + semantic properties (Section V remark)
  kInra,        ///< improved NRA (Section V)
  kSf,          ///< Shortest-First (Section VI)
  kHybrid,      ///< Hybrid (Section VII)
  kPrefixFilter,  ///< prefix filter of [2] adapted to IDF (Related Work)
};

inline const char* AlgorithmKindName(AlgorithmKind kind) {
  switch (kind) {
    case AlgorithmKind::kLinearScan:
      return "scan";
    case AlgorithmKind::kSql:
      return "SQL";
    case AlgorithmKind::kSortById:
      return "sort-by-id";
    case AlgorithmKind::kTa:
      return "TA";
    case AlgorithmKind::kNra:
      return "NRA";
    case AlgorithmKind::kIta:
      return "iTA";
    case AlgorithmKind::kInra:
      return "iNRA";
    case AlgorithmKind::kSf:
      return "SF";
    case AlgorithmKind::kHybrid:
      return "Hybrid";
    case AlgorithmKind::kPrefixFilter:
      return "PrefixFilter";
  }
  return "unknown";
}

}  // namespace simsel

#endif  // SIMSEL_CORE_TYPES_H_
