#ifndef SIMSEL_CORE_TYPES_H_
#define SIMSEL_CORE_TYPES_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/metrics.h"
#include "index/collection.h"

namespace simsel {

namespace obs {
class QueryTrace;
}  // namespace obs

class BufferPool;
class PostingStore;

/// One reported set: its id and exact IDF similarity (>= the threshold).
struct Match {
  SetId id;
  double score;
};

/// Output of one selection query: matches sorted by ascending id, plus the
/// access accounting the benchmarks aggregate.
struct QueryResult {
  std::vector<Match> matches;
  AccessCounters counters;
  /// The per-phase trace this query was run with (== SelectOptions::trace),
  /// filled by the time the result is returned; null when tracing was off.
  const obs::QueryTrace* trace = nullptr;
};

/// Feature toggles of the selection algorithms. Defaults enable everything
/// (the paper's configuration); the Figure 8/9 ablations switch individual
/// properties off. Algorithms ignore toggles that do not apply to them
/// (e.g. classic NRA never length-bounds regardless of the flag).
struct SelectOptions {
  /// Theorem 1: restrict every list to lengths in [τ·len(q), len(q)/τ].
  bool length_bounding = true;
  /// Use per-list skip indexes for the initial seek (Figure 9's "NSL"
  /// ablation disables this: the prefix is scanned and discarded).
  bool use_skip_index = true;
  /// Property 1: deduce absence from the list frontiers (iNRA/Hybrid/SF).
  bool order_preservation = true;
  /// Property 2: tight best-case upper bounds from the set length.
  bool magnitude_bound = true;
  /// Stop admitting new candidates once F < τ (Section V). Also applied to
  /// the classic NRA baseline, as in the paper's experimental setup.
  bool f_cutoff = true;
  /// Scan the candidate set only while F < τ and stop at the first viable
  /// candidate (Section V's bookkeeping reductions).
  bool lazy_candidate_scan = true;
  /// Optional cache simulator: when set, every list page and hash bucket
  /// the inverted-list algorithms touch goes through this LRU and the
  /// hit/miss counts land in QueryResult counters (see
  /// storage/buffer_pool.h). Borrowed, not owned. Thread-safe (sharded):
  /// one pool may back any number of concurrent queries, modeling a shared
  /// server-wide page cache.
  BufferPool* buffer_pool = nullptr;
  /// Optional disk mode: when set, cursors fetch postings block-by-block
  /// out of this page-aligned store (real byte copies, page-granular I/O
  /// accounting) instead of the in-memory arrays (see
  /// storage/posting_store.h). Must have been built from the same index.
  /// Reads are side-effect-free on the image (per-cursor accounting), so
  /// one store serves concurrent queries.
  const PostingStore* posting_store = nullptr;
  /// Optional per-phase trace: when set, the selector and algorithms record
  /// timed spans (tokenize, planning, list rounds, verification) into it
  /// (see obs/trace.h). Owned by the caller, strictly one trace per query
  /// per thread — never share one across concurrent queries (BatchSelect
  /// strips it for that reason); null (the default) costs a single pointer
  /// test per phase.
  obs::QueryTrace* trace = nullptr;
};

/// The algorithms of the paper's evaluation (Section VIII).
enum class AlgorithmKind {
  kLinearScan,  ///< no index; exact scores for every set (testing baseline)
  kSql,         ///< relational plan on the q-gram table's clustered B-tree
  kSortById,    ///< multiway merge of id-sorted lists (no pruning)
  kTa,          ///< classic Threshold Algorithm (random access via hashes)
  kNra,         ///< classic No-Random-Access algorithm
  kIta,         ///< TA + semantic properties (Section V remark)
  kInra,        ///< improved NRA (Section V)
  kSf,          ///< Shortest-First (Section VI)
  kHybrid,      ///< Hybrid (Section VII)
  kPrefixFilter,  ///< prefix filter of [2] adapted to IDF (Related Work)
};

inline const char* AlgorithmKindName(AlgorithmKind kind) {
  switch (kind) {
    case AlgorithmKind::kLinearScan:
      return "scan";
    case AlgorithmKind::kSql:
      return "SQL";
    case AlgorithmKind::kSortById:
      return "sort-by-id";
    case AlgorithmKind::kTa:
      return "TA";
    case AlgorithmKind::kNra:
      return "NRA";
    case AlgorithmKind::kIta:
      return "iTA";
    case AlgorithmKind::kInra:
      return "iNRA";
    case AlgorithmKind::kSf:
      return "SF";
    case AlgorithmKind::kHybrid:
      return "Hybrid";
    case AlgorithmKind::kPrefixFilter:
      return "PrefixFilter";
  }
  return "unknown";
}

}  // namespace simsel

#endif  // SIMSEL_CORE_TYPES_H_
