#include "core/hybrid.h"

#include "core/inra.h"

namespace simsel {

// Observability: Hybrid shares the NRA-family engine, so its trace spans
// (bounds/open_lists/rounds) and registry flushes are recorded there; the
// root span carries the "Hybrid" name from the selector dispatch, and
// hybrid-specific early list abandons show up as elements_skipped.
QueryResult HybridSelect(const InvertedIndex& index, const IdfMeasure& measure,
                         const PreparedQuery& q, double tau,
                         const SelectOptions& options) {
  return internal::NraFamilySelect(index, measure, q, tau, options,
                                   /*hybrid=*/true);
}

}  // namespace simsel
