#include "core/hybrid.h"

#include "core/inra.h"

namespace simsel {

QueryResult HybridSelect(const InvertedIndex& index, const IdfMeasure& measure,
                         const PreparedQuery& q, double tau,
                         const SelectOptions& options) {
  return internal::NraFamilySelect(index, measure, q, tau, options,
                                   /*hybrid=*/true);
}

}  // namespace simsel
