#ifndef SIMSEL_CORE_TFIDF_SELECT_H_
#define SIMSEL_CORE_TFIDF_SELECT_H_

#include "core/types.h"
#include "index/inverted_index.h"
#include "sim/tfidf.h"

namespace simsel {

/// Set similarity selection under full cosine **TF/IDF** — the extension the
/// paper sketches in Section IV: "TF/IDF and BM25 follow looser versions of
/// the aforementioned properties (by associating with every token a maximum
/// tf component and boosting all bounds accordingly). Existing and novel
/// algorithms for these metrics can also be optimized accordingly."
///
/// Let mtf(t) be the maximum tf of token t over the database (known at
/// build time) and mtfq = max_i tf(q, i). The boosted bounds, each proven by
/// replacing an unknown tf with its maximum:
///
///  - boosted Length Boundedness:
///      τ·len(q) / mtfq  <=  ||s||  <=  max_i mtf(q^i) · len(q) / τ;
///  - boosted per-list contribution (Magnitude Boundedness / λ cutoffs):
///      w_i(s) <= κ_i / (||s||·||q||),  κ_i = tf(q,i)·mtf(q^i)·idf(q^i)².
///
/// The engine is Shortest-First over an inverted index built with TF/IDF
/// set lengths (InvertedIndex::BuildWithLengths): lists are processed in
/// decreasing κ order with boosted λ cutoffs, candidates that survive the
/// bound-based pruning are verified with an exact score against the base
/// table (the postings cannot carry per-set tfs, so scores are not
/// computable from the lists alone — verification is one record fetch,
/// charged to rows_scanned).
///
/// Exactness is asserted against a TF/IDF linear scan in tfidf_select_test.
class TfIdfSelector {
 public:
  /// Builds the TF/IDF-specific inverted index over `measure`'s collection.
  TfIdfSelector(const TfIdfMeasure& measure,
                InvertedIndexOptions options = {});

  /// All sets with TF/IDF cosine similarity >= tau.
  QueryResult Select(const PreparedQuery& q, double tau,
                     const SelectOptions& options = SelectOptions()) const;

  const InvertedIndex& index() const { return index_; }

 private:
  const TfIdfMeasure& measure_;
  InvertedIndex index_;
};

}  // namespace simsel

#endif  // SIMSEL_CORE_TFIDF_SELECT_H_
