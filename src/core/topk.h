#ifndef SIMSEL_CORE_TOPK_H_
#define SIMSEL_CORE_TOPK_H_

#include "core/types.h"
#include "index/inverted_index.h"
#include "sim/idf.h"

namespace simsel {

/// Top-k set similarity selection — the extension the paper lists as future
/// work ("we plan to extend our techniques for top-k processing").
///
/// TopKSelect runs an iNRA-style round-robin with a *dynamic* threshold:
/// τ_dyn is the k-th best completed score so far (0 until k sets complete).
/// All three semantic properties transfer:
///  - Length Boundedness becomes adaptive: as τ_dyn rises, every list skips
///    forward to τ_dyn·len(q) and is abandoned past len(q)/τ_dyn;
///  - Magnitude and Order bounds prune candidates against τ_dyn.
/// Ties at the k-th score are broken toward smaller set ids.
///
/// Results are sorted by (score desc, id asc) — rank order, unlike the
/// threshold algorithms which sort by id. Only sets sharing at least one
/// token with the query can be returned (an inverted index never sees the
/// rest); fewer than k matches are returned when fewer such sets exist.
QueryResult TopKSelect(const InvertedIndex& index, const IdfMeasure& measure,
                       const PreparedQuery& q, size_t k,
                       const SelectOptions& options);

/// Exhaustive top-k baseline for verification, same tie-breaking and order.
QueryResult LinearScanTopK(const SimilarityMeasure& measure,
                           const Collection& collection,
                           const PreparedQuery& q, size_t k);

}  // namespace simsel

#endif  // SIMSEL_CORE_TOPK_H_
