#include "core/prefix_filter.h"

#include <algorithm>
#include <numeric>
#include <unordered_set>

#include "core/internal.h"
#include "index/list_cursor.h"

namespace simsel {

QueryResult PrefixFilterSelect(const InvertedIndex& index,
                               const IdfMeasure& measure,
                               const PreparedQuery& q, double tau,
                               const SelectOptions& options) {
  using internal::ComputeLengthWindow;
  using internal::kPruneSlack;
  using internal::LengthWindow;
  tau = internal::ClampTau(tau);
  QueryResult result;
  const size_t n = q.tokens.size();
  if (n == 0) return result;
  AccessCounters& counters = result.counters;
  internal::ControlPoller poller(options.control, counters);
  const LengthWindow window =
      ComputeLengthWindow(q, tau, options.length_bounding);

  // Token order: decreasing weight, the classic prefix-filter ordering
  // (rare tokens first keeps the prefix lists short).
  std::vector<size_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  std::stable_sort(perm.begin(), perm.end(), [&](size_t a, size_t b) {
    return q.weights[a] > q.weights[b];
  });

  // Prefix length: minimal p with suffix weight < τ²·len(q)² (slacked down
  // so floating point can never shrink the prefix too far). Without length
  // bounding there is no usable bound: the prefix is the whole query.
  size_t prefix = n;
  if (options.length_bounding) {  // ClampTau guarantees tau > 0
    double budget =
        tau * (tau * (1.0 - kPruneSlack)) * q.length * q.length;
    double suffix_weight = 0.0;
    for (double w : q.weights) suffix_weight += w;
    prefix = 0;
    while (prefix < n && suffix_weight >= budget) {
      suffix_weight -= q.weights[perm[prefix]];
      ++prefix;
    }
  }

  // Candidate generation: union of the prefix lists inside the window.
  std::unordered_set<uint32_t> candidates;
  Status io_status;
  bool tripped = false;
  uint64_t gen_steps = 0;
  for (size_t k = 0; k < prefix && !tripped; ++k) {
    // Per-list poll (mirrors SF's per-span cadence): a control that tripped
    // before or between lists stops generation without opening the next one.
    if (poller.ShouldStop()) {
      tripped = true;
      break;
    }
    ListCursor cursor(index, q.tokens[perm[k]], options.use_skip_index,
                      &counters, options.buffer_pool,
                      options.posting_store);
    cursor.SeekLengthGE(window.lo);
    while (cursor.positioned() && cursor.len() <= window.hi) {
      // Control poll per batch; a trip jumps straight to verification of
      // the candidates collected so far (already the exact-score path).
      if ((++gen_steps & 511u) == 0 && poller.ShouldStop()) {
        tripped = true;
        break;
      }
      if (candidates.insert(cursor.id()).second) {
        ++counters.candidate_inserts;
      }
      cursor.Next();
    }
    cursor.MarkComplete();
    if (io_status.ok() && !cursor.ok()) io_status = cursor.status();
  }
  // Count the unopened suffix lists toward the pruning denominator, like
  // every other algorithm (their elements are never touched).
  for (size_t k = prefix; k < n; ++k) {
    counters.elements_total += index.ListSize(q.tokens[perm[k]]);
    counters.elements_skipped += index.ListSize(q.tokens[perm[k]]);
  }

  // Verification: exact canonical score per candidate (a record fetch).
  std::vector<uint32_t> ordered(candidates.begin(), candidates.end());
  std::sort(ordered.begin(), ordered.end());
  // A generation trip makes this loop the partial-result epilogue (like
  // VerifyPartialCandidates elsewhere): it runs to completion over the
  // collected candidates. Only an un-tripped run polls here, so a trip
  // during full verification stops with the sound prefix reported so far.
  const bool gen_tripped = tripped;
  uint64_t verify_steps = 0;
  for (uint32_t id : ordered) {
    if (!gen_tripped && (++verify_steps & 255u) == 0 && poller.ShouldStop()) {
      tripped = true;
      break;
    }
    ++counters.rows_scanned;
    double score = measure.Score(q, id);
    if (score >= tau) {
      result.matches.push_back(Match{id, score});
    } else {
      ++counters.candidate_prunes;
    }
  }
  if (tripped) result.termination = poller.termination();
  counters.results = result.matches.size();
  if (!io_status.ok()) internal::FailResult(std::move(io_status), &result);
  return result;
}

}  // namespace simsel
