#include "core/prefix_filter.h"

#include <algorithm>
#include <numeric>
#include <unordered_set>

#include "core/internal.h"
#include "index/list_cursor.h"

namespace simsel {

QueryResult PrefixFilterSelect(const InvertedIndex& index,
                               const IdfMeasure& measure,
                               const PreparedQuery& q, double tau,
                               const SelectOptions& options) {
  using internal::ComputeLengthWindow;
  using internal::kPruneSlack;
  using internal::LengthWindow;
  QueryResult result;
  const size_t n = q.tokens.size();
  if (n == 0) return result;
  AccessCounters& counters = result.counters;
  const LengthWindow window =
      ComputeLengthWindow(q, tau, options.length_bounding);

  // Token order: decreasing weight, the classic prefix-filter ordering
  // (rare tokens first keeps the prefix lists short).
  std::vector<size_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  std::stable_sort(perm.begin(), perm.end(), [&](size_t a, size_t b) {
    return q.weights[a] > q.weights[b];
  });

  // Prefix length: minimal p with suffix weight < τ²·len(q)² (slacked down
  // so floating point can never shrink the prefix too far). Without length
  // bounding there is no usable bound: the prefix is the whole query.
  size_t prefix = n;
  if (options.length_bounding && tau > 0.0) {
    double budget =
        tau * (tau * (1.0 - kPruneSlack)) * q.length * q.length;
    double suffix_weight = 0.0;
    for (double w : q.weights) suffix_weight += w;
    prefix = 0;
    while (prefix < n && suffix_weight >= budget) {
      suffix_weight -= q.weights[perm[prefix]];
      ++prefix;
    }
  }

  // Candidate generation: union of the prefix lists inside the window.
  std::unordered_set<uint32_t> candidates;
  for (size_t k = 0; k < prefix; ++k) {
    ListCursor cursor(index, q.tokens[perm[k]], options.use_skip_index,
                      &counters, options.buffer_pool,
                      options.posting_store);
    cursor.SeekLengthGE(window.lo);
    while (cursor.positioned() && cursor.len() <= window.hi) {
      if (candidates.insert(cursor.id()).second) {
        ++counters.candidate_inserts;
      }
      cursor.Next();
    }
    cursor.MarkComplete();
  }
  // Count the unopened suffix lists toward the pruning denominator, like
  // every other algorithm (their elements are never touched).
  for (size_t k = prefix; k < n; ++k) {
    counters.elements_total += index.ListSize(q.tokens[perm[k]]);
    counters.elements_skipped += index.ListSize(q.tokens[perm[k]]);
  }

  // Verification: exact canonical score per candidate (a record fetch).
  std::vector<uint32_t> ordered(candidates.begin(), candidates.end());
  std::sort(ordered.begin(), ordered.end());
  for (uint32_t id : ordered) {
    ++counters.rows_scanned;
    double score = measure.Score(q, id);
    if (score >= tau) {
      result.matches.push_back(Match{id, score});
    } else {
      ++counters.candidate_prunes;
    }
  }
  counters.results = result.matches.size();
  return result;
}

}  // namespace simsel
