#ifndef SIMSEL_CORE_SELECTOR_H_
#define SIMSEL_CORE_SELECTOR_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/types.h"
#include "index/inverted_index.h"
#include "rel/gram_table.h"
#include "sim/idf.h"
#include "sketch/prefilter.h"
#include "text/tokenizer.h"

namespace simsel {

namespace internal {
/// Process-wide metric flush every served query goes through, shared by the
/// SimilaritySelector facade and the serving layer (serve/): per-algorithm
/// query count and latency, the query-scoped AccessCounters totals, the
/// termination/failure counters, and the flight recorder's tail-sampling
/// hook (obs/flight_recorder.h) — `trace` is whatever trace the query
/// actually executed with (the caller's, or the recorder's sampling trace;
/// null when tracing is compiled out). Call once per executed query — a
/// result served from the result cache is *not* an executed query (its work
/// totals would double-count) and is accounted by the simsel_result_cache_*
/// family instead.
void RecordQueryMetrics(AlgorithmKind kind, const QueryResult& result,
                        uint64_t latency_usec,
                        const obs::QueryTrace* trace = nullptr);

/// Flushes the *delta-scan increment* of a DynamicSelector query into the
/// same process-wide counters. The main-segment execution already went
/// through RecordQueryMetrics inside SelectPrepared; the delta pass happens
/// after that flush, so its postings (elements_read), verified candidates
/// (rows_scanned) and extra matches would otherwise vanish from the
/// process totals. Pass only the delta-side counts.
void RecordDeltaScanMetrics(const AccessCounters& delta_only);
}  // namespace internal

/// Everything needed to stand up a similarity-selection service over a
/// record collection.
struct BuildOptions {
  TokenizerOptions tokenizer;
  InvertedIndexOptions index;
  /// Build the q-gram table + clustered B-tree for the SQL baseline. Off by
  /// default: it roughly triples index memory and only AlgorithmKind::kSql
  /// needs it.
  bool build_sql_baseline = false;
  /// Page size of the SQL baseline's clustered B-tree.
  size_t btree_page_bytes = 4096;
};

/// Figure 5's index-size breakdown, in bytes.
struct IndexSizeReport {
  size_t base_table = 0;
  size_t gram_table = 0;        // relational rows (0 if not built)
  size_t btree = 0;             // clustered composite index (0 if not built)
  size_t inverted_lists = 0;    // both sort orders
  size_t skip_lists = 0;
  size_t extendible_hash = 0;
  size_t sketches = 0;          // MinHash signatures + derived prefilter
};

/// The library facade: owns the tokenizer, collection, IDF measure, inverted
/// index and (optionally) the relational baseline, and answers selection and
/// top-k queries with any of the paper's algorithms.
///
///   SimilaritySelector sel = SimilaritySelector::Build(records);
///   QueryResult r = sel.Select("main street", 0.8);
///
/// Thread-compatible after Build: const queries may run concurrently.
class SimilaritySelector {
 public:
  /// Tokenizes and indexes `records` (record i becomes set id i).
  static SimilaritySelector Build(const std::vector<std::string>& records,
                                  const BuildOptions& options = BuildOptions());

  /// Like Build, but loads the inverted index from `index_path` (written by
  /// SaveIndex) instead of rebuilding it. The records must be the same ones
  /// the index was built from; a postings-count mismatch is rejected as
  /// Corruption. The SQL baseline is rebuilt if requested (it has no
  /// serialized form).
  static Result<SimilaritySelector> BuildWithSavedIndex(
      const std::vector<std::string>& records, const std::string& index_path,
      const BuildOptions& options = BuildOptions());

  /// Persists the inverted index (see InvertedIndex::Save). `version`
  /// selects the wire format; kVersionLegacy writes the uncompressed v2
  /// layout for migration tooling.
  Status SaveIndex(const std::string& index_path,
                   uint32_t version = InvertedIndex::kVersionLatest) const {
    return index_->Save(index_path, version);
  }

  /// Selection: every set with IDF similarity >= tau, via `kind`
  /// (default SF, the paper's overall winner).
  ///
  /// τ ≤ 0 (or any non-finite value) is clamped, identically by every
  /// algorithm, to the smallest supported threshold — see
  /// internal::ClampTau; τ > 1 is mathematically unsatisfiable for the
  /// normalized IDF measure and yields an empty result. `options.control`
  /// bounds the run (deadline / element budget / cancellation); a tripped
  /// query returns a sound partial result with QueryResult::termination set.
  QueryResult Select(std::string_view query, double tau,
                     AlgorithmKind kind = AlgorithmKind::kSf,
                     const SelectOptions& options = SelectOptions()) const;

  /// Top-k most similar sets (see core/topk.h for semantics).
  QueryResult SelectTopK(std::string_view query, size_t k,
                         const SelectOptions& options = SelectOptions()) const;

  /// Tokenizes and prepares a query string for repeated use.
  PreparedQuery Prepare(std::string_view query) const;

  /// Runs `kind` on an already-prepared query.
  QueryResult SelectPrepared(const PreparedQuery& q, double tau,
                             AlgorithmKind kind,
                             const SelectOptions& options) const;

  const Tokenizer& tokenizer() const { return tokenizer_; }
  const Collection& collection() const { return *collection_; }
  const IdfMeasure& measure() const { return *measure_; }
  const InvertedIndex& index() const { return *index_; }
  /// Null unless built with build_sql_baseline.
  const GramTable* gram_table() const { return gram_table_.get(); }
  /// The sketch prefilter tier; null when the index carries no sketches.
  const sketch::Prefilter* prefilter() const { return prefilter_.get(); }

  IndexSizeReport Sizes() const;

 private:
  SimilaritySelector() = default;

  /// The algorithm switch, wrapped by SelectPrepared's timing/metrics.
  QueryResult Dispatch(const PreparedQuery& q, double tau, AlgorithmKind kind,
                       const SelectOptions& options) const;

  Tokenizer tokenizer_;
  std::unique_ptr<Collection> collection_;
  std::unique_ptr<IdfMeasure> measure_;
  std::unique_ptr<InvertedIndex> index_;
  std::unique_ptr<GramTable> gram_table_;
  std::unique_ptr<sketch::Prefilter> prefilter_;
};

}  // namespace simsel

#endif  // SIMSEL_CORE_SELECTOR_H_
