#include "core/topk.h"

#include <algorithm>
#include <limits>
#include <set>
#include <unordered_map>

#include "common/bitset.h"
#include "core/internal.h"
#include "index/list_cursor.h"

namespace simsel {

namespace {

struct Candidate {
  DynamicBitset present;
  DynamicBitset absent;
  float len = 0.0f;
  double lb_num = 0.0;       // Σ weights over present bits
  double missing_num = 0.0;  // Σ weights over unresolved bits
};

// (score, id) ordered so that *begin() is the weakest entry of the pool:
// lowest score first and, among equal scores, the largest id first.
struct PoolLess {
  bool operator()(const Match& a, const Match& b) const {
    if (a.score != b.score) return a.score < b.score;
    return a.id > b.id;
  }
};

// Keeps the k largest values pushed into it (values only; used for the
// dynamic threshold, which needs no identities).
class TopKValues {
 public:
  explicit TopKValues(size_t k) : k_(k) {}

  void Push(double v) {
    if (values_.size() < k_) {
      values_.insert(v);
    } else if (!values_.empty() && *values_.begin() < v) {
      values_.erase(values_.begin());
      values_.insert(v);
    }
  }

  /// The k-th largest value seen, or 0 until k values were pushed.
  double KthBest() const { return values_.size() == k_ ? *values_.begin() : 0.0; }

 private:
  size_t k_;
  std::multiset<double> values_;
};

}  // namespace

QueryResult TopKSelect(const InvertedIndex& index, const IdfMeasure& measure,
                       const PreparedQuery& q, size_t k,
                       const SelectOptions& options) {
  using internal::kPruneSlack;
  QueryResult result;
  const size_t n = q.tokens.size();
  if (n == 0 || k == 0) return result;
  AccessCounters& counters = result.counters;
  internal::ControlPoller poller(options.control, counters);
  const double total_weight = internal::TotalWeight(q);

  std::vector<ListCursor> cursors;
  std::vector<char> done(n, 0);
  cursors.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    cursors.emplace_back(index, q.tokens[i], options.use_skip_index,
                         &counters, options.buffer_pool,
                      options.posting_store);
    cursors.back().Next();
  }

  std::set<Match, PoolLess> pool;  // best <= k completed sets
  std::unordered_map<uint32_t, Candidate> cands;

  // Dynamic threshold: the k-th best *lower bound* over completed scores
  // and incomplete candidates. Every top-k answer's final score is >= this,
  // so it can drive pruning and the adaptive Theorem 1 window. It only
  // grows, so using last round's value is always sound.
  double threshold = 0.0;
  auto prune_at = [&]() { return threshold * (1.0 - kPruneSlack); };

  auto offer = [&](uint32_t id, double score) {
    Match m{id, score};
    if (pool.size() < k) {
      pool.insert(m);
      return;
    }
    if (PoolLess()(*pool.begin(), m)) {
      pool.erase(pool.begin());
      pool.insert(m);
    }
  };

  auto check_done = [&](size_t i) {
    if (done[i]) return true;
    bool past_window =
        options.length_bounding && threshold > 0.0 &&
        static_cast<double>(cursors[i].len()) >
            q.length / threshold * (1.0 + kPruneSlack);
    if (cursors[i].AtEnd() || past_window) {
      cursors[i].MarkComplete();
      done[i] = 1;
      return true;
    }
    return false;
  };

  auto frontier_w = [&](size_t i) {
    if (done[i] || cursors[i].AtEnd()) return 0.0;
    return q.weights[i] / (static_cast<double>(cursors[i].len()) * q.length);
  };

  // Candidate maintenance is a full map sweep; amortize it over a few
  // rounds once the map is large (the threshold then grows in steps, which
  // is sound — it is a lower bound either way).
  size_t round = 0;
  for (;;) {
    ++round;
    // Control poll once per round. A top-k trip returns the current pool:
    // every entry is a genuinely completed set with its exact score, though
    // not necessarily the global best k (see Termination).
    if (poller.ShouldStop()) {
      result.termination = poller.termination();
      break;
    }
    // Adaptive Length Boundedness: skip every list forward to the lower
    // bound implied by the current threshold.
    if (options.length_bounding && threshold > 0.0) {
      float lo =
          static_cast<float>(threshold * q.length * (1.0 - kPruneSlack));
      for (size_t i = 0; i < n; ++i) {
        if (done[i] || cursors[i].AtEnd()) continue;
        if (cursors[i].len() < lo) cursors[i].SeekLengthGE(lo);
      }
    }

    bool all_done = true;
    for (size_t i = 0; i < n; ++i) {
      if (check_done(i)) continue;
      all_done = false;
      uint32_t id = cursors[i].id();
      float len = cursors[i].len();
      cursors[i].Next();
      check_done(i);
      auto it = cands.find(id);
      if (it == cands.end()) {
        if (options.magnitude_bound && threshold > 0.0) {
          double best = total_weight / (static_cast<double>(len) * q.length);
          if (best < prune_at()) {
            ++counters.candidate_prunes;
            continue;
          }
        }
        Candidate cand;
        cand.present = DynamicBitset(n);
        cand.absent = DynamicBitset(n);
        cand.len = len;
        cand.missing_num = total_weight;
        it = cands.emplace(id, std::move(cand)).first;
        ++counters.candidate_inserts;
      }
      Candidate& cand = it->second;
      if (!cand.present.Test(i) && !cand.absent.Test(i)) {
        cand.present.Set(i);
        cand.lb_num += q.weights[i];
        cand.missing_num -= q.weights[i];
      }
    }

    // Candidate maintenance: complete, prune against the threshold, and
    // grow the threshold from the current lower bounds.
    const bool sweep_now =
        all_done || cands.size() < 64 || (round % 4 == 0);
    if (!sweep_now) continue;
    TopKValues lbs(k);
    for (const Match& m : pool) lbs.Push(m.score);
    for (auto it = cands.begin(); it != cands.end();) {
      ++counters.candidate_scan_steps;
      Candidate& cand = it->second;
      bool complete = true;
      for (size_t i = 0; i < n; ++i) {
        if (cand.present.Test(i) || cand.absent.Test(i)) continue;
        bool is_absent = done[i];
        if (!is_absent && options.order_preservation &&
            cand.len < cursors[i].len()) {
          is_absent = true;
        }
        if (is_absent) {
          cand.absent.Set(i);
          cand.missing_num -= q.weights[i];
          continue;
        }
        complete = false;
      }
      double denom = static_cast<double>(cand.len) * q.length;
      if (complete) {
        double score = measure.ScoreFromBits(q, cand.present, cand.len);
        offer(it->first, score);
        lbs.Push(score);
        it = cands.erase(it);
        continue;
      }
      if (threshold > 0.0) {
        double ub = (cand.lb_num + cand.missing_num) / denom;
        if (ub < prune_at()) {
          ++counters.candidate_prunes;
          it = cands.erase(it);
          continue;
        }
      }
      lbs.Push(cand.lb_num / denom);
      ++it;
    }
    threshold = std::max(threshold, lbs.KthBest());

    if (all_done && cands.empty()) break;
    if (!all_done && pool.size() == k && cands.empty()) {
      // No unseen set can beat the k-th best: F bound against it.
      double f = 0.0;
      for (size_t i = 0; i < n; ++i) f += frontier_w(i);
      if (f < prune_at()) break;
    }
  }

  Status io_status;
  for (size_t i = 0; i < n; ++i) {
    cursors[i].MarkComplete();
    if (io_status.ok() && !cursors[i].ok()) io_status = cursors[i].status();
  }
  result.matches.assign(pool.begin(), pool.end());
  std::sort(result.matches.begin(), result.matches.end(),
            [](const Match& a, const Match& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.id < b.id;
            });
  counters.results = result.matches.size();
  if (!io_status.ok()) internal::FailResult(std::move(io_status), &result);
  return result;
}

QueryResult LinearScanTopK(const SimilarityMeasure& measure,
                           const Collection& collection,
                           const PreparedQuery& q, size_t k) {
  QueryResult result;
  if (k == 0) return result;
  std::set<Match, PoolLess> pool;
  for (SetId s = 0; s < collection.size(); ++s) {
    ++result.counters.rows_scanned;
    Match m{s, measure.Score(q, s)};
    if (pool.size() < k) {
      pool.insert(m);
    } else if (PoolLess()(*pool.begin(), m)) {
      pool.erase(pool.begin());
      pool.insert(m);
    }
  }
  result.matches.assign(pool.begin(), pool.end());
  std::sort(result.matches.begin(), result.matches.end(),
            [](const Match& a, const Match& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.id < b.id;
            });
  result.counters.results = result.matches.size();
  return result;
}

}  // namespace simsel
