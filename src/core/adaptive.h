#ifndef SIMSEL_CORE_ADAPTIVE_H_
#define SIMSEL_CORE_ADAPTIVE_H_

#include <string>

#include "core/selector.h"

namespace simsel {

/// Outcome of the adaptive planner: which algorithm to run and why.
struct PlanDecision {
  AlgorithmKind kind = AlgorithmKind::kSf;
  /// Postings inside the Theorem 1 window across the query's lists — the
  /// work estimate the decision is based on.
  uint64_t window_postings = 0;
  uint64_t total_postings = 0;
  const char* reason = "";
};

/// Chooses an algorithm for one query from index statistics, without
/// touching the lists (the skip indexes locate the Theorem 1 window
/// boundaries in O(log) per list).
///
/// The policy encodes the paper's experimental summary: SF wins whenever
/// pruning is possible; the sort-by-id merge (whose cost is flat) is
/// preferable only when the threshold gives pruning no room — a very low τ
/// whose window covers nearly all postings.
PlanDecision ChooseAlgorithm(const InvertedIndex& index,
                             const IdfMeasure& measure,
                             const PreparedQuery& q, double tau);

/// Plans and runs: equivalent to SelectPrepared with the chosen algorithm.
/// The decision can be retrieved separately via ChooseAlgorithm.
QueryResult AdaptiveSelect(const SimilaritySelector& selector,
                           const PreparedQuery& q, double tau,
                           const SelectOptions& options = SelectOptions());

}  // namespace simsel

#endif  // SIMSEL_CORE_ADAPTIVE_H_
