#include "core/tfidf_select.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "core/internal.h"
#include "index/list_cursor.h"

namespace simsel {

namespace {

struct Candidate {
  uint32_t id;
  float len;
  // Optimistic numerator under the boosted bounds: Σ κ over lists not yet
  // proven absent.
  double potential_num;
};

bool CandBefore(const Candidate& c, float len, uint32_t id) {
  if (c.len != len) return c.len < len;
  return c.id < id;
}

}  // namespace

namespace {

InvertedIndex BuildTfIdfIndex(const TfIdfMeasure& measure,
                              InvertedIndexOptions options) {
  const Collection& collection = measure.collection();
  std::vector<float> lengths(collection.size());
  for (SetId s = 0; s < collection.size(); ++s) {
    lengths[s] = measure.set_length(s);
  }
  // The sketch prefilter tier is IDF-selection-only; don't pay for
  // signatures this selector never consults.
  options.build_sketches = false;
  return InvertedIndex::BuildWithLengths(collection, lengths, options);
}

}  // namespace

TfIdfSelector::TfIdfSelector(const TfIdfMeasure& measure,
                             InvertedIndexOptions options)
    : measure_(measure), index_(BuildTfIdfIndex(measure, options)) {}

QueryResult TfIdfSelector::Select(const PreparedQuery& q, double tau,
                                  const SelectOptions& options) const {
  using internal::kPruneSlack;
  QueryResult result;
  const size_t n = q.tokens.size();
  if (n == 0) return result;
  AccessCounters& counters = result.counters;
  const double prune_at = internal::PruneThreshold(tau);

  // κ_i: the largest numerator contribution list i can make to any set.
  std::vector<double> kappa(n);
  uint32_t mtfq = 1;
  uint32_t max_db_tf = 1;
  for (size_t i = 0; i < n; ++i) {
    uint32_t mtf = measure_.max_tf(q.tokens[i]);
    double idf = measure_.idf(q.tokens[i]);
    // q.weights[i] = tf(q,i)·idf already.
    kappa[i] = q.weights[i] * mtf * idf;
    mtfq = std::max(mtfq, q.tfs[i]);
    max_db_tf = std::max(max_db_tf, mtf);
  }

  // Boosted Theorem 1 window.
  internal::LengthWindow window;
  if (options.length_bounding && tau > 0.0) {
    window.lo = static_cast<float>(tau * q.length / mtfq * (1.0 - kPruneSlack));
    window.hi =
        static_cast<float>(max_db_tf * q.length / tau * (1.0 + kPruneSlack));
  }

  // Shortest-First over decreasing κ.
  std::vector<size_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  std::stable_sort(perm.begin(), perm.end(),
                   [&](size_t a, size_t b) { return kappa[a] > kappa[b]; });
  std::vector<double> suffix(n + 1, 0.0);
  for (size_t k = n; k-- > 0;) suffix[k] = suffix[k + 1] + kappa[perm[k]];

  std::vector<Candidate> cands, next;
  auto viable = [&](const Candidate& c) {
    return c.potential_num / (static_cast<double>(c.len) * q.length) >=
           prune_at;
  };

  for (size_t k = 0; k < n; ++k) {
    const size_t list = perm[k];
    ListCursor cursor(index_, q.tokens[list], options.use_skip_index,
                      &counters, options.buffer_pool,
                      options.posting_store);
    double lambda = prune_at > 0.0
                        ? suffix[k] / (prune_at * q.length)
                        : std::numeric_limits<double>::infinity();
    double mu = std::min<double>(lambda, window.hi);
    double pending_max = cands.empty()
                             ? -std::numeric_limits<double>::infinity()
                             : cands.back().len;
    double stop = std::max(pending_max, mu);

    cursor.SeekLengthGE(window.lo);
    next.clear();
    size_t ci = 0;
    for (;;) {
      bool have_p = cursor.positioned() &&
                    static_cast<double>(cursor.len()) <= stop;
      bool have_c = ci < cands.size();
      if (!have_p && !have_c) break;
      if (have_c &&
          (!have_p || CandBefore(cands[ci], cursor.len(), cursor.id()))) {
        ++counters.candidate_scan_steps;
        Candidate& c = cands[ci];
        c.potential_num -= kappa[list];  // absent: κ falls out of the bound
        if (viable(c)) {
          next.push_back(c);
        } else {
          ++counters.candidate_prunes;
        }
        ++ci;
      } else if (have_p && have_c && cands[ci].id == cursor.id() &&
                 cands[ci].len == cursor.len()) {
        ++counters.candidate_scan_steps;
        // Present: the bound keeps κ (the actual contribution is unknown
        // until verification but cannot exceed it).
        next.push_back(cands[ci]);
        ++ci;
        cursor.Next();
      } else {
        Candidate c;
        c.id = cursor.id();
        c.len = cursor.len();
        c.potential_num = suffix[k];
        if (viable(c)) {
          next.push_back(c);
          ++counters.candidate_inserts;
        } else {
          ++counters.candidate_prunes;
        }
        cursor.Next();
      }
    }
    cands.swap(next);
    cursor.MarkComplete();
  }

  // Verification: exact TF/IDF score per surviving candidate.
  for (const Candidate& c : cands) {
    ++counters.rows_scanned;
    double score = measure_.Score(q, c.id);
    if (score >= tau) result.matches.push_back(Match{c.id, score});
  }
  counters.results = result.matches.size();
  internal::SortMatches(&result.matches);
  return result;
}

}  // namespace simsel
