#ifndef SIMSEL_CORE_HYBRID_H_
#define SIMSEL_CORE_HYBRID_H_

#include "core/types.h"
#include "index/inverted_index.h"
#include "sim/idf.h"

namespace simsel {

/// The Hybrid algorithm (Algorithm 4, Section VII): iNRA's breadth-first
/// round-robin combined with SF's max_len(C) stopping condition, so it never
/// descends deeper into a list than either parent strategy. The candidate
/// set is organized as the paper prescribes — one length-sorted queue per
/// origin list plus a hash table — making max_len(C) an O(n) peek at queue
/// backs instead of a full candidate scan. The extra bookkeeping is why the
/// paper finds Hybrid slightly slower than SF in wall-clock despite equal or
/// better pruning.
QueryResult HybridSelect(const InvertedIndex& index, const IdfMeasure& measure,
                         const PreparedQuery& q, double tau,
                         const SelectOptions& options);

}  // namespace simsel

#endif  // SIMSEL_CORE_HYBRID_H_
