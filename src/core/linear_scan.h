#ifndef SIMSEL_CORE_LINEAR_SCAN_H_
#define SIMSEL_CORE_LINEAR_SCAN_H_

#include "core/types.h"
#include "sim/measure.h"

namespace simsel {

/// Exhaustive baseline: scores every database set against the query and
/// reports those with score >= tau. No index is used; this is the ground
/// truth the property tests compare every other algorithm against, and the
/// scorer behind the Table I precision experiment. Only `options.control`
/// is honored; a trip yields the literal id-prefix scanned so far.
QueryResult LinearScanSelect(const SimilarityMeasure& measure,
                             const Collection& collection,
                             const PreparedQuery& q, double tau,
                             const SelectOptions& options = {});

}  // namespace simsel

#endif  // SIMSEL_CORE_LINEAR_SCAN_H_
