#include "core/sql_baseline.h"

#include "rel/sql_baseline_plan.h"

namespace simsel {

QueryResult SqlBaselineSelect(const GramTable& table,
                              const IdfMeasure& measure,
                              const PreparedQuery& q, double tau,
                              const SelectOptions& options) {
  return ExecuteSqlPlan(table, measure, q, tau, options);
}

}  // namespace simsel
