#ifndef SIMSEL_CORE_INTERNAL_H_
#define SIMSEL_CORE_INTERNAL_H_

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/types.h"
#include "sim/idf.h"

namespace simsel::internal {

/// Relative slack applied to prune/stop decisions so floating-point rounding
/// can never discard a set whose true score equals the threshold. Looser
/// pruning only costs a few extra element reads; the final report decision
/// always uses the canonical exact score.
constexpr double kPruneSlack = 1e-9;

/// Threshold used for discarding by upper bound: prune only when
/// upper < tau * (1 - slack).
inline double PruneThreshold(double tau) { return tau * (1.0 - kPruneSlack); }

/// The Theorem 1 length window, slightly widened by the same slack.
struct LengthWindow {
  float lo = 0.0f;
  float hi = std::numeric_limits<float>::infinity();

  bool Contains(float len) const { return len >= lo && len <= hi; }
};

inline LengthWindow ComputeLengthWindow(const PreparedQuery& q, double tau,
                                        bool enabled) {
  LengthWindow w;
  if (!enabled || tau <= 0.0) return w;
  w.lo = static_cast<float>(tau * q.length * (1.0 - kPruneSlack));
  w.hi = static_cast<float>(q.length / tau * (1.0 + kPruneSlack));
  return w;
}

/// Σ_j q.weights[j] — the numerator of a full match; len(q)² when every
/// query token is in the dictionary.
inline double TotalWeight(const PreparedQuery& q) {
  double sum = 0.0;
  for (double w : q.weights) sum += w;
  return sum;
}

/// Sorts matches by ascending id (the canonical result order).
inline void SortMatches(std::vector<Match>* matches) {
  std::sort(matches->begin(), matches->end(),
            [](const Match& a, const Match& b) { return a.id < b.id; });
}

}  // namespace simsel::internal

#endif  // SIMSEL_CORE_INTERNAL_H_
