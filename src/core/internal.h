#ifndef SIMSEL_CORE_INTERNAL_H_
#define SIMSEL_CORE_INTERNAL_H_

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>
#include <vector>

#include "core/types.h"
#include "sim/idf.h"

namespace simsel::internal {

/// Relative slack applied to prune/stop decisions so floating-point rounding
/// can never discard a set whose true score equals the threshold. Looser
/// pruning only costs a few extra element reads; the final report decision
/// always uses the canonical exact score.
constexpr double kPruneSlack = 1e-9;

/// Smallest threshold the algorithms run at. Every public Select entry
/// clamps τ up to at least kMinTau (see ClampTau), so internal threshold
/// arithmetic — the SF/Hybrid cutoff λ = Σκ/(τ·len(q)) in particular — never
/// divides by zero.
constexpr double kMinTau = 1e-6;

/// Public-entry τ validation, applied identically by every selection
/// algorithm (SF, iNRA, Hybrid, TA/iTA, NRA, sort-by-id, linear scan, SQL
/// baseline, prefix filter): τ ≤ 0 or any non-finite value clamps to
/// kMinTau — the query matches every set sharing at least one weighted
/// token, the closest well-defined reading of "no threshold". Only the low
/// end is clamped: the upper range is measure-dependent (IDF similarity
/// never exceeds 1, so τ > 1 simply yields no matches, but unnormalized
/// measures like BM25 run at τ well above 1), so a high τ passes through
/// untouched and the score comparisons decide. The CLI front end is
/// stricter and rejects out-of-range τ with a usage error; the library
/// clamps so a serving path never crashes on bad input.
inline double ClampTau(double tau) {
  return (!std::isfinite(tau) || tau < kMinTau) ? kMinTau : tau;
}

/// Threshold used for discarding by upper bound: prune only when
/// upper < tau * (1 - slack).
inline double PruneThreshold(double tau) { return tau * (1.0 - kPruneSlack); }

/// The Theorem 1 length window, slightly widened by the same slack.
struct LengthWindow {
  float lo = 0.0f;
  float hi = std::numeric_limits<float>::infinity();

  bool Contains(float len) const { return len >= lo && len <= hi; }
};

inline LengthWindow ComputeLengthWindow(const PreparedQuery& q, double tau,
                                        bool enabled) {
  LengthWindow w;
  if (!enabled || tau <= 0.0) return w;
  w.lo = static_cast<float>(tau * q.length * (1.0 - kPruneSlack));
  w.hi = static_cast<float>(q.length / tau * (1.0 + kPruneSlack));
  return w;
}

/// Σ_j q.weights[j] — the numerator of a full match; len(q)² when every
/// query token is in the dictionary.
inline double TotalWeight(const PreparedQuery& q) {
  double sum = 0.0;
  for (double w : q.weights) sum += w;
  return sum;
}

/// Sorts matches by ascending id (the canonical result order).
inline void SortMatches(std::vector<Match>* matches) {
  std::sort(matches->begin(), matches->end(),
            [](const Match& a, const Match& b) { return a.id < b.id; });
}

/// Sticky poll wrapper over a QueryControl. Algorithms construct one per
/// query and call ShouldStop once per posting span / round / candidate-scan
/// batch — never per posting — so an inactive control costs one predictable
/// branch and an active one costs a couple of relaxed loads (the clock is
/// read only when a deadline is set). Once tripped it stays tripped; the
/// trip order (cancel, then budget, then deadline) is fixed so tests see a
/// deterministic verdict when several limits are crossed at once.
class ControlPoller {
 public:
  ControlPoller(const QueryControl& control, const AccessCounters& counters)
      : control_(control), counters_(counters), active_(control.active()) {}

  bool ShouldStop() {
    if (!active_) return false;
    if (termination_ != Termination::kCompleted) return true;
    if ((control_.cancel != nullptr &&
         control_.cancel->load(std::memory_order_relaxed)) ||
        (control_.cancel2 != nullptr &&
         control_.cancel2->load(std::memory_order_relaxed))) {
      termination_ = Termination::kCancelled;
    } else if (control_.max_elements_read > 0 &&
               counters_.elements_read + counters_.rows_scanned >
                   control_.max_elements_read) {
      termination_ = Termination::kBudget;
    } else if (control_.has_deadline() &&
               QueryControl::Clock::now() >= control_.deadline) {
      termination_ = Termination::kDeadline;
    }
    return termination_ != Termination::kCompleted;
  }

  Termination termination() const { return termination_; }

 private:
  const QueryControl& control_;
  const AccessCounters& counters_;
  const bool active_;
  Termination termination_ = Termination::kCompleted;
};

/// Partial-result epilogue for a tripped query: exact-verifies the in-flight
/// candidate ids (one canonical measure.Score record fetch each, charged to
/// rows_scanned) and reports those reaching τ. Candidate bitmaps are
/// incomplete at a trip — lists not yet walked would understate the score —
/// so the canonical score is the only sound way to report them; the cost is
/// bounded by the candidates already admitted. The resulting matches are
/// always a subset of the complete answer with bit-identical scores.
inline void VerifyPartialCandidates(const IdfMeasure& measure,
                                    const PreparedQuery& q, double tau,
                                    const std::vector<uint32_t>& ids,
                                    QueryResult* result) {
  for (uint32_t id : ids) {
    ++result->counters.rows_scanned;
    double score = measure.Score(q, id);
    if (score >= tau) result->matches.push_back(Match{id, score});
  }
}

/// Marks `result` failed: matches are cleared (a lost read means they can no
/// longer be trusted), the status is recorded, counters stay (they reflect
/// work actually done).
inline void FailResult(Status status, QueryResult* result) {
  result->matches.clear();
  result->counters.results = 0;
  result->status = std::move(status);
}

}  // namespace simsel::internal

#endif  // SIMSEL_CORE_INTERNAL_H_
