#include "core/sort_by_id.h"

#include "common/bitset.h"
#include "common/logging.h"
#include "container/loser_tree.h"
#include "core/internal.h"

namespace simsel {

QueryResult SortByIdSelect(const InvertedIndex& index,
                           const IdfMeasure& measure, const PreparedQuery& q,
                           double tau, const SelectOptions& options) {
  tau = internal::ClampTau(tau);
  QueryResult result;
  const size_t n = q.tokens.size();
  if (n == 0) return result;
  SIMSEL_CHECK_MSG(index.options().build_id_lists,
                   "sort-by-id needs an index built with build_id_lists");

  struct ListState {
    const uint32_t* ids;
    const float* lens;
    size_t size;
    size_t pos = 0;
  };
  std::vector<ListState> lists(n);
  const size_t per_page = index.entries_per_page();
  AccessCounters& counters = result.counters;
  internal::ControlPoller poller(options.control, counters);
  // Without a control the merge always drains every list, so the accounting
  // is known up front and the merge loop stays key comparisons only. With
  // an active control the charges move into the loop so a budget poll (and
  // a tripped result) sees the work actually done, not the projection.
  const bool hoist_accounting = !options.control.active();

  LoserTree<uint32_t> tree(n);
  for (size_t i = 0; i < n; ++i) {
    lists[i] = ListState{index.IdIds(q.tokens[i]), index.IdLens(q.tokens[i]),
                         index.ListSize(q.tokens[i])};
    counters.elements_total += lists[i].size;
    tree.SetInitial(i, lists[i].size > 0 ? lists[i].ids[0] : 0,
                    lists[i].size > 0);
    if (hoist_accounting && lists[i].size > 0) {
      counters.elements_read += lists[i].size;
      counters.seq_page_reads += (lists[i].size + per_page - 1) / per_page;
    }
  }
  tree.Build();

  // Drain the merge; the smallest id's score is complete when the merge
  // moves past it (it cannot appear later in any list).
  DynamicBitset bits(n);
  uint32_t current = 0;
  float current_len = 0.0f;
  bool have_current = false;
  bool tripped = false;

  auto flush = [&]() {
    if (!have_current) return;
    double score = measure.ScoreFromBits(q, bits, current_len);
    if (score >= tau) result.matches.push_back(Match{current, score});
    bits.ResetAll();
  };

  uint64_t pops = 0;
  while (!tree.empty()) {
    if ((++pops & 1023u) == 0 && poller.ShouldStop()) {
      tripped = true;
      break;
    }
    size_t i = tree.top_source();
    uint32_t id = tree.top_key();
    if (!have_current || id != current) {
      flush();
      current = id;
      current_len = lists[i].lens[lists[i].pos];
      have_current = true;
    }
    bits.Set(i);
    // Advance list i.
    ListState& ls = lists[i];
    if (!hoist_accounting) {
      ++counters.elements_read;
      if (ls.pos % per_page == 0) ++counters.seq_page_reads;
    }
    ++ls.pos;
    bool valid = ls.pos < ls.size;
    tree.Replace(valid ? ls.ids[ls.pos] : 0, valid);
  }
  if (tripped) {
    // The id under the merge head has an incomplete bitmap; exact-verify it.
    // Unconsumed list tails count as skipped, like a pruned suffix.
    result.termination = poller.termination();
    for (const ListState& ls : lists) {
      counters.elements_skipped += ls.size - ls.pos;
    }
    if (have_current) {
      internal::VerifyPartialCandidates(measure, q, tau, {current}, &result);
    }
  } else {
    flush();
  }

  counters.results = result.matches.size();
  internal::SortMatches(&result.matches);
  return result;
}

QueryResult SortByIdCompressedSelect(const CompressedIdLists& lists,
                                     const IdfMeasure& measure,
                                     const PreparedQuery& q, double tau) {
  QueryResult result;
  const size_t n = q.tokens.size();
  if (n == 0) return result;
  AccessCounters& counters = result.counters;

  std::vector<CompressedIdLists::Cursor> cursors;
  cursors.reserve(n);
  LoserTree<uint32_t> tree(n);
  for (size_t i = 0; i < n; ++i) {
    cursors.push_back(lists.OpenList(q.tokens[i], &counters));
    tree.SetInitial(i, cursors[i].Valid() ? cursors[i].id() : 0,
                    cursors[i].Valid());
  }
  tree.Build();

  DynamicBitset bits(n);
  uint32_t current = 0;
  bool have_current = false;

  auto flush = [&]() {
    if (!have_current) return;
    double score =
        measure.ScoreFromBits(q, bits, lists.set_length(current));
    if (score >= tau) result.matches.push_back(Match{current, score});
    bits.ResetAll();
  };

  while (!tree.empty()) {
    size_t i = tree.top_source();
    uint32_t id = tree.top_key();
    if (!have_current || id != current) {
      flush();
      current = id;
      have_current = true;
    }
    bits.Set(i);
    cursors[i].Next();
    tree.Replace(cursors[i].Valid() ? cursors[i].id() : 0,
                 cursors[i].Valid());
  }
  flush();

  counters.results = result.matches.size();
  internal::SortMatches(&result.matches);
  return result;
}

}  // namespace simsel
