#include "core/sort_by_id.h"

#include "common/bitset.h"
#include "common/logging.h"
#include "container/loser_tree.h"
#include "core/internal.h"

namespace simsel {

QueryResult SortByIdSelect(const InvertedIndex& index,
                           const IdfMeasure& measure, const PreparedQuery& q,
                           double tau) {
  QueryResult result;
  const size_t n = q.tokens.size();
  if (n == 0) return result;
  SIMSEL_CHECK_MSG(index.options().build_id_lists,
                   "sort-by-id needs an index built with build_id_lists");

  struct ListState {
    const uint32_t* ids;
    const float* lens;
    size_t size;
    size_t pos = 0;
  };
  std::vector<ListState> lists(n);
  const size_t per_page = index.entries_per_page();
  AccessCounters& counters = result.counters;

  LoserTree<uint32_t> tree(n);
  for (size_t i = 0; i < n; ++i) {
    lists[i] = ListState{index.IdIds(q.tokens[i]), index.IdLens(q.tokens[i]),
                         index.ListSize(q.tokens[i])};
    counters.elements_total += lists[i].size;
    tree.SetInitial(i, lists[i].size > 0 ? lists[i].ids[0] : 0,
                    lists[i].size > 0);
    // The merge always drains every list, so the accounting is known up
    // front: every posting is read, one sequential page charge per page.
    // Hoisting it here keeps the merge loop to key comparisons only.
    if (lists[i].size > 0) {
      counters.elements_read += lists[i].size;
      counters.seq_page_reads += (lists[i].size + per_page - 1) / per_page;
    }
  }
  tree.Build();

  // Drain the merge; the smallest id's score is complete when the merge
  // moves past it (it cannot appear later in any list).
  DynamicBitset bits(n);
  uint32_t current = 0;
  float current_len = 0.0f;
  bool have_current = false;

  auto flush = [&]() {
    if (!have_current) return;
    double score = measure.ScoreFromBits(q, bits, current_len);
    if (score >= tau) result.matches.push_back(Match{current, score});
    bits.ResetAll();
  };

  while (!tree.empty()) {
    size_t i = tree.top_source();
    uint32_t id = tree.top_key();
    if (!have_current || id != current) {
      flush();
      current = id;
      current_len = lists[i].lens[lists[i].pos];
      have_current = true;
    }
    bits.Set(i);
    // Advance list i (its reads were charged up front).
    ListState& ls = lists[i];
    ++ls.pos;
    bool valid = ls.pos < ls.size;
    tree.Replace(valid ? ls.ids[ls.pos] : 0, valid);
  }
  flush();

  counters.results = result.matches.size();
  internal::SortMatches(&result.matches);
  return result;
}

QueryResult SortByIdCompressedSelect(const CompressedIdLists& lists,
                                     const IdfMeasure& measure,
                                     const PreparedQuery& q, double tau) {
  QueryResult result;
  const size_t n = q.tokens.size();
  if (n == 0) return result;
  AccessCounters& counters = result.counters;

  std::vector<CompressedIdLists::Cursor> cursors;
  cursors.reserve(n);
  LoserTree<uint32_t> tree(n);
  for (size_t i = 0; i < n; ++i) {
    cursors.push_back(lists.OpenList(q.tokens[i], &counters));
    tree.SetInitial(i, cursors[i].Valid() ? cursors[i].id() : 0,
                    cursors[i].Valid());
  }
  tree.Build();

  DynamicBitset bits(n);
  uint32_t current = 0;
  bool have_current = false;

  auto flush = [&]() {
    if (!have_current) return;
    double score =
        measure.ScoreFromBits(q, bits, lists.set_length(current));
    if (score >= tau) result.matches.push_back(Match{current, score});
    bits.ResetAll();
  };

  while (!tree.empty()) {
    size_t i = tree.top_source();
    uint32_t id = tree.top_key();
    if (!have_current || id != current) {
      flush();
      current = id;
      have_current = true;
    }
    bits.Set(i);
    cursors[i].Next();
    tree.Replace(cursors[i].Valid() ? cursors[i].id() : 0,
                 cursors[i].Valid());
  }
  flush();

  counters.results = result.matches.size();
  internal::SortMatches(&result.matches);
  return result;
}

}  // namespace simsel
