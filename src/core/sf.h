#ifndef SIMSEL_CORE_SF_H_
#define SIMSEL_CORE_SF_H_

#include "core/types.h"
#include "index/inverted_index.h"
#include "sim/idf.h"

namespace simsel {

/// The Shortest-First algorithm (Algorithm 3, Section VI): a depth-first
/// strategy that consumes the query's lists in decreasing idf order (rare
/// tokens — short lists — first). For each list i it computes the cutoff
///
///   λ_i = Σ_{j>=i} idf(q^j)² / (τ·len(q))     (Equation 2)
///
/// beyond which no *new* set can still reach the threshold, and scans the
/// list from τ·len(q) up to max(max_len(C), min(λ_i, len(q)/τ)) — deep
/// enough to resolve every existing candidate (matched or provably absent,
/// by Order Preservation) and to admit every viable new one. Candidates
/// live in a single length-sorted list that is merge-scanned exactly once
/// per query list, which is why SF's bookkeeping cost is the lowest of the
/// family and why it wins the paper's evaluation overall.
///
/// `options.order_preservation` and `options.magnitude_bound` are intrinsic
/// to SF and ignored; `length_bounding` and `use_skip_index` are honored
/// (Figures 8 and 9).
QueryResult SfSelect(const InvertedIndex& index, const IdfMeasure& measure,
                     const PreparedQuery& q, double tau,
                     const SelectOptions& options);

}  // namespace simsel

#endif  // SIMSEL_CORE_SF_H_
