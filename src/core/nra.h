#ifndef SIMSEL_CORE_NRA_H_
#define SIMSEL_CORE_NRA_H_

#include "core/types.h"
#include "index/inverted_index.h"
#include "sim/idf.h"

namespace simsel {

/// Classic No-Random-Access algorithm (Algorithm 1): round-robin sequential
/// reads, a candidate hash table with lower/upper score bounds from the list
/// frontiers, no semantic properties. As in the paper's experimental setup,
/// the two bookkeeping concessions of Section V are applied (candidate scans
/// only while F < τ, early scan termination) — without them the baseline
/// "did not terminate in a reasonable amount of time". Both concessions are
/// controlled by `options.f_cutoff` / `options.lazy_candidate_scan`; the
/// semantic-property flags are ignored (always off) for this baseline.
QueryResult NraSelect(const InvertedIndex& index, const IdfMeasure& measure,
                      const PreparedQuery& q, double tau,
                      const SelectOptions& options);

}  // namespace simsel

#endif  // SIMSEL_CORE_NRA_H_
