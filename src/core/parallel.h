#ifndef SIMSEL_CORE_PARALLEL_H_
#define SIMSEL_CORE_PARALLEL_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/thread_pool.h"
#include "core/selector.h"

namespace simsel {

/// Parallel execution of set similarity selections — the paper's future-work
/// item ("we plan to ... devise parallel versions of all algorithms").
///
/// Two complementary strategies are provided:
///  - inter-query: BatchSelect runs a workload of independent queries across
///    a thread pool (SimilaritySelector is const-thread-compatible), the
///    bread-and-butter parallelism of a similarity-search service;
///  - intra-query: ParallelLinearScanSelect shards the collection across
///    workers for one query, the pattern a partitioned deployment would use
///    per partition.

/// Runs one selection per query string concurrently on `pool`. Results are
/// positionally aligned with `queries`.
///
/// `options.control` applies to every query of the batch: the deadline is
/// absolute, so queries dispatched later simply inherit less remaining time,
/// and one cancel token stops the whole batch. A query whose result carries
/// a transient failure Status (kUnavailable — e.g. an injected storage
/// fault) is retried up to two more times with bounded exponential backoff,
/// unless the deadline has already passed; the final attempt's Status is
/// surfaced in its QueryResult rather than crashing the batch.
///
/// When `options.trace` is set, every query records into a private child
/// trace (one trace per query per thread — no cross-thread sharing) and the
/// children are stitched into the caller's trace after the workers join:
/// one `batch` span with a `batch_query[i]` subtree per query, in query
/// order. Each QueryResult::trace then points at the stitched parent. A
/// retried query's subtree covers its final attempt.
std::vector<QueryResult> BatchSelect(const SimilaritySelector& selector,
                                     const std::vector<std::string>& queries,
                                     double tau, AlgorithmKind kind,
                                     const SelectOptions& options,
                                     ThreadPool* pool);

/// Exhaustive scan sharded over the pool; exact same result (ids, canonical
/// scores, ascending id order) as LinearScanSelect. Counters are pooled.
/// Only `options.control` is honored. Deadline and cancellation are polled
/// by every shard; the element budget is checked against each shard's own
/// counters (a per-shard approximation — a parallel scan may read up to
/// `shards` times the budget before every worker trips).
QueryResult ParallelLinearScanSelect(const SimilarityMeasure& measure,
                                     const Collection& collection,
                                     const PreparedQuery& q, double tau,
                                     ThreadPool* pool,
                                     const SelectOptions& options = {});

/// Intra-query parallel sort-by-id merge: the id space is partitioned into
/// one contiguous range per worker, each worker binary-searches its range's
/// start in every id-sorted list and runs the standard loser-tree merge
/// over its slice. Ranges are disjoint, so results concatenate in id order
/// with no cross-thread coordination — the "parallel version" of the
/// paper's Section III-B baseline. Exact same matches as SortByIdSelect.
/// Only `options.control` is honored, with the same per-shard budget
/// approximation as ParallelLinearScanSelect; a tripped shard reports its
/// flushed matches (complete — shard id ranges are disjoint) plus an
/// exact-verified merge head.
QueryResult ParallelSortByIdSelect(const InvertedIndex& index,
                                   const IdfMeasure& measure,
                                   const PreparedQuery& q, double tau,
                                   ThreadPool* pool,
                                   const SelectOptions& options = {});

namespace internal {

/// Half-open id range [lo, hi) that shard `shard` of `shards` merges when
/// the largest id in any query list is `max_id`. 64-bit bounds: the last
/// shard's exclusive bound is max_id + 1, which would wrap to 0 in uint32_t
/// when max_id == UINT32_MAX and silently drop every match in that shard.
/// Ranges are clamped so lo <= hi <= max_id + 1 even when shards outnumber
/// ids. Exposed for regression testing.
std::pair<uint64_t, uint64_t> SortByIdShardRange(uint32_t max_id,
                                                 size_t shards, size_t shard);

}  // namespace internal

}  // namespace simsel

#endif  // SIMSEL_CORE_PARALLEL_H_
