#include "core/self_join.h"

#include <algorithm>
#include <mutex>
#include <numeric>

namespace simsel {

SelfJoinResult SelfJoin(const SimilaritySelector& selector, double tau,
                        const SelfJoinOptions& options) {
  SelfJoinResult result;
  const size_t n = selector.collection().size();

  auto probe = [&](SetId a) {
    PreparedQuery q = selector.Prepare(selector.collection().text(a));
    QueryResult r =
        selector.SelectPrepared(q, tau, options.algorithm, options.select);
    std::vector<JoinPair> out;
    for (const Match& m : r.matches) {
      if (m.id > a) out.push_back(JoinPair{a, m.id, m.score});
    }
    return std::make_pair(std::move(out), r.counters);
  };

  if (options.pool == nullptr) {
    for (SetId a = 0; a < n; ++a) {
      auto [pairs, counters] = probe(a);
      result.pairs.insert(result.pairs.end(), pairs.begin(), pairs.end());
      result.counters.Merge(counters);
    }
  } else {
    std::mutex mu;
    ParallelFor(options.pool, n, [&](size_t a) {
      auto [pairs, counters] = probe(static_cast<SetId>(a));
      std::lock_guard<std::mutex> lock(mu);
      result.pairs.insert(result.pairs.end(), pairs.begin(), pairs.end());
      result.counters.Merge(counters);
    });
  }

  std::sort(result.pairs.begin(), result.pairs.end(),
            [](const JoinPair& x, const JoinPair& y) {
              if (x.a != y.a) return x.a < y.a;
              return x.b < y.b;
            });
  return result;
}

namespace {

class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  uint32_t Find(uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];  // path halving
      x = parent_[x];
    }
    return x;
  }

  void Union(uint32_t a, uint32_t b) {
    a = Find(a);
    b = Find(b);
    if (a != b) parent_[std::max(a, b)] = std::min(a, b);
  }

 private:
  std::vector<uint32_t> parent_;
};

}  // namespace

std::vector<std::vector<SetId>> ClusterPairs(
    size_t num_records, const std::vector<JoinPair>& pairs) {
  UnionFind uf(num_records);
  for (const JoinPair& p : pairs) uf.Union(p.a, p.b);

  // Group members by root; roots are the smallest member of each cluster,
  // so ordering by root orders clusters by smallest member.
  std::vector<std::vector<SetId>> by_root(num_records);
  for (SetId i = 0; i < num_records; ++i) {
    by_root[uf.Find(i)].push_back(i);
  }
  std::vector<std::vector<SetId>> clusters;
  for (std::vector<SetId>& members : by_root) {
    if (members.size() >= 2) clusters.push_back(std::move(members));
  }
  return clusters;
}

}  // namespace simsel
