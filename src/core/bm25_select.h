#ifndef SIMSEL_CORE_BM25_SELECT_H_
#define SIMSEL_CORE_BM25_SELECT_H_

#include "core/types.h"
#include "index/inverted_index.h"
#include "sim/bm25.h"

namespace simsel {

/// Set similarity selection under **BM25 / BM25'** — completing the
/// Section IV remark for the second measure family ("The same ideas can be
/// applied to BM25 and other tf based weighted measures").
///
/// BM25 is not length-normalized, so Theorem 1 does not apply; what remains
/// monotone is the per-token contribution as a function of the document
/// length |s| (through K = k1·(1-b+b·|s|/avgdl)):
///
///   c_t(s) = tf(s,t)·(k1+1)/(tf(s,t)+K)  <=  mtf(t)·(k1+1)/(mtf(t)+K),
///
/// which *decreases* in |s|. Lists are therefore sorted by ascending |s|
/// (the posting payload stores |s| instead of a normalized length) and all
/// of SF's machinery transfers: per-list cutoffs become the document length
/// λ_k at which even presence in every remaining list cannot reach τ
/// (found by bisection — the bound is monotone but not closed-form), Order
/// Preservation holds because |s| is constant across lists, and surviving
/// candidates are verified exactly against the base table.
class Bm25Selector {
 public:
  /// Builds the |s|-ordered inverted index over `measure`'s collection.
  Bm25Selector(const Bm25Measure& measure, InvertedIndexOptions options = {});

  /// All sets with BM25 score >= tau (tau in BM25's unnormalized scale).
  QueryResult Select(const PreparedQuery& q, double tau,
                     const SelectOptions& options = SelectOptions()) const;

  const InvertedIndex& index() const { return index_; }

  /// Largest per-list contribution bound for a document of length `d`:
  /// q.weights[i] · mtf·(k1+1)/(mtf + K(d)). Exposed for tests.
  double ContributionBound(const PreparedQuery& q, size_t i, double d) const;

 private:
  const Bm25Measure& measure_;
  InvertedIndex index_;
};

}  // namespace simsel

#endif  // SIMSEL_CORE_BM25_SELECT_H_
