#include "core/adaptive.h"

#include "core/internal.h"

namespace simsel {

PlanDecision ChooseAlgorithm(const InvertedIndex& index,
                             const IdfMeasure& measure,
                             const PreparedQuery& q, double tau) {
  (void)measure;
  PlanDecision decision;
  const internal::LengthWindow window =
      internal::ComputeLengthWindow(q, tau, /*enabled=*/true);

  for (TokenId t : q.tokens) {
    size_t n = index.ListSize(t);
    decision.total_postings += n;
    const SkipIndex* skip = index.skip(t);
    if (skip != nullptr) {
      size_t lo_pos = skip->SeekFirstGE(window.lo);
      size_t hi_pos = skip->SeekFirstGE(window.hi);
      decision.window_postings += (hi_pos > lo_pos) ? hi_pos - lo_pos : 0;
    } else {
      // Short list: count exactly.
      const float* lens = index.LenLens(t);
      for (size_t i = 0; i < n; ++i) {
        if (window.Contains(lens[i])) ++decision.window_postings;
      }
    }
  }

  if (q.tokens.empty()) {
    decision.kind = AlgorithmKind::kSf;
    decision.reason = "empty query";
    return decision;
  }
  // Flat-cost merge only pays off when pruning has no room: the window
  // covers nearly everything AND the threshold is too low for the F-bound
  // to converge early.
  bool window_useless =
      decision.total_postings > 0 &&
      decision.window_postings * 10 >= decision.total_postings * 9;
  if (tau < 0.35 && window_useless && index.options().build_id_lists) {
    decision.kind = AlgorithmKind::kSortById;
    decision.reason = "low threshold, window covers the lists";
    return decision;
  }
  decision.kind = AlgorithmKind::kSf;
  decision.reason = "pruning available: Shortest-First";
  return decision;
}

QueryResult AdaptiveSelect(const SimilaritySelector& selector,
                           const PreparedQuery& q, double tau,
                           const SelectOptions& options) {
  PlanDecision decision =
      ChooseAlgorithm(selector.index(), selector.measure(), q, tau);
  return selector.SelectPrepared(q, tau, decision.kind, options);
}

}  // namespace simsel
