#include "core/nra.h"

#include <unordered_map>

#include "common/bitset.h"
#include "core/internal.h"
#include "index/list_cursor.h"

namespace simsel {

namespace {

struct Candidate {
  DynamicBitset bits;
  float len = 0.0f;
  double lb_num = 0.0;  // Σ weights[i] over set bits (unnormalized)
};

}  // namespace

QueryResult NraSelect(const InvertedIndex& index, const IdfMeasure& measure,
                      const PreparedQuery& q, double tau,
                      const SelectOptions& options) {
  using internal::PruneThreshold;
  tau = internal::ClampTau(tau);
  QueryResult result;
  const size_t n = q.tokens.size();
  if (n == 0) return result;
  AccessCounters& counters = result.counters;
  internal::ControlPoller poller(options.control, counters);
  const double prune_at = PruneThreshold(tau);

  std::vector<ListCursor> cursors;
  cursors.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    cursors.emplace_back(index, q.tokens[i], /*use_skip=*/false, &counters,
                         options.buffer_pool,
                      options.posting_store);
    cursors.back().Next();
  }

  std::unordered_map<uint32_t, Candidate> cands;

  // Frontier contribution of list i (0 when exhausted).
  auto frontier_w = [&](size_t i) {
    if (cursors[i].AtEnd()) return 0.0;
    return q.weights[i] / (static_cast<double>(cursors[i].len()) * q.length);
  };

  double f = 0.0;
  auto recompute_f = [&]() {
    f = 0.0;
    for (size_t i = 0; i < n; ++i) f += frontier_w(i);
  };
  recompute_f();

  bool tripped = false;
  for (;;) {
    // Control poll once per round-robin pass.
    if (poller.ShouldStop()) break;
    bool all_done = true;
    for (size_t i = 0; i < n; ++i) {
      if (cursors[i].AtEnd()) continue;
      all_done = false;
      uint32_t id = cursors[i].id();
      float len = cursors[i].len();
      cursors[i].Next();
      auto it = cands.find(id);
      if (it == cands.end()) {
        if (options.f_cutoff && f < prune_at) continue;
        Candidate cand;
        cand.bits = DynamicBitset(n);
        cand.len = len;
        it = cands.emplace(id, std::move(cand)).first;
        ++counters.candidate_inserts;
      }
      if (!it->second.bits.Test(i)) {
        it->second.bits.Set(i);
        it->second.lb_num += q.weights[i];
      }
    }
    recompute_f();

    const bool do_scan = !options.lazy_candidate_scan || f < prune_at ||
                         all_done;
    if (do_scan) {
      for (auto it = cands.begin(); it != cands.end();) {
        ++counters.candidate_scan_steps;
        if ((counters.candidate_scan_steps & 1023u) == 0 &&
            poller.ShouldStop()) {
          tripped = true;
          break;
        }
        Candidate& cand = it->second;
        // Upper bound: known contributions plus each missing list's
        // frontier contribution w_i(f_i) (0 once the list is exhausted).
        double ub_extra = 0.0;
        bool complete = true;
        for (size_t i = 0; i < n; ++i) {
          if (cand.bits.Test(i) || cursors[i].AtEnd()) continue;
          complete = false;
          ub_extra += frontier_w(i);
        }
        double denom = static_cast<double>(cand.len) * q.length;
        double ub = cand.lb_num / denom + ub_extra;
        if (complete) {
          double score = measure.ScoreFromBits(q, cand.bits, cand.len);
          if (score >= tau) result.matches.push_back(Match{it->first, score});
          it = cands.erase(it);
          continue;
        }
        if (ub < prune_at) {
          ++counters.candidate_prunes;
          it = cands.erase(it);
          continue;
        }
        if (options.lazy_candidate_scan && !all_done) break;
        ++it;
      }
    }

    if (tripped) break;

    if (all_done) break;
    if (f < prune_at && cands.empty()) break;
  }

  Status io_status;
  for (size_t i = 0; i < n; ++i) {
    cursors[i].MarkComplete();
    if (io_status.ok() && !cursors[i].ok()) io_status = cursors[i].status();
  }
  if (poller.termination() != Termination::kCompleted) {
    result.termination = poller.termination();
    std::vector<uint32_t> ids;
    ids.reserve(cands.size());
    for (const auto& [id, cand] : cands) ids.push_back(id);
    internal::VerifyPartialCandidates(measure, q, tau, ids, &result);
  }
  counters.results = result.matches.size();
  internal::SortMatches(&result.matches);
  if (!io_status.ok()) internal::FailResult(std::move(io_status), &result);
  return result;
}

}  // namespace simsel
