#ifndef SIMSEL_CORE_SQL_BASELINE_H_
#define SIMSEL_CORE_SQL_BASELINE_H_

#include "core/types.h"
#include "rel/gram_table.h"
#include "sim/idf.h"

namespace simsel {

/// The "SQL" algorithm of the evaluation: executes the relational plan of
/// Section III-A over the q-gram table's clustered B-tree. See
/// rel/sql_baseline_plan.h for the plan shape; this wrapper exists so the
/// relational baseline is dispatched uniformly with the inverted-list
/// algorithms.
QueryResult SqlBaselineSelect(const GramTable& table,
                              const IdfMeasure& measure,
                              const PreparedQuery& q, double tau,
                              const SelectOptions& options);

}  // namespace simsel

#endif  // SIMSEL_CORE_SQL_BASELINE_H_
