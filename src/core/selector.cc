#include "core/selector.h"

#include "common/logging.h"
#include "core/hybrid.h"
#include "core/inra.h"
#include "core/linear_scan.h"
#include "core/nra.h"
#include "core/prefix_filter.h"
#include "core/sf.h"
#include "core/sort_by_id.h"
#include "core/sql_baseline.h"
#include "core/ta.h"
#include "core/topk.h"

namespace simsel {

SimilaritySelector SimilaritySelector::Build(
    const std::vector<std::string>& records, const BuildOptions& options) {
  SimilaritySelector sel;
  sel.tokenizer_ = Tokenizer(options.tokenizer);
  sel.collection_ =
      std::make_unique<Collection>(Collection::Build(records, sel.tokenizer_));
  sel.measure_ = std::make_unique<IdfMeasure>(*sel.collection_);
  sel.index_ = std::make_unique<InvertedIndex>(
      InvertedIndex::Build(*sel.collection_, *sel.measure_, options.index));
  if (options.build_sql_baseline) {
    GramTable::Tree::Options tree_options;
    tree_options.page_bytes = options.btree_page_bytes;
    sel.gram_table_ = std::make_unique<GramTable>(
        GramTable::Build(*sel.collection_, *sel.measure_, tree_options));
  }
  return sel;
}

Result<SimilaritySelector> SimilaritySelector::BuildWithSavedIndex(
    const std::vector<std::string>& records, const std::string& index_path,
    const BuildOptions& options) {
  Result<InvertedIndex> loaded = InvertedIndex::Load(index_path);
  if (!loaded.ok()) return loaded.status();
  SimilaritySelector sel;
  sel.tokenizer_ = Tokenizer(options.tokenizer);
  sel.collection_ =
      std::make_unique<Collection>(Collection::Build(records, sel.tokenizer_));
  sel.measure_ = std::make_unique<IdfMeasure>(*sel.collection_);
  sel.index_ =
      std::make_unique<InvertedIndex>(std::move(loaded).value());
  uint64_t expected = 0;
  for (SetId s = 0; s < sel.collection_->size(); ++s) {
    expected += sel.collection_->set(s).tokens.size();
  }
  if (sel.index_->total_postings() != expected ||
      sel.index_->num_tokens() != sel.collection_->dictionary().size()) {
    return Status::Corruption(
        "index at " + index_path + " does not match the supplied records");
  }
  if (options.build_sql_baseline) {
    GramTable::Tree::Options tree_options;
    tree_options.page_bytes = options.btree_page_bytes;
    sel.gram_table_ = std::make_unique<GramTable>(
        GramTable::Build(*sel.collection_, *sel.measure_, tree_options));
  }
  return sel;
}

PreparedQuery SimilaritySelector::Prepare(std::string_view query) const {
  return measure_->PrepareQuery(tokenizer_.TokenizeCounted(query));
}

QueryResult SimilaritySelector::SelectPrepared(
    const PreparedQuery& q, double tau, AlgorithmKind kind,
    const SelectOptions& options) const {
  switch (kind) {
    case AlgorithmKind::kLinearScan:
      return LinearScanSelect(*measure_, *collection_, q, tau);
    case AlgorithmKind::kSql:
      SIMSEL_CHECK_MSG(gram_table_ != nullptr,
                       "SQL baseline requires build_sql_baseline");
      return SqlBaselineSelect(*gram_table_, *measure_, q, tau, options);
    case AlgorithmKind::kSortById:
      return SortByIdSelect(*index_, *measure_, q, tau);
    case AlgorithmKind::kTa:
      // Classic TA: semantic-property flags forced off, but environment
      // options (buffer pool, posting store) still apply.
      return internal::TaEngineSelect(*index_, *measure_, q, tau, options,
                                      /*improved=*/false);
    case AlgorithmKind::kNra:
      return NraSelect(*index_, *measure_, q, tau, options);
    case AlgorithmKind::kIta:
      return ItaSelect(*index_, *measure_, q, tau, options);
    case AlgorithmKind::kInra:
      return InraSelect(*index_, *measure_, q, tau, options);
    case AlgorithmKind::kSf:
      return SfSelect(*index_, *measure_, q, tau, options);
    case AlgorithmKind::kHybrid:
      return HybridSelect(*index_, *measure_, q, tau, options);
    case AlgorithmKind::kPrefixFilter:
      return PrefixFilterSelect(*index_, *measure_, q, tau, options);
  }
  SIMSEL_CHECK_MSG(false, "unknown algorithm kind");
  return QueryResult{};
}

QueryResult SimilaritySelector::Select(std::string_view query, double tau,
                                       AlgorithmKind kind,
                                       const SelectOptions& options) const {
  return SelectPrepared(Prepare(query), tau, kind, options);
}

QueryResult SimilaritySelector::SelectTopK(std::string_view query, size_t k,
                                           const SelectOptions& options) const {
  return TopKSelect(*index_, *measure_, Prepare(query), k, options);
}

IndexSizeReport SimilaritySelector::Sizes() const {
  IndexSizeReport report;
  report.base_table = collection_->BaseTableBytes();
  report.inverted_lists = index_->ListBytesTotal();
  report.skip_lists = index_->SkipBytes();
  report.extendible_hash = index_->HashBytes();
  if (gram_table_ != nullptr) {
    report.gram_table = gram_table_->RowBytes();
    report.btree = gram_table_->BTreeBytes();
  }
  return report;
}

}  // namespace simsel
