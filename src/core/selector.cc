#include "core/selector.h"

#include <array>

#include "common/logging.h"
#include "common/timer.h"
#include "core/hybrid.h"
#include "core/inra.h"
#include "core/linear_scan.h"
#include "core/nra.h"
#include "core/prefix_filter.h"
#include "core/sf.h"
#include "core/sort_by_id.h"
#include "core/sql_baseline.h"
#include "core/ta.h"
#include "core/topk.h"
#include "obs/flight_recorder.h"
#include "obs/log.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"

namespace simsel {

namespace {

// Registry handles resolved once per process; after that the per-query cost
// is a dozen relaxed atomic adds.
struct PerAlgoMetrics {
  obs::Counter* queries;
  obs::Histogram* latency_usec;
};

const PerAlgoMetrics& AlgoMetrics(AlgorithmKind kind) {
  static const auto* table = [] {
    constexpr size_t kKinds =
        static_cast<size_t>(AlgorithmKind::kPrefixFilter) + 1;
    auto* t = new std::array<PerAlgoMetrics, kKinds>();
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
    for (size_t i = 0; i < kKinds; ++i) {
      std::string label = obs::LabelPair(
          "algo", AlgorithmKindName(static_cast<AlgorithmKind>(i)));
      (*t)[i].queries = reg.GetCounter("simsel_queries_total", label);
      (*t)[i].latency_usec =
          reg.GetHistogram("simsel_query_latency_usec", label);
    }
    return t;
  }();
  return (*table)[static_cast<size_t>(kind)];
}

// Per-query access accounting pooled into the process-wide registry. The
// posting read/skip totals are flushed by ListCursor itself (they also
// accrue outside full queries); everything here is query-scoped.
void FlushQueryCounters(const AccessCounters& c) {
  struct Handles {
    obs::Counter* seq_pages;
    obs::Counter* rand_pages;
    obs::Counter* hash_probes;
    obs::Counter* cand_inserts;
    obs::Counter* cand_prunes;
    obs::Counter* cand_scan_steps;
    obs::Counter* rows_scanned;
    obs::Counter* results;
  };
  static const Handles h = [] {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
    return Handles{reg.GetCounter("simsel_page_reads_seq_total"),
                   reg.GetCounter("simsel_page_reads_rand_total"),
                   reg.GetCounter("simsel_hash_probes_total"),
                   reg.GetCounter("simsel_candidates_inserted_total"),
                   reg.GetCounter("simsel_candidates_pruned_total"),
                   reg.GetCounter("simsel_candidate_scan_steps_total"),
                   reg.GetCounter("simsel_rows_scanned_total"),
                   reg.GetCounter("simsel_results_total")};
  }();
  if (c.seq_page_reads) h.seq_pages->Increment(c.seq_page_reads);
  if (c.rand_page_reads) h.rand_pages->Increment(c.rand_page_reads);
  if (c.hash_probes) h.hash_probes->Increment(c.hash_probes);
  if (c.candidate_inserts) h.cand_inserts->Increment(c.candidate_inserts);
  if (c.candidate_prunes) h.cand_prunes->Increment(c.candidate_prunes);
  if (c.candidate_scan_steps) {
    h.cand_scan_steps->Increment(c.candidate_scan_steps);
  }
  if (c.rows_scanned) h.rows_scanned->Increment(c.rows_scanned);
  if (c.results) h.results->Increment(c.results);
}

}  // namespace

namespace internal {

void RecordQueryMetrics(AlgorithmKind kind, const QueryResult& result,
                        uint64_t latency_usec, const obs::QueryTrace* trace) {
  const PerAlgoMetrics& m = AlgoMetrics(kind);
  m.queries->Increment();
  m.latency_usec->Observe(latency_usec);
  FlushQueryCounters(result.counters);
  if (result.termination != Termination::kCompleted) {
    // One counter per trip reason; resolved lazily (tripped queries are the
    // exception, completed ones pay nothing here).
    obs::MetricsRegistry::Global()
        .GetCounter("simsel_query_terminations_total",
                    obs::LabelPair("reason",
                                   TerminationName(result.termination)))
        ->Increment();
  }
  if (!result.status.ok()) {
    obs::MetricsRegistry::Global()
        .GetCounter("simsel_query_failures_total")
        ->Increment();
  }
  // Tail sampling: slow/tripped/failed queries keep their full span tree in
  // the slow-query log, healthy ones feed the per-thread flight ring.
  obs::QueryCompletion completion;
  completion.algo = AlgorithmKindName(kind);
  completion.latency_usec = latency_usec;
  completion.termination = TerminationName(result.termination);
  completion.tripped = result.termination != Termination::kCompleted;
  completion.failed = !result.status.ok();
  if (completion.failed) completion.status_message = result.status.ToString();
  completion.counters = &result.counters;
  completion.trace = trace;
  obs::FlightRecorder::Global().OnQueryComplete(completion);
}

void RecordDeltaScanMetrics(const AccessCounters& delta_only) {
  FlushQueryCounters(delta_only);
  // Delta postings are decoded without a ListCursor, so they are charged to
  // the cursor-owned postings total here instead.
  static obs::Counter* postings_read = obs::MetricsRegistry::Global()
      .GetCounter("simsel_postings_read_total");
  if (delta_only.elements_read) {
    postings_read->Increment(delta_only.elements_read);
  }
}

}  // namespace internal

SimilaritySelector SimilaritySelector::Build(
    const std::vector<std::string>& records, const BuildOptions& options) {
  SimilaritySelector sel;
  sel.tokenizer_ = Tokenizer(options.tokenizer);
  sel.collection_ =
      std::make_unique<Collection>(Collection::Build(records, sel.tokenizer_));
  sel.measure_ = std::make_unique<IdfMeasure>(*sel.collection_);
  sel.index_ = std::make_unique<InvertedIndex>(
      InvertedIndex::Build(*sel.collection_, *sel.measure_, options.index));
  sel.prefilter_ = sketch::AttachPrefilter(*sel.measure_, *sel.index_);
  if (options.build_sql_baseline) {
    GramTable::Tree::Options tree_options;
    tree_options.page_bytes = options.btree_page_bytes;
    sel.gram_table_ = std::make_unique<GramTable>(
        GramTable::Build(*sel.collection_, *sel.measure_, tree_options));
  }
  return sel;
}

Result<SimilaritySelector> SimilaritySelector::BuildWithSavedIndex(
    const std::vector<std::string>& records, const std::string& index_path,
    const BuildOptions& options) {
  Result<InvertedIndex> loaded = InvertedIndex::Load(index_path);
  if (!loaded.ok()) return loaded.status();
  SimilaritySelector sel;
  sel.tokenizer_ = Tokenizer(options.tokenizer);
  sel.collection_ =
      std::make_unique<Collection>(Collection::Build(records, sel.tokenizer_));
  sel.measure_ = std::make_unique<IdfMeasure>(*sel.collection_);
  sel.index_ =
      std::make_unique<InvertedIndex>(std::move(loaded).value());
  uint64_t expected = 0;
  for (SetId s = 0; s < sel.collection_->size(); ++s) {
    expected += sel.collection_->set(s).tokens.size();
  }
  if (sel.index_->total_postings() != expected ||
      sel.index_->num_tokens() != sel.collection_->dictionary().size()) {
    SIMSEL_LOG(kWarn) << "index at " << index_path
                      << " does not match the supplied records ("
                      << sel.index_->total_postings() << " postings, expected "
                      << expected << ")";
    return Status::Corruption(
        "index at " + index_path + " does not match the supplied records");
  }
  SIMSEL_LOG(kInfo) << "loaded index from " << index_path << " ("
                    << sel.index_->num_tokens() << " lists, "
                    << sel.index_->total_postings() << " postings)";
  // The banding tables and partition router are derived structures (like
  // skip indexes), deterministically recomputed from the persisted
  // signatures + collection statistics.
  sel.prefilter_ = sketch::AttachPrefilter(*sel.measure_, *sel.index_);
  if (options.build_sql_baseline) {
    GramTable::Tree::Options tree_options;
    tree_options.page_bytes = options.btree_page_bytes;
    sel.gram_table_ = std::make_unique<GramTable>(
        GramTable::Build(*sel.collection_, *sel.measure_, tree_options));
  }
  return sel;
}

PreparedQuery SimilaritySelector::Prepare(std::string_view query) const {
  return measure_->PrepareQuery(tokenizer_.TokenizeCounted(query));
}

QueryResult SimilaritySelector::SelectPrepared(
    const PreparedQuery& q, double tau, AlgorithmKind kind,
    const SelectOptions& options) const {
  WallTimer timer;
  // No sampling trace is attached here: phase spans cost two clock reads
  // each, and on this hot path (tens of microseconds per query, hundreds of
  // spans for the round-based algorithms) that blows the bench budget. The
  // serving layer attaches the flight recorder's sampling trace instead —
  // its queries are scatter-gather-sized, so span cost vanishes there. An
  // untraced query here still reports completion (latency, counters,
  // termination) for the slow-query log, just without spans.
  QueryResult result = Dispatch(q, tau, kind, options);
  result.trace = options.trace;
  internal::RecordQueryMetrics(kind, result,
                               static_cast<uint64_t>(timer.ElapsedMicros()),
                               options.trace);
  return result;
}

QueryResult SimilaritySelector::Dispatch(const PreparedQuery& q, double tau,
                                         AlgorithmKind kind,
                                         const SelectOptions& options) const {
  obs::TraceScope span(options.trace, AlgorithmKindName(kind));
  if (options.prefilter && prefilter_ != nullptr &&
      sketch::PrefilterEligible(kind)) {
    QueryResult out;
    if (prefilter_->TrySelect(q, tau, options, &out)) return out;
  }
  switch (kind) {
    case AlgorithmKind::kLinearScan:
      return LinearScanSelect(*measure_, *collection_, q, tau, options);
    case AlgorithmKind::kSql:
      SIMSEL_CHECK_MSG(gram_table_ != nullptr,
                       "SQL baseline requires build_sql_baseline");
      return SqlBaselineSelect(*gram_table_, *measure_, q, tau, options);
    case AlgorithmKind::kSortById:
      return SortByIdSelect(*index_, *measure_, q, tau, options);
    case AlgorithmKind::kTa:
      // Classic TA: semantic-property flags forced off, but environment
      // options (buffer pool, posting store) still apply.
      return internal::TaEngineSelect(*index_, *measure_, q, tau, options,
                                      /*improved=*/false);
    case AlgorithmKind::kNra:
      return NraSelect(*index_, *measure_, q, tau, options);
    case AlgorithmKind::kIta:
      return ItaSelect(*index_, *measure_, q, tau, options);
    case AlgorithmKind::kInra:
      return InraSelect(*index_, *measure_, q, tau, options);
    case AlgorithmKind::kSf:
      return SfSelect(*index_, *measure_, q, tau, options);
    case AlgorithmKind::kHybrid:
      return HybridSelect(*index_, *measure_, q, tau, options);
    case AlgorithmKind::kPrefixFilter:
      return PrefixFilterSelect(*index_, *measure_, q, tau, options);
  }
  SIMSEL_CHECK_MSG(false, "unknown algorithm kind");
  return QueryResult{};
}

QueryResult SimilaritySelector::Select(std::string_view query, double tau,
                                       AlgorithmKind kind,
                                       const SelectOptions& options) const {
  obs::TraceScope root(options.trace, "query");
  PreparedQuery q;
  {
    obs::TraceScope span(options.trace, "tokenize");
    q = Prepare(query);
    span.SetItems(q.tokens.size());
  }
  return SelectPrepared(q, tau, kind, options);
}

QueryResult SimilaritySelector::SelectTopK(std::string_view query, size_t k,
                                           const SelectOptions& options) const {
  QueryResult result = TopKSelect(*index_, *measure_, Prepare(query), k,
                                  options);
  result.trace = options.trace;
  FlushQueryCounters(result.counters);
  return result;
}

IndexSizeReport SimilaritySelector::Sizes() const {
  IndexSizeReport report;
  report.base_table = collection_->BaseTableBytes();
  report.inverted_lists = index_->ListBytesTotal();
  report.skip_lists = index_->SkipBytes();
  report.extendible_hash = index_->HashBytes();
  if (gram_table_ != nullptr) {
    report.gram_table = gram_table_->RowBytes();
    report.btree = gram_table_->BTreeBytes();
  }
  report.sketches = index_->SketchBytes();
  if (prefilter_ != nullptr) report.sketches += prefilter_->DerivedBytes();
  return report;
}

}  // namespace simsel
