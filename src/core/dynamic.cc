#include "core/dynamic.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "core/internal.h"

namespace simsel {

DynamicSelector::DynamicSelector(const std::vector<std::string>& initial,
                                 const BuildOptions& options)
    : options_(options),
      main_(std::make_unique<SimilaritySelector>(
          SimilaritySelector::Build(initial, options))),
      main_size_(initial.size()),
      all_texts_(initial) {}

DynamicSelector::DeltaRecord DynamicSelector::Analyze(
    const std::string& text) const {
  const IdfMeasure& measure = main_->measure();
  const Dictionary& dict = main_->collection().dictionary();
  DeltaRecord rec;
  double len_sq = 0.0;
  for (const TokenCount& tc : main_->tokenizer().TokenizeCounted(text)) {
    auto id = dict.Find(tc.token);
    if (id.has_value()) {
      rec.tokens.push_back(*id);
      double idf = measure.idf(*id);
      len_sq += idf * idf;
    } else {
      // Unknown under the frozen statistics: rarest possible weight, no
      // list to match through, but it still normalizes the length.
      len_sq += measure.default_idf() * measure.default_idf();
    }
  }
  std::sort(rec.tokens.begin(), rec.tokens.end());
  rec.frozen_length = static_cast<float>(std::sqrt(len_sq));
  return rec;
}

SetId DynamicSelector::AddRecord(std::string text) {
  SetId id = static_cast<SetId>(all_texts_.size());
  // Analyze before appending: `text` is our own copy, and the appends must
  // not be interleaved with anything reading container internals.
  DeltaRecord rec = Analyze(text);
  all_texts_.push_back(text);
  delta_texts_.push_back(std::move(text));
  delta_records_.push_back(std::move(rec));
  ++version_;
  return id;
}

const std::string& DynamicSelector::text(SetId id) const {
  SIMSEL_CHECK(id < all_texts_.size());
  return all_texts_[id];
}

QueryResult DynamicSelector::Select(std::string_view query, double tau,
                                    AlgorithmKind kind,
                                    const SelectOptions& options) const {
  PreparedQuery q = main_->Prepare(query);
  QueryResult result = main_->SelectPrepared(q, tau, kind, options);

  // Exhaustive pass over the delta segment with the frozen weights; the
  // canonical ascending-token summation keeps scores comparable with the
  // main segment's.
  for (size_t d = 0; d < delta_records_.size(); ++d) {
    ++result.counters.rows_scanned;
    const DeltaRecord& rec = delta_records_[d];
    double sum = 0.0;
    size_t i = 0, j = 0;
    while (i < q.tokens.size() && j < rec.tokens.size()) {
      if (q.tokens[i] < rec.tokens[j]) {
        ++i;
      } else if (rec.tokens[j] < q.tokens[i]) {
        ++j;
      } else {
        sum += q.weights[i];
        ++i;
        ++j;
      }
    }
    double denom = static_cast<double>(rec.frozen_length) * q.length;
    double score = denom > 0.0 ? sum / denom : 0.0;
    if (score >= tau) {
      result.matches.push_back(
          Match{static_cast<SetId>(main_size_ + d), score});
    }
  }
  result.counters.results = result.matches.size();
  internal::SortMatches(&result.matches);
  return result;
}

void DynamicSelector::Rebuild() {
  main_ = std::make_unique<SimilaritySelector>(
      SimilaritySelector::Build(all_texts_, options_));
  main_size_ = all_texts_.size();
  delta_texts_.clear();
  delta_records_.clear();
  ++version_;
}

}  // namespace simsel
