#include "core/dynamic.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "core/internal.h"
#include "obs/metrics_registry.h"
#include "storage/posting_store.h"

namespace simsel {
namespace dynamic_internal {

/// One appended record under the frozen statistics.
struct DeltaRecord {
  std::vector<TokenId> tokens;  // known tokens, distinct, ascending TokenId
  std::vector<uint32_t> tfs;    // parallel to tokens (set-semantic IDF
                                // ignores them; kept so a tf-weighted
                                // measure could score the delta too)
  float frozen_length = 0.0f;   // with unknown-token mass included
  /// MinHash signature over `tokens` under the main index's sketch family
  /// (empty when the main index carries no sketches): lets the prefilter
  /// tier screen delta records with the same admission rule as persisted
  /// sets, so the tier stays available while records stream in.
  std::vector<uint64_t> sketch;
  std::string text;
};

/// The delta segment: an append-only record log plus a per-token inverted
/// index over it, written by one externally-serialized writer and read
/// lock-free by any number of concurrent readers.
///
/// Publication protocol: the writer materializes the record in its chunk
/// slot and links its posting entries first, then publishes everything with
/// one release store of the record count. A reader acquires the count once
/// (its snapshot cut `n`) and touches only records and posting entries with
/// position < n — all of which the acquire made visible. Posting lists
/// store positions in ascending order, so a reader walks each list until it
/// sees a position >= n and stops; entries beyond its cut are never read.
class DeltaIndex {
 public:
  static constexpr size_t kChunkBits = 8;
  static constexpr size_t kChunkSize = size_t{1} << kChunkBits;  // records
  static constexpr size_t kMaxChunks = size_t{1} << 14;  // 4.2M records cap
  static constexpr size_t kNodeCap = 16;  // positions per posting node

  explicit DeltaIndex(size_t num_tokens)
      : num_tokens_(num_tokens),
        chunks_(new std::atomic<RecordChunk*>[kMaxChunks]),
        tokens_(num_tokens > 0 ? new TokenList[num_tokens] : nullptr) {
    for (size_t i = 0; i < kMaxChunks; ++i) {
      chunks_[i].store(nullptr, std::memory_order_relaxed);
    }
  }

  ~DeltaIndex() {
    for (size_t i = 0; i < kMaxChunks; ++i) {
      delete chunks_[i].load(std::memory_order_relaxed);
    }
    for (size_t t = 0; t < num_tokens_; ++t) {
      PostingNode* node = tokens_[t].head.load(std::memory_order_relaxed);
      while (node != nullptr) {
        PostingNode* next = node->next.load(std::memory_order_relaxed);
        delete node;
        node = next;
      }
    }
  }

  DeltaIndex(const DeltaIndex&) = delete;
  DeltaIndex& operator=(const DeltaIndex&) = delete;

  /// Writer side (callers serialize on the selector's append mutex).
  /// Returns the record's position.
  uint32_t Append(DeltaRecord rec) {
    uint32_t pos = count_.load(std::memory_order_relaxed);
    SIMSEL_CHECK_MSG(pos < kChunkSize * kMaxChunks, "delta segment full");
    size_t chunk_index = pos >> kChunkBits;
    RecordChunk* chunk = chunks_[chunk_index].load(std::memory_order_relaxed);
    if (chunk == nullptr) {
      chunk = new RecordChunk();
      chunks_[chunk_index].store(chunk, std::memory_order_release);
    }
    DeltaRecord& slot = chunk->records[pos & (kChunkSize - 1)];
    slot = std::move(rec);
    for (TokenId t : slot.tokens) AppendPosting(t, pos);
    // The one publication point: everything written above becomes visible
    // to readers that acquire a count > pos.
    count_.store(pos + 1, std::memory_order_release);
    return pos;
  }

  /// Reader side: the snapshot cut. Pair with positions < the value.
  uint32_t count() const { return count_.load(std::memory_order_acquire); }

  /// Record at `pos`; requires pos < a previously acquired count.
  const DeltaRecord& record(uint32_t pos) const {
    RecordChunk* chunk =
        chunks_[pos >> kChunkBits].load(std::memory_order_acquire);
    SIMSEL_CHECK(chunk != nullptr);
    return chunk->records[pos & (kChunkSize - 1)];
  }

  /// Visits the positions of records containing `token`, restricted to
  /// pos < limit, in ascending order. Returns the number visited.
  template <typename Fn>
  size_t ForEachPosting(TokenId token, uint32_t limit, Fn&& fn) const {
    if (token >= num_tokens_ || limit == 0) return 0;
    const TokenList& list = tokens_[token];
    uint32_t total = list.size.load(std::memory_order_acquire);
    PostingNode* node = list.head.load(std::memory_order_acquire);
    size_t visited = 0;
    for (uint32_t i = 0; node != nullptr && i < total; ) {
      uint32_t in_node = static_cast<uint32_t>(
          std::min<uint64_t>(kNodeCap, total - i));
      for (uint32_t k = 0; k < in_node; ++k) {
        uint32_t pos = node->pos[k];
        if (pos >= limit) return visited;  // ascending: nothing more <limit
        fn(pos);
        ++visited;
      }
      i += in_node;
      node = node->next.load(std::memory_order_acquire);
    }
    return visited;
  }

 private:
  struct RecordChunk {
    DeltaRecord records[kChunkSize];
  };
  struct PostingNode {
    uint32_t pos[kNodeCap];
    std::atomic<PostingNode*> next{nullptr};
  };
  struct TokenList {
    std::atomic<uint32_t> size{0};
    std::atomic<PostingNode*> head{nullptr};
    PostingNode* tail = nullptr;  // writer-only
  };

  void AppendPosting(TokenId token, uint32_t pos) {
    SIMSEL_CHECK(token < num_tokens_);
    TokenList& list = tokens_[token];
    uint32_t n = list.size.load(std::memory_order_relaxed);
    uint32_t offset = n % kNodeCap;
    if (offset == 0) {
      PostingNode* node = new PostingNode();
      node->pos[0] = pos;
      if (list.tail == nullptr) {
        list.head.store(node, std::memory_order_release);
      } else {
        list.tail->next.store(node, std::memory_order_release);
      }
      list.tail = node;
    } else {
      list.tail->pos[offset] = pos;
    }
    list.size.store(n + 1, std::memory_order_release);
  }

  size_t num_tokens_;
  std::unique_ptr<std::atomic<RecordChunk*>[]> chunks_;
  std::unique_ptr<TokenList[]> tokens_;
  std::atomic<uint32_t> count_{0};
};

/// One immutable generation of the selector: swapped atomically by Rebuild,
/// freed through the EpochManager once the last pinned reader exits.
struct State {
  std::shared_ptr<const SimilaritySelector> main;
  std::unique_ptr<const PostingStore> store;  // disk mode only
  size_t main_size = 0;
  /// version() of this generation with an empty delta; the live version is
  /// base_version + delta count.
  uint64_t base_version = 0;
  std::unique_ptr<DeltaIndex> delta;
};

namespace {

/// Tokenizes `text` against `main`'s frozen statistics. The known-token
/// length mass is accumulated in ascending-TokenId order — exactly
/// IdfMeasure's set_len_ summation — so an all-known delta record's
/// frozen_length is bit-identical to the set length the same record would
/// get inside a main segment with these statistics (the PR 8 score-parity
/// fix; the old code summed in token-string order). Unknown-token mass is
/// added after the known mass, in tokenizer order.
DeltaRecord Analyze(const std::string& text, const SimilaritySelector& main) {
  const IdfMeasure& measure = main.measure();
  const Dictionary& dict = main.collection().dictionary();
  DeltaRecord rec;
  size_t unknown = 0;
  std::vector<std::pair<TokenId, uint32_t>> known;
  for (const TokenCount& tc : main.tokenizer().TokenizeCounted(text)) {
    auto id = dict.Find(tc.token);
    if (id.has_value()) {
      known.emplace_back(*id, tc.count);
    } else {
      // Unknown under the frozen statistics: rarest possible weight, no
      // list to match through, but it still normalizes the length.
      ++unknown;
    }
  }
  std::sort(known.begin(), known.end());
  double len_sq = 0.0;
  rec.tokens.reserve(known.size());
  rec.tfs.reserve(known.size());
  for (const auto& [token, tf] : known) {
    rec.tokens.push_back(token);
    rec.tfs.push_back(tf);
    double idf = measure.idf(token);
    len_sq += idf * idf;
  }
  for (size_t i = 0; i < unknown; ++i) {
    len_sq += measure.default_idf() * measure.default_idf();
  }
  rec.frozen_length = static_cast<float>(std::sqrt(len_sq));
  if (main.prefilter() != nullptr) {
    const sketch::Prefilter& pf = *main.prefilter();
    rec.sketch.resize(pf.params().k);
    sketch::ComputeSignature(rec.tokens.data(), rec.tokens.size(), pf.seeds(),
                             rec.sketch.data());
  }
  return rec;
}

struct DynamicMetrics {
  obs::Counter* records_added;
  obs::Counter* rebuilds;
};

const DynamicMetrics& Metrics() {
  static const DynamicMetrics m = [] {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
    return DynamicMetrics{
        reg.GetCounter("simsel_dynamic_records_added_total"),
        reg.GetCounter("simsel_dynamic_rebuilds_total")};
  }();
  return m;
}

}  // namespace
}  // namespace dynamic_internal

using dynamic_internal::DeltaIndex;
using dynamic_internal::DeltaRecord;
using dynamic_internal::State;

DynamicSelector::DynamicSelector(const std::vector<std::string>& initial,
                                 const BuildOptions& options)
    : DynamicSelector(initial, Options{options, /*disk_mode=*/false}) {}

DynamicSelector::DynamicSelector(const std::vector<std::string>& initial,
                                 const Options& options)
    : build_options_(options.build), disk_mode_(options.disk_mode) {
  state_.store(BuildState(initial, /*base_version=*/0),
               std::memory_order_seq_cst);
}

DynamicSelector::~DynamicSelector() {
  WaitForRebuild();
  delete state_.load(std::memory_order_seq_cst);
  // epochs_'s destructor frees any retired state still draining.
}

State* DynamicSelector::BuildState(const std::vector<std::string>& texts,
                                   uint64_t base_version) const {
  auto* state = new State();
  state->main = std::make_shared<SimilaritySelector>(
      SimilaritySelector::Build(texts, build_options_));
  if (disk_mode_) {
    state->store =
        std::make_unique<PostingStore>(PostingStore::Build(state->main->index()));
  }
  state->main_size = texts.size();
  state->base_version = base_version;
  state->delta = std::make_unique<DeltaIndex>(
      state->main->collection().dictionary().size());
  return state;
}

DynamicSelector::Snapshot::Snapshot(EpochManager::Guard guard,
                                    const State* state, uint32_t delta_count)
    : guard_(std::move(guard)), state_(state), delta_count_(delta_count) {}

DynamicSelector::Snapshot DynamicSelector::snapshot() const {
  // Pin first, then load: the epoch protocol (common/epoch.h) guarantees a
  // Rebuild either sees this pin and keeps the old state alive, or this
  // load sees the new state.
  EpochManager::Guard guard(epochs_);
  const State* state = state_.load(std::memory_order_seq_cst);
  uint32_t delta_count = state->delta->count();
  return Snapshot(std::move(guard), state, delta_count);
}

uint64_t DynamicSelector::Snapshot::version() const {
  return state_->base_version + delta_count_;
}

size_t DynamicSelector::Snapshot::size() const {
  return state_->main_size + delta_count_;
}

size_t DynamicSelector::Snapshot::delta_size() const { return delta_count_; }

const SimilaritySelector& DynamicSelector::Snapshot::main() const {
  return *state_->main;
}

PreparedQuery DynamicSelector::Snapshot::Prepare(
    std::string_view query) const {
  return state_->main->Prepare(query);
}

QueryResult DynamicSelector::Snapshot::Select(
    std::string_view query, double tau, AlgorithmKind kind,
    const SelectOptions& options) const {
  return SelectPrepared(state_->main->Prepare(query), tau, kind, options);
}

QueryResult DynamicSelector::Snapshot::SelectPrepared(
    const PreparedQuery& q, double tau, AlgorithmKind kind,
    const SelectOptions& options) const {
  double clamped = internal::ClampTau(tau);
  SelectOptions main_options = options;
  if (state_->store != nullptr) {
    // Disk mode: the storage binding belongs to this main segment. A
    // caller-supplied store would address the wrong index after a swap, and
    // buffer-pool page keys would alias across swapped stores.
    main_options.posting_store = state_->store.get();
    main_options.buffer_pool = nullptr;
  }
  QueryResult result =
      state_->main->SelectPrepared(q, clamped, kind, main_options);
  result.snapshot_version = version();
  if (!result.status.ok()) {
    // Failed main query: matches are already cleared (FailResult); scanning
    // the delta would report matches for a result whose status says it
    // cannot be trusted.
    result.delta_covered = (delta_count_ == 0);
    return result;
  }
  if (delta_count_ == 0) return result;
  if (result.termination != Termination::kCompleted) {
    // Tripped before the delta: the partial is sound, but the delta was not
    // covered at all — record that instead of spending the exhausted
    // budget/deadline on it.
    result.delta_covered = false;
    return result;
  }

  // Delta pass through the per-token index: gather candidate positions from
  // the query tokens' posting lists, then score each candidate exactly with
  // the canonical ascending-token two-pointer walk (bit-identical to
  // IdfMeasure::Score against a main segment). The control is polled per
  // token list and per candidate batch, like every other algorithm; a trip
  // keeps the already-scored candidates (their scores are exact) and marks
  // the delta uncovered.
  internal::ControlPoller poller(options.control, result.counters);
  const DeltaIndex& delta = *state_->delta;
  uint64_t delta_postings = 0;
  uint64_t delta_rows = 0;
  uint64_t delta_matches = 0;
  bool tripped = false;
  std::vector<uint32_t> candidates;
  for (size_t i = 0; i < q.tokens.size(); ++i) {
    if (poller.ShouldStop()) {
      tripped = true;
      break;
    }
    size_t visited = delta.ForEachPosting(
        q.tokens[i], delta_count_,
        [&candidates](uint32_t pos) { candidates.push_back(pos); });
    delta_postings += visited;
    result.counters.elements_read += visited;
    result.counters.elements_total += visited;
  }
  // Sketch screen for the delta records (the prefilter tier's delta-side
  // arm): a record that provably cannot reach τ at the configured error
  // bound is pruned before the exact two-pointer walk. Records appended
  // without a sketch (main index built sketchless) are always verified.
  sketch::DeltaScreen screen;
  if (options.prefilter && state_->main->prefilter() != nullptr) {
    screen = state_->main->prefilter()->MakeDeltaScreen(q, clamped);
  }
  uint64_t delta_probes = 0;
  uint64_t delta_prunes = 0;
  if (!tripped) {
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()),
                     candidates.end());
    for (size_t c = 0; c < candidates.size(); ++c) {
      if (c % 64 == 0 && poller.ShouldStop()) {
        tripped = true;
        break;
      }
      uint32_t pos = candidates[c];
      const DeltaRecord& rec = delta.record(pos);
      if (screen.active() && !rec.sketch.empty()) {
        ++result.counters.hash_probes;
        ++delta_probes;
        if (!screen.Admits(rec.sketch.data(), rec.frozen_length,
                           rec.tokens.size())) {
          ++result.counters.candidate_prunes;
          ++delta_prunes;
          continue;
        }
      }
      ++result.counters.rows_scanned;
      ++delta_rows;
      double sum = 0.0;
      size_t i = 0, j = 0;
      while (i < q.tokens.size() && j < rec.tokens.size()) {
        if (q.tokens[i] < rec.tokens[j]) {
          ++i;
        } else if (rec.tokens[j] < q.tokens[i]) {
          ++j;
        } else {
          sum += q.weights[i];
          ++i;
          ++j;
        }
      }
      double denom = static_cast<double>(rec.frozen_length) * q.length;
      double score = denom > 0.0 ? sum / denom : 0.0;
      if (score >= clamped) {
        result.matches.push_back(
            Match{static_cast<SetId>(state_->main_size + pos), score});
        ++delta_matches;
      }
    }
  }
  if (tripped) {
    result.termination = poller.termination();
    result.delta_covered = false;
  }
  result.counters.results = result.matches.size();
  internal::SortMatches(&result.matches);
  // The main segment's SelectPrepared already flushed its own work to the
  // process-wide metrics; flush only the delta-scan increment.
  AccessCounters delta_only;
  delta_only.elements_read = delta_postings;
  delta_only.rows_scanned = delta_rows;
  delta_only.hash_probes = delta_probes;
  delta_only.candidate_prunes = delta_prunes;
  delta_only.results = delta_matches;
  internal::RecordDeltaScanMetrics(delta_only);
  return result;
}

SetId DynamicSelector::AddRecord(std::string text) {
  std::lock_guard<std::mutex> lock(append_mu_);
  // The swap also runs under append_mu_, so the state is stable here.
  State* state = state_.load(std::memory_order_relaxed);
  DeltaRecord rec = dynamic_internal::Analyze(text, *state->main);
  rec.text = std::move(text);
  uint32_t pos = state->delta->Append(std::move(rec));
  SetId id = static_cast<SetId>(state->main_size + pos);
  // Release *after* the delta publish: an observer that reads the new
  // version and then queries is guaranteed to see the record.
  version_.fetch_add(1, std::memory_order_release);
  dynamic_internal::Metrics().records_added->Increment();
  return id;
}

size_t DynamicSelector::size() const { return snapshot().size(); }

size_t DynamicSelector::delta_size() const { return snapshot().delta_size(); }

std::string DynamicSelector::text(SetId id) const {
  Snapshot snap = snapshot();
  SIMSEL_CHECK(id < snap.size());
  if (id < snap.state_->main_size) {
    return snap.state_->main->collection().text(id);
  }
  return snap.state_->delta->record(
      static_cast<uint32_t>(id - snap.state_->main_size)).text;
}

QueryResult DynamicSelector::Select(std::string_view query, double tau,
                                    AlgorithmKind kind,
                                    const SelectOptions& options) const {
  return snapshot().Select(query, tau, kind, options);
}

void DynamicSelector::Rebuild() {
  {
    std::unique_lock<std::mutex> lock(rebuild_mu_);
    rebuild_cv_.wait(lock, [this] { return !rebuild_running_; });
    rebuild_running_ = true;
  }
  DoRebuild();
  {
    // Notify under the mutex: a waiter (possibly ~DynamicSelector) may
    // destroy the condvar as soon as it observes !rebuild_running_, which
    // it can only do after this lock is released — i.e. after notify_all
    // has returned.
    std::lock_guard<std::mutex> lock(rebuild_mu_);
    rebuild_running_ = false;
    rebuild_cv_.notify_all();
  }
}

bool DynamicSelector::StartRebuild(ThreadPool* pool) {
  SIMSEL_CHECK(pool != nullptr);
  {
    std::lock_guard<std::mutex> lock(rebuild_mu_);
    if (rebuild_running_) return false;
    rebuild_running_ = true;
  }
  pool->Submit([this] {
    DoRebuild();
    // Notify under the mutex — see Rebuild() for the destruction race this
    // prevents.
    std::lock_guard<std::mutex> lock(rebuild_mu_);
    rebuild_running_ = false;
    rebuild_cv_.notify_all();
  });
  return true;
}

void DynamicSelector::WaitForRebuild() const {
  std::unique_lock<std::mutex> lock(rebuild_mu_);
  rebuild_cv_.wait(lock, [this] { return !rebuild_running_; });
}

bool DynamicSelector::rebuild_in_progress() const {
  std::lock_guard<std::mutex> lock(rebuild_mu_);
  return rebuild_running_;
}

void DynamicSelector::DoRebuild() {
  // Phase 1 — snapshot every text at a delta cut d0. Brief: two pass-through
  // copies under the append lock.
  std::vector<std::string> texts;
  uint32_t fold_count = 0;
  {
    std::lock_guard<std::mutex> lock(append_mu_);
    const State* state = state_.load(std::memory_order_relaxed);
    fold_count = state->delta->count();
    texts.reserve(state->main_size + fold_count);
    const Collection& collection = state->main->collection();
    for (SetId i = 0; i < state->main_size; ++i) {
      texts.push_back(collection.text(i));
    }
    for (uint32_t pos = 0; pos < fold_count; ++pos) {
      texts.push_back(state->delta->record(pos).text);
    }
  }

  // Phase 2 — build the replacement main segment with no lock held: appends
  // and queries proceed against the old state for the whole build.
  State* next = BuildState(texts, /*base_version=*/0);

  // Phase 3 — swap. Under the append lock no new record can interleave, so
  // the records appended during the build ([fold_count, live_count)) are
  // carried into the new delta, re-analyzed against the new frozen
  // statistics (their token ids referred to the old dictionary).
  State* old = nullptr;
  {
    std::lock_guard<std::mutex> lock(append_mu_);
    old = state_.load(std::memory_order_relaxed);
    uint32_t live_count = old->delta->count();
    for (uint32_t pos = fold_count; pos < live_count; ++pos) {
      const DeltaRecord& carried = old->delta->record(pos);
      DeltaRecord rec = dynamic_internal::Analyze(carried.text, *next->main);
      rec.text = carried.text;
      next->delta->Append(std::move(rec));
    }
    // Version arithmetic keeps the counter strictly monotone across the
    // swap: the rebuild itself counts as one content change, records
    // folded into the main stop counting as delta, carried records keep
    // counting. old = base + live_count  →  new = old + 1.
    next->base_version = old->base_version + fold_count + 1;
    state_.store(next, std::memory_order_seq_cst);
    version_.store(next->base_version + (live_count - fold_count),
                   std::memory_order_release);
  }

  // Phase 4 — the old generation drains under epoch protection: in-flight
  // queries pinned to it finish on the old segment, and the memory is freed
  // only after the last pin exits.
  epochs_.Retire([old] { delete old; });
  dynamic_internal::Metrics().rebuilds->Increment();
}

}  // namespace simsel
