#include "core/linear_scan.h"

#include "core/internal.h"

namespace simsel {

QueryResult LinearScanSelect(const SimilarityMeasure& measure,
                             const Collection& collection,
                             const PreparedQuery& q, double tau,
                             const SelectOptions& options) {
  tau = internal::ClampTau(tau);
  QueryResult result;
  internal::ControlPoller poller(options.control, result.counters);
  for (SetId s = 0; s < collection.size(); ++s) {
    // Control poll once per batch of rows; a trip leaves the literal
    // id-prefix [0, s) scanned so far, every score exact.
    if ((s & 1023u) == 0 && poller.ShouldStop()) {
      result.termination = poller.termination();
      break;
    }
    ++result.counters.rows_scanned;
    double score = measure.Score(q, s);
    if (score >= tau) result.matches.push_back(Match{s, score});
  }
  result.counters.results = result.matches.size();
  return result;
}

}  // namespace simsel
