#include "core/linear_scan.h"

namespace simsel {

QueryResult LinearScanSelect(const SimilarityMeasure& measure,
                             const Collection& collection,
                             const PreparedQuery& q, double tau) {
  QueryResult result;
  for (SetId s = 0; s < collection.size(); ++s) {
    ++result.counters.rows_scanned;
    double score = measure.Score(q, s);
    if (score >= tau) result.matches.push_back(Match{s, score});
  }
  result.counters.results = result.matches.size();
  return result;
}

}  // namespace simsel
