#include "core/bm25_select.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "core/internal.h"
#include "index/list_cursor.h"

namespace simsel {

namespace {

struct Candidate {
  uint32_t id;
  float dl;  // document length |s|
  double potential;
};

bool CandBefore(const Candidate& c, float dl, uint32_t id) {
  if (c.dl != dl) return c.dl < dl;
  return c.id < id;
}

InvertedIndex BuildBm25Index(const Bm25Measure& measure,
                             InvertedIndexOptions options) {
  const Collection& collection = measure.collection();
  std::vector<float> lengths(collection.size());
  for (SetId s = 0; s < collection.size(); ++s) {
    lengths[s] = static_cast<float>(measure.doc_length(s));
  }
  // The sketch prefilter tier is IDF-selection-only; don't pay for
  // signatures this selector never consults.
  options.build_sketches = false;
  return InvertedIndex::BuildWithLengths(collection, lengths, options);
}

}  // namespace

Bm25Selector::Bm25Selector(const Bm25Measure& measure,
                           InvertedIndexOptions options)
    : measure_(measure), index_(BuildBm25Index(measure, options)) {}

double Bm25Selector::ContributionBound(const PreparedQuery& q, size_t i,
                                       double d) const {
  const Bm25Params& p = measure_.params();
  double mtf = measure_.max_tf(q.tokens[i]);
  double k = p.k1 * ((1.0 - p.b) + p.b * d / measure_.avgdl());
  return q.weights[i] * mtf * (p.k1 + 1.0) / (mtf + k);
}

QueryResult Bm25Selector::Select(const PreparedQuery& q, double tau,
                                 const SelectOptions& options) const {
  QueryResult result;
  const size_t n = q.tokens.size();
  if (n == 0) return result;
  AccessCounters& counters = result.counters;
  const double prune_at = internal::PruneThreshold(tau);

  // Suffix potential at document length d over SF's processing order.
  // Order lists by their bound at the average document length; the order
  // only affects efficiency, the bounds below are per-candidate exact.
  std::vector<size_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  std::vector<double> at_avg(n);
  for (size_t i = 0; i < n; ++i) {
    at_avg[i] = ContributionBound(q, i, measure_.avgdl());
  }
  std::stable_sort(perm.begin(), perm.end(), [&](size_t a, size_t b) {
    return at_avg[a] > at_avg[b];
  });

  auto suffix_potential = [&](size_t k, double d) {
    double sum = 0.0;
    for (size_t j = k; j < n; ++j) sum += ContributionBound(q, perm[j], d);
    return sum;
  };

  // λ_k: largest document length at which suffix_potential(k, ·) >= the
  // slacked threshold. suffix_potential is decreasing in d; bisect upward
  // so the scan never stops short of an admissible candidate.
  auto lambda = [&](size_t k) {
    if (prune_at <= 0.0) return std::numeric_limits<double>::infinity();
    double lo = 0.0, hi = 1.0;
    if (suffix_potential(k, lo) < prune_at) return 0.0;
    while (suffix_potential(k, hi) >= prune_at && hi < 1e15) hi *= 2.0;
    if (hi >= 1e15) return std::numeric_limits<double>::infinity();
    for (int iter = 0; iter < 64; ++iter) {
      double mid = 0.5 * (lo + hi);
      if (suffix_potential(k, mid) >= prune_at) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    return hi;  // upper end: overshoot, never undershoot
  };

  std::vector<Candidate> cands, next;
  for (size_t k = 0; k < n; ++k) {
    const size_t list = perm[k];
    ListCursor cursor(index_, q.tokens[list], options.use_skip_index,
                      &counters, options.buffer_pool,
                      options.posting_store);
    double mu = lambda(k);
    double pending_max = cands.empty()
                             ? -std::numeric_limits<double>::infinity()
                             : cands.back().dl;
    double stop = std::max(pending_max, mu);

    cursor.Next();
    next.clear();
    size_t ci = 0;
    for (;;) {
      bool have_p =
          cursor.positioned() && static_cast<double>(cursor.len()) <= stop;
      bool have_c = ci < cands.size();
      if (!have_p && !have_c) break;
      if (have_c &&
          (!have_p || CandBefore(cands[ci], cursor.len(), cursor.id()))) {
        ++counters.candidate_scan_steps;
        Candidate& c = cands[ci];
        c.potential -= ContributionBound(q, list, c.dl);
        if (c.potential >= prune_at) {
          next.push_back(c);
        } else {
          ++counters.candidate_prunes;
        }
        ++ci;
      } else if (have_p && have_c && cands[ci].id == cursor.id() &&
                 cands[ci].dl == cursor.len()) {
        ++counters.candidate_scan_steps;
        next.push_back(cands[ci]);
        ++ci;
        cursor.Next();
      } else {
        Candidate c;
        c.id = cursor.id();
        c.dl = cursor.len();
        c.potential = suffix_potential(k, c.dl);
        if (c.potential >= prune_at) {
          next.push_back(c);
          ++counters.candidate_inserts;
        } else {
          ++counters.candidate_prunes;
        }
        cursor.Next();
      }
    }
    cands.swap(next);
    cursor.MarkComplete();
  }

  for (const Candidate& c : cands) {
    ++counters.rows_scanned;
    double score = measure_.Score(q, c.id);
    if (score >= tau) result.matches.push_back(Match{c.id, score});
  }
  counters.results = result.matches.size();
  internal::SortMatches(&result.matches);
  return result;
}

}  // namespace simsel
