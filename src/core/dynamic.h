#ifndef SIMSEL_CORE_DYNAMIC_H_
#define SIMSEL_CORE_DYNAMIC_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/epoch.h"
#include "core/selector.h"

namespace simsel {

class ThreadPool;

namespace dynamic_internal {
class DeltaIndex;
struct State;
}  // namespace dynamic_internal

/// Growable set-similarity service: a concurrent main + delta architecture.
///
/// The paper's indexes are built offline over a frozen collection (idf
/// weights and normalized lengths depend on global statistics, so a single
/// insert would invalidate every posting). Real deployments solve this the
/// way column stores and search engines do: an immutable *main* segment
/// carrying the statistics, plus a small *delta* of recent inserts — here
/// with its own per-token inverted index — folded into the main by Rebuild.
///
/// **Frozen-statistics semantics.** Token statistics (df, idf, N) are frozen
/// at the last Rebuild. New records are tokenized against the frozen
/// dictionary (tokens never seen by the main segment cannot match queries —
/// they contribute to the record's length only) and scored with frozen
/// weights, so main and delta scores are mutually comparable and results
/// merge cleanly. The frozen record length is accumulated over known tokens
/// in ascending-TokenId order — the exact summation order IdfMeasure uses —
/// so a delta record scores *bit-identically* to the same record in a main
/// segment with the same statistics. Token multiplicity is deliberately
/// ignored beyond the length: the IDF measure is set-semantic (weights are
/// per distinct token; see sim/idf.h), so a repeated token contributes once
/// before and after Rebuild alike. Rebuild() folds the delta in and
/// refreshes all statistics.
///
/// Ids are stable: record i (in insertion order across segments) is SetId i
/// before and after Rebuild.
///
/// **Concurrency.** Safe for any number of concurrent readers (Select, text,
/// size, snapshot) with concurrent AddRecord writers and an online
/// Rebuild:
///
///  - Appends go into the delta's chunked record log and per-token posting
///    lists, published to readers with a single release store of the record
///    count; writers serialize on one mutex, readers never take it.
///  - Every read runs against a *snapshot*: an epoch-pinned {main segment,
///    delta cut} pair with a stable version(), so a query sees a consistent
///    collection even while appends and a rebuild race it.
///  - Rebuild() snapshots the texts under the writer mutex (brief), builds
///    the replacement main segment with *no* lock held (appends and queries
///    proceed against the old state), swaps it in, and retires the old
///    state through an EpochManager — in-flight queries drain on the old
///    segment and the memory is reclaimed only after the last one exits.
///    StartRebuild runs the same procedure on a ThreadPool worker.
class DynamicSelector {
 public:
  struct Options {
    BuildOptions build;
    /// Serve the main segment's postings from a disk-resident PostingStore
    /// (rebuilt per segment and swapped with it, so stores never address a
    /// stale index). In this mode SelectOptions::posting_store and
    /// buffer_pool are ignored: the binding is per main segment and owned
    /// here — pool page keys would alias across swapped stores.
    bool disk_mode = false;
  };

  explicit DynamicSelector(const std::vector<std::string>& initial_records,
                           const BuildOptions& options = BuildOptions());
  DynamicSelector(const std::vector<std::string>& initial_records,
                  const Options& options);
  /// Waits for an in-flight StartRebuild, then frees every segment. No
  /// reads may be in flight.
  ~DynamicSelector();

  DynamicSelector(const DynamicSelector&) = delete;
  DynamicSelector& operator=(const DynamicSelector&) = delete;

  /// A consistent, immutable view of the collection: one main segment plus
  /// a fixed prefix of the delta, epoch-pinned so a concurrent Rebuild
  /// cannot free it underneath the holder. Queries against a snapshot are
  /// byte-identical to serial queries against the collection frozen at
  /// version(). Hold it only as long as needed — a live snapshot delays
  /// reclamation of a swapped-out segment. Move-only.
  class Snapshot {
   public:
    /// The selector version this view corresponds to (see
    /// DynamicSelector::version).
    uint64_t version() const;
    size_t size() const;
    size_t delta_size() const;
    /// The pinned main segment; valid while this snapshot is alive.
    const SimilaritySelector& main() const;

    PreparedQuery Prepare(std::string_view query) const;
    /// Same contract as DynamicSelector::Select, against this fixed cut.
    QueryResult Select(std::string_view query, double tau,
                       AlgorithmKind kind = AlgorithmKind::kSf,
                       const SelectOptions& options = SelectOptions()) const;
    QueryResult SelectPrepared(const PreparedQuery& q, double tau,
                               AlgorithmKind kind,
                               const SelectOptions& options) const;

    Snapshot(Snapshot&&) noexcept = default;
    Snapshot(const Snapshot&) = delete;
    Snapshot& operator=(const Snapshot&) = delete;
    Snapshot& operator=(Snapshot&&) = delete;

   private:
    friend class DynamicSelector;
    Snapshot(EpochManager::Guard guard, const dynamic_internal::State* state,
             uint32_t delta_count);

    EpochManager::Guard guard_;
    const dynamic_internal::State* state_;
    uint32_t delta_count_;
  };

  /// Pins and returns the current state. Thread-safe, lock-free.
  Snapshot snapshot() const;

  /// Appends a record to the delta segment; returns its id. O(|tokens|)
  /// plus the frozen-dictionary lookups. Thread-safe against concurrent
  /// AddRecord, Select and Rebuild; concurrent writers serialize on an
  /// internal mutex. Takes the text by value so callers may pass the result
  /// of text(i).
  SetId AddRecord(std::string text);

  /// Total records across both segments (at the current snapshot).
  size_t size() const;
  /// Records awaiting a Rebuild (at the current snapshot).
  size_t delta_size() const;

  /// Record text by id (either segment), copied out of the pinned snapshot
  /// — a reference could dangle once a Rebuild retires the segment.
  std::string text(SetId id) const;

  /// Selection over both segments with frozen statistics. The main segment
  /// uses `kind`; the delta is resolved through its per-token inverted
  /// index (candidates charged to rows_scanned, postings to
  /// elements_read). `options.control` bounds the delta pass exactly like
  /// the main algorithms: the poller is checked per token list and per
  /// candidate batch, and a trip returns a sound partial result with
  /// QueryResult::termination set and delta_covered = false. A failed or
  /// tripped main-segment query short-circuits the delta entirely (a
  /// failed result's matches are already cleared; appending delta matches
  /// would disguise a partial as fuller than its termination admits).
  QueryResult Select(std::string_view query, double tau,
                     AlgorithmKind kind = AlgorithmKind::kSf,
                     const SelectOptions& options = SelectOptions()) const;

  /// Folds the delta into a freshly built main segment and recomputes
  /// df/idf/lengths. Online: readers and writers proceed concurrently
  /// against the old state for the whole build; only the final pointer swap
  /// (plus re-analysis of records appended mid-build) excludes writers.
  /// Afterwards results are identical to a fresh Build over all records
  /// appended before the rebuild's snapshot point (later appends stay in
  /// the new delta). Blocks if another rebuild is already running, then
  /// runs its own.
  void Rebuild();

  /// Rebuild() on a pool worker: returns immediately. False (and no work
  /// scheduled) if a rebuild is already in flight. The pool must outlive
  /// the selector's destruction or WaitForRebuild.
  bool StartRebuild(ThreadPool* pool);

  /// Blocks until no rebuild is in flight.
  void WaitForRebuild() const;
  bool rebuild_in_progress() const;

  /// Monotone content version: bumped by every AddRecord and Rebuild. A
  /// cached query answer stamped with the version at execution time
  /// (QueryResult::snapshot_version) is valid exactly while the version is
  /// unchanged — this is the epoch the serving layer's result cache keys on
  /// (serve/result_cache.h, ShardedSelector::SetEpoch), so one integer
  /// compare invalidates every stale entry without scanning the cache.
  ///
  /// Ordering: the counter is released *after* the content change it
  /// stamps is visible (delta publish / segment swap), so an observer that
  /// reads version v and then queries sees a collection at least as new as
  /// v — a cache keyed on it can go stale-then-miss but never serve a
  /// wrong hit. Reads are acquire loads; there is no torn read (the PR 8
  /// fix — this was a plain uint64_t racing the writers).
  uint64_t version() const {
    return version_.load(std::memory_order_acquire);
  }

  bool disk_mode() const { return disk_mode_; }

 private:
  dynamic_internal::State* BuildState(const std::vector<std::string>& texts,
                                      uint64_t base_version) const;
  void DoRebuild();

  BuildOptions build_options_;
  bool disk_mode_ = false;

  /// Current state; swapped by Rebuild, dereferenced by readers only under
  /// an epoch guard (seq_cst on both sides — see common/epoch.h for why).
  std::atomic<dynamic_internal::State*> state_{nullptr};
  std::atomic<uint64_t> version_{0};
  mutable EpochManager epochs_;

  /// Serializes AddRecord appends with each other and with the Rebuild
  /// swap. Never held during a main-segment build.
  std::mutex append_mu_;

  /// One rebuild at a time (sync or pool-backed).
  mutable std::mutex rebuild_mu_;
  mutable std::condition_variable rebuild_cv_;
  bool rebuild_running_ = false;  // guarded by rebuild_mu_
};

}  // namespace simsel

#endif  // SIMSEL_CORE_DYNAMIC_H_
