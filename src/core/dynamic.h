#ifndef SIMSEL_CORE_DYNAMIC_H_
#define SIMSEL_CORE_DYNAMIC_H_

#include <memory>
#include <string>
#include <vector>

#include "core/selector.h"

namespace simsel {

/// Growable set-similarity service: a main + delta architecture.
///
/// The paper's indexes are built offline over a frozen collection (idf
/// weights and normalized lengths depend on global statistics, so a single
/// insert would invalidate every posting). Real deployments solve this the
/// way column stores and search engines do: an immutable *main* segment
/// carrying the statistics, plus a small *delta* of recent inserts that is
/// scanned exhaustively, merged into the main on demand.
///
/// Semantics: token statistics (df, idf, N) are **frozen at the last
/// Rebuild**. New records are tokenized against the frozen dictionary
/// (tokens never seen by the main segment cannot match queries — they
/// contribute to the record's length only) and scored with frozen weights,
/// so main and delta scores are mutually comparable and results merge
/// cleanly. Rebuild() folds the delta in and refreshes all statistics.
///
/// Ids are stable: record i (in insertion order across segments) is SetId i
/// before and after Rebuild.
class DynamicSelector {
 public:
  explicit DynamicSelector(
      const std::vector<std::string>& initial_records,
      const BuildOptions& options = BuildOptions());

  /// Appends a record to the delta segment; returns its id. O(|tokens|).
  /// Takes the text by value: callers may pass references into the
  /// selector's own storage (e.g. text(i)), which appending could otherwise
  /// invalidate mid-call.
  SetId AddRecord(std::string text);

  /// Total records across both segments.
  size_t size() const { return main_size_ + delta_texts_.size(); }
  /// Records awaiting a Rebuild.
  size_t delta_size() const { return delta_texts_.size(); }

  /// Record text by id (either segment).
  const std::string& text(SetId id) const;

  /// Selection over both segments with frozen statistics. The main segment
  /// uses `kind`; the delta is scanned exhaustively (it is small by
  /// design — its size is charged to rows_scanned).
  QueryResult Select(std::string_view query, double tau,
                     AlgorithmKind kind = AlgorithmKind::kSf,
                     const SelectOptions& options = SelectOptions()) const;

  /// Folds the delta into the main segment and recomputes df/idf/lengths.
  /// Afterwards results are identical to a fresh Build over all records.
  void Rebuild();

  /// Monotone content version: bumped by every AddRecord and Rebuild. A
  /// cached query answer stamped with the version at execution time is valid
  /// exactly while the version is unchanged — this is the epoch the serving
  /// layer's result cache keys on (serve/result_cache.h), so one integer
  /// compare invalidates every stale entry without scanning the cache.
  uint64_t version() const { return version_; }

  const SimilaritySelector& main() const { return *main_; }

 private:
  struct DeltaRecord {
    std::vector<TokenId> tokens;  // known tokens, sorted ascending
    float frozen_length = 0.0f;   // with unknown-token mass included
  };

  DeltaRecord Analyze(const std::string& text) const;

  BuildOptions options_;
  uint64_t version_ = 0;
  std::unique_ptr<SimilaritySelector> main_;
  size_t main_size_ = 0;
  std::vector<std::string> all_texts_;       // every record, id order
  std::vector<std::string> delta_texts_;     // tail of all_texts_
  std::vector<DeltaRecord> delta_records_;
};

}  // namespace simsel

#endif  // SIMSEL_CORE_DYNAMIC_H_
