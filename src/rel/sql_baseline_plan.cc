#include "rel/sql_baseline_plan.h"

#include <limits>

#include "core/internal.h"

namespace simsel {

QueryResult ExecuteSqlPlan(const GramTable& table, const IdfMeasure& measure,
                           const PreparedQuery& q, double tau,
                           const SelectOptions& options) {
  using internal::ComputeLengthWindow;
  using internal::LengthWindow;
  tau = internal::ClampTau(tau);
  QueryResult result;
  const size_t n = q.tokens.size();
  if (n == 0) return result;
  AccessCounters& counters = result.counters;
  internal::ControlPoller poller(options.control, counters);
  const LengthWindow window =
      ComputeLengthWindow(q, tau, options.length_bounding);

  HashAggregate aggregate(n);
  bool tripped = false;
  for (size_t i = 0; i < n && !tripped; ++i) {
    const TokenId gram = q.tokens[i];
    GramKey start{gram, window.lo, 0};
    // Control poll between grams and once per batch of scanned rows.
    if (poller.ShouldStop()) {
      tripped = true;
      break;
    }
    for (auto scan = table.index().SeekGE(start, &counters); scan.Valid();
         scan.Next()) {
      const GramKey& key = scan.key();
      if (key.gram != gram || key.len > window.hi) break;
      ++counters.rows_scanned;
      if ((counters.rows_scanned & 511u) == 0 && poller.ShouldStop()) {
        tripped = true;
        break;
      }
      aggregate.Add(key.id, i, key.len);
    }
  }
  if (tripped) {
    // Groups accumulated so far have incomplete bitmaps (later grams were
    // never scanned); exact-verify each instead of running Finalize.
    result.termination = poller.termination();
    internal::VerifyPartialCandidates(measure, q, tau, aggregate.Ids(),
                                      &result);
    internal::SortMatches(&result.matches);
  } else {
    result.matches = aggregate.Finalize(measure, q, tau);
  }
  counters.results = result.matches.size();
  return result;
}

}  // namespace simsel
