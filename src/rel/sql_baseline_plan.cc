#include "rel/sql_baseline_plan.h"

#include <limits>

#include "core/internal.h"

namespace simsel {

QueryResult ExecuteSqlPlan(const GramTable& table, const IdfMeasure& measure,
                           const PreparedQuery& q, double tau,
                           const SelectOptions& options) {
  using internal::ComputeLengthWindow;
  using internal::LengthWindow;
  QueryResult result;
  const size_t n = q.tokens.size();
  if (n == 0) return result;
  AccessCounters& counters = result.counters;
  const LengthWindow window =
      ComputeLengthWindow(q, tau, options.length_bounding);

  HashAggregate aggregate(n);
  for (size_t i = 0; i < n; ++i) {
    const TokenId gram = q.tokens[i];
    GramKey start{gram, window.lo, 0};
    for (auto scan = table.index().SeekGE(start, &counters); scan.Valid();
         scan.Next()) {
      const GramKey& key = scan.key();
      if (key.gram != gram || key.len > window.hi) break;
      ++counters.rows_scanned;
      aggregate.Add(key.id, i, key.len);
    }
  }
  result.matches = aggregate.Finalize(measure, q, tau);
  counters.results = result.matches.size();
  return result;
}

}  // namespace simsel
