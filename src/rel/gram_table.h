#ifndef SIMSEL_REL_GRAM_TABLE_H_
#define SIMSEL_REL_GRAM_TABLE_H_

#include <cstdint>

#include "btree/bplus_tree.h"
#include "index/collection.h"
#include "sim/idf.h"

namespace simsel {

/// Composite key of the clustered index on the q-gram table:
/// (3-gram, word length, word id) — the order the paper builds its
/// composite B-tree in ("3-gram/length/id/weight ... as a clustered index").
struct GramKey {
  TokenId gram = 0;
  float len = 0.0f;
  SetId id = 0;
};

/// Lexicographic ordering over (gram, len, id).
struct GramKeyLess {
  bool operator()(const GramKey& a, const GramKey& b) const {
    if (a.gram != b.gram) return a.gram < b.gram;
    if (a.len != b.len) return a.len < b.len;
    return a.id < b.id;
  }
};

/// The relational representation (Section III-A): one row per (set, token)
/// pair holding the set length and the query-independent part of the
/// partial weight, w'(t, s) = idf(t)² / len(s) — at query time the plan
/// divides by len(q) to obtain w_i(s). Rows live in a clustered B+-tree on
/// (gram, len, id), which supports the Length Boundedness pushdown as a key
/// range per query gram.
class GramTable {
 public:
  using Tree = BPlusTree<GramKey, float, GramKeyLess>;

  /// Builds the table and its clustered index by bulk load.
  static GramTable Build(const Collection& collection,
                         const IdfMeasure& measure,
                         Tree::Options tree_options = Tree::Options());

  const Tree& index() const { return tree_; }
  size_t num_rows() const { return tree_.size(); }

  /// Heap bytes of the bare q-gram table: 16 bytes per row (Figure 5's
  /// "Q-gram table" bar).
  size_t RowBytes() const { return num_rows() * 16; }

  /// Bytes of the clustered B-tree (Figure 5's "B-tree" bar).
  size_t BTreeBytes() const { return tree_.SizeBytes(); }

 private:
  Tree tree_;
};

}  // namespace simsel

#endif  // SIMSEL_REL_GRAM_TABLE_H_
