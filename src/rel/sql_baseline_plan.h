#ifndef SIMSEL_REL_SQL_BASELINE_PLAN_H_
#define SIMSEL_REL_SQL_BASELINE_PLAN_H_

#include "core/types.h"
#include "rel/gram_table.h"
#include "rel/hash_aggregate.h"

namespace simsel {

/// Physical plan of the relational baseline (Section III-A, evaluated as
/// "SQL" in Section VIII), equivalent to the aggregate/group-by/join query:
///
///   SELECT g.id FROM GramTable g JOIN QueryGrams q ON g.gram = q.gram
///   WHERE g.len BETWEEN τ·len(q) AND len(q)/τ        -- LB pushdown
///   GROUP BY g.id
///   HAVING score(...) >= τ
///
/// executed as one clustered-index range scan per query gram feeding a hash
/// aggregate. With `options.length_bounding` disabled, each scan covers the
/// gram's full key range (Figure 8's "SQL NLB"). Rows scanned and B-tree
/// page reads are charged to the result's counters.
QueryResult ExecuteSqlPlan(const GramTable& table, const IdfMeasure& measure,
                           const PreparedQuery& q, double tau,
                           const SelectOptions& options);

}  // namespace simsel

#endif  // SIMSEL_REL_SQL_BASELINE_PLAN_H_
