#include "rel/hash_aggregate.h"

#include "core/internal.h"

namespace simsel {

void HashAggregate::Add(uint32_t id, size_t list_idx, float len) {
  auto it = groups_.find(id);
  if (it == groups_.end()) {
    Group g;
    g.bits = DynamicBitset(num_lists_);
    g.len = len;
    it = groups_.emplace(id, std::move(g)).first;
  }
  it->second.bits.Set(list_idx);
}

std::vector<Match> HashAggregate::Finalize(const IdfMeasure& measure,
                                           const PreparedQuery& q,
                                           double tau) const {
  std::vector<Match> matches;
  for (const auto& [id, group] : groups_) {
    double score = measure.ScoreFromBits(q, group.bits, group.len);
    if (score >= tau) matches.push_back(Match{id, score});
  }
  internal::SortMatches(&matches);
  return matches;
}

}  // namespace simsel
