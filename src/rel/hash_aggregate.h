#ifndef SIMSEL_REL_HASH_AGGREGATE_H_
#define SIMSEL_REL_HASH_AGGREGATE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/bitset.h"
#include "core/types.h"
#include "sim/idf.h"

namespace simsel {

/// Hash GROUP BY operator of the SQL plan: groups the (id, query-gram) pairs
/// streaming out of the index range scans by set id, remembering which query
/// lists matched and the set's length. Finalize computes the canonical IDF
/// score per group and applies the HAVING score >= tau filter, so the SQL
/// baseline returns bit-identical scores to every other algorithm.
class HashAggregate {
 public:
  explicit HashAggregate(size_t num_lists) : num_lists_(num_lists) {}

  /// Accumulates one scanned row: set `id` (with normalized length `len`)
  /// matched query list `list_idx`.
  void Add(uint32_t id, size_t list_idx, float len);

  /// Number of groups accumulated so far.
  size_t num_groups() const { return groups_.size(); }

  /// Ids of every group accumulated so far (arbitrary order). Used by the
  /// query-control trip path to exact-verify in-flight groups whose bitmaps
  /// are still incomplete.
  std::vector<uint32_t> Ids() const {
    std::vector<uint32_t> ids;
    ids.reserve(groups_.size());
    for (const auto& [id, group] : groups_) ids.push_back(id);
    return ids;
  }

  /// Scores every group and returns the sets passing the threshold, sorted
  /// by ascending id.
  std::vector<Match> Finalize(const IdfMeasure& measure,
                              const PreparedQuery& q, double tau) const;

 private:
  struct Group {
    DynamicBitset bits;
    float len = 0.0f;
  };

  size_t num_lists_;
  std::unordered_map<uint32_t, Group> groups_;
};

}  // namespace simsel

#endif  // SIMSEL_REL_HASH_AGGREGATE_H_
