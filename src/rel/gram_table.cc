#include "rel/gram_table.h"

#include <algorithm>

namespace simsel {

GramTable GramTable::Build(const Collection& collection,
                           const IdfMeasure& measure,
                           Tree::Options tree_options) {
  std::vector<std::pair<GramKey, float>> rows;
  size_t total = 0;
  for (SetId s = 0; s < collection.size(); ++s) {
    total += collection.set(s).tokens.size();
  }
  rows.reserve(total);
  for (SetId s = 0; s < collection.size(); ++s) {
    float len = measure.set_length(s);
    for (TokenId t : collection.set(s).tokens) {
      double idf = measure.idf(t);
      float w = len > 0.0f ? static_cast<float>(idf * idf / len) : 0.0f;
      rows.push_back({GramKey{t, len, s}, w});
    }
  }
  GramKeyLess less;
  std::sort(rows.begin(), rows.end(),
            [&less](const auto& a, const auto& b) {
              return less(a.first, b.first);
            });
  GramTable table;
  table.tree_ = Tree(tree_options);
  table.tree_.Build(rows);
  return table;
}

}  // namespace simsel
