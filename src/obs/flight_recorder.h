#ifndef SIMSEL_OBS_FLIGHT_RECORDER_H_
#define SIMSEL_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "obs/trace.h"

namespace simsel::obs {

/// \file
/// Always-on flight recorder with tail sampling.
///
/// Tracing via SelectOptions::trace is opt-in and per-query; production
/// incidents need the opposite: *every* query is recorded cheaply, and only
/// the interesting ones — slow, tripped by a QueryControl, or failed — are
/// kept in full. The recorder implements that in two tiers:
///
///  1. **Per-thread ring buffer.** Each executing thread owns a fixed-size
///     ring of recently completed spans (a seqlock per slot, relaxed
///     atomics only — no locks, no cross-thread cache-line sharing on the
///     write path). Healthy queries cost a handful of relaxed stores per
///     span and are overwritten by later traffic; DumpEvents() snapshots
///     the rings best-effort for "what was the process doing just now".
///
///  2. **Slow-query log.** When a completed query exceeds the latency
///     threshold, trips its QueryControl, or fails, its complete span tree
///     plus counter deltas and termination reason are serialized to one
///     structured-JSON record and appended to a bounded in-memory log
///     (optionally forwarded to a sink — the CLI wires a file). This is
///     tail sampling: the decision to keep is made *after* the query ran,
///     so no sampling rate has to be guessed up front.
///
/// The serving layer feeds the recorder: when a query arrives without a
/// caller trace, ShardedSelector attaches the recorder's reusable
/// thread-local trace so span data exists to sample (see ThreadTrace);
/// explicitly traced queries are sampled from the caller's trace. The core
/// SimilaritySelector deliberately does NOT auto-attach — its queries run
/// in tens of microseconds with hundreds of spans, so sampling them all
/// would blow the bench budget; untraced core queries still report
/// completions (latency, counters, termination) without spans. With
/// SIMSEL_DISABLE_TRACING the recorder compiles to stubs (ThreadTrace
/// returns null, nothing records).

/// One completed span captured in a thread's ring.
struct FlightEvent {
  const char* name;
  uint32_t tid;    // recorder-assigned dense thread index
  uint32_t depth;
  uint32_t tag;    // TraceSpan::kNoTag or the shard/batch instance
  uint64_t start_ns;  // offset from the recorder's process epoch
  uint64_t dur_ns;
  uint64_t items;
};

/// Everything OnQueryComplete needs to decide keep-vs-drop and to build the
/// slow-query record. Pointers are borrowed for the duration of the call.
struct QueryCompletion {
  const char* algo = "";          // AlgorithmKindName(kind)
  uint64_t latency_usec = 0;
  const char* termination = "";   // TerminationName(result.termination)
  bool tripped = false;           // termination != kCompleted
  bool failed = false;            // !status.ok()
  std::string status_message;     // empty when OK
  const AccessCounters* counters = nullptr;
  const QueryTrace* trace = nullptr;  // may be null (tracing compiled out)
};

class FlightRecorder {
 public:
  /// Events retained per thread. Power of two; one slot is 64 bytes.
  static constexpr size_t kRingCapacity = 512;
  /// Most recent slow-query records kept in memory.
  static constexpr size_t kMaxSlowRecords = 64;

  /// Process-wide instance (never destroyed, like MetricsRegistry).
  static FlightRecorder& Global();

  /// Recording master switch; ON by default ("always-on"). Disabling stops
  /// both tiers and makes ThreadTrace return null.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Latency threshold for the slow-query log, in microseconds. 0 (the
  /// default) keeps only tripped and failed queries.
  uint64_t slow_query_usec() const {
    return slow_query_usec_.load(std::memory_order_relaxed);
  }
  void set_slow_query_usec(uint64_t usec) {
    slow_query_usec_.store(usec, std::memory_order_relaxed);
  }

  /// The calling thread's reusable sampling trace, Clear()ed and ready to
  /// record, or null when the recorder is disabled (or tracing is compiled
  /// out). The object stays owned by the recorder and is only valid on the
  /// calling thread until its next ThreadTrace() call — callers must not
  /// publish it (QueryResult::trace keeps reporting the caller's own trace).
  QueryTrace* ThreadTrace();

  /// Tail-sampling decision point; the selector facades call it once per
  /// executed query (cache hits are not executions). Slow, tripped or
  /// failed queries are serialized into the slow-query log; healthy ones
  /// push their spans into the calling thread's ring.
  void OnQueryComplete(const QueryCompletion& info);

  /// Best-effort snapshot of every thread's ring, oldest first. Torn slots
  /// (overwritten mid-read) are skipped; the result is for diagnostics, not
  /// accounting.
  std::vector<FlightEvent> DumpEvents() const;

  /// The retained slow-query JSON records, oldest first.
  std::vector<std::string> SlowQueryLog() const;
  uint64_t slow_queries_recorded() const {
    return slow_records_total_.load(std::memory_order_relaxed);
  }

  /// Forwards every new slow-query record (called under the log mutex —
  /// keep it quick). Pass nullptr to detach.
  void SetSlowQuerySink(std::function<void(const std::string&)> sink);

  /// Drops rings, slow records and the sink; re-enables recording. Tests
  /// share the process-wide instance, so each fixture starts clean.
  void ResetForTest();

  /// Serializes one completed query as the slow-query log does — exposed so
  /// tests and tools can build records without going through sampling.
  static std::string BuildRecordJson(const QueryCompletion& info);

 private:
  struct Slot {
    // Seqlock: odd while the owning thread writes, +2 when stable. Readers
    // retry-or-skip; every field is a relaxed atomic so concurrent dump and
    // overwrite stay data-race-free (torn *events* are discarded via seq).
    std::atomic<uint64_t> seq{0};
    std::atomic<const char*> name{nullptr};
    std::atomic<uint64_t> meta{0};  // depth << 32 | tag
    std::atomic<uint64_t> start_ns{0};
    std::atomic<uint64_t> dur_ns{0};
    std::atomic<uint64_t> items{0};
  };

  struct ThreadState {
    explicit ThreadState(uint32_t tid) : tid(tid) {}
    const uint32_t tid;
    std::atomic<uint64_t> head{0};  // total events ever pushed
    std::vector<Slot> slots{kRingCapacity};
    QueryTrace sample_trace;
  };

  FlightRecorder() = default;

  ThreadState& LocalState();
  void PushSpans(const QueryTrace& trace);

  std::atomic<bool> enabled_{true};
  std::atomic<uint64_t> slow_query_usec_{0};
  std::atomic<uint64_t> slow_records_total_{0};

  mutable std::mutex threads_mu_;
  std::vector<std::unique_ptr<ThreadState>> threads_;

  mutable std::mutex log_mu_;
  std::deque<std::string> slow_log_;
  std::function<void(const std::string&)> sink_;

  QueryTrace::Clock::time_point process_epoch_{QueryTrace::Clock::now()};
};

}  // namespace simsel::obs

#endif  // SIMSEL_OBS_FLIGHT_RECORDER_H_
