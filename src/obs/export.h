#ifndef SIMSEL_OBS_EXPORT_H_
#define SIMSEL_OBS_EXPORT_H_

#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics_registry.h"

namespace simsel::obs {

/// \file
/// Machine-readable views of a MetricsSnapshot: the Prometheus text
/// exposition format (for `simsel_cli --stats` and future scrape
/// endpoints) and a compact JSON document (for the BENCH_*.json perf
/// artifacts). Both render deterministically — same snapshot, same bytes —
/// so diffs between runs are meaningful.

/// Prometheus text exposition (version 0.0.4). Histograms emit cumulative
/// `_bucket{le="..."}` series at every boundary where the distribution
/// changes, plus `le="+Inf"`, `_sum` and `_count`.
std::string ToPrometheusText(const MetricsSnapshot& snapshot);

/// JSON object with "counters", "gauges" and "histograms" maps keyed by
/// `name{labels}`. Histograms carry count/sum/mean/max and p50/p90/p99.
std::string ToJson(const MetricsSnapshot& snapshot);

/// Minimal streaming JSON writer used by the exporters and the bench
/// harness. Handles nesting commas and string escaping; the caller is
/// responsible for balanced Begin/End calls.
class JsonWriter {
 public:
  void BeginObject() { Open('{'); }
  void EndObject() { Close('}'); }
  void BeginArray() { Open('['); }
  void EndArray() { Close(']'); }

  /// Starts `"key":` inside an object; follow with a value or Begin call.
  void Key(std::string_view key);

  void String(std::string_view value);
  void Uint(uint64_t value);
  void Int(int64_t value);
  void Double(double value);
  void Bool(bool value);
  /// Appends pre-serialized JSON verbatim as one value (e.g. embedding a
  /// ToJson() document inside a larger report).
  void Raw(std::string_view json);

  const std::string& str() const { return out_; }

  static std::string Escape(std::string_view raw);

 private:
  void Open(char c);
  void Close(char c);
  void Comma();

  std::string out_;
  std::vector<bool> need_comma_;
  bool after_key_ = false;
};

/// Writes `content` to `path` atomically enough for bench artifacts
/// (truncate + write). Returns false and logs on failure.
bool WriteTextFile(const std::string& path, std::string_view content);

}  // namespace simsel::obs

#endif  // SIMSEL_OBS_EXPORT_H_
