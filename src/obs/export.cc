#include "obs/export.h"

#include <cmath>
#include <cstdio>

#include "obs/log.h"

namespace simsel::obs {

namespace {

// `name` or `name{labels}`.
std::string Series(const MetricsSnapshot::Key& key) {
  if (key.labels.empty()) return key.name;
  return key.name + "{" + key.labels + "}";
}

// `name{labels,extra}` — merges histogram-internal labels such as le=.
std::string SeriesWith(const MetricsSnapshot::Key& key,
                       const std::string& extra) {
  std::string labels = key.labels;
  if (!labels.empty()) labels += ",";
  labels += extra;
  return key.name + "{" + labels + "}";
}

void TypeLine(std::string* out, const std::string& name, const char* type,
              std::string* last_family) {
  if (name == *last_family) return;
  *last_family = name;
  out->append("# TYPE ");
  out->append(name);
  out->push_back(' ');
  out->append(type);
  out->push_back('\n');
}

void Sample(std::string* out, const std::string& series, uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), " %llu\n",
                static_cast<unsigned long long>(value));
  out->append(series);
  out->append(buf);
}

}  // namespace

std::string ToPrometheusText(const MetricsSnapshot& snapshot) {
  std::string out;
  std::string family;
  for (const auto& [key, value] : snapshot.counters) {
    TypeLine(&out, key.name, "counter", &family);
    Sample(&out, Series(key), value);
  }
  for (const auto& [key, value] : snapshot.gauges) {
    TypeLine(&out, key.name, "gauge", &family);
    char buf[32];
    std::snprintf(buf, sizeof(buf), " %lld\n",
                  static_cast<long long>(value));
    out.append(Series(key));
    out.append(buf);
  }
  for (const auto& [key, hist] : snapshot.histograms) {
    TypeLine(&out, key.name, "histogram", &family);
    MetricsSnapshot::Key bucket_key = key;
    bucket_key.name = key.name + "_bucket";
    uint64_t cum = 0;
    for (size_t i = 0; i < hist.buckets.size(); ++i) {
      if (hist.buckets[i] == 0) continue;
      cum += hist.buckets[i];
      char le[40];
      std::snprintf(le, sizeof(le), "le=\"%llu\"",
                    static_cast<unsigned long long>(
                        Histogram::BucketUpperBound(static_cast<int>(i))));
      Sample(&out, SeriesWith(bucket_key, le), cum);
    }
    Sample(&out, SeriesWith(bucket_key, "le=\"+Inf\""), hist.count);
    Sample(&out, Series({key.name + "_sum", key.labels}), hist.sum);
    Sample(&out, Series({key.name + "_count", key.labels}), hist.count);
  }
  return out;
}

std::string ToJson(const MetricsSnapshot& snapshot) {
  JsonWriter w;
  w.BeginObject();
  w.Key("counters");
  w.BeginObject();
  for (const auto& [key, value] : snapshot.counters) {
    w.Key(Series(key));
    w.Uint(value);
  }
  w.EndObject();
  w.Key("gauges");
  w.BeginObject();
  for (const auto& [key, value] : snapshot.gauges) {
    w.Key(Series(key));
    w.Int(value);
  }
  w.EndObject();
  w.Key("histograms");
  w.BeginObject();
  for (const auto& [key, hist] : snapshot.histograms) {
    w.Key(Series(key));
    w.BeginObject();
    w.Key("count");
    w.Uint(hist.count);
    w.Key("sum");
    w.Uint(hist.sum);
    w.Key("mean");
    w.Double(hist.Mean());
    w.Key("max");
    w.Uint(hist.max);
    w.Key("p50");
    w.Uint(hist.Quantile(0.50));
    w.Key("p90");
    w.Uint(hist.Quantile(0.90));
    w.Key("p99");
    w.Uint(hist.Quantile(0.99));
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
  return w.str();
}

std::string JsonWriter::Escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

void JsonWriter::Comma() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!need_comma_.empty()) {
    if (need_comma_.back()) out_.push_back(',');
    need_comma_.back() = true;
  }
}

void JsonWriter::Open(char c) {
  Comma();
  out_.push_back(c);
  need_comma_.push_back(false);
}

void JsonWriter::Close(char c) {
  need_comma_.pop_back();
  out_.push_back(c);
}

void JsonWriter::Key(std::string_view key) {
  Comma();
  out_.push_back('"');
  out_.append(Escape(key));
  out_.append("\":");
  after_key_ = true;
}

void JsonWriter::String(std::string_view value) {
  Comma();
  out_.push_back('"');
  out_.append(Escape(value));
  out_.push_back('"');
}

void JsonWriter::Uint(uint64_t value) {
  Comma();
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(value));
  out_.append(buf);
}

void JsonWriter::Int(int64_t value) {
  Comma();
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
  out_.append(buf);
}

void JsonWriter::Double(double value) {
  Comma();
  if (!std::isfinite(value)) {
    out_.append("null");
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  out_.append(buf);
}

void JsonWriter::Bool(bool value) {
  Comma();
  out_.append(value ? "true" : "false");
}

void JsonWriter::Raw(std::string_view json) {
  Comma();
  out_.append(json);
}

bool WriteTextFile(const std::string& path, std::string_view content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    SIMSEL_LOG(kError) << "cannot open " << path << " for writing";
    return false;
  }
  size_t written = std::fwrite(content.data(), 1, content.size(), f);
  bool closed = std::fclose(f) == 0;
  bool ok = written == content.size() && closed;
  if (!ok) SIMSEL_LOG(kError) << "short write to " << path;
  return ok;
}

}  // namespace simsel::obs
