#include "obs/export.h"

#include <cmath>
#include <cstdio>
#include <map>

#include "obs/log.h"

namespace simsel::obs {

namespace {

// `name` or `name{labels}`.
std::string Series(const MetricsSnapshot::Key& key) {
  if (key.labels.empty()) return key.name;
  return key.name + "{" + key.labels + "}";
}

// `name{labels,extra}` — merges histogram-internal labels such as le=.
std::string SeriesWith(const MetricsSnapshot::Key& key,
                       const std::string& extra) {
  std::string labels = key.labels;
  if (!labels.empty()) labels += ",";
  labels += extra;
  return key.name + "{" + labels + "}";
}

// Exposition-format HELP text per family. Free text after the name; kept
// one-line and escape-free by construction. Unknown families (tests,
// embedders) get a generic line — the format requires presence, not prose.
const char* MetricHelp(const std::string& name) {
  static const std::map<std::string, const char*> kHelp = {
      {"simsel_queries_total", "Executed queries per algorithm"},
      {"simsel_query_latency_usec", "Query wall-clock latency per algorithm"},
      {"simsel_query_terminations_total",
       "Queries tripped by a QueryControl, by reason"},
      {"simsel_query_failures_total", "Queries that surfaced a non-OK Status"},
      {"simsel_lists_opened_total", "Inverted-list cursors opened"},
      {"simsel_postings_read_total", "Postings read by cursors"},
      {"simsel_postings_skipped_total", "Postings bypassed via skip index"},
      {"simsel_page_reads_seq_total", "Sequential page reads (simulated I/O)"},
      {"simsel_page_reads_rand_total", "Random page reads (simulated I/O)"},
      {"simsel_hash_probes_total", "Extendible-hash membership probes"},
      {"simsel_candidates_inserted_total", "Candidate-set insertions"},
      {"simsel_candidates_pruned_total", "Candidate-set prunes"},
      {"simsel_candidate_scan_steps_total", "Candidate-set scan steps"},
      {"simsel_rows_scanned_total", "Base-table rows scanned"},
      {"simsel_results_total", "Matches returned by executed queries"},
      {"simsel_cursor_read_faults_total",
       "Posting reads that failed transiently"},
      {"simsel_buffer_pool_hits_total", "Buffer-pool page hits"},
      {"simsel_buffer_pool_misses_total", "Buffer-pool page misses"},
      {"simsel_buffer_pool_evictions_total", "Buffer-pool evictions"},
      {"simsel_buffer_pool_resident_pages", "Pages resident in buffer pools"},
      {"simsel_thread_pool_tasks_total", "Thread-pool tasks executed"},
      {"simsel_thread_pool_queue_depth", "Thread-pool tasks queued"},
      {"simsel_thread_pool_task_usec", "Thread-pool task run time"},
      {"simsel_result_cache_hits_total", "Result-cache lookup hits"},
      {"simsel_result_cache_misses_total", "Result-cache lookup misses"},
      {"simsel_result_cache_insertions_total", "Results inserted in the cache"},
      {"simsel_result_cache_evictions_total", "Result-cache LRU evictions"},
      {"simsel_result_cache_invalidations_total",
       "Stale result-cache entries erased"},
      {"simsel_result_cache_bytes", "Bytes resident in the result cache"},
      {"simsel_dynamic_records_added_total",
       "Records appended to a dynamic selector's delta"},
      {"simsel_dynamic_rebuilds_total",
       "Online delta-fold rebuilds completed"},
      {"simsel_serve_stage_latency_usec",
       "Serving-stage latency (cache_lookup/scatter/merge)"},
      {"simsel_shard_latency_usec", "Per-shard execution latency"},
      {"simsel_slow_queries_total",
       "Queries captured by the slow-query log, by reason"},
      {"simsel_server_requests_total",
       "Server requests by outcome (ok/partial/shed/error)"},
      {"simsel_server_inserts_total", "Inserts acknowledged by the server"},
      {"simsel_server_queue_depth",
       "Admitted requests in the server (queued or executing)"},
      {"simsel_server_active_connections", "Open client connections"},
      {"simsel_server_request_usec",
       "Admitted request latency, arrival to response"},
  };
  auto it = kHelp.find(name);
  return it != kHelp.end() ? it->second : "simsel metric";
}

void TypeLine(std::string* out, const std::string& name, const char* type,
              std::string* last_family) {
  if (name == *last_family) return;
  *last_family = name;
  out->append("# HELP ");
  out->append(name);
  out->push_back(' ');
  out->append(MetricHelp(name));
  out->push_back('\n');
  out->append("# TYPE ");
  out->append(name);
  out->push_back(' ');
  out->append(type);
  out->push_back('\n');
}

void Sample(std::string* out, const std::string& series, uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), " %llu\n",
                static_cast<unsigned long long>(value));
  out->append(series);
  out->append(buf);
}

}  // namespace

std::string ToPrometheusText(const MetricsSnapshot& snapshot) {
  std::string out;
  std::string family;
  for (const auto& [key, value] : snapshot.counters) {
    TypeLine(&out, key.name, "counter", &family);
    Sample(&out, Series(key), value);
  }
  for (const auto& [key, value] : snapshot.gauges) {
    TypeLine(&out, key.name, "gauge", &family);
    char buf[32];
    std::snprintf(buf, sizeof(buf), " %lld\n",
                  static_cast<long long>(value));
    out.append(Series(key));
    out.append(buf);
  }
  for (const auto& [key, hist] : snapshot.histograms) {
    TypeLine(&out, key.name, "histogram", &family);
    MetricsSnapshot::Key bucket_key = key;
    bucket_key.name = key.name + "_bucket";
    uint64_t cum = 0;
    for (size_t i = 0; i < hist.buckets.size(); ++i) {
      if (hist.buckets[i] == 0) continue;
      cum += hist.buckets[i];
      char le[40];
      std::snprintf(le, sizeof(le), "le=\"%llu\"",
                    static_cast<unsigned long long>(
                        Histogram::BucketUpperBound(static_cast<int>(i))));
      Sample(&out, SeriesWith(bucket_key, le), cum);
    }
    Sample(&out, SeriesWith(bucket_key, "le=\"+Inf\""), hist.count);
    Sample(&out, Series({key.name + "_sum", key.labels}), hist.sum);
    Sample(&out, Series({key.name + "_count", key.labels}), hist.count);
  }
  return out;
}

std::string ToJson(const MetricsSnapshot& snapshot) {
  JsonWriter w;
  w.BeginObject();
  w.Key("counters");
  w.BeginObject();
  for (const auto& [key, value] : snapshot.counters) {
    w.Key(Series(key));
    w.Uint(value);
  }
  w.EndObject();
  w.Key("gauges");
  w.BeginObject();
  for (const auto& [key, value] : snapshot.gauges) {
    w.Key(Series(key));
    w.Int(value);
  }
  w.EndObject();
  w.Key("histograms");
  w.BeginObject();
  for (const auto& [key, hist] : snapshot.histograms) {
    w.Key(Series(key));
    w.BeginObject();
    w.Key("count");
    w.Uint(hist.count);
    w.Key("sum");
    w.Uint(hist.sum);
    w.Key("mean");
    w.Double(hist.Mean());
    w.Key("max");
    w.Uint(hist.max);
    w.Key("p50");
    w.Uint(hist.Quantile(0.50));
    w.Key("p90");
    w.Uint(hist.Quantile(0.90));
    w.Key("p99");
    w.Uint(hist.Quantile(0.99));
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
  return w.str();
}

std::string JsonWriter::Escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

void JsonWriter::Comma() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!need_comma_.empty()) {
    if (need_comma_.back()) out_.push_back(',');
    need_comma_.back() = true;
  }
}

void JsonWriter::Open(char c) {
  Comma();
  out_.push_back(c);
  need_comma_.push_back(false);
}

void JsonWriter::Close(char c) {
  need_comma_.pop_back();
  out_.push_back(c);
}

void JsonWriter::Key(std::string_view key) {
  Comma();
  out_.push_back('"');
  out_.append(Escape(key));
  out_.append("\":");
  after_key_ = true;
}

void JsonWriter::String(std::string_view value) {
  Comma();
  out_.push_back('"');
  out_.append(Escape(value));
  out_.push_back('"');
}

void JsonWriter::Uint(uint64_t value) {
  Comma();
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(value));
  out_.append(buf);
}

void JsonWriter::Int(int64_t value) {
  Comma();
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
  out_.append(buf);
}

void JsonWriter::Double(double value) {
  Comma();
  if (!std::isfinite(value)) {
    out_.append("null");
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  out_.append(buf);
}

void JsonWriter::Bool(bool value) {
  Comma();
  out_.append(value ? "true" : "false");
}

void JsonWriter::Raw(std::string_view json) {
  Comma();
  out_.append(json);
}

bool WriteTextFile(const std::string& path, std::string_view content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    SIMSEL_LOG(kError) << "cannot open " << path << " for writing";
    return false;
  }
  size_t written = std::fwrite(content.data(), 1, content.size(), f);
  bool closed = std::fclose(f) == 0;
  bool ok = written == content.size() && closed;
  if (!ok) SIMSEL_LOG(kError) << "short write to " << path;
  return ok;
}

}  // namespace simsel::obs
