#ifndef SIMSEL_OBS_TRACE_H_
#define SIMSEL_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace simsel::obs {

/// \file
/// Per-query phase tracing. A caller that wants a breakdown allocates a
/// QueryTrace, points SelectOptions::trace at it and reads the spans (or
/// ToString()) after the query returns; `simsel_cli --explain` is the
/// canonical consumer. Instrumentation sites use the RAII TraceScope, which
/// compiles to a null check plus two steady_clock reads when a trace is
/// attached and to nothing measurable when `trace == nullptr` (the default
/// for every query). Defining SIMSEL_DISABLE_TRACING (CMake option
/// SIMSEL_DISABLE_TRACING=ON) compiles the whole mechanism out: spans are
/// never recorded and TraceScope is an empty object.
///
/// **Threading model.** A QueryTrace is still single-threaded: exactly one
/// thread records into it, lock-free. Cross-thread execution (the serving
/// layer's scatter-gather, BatchSelect) is traced *compositionally*: each
/// worker records into its own private child QueryTrace, and after the
/// workers are joined the gather thread stitches the children into the
/// parent with AdoptChild, which re-bases the child timelines onto the
/// parent's epoch. The hot path therefore never takes a lock or shares a
/// span vector; only the (already synchronized) join point touches more
/// than one trace.

/// One timed phase. Spans form a tree encoded by depth in recording order
/// (a span's children are the following spans with depth + 1).
struct TraceSpan {
  /// Instance marker for spans that exist once per shard / per batch query;
  /// rendered as `name[tag]`. kNoTag for ordinary phases.
  static constexpr uint32_t kNoTag = 0xFFFFFFFFu;

  const char* name;   // static string supplied by the instrumentation site
  uint32_t depth;     // 0 = root
  uint32_t tag = kNoTag;
  uint64_t start_ns;  // offset from the trace's first span
  uint64_t dur_ns;    // 0 while the span is still open
  uint64_t items;     // phase-defined payload (postings, candidates, rounds)
};

class QueryTrace {
 public:
  using Clock = std::chrono::steady_clock;

  QueryTrace() = default;

  /// Drops all spans so the object can be reused across queries.
  void Clear();

  /// Opens a span as a child of the innermost open span; returns its index.
  size_t OpenSpan(const char* name);
  /// Closes span `index`, recording its duration and payload count.
  void CloseSpan(size_t index, uint64_t items);

  /// Stitches `child`'s complete span tree into this trace as a subtree of
  /// the innermost open span (gather-side cross-thread composition; see the
  /// file comment). A wrapper span `name` tagged `tag` — rendered
  /// `name[tag]` — covers the child's extent, with `items` as its payload;
  /// the child's spans follow beneath it with their start offsets re-based
  /// onto this trace's epoch, so the stitched tree shares one timeline.
  /// Every child span must be closed. An empty child contributes a
  /// zero-duration wrapper so the tree shape stays deterministic.
  void AdoptChild(const char* name, uint32_t tag, const QueryTrace& child,
                  uint64_t items = 0);

  bool empty() const { return spans_.empty(); }
  const std::vector<TraceSpan>& spans() const { return spans_; }

  /// The steady-clock instant span offsets are relative to (the first
  /// OpenSpan). Meaningless while empty().
  Clock::time_point epoch() const { return epoch_; }

  /// Indented tree rendering: one line per span with duration, percentage
  /// of the root span and the items payload.
  std::string ToString() const;

  /// Timing-free rendering — one `depth:name[tag]` line per span. Two runs
  /// of the same traced query produce byte-identical structure strings
  /// (durations differ, shape must not), which is what the stitched-trace
  /// regression tests compare.
  std::string StructureString() const;

 private:
  std::vector<TraceSpan> spans_;
  std::vector<Clock::time_point> starts_;  // parallel to spans_, open times
  uint32_t depth_ = 0;
  Clock::time_point epoch_{};
};

#ifndef SIMSEL_DISABLE_TRACING

/// RAII span. Does nothing when constructed with a null trace.
class TraceScope {
 public:
  TraceScope(QueryTrace* trace, const char* name) : trace_(trace) {
    if (trace_ != nullptr) index_ = trace_->OpenSpan(name);
  }
  ~TraceScope() {
    if (trace_ != nullptr) trace_->CloseSpan(index_, items_);
  }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

  /// Sets the span's payload count (e.g. candidates touched this phase).
  void SetItems(uint64_t n) { items_ = n; }
  void AddItems(uint64_t n) { items_ += n; }
  bool active() const { return trace_ != nullptr; }

 private:
  QueryTrace* trace_;
  size_t index_ = 0;
  uint64_t items_ = 0;
};

#else  // SIMSEL_DISABLE_TRACING

class TraceScope {
 public:
  TraceScope(QueryTrace*, const char*) {}
  void SetItems(uint64_t) {}
  void AddItems(uint64_t) {}
  bool active() const { return false; }
};

#endif  // SIMSEL_DISABLE_TRACING

}  // namespace simsel::obs

#endif  // SIMSEL_OBS_TRACE_H_
