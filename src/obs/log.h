#ifndef SIMSEL_OBS_LOG_H_
#define SIMSEL_OBS_LOG_H_

#include <chrono>
#include <sstream>
#include <string>

#include "common/logging.h"

namespace simsel::obs {

/// \file
/// Structured leveled logging, layered above the SIMSEL_CHECK invariant
/// macros of common/logging.h: checks abort on programming bugs, SIMSEL_LOG
/// reports operational events (index loads, pool sizing, slow phases) to a
/// pluggable sink. Usage:
///
///   SIMSEL_LOG(kInfo) << "loaded index with " << n << " lists";
///
/// The stream body is only evaluated when the level passes the runtime
/// threshold (default kWarn, so the library is silent in normal use).

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
};

const char* LogLevelName(LogLevel level);

/// One emitted record, handed to the sink fully formed.
struct LogRecord {
  LogLevel level;
  const char* file;  // basename of the emitting source file
  int line;
  std::chrono::system_clock::time_point time;
  std::string message;
};

/// Receives every record at or above the threshold. Implementations must be
/// thread-safe: queries log concurrently.
class LogSink {
 public:
  virtual ~LogSink() = default;
  virtual void Write(const LogRecord& record) = 0;
};

/// Replaces the process-wide sink; nullptr restores the default stderr
/// sink. Returns the previous sink (never the default one). The caller
/// keeps ownership of `sink` and must outlive all logging.
LogSink* SetLogSink(LogSink* sink);

/// Runtime threshold: records below `level` are dropped before the message
/// is even formatted.
void SetMinLogLevel(LogLevel level);
LogLevel MinLogLevel();

inline bool LogEnabled(LogLevel level) { return level >= MinLogLevel(); }

/// Formats a record the way the default sink prints it:
/// `W0805 14:03:22.120 buffer_pool.cc:17] message`.
std::string FormatLogRecord(const LogRecord& record);

namespace log_internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogMessage();
  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

// Swallows the ostream expression so SIMSEL_LOG can be a ternary operand.
struct Voidify {
  void operator&(std::ostream&) {}
};

}  // namespace log_internal

}  // namespace simsel::obs

/// Leveled logging with lazy formatting. `level` is one of kDebug, kInfo,
/// kWarn, kError.
#define SIMSEL_LOG(level)                                                  \
  (!::simsel::obs::LogEnabled(::simsel::obs::LogLevel::level))             \
      ? (void)0                                                            \
      : ::simsel::obs::log_internal::Voidify() &                           \
            ::simsel::obs::log_internal::LogMessage(                       \
                ::simsel::obs::LogLevel::level, __FILE__, __LINE__)        \
                .stream()

/// Logs only when `cond` holds (same lazy-formatting guarantees).
#define SIMSEL_LOG_IF(level, cond)                                         \
  (!((cond) &&                                                             \
     ::simsel::obs::LogEnabled(::simsel::obs::LogLevel::level)))           \
      ? (void)0                                                            \
      : ::simsel::obs::log_internal::Voidify() &                           \
            ::simsel::obs::log_internal::LogMessage(                       \
                ::simsel::obs::LogLevel::level, __FILE__, __LINE__)        \
                .stream()

#endif  // SIMSEL_OBS_LOG_H_
