#include "obs/metrics_registry.h"

#include <bit>

namespace simsel::obs {

size_t Counter::ThreadShard() {
  // One shard per thread, assigned round-robin on first use; threads only
  // collide after kShards of them exist, and even then stay spread out.
  static std::atomic<size_t> next{0};
  thread_local size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return shard;
}

int Histogram::BucketIndex(uint64_t value) {
  if (value < kSubBuckets) return static_cast<int>(value);
  int exp = 63 - std::countl_zero(value);
  int shift = exp - kSubBits;
  int sub = static_cast<int>((value >> shift) & (kSubBuckets - 1));
  int index = (exp - kSubBits + 1) * kSubBuckets + sub;
  return index < kNumBuckets ? index : kNumBuckets - 1;
}

uint64_t Histogram::BucketUpperBound(int index) {
  if (index < kSubBuckets) return static_cast<uint64_t>(index);
  int block = index / kSubBuckets - 1;
  int sub = index % kSubBuckets;
  uint64_t lo = static_cast<uint64_t>(kSubBuckets + sub) << block;
  uint64_t width = uint64_t{1} << block;
  return lo + width - 1;
}

void Histogram::Observe(uint64_t value) {
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  uint64_t prev = max_.load(std::memory_order_relaxed);
  while (prev < value &&
         !max_.compare_exchange_weak(prev, value, std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.buckets.resize(kNumBuckets);
  for (int i = 0; i < kNumBuckets; ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  snap.count = Count();
  snap.sum = Sum();
  snap.max = Max();
  return snap;
}

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  if (buckets.size() < other.buckets.size()) {
    buckets.resize(other.buckets.size());
  }
  for (size_t i = 0; i < other.buckets.size(); ++i) {
    buckets[i] += other.buckets[i];
  }
  count += other.count;
  sum += other.sum;
  if (other.max > max) max = other.max;
}

uint64_t HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  uint64_t target = static_cast<uint64_t>(q * static_cast<double>(count));
  if (target < 1) target = 1;
  if (target > count) target = count;
  uint64_t cum = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    cum += buckets[i];
    if (cum >= target) {
      uint64_t bound = Histogram::BucketUpperBound(static_cast<int>(i));
      return bound < max ? bound : max;
    }
  }
  return max;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

namespace {

std::string MetricKey(std::string_view name, std::string_view labels) {
  std::string key(name);
  key.push_back('\x1f');
  key.append(labels);
  return key;
}

MetricsSnapshot::Key SplitKey(const std::string& key) {
  size_t sep = key.find('\x1f');
  return {key.substr(0, sep), key.substr(sep + 1)};
}

}  // namespace

template <typename T>
T* MetricsRegistry::GetOrCreate(
    std::map<std::string, std::unique_ptr<T>>* family, std::string_view name,
    std::string_view labels) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = family->try_emplace(MetricKey(name, labels));
  if (inserted) it->second = std::make_unique<T>();
  return it->second.get();
}

Counter* MetricsRegistry::GetCounter(std::string_view name,
                                     std::string_view labels) {
  return GetOrCreate(&counters_, name, labels);
}

Gauge* MetricsRegistry::GetGauge(std::string_view name,
                                 std::string_view labels) {
  return GetOrCreate(&gauges_, name, labels);
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         std::string_view labels) {
  return GetOrCreate(&histograms_, name, labels);
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [key, counter] : counters_) {
    snap.counters.emplace_back(SplitKey(key), counter->Value());
  }
  for (const auto& [key, gauge] : gauges_) {
    snap.gauges.emplace_back(SplitKey(key), gauge->Value());
  }
  for (const auto& [key, hist] : histograms_) {
    snap.histograms.emplace_back(SplitKey(key), hist->Snapshot());
  }
  return snap;
}

std::string LabelPair(std::string_view key, std::string_view value) {
  std::string out(key);
  out += "=\"";
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out.push_back(c);
    }
  }
  out += '"';
  return out;
}

}  // namespace simsel::obs
