#include "obs/log.h"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <mutex>

namespace simsel::obs {

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

namespace {

class StderrSink : public LogSink {
 public:
  void Write(const LogRecord& record) override {
    std::string line = FormatLogRecord(record);
    std::lock_guard<std::mutex> lock(mu_);
    std::fprintf(stderr, "%s\n", line.c_str());
  }

 private:
  std::mutex mu_;
};

StderrSink* DefaultSink() {
  static StderrSink* sink = new StderrSink();
  return sink;
}

std::atomic<LogSink*> g_sink{nullptr};
std::atomic<int> g_min_level{static_cast<int>(LogLevel::kWarn)};

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

LogSink* SetLogSink(LogSink* sink) {
  LogSink* prev = g_sink.exchange(sink, std::memory_order_acq_rel);
  return prev;
}

void SetMinLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel MinLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

std::string FormatLogRecord(const LogRecord& record) {
  std::time_t secs = std::chrono::system_clock::to_time_t(record.time);
  auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                record.time.time_since_epoch())
                .count() %
            1000;
  std::tm tm_buf;
  localtime_r(&secs, &tm_buf);
  char head[96];
  std::snprintf(head, sizeof(head), "%c%02d%02d %02d:%02d:%02d.%03d %s:%d] ",
                LogLevelName(record.level)[0], tm_buf.tm_mon + 1,
                tm_buf.tm_mday, tm_buf.tm_hour, tm_buf.tm_min, tm_buf.tm_sec,
                static_cast<int>(ms), record.file, record.line);
  return std::string(head) + record.message;
}

namespace log_internal {

LogMessage::~LogMessage() {
  LogRecord record;
  record.level = level_;
  record.file = Basename(file_);
  record.line = line_;
  record.time = std::chrono::system_clock::now();
  record.message = stream_.str();
  LogSink* sink = g_sink.load(std::memory_order_acquire);
  if (sink == nullptr) sink = DefaultSink();
  sink->Write(record);
}

}  // namespace log_internal

}  // namespace simsel::obs
