#ifndef SIMSEL_OBS_TRACE_EXPORT_H_
#define SIMSEL_OBS_TRACE_EXPORT_H_

#include <string>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/trace.h"

namespace simsel::obs {

/// \file
/// Chrome trace-event JSON export. The output is a JSON object with a
/// `traceEvents` array of complete ("ph":"X") events, loadable directly in
/// Perfetto (ui.perfetto.dev) or chrome://tracing, so any captured trace —
/// a query's stitched span tree or a flight-recorder ring dump — can be
/// inspected on a real timeline. Timestamps are microseconds relative to
/// the trace's own epoch; the viewer nests events by time containment,
/// which matches the span tree because child spans always lie inside their
/// parent's extent.

/// One query's span tree (including stitched cross-thread subtrees). All
/// events share tid 0: the stitched tree is one logical timeline, shard
/// subtrees are distinguished by their `name[tag]` wrapper spans.
std::string ToChromeTraceJson(const QueryTrace& trace);

/// A flight-recorder dump; events keep their recording thread as tid.
std::string ToChromeTraceJson(const std::vector<FlightEvent>& events);

}  // namespace simsel::obs

#endif  // SIMSEL_OBS_TRACE_EXPORT_H_
