#include "obs/trace.h"

#include <algorithm>
#include <cstdio>

#include "common/logging.h"

namespace simsel::obs {

void QueryTrace::Clear() {
  spans_.clear();
  starts_.clear();
  depth_ = 0;
}

size_t QueryTrace::OpenSpan(const char* name) {
  Clock::time_point now = Clock::now();
  if (spans_.empty()) epoch_ = now;
  TraceSpan span;
  span.name = name;
  span.depth = depth_++;
  span.tag = TraceSpan::kNoTag;
  span.start_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(now - epoch_)
          .count());
  span.dur_ns = 0;
  span.items = 0;
  spans_.push_back(span);
  starts_.push_back(now);
  return spans_.size() - 1;
}

void QueryTrace::CloseSpan(size_t index, uint64_t items) {
  SIMSEL_DCHECK(index < spans_.size());
  SIMSEL_DCHECK(depth_ > 0);
  spans_[index].dur_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           starts_[index])
          .count());
  spans_[index].items = items;
  --depth_;
}

void QueryTrace::AdoptChild(const char* name, uint32_t tag,
                            const QueryTrace& child, uint64_t items) {
  // Adopting into an empty trace anchors our epoch on the child's so the
  // re-based offsets below stay zero-based.
  if (spans_.empty()) {
    epoch_ = child.spans_.empty() ? Clock::now() : child.epoch_;
  }
  TraceSpan wrapper;
  wrapper.name = name;
  wrapper.depth = depth_;
  wrapper.tag = tag;
  wrapper.items = items;

  if (child.spans_.empty()) {
    // Deterministic shape even for a shard that recorded nothing: a
    // zero-duration wrapper at the end of our current timeline.
    wrapper.start_ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             epoch_)
            .count());
    wrapper.dur_ns = 0;
    spans_.push_back(wrapper);
    starts_.push_back(epoch_);
    return;
  }

  // The child's clock is the same steady clock; only its zero point differs.
  const int64_t delta_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(child.epoch_ -
                                                           epoch_)
          .count();
  auto rebase = [delta_ns](uint64_t start) {
    int64_t shifted = static_cast<int64_t>(start) + delta_ns;
    return shifted > 0 ? static_cast<uint64_t>(shifted) : 0;
  };

  // Wrapper extent: the union of the child's root (depth-0) spans.
  uint64_t lo = ~uint64_t{0}, hi = 0;
  for (const TraceSpan& s : child.spans_) {
    if (s.depth != 0) continue;
    lo = std::min(lo, s.start_ns);
    hi = std::max(hi, s.start_ns + s.dur_ns);
  }
  wrapper.start_ns = rebase(lo);
  wrapper.dur_ns = hi - lo;
  spans_.push_back(wrapper);
  starts_.push_back(epoch_);

  spans_.reserve(spans_.size() + child.spans_.size());
  for (const TraceSpan& s : child.spans_) {
    TraceSpan copy = s;
    copy.depth += depth_ + 1;  // children of the wrapper
    copy.start_ns = rebase(s.start_ns);
    spans_.push_back(copy);
    starts_.push_back(epoch_);
  }
}

namespace {

// `name` or `name[tag]` into `buf`; returns buf.
const char* TaggedName(const TraceSpan& span, char* buf, size_t n) {
  if (span.tag == TraceSpan::kNoTag) return span.name;
  std::snprintf(buf, n, "%s[%u]", span.name, span.tag);
  return buf;
}

}  // namespace

std::string QueryTrace::ToString() const {
  std::string out;
  if (spans_.empty()) return out;
  double root_ns = static_cast<double>(spans_[0].dur_ns);
  char line[256];
  char tagged[64];
  for (const TraceSpan& span : spans_) {
    double pct = root_ns > 0.0 ? 100.0 * span.dur_ns / root_ns : 0.0;
    int indent = static_cast<int>(span.depth) * 2;
    const char* name = TaggedName(span, tagged, sizeof(tagged));
    int written;
    if (span.items > 0) {
      written = std::snprintf(
          line, sizeof(line), "%*s%-*s %10.1f us  %5.1f%%  items=%llu\n",
          indent, "", 24 - indent, name, span.dur_ns / 1e3, pct,
          static_cast<unsigned long long>(span.items));
    } else {
      written = std::snprintf(line, sizeof(line),
                              "%*s%-*s %10.1f us  %5.1f%%\n", indent, "",
                              24 - indent, name, span.dur_ns / 1e3, pct);
    }
    if (written > 0) out.append(line, static_cast<size_t>(written));
  }
  return out;
}

std::string QueryTrace::StructureString() const {
  std::string out;
  char line[96];
  char tagged[64];
  for (const TraceSpan& span : spans_) {
    int written = std::snprintf(line, sizeof(line), "%u:%s\n", span.depth,
                                TaggedName(span, tagged, sizeof(tagged)));
    if (written > 0) out.append(line, static_cast<size_t>(written));
  }
  return out;
}

}  // namespace simsel::obs
