#include "obs/trace.h"

#include <cstdio>

#include "common/logging.h"

namespace simsel::obs {

void QueryTrace::Clear() {
  spans_.clear();
  starts_.clear();
  depth_ = 0;
}

size_t QueryTrace::OpenSpan(const char* name) {
  Clock::time_point now = Clock::now();
  if (spans_.empty()) epoch_ = now;
  TraceSpan span;
  span.name = name;
  span.depth = depth_++;
  span.start_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(now - epoch_)
          .count());
  span.dur_ns = 0;
  span.items = 0;
  spans_.push_back(span);
  starts_.push_back(now);
  return spans_.size() - 1;
}

void QueryTrace::CloseSpan(size_t index, uint64_t items) {
  SIMSEL_DCHECK(index < spans_.size());
  SIMSEL_DCHECK(depth_ > 0);
  spans_[index].dur_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           starts_[index])
          .count());
  spans_[index].items = items;
  --depth_;
}

std::string QueryTrace::ToString() const {
  std::string out;
  if (spans_.empty()) return out;
  double root_ns = static_cast<double>(spans_[0].dur_ns);
  char line[256];
  for (const TraceSpan& span : spans_) {
    double pct = root_ns > 0.0 ? 100.0 * span.dur_ns / root_ns : 0.0;
    int indent = static_cast<int>(span.depth) * 2;
    int written;
    if (span.items > 0) {
      written = std::snprintf(
          line, sizeof(line), "%*s%-*s %10.1f us  %5.1f%%  items=%llu\n",
          indent, "", 24 - indent, span.name, span.dur_ns / 1e3, pct,
          static_cast<unsigned long long>(span.items));
    } else {
      written = std::snprintf(line, sizeof(line),
                              "%*s%-*s %10.1f us  %5.1f%%\n", indent, "",
                              24 - indent, span.name, span.dur_ns / 1e3, pct);
    }
    if (written > 0) out.append(line, static_cast<size_t>(written));
  }
  return out;
}

}  // namespace simsel::obs
