#include "obs/flight_recorder.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <utility>

#include "obs/export.h"
#include "obs/metrics_registry.h"

namespace simsel::obs {

FlightRecorder& FlightRecorder::Global() {
  // Never destroyed: worker threads may record during static teardown.
  static FlightRecorder* recorder = new FlightRecorder();
  return *recorder;
}

FlightRecorder::ThreadState& FlightRecorder::LocalState() {
  // The pointer is stable for the thread's life: ThreadStates are created
  // once and never freed (ResetForTest only wipes their contents), so the
  // thread_local cache cannot dangle.
  thread_local ThreadState* state = [this] {
    std::lock_guard<std::mutex> lock(threads_mu_);
    threads_.push_back(
        std::make_unique<ThreadState>(static_cast<uint32_t>(threads_.size())));
    return threads_.back().get();
  }();
  return *state;
}

QueryTrace* FlightRecorder::ThreadTrace() {
#ifdef SIMSEL_DISABLE_TRACING
  return nullptr;
#else
  if (!enabled()) return nullptr;
  QueryTrace* trace = &LocalState().sample_trace;
  trace->Clear();
  return trace;
#endif
}

void FlightRecorder::PushSpans(const QueryTrace& trace) {
  ThreadState& state = LocalState();
  const uint64_t base_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(trace.epoch() -
                                                           process_epoch_)
          .count());
  for (const TraceSpan& span : trace.spans()) {
    uint64_t head = state.head.load(std::memory_order_relaxed);
    Slot& slot = state.slots[head & (kRingCapacity - 1)];
    uint64_t seq = slot.seq.load(std::memory_order_relaxed);
    slot.seq.store(seq + 1, std::memory_order_release);  // odd: in flight
    slot.name.store(span.name, std::memory_order_relaxed);
    slot.meta.store((static_cast<uint64_t>(span.depth) << 32) | span.tag,
                    std::memory_order_relaxed);
    slot.start_ns.store(base_ns + span.start_ns, std::memory_order_relaxed);
    slot.dur_ns.store(span.dur_ns, std::memory_order_relaxed);
    slot.items.store(span.items, std::memory_order_relaxed);
    slot.seq.store(seq + 2, std::memory_order_release);  // even: stable
    state.head.store(head + 1, std::memory_order_release);
  }
}

void FlightRecorder::OnQueryComplete(const QueryCompletion& info) {
  if (!enabled()) return;
  const uint64_t threshold = slow_query_usec();
  const bool slow = threshold > 0 && info.latency_usec >= threshold;
  if (!slow && !info.tripped && !info.failed) {
    if (info.trace != nullptr && !info.trace->empty()) {
      PushSpans(*info.trace);
    }
    return;
  }

  // Tail-sampled keep: serialize the full record.
  std::string record = BuildRecordJson(info);
  slow_records_total_.fetch_add(1, std::memory_order_relaxed);
  const char* reason =
      info.tripped ? info.termination : (info.failed ? "failed" : "slow");
  MetricsRegistry::Global()
      .GetCounter("simsel_slow_queries_total", LabelPair("reason", reason))
      ->Increment();
  std::lock_guard<std::mutex> lock(log_mu_);
  slow_log_.push_back(record);
  if (slow_log_.size() > kMaxSlowRecords) slow_log_.pop_front();
  if (sink_) sink_(record);
}

std::string FlightRecorder::BuildRecordJson(const QueryCompletion& info) {
  JsonWriter w;
  w.BeginObject();
  w.Key("algo");
  w.String(info.algo);
  w.Key("latency_usec");
  w.Uint(info.latency_usec);
  w.Key("termination");
  w.String(info.termination);
  w.Key("failed");
  w.Bool(info.failed);
  if (!info.status_message.empty()) {
    w.Key("status");
    w.String(info.status_message);
  }
  if (info.counters != nullptr) {
    const AccessCounters& c = *info.counters;
    w.Key("counters");
    w.BeginObject();
    w.Key("elements_read");
    w.Uint(c.elements_read);
    w.Key("elements_skipped");
    w.Uint(c.elements_skipped);
    w.Key("elements_total");
    w.Uint(c.elements_total);
    w.Key("seq_page_reads");
    w.Uint(c.seq_page_reads);
    w.Key("rand_page_reads");
    w.Uint(c.rand_page_reads);
    w.Key("hash_probes");
    w.Uint(c.hash_probes);
    w.Key("candidate_inserts");
    w.Uint(c.candidate_inserts);
    w.Key("candidate_prunes");
    w.Uint(c.candidate_prunes);
    w.Key("candidate_scan_steps");
    w.Uint(c.candidate_scan_steps);
    w.Key("rows_scanned");
    w.Uint(c.rows_scanned);
    w.Key("pool_hits");
    w.Uint(c.pool_hits);
    w.Key("pool_misses");
    w.Uint(c.pool_misses);
    w.Key("results");
    w.Uint(c.results);
    w.EndObject();
  }
  w.Key("spans");
  w.BeginArray();
  if (info.trace != nullptr) {
    char tagged[64];
    for (const TraceSpan& span : info.trace->spans()) {
      w.BeginObject();
      w.Key("name");
      if (span.tag == TraceSpan::kNoTag) {
        w.String(span.name);
      } else {
        std::snprintf(tagged, sizeof(tagged), "%s[%u]", span.name, span.tag);
        w.String(tagged);
      }
      w.Key("depth");
      w.Uint(span.depth);
      w.Key("start_ns");
      w.Uint(span.start_ns);
      w.Key("dur_ns");
      w.Uint(span.dur_ns);
      w.Key("items");
      w.Uint(span.items);
      w.EndObject();
    }
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

std::vector<FlightEvent> FlightRecorder::DumpEvents() const {
  std::vector<FlightEvent> out;
  std::lock_guard<std::mutex> lock(threads_mu_);
  for (const auto& state : threads_) {
    const uint64_t head = state->head.load(std::memory_order_acquire);
    const uint64_t n = std::min<uint64_t>(head, kRingCapacity);
    for (uint64_t i = head - n; i < head; ++i) {
      const Slot& slot = state->slots[i & (kRingCapacity - 1)];
      uint64_t s1 = slot.seq.load(std::memory_order_acquire);
      if (s1 == 0 || (s1 & 1) != 0) continue;  // empty or mid-write
      FlightEvent ev;
      ev.name = slot.name.load(std::memory_order_relaxed);
      uint64_t meta = slot.meta.load(std::memory_order_relaxed);
      ev.depth = static_cast<uint32_t>(meta >> 32);
      ev.tag = static_cast<uint32_t>(meta);
      ev.start_ns = slot.start_ns.load(std::memory_order_relaxed);
      ev.dur_ns = slot.dur_ns.load(std::memory_order_relaxed);
      ev.items = slot.items.load(std::memory_order_relaxed);
      ev.tid = state->tid;
      uint64_t s2 = slot.seq.load(std::memory_order_acquire);
      if (s1 != s2 || ev.name == nullptr) continue;  // torn: overwritten
      out.push_back(ev);
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const FlightEvent& a, const FlightEvent& b) {
                     return a.start_ns < b.start_ns;
                   });
  return out;
}

std::vector<std::string> FlightRecorder::SlowQueryLog() const {
  std::lock_guard<std::mutex> lock(log_mu_);
  return {slow_log_.begin(), slow_log_.end()};
}

void FlightRecorder::SetSlowQuerySink(
    std::function<void(const std::string&)> sink) {
  std::lock_guard<std::mutex> lock(log_mu_);
  sink_ = std::move(sink);
}

void FlightRecorder::ResetForTest() {
  {
    std::lock_guard<std::mutex> lock(threads_mu_);
    for (auto& state : threads_) {
      // ThreadStates stay allocated (thread_local pointers reference them);
      // only their contents are wiped. Callers ensure no thread is
      // recording concurrently.
      state->head.store(0, std::memory_order_relaxed);
      for (Slot& slot : state->slots) {
        slot.seq.store(0, std::memory_order_relaxed);
        slot.name.store(nullptr, std::memory_order_relaxed);
      }
    }
  }
  std::lock_guard<std::mutex> lock(log_mu_);
  slow_log_.clear();
  sink_ = nullptr;
  slow_records_total_.store(0, std::memory_order_relaxed);
  set_enabled(true);
  set_slow_query_usec(0);
}

}  // namespace simsel::obs
