#include "obs/trace_export.h"

#include <cstdio>

#include "obs/export.h"

namespace simsel::obs {

namespace {

void AppendEvent(JsonWriter* w, const char* name, uint32_t tag, uint32_t tid,
                 uint64_t start_ns, uint64_t dur_ns, uint64_t items) {
  w->BeginObject();
  w->Key("name");
  if (tag == TraceSpan::kNoTag) {
    w->String(name);
  } else {
    char tagged[64];
    std::snprintf(tagged, sizeof(tagged), "%s[%u]", name, tag);
    w->String(tagged);
  }
  w->Key("cat");
  w->String("simsel");
  w->Key("ph");
  w->String("X");
  // Chrome trace timestamps are microseconds; keep nanosecond precision in
  // the fraction so adjacent spans never collapse.
  w->Key("ts");
  w->Double(static_cast<double>(start_ns) / 1e3);
  w->Key("dur");
  w->Double(static_cast<double>(dur_ns) / 1e3);
  w->Key("pid");
  w->Uint(1);
  w->Key("tid");
  w->Uint(tid);
  w->Key("args");
  w->BeginObject();
  w->Key("items");
  w->Uint(items);
  w->EndObject();
  w->EndObject();
}

}  // namespace

std::string ToChromeTraceJson(const QueryTrace& trace) {
  JsonWriter w;
  w.BeginObject();
  w.Key("displayTimeUnit");
  w.String("ns");
  w.Key("traceEvents");
  w.BeginArray();
  for (const TraceSpan& span : trace.spans()) {
    AppendEvent(&w, span.name, span.tag, /*tid=*/0, span.start_ns,
                span.dur_ns, span.items);
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

std::string ToChromeTraceJson(const std::vector<FlightEvent>& events) {
  JsonWriter w;
  w.BeginObject();
  w.Key("displayTimeUnit");
  w.String("ns");
  w.Key("traceEvents");
  w.BeginArray();
  for (const FlightEvent& ev : events) {
    AppendEvent(&w, ev.name, ev.tag, ev.tid, ev.start_ns, ev.dur_ns,
                ev.items);
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

}  // namespace simsel::obs
