#ifndef SIMSEL_OBS_METRICS_REGISTRY_H_
#define SIMSEL_OBS_METRICS_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace simsel::obs {

/// \file
/// Process-wide metrics substrate: named counters, gauges and log-bucketed
/// latency histograms. All mutation paths are lock-free (relaxed atomics;
/// counters additionally shard their cells across cache lines) so const
/// queries running concurrently on the thread pool never serialize on a
/// metric. Registration (GetCounter etc.) takes a mutex but is expected
/// once per call site — cache the returned pointer, it is stable for the
/// registry's lifetime.

/// Monotonically increasing event count. Increment is a relaxed add on one
/// of kShards cache-line-sized cells chosen per thread, so concurrent
/// writers do not bounce a shared line; Value() sums the shards.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    cells_[ThreadShard()].v.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t Value() const {
    uint64_t sum = 0;
    for (const Cell& c : cells_) sum += c.v.load(std::memory_order_relaxed);
    return sum;
  }

 private:
  static constexpr size_t kShards = 16;
  struct alignas(64) Cell {
    std::atomic<uint64_t> v{0};
  };
  static size_t ThreadShard();
  Cell cells_[kShards];
};

/// Instantaneous signed value (queue depth, resident pages).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Point-in-time copy of a histogram, mergeable across threads/processes
/// and the unit the exporters consume. Quantiles are resolved to the upper
/// bound of the containing bucket (relative error <= 1/kSubBuckets).
struct HistogramSnapshot {
  std::vector<uint64_t> buckets;  // kNumBuckets cells
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t max = 0;

  void Merge(const HistogramSnapshot& other);
  /// Value at quantile q in [0, 1]; 0 when empty.
  uint64_t Quantile(double q) const;
  double Mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
};

/// Log-bucketed histogram of non-negative integer observations (typically
/// microseconds or item counts). Buckets subdivide each power of two into
/// kSubBuckets linear steps, exact below kSubBuckets, so p50/p90/p99 carry
/// at most 12.5% relative error over the whole 2^40 range. Observe is a
/// handful of relaxed atomic operations; no locks anywhere.
class Histogram {
 public:
  static constexpr int kSubBits = 3;
  static constexpr int kSubBuckets = 1 << kSubBits;  // 8 per octave
  static constexpr int kMaxExponent = 40;
  static constexpr int kNumBuckets = (kMaxExponent + 1) * kSubBuckets;

  void Observe(uint64_t value);

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t Max() const { return max_.load(std::memory_order_relaxed); }
  uint64_t Quantile(double q) const { return Snapshot().Quantile(q); }

  HistogramSnapshot Snapshot() const;

  /// Bucket index holding `value` (dense, monotone in value).
  static int BucketIndex(uint64_t value);
  /// Largest value mapping to bucket `index` (the Prometheus `le` bound).
  static uint64_t BucketUpperBound(int index);

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
};

/// Everything the registry knows at one instant, in deterministic
/// (name, labels) order. Input to the Prometheus/JSON exporters.
struct MetricsSnapshot {
  struct Key {
    std::string name;
    std::string labels;  // rendered `k="v",...`, may be empty
  };
  std::vector<std::pair<Key, uint64_t>> counters;
  std::vector<std::pair<Key, int64_t>> gauges;
  std::vector<std::pair<Key, HistogramSnapshot>> histograms;
};

/// Named metric directory. Metrics are created on first Get and live as
/// long as the registry; the same (name, labels) pair always returns the
/// same pointer. `labels` is a pre-rendered Prometheus label body such as
/// `algo="SF"` (see LabelPair); one metric name must keep one type.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide instance every built-in instrumentation site uses.
  /// Never destroyed, so metrics stay usable during static teardown.
  static MetricsRegistry& Global();

  Counter* GetCounter(std::string_view name, std::string_view labels = "");
  Gauge* GetGauge(std::string_view name, std::string_view labels = "");
  Histogram* GetHistogram(std::string_view name, std::string_view labels = "");

  MetricsSnapshot Snapshot() const;

 private:
  template <typename T>
  T* GetOrCreate(std::map<std::string, std::unique_ptr<T>>* family,
                 std::string_view name, std::string_view labels);

  mutable std::mutex mu_;
  // Keyed by "name\x1f{labels}" so snapshots sort by family then labels.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Renders one `key="value"` label pair, escaping `\`, `"` and newlines as
/// the exposition format requires. Join multiple pairs with ','.
std::string LabelPair(std::string_view key, std::string_view value);

}  // namespace simsel::obs

#endif  // SIMSEL_OBS_METRICS_REGISTRY_H_
