#ifndef SIMSEL_BTREE_BPLUS_TREE_H_
#define SIMSEL_BTREE_BPLUS_TREE_H_

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/metrics.h"

namespace simsel {

/// Paged B+-tree with leaf chaining, bulk load, and page-read accounting.
///
/// This is the clustered composite index of the paper's relational baseline:
/// MS SQL Server's clustered B-tree on (3-gram, length, id, weight) is
/// modeled as a B+-tree whose node capacities derive from a page size, whose
/// seeks charge `height` random page reads, and whose leaf-chain scans charge
/// one sequential page read per visited leaf. It is deliberately general
/// (template on Key/Value) so the container is reusable and testable on its
/// own.
///
/// Supported operations: Insert (with node splits), bulk Build from sorted
/// data, point/range reads via SeekGE + Scanner. The workload is build-once
/// read-many (index construction happens at preprocessing time, as in the
/// paper), so deletion is intentionally not provided.
template <typename Key, typename Value, typename Less = std::less<Key>>
class BPlusTree {
 public:
  struct Options {
    /// Modeled disk page size; node capacities are derived from it.
    size_t page_bytes = 4096;
    /// Fill factor for bulk loading (leaves are packed to this fraction).
    double bulk_fill = 0.9;
  };

 private:
  struct Node;  // declared below; Scanner holds a pointer to it

 public:

  explicit BPlusTree(Options options = Options(), Less less = Less())
      : options_(options), less_(less) {
    constexpr size_t kHeader = 32;  // node header: type, count, sibling ptr
    leaf_capacity_ =
        (options_.page_bytes - kHeader) / (sizeof(Key) + sizeof(Value));
    internal_capacity_ =
        (options_.page_bytes - kHeader) / (sizeof(Key) + sizeof(void*));
    SIMSEL_CHECK_MSG(leaf_capacity_ >= 4 && internal_capacity_ >= 4,
                     "page too small for this key/value size");
    root_ = std::make_unique<Node>(/*is_leaf=*/true);
    first_leaf_ = root_.get();
    num_leaves_ = 1;
  }

  BPlusTree(const BPlusTree&) = delete;
  BPlusTree& operator=(const BPlusTree&) = delete;
  BPlusTree(BPlusTree&&) = default;
  BPlusTree& operator=(BPlusTree&&) = default;

  size_t size() const { return size_; }
  size_t height() const { return height_; }
  size_t num_leaves() const { return num_leaves_; }
  size_t num_internal() const { return num_internal_; }
  size_t leaf_capacity() const { return leaf_capacity_; }

  /// Modeled disk footprint: one page per node.
  size_t SizeBytes() const {
    return (num_leaves_ + num_internal_) * options_.page_bytes;
  }

  /// Inserts (key, value). Duplicate keys are allowed and kept in insertion
  /// order among equals.
  void Insert(const Key& key, const Value& value) {
    SplitResult split = InsertRec(root_.get(), key, value);
    if (split.happened) {
      auto new_root = std::make_unique<Node>(/*is_leaf=*/false);
      new_root->keys.push_back(split.separator);
      new_root->children.push_back(std::move(root_));
      new_root->children.push_back(std::move(split.right));
      root_ = std::move(new_root);
      ++num_internal_;
      ++height_;
    }
    ++size_;
  }

  /// Replaces the tree contents with `items`, which must be sorted by key.
  /// Much faster and better-packed than repeated Insert.
  void Build(const std::vector<std::pair<Key, Value>>& items) {
    for (size_t i = 1; i < items.size(); ++i) {
      SIMSEL_DCHECK(!less_(items[i].first, items[i - 1].first));
    }
    root_.reset();
    first_leaf_ = nullptr;
    num_leaves_ = num_internal_ = 0;
    height_ = 0;
    size_ = items.size();

    size_t per_leaf = std::max<size_t>(
        1, static_cast<size_t>(leaf_capacity_ * options_.bulk_fill));
    std::vector<std::unique_ptr<Node>> level;
    std::vector<Key> level_min;  // smallest key in each node of `level`
    if (items.empty()) {
      root_ = std::make_unique<Node>(true);
      first_leaf_ = root_.get();
      num_leaves_ = 1;
      return;
    }
    Node* prev = nullptr;
    for (size_t i = 0; i < items.size(); i += per_leaf) {
      size_t end = std::min(items.size(), i + per_leaf);
      auto leaf = std::make_unique<Node>(true);
      for (size_t j = i; j < end; ++j) {
        leaf->keys.push_back(items[j].first);
        leaf->values.push_back(items[j].second);
      }
      if (prev != nullptr) prev->next_leaf = leaf.get();
      prev = leaf.get();
      level_min.push_back(items[i].first);
      level.push_back(std::move(leaf));
    }
    first_leaf_ = level.front().get();
    num_leaves_ = level.size();

    size_t per_node = std::max<size_t>(
        2, static_cast<size_t>(internal_capacity_ * options_.bulk_fill));
    while (level.size() > 1) {
      std::vector<std::unique_ptr<Node>> up;
      std::vector<Key> up_min;
      for (size_t i = 0; i < level.size(); i += per_node) {
        size_t end = std::min(level.size(), i + per_node);
        auto node = std::make_unique<Node>(false);
        up_min.push_back(level_min[i]);
        for (size_t j = i; j < end; ++j) {
          if (j > i) node->keys.push_back(level_min[j]);
          node->children.push_back(std::move(level[j]));
        }
        up.push_back(std::move(node));
        ++num_internal_;
      }
      level = std::move(up);
      level_min = std::move(up_min);
      ++height_;
    }
    root_ = std::move(level.front());
  }

  /// Forward scanner over the leaf chain.
  class Scanner {
   public:
    Scanner() = default;

    bool Valid() const { return leaf_ != nullptr; }
    const Key& key() const { return leaf_->keys[idx_]; }
    const Value& value() const { return leaf_->values[idx_]; }

    /// Advances one entry; charges a sequential page read when crossing to
    /// the next leaf.
    void Next() {
      SIMSEL_DCHECK(Valid());
      ++idx_;
      if (idx_ >= leaf_->keys.size()) {
        leaf_ = leaf_->next_leaf;
        idx_ = 0;
        if (leaf_ != nullptr && counters_ != nullptr) {
          counters_->seq_page_reads += 1;
        }
        // Skip empty leaves (only possible for an empty tree's root).
        while (leaf_ != nullptr && leaf_->keys.empty()) leaf_ = leaf_->next_leaf;
      }
    }

   private:
    friend class BPlusTree;
    const Node* leaf_ = nullptr;
    size_t idx_ = 0;
    AccessCounters* counters_ = nullptr;
  };

  /// Positions a scanner at the first entry with key >= `key` (end-of-tree
  /// scanner if none). Charges `height_ + 1` random page reads (root to
  /// leaf) to `counters` if non-null.
  Scanner SeekGE(const Key& key, AccessCounters* counters = nullptr) const {
    if (counters != nullptr) counters->rand_page_reads += height_ + 1;
    const Node* node = root_.get();
    while (!node->is_leaf) {
      // Descend via lower bound: keys equal to a separator may live in the
      // left child too (duplicates), and the leaf chain continues rightward.
      size_t i = LowerBound(node->keys, key);
      node = node->children[i].get();
    }
    size_t i = LowerBound(node->keys, key);
    Scanner s;
    s.counters_ = counters;
    if (i < node->keys.size()) {
      s.leaf_ = node;
      s.idx_ = i;
    } else {
      // First match may be in the next non-empty leaf.
      const Node* next = node->next_leaf;
      while (next != nullptr && next->keys.empty()) next = next->next_leaf;
      s.leaf_ = next;
      s.idx_ = 0;
      if (next != nullptr && counters != nullptr) counters->seq_page_reads += 1;
    }
    return s;
  }

  /// Scanner at the smallest key (for full scans).
  Scanner Begin(AccessCounters* counters = nullptr) const {
    Scanner s;
    s.counters_ = counters;
    const Node* leaf = first_leaf_;
    while (leaf != nullptr && leaf->keys.empty()) leaf = leaf->next_leaf;
    s.leaf_ = leaf;
    s.idx_ = 0;
    if (counters != nullptr && leaf != nullptr) counters->seq_page_reads += 1;
    return s;
  }

  /// Point lookup: first value with key equivalent to `key`.
  bool Lookup(const Key& key, Value* value = nullptr,
              AccessCounters* counters = nullptr) const {
    Scanner s = SeekGE(key, counters);
    if (!s.Valid()) return false;
    if (less_(key, s.key())) return false;  // s.key() > key
    if (value != nullptr) *value = s.value();
    return true;
  }

  /// Structural invariant check for tests: returns false (and a reason via
  /// stderr) if any B+-tree invariant is violated.
  bool Validate() const {
    size_t count = 0;
    bool ok = ValidateRec(root_.get(), nullptr, nullptr, height_, &count);
    if (count != size_) {
      std::fprintf(stderr, "BPlusTree: size mismatch %zu vs %zu\n", count,
                   size_);
      return false;
    }
    // The leaf chain must enumerate all entries in sorted order.
    size_t chained = 0;
    const Key* prev = nullptr;
    for (const Node* leaf = first_leaf_; leaf != nullptr;
         leaf = leaf->next_leaf) {
      for (size_t i = 0; i < leaf->keys.size(); ++i) {
        if (prev != nullptr && less_(leaf->keys[i], *prev)) {
          std::fprintf(stderr, "BPlusTree: leaf chain out of order\n");
          return false;
        }
        prev = &leaf->keys[i];
        ++chained;
      }
    }
    if (chained != size_) {
      std::fprintf(stderr, "BPlusTree: leaf chain count %zu vs %zu\n", chained,
                   size_);
      return false;
    }
    return ok;
  }

 private:
  struct Node {
    explicit Node(bool leaf) : is_leaf(leaf) {}
    bool is_leaf;
    std::vector<Key> keys;
    // Leaf payloads (is_leaf only).
    std::vector<Value> values;
    // Children (internal only); children.size() == keys.size() + 1.
    std::vector<std::unique_ptr<Node>> children;
    Node* next_leaf = nullptr;
  };

  struct SplitResult {
    bool happened = false;
    Key separator{};
    std::unique_ptr<Node> right;
  };

  size_t LowerBound(const std::vector<Key>& keys, const Key& key) const {
    size_t lo = 0, hi = keys.size();
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      if (less_(keys[mid], key)) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  size_t UpperBound(const std::vector<Key>& keys, const Key& key) const {
    size_t lo = 0, hi = keys.size();
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      if (less_(key, keys[mid])) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    return lo;
  }

  SplitResult InsertRec(Node* node, const Key& key, const Value& value) {
    SplitResult result;
    if (node->is_leaf) {
      size_t i = UpperBound(node->keys, key);  // stable among duplicates
      node->keys.insert(node->keys.begin() + i, key);
      node->values.insert(node->values.begin() + i, value);
      if (node->keys.size() > leaf_capacity_) {
        size_t mid = node->keys.size() / 2;
        auto right = std::make_unique<Node>(true);
        right->keys.assign(node->keys.begin() + mid, node->keys.end());
        right->values.assign(node->values.begin() + mid, node->values.end());
        node->keys.resize(mid);
        node->values.resize(mid);
        right->next_leaf = node->next_leaf;
        node->next_leaf = right.get();
        ++num_leaves_;
        result.happened = true;
        result.separator = right->keys.front();
        result.right = std::move(right);
      }
      return result;
    }
    size_t i = UpperBound(node->keys, key);
    SplitResult child_split = InsertRec(node->children[i].get(), key, value);
    if (child_split.happened) {
      node->keys.insert(node->keys.begin() + i, child_split.separator);
      node->children.insert(node->children.begin() + i + 1,
                            std::move(child_split.right));
      if (node->keys.size() > internal_capacity_) {
        size_t mid = node->keys.size() / 2;
        auto right = std::make_unique<Node>(false);
        result.separator = node->keys[mid];
        right->keys.assign(node->keys.begin() + mid + 1, node->keys.end());
        for (size_t j = mid + 1; j < node->children.size(); ++j) {
          right->children.push_back(std::move(node->children[j]));
        }
        node->keys.resize(mid);
        node->children.resize(mid + 1);
        ++num_internal_;
        result.happened = true;
        result.right = std::move(right);
      }
    }
    return result;
  }

  bool ValidateRec(const Node* node, const Key* lo, const Key* hi,
                   size_t depth_remaining, size_t* count) const {
    for (size_t i = 0; i < node->keys.size(); ++i) {
      if (i > 0 && less_(node->keys[i], node->keys[i - 1])) {
        std::fprintf(stderr, "BPlusTree: unsorted keys in node\n");
        return false;
      }
      if (lo != nullptr && less_(node->keys[i], *lo)) {
        std::fprintf(stderr, "BPlusTree: key below subtree lower bound\n");
        return false;
      }
      // Upper bound is inclusive: duplicates of a separator key may sit in
      // the left subtree.
      if (hi != nullptr && less_(*hi, node->keys[i])) {
        std::fprintf(stderr, "BPlusTree: key above subtree upper bound\n");
        return false;
      }
    }
    if (node->is_leaf) {
      if (depth_remaining != 0) {
        std::fprintf(stderr, "BPlusTree: leaves at non-uniform depth\n");
        return false;
      }
      *count += node->keys.size();
      return true;
    }
    if (node->children.size() != node->keys.size() + 1) {
      std::fprintf(stderr, "BPlusTree: child/key count mismatch\n");
      return false;
    }
    for (size_t i = 0; i < node->children.size(); ++i) {
      const Key* child_lo = (i == 0) ? lo : &node->keys[i - 1];
      const Key* child_hi = (i == node->keys.size()) ? hi : &node->keys[i];
      if (!ValidateRec(node->children[i].get(), child_lo, child_hi,
                       depth_remaining - 1, count)) {
        return false;
      }
    }
    return true;
  }

  Options options_;
  Less less_;
  size_t leaf_capacity_ = 0;
  size_t internal_capacity_ = 0;
  std::unique_ptr<Node> root_;
  Node* first_leaf_ = nullptr;
  size_t size_ = 0;
  size_t height_ = 0;  // number of internal levels (0 == root is a leaf)
  size_t num_leaves_ = 0;
  size_t num_internal_ = 0;
};

}  // namespace simsel

#endif  // SIMSEL_BTREE_BPLUS_TREE_H_
