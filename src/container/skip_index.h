#ifndef SIMSEL_CONTAINER_SKIP_INDEX_H_
#define SIMSEL_CONTAINER_SKIP_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace simsel {

/// Multi-level skip structure over a length-sorted inverted list.
///
/// Inverted lists are sorted by increasing set length (Section III-B), and
/// the Length Boundedness theorem restricts a query to the window
/// [τ·len(q), len(q)/τ]. The paper attaches a skip list to each inverted
/// list "for efficiently identifying an entry with a specific weight"; this
/// class is that structure, built deterministically (every `fanout`-th entry
/// is promoted a level, like a perfectly balanced skip list) so lookups and
/// sizes are reproducible.
///
/// The base array is borrowed, not owned: the caller must keep the lengths
/// array alive and unchanged for the lifetime of the SkipIndex.
class SkipIndex {
 public:
  /// Builds over `lengths[0, n)`, which must be sorted ascending.
  /// `fanout` >= 2 controls the promotion rate and node budget.
  SkipIndex(const float* lengths, size_t n, size_t fanout = 16);

  /// Returns the smallest index i with lengths[i] >= target, or n if none.
  /// `nodes_visited`, if non-null, is incremented by the number of skip
  /// nodes touched (each node touch models one random page access amortized
  /// across a page worth of nodes; callers convert to page counts).
  size_t SeekFirstGE(float target, uint64_t* nodes_visited = nullptr) const;

  /// Returns the largest index i with lengths[i] <= target, or n if all
  /// entries exceed target (i.e. no valid index). Note the sentinel is n,
  /// not -1, so callers can compare against size_t bounds directly.
  size_t SeekLastLE(float target, uint64_t* nodes_visited = nullptr) const;

  size_t num_levels() const { return levels_.size(); }
  size_t num_nodes() const;
  /// Approximate serialized footprint: 8 bytes per node (float + uint32).
  size_t SizeBytes() const { return num_nodes() * 8; }

 private:
  struct Node {
    float len;
    uint32_t pos;  // index into the level below (or the base array)
  };

  const float* lengths_;
  size_t n_;
  size_t fanout_;
  // levels_[0] samples the base array; levels_[l] samples levels_[l-1].
  std::vector<std::vector<Node>> levels_;
};

}  // namespace simsel

#endif  // SIMSEL_CONTAINER_SKIP_INDEX_H_
