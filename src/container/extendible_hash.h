#ifndef SIMSEL_CONTAINER_EXTENDIBLE_HASH_H_
#define SIMSEL_CONTAINER_EXTENDIBLE_HASH_H_

#include <cstdint>
#include <memory>
#include <vector>

namespace simsel {

/// Extendible hash table mapping a 64-bit key to a float payload.
///
/// The paper attaches one such index per inverted list, keyed by set id, so
/// TA-style algorithms can answer "does set s appear in list i (and with
/// what length)?" with at most one random page I/O. Buckets model fixed-size
/// disk pages (the paper tuned 1 KiB pages); the directory doubles when a
/// bucket at maximum local depth overflows, exactly as in the textbook
/// structure. Lookups charge one random page read via the `page_reads`
/// out-parameter.
class ExtendibleHash {
 public:
  /// `bucket_page_bytes` sets bucket capacity: (page - header) / entry size.
  explicit ExtendibleHash(size_t bucket_page_bytes = 1024);

  /// Inserts or overwrites `key`. Splits buckets / doubles the directory as
  /// needed.
  void Insert(uint64_t key, float value);

  /// Looks up `key`. On hit stores the payload in `*value` (if non-null) and
  /// returns true. Always charges exactly one bucket-page read to
  /// `*page_reads` (if non-null): a miss still fetches the page.
  bool Lookup(uint64_t key, float* value = nullptr,
              uint64_t* page_reads = nullptr) const;

  /// Removes `key`; returns whether it was present. Buckets are not merged
  /// (deletes are rare in the workload; the structure stays valid).
  bool Erase(uint64_t key);

  /// Stable identity of the bucket page `key` hashes to; used as the page
  /// key when a BufferPool simulates caching of probe I/Os. Invalidated by
  /// the next Insert.
  const void* ProbePageId(uint64_t key) const {
    return directory_[DirSlot(key)].get();
  }

  size_t size() const { return size_; }
  /// Number of distinct buckets (several directory slots may share one).
  size_t num_buckets() const;
  size_t directory_entries() const { return directory_.size(); }
  int global_depth() const { return global_depth_; }
  size_t bucket_capacity() const { return bucket_capacity_; }

  /// Modeled disk footprint: one page per bucket plus 8 bytes per directory
  /// entry. This drives the Figure 5 index-size accounting.
  size_t SizeBytes() const;

 private:
  struct Bucket {
    int local_depth = 0;
    std::vector<std::pair<uint64_t, float>> entries;
  };

  size_t DirSlot(uint64_t key) const;
  void SplitBucket(size_t dir_slot);

  size_t page_bytes_;
  size_t bucket_capacity_;
  int global_depth_ = 0;
  size_t size_ = 0;
  std::vector<std::shared_ptr<Bucket>> directory_;
};

}  // namespace simsel

#endif  // SIMSEL_CONTAINER_EXTENDIBLE_HASH_H_
