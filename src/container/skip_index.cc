#include "container/skip_index.h"

#include <cmath>

#include "common/logging.h"

namespace simsel {

SkipIndex::SkipIndex(const float* lengths, size_t n, size_t fanout)
    : lengths_(lengths), n_(n), fanout_(fanout) {
  SIMSEL_CHECK_MSG(fanout_ >= 2, "skip index fanout must be >= 2");
  // Level 0 samples every fanout-th base entry; each higher level samples
  // every fanout-th node of the level below, until a level is small.
  if (n_ > fanout_) {
    std::vector<Node> level;
    for (size_t i = 0; i < n_; i += fanout_) {
      level.push_back(Node{lengths_[i], static_cast<uint32_t>(i)});
    }
    levels_.push_back(std::move(level));
    while (levels_.back().size() > fanout_) {
      const std::vector<Node>& below = levels_.back();
      std::vector<Node> up;
      for (size_t i = 0; i < below.size(); i += fanout_) {
        up.push_back(Node{below[i].len, static_cast<uint32_t>(i)});
      }
      levels_.push_back(std::move(up));
    }
  }
}

size_t SkipIndex::num_nodes() const {
  size_t total = 0;
  for (const auto& level : levels_) total += level.size();
  return total;
}

size_t SkipIndex::SeekFirstGE(float target, uint64_t* nodes_visited) const {
  uint64_t visits = 0;
  // Invariant while descending: every node/base entry before index `lo` of
  // the current level has len < target.
  size_t lo = 0;
  for (size_t l = levels_.size(); l-- > 0;) {
    const std::vector<Node>& level = levels_[l];
    size_t i = lo;
    while (i < level.size() && (++visits, level[i].len < target)) ++i;
    // Nodes with index < i have len < target. Enter the level below at the
    // position of the last such node (or 0 if none).
    lo = (i == 0) ? 0 : level[i - 1].pos;
  }
  // Final bounded scan of the base array (at most ~fanout entries).
  size_t i = lo;
  while (i < n_ && (++visits, lengths_[i] < target)) ++i;
  if (nodes_visited != nullptr) *nodes_visited += visits;
  return i;
}

size_t SkipIndex::SeekLastLE(float target, uint64_t* nodes_visited) const {
  // First index strictly greater than target == first index >= nextafter.
  size_t first_gt =
      SeekFirstGE(std::nextafter(target, HUGE_VALF), nodes_visited);
  if (first_gt == 0) return n_;  // nothing <= target
  return first_gt - 1;
}

}  // namespace simsel
