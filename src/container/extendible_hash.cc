#include "container/extendible_hash.h"

#include <algorithm>

#include "common/logging.h"
#include "storage/codec.h"

namespace simsel {

namespace {
// Bucket page header: local depth + entry count.
constexpr size_t kBucketHeaderBytes = 8;
// Entry on the page: 8-byte key + 4-byte payload.
constexpr size_t kEntryBytes = 12;
}  // namespace

ExtendibleHash::ExtendibleHash(size_t bucket_page_bytes)
    : page_bytes_(bucket_page_bytes),
      bucket_capacity_((bucket_page_bytes - kBucketHeaderBytes) / kEntryBytes) {
  SIMSEL_CHECK_MSG(bucket_capacity_ >= 1, "bucket page too small");
  auto bucket = std::make_shared<Bucket>();
  bucket->local_depth = 0;
  directory_.push_back(std::move(bucket));
  global_depth_ = 0;
}

size_t ExtendibleHash::DirSlot(uint64_t key) const {
  uint64_t h = Fnv1a64(key);
  if (global_depth_ == 0) return 0;
  return static_cast<size_t>(h & ((1ULL << global_depth_) - 1));
}

bool ExtendibleHash::Lookup(uint64_t key, float* value,
                            uint64_t* page_reads) const {
  if (page_reads != nullptr) *page_reads += 1;  // one bucket page fetch
  const Bucket& bucket = *directory_[DirSlot(key)];
  for (const auto& [k, v] : bucket.entries) {
    if (k == key) {
      if (value != nullptr) *value = v;
      return true;
    }
  }
  return false;
}

bool ExtendibleHash::Erase(uint64_t key) {
  Bucket& bucket = *directory_[DirSlot(key)];
  for (size_t i = 0; i < bucket.entries.size(); ++i) {
    if (bucket.entries[i].first == key) {
      bucket.entries[i] = bucket.entries.back();
      bucket.entries.pop_back();
      --size_;
      return true;
    }
  }
  return false;
}

void ExtendibleHash::Insert(uint64_t key, float value) {
  for (;;) {
    size_t slot = DirSlot(key);
    Bucket& bucket = *directory_[slot];
    for (auto& [k, v] : bucket.entries) {
      if (k == key) {
        v = value;  // overwrite, no growth
        return;
      }
    }
    if (bucket.entries.size() < bucket_capacity_) {
      bucket.entries.emplace_back(key, value);
      ++size_;
      return;
    }
    SplitBucket(slot);
    // Retry: the split may not have separated this key's neighborhood yet
    // (all keys can share a longer prefix), so loop until it fits.
  }
}

void ExtendibleHash::SplitBucket(size_t dir_slot) {
  std::shared_ptr<Bucket> old_bucket = directory_[dir_slot];
  if (old_bucket->local_depth == global_depth_) {
    // Double the directory: the upper half mirrors the lower half.
    SIMSEL_CHECK_MSG(global_depth_ < 40, "extendible hash directory blow-up");
    size_t old_size = directory_.size();
    directory_.resize(old_size * 2);
    for (size_t i = 0; i < old_size; ++i) directory_[old_size + i] = directory_[i];
    ++global_depth_;
  }
  // Split the bucket on the next hash bit.
  int new_depth = old_bucket->local_depth + 1;
  auto zero = std::make_shared<Bucket>();
  auto one = std::make_shared<Bucket>();
  zero->local_depth = new_depth;
  one->local_depth = new_depth;
  uint64_t bit = 1ULL << (new_depth - 1);
  for (const auto& e : old_bucket->entries) {
    ((Fnv1a64(e.first) & bit) ? one : zero)->entries.push_back(e);
  }
  // Repoint every directory slot that referenced the old bucket.
  for (size_t i = 0; i < directory_.size(); ++i) {
    if (directory_[i] == old_bucket) {
      directory_[i] = (i & bit) ? one : zero;
    }
  }
}

size_t ExtendibleHash::num_buckets() const {
  std::vector<const Bucket*> ptrs;
  ptrs.reserve(directory_.size());
  for (const auto& b : directory_) ptrs.push_back(b.get());
  std::sort(ptrs.begin(), ptrs.end());
  return static_cast<size_t>(
      std::unique(ptrs.begin(), ptrs.end()) - ptrs.begin());
}

size_t ExtendibleHash::SizeBytes() const {
  return num_buckets() * page_bytes_ + directory_.size() * sizeof(uint64_t);
}

}  // namespace simsel
