#ifndef SIMSEL_CONTAINER_LOSER_TREE_H_
#define SIMSEL_CONTAINER_LOSER_TREE_H_

#include <cstdint>
#include <vector>

#include "common/logging.h"

namespace simsel {

/// Tournament tree of losers for k-way merging of sorted streams.
///
/// The sort-by-id baseline (Section III-B) merges the query's inverted lists
/// in increasing set-id order through "an in memory heap"; a loser tree is
/// the classic database implementation, replacing the winner with its
/// successor in O(log k) comparisons. Keys must arrive in non-decreasing
/// order per source. Ties are broken by source index, so merge output is
/// fully deterministic.
///
/// Usage:
///   LoserTree<uint32_t> lt(k);
///   for (i in 0..k) lt.SetInitial(i, first_key_i, has_key_i);
///   lt.Build();
///   while (!lt.empty()) {
///     use(lt.top_source(), lt.top_key());
///     lt.Replace(next_key, has_next);
///   }
template <typename Key>
class LoserTree {
 public:
  explicit LoserTree(size_t k)
      : k_(k), tree_(k, 0), keys_(k), valid_(k, 0) {
    SIMSEL_CHECK_MSG(k >= 1, "loser tree needs at least one source");
  }

  /// Sets source `i`'s first key before Build(). `valid` false marks the
  /// source as exhausted from the start.
  void SetInitial(size_t i, Key key, bool valid) {
    SIMSEL_DCHECK(i < k_);
    keys_[i] = key;
    valid_[i] = valid ? 1 : 0;
  }

  /// Plays the initial tournament. Must be called once after SetInitial.
  void Build() {
    if (k_ == 1) {
      winner_ = 0;
      return;
    }
    winner_ = Play(1);
  }

  /// True when every source is exhausted.
  bool empty() const { return valid_[winner_] == 0; }

  /// Source index holding the current minimum key.
  size_t top_source() const { return winner_; }
  const Key& top_key() const { return keys_[winner_]; }

  /// Replaces the winner's key with its successor (`valid` false when that
  /// source is exhausted) and replays its path to the root.
  void Replace(Key key, bool valid) {
    size_t s = winner_;
    keys_[s] = key;
    valid_[s] = valid ? 1 : 0;
    if (k_ == 1) return;
    size_t cur = s;
    for (size_t node = (k_ + s) >> 1; node >= 1; node >>= 1) {
      size_t loser = tree_[node];
      if (Beats(loser, cur)) {
        tree_[node] = cur;
        cur = loser;
      }
    }
    winner_ = cur;
  }

 private:
  /// True when source `a` should win against source `b`.
  bool Beats(size_t a, size_t b) const {
    if (!valid_[a]) return false;
    if (!valid_[b]) return true;
    if (keys_[a] < keys_[b]) return true;
    if (keys_[b] < keys_[a]) return false;
    return a < b;
  }

  /// Recursively plays the subtree rooted at internal `node`; stores the
  /// loser at the node and returns the winner. Nodes 1..k-1 are internal,
  /// k..2k-1 are the leaves (sources).
  size_t Play(size_t node) {
    if (node >= k_) return node - k_;
    size_t l = Play(2 * node);
    size_t r = Play(2 * node + 1);
    size_t w = Beats(l, r) ? l : r;
    tree_[node] = (w == l) ? r : l;
    return w;
  }

  size_t k_;
  size_t winner_ = 0;
  std::vector<size_t> tree_;  // tree_[1..k-1]: loser at each internal node
  std::vector<Key> keys_;
  std::vector<char> valid_;
};

}  // namespace simsel

#endif  // SIMSEL_CONTAINER_LOSER_TREE_H_
