#ifndef SIMSEL_EVAL_EXPERIMENT_H_
#define SIMSEL_EVAL_EXPERIMENT_H_

#include <memory>
#include <string>
#include <vector>

#include "core/selector.h"
#include "gen/corpus.h"
#include "gen/workload.h"

namespace simsel {

/// A word-level benchmark environment mirroring Section VIII-A: the
/// synthetic corpus is split into word occurrences, each occurrence becomes
/// one database set (3-gram tokenized), exactly like the paper's IMDB word
/// table where every word location has its own identifier.
struct BenchEnv {
  std::unique_ptr<SimilaritySelector> selector;
  /// The word-occurrence records the selector indexes.
  std::vector<std::string> words;
};

struct BenchEnvOptions {
  /// Number of word occurrences to index.
  size_t num_words = 100000;
  /// Underlying corpus vocabulary size (controls duplicate/idf structure).
  size_t vocab_size = 30000;
  uint64_t seed = 42;
  bool with_sql_baseline = false;
  int qgram = 3;
};

BenchEnv MakeBenchEnv(const BenchEnvOptions& options);

/// Aggregate cost of running one workload with one algorithm configuration.
struct WorkloadStats {
  std::string label;
  double total_ms = 0.0;
  double avg_ms = 0.0;
  double avg_results = 0.0;
  double pruning_power = 0.0;  // from pooled counters, in [0, 1]
  AccessCounters counters;     // pooled over all queries
  size_t num_queries = 0;
};

/// Runs every query of `workload` with `kind`/`options` and pools timings
/// and counters.
WorkloadStats RunWorkload(const SimilaritySelector& selector,
                          const Workload& workload, double tau,
                          AlgorithmKind kind, const SelectOptions& options,
                          const std::string& label);

/// Parses `--key=value` style overrides used by the bench mains.
/// Returns `fallback` when the flag is absent or malformed.
size_t FlagValue(int argc, char** argv, const std::string& key,
                 size_t fallback);

}  // namespace simsel

#endif  // SIMSEL_EVAL_EXPERIMENT_H_
