#ifndef SIMSEL_EVAL_PRECISION_H_
#define SIMSEL_EVAL_PRECISION_H_

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "gen/error_model.h"
#include "sim/measure.h"
#include "text/tokenizer.h"

namespace simsel {

/// Non-interpolated average precision of a ranking: the mean, over the
/// relevant items, of precision at each relevant item's rank; relevant items
/// never retrieved contribute 0. This is the standard IR metric behind the
/// paper's Table I ("average precision experiments for random set selection
/// queries").
double AveragePrecision(const std::vector<uint32_t>& ranked,
                        const std::unordered_set<uint32_t>& relevant);

/// Configuration of one Table I cell.
struct PrecisionExperimentOptions {
  size_t num_queries = 100;
  uint64_t seed = 99;
};

/// Runs the Table I experiment for one measure on one labeled dataset:
/// queries are freshly corrupted copies of random clean records (same error
/// level as the dataset); the relevant set of a query is every record
/// derived from the same clean original. Returns mean average precision.
double MeanAveragePrecision(const LabeledDataset& dataset, int error_level,
                            const Collection& collection,
                            const SimilarityMeasure& measure,
                            const Tokenizer& tokenizer,
                            const PrecisionExperimentOptions& options);

}  // namespace simsel

#endif  // SIMSEL_EVAL_PRECISION_H_
