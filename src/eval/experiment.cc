#include "eval/experiment.h"

#include <cstdlib>
#include <string_view>

#include "common/timer.h"

namespace simsel {

BenchEnv MakeBenchEnv(const BenchEnvOptions& options) {
  CorpusOptions corpus_options;
  corpus_options.vocab_size = options.vocab_size;
  corpus_options.seed = options.seed;
  // Records average ~2.5 words; generate enough records, then flatten.
  corpus_options.num_records = options.num_words / 2 + 16;
  Corpus corpus = GenerateCorpus(corpus_options);

  Tokenizer word_tok(TokenizerOptions{.kind = TokenizerKind::kWord});
  BenchEnv env;
  env.words.reserve(options.num_words);
  for (const std::string& rec : corpus.records) {
    for (std::string& w : word_tok.Tokenize(rec)) {
      env.words.push_back(std::move(w));
      if (env.words.size() >= options.num_words) break;
    }
    if (env.words.size() >= options.num_words) break;
  }

  BuildOptions build;
  build.tokenizer.kind = TokenizerKind::kQGram;
  build.tokenizer.q = options.qgram;
  build.build_sql_baseline = options.with_sql_baseline;
  env.selector = std::make_unique<SimilaritySelector>(
      SimilaritySelector::Build(env.words, build));
  return env;
}

WorkloadStats RunWorkload(const SimilaritySelector& selector,
                          const Workload& workload, double tau,
                          AlgorithmKind kind, const SelectOptions& options,
                          const std::string& label) {
  WorkloadStats stats;
  stats.label = label;
  stats.num_queries = workload.queries.size();
  uint64_t total_results = 0;
  for (const std::string& query : workload.queries) {
    PreparedQuery q = selector.Prepare(query);
    WallTimer timer;
    QueryResult result = selector.SelectPrepared(q, tau, kind, options);
    stats.total_ms += timer.ElapsedMillis();
    stats.counters.Merge(result.counters);
    total_results += result.matches.size();
  }
  if (stats.num_queries > 0) {
    stats.avg_ms = stats.total_ms / static_cast<double>(stats.num_queries);
    stats.avg_results =
        static_cast<double>(total_results) /
        static_cast<double>(stats.num_queries);
  }
  stats.pruning_power = stats.counters.PruningPower();
  return stats;
}

size_t FlagValue(int argc, char** argv, const std::string& key,
                 size_t fallback) {
  const std::string prefix = "--" + key + "=";
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (arg.substr(0, prefix.size()) == prefix) {
      char* end = nullptr;
      unsigned long long v =
          std::strtoull(arg.data() + prefix.size(), &end, 10);
      if (end != arg.data() + prefix.size()) return static_cast<size_t>(v);
    }
  }
  return fallback;
}

}  // namespace simsel
