#include "eval/precision.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"
#include "common/rng.h"

namespace simsel {

double AveragePrecision(const std::vector<uint32_t>& ranked,
                        const std::unordered_set<uint32_t>& relevant) {
  if (relevant.empty()) return 0.0;
  double sum = 0.0;
  size_t hits = 0;
  for (size_t r = 0; r < ranked.size(); ++r) {
    if (relevant.count(ranked[r]) > 0) {
      ++hits;
      sum += static_cast<double>(hits) / static_cast<double>(r + 1);
    }
  }
  return sum / static_cast<double>(relevant.size());
}

double MeanAveragePrecision(const LabeledDataset& dataset, int error_level,
                            const Collection& collection,
                            const SimilarityMeasure& measure,
                            const Tokenizer& tokenizer,
                            const PrecisionExperimentOptions& options) {
  SIMSEL_CHECK(collection.size() == dataset.records.size());
  // relevant[c] = ids of all records derived from clean record c.
  std::vector<std::vector<uint32_t>> by_source(dataset.num_clean);
  for (uint32_t i = 0; i < dataset.records.size(); ++i) {
    by_source[dataset.source[i]].push_back(i);
  }

  Rng rng(options.seed);
  const double rate = ErrorRateForLevel(error_level);
  double total_ap = 0.0;
  std::vector<std::pair<double, uint32_t>> scored;
  for (size_t qi = 0; qi < options.num_queries; ++qi) {
    uint32_t clean =
        static_cast<uint32_t>(rng.NextBounded(dataset.num_clean));
    // Fresh corruption at the dataset's own error level.
    const std::string& base = dataset.records[clean];
    int edits = 0;
    for (size_t c = 0; c < base.size(); ++c) {
      if (rng.NextBernoulli(rate)) ++edits;
    }
    std::string query = base;
    for (int e = 0; e < edits; ++e) {
      query = ApplyEdit(query, static_cast<EditKind>(rng.NextBounded(4)), &rng);
    }

    PreparedQuery pq = measure.PrepareQuery(tokenizer.TokenizeCounted(query));
    scored.clear();
    scored.reserve(collection.size());
    for (SetId s = 0; s < collection.size(); ++s) {
      scored.push_back({measure.Score(pq, s), s});
    }
    std::sort(scored.begin(), scored.end(), [](const auto& a, const auto& b) {
      if (a.first != b.first) return a.first > b.first;
      return a.second < b.second;
    });
    std::vector<uint32_t> ranked;
    ranked.reserve(scored.size());
    for (const auto& [score, id] : scored) ranked.push_back(id);
    std::unordered_set<uint32_t> relevant(by_source[clean].begin(),
                                          by_source[clean].end());
    total_ap += AveragePrecision(ranked, relevant);
  }
  return total_ap / static_cast<double>(options.num_queries);
}

}  // namespace simsel
