#ifndef SIMSEL_GEN_LOAD_H_
#define SIMSEL_GEN_LOAD_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/types.h"
#include "obs/metrics_registry.h"

namespace simsel::load {

/// \file
/// Client side of the serve::Server line protocol plus a YCSB-style load
/// harness: a blocking TCP client, request/response (de)serialization, and
/// closed-loop / open-loop drivers with Zipf query popularity and a mixed
/// read/insert workload. The drivers power bench_ycsb and the server
/// integration test; they depend only on sockets, not on the server.

/// Blocking line-oriented TCP client. One instance is one connection; Send
/// and Read may be used from two different threads (one sender, one reader
/// — the open-loop pairing) but each side is single-threaded.
class Client {
 public:
  Client() = default;
  ~Client();
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  Status Connect(const std::string& host, uint16_t port);
  void Close();
  bool connected() const { return fd_ >= 0; }

  /// Writes `line` + '\n' fully (blocking).
  Status SendLine(std::string_view line);
  /// Reads one response line (blocking), newline stripped.
  Status ReadLine(std::string* line);
  /// Like ReadLine but gives up if no bytes arrive for `timeout_ms`.
  /// A timeout consumes nothing, sets `*timed_out` and returns non-OK;
  /// `*timed_out` stays false on a real transport error. Lets a reader
  /// that shares the socket with a paced sender wake up and re-check its
  /// exit condition instead of blocking in recv forever.
  Status ReadLine(std::string* line, int timeout_ms, bool* timed_out);

 private:
  int fd_ = -1;
  std::string buf_;  // bytes past the last returned line
};

/// One parsed server response.
struct Response {
  enum class Kind { kOk, kPartial, kShed, kInsert, kError, kPong };
  struct ScoredId {
    uint64_t id = 0;
    double score = 0.0;
  };

  std::string request_id;
  Kind kind = Kind::kError;
  /// PARTIAL termination reason or ERR message.
  std::string reason;
  /// Index/snapshot version (OK, PARTIAL, INS).
  uint64_t version = 0;
  /// Assigned SetId (INS).
  uint64_t insert_id = 0;
  std::vector<ScoredId> matches;
};

std::string FormatQuery(std::string_view request_id, std::string_view tenant,
                        double tau, AlgorithmKind kind, std::string_view text);
std::string FormatInsert(std::string_view request_id, std::string_view tenant,
                         std::string_view text);
/// False on a line that is not a well-formed response.
bool ParseResponse(std::string_view line, Response* out);

/// Workload + pacing knobs shared by both drivers.
struct LoadOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  /// Concurrent connections; the closed-loop driver runs one synchronous
  /// client per connection, the open-loop driver one paced sender + one
  /// reader per connection.
  size_t num_connections = 4;
  /// Closed loop: requests each connection issues back to back.
  size_t requests_per_connection = 100;
  /// Open loop: total offered request rate (req/s) across all connections,
  /// and the total number of requests to offer.
  double rate_per_sec = 0.0;
  size_t total_requests = 0;

  /// Query pool (borrowed). Queries are drawn rank-Zipf(zipf_skew) over the
  /// pool — index 0 is the most popular — the usual YCSB popularity model.
  const std::vector<std::string>* queries = nullptr;
  double zipf_skew = 0.99;
  double tau = 0.5;
  AlgorithmKind kind = AlgorithmKind::kSf;
  std::string tenant = "-";
  /// Fraction of requests that are inserts from `inserts` (round-robin;
  /// requires a dynamic-backed server). 0 = read-only.
  double insert_fraction = 0.0;
  const std::vector<std::string>* inserts = nullptr;
  uint64_t seed = 42;
};

/// Aggregated outcome of one driver run.
struct LoadStats {
  uint64_t sent = 0;
  uint64_t ok = 0;
  uint64_t partial = 0;
  uint64_t shed = 0;
  uint64_t errors = 0;
  uint64_t inserts_acked = 0;
  double wall_seconds = 0.0;
  /// Per-request latency in microseconds. Closed loop: send-to-response.
  /// Open loop: *scheduled arrival* to response, so queueing a late sender
  /// would have caused is charged to the server, not silently dropped
  /// (coordinated omission).
  obs::HistogramSnapshot latency_usec;

  double throughput_rps() const {
    return wall_seconds > 0 ? static_cast<double>(sent - errors) / wall_seconds
                            : 0.0;
  }
  void Merge(const LoadStats& other);
};

/// Closed loop: each connection issues its next request only after the
/// previous response arrives — throughput self-limits to the server's
/// capacity and the measured latency is pure service latency.
LoadStats RunClosedLoop(const LoadOptions& options);

/// Open loop: requests depart on a fixed schedule (total_requests at
/// rate_per_sec, split evenly across connections) regardless of response
/// progress, pipelining into the connection — the arrival process an
/// overloaded server actually faces, which is what makes admission-control
/// shedding observable.
LoadStats RunOpenLoop(const LoadOptions& options);

}  // namespace simsel::load

#endif  // SIMSEL_GEN_LOAD_H_
