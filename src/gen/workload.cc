#include "gen/workload.h"

#include <unordered_set>

#include "common/rng.h"
#include "gen/error_model.h"

namespace simsel {

Workload GenerateWordWorkload(const std::vector<std::string>& records,
                              const Tokenizer& tokenizer,
                              const WorkloadOptions& options) {
  // Pool: distinct words from the base table whose gram count is in-bucket.
  Tokenizer word_tok(TokenizerOptions{.kind = TokenizerKind::kWord});
  std::unordered_set<std::string> seen;
  std::vector<std::string> pool;
  for (const std::string& rec : records) {
    for (std::string& w : word_tok.Tokenize(rec)) {
      size_t grams = tokenizer.CountTokens(w);
      if (grams < static_cast<size_t>(options.min_tokens) ||
          grams > static_cast<size_t>(options.max_tokens)) {
        continue;
      }
      if (seen.insert(w).second) pool.push_back(std::move(w));
    }
  }

  Workload wl;
  if (pool.empty()) return wl;
  Rng rng(options.seed);
  wl.queries.reserve(options.num_queries);
  wl.sources.reserve(options.num_queries);
  for (size_t i = 0; i < options.num_queries; ++i) {
    const std::string& src =
        pool[static_cast<size_t>(rng.NextBounded(pool.size()))];
    wl.sources.push_back(src);
    wl.queries.push_back(ApplyModifications(src, options.modifications, &rng));
  }
  return wl;
}

}  // namespace simsel
