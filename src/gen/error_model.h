#ifndef SIMSEL_GEN_ERROR_MODEL_H_
#define SIMSEL_GEN_ERROR_MODEL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"

namespace simsel {

/// Character-level edit kinds used to synthesize dirty strings. These are the
/// "random letter insertions, deletions and swaps (termed modifications)"
/// the paper applies to query workloads; substitutions are additionally used
/// by the Table I dataset factory.
enum class EditKind {
  kInsert,
  kDelete,
  kSwap,
  kSubstitute,
};

/// Applies exactly `k` random modifications (insert/delete/swap, equal
/// probability) to `text`, as in the paper's workload construction. Edits
/// never delete the last remaining character.
std::string ApplyModifications(const std::string& text, int k, Rng* rng);

/// Applies one random edit of kind `kind` at a random position.
std::string ApplyEdit(const std::string& text, EditKind kind, Rng* rng);

/// A record collection with duplicate ground truth, mirroring the cu1..cu8
/// benchmark datasets of Chandel et al. (SIGMOD 2007) used for Table I.
struct LabeledDataset {
  /// All records: the clean originals first, then the dirty duplicates.
  std::vector<std::string> records;
  /// source[i] is the id of the clean record that records[i] derives from
  /// (source[i] == i for the clean originals themselves).
  std::vector<uint32_t> source;
  /// Number of clean originals (== the first `num_clean` records).
  size_t num_clean = 0;
};

/// Parameters of the dirty-duplicate dataset factory.
struct DirtyDatasetOptions {
  /// Error level in [1, 8]: 1 reproduces cu1 (heavy errors), 8 reproduces
  /// cu8 (light errors). Per-character error probability decays linearly
  /// with the level.
  int level = 8;
  size_t num_clean = 2000;
  /// Dirty duplicates generated per clean record.
  int duplicates_per_record = 4;
  uint64_t seed = 7;
};

/// Per-character edit probability for a cu`level` dataset.
double ErrorRateForLevel(int level);

/// Builds a labeled dataset by duplicating `clean` records with errors.
/// Each duplicate applies Binomial(len, ErrorRateForLevel(level)) edits of
/// uniformly random kind (including substitutions).
LabeledDataset MakeDirtyDataset(const std::vector<std::string>& clean,
                                const DirtyDatasetOptions& options);

}  // namespace simsel

#endif  // SIMSEL_GEN_ERROR_MODEL_H_
