#include "gen/zipf.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace simsel {

ZipfSampler::ZipfSampler(size_t n, double s) {
  SIMSEL_CHECK_MSG(n >= 1, "ZipfSampler needs at least one item");
  cdf_.resize(n);
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = total;
  }
  for (size_t i = 0; i < n; ++i) cdf_[i] /= total;
  cdf_[n - 1] = 1.0;  // guard against FP drift
}

size_t ZipfSampler::Sample(Rng* rng) const {
  double u = rng->NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) --it;
  return static_cast<size_t>(it - cdf_.begin());
}

double ZipfSampler::Pmf(size_t rank) const {
  SIMSEL_DCHECK(rank < cdf_.size());
  if (rank == 0) return cdf_[0];
  return cdf_[rank] - cdf_[rank - 1];
}

}  // namespace simsel
