#ifndef SIMSEL_GEN_WORKLOAD_H_
#define SIMSEL_GEN_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "text/tokenizer.h"

namespace simsel {

/// A set-similarity query workload: query strings drawn from the database
/// (so each has at least one exact match before modification), bucketed by
/// token count, with a fixed number of random modifications applied.
/// Mirrors Section VIII-A of the paper: "query workloads of 100 words each,
/// by randomly extracting words between lengths 1-5, 6-10, 11-15, and 16-20
/// 3-grams ... apply a fixed number of random letter insertions, deletions
/// and swaps".
struct Workload {
  std::vector<std::string> queries;
  /// The unmodified source strings (queries[i] before edits).
  std::vector<std::string> sources;
};

struct WorkloadOptions {
  size_t num_queries = 100;
  /// Inclusive token-count bucket, e.g. {11, 15} for "11-15 3-grams".
  int min_tokens = 11;
  int max_tokens = 15;
  /// Number of random modifications per query (0 keeps exact matches).
  int modifications = 0;
  uint64_t seed = 1234;
};

/// Samples words from `records` (tokenized into words first) whose gram
/// count under `tokenizer` falls in the requested bucket, then applies the
/// modifications. Sampling is with replacement if the bucket is small;
/// returns an empty workload if no word falls in the bucket.
Workload GenerateWordWorkload(const std::vector<std::string>& records,
                              const Tokenizer& tokenizer,
                              const WorkloadOptions& options);

}  // namespace simsel

#endif  // SIMSEL_GEN_WORKLOAD_H_
