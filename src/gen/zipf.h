#ifndef SIMSEL_GEN_ZIPF_H_
#define SIMSEL_GEN_ZIPF_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace simsel {

/// Samples ranks in [0, n) with probability proportional to 1/(rank+1)^s.
///
/// Natural-language token frequencies are famously Zipfian; the synthetic
/// corpus uses this sampler so that idf distributions (and therefore inverted
/// list length distributions) match the shape of the paper's IMDB/DBLP data.
/// Sampling is O(log n) via binary search over the precomputed CDF.
class ZipfSampler {
 public:
  /// `n` must be >= 1; `s` is the skew (s=0 is uniform, ~1.0 is classic Zipf).
  ZipfSampler(size_t n, double s);

  /// Draws one rank in [0, n).
  size_t Sample(Rng* rng) const;

  /// Probability mass of `rank`.
  double Pmf(size_t rank) const;

  size_t n() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;  // cdf_[i] = P(rank <= i)
};

}  // namespace simsel

#endif  // SIMSEL_GEN_ZIPF_H_
