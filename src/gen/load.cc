#include "gen/load.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "common/rng.h"
#include "gen/zipf.h"
#include "serve/server.h"

namespace simsel::load {

namespace {

using Clock = std::chrono::steady_clock;

std::string Errno(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

bool NextToken(std::string_view* rest, std::string_view* token) {
  size_t space = rest->find(' ');
  if (space == std::string_view::npos) {
    *token = *rest;
    *rest = std::string_view();
  } else {
    *token = rest->substr(0, space);
    *rest = rest->substr(space + 1);
  }
  return !token->empty();
}

bool ParseU64(std::string_view token, uint64_t* out) {
  std::string s(token);
  char* end = nullptr;
  errno = 0;
  unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (end == s.c_str() || *end != '\0' || errno == ERANGE) return false;
  *out = v;
  return true;
}

uint64_t MicrosSince(Clock::time_point from, Clock::time_point to) {
  auto d = std::chrono::duration_cast<std::chrono::microseconds>(to - from);
  return d.count() > 0 ? static_cast<uint64_t>(d.count()) : 0;
}

/// Shared workload state: which request a thread issues next.
struct RequestPicker {
  const LoadOptions& options;
  ZipfSampler zipf;
  Rng rng;
  size_t insert_cursor;

  RequestPicker(const LoadOptions& opts, size_t thread_index)
      : options(opts),
        zipf(opts.queries->empty() ? 1 : opts.queries->size(),
             opts.zipf_skew),
        rng(opts.seed * 0x9E3779B97F4A7C15ull + thread_index + 1),
        insert_cursor(thread_index) {}

  /// Formats the next request line; true when it is an insert.
  bool Next(const std::string& request_id, std::string* line) {
    bool is_insert = options.insert_fraction > 0.0 &&
                     options.inserts != nullptr && !options.inserts->empty() &&
                     rng.NextBernoulli(options.insert_fraction);
    if (is_insert) {
      const std::vector<std::string>& pool = *options.inserts;
      *line = FormatInsert(request_id, options.tenant,
                           pool[insert_cursor % pool.size()]);
      insert_cursor += options.num_connections;
      return true;
    }
    const std::vector<std::string>& pool = *options.queries;
    size_t rank = zipf.Sample(&rng) % pool.size();
    *line = FormatQuery(request_id, options.tenant, options.tau, options.kind,
                        pool[rank]);
    return false;
  }
};

void Classify(const Response& r, LoadStats* stats) {
  switch (r.kind) {
    case Response::Kind::kOk:
      ++stats->ok;
      break;
    case Response::Kind::kPartial:
      ++stats->partial;
      break;
    case Response::Kind::kShed:
      ++stats->shed;
      break;
    case Response::Kind::kInsert:
      ++stats->ok;
      ++stats->inserts_acked;
      break;
    case Response::Kind::kPong:
      break;
    case Response::Kind::kError:
      ++stats->errors;
      break;
  }
}

}  // namespace

Client::~Client() { Close(); }

Client::Client(Client&& other) noexcept
    : fd_(other.fd_), buf_(std::move(other.buf_)) {
  other.fd_ = -1;
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    buf_ = std::move(other.buf_);
    other.fd_ = -1;
  }
  return *this;
}

Status Client::Connect(const std::string& host, uint16_t port) {
  Close();
  fd_ = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) return Status::Internal(Errno("socket"));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    Close();
    return Status::InvalidArgument("bad host \"" + host + "\"");
  }
  if (connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status st = Status::Unavailable(Errno("connect"));
    Close();
    return st;
  }
  int one = 1;
  setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Status::Ok();
}

void Client::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
  buf_.clear();
}

Status Client::SendLine(std::string_view line) {
  if (fd_ < 0) return Status::Internal("not connected");
  std::string framed(line);
  framed.push_back('\n');
  size_t off = 0;
  while (off < framed.size()) {
    ssize_t n =
        send(fd_, framed.data() + off, framed.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Status::Unavailable(Errno("send"));
  }
  return Status::Ok();
}

Status Client::ReadLine(std::string* line) {
  if (fd_ < 0) return Status::Internal("not connected");
  while (true) {
    size_t nl = buf_.find('\n');
    if (nl != std::string::npos) {
      *line = buf_.substr(0, nl);
      buf_.erase(0, nl + 1);
      return Status::Ok();
    }
    char chunk[4096];
    ssize_t n = recv(fd_, chunk, sizeof(chunk), 0);
    if (n > 0) {
      buf_.append(chunk, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) return Status::Unavailable("connection closed by server");
    if (errno == EINTR) continue;
    return Status::Unavailable(Errno("recv"));
  }
}

Status Client::ReadLine(std::string* line, int timeout_ms, bool* timed_out) {
  *timed_out = false;
  if (fd_ < 0) return Status::Internal("not connected");
  while (true) {
    size_t nl = buf_.find('\n');
    if (nl != std::string::npos) {
      *line = buf_.substr(0, nl);
      buf_.erase(0, nl + 1);
      return Status::Ok();
    }
    pollfd pfd{};
    pfd.fd = fd_;
    pfd.events = POLLIN;
    int ready = poll(&pfd, 1, timeout_ms);
    if (ready == 0) {
      *timed_out = true;
      return Status::Unavailable("recv timed out");
    }
    if (ready < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable(Errno("poll"));
    }
    char chunk[4096];
    ssize_t n = recv(fd_, chunk, sizeof(chunk), 0);
    if (n > 0) {
      buf_.append(chunk, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) return Status::Unavailable("connection closed by server");
    if (errno == EINTR) continue;
    return Status::Unavailable(Errno("recv"));
  }
}

std::string FormatQuery(std::string_view request_id, std::string_view tenant,
                        double tau, AlgorithmKind kind,
                        std::string_view text) {
  char head[128];
  std::snprintf(head, sizeof(head), "%.*s Q %.*s %.17g %s ",
                static_cast<int>(request_id.size()), request_id.data(),
                static_cast<int>(tenant.size()), tenant.data(), tau,
                serve::AlgoToken(kind));
  return std::string(head) + std::string(text);
}

std::string FormatInsert(std::string_view request_id, std::string_view tenant,
                         std::string_view text) {
  std::string line(request_id);
  line += " I ";
  line += tenant;
  line += ' ';
  line += text;
  return line;
}

bool ParseResponse(std::string_view line, Response* out) {
  *out = Response();
  std::string_view rest = line;
  std::string_view id, kind;
  if (!NextToken(&rest, &id) || !NextToken(&rest, &kind)) return false;
  out->request_id = std::string(id);
  if (kind == "SHED") {
    out->kind = Response::Kind::kShed;
    return true;
  }
  if (kind == "PONG") {
    out->kind = Response::Kind::kPong;
    return true;
  }
  if (kind == "ERR") {
    out->kind = Response::Kind::kError;
    out->reason = std::string(rest);
    return true;
  }
  if (kind == "INS") {
    std::string_view sid, sversion;
    if (!NextToken(&rest, &sid) || !NextToken(&rest, &sversion)) return false;
    if (!ParseU64(sid, &out->insert_id) ||
        !ParseU64(sversion, &out->version)) {
      return false;
    }
    out->kind = Response::Kind::kInsert;
    return true;
  }
  if (kind == "PARTIAL") {
    std::string_view reason;
    if (!NextToken(&rest, &reason)) return false;
    out->reason = std::string(reason);
    out->kind = Response::Kind::kPartial;
  } else if (kind == "OK") {
    out->kind = Response::Kind::kOk;
  } else {
    return false;
  }
  std::string_view sversion, scount;
  if (!NextToken(&rest, &sversion) || !NextToken(&rest, &scount)) return false;
  uint64_t count = 0;
  if (!ParseU64(sversion, &out->version) || !ParseU64(scount, &count)) {
    return false;
  }
  out->matches.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    std::string_view pair;
    if (!NextToken(&rest, &pair)) return false;
    size_t colon = pair.find(':');
    if (colon == std::string_view::npos) return false;
    Response::ScoredId m;
    if (!ParseU64(pair.substr(0, colon), &m.id)) return false;
    std::string score(pair.substr(colon + 1));
    char* end = nullptr;
    m.score = std::strtod(score.c_str(), &end);
    if (end == score.c_str() || *end != '\0') return false;
    out->matches.push_back(m);
  }
  return rest.empty() && out->matches.size() == count;
}

void LoadStats::Merge(const LoadStats& other) {
  sent += other.sent;
  ok += other.ok;
  partial += other.partial;
  shed += other.shed;
  errors += other.errors;
  inserts_acked += other.inserts_acked;
  wall_seconds = std::max(wall_seconds, other.wall_seconds);
  latency_usec.Merge(other.latency_usec);
}

LoadStats RunClosedLoop(const LoadOptions& options) {
  SIMSEL_CHECK_MSG(options.queries != nullptr && !options.queries->empty(),
                   "closed loop needs a query pool");
  size_t threads = std::max<size_t>(1, options.num_connections);
  std::vector<LoadStats> per_thread(threads);
  std::vector<std::unique_ptr<obs::Histogram>> hists;
  for (size_t i = 0; i < threads; ++i) {
    hists.push_back(std::make_unique<obs::Histogram>());
  }
  Clock::time_point start = Clock::now();
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (size_t t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      LoadStats& stats = per_thread[t];
      Client client;
      if (!client.Connect(options.host, options.port).ok()) {
        stats.errors += options.requests_per_connection;
        return;
      }
      RequestPicker picker(options, t);
      std::string line, resp_line;
      Response resp;
      for (size_t k = 0; k < options.requests_per_connection; ++k) {
        std::string rid = std::to_string(t) + "-" + std::to_string(k);
        picker.Next(rid, &line);
        Clock::time_point sent_at = Clock::now();
        if (!client.SendLine(line).ok()) {
          ++stats.errors;
          return;
        }
        ++stats.sent;
        if (!client.ReadLine(&resp_line).ok()) {
          ++stats.errors;
          return;
        }
        hists[t]->Observe(MicrosSince(sent_at, Clock::now()));
        if (!ParseResponse(resp_line, &resp) || resp.request_id != rid) {
          ++stats.errors;
          continue;
        }
        Classify(resp, &stats);
      }
    });
  }
  for (std::thread& th : pool) th.join();
  LoadStats total;
  for (size_t t = 0; t < threads; ++t) {
    per_thread[t].wall_seconds =
        std::chrono::duration<double>(Clock::now() - start).count();
    per_thread[t].latency_usec = hists[t]->Snapshot();
    total.Merge(per_thread[t]);
  }
  return total;
}

LoadStats RunOpenLoop(const LoadOptions& options) {
  SIMSEL_CHECK_MSG(options.queries != nullptr && !options.queries->empty(),
                   "open loop needs a query pool");
  SIMSEL_CHECK_MSG(options.rate_per_sec > 0 && options.total_requests > 0,
                   "open loop needs rate_per_sec and total_requests");
  size_t conns = std::max<size_t>(1, options.num_connections);
  double per_conn_rate = options.rate_per_sec / static_cast<double>(conns);
  auto interval = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(1.0 / per_conn_rate));
  std::vector<LoadStats> per_conn(conns);
  std::vector<std::unique_ptr<obs::Histogram>> hists;
  for (size_t i = 0; i < conns; ++i) {
    hists.push_back(std::make_unique<obs::Histogram>());
  }
  Clock::time_point start = Clock::now();
  std::vector<std::thread> pool;
  for (size_t c = 0; c < conns; ++c) {
    size_t quota = options.total_requests / conns +
                   (c < options.total_requests % conns ? 1 : 0);
    pool.emplace_back([&, c, quota] {
      LoadStats& stats = per_conn[c];
      Client client;
      if (!client.Connect(options.host, options.port).ok() || quota == 0) {
        stats.errors += quota;
        return;
      }
      // Scheduled departure times: request k leaves at start + k/rate even
      // when earlier responses are outstanding — that pipelining is what
      // "open loop" means, and latency is charged from the schedule so a
      // slow server cannot hide queueing delay (coordinated omission).
      std::mutex mu;
      std::unordered_map<std::string, Clock::time_point> departed;
      std::atomic<size_t> sent_ok{0};
      std::atomic<bool> sender_done{false};
      std::thread reader([&] {
        std::string line;
        Response resp;
        size_t received = 0;
        while (true) {
          if (sender_done.load(std::memory_order_acquire) &&
              received >= sent_ok.load(std::memory_order_acquire)) {
            break;
          }
          // A plain blocking read here can hang forever: after the final
          // response is consumed, the reader may re-check before the sender
          // has stored sender_done (it is preempted between send() and the
          // store), see "not done", and block in recv with no response left
          // to wake it. The timed read turns that race into a 50 ms spin
          // around the exit condition.
          bool timed_out = false;
          if (!client.ReadLine(&line, 50, &timed_out).ok()) {
            if (timed_out) continue;
            size_t expect = sent_ok.load(std::memory_order_acquire);
            stats.errors += expect > received ? expect - received : 0;
            return;
          }
          ++received;
          if (!ParseResponse(line, &resp)) {
            ++stats.errors;
            continue;
          }
          Clock::time_point scheduled;
          bool known = false;
          {
            std::lock_guard<std::mutex> lock(mu);
            auto it = departed.find(resp.request_id);
            if (it != departed.end()) {
              scheduled = it->second;
              known = true;
              departed.erase(it);
            }
          }
          if (known) {
            hists[c]->Observe(MicrosSince(scheduled, Clock::now()));
          }
          Classify(resp, &stats);
        }
      });
      RequestPicker picker(options, c);
      std::string line;
      for (size_t k = 0; k < quota; ++k) {
        Clock::time_point scheduled = start + interval * (k + 1);
        std::this_thread::sleep_until(scheduled);
        std::string rid = std::to_string(c) + "-" + std::to_string(k);
        picker.Next(rid, &line);
        {
          std::lock_guard<std::mutex> lock(mu);
          departed.emplace(rid, scheduled);
        }
        if (!client.SendLine(line).ok()) {
          ++stats.errors;
          {
            std::lock_guard<std::mutex> lock(mu);
            departed.erase(rid);
          }
          break;
        }
        ++stats.sent;
        sent_ok.fetch_add(1, std::memory_order_release);
      }
      sender_done.store(true, std::memory_order_release);
      reader.join();
    });
  }
  for (std::thread& th : pool) th.join();
  LoadStats total;
  for (size_t c = 0; c < conns; ++c) {
    per_conn[c].wall_seconds =
        std::chrono::duration<double>(Clock::now() - start).count();
    per_conn[c].latency_usec = hists[c]->Snapshot();
    total.Merge(per_conn[c]);
  }
  return total;
}

}  // namespace simsel::load
