#include "gen/corpus.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <unordered_set>

#include "common/logging.h"
#include "common/rng.h"
#include "gen/zipf.h"

namespace simsel {

namespace {

// Letter frequencies of English text, used so generated words share 3-grams
// at realistic rates instead of being uniformly random strings.
constexpr const char kLetters[] = "abcdefghijklmnopqrstuvwxyz";
constexpr double kLetterWeights[26] = {
    8.2, 1.5, 2.8, 4.3, 12.7, 2.2, 2.0, 6.1, 7.0, 0.15, 0.77, 4.0, 2.4,
    6.7, 7.5, 1.9, 0.1, 6.0,  6.3, 9.1, 2.8, 1.0, 2.4,  0.15, 2.0, 0.07};

char SampleLetter(Rng* rng, const double* cdf) {
  double u = rng->NextDouble();
  for (int i = 0; i < 26; ++i) {
    if (u <= cdf[i]) return kLetters[i];
  }
  return 'e';
}

std::string MakeWord(Rng* rng, const CorpusOptions& opt, const double* cdf) {
  double len_f =
      std::exp(opt.word_len_log_mu + opt.word_len_log_sigma * rng->NextGaussian());
  int len = static_cast<int>(std::lround(len_f));
  len = std::clamp(len, opt.min_word_len, opt.max_word_len);
  std::string w;
  w.reserve(len);
  for (int i = 0; i < len; ++i) w.push_back(SampleLetter(rng, cdf));
  return w;
}

}  // namespace

Corpus GenerateCorpus(const CorpusOptions& options) {
  SIMSEL_CHECK(options.vocab_size >= 1);
  SIMSEL_CHECK(options.min_words >= 1 &&
               options.min_words <= options.max_words);
  Rng rng(options.seed);

  double letter_cdf[26];
  double total = 0;
  for (double w : kLetterWeights) total += w;
  double acc = 0;
  for (int i = 0; i < 26; ++i) {
    acc += kLetterWeights[i] / total;
    letter_cdf[i] = acc;
  }
  letter_cdf[25] = 1.0;

  Corpus corpus;
  corpus.vocabulary.reserve(options.vocab_size);
  std::unordered_set<std::string> seen;
  seen.reserve(options.vocab_size * 2);
  while (corpus.vocabulary.size() < options.vocab_size) {
    std::string w = MakeWord(&rng, options, letter_cdf);
    if (seen.insert(w).second) corpus.vocabulary.push_back(std::move(w));
  }

  ZipfSampler zipf(options.vocab_size, options.zipf_s);
  corpus.records.reserve(options.num_records);
  for (size_t r = 0; r < options.num_records; ++r) {
    int nwords = static_cast<int>(
        rng.NextInt(options.min_words, options.max_words));
    std::string rec;
    for (int w = 0; w < nwords; ++w) {
      if (w > 0) rec.push_back(' ');
      rec += corpus.vocabulary[zipf.Sample(&rng)];
    }
    corpus.records.push_back(std::move(rec));
  }
  return corpus;
}

Result<Corpus> LoadCorpusFromFile(const std::string& path,
                                  size_t max_records) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open corpus file: " + path);
  Corpus corpus;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    corpus.records.push_back(line);
    if (max_records != 0 && corpus.records.size() >= max_records) break;
  }
  return corpus;
}

}  // namespace simsel
