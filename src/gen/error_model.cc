#include "gen/error_model.h"

#include <algorithm>

#include "common/logging.h"

namespace simsel {

namespace {

char RandomLetter(Rng* rng) {
  return static_cast<char>('a' + rng->NextBounded(26));
}

}  // namespace

std::string ApplyEdit(const std::string& text, EditKind kind, Rng* rng) {
  std::string out = text;
  switch (kind) {
    case EditKind::kInsert: {
      size_t pos = static_cast<size_t>(rng->NextBounded(out.size() + 1));
      out.insert(out.begin() + pos, RandomLetter(rng));
      break;
    }
    case EditKind::kDelete: {
      if (out.size() <= 1) break;  // never empty the string
      size_t pos = static_cast<size_t>(rng->NextBounded(out.size()));
      out.erase(out.begin() + pos);
      break;
    }
    case EditKind::kSwap: {
      if (out.size() < 2) break;
      size_t pos = static_cast<size_t>(rng->NextBounded(out.size() - 1));
      std::swap(out[pos], out[pos + 1]);
      break;
    }
    case EditKind::kSubstitute: {
      if (out.empty()) break;
      size_t pos = static_cast<size_t>(rng->NextBounded(out.size()));
      out[pos] = RandomLetter(rng);
      break;
    }
  }
  return out;
}

std::string ApplyModifications(const std::string& text, int k, Rng* rng) {
  std::string out = text;
  for (int i = 0; i < k; ++i) {
    // The paper's workload modifications are insertions, deletions and swaps.
    EditKind kind = static_cast<EditKind>(rng->NextBounded(3));
    out = ApplyEdit(out, kind, rng);
  }
  return out;
}

double ErrorRateForLevel(int level) {
  SIMSEL_CHECK_MSG(level >= 1 && level <= 8, "error level must be in [1,8]");
  // cu1 (level 1): ~22% of characters perturbed; cu8 (level 8): ~1%.
  return 0.22 - 0.03 * (level - 1);
}

LabeledDataset MakeDirtyDataset(const std::vector<std::string>& clean,
                                const DirtyDatasetOptions& options) {
  SIMSEL_CHECK(!clean.empty());
  size_t num_clean = std::min(options.num_clean, clean.size());
  double rate = ErrorRateForLevel(options.level);
  Rng rng(options.seed);

  LabeledDataset ds;
  ds.num_clean = num_clean;
  ds.records.reserve(num_clean * (1 + options.duplicates_per_record));
  ds.source.reserve(ds.records.capacity());

  for (size_t i = 0; i < num_clean; ++i) {
    ds.records.push_back(clean[i]);
    ds.source.push_back(static_cast<uint32_t>(i));
  }
  for (size_t i = 0; i < num_clean; ++i) {
    for (int d = 0; d < options.duplicates_per_record; ++d) {
      const std::string& base = clean[i];
      // Binomial(len, rate) edit count via per-character coin flips.
      int edits = 0;
      for (size_t c = 0; c < base.size(); ++c) {
        if (rng.NextBernoulli(rate)) ++edits;
      }
      std::string dirty = base;
      for (int e = 0; e < edits; ++e) {
        EditKind kind = static_cast<EditKind>(rng.NextBounded(4));
        dirty = ApplyEdit(dirty, kind, &rng);
      }
      ds.records.push_back(std::move(dirty));
      ds.source.push_back(static_cast<uint32_t>(i));
    }
  }
  return ds;
}

}  // namespace simsel
