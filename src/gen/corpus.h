#ifndef SIMSEL_GEN_CORPUS_H_
#define SIMSEL_GEN_CORPUS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace simsel {

/// Parameters of the synthetic text corpus.
///
/// The paper evaluates on the IMDB actor/movie table (7M rows) and DBLP.
/// Neither is available offline, so we generate a corpus with the same
/// statistical shape: a Zipf-distributed vocabulary of letter strings with a
/// realistic word-length distribution, combined into short multi-word records
/// (names/titles). See DESIGN.md section 2 for the substitution argument.
struct CorpusOptions {
  size_t num_records = 100000;
  size_t vocab_size = 20000;
  /// Zipf skew of word frequencies (≈1.0 matches natural text).
  double zipf_s = 1.0;
  /// Records contain between min_words and max_words words, uniform.
  int min_words = 1;
  int max_words = 4;
  /// Word lengths are drawn from round(exp(N(mu, sigma))) clamped to
  /// [min_word_len, max_word_len]; defaults give a mode around 6 chars.
  double word_len_log_mu = 1.8;
  double word_len_log_sigma = 0.35;
  int min_word_len = 2;
  int max_word_len = 20;
  uint64_t seed = 42;
};

/// A generated (or loaded) collection of record strings.
struct Corpus {
  std::vector<std::string> records;
  /// The vocabulary the records were drawn from (empty for loaded corpora).
  std::vector<std::string> vocabulary;
};

/// Generates a deterministic synthetic corpus from `options`.
Corpus GenerateCorpus(const CorpusOptions& options);

/// Loads a corpus from a text file, one record per line. Blank lines are
/// skipped. Returns NotFound if the file cannot be opened.
Result<Corpus> LoadCorpusFromFile(const std::string& path,
                                  size_t max_records = 0);

}  // namespace simsel

#endif  // SIMSEL_GEN_CORPUS_H_
