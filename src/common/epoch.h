#ifndef SIMSEL_COMMON_EPOCH_H_
#define SIMSEL_COMMON_EPOCH_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <vector>

namespace simsel {

/// Epoch-based memory reclamation for read-mostly swap-on-update structures
/// (the DynamicSelector's main+delta segment swap).
///
/// The protocol is the classic one (EpochManager-style): a writer that
/// replaces a shared structure retires the old version instead of deleting
/// it, stamping it with the current global epoch and then advancing the
/// epoch. Readers pin the global epoch in a slot for the duration of their
/// access (RAII `Guard`). A retired object is freed only once every active
/// reader's pinned epoch is newer than the object's retire stamp — at that
/// point no reader that could still hold a pointer into it exists, so the
/// free is safe without ever blocking readers.
///
/// Memory-ordering contract (the reason this is race-free, also asserted by
/// the TSAN leg of scripts/check.sh):
///
///  - The writer publishes the replacement pointer with a seq_cst store,
///    *then* retires the old one (stamp = seq_cst load of the epoch) and
///    advances the epoch with a seq_cst RMW, *then* scans the slots.
///  - A reader claims a slot with a seq_cst store of the epoch it loaded,
///    then re-checks the epoch (re-stamping until stable), and only then
///    loads the shared pointer (seq_cst).
///
/// In the seq_cst total order either the reader's slot store precedes the
/// writer's slot scan — the writer sees the pin and keeps the old version —
/// or the writer's scan precedes the reader's pin, in which case the
/// reader's later pointer load must observe the replacement. Either way no
/// reader is left holding freed memory. Stale pins (a reader stamping an
/// epoch that advanced mid-claim) only delay reclamation; they never allow
/// a premature free.
///
/// One writer at a time: Retire/ReclaimAll are expected to be serialized by
/// the caller's writer mutex (they additionally take an internal mutex, so
/// misuse degrades to contention, not corruption). Readers are wait-free
/// apart from slot claiming: the fast path is a CAS into a fixed array of
/// kSlots cells, and when every cell is taken (more than kSlots guards live
/// at once — a serving front end under heavy fan-out) the claim *grows*
/// into a mutex-guarded overflow list instead of spinning. Acquisition
/// therefore always completes in bounded time, even with arbitrarily many
/// guards held simultaneously; it never blocks waiting for another guard
/// to release, so piling more concurrent readers onto the manager can slow
/// reclamation but can never deadlock it.
class EpochManager {
 public:
  /// Capacity of the wait-free fast path. More than kSlots concurrently
  /// live Guards is supported: the excess pins land in the overflow list
  /// (one mutex acquisition per claim/scan — slower, never stuck).
  static constexpr size_t kSlots = 128;

  EpochManager() = default;
  /// Frees everything still retired. The caller must ensure no Guard is
  /// live (the owning structure is being destroyed).
  ~EpochManager();

  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;

  /// RAII reader pin. Cheap (two seq_cst stores + a couple of loads) but
  /// not free — take one per query, not per posting.
  class Guard {
   public:
    explicit Guard(EpochManager& mgr);
    ~Guard();

    Guard(Guard&& other) noexcept
        : mgr_(other.mgr_), slot_(other.slot_), overflow_(other.overflow_) {
      other.mgr_ = nullptr;
    }
    Guard& operator=(Guard&&) = delete;
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

   private:
    EpochManager* mgr_;
    size_t slot_ = 0;
    /// Non-null when this guard's pin lives in the overflow list rather
    /// than slots_ (the >kSlots case); points at a stable node.
    std::atomic<uint64_t>* overflow_ = nullptr;
  };

  /// Registers `free` to run once every reader pinned at or before the
  /// current epoch has exited, then advances the epoch and opportunistically
  /// reclaims whatever became safe. Call from the writer after the
  /// replacement pointer is published.
  void Retire(std::function<void()> free);

  /// Frees every retired object whose grace period has elapsed; returns how
  /// many were freed. Retire calls this automatically; exposed so tests and
  /// idle writers can drain the list.
  size_t Reclaim();

  uint64_t global_epoch() const {
    return global_epoch_.load(std::memory_order_seq_cst);
  }
  /// Retired-but-not-yet-freed count (test / introspection hook).
  size_t retired_count() const;
  /// Nodes ever grown into the overflow list (test / introspection hook).
  /// Nodes are reused, never freed before destruction, so this is the
  /// high-water mark of concurrent guards beyond kSlots.
  size_t overflow_capacity() const;

 private:
  /// Smallest epoch any live Guard has pinned, or UINT64_MAX when idle.
  uint64_t MinActiveEpoch() const;
  /// Claims (or grows) a free overflow node stamped with the current epoch.
  std::atomic<uint64_t>* ClaimOverflowPin();

  std::atomic<uint64_t> global_epoch_{1};
  /// 0 = slot free, otherwise the pinned epoch.
  std::array<std::atomic<uint64_t>, kSlots> slots_{};

  /// Pins beyond kSlots. std::deque: node addresses are stable across
  /// growth, so a Guard can hold a bare pointer and release (store 0)
  /// without the mutex. Nodes are recycled, never erased.
  mutable std::mutex overflow_mu_;
  std::deque<std::atomic<uint64_t>> overflow_;

  struct Retired {
    uint64_t epoch;
    std::function<void()> free;
  };
  mutable std::mutex retire_mu_;
  std::vector<Retired> retired_;
};

}  // namespace simsel

#endif  // SIMSEL_COMMON_EPOCH_H_
