#include "common/cli_flags.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <cstring>

namespace simsel::cli {

namespace {

/// The last occurrence wins, matching the historical FlagValue behavior.
const char* FindValue(int argc, char* const* argv, const std::string& prefix) {
  const char* value = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      value = argv[i] + prefix.size();
    }
  }
  return value;
}

}  // namespace

bool ParseCountFlag(int argc, char* const* argv, const char* key,
                    uint64_t fallback, uint64_t min_value, uint64_t max_value,
                    uint64_t* out, std::string* error) {
  *out = fallback;
  const std::string prefix = std::string("--") + key + "=";
  const char* value = FindValue(argc, argv, prefix);
  if (value == nullptr) return true;
  // Digits only: strtoull would silently accept "  12", "+12", "-1" (as a
  // huge wrap) and "0x10"; none of those is a count a user meant.
  bool digits_only = *value != '\0';
  for (const char* p = value; *p != '\0'; ++p) {
    if (!std::isdigit(static_cast<unsigned char>(*p))) digits_only = false;
  }
  errno = 0;
  char* end = nullptr;
  unsigned long long raw = std::strtoull(value, &end, 10);
  if (!digits_only || end == value || *end != '\0' || errno == ERANGE) {
    *error = std::string("bad --") + key + " value \"" + value +
             "\": not an unsigned integer";
    return false;
  }
  if (raw < min_value || raw > max_value) {
    *error = std::string("bad --") + key + " value \"" + value +
             "\": need an integer in [" + std::to_string(min_value) + ", " +
             std::to_string(max_value) + "]";
    return false;
  }
  *out = static_cast<uint64_t>(raw);
  return true;
}

bool ParseTauFlag(int argc, char* const* argv, double fallback, double* tau,
                  std::string* error) {
  *tau = fallback;
  const char* value = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--tau=", 6) == 0) {
      value = argv[i] + 6;
    } else if (std::strcmp(argv[i], "--tau") == 0 && i + 1 < argc) {
      value = argv[i + 1];
    }
  }
  if (value == nullptr) return true;
  char* end = nullptr;
  double raw = std::strtod(value, &end);
  if (end == value || *end != '\0' || !std::isfinite(raw)) {
    *error = std::string("bad --tau value \"") + value + "\": not a number";
    return false;
  }
  if (raw <= 0.0 || raw > 100.0) {
    *error = std::string("bad --tau value \"") + value +
             "\": need a fraction in (0,1] or a percentage in (1,100]";
    return false;
  }
  *tau = raw > 1.0 ? raw / 100.0 : raw;
  return true;
}

bool HasFlag(int argc, char* const* argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

std::string StringFlag(int argc, char* const* argv, const char* key) {
  const std::string prefix = std::string("--") + key + "=";
  const char* value = FindValue(argc, argv, prefix);
  return value == nullptr ? std::string() : std::string(value);
}

}  // namespace simsel::cli
