#ifndef SIMSEL_COMMON_CLI_FLAGS_H_
#define SIMSEL_COMMON_CLI_FLAGS_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace simsel::cli {

/// \file
/// Strict command-line flag parsing shared by simsel_cli and the bench
/// binaries' serving flags. The contract mirrors the PR 4 --tau hardening:
/// a present flag must parse in full (no trailing junk, no partial
/// consumption) and fall inside its documented range, otherwise parsing
/// fails with a one-line diagnostic in *error — a typo like `--shards=4x`
/// or `--port=99999` can never silently run with some default. An absent
/// flag is never an error; the fallback is used.

/// `--key=value` unsigned integer flag, strict: the value must be digits
/// only (no sign, no space form) and lie in [min_value, max_value]. Returns
/// false with `*error` set on any malformed or out-of-range value; true
/// otherwise with `*out` holding the parsed value or `fallback`.
bool ParseCountFlag(int argc, char* const* argv, const char* key,
                    uint64_t fallback, uint64_t min_value, uint64_t max_value,
                    uint64_t* out, std::string* error);

/// --tau in either `--tau=X` or `--tau X` form. A value in (0, 1] is a
/// fraction; one in (1, 100] is a percentage (the historical `--tau=75`
/// form). Strict full-consumption parse; non-finite or out-of-range values
/// fail with `*error` set. The flag being absent keeps `fallback`.
bool ParseTauFlag(int argc, char* const* argv, double fallback, double* tau,
                  std::string* error);

/// Exact-match boolean flag (`--dynamic`).
bool HasFlag(int argc, char* const* argv, const char* flag);

/// `--key=value` string flag; empty string when absent.
std::string StringFlag(int argc, char* const* argv, const char* key);

}  // namespace simsel::cli

#endif  // SIMSEL_COMMON_CLI_FLAGS_H_
