#ifndef SIMSEL_COMMON_BITSET_H_
#define SIMSEL_COMMON_BITSET_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/logging.h"

namespace simsel {

/// Fixed-width bitset sized at runtime; the candidate bookkeeping bit vector
/// b[1,n] of the NRA/TA family (one bit per query list). Queries rarely have
/// more than a few dozen tokens, so this is one or two words in practice.
class DynamicBitset {
 public:
  DynamicBitset() = default;
  explicit DynamicBitset(size_t n) : n_(n), words_((n + 63) / 64, 0) {}

  size_t size() const { return n_; }

  void Set(size_t i) {
    SIMSEL_DCHECK(i < n_);
    words_[i >> 6] |= (1ULL << (i & 63));
  }

  void Clear(size_t i) {
    SIMSEL_DCHECK(i < n_);
    words_[i >> 6] &= ~(1ULL << (i & 63));
  }

  /// Clears every bit without reallocating (cheap reuse in merge loops).
  void ResetAll() { std::fill(words_.begin(), words_.end(), 0); }

  bool Test(size_t i) const {
    SIMSEL_DCHECK(i < n_);
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  /// Number of set bits.
  size_t Count() const {
    size_t c = 0;
    for (uint64_t w : words_) c += static_cast<size_t>(__builtin_popcountll(w));
    return c;
  }

  bool All() const { return Count() == n_; }
  bool None() const { return Count() == 0; }

 private:
  size_t n_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace simsel

#endif  // SIMSEL_COMMON_BITSET_H_
