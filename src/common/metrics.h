#ifndef SIMSEL_COMMON_METRICS_H_
#define SIMSEL_COMMON_METRICS_H_

#include <cstdint>
#include <string>

namespace simsel {

/// Access accounting shared by index cursors, hash probes and the selection
/// algorithms. Figures 7-9 of the paper are driven by these counters
/// (pruning power, sequential vs random I/O); every algorithm fills one
/// AccessCounters per query.
struct AccessCounters {
  /// Inverted-list entries decoded by sequential scans.
  uint64_t elements_read = 0;
  /// Inverted-list entries jumped over via the skip index (never decoded).
  uint64_t elements_skipped = 0;
  /// Total entries across the query's inverted lists (denominator for
  /// pruning power).
  uint64_t elements_total = 0;
  /// Simulated sequential page reads (list scans).
  uint64_t seq_page_reads = 0;
  /// Simulated random page reads (hash-index probes, skip jumps).
  uint64_t rand_page_reads = 0;
  /// Random-access membership probes (TA/iTA extendible-hash lookups).
  uint64_t hash_probes = 0;
  /// Candidates ever inserted into the candidate set.
  uint64_t candidate_inserts = 0;
  /// Candidates discarded by an upper-bound test.
  uint64_t candidate_prunes = 0;
  /// Full or partial sweeps over the candidate set (bookkeeping cost).
  uint64_t candidate_scan_steps = 0;
  /// Rows touched by the relational baseline (B-tree range scans).
  uint64_t rows_scanned = 0;
  /// Buffer-pool page hits/misses, when a BufferPool is wired into
  /// SelectOptions (misses are the simulated physical disk reads).
  uint64_t pool_hits = 0;
  uint64_t pool_misses = 0;
  /// Number of results reported.
  uint64_t results = 0;

  /// Adds `other` into this counter set, field by field.
  void Merge(const AccessCounters& other);

  /// Fraction of the query's list elements that were never read, in [0, 1].
  /// Matches the paper's "percentage of elements pruned" (Figure 7).
  double PruningPower() const;

  /// One-line human-readable rendering for debugging.
  std::string ToString() const;
};

}  // namespace simsel

#endif  // SIMSEL_COMMON_METRICS_H_
