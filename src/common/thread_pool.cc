#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>

#include "common/logging.h"
#include "common/timer.h"
#include "obs/metrics_registry.h"

namespace simsel {

namespace {

// Process-wide pool metrics shared by every ThreadPool instance.
struct PoolMetrics {
  obs::Counter* tasks;
  obs::Gauge* queue_depth;
  obs::Histogram* task_usec;
};

const PoolMetrics& GetPoolMetrics() {
  static const PoolMetrics m = [] {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
    return PoolMetrics{reg.GetCounter("simsel_thread_pool_tasks_total"),
                       reg.GetGauge("simsel_thread_pool_queue_depth"),
                       reg.GetHistogram("simsel_thread_pool_task_usec")};
  }();
  return m;
}

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  Shutdown(ShutdownMode::kDrain);
  task_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

bool ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (shutdown_) return false;
    queue_.push_back(std::move(task));
  }
  GetPoolMetrics().queue_depth->Add(1);
  task_ready_.notify_one();
  return true;
}

size_t ThreadPool::Shutdown(ShutdownMode mode) {
  size_t dropped = 0;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (!shutdown_) {
      shutdown_ = true;
      if (mode == ShutdownMode::kAbort) {
        dropped = queue_.size();
        queue_.clear();
      }
    }
    // Quiescence: nothing queued (drained or dropped) and nothing running.
    // Waiting under the same mutex as WorkerLoop's bookkeeping means a task
    // dequeued before an abort is always waited for — the "enqueued during
    // shutdown" race resolves to ran-to-completion or never-started.
    task_ready_.notify_all();
    all_idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
  }
  if (dropped > 0) {
    GetPoolMetrics().queue_depth->Add(-static_cast<int64_t>(dropped));
  }
  return dropped;
}

bool ThreadPool::shutting_down() const {
  std::unique_lock<std::mutex> lock(mu_);
  return shutdown_;
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_ready_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    const PoolMetrics& metrics = GetPoolMetrics();
    metrics.queue_depth->Add(-1);
    WallTimer task_timer;
    task();
    metrics.tasks->Increment();
    metrics.task_usec->Observe(
        static_cast<uint64_t>(task_timer.ElapsedMicros()));
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) all_idle_.notify_all();
    }
  }
}

void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  const size_t num_threads = pool->num_threads();
  const size_t chunk = std::max<size_t>(1, (n + num_threads - 1) / num_threads);
  for (size_t begin = 0; begin < n; begin += chunk) {
    size_t end = std::min(n, begin + chunk);
    pool->Submit([begin, end, &fn] {
      for (size_t i = begin; i < end; ++i) fn(i);
    });
  }
  pool->Wait();
}

}  // namespace simsel
