#ifndef SIMSEL_COMMON_RNG_H_
#define SIMSEL_COMMON_RNG_H_

#include <cstdint>

#include "common/logging.h"

namespace simsel {

/// Expands a 64-bit seed into a well-mixed stream; used to seed Xoshiro.
uint64_t SplitMix64Next(uint64_t* state);

/// Deterministic, seedable PRNG (xoshiro256**). All randomized components of
/// the library (data generators, workloads, property tests) draw from this
/// generator so that every experiment is exactly reproducible from its seed.
class Rng {
 public:
  /// Seeds the generator. Two Rng instances built from the same seed produce
  /// identical streams on every platform.
  explicit Rng(uint64_t seed);

  /// Uniform in [0, 2^64).
  uint64_t NextU64();

  /// Uniform in [0, bound). `bound` must be positive. Uses rejection sampling
  /// (Lemire-style) to avoid modulo bias.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Returns true with probability p (clamped to [0,1]).
  bool NextBernoulli(double p);

  /// Standard normal via Box-Muller (one value per call; no caching so the
  /// stream position stays a simple function of the call count).
  double NextGaussian();

  /// Fisher-Yates shuffle of `n` items addressed through `swap(i, j)`.
  template <typename SwapFn>
  void Shuffle(size_t n, SwapFn swap) {
    if (n < 2) return;
    for (size_t i = n - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextBounded(i + 1));
      if (i != j) swap(i, j);
    }
  }

 private:
  uint64_t s_[4];
};

}  // namespace simsel

#endif  // SIMSEL_COMMON_RNG_H_
