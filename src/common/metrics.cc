#include "common/metrics.h"

#include <cstdio>

namespace simsel {

void AccessCounters::Merge(const AccessCounters& other) {
  elements_read += other.elements_read;
  elements_skipped += other.elements_skipped;
  elements_total += other.elements_total;
  seq_page_reads += other.seq_page_reads;
  rand_page_reads += other.rand_page_reads;
  hash_probes += other.hash_probes;
  candidate_inserts += other.candidate_inserts;
  candidate_prunes += other.candidate_prunes;
  candidate_scan_steps += other.candidate_scan_steps;
  rows_scanned += other.rows_scanned;
  pool_hits += other.pool_hits;
  pool_misses += other.pool_misses;
  results += other.results;
}

double AccessCounters::PruningPower() const {
  if (elements_total == 0) return 0.0;
  uint64_t read = elements_read;
  if (read > elements_total) read = elements_total;
  return 1.0 - static_cast<double>(read) / static_cast<double>(elements_total);
}

std::string AccessCounters::ToString() const {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "read=%llu skipped=%llu total=%llu seq_pages=%llu "
                "rand_pages=%llu probes=%llu cand_ins=%llu cand_prune=%llu "
                "cand_scan=%llu rows=%llu pool_hits=%llu pool_misses=%llu "
                "results=%llu pruning=%.3f",
                (unsigned long long)elements_read,
                (unsigned long long)elements_skipped,
                (unsigned long long)elements_total,
                (unsigned long long)seq_page_reads,
                (unsigned long long)rand_page_reads,
                (unsigned long long)hash_probes,
                (unsigned long long)candidate_inserts,
                (unsigned long long)candidate_prunes,
                (unsigned long long)candidate_scan_steps,
                (unsigned long long)rows_scanned,
                (unsigned long long)pool_hits,
                (unsigned long long)pool_misses, (unsigned long long)results,
                PruningPower());
  return buf;
}

}  // namespace simsel
