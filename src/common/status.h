#ifndef SIMSEL_COMMON_STATUS_H_
#define SIMSEL_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "common/logging.h"

namespace simsel {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kCorruption,
  kInternal,
  kUnimplemented,
  /// Transient failure (an injected or real I/O hiccup); the operation is
  /// safe to retry. The only code BatchSelect's bounded retry loop retries.
  kUnavailable,
};

/// Returns a stable human-readable name for a status code.
const char* StatusCodeName(StatusCode code);

/// Lightweight result of an operation that can fail. The library does not
/// throw exceptions; fallible public entry points return Status or Result<T>.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  /// True for transient failures that a retry may clear.
  bool IsTransient() const { return code_ == StatusCode::kUnavailable; }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Formats as "CODE: message" (or "OK").
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Holds either a value of type T or an error Status. Accessing the value of
/// an errored Result is a checked programming error.
template <typename T>
class Result {
 public:
  /// Implicit from value and from error status, so functions can
  /// `return value;` or `return Status::...;` directly.
  Result(T value) : data_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : data_(std::move(status)) {  // NOLINT
    SIMSEL_CHECK_MSG(!std::get<Status>(data_).ok(),
                     "Result constructed from OK status without a value");
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  const Status& status() const {
    static const Status kOkStatus;
    if (ok()) return kOkStatus;
    return std::get<Status>(data_);
  }

  const T& value() const& {
    SIMSEL_CHECK_MSG(ok(), status().ToString().c_str());
    return std::get<T>(data_);
  }
  T& value() & {
    SIMSEL_CHECK_MSG(ok(), status().ToString().c_str());
    return std::get<T>(data_);
  }
  T&& value() && {
    SIMSEL_CHECK_MSG(ok(), status().ToString().c_str());
    return std::get<T>(std::move(data_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> data_;
};

/// Propagates a non-OK status to the caller.
#define SIMSEL_RETURN_IF_ERROR(expr)            \
  do {                                          \
    ::simsel::Status _st = (expr);              \
    if (!_st.ok()) return _st;                  \
  } while (0)

}  // namespace simsel

#endif  // SIMSEL_COMMON_STATUS_H_
