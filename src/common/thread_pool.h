#ifndef SIMSEL_COMMON_THREAD_POOL_H_
#define SIMSEL_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace simsel {

/// Fixed-size worker pool used by the parallel query executors (the paper's
/// future-work item "devise parallel versions of all algorithms").
///
/// Tasks are plain std::function<void()>; Submit never blocks (unbounded
/// queue) and Wait blocks until every submitted task has finished. The pool
/// joins its workers on destruction.
///
/// Long-running tasks (DynamicSelector::StartRebuild folds a whole segment
/// on one worker) occupy their worker for the duration — size the pool so
/// query scatter work is not starved behind them, and never Wait on the
/// pool from inside one of its own tasks (docs/CONCURRENCY.md).
class ThreadPool {
 public:
  /// What happens to tasks still queued when Shutdown is called.
  enum class ShutdownMode {
    kDrain,  ///< finish every queued task before workers exit
    kAbort,  ///< drop queued-but-unstarted tasks; running ones finish
  };

  /// Spawns `num_threads` workers (>= 1; defaults to hardware concurrency).
  explicit ThreadPool(size_t num_threads = 0);
  /// Shutdown(kDrain), then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues a task. Returns true when accepted; false — and the task is
  /// NOT enqueued — once Shutdown has begun. Racing Submit against Shutdown
  /// is well-defined: the task either runs to completion (drain mode, or it
  /// was dequeued before an abort) or is never started; it is never started
  /// and then abandoned half-way.
  bool Submit(std::function<void()> task);

  /// Blocks until the queue is empty and no task is running.
  void Wait();

  /// Stops accepting tasks and blocks until the pool is quiescent: in
  /// kDrain mode every already-queued task has finished, in kAbort mode
  /// queued-but-unstarted tasks are discarded and only the currently
  /// running ones are waited for. Returns how many queued tasks were
  /// dropped (always 0 in drain mode). Idempotent and thread-safe; the
  /// first caller's mode wins and later calls just wait for quiescence.
  /// Workers are not joined here — destruction still does that — so the
  /// pool object stays valid (Submit returns false) after Shutdown.
  size_t Shutdown(ShutdownMode mode);

  /// True once Shutdown has begun (Submit will refuse).
  bool shutting_down() const;

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable task_ready_;
  std::condition_variable all_idle_;
  std::deque<std::function<void()>> queue_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

/// Runs fn(i) for i in [0, n) across the pool and waits for completion.
/// Indices are handed out in contiguous chunks for cache friendliness.
void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn);

}  // namespace simsel

#endif  // SIMSEL_COMMON_THREAD_POOL_H_
