#ifndef SIMSEL_COMMON_THREAD_POOL_H_
#define SIMSEL_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace simsel {

/// Fixed-size worker pool used by the parallel query executors (the paper's
/// future-work item "devise parallel versions of all algorithms").
///
/// Tasks are plain std::function<void()>; Submit never blocks (unbounded
/// queue) and Wait blocks until every submitted task has finished. The pool
/// joins its workers on destruction.
///
/// Long-running tasks (DynamicSelector::StartRebuild folds a whole segment
/// on one worker) occupy their worker for the duration — size the pool so
/// query scatter work is not starved behind them, and never Wait on the
/// pool from inside one of its own tasks (docs/CONCURRENCY.md).
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>= 1; defaults to hardware concurrency).
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues a task.
  void Submit(std::function<void()> task);

  /// Blocks until the queue is empty and no task is running.
  void Wait();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable task_ready_;
  std::condition_variable all_idle_;
  std::deque<std::function<void()>> queue_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

/// Runs fn(i) for i in [0, n) across the pool and waits for completion.
/// Indices are handed out in contiguous chunks for cache friendliness.
void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn);

}  // namespace simsel

#endif  // SIMSEL_COMMON_THREAD_POOL_H_
