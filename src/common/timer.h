#ifndef SIMSEL_COMMON_TIMER_H_
#define SIMSEL_COMMON_TIMER_H_

#include <chrono>

namespace simsel {

/// Monotonic wall-clock stopwatch used by the benchmark harnesses.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction or the last Reset, in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Elapsed time in microseconds.
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace simsel

#endif  // SIMSEL_COMMON_TIMER_H_
