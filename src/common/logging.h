#ifndef SIMSEL_COMMON_LOGGING_H_
#define SIMSEL_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>

/// \file
/// Minimal assertion macros. The library reports recoverable errors through
/// simsel::Status; these macros guard internal invariants whose violation
/// indicates a programming bug, and abort with a source location.

#define SIMSEL_CHECK(cond)                                                    \
  do {                                                                        \
    if (!(cond)) {                                                            \
      std::fprintf(stderr, "SIMSEL_CHECK failed at %s:%d: %s\n", __FILE__,    \
                   __LINE__, #cond);                                          \
      std::abort();                                                           \
    }                                                                         \
  } while (0)

#define SIMSEL_CHECK_MSG(cond, msg)                                           \
  do {                                                                        \
    if (!(cond)) {                                                            \
      std::fprintf(stderr, "SIMSEL_CHECK failed at %s:%d: %s (%s)\n",         \
                   __FILE__, __LINE__, #cond, (msg));                         \
      std::abort();                                                           \
    }                                                                         \
  } while (0)

#ifdef NDEBUG
#define SIMSEL_DCHECK(cond) \
  do {                      \
  } while (0)
#else
#define SIMSEL_DCHECK(cond) SIMSEL_CHECK(cond)
#endif

#endif  // SIMSEL_COMMON_LOGGING_H_
