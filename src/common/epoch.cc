#include "common/epoch.h"

#include "common/logging.h"

namespace simsel {

EpochManager::~EpochManager() {
  // Destruction contract: no live Guards. Every retired object is past its
  // grace period by definition, so free them all.
  std::lock_guard<std::mutex> lock(retire_mu_);
  for (Retired& r : retired_) r.free();
  retired_.clear();
}

EpochManager::Guard::Guard(EpochManager& mgr) : mgr_(&mgr) {
  // Claim a free slot. A thread-local rotating hint spreads readers across
  // the array so the common case is one CAS. One full sweep without a free
  // cell means more than kSlots guards are live right now: grow into the
  // overflow list instead of spinning — a reader holding its guard across
  // a long query must never be able to wedge the claim of reader kSlots+1
  // (the claim is bounded-time even if no other guard ever releases).
  static thread_local size_t hint = 0;
  for (size_t attempt = 0; attempt < kSlots; ++attempt) {
    size_t slot = (hint + attempt) % kSlots;
    uint64_t expected = 0;
    uint64_t e = mgr.global_epoch_.load(std::memory_order_seq_cst);
    if (mgr.slots_[slot].compare_exchange_strong(expected, e,
                                                 std::memory_order_seq_cst)) {
      // Re-stamp until the published pin matches the current epoch: the
      // epoch may have advanced between the load and the claim. A stale
      // final stamp would be safe (it only holds reclamation back); the
      // re-check keeps pins tight so reclamation is prompt.
      while (true) {
        uint64_t now = mgr.global_epoch_.load(std::memory_order_seq_cst);
        if (now == e) break;
        e = now;
        mgr.slots_[slot].store(e, std::memory_order_seq_cst);
      }
      hint = (slot + 1) % kSlots;
      slot_ = slot;
      return;
    }
  }
  overflow_ = mgr.ClaimOverflowPin();
}

EpochManager::Guard::~Guard() {
  if (mgr_ == nullptr) return;
  if (overflow_ != nullptr) {
    overflow_->store(0, std::memory_order_seq_cst);
  } else {
    mgr_->slots_[slot_].store(0, std::memory_order_seq_cst);
  }
}

std::atomic<uint64_t>* EpochManager::ClaimOverflowPin() {
  std::lock_guard<std::mutex> lock(overflow_mu_);
  std::atomic<uint64_t>* node = nullptr;
  for (std::atomic<uint64_t>& n : overflow_) {
    // Claimers are serialized by overflow_mu_; the CAS only races the
    // lock-free release (store 0), which can make a node look taken for
    // one round but never hands it to two guards.
    uint64_t expected = 0;
    uint64_t e = global_epoch_.load(std::memory_order_seq_cst);
    if (n.compare_exchange_strong(expected, e, std::memory_order_seq_cst)) {
      node = &n;
      break;
    }
  }
  if (node == nullptr) {
    // Every node taken: grow. Deque nodes have stable addresses, so bare
    // pointers held by live guards stay valid.
    node = &overflow_.emplace_back(
        global_epoch_.load(std::memory_order_seq_cst));
  }
  // Same re-stamp-until-stable protocol as the fixed slots.
  uint64_t e = node->load(std::memory_order_seq_cst);
  while (true) {
    uint64_t now = global_epoch_.load(std::memory_order_seq_cst);
    if (now == e) break;
    e = now;
    node->store(e, std::memory_order_seq_cst);
  }
  return node;
}

size_t EpochManager::overflow_capacity() const {
  std::lock_guard<std::mutex> lock(overflow_mu_);
  return overflow_.size();
}

void EpochManager::Retire(std::function<void()> free) {
  {
    std::lock_guard<std::mutex> lock(retire_mu_);
    retired_.push_back(
        {global_epoch_.load(std::memory_order_seq_cst), std::move(free)});
  }
  // Advance: readers pinning from now on can never reference the retired
  // object (the replacement pointer was published before Retire was called).
  global_epoch_.fetch_add(1, std::memory_order_seq_cst);
  Reclaim();
}

uint64_t EpochManager::MinActiveEpoch() const {
  uint64_t min = UINT64_MAX;
  for (const std::atomic<uint64_t>& slot : slots_) {
    uint64_t pinned = slot.load(std::memory_order_seq_cst);
    if (pinned != 0 && pinned < min) min = pinned;
  }
  // Overflow pins hold reclamation back exactly like slot pins. The mutex
  // only fences list growth; the values themselves are atomics.
  std::lock_guard<std::mutex> lock(overflow_mu_);
  for (const std::atomic<uint64_t>& node : overflow_) {
    uint64_t pinned = node.load(std::memory_order_seq_cst);
    if (pinned != 0 && pinned < min) min = pinned;
  }
  return min;
}

size_t EpochManager::Reclaim() {
  std::vector<Retired> to_free;
  {
    std::lock_guard<std::mutex> lock(retire_mu_);
    if (retired_.empty()) return 0;
    // An object retired at epoch E may still be referenced by readers
    // pinned at <= E (they could have loaded the old pointer before the
    // swap). Readers pinned at > E provably loaded the replacement.
    uint64_t min_active = MinActiveEpoch();
    size_t kept = 0;
    for (Retired& r : retired_) {
      if (r.epoch < min_active) {
        to_free.push_back(std::move(r));
      } else {
        retired_[kept++] = std::move(r);
      }
    }
    retired_.resize(kept);
  }
  // Run deleters outside the mutex: they can be heavyweight (a whole index
  // segment) and must not block writers retiring concurrently.
  for (Retired& r : to_free) r.free();
  return to_free.size();
}

size_t EpochManager::retired_count() const {
  std::lock_guard<std::mutex> lock(retire_mu_);
  return retired_.size();
}

}  // namespace simsel
