#include "common/epoch.h"

#include <thread>

#include "common/logging.h"

namespace simsel {

EpochManager::~EpochManager() {
  // Destruction contract: no live Guards. Every retired object is past its
  // grace period by definition, so free them all.
  std::lock_guard<std::mutex> lock(retire_mu_);
  for (Retired& r : retired_) r.free();
  retired_.clear();
}

EpochManager::Guard::Guard(EpochManager& mgr) : mgr_(&mgr) {
  // Claim a free slot. A thread-local rotating hint spreads readers across
  // the array so the common case is one CAS.
  static thread_local size_t hint = 0;
  size_t slot;
  for (size_t attempt = 0;; ++attempt) {
    slot = (hint + attempt) % kSlots;
    uint64_t expected = 0;
    uint64_t e = mgr.global_epoch_.load(std::memory_order_seq_cst);
    if (mgr.slots_[slot].compare_exchange_strong(expected, e,
                                                 std::memory_order_seq_cst)) {
      // Re-stamp until the published pin matches the current epoch: the
      // epoch may have advanced between the load and the claim. A stale
      // final stamp would be safe (it only holds reclamation back); the
      // re-check keeps pins tight so reclamation is prompt.
      while (true) {
        uint64_t now = mgr.global_epoch_.load(std::memory_order_seq_cst);
        if (now == e) break;
        e = now;
        mgr.slots_[slot].store(e, std::memory_order_seq_cst);
      }
      break;
    }
    if (attempt >= kSlots) std::this_thread::yield();
  }
  hint = (slot + 1) % kSlots;
  slot_ = slot;
}

EpochManager::Guard::~Guard() {
  if (mgr_ != nullptr) {
    mgr_->slots_[slot_].store(0, std::memory_order_seq_cst);
  }
}

void EpochManager::Retire(std::function<void()> free) {
  {
    std::lock_guard<std::mutex> lock(retire_mu_);
    retired_.push_back(
        {global_epoch_.load(std::memory_order_seq_cst), std::move(free)});
  }
  // Advance: readers pinning from now on can never reference the retired
  // object (the replacement pointer was published before Retire was called).
  global_epoch_.fetch_add(1, std::memory_order_seq_cst);
  Reclaim();
}

uint64_t EpochManager::MinActiveEpoch() const {
  uint64_t min = UINT64_MAX;
  for (const std::atomic<uint64_t>& slot : slots_) {
    uint64_t pinned = slot.load(std::memory_order_seq_cst);
    if (pinned != 0 && pinned < min) min = pinned;
  }
  return min;
}

size_t EpochManager::Reclaim() {
  std::vector<Retired> to_free;
  {
    std::lock_guard<std::mutex> lock(retire_mu_);
    if (retired_.empty()) return 0;
    // An object retired at epoch E may still be referenced by readers
    // pinned at <= E (they could have loaded the old pointer before the
    // swap). Readers pinned at > E provably loaded the replacement.
    uint64_t min_active = MinActiveEpoch();
    size_t kept = 0;
    for (Retired& r : retired_) {
      if (r.epoch < min_active) {
        to_free.push_back(std::move(r));
      } else {
        retired_[kept++] = std::move(r);
      }
    }
    retired_.resize(kept);
  }
  // Run deleters outside the mutex: they can be heavyweight (a whole index
  // segment) and must not block writers retiring concurrently.
  for (Retired& r : to_free) r.free();
  return to_free.size();
}

size_t EpochManager::retired_count() const {
  std::lock_guard<std::mutex> lock(retire_mu_);
  return retired_.size();
}

}  // namespace simsel
