#include "common/rng.h"

#include <cmath>

namespace simsel {

uint64_t SplitMix64Next(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97f4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& si : s_) si = SplitMix64Next(&sm);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  SIMSEL_DCHECK(bound > 0);
  // Rejection sampling on the top of the range to remove modulo bias.
  uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    uint64_t r = NextU64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  SIMSEL_DCHECK(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(NextU64());  // full 64-bit range
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextDouble() {
  // 53 random bits into [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::NextGaussian() {
  // Box-Muller; draw u1 in (0,1] to keep log() finite.
  double u1 = 1.0 - NextDouble();
  double u2 = NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

}  // namespace simsel
