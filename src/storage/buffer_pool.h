#ifndef SIMSEL_STORAGE_BUFFER_POOL_H_
#define SIMSEL_STORAGE_BUFFER_POOL_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <unordered_map>

namespace simsel {

namespace obs {
class Counter;
class Gauge;
}  // namespace obs

/// LRU buffer pool simulator.
///
/// The paper's indexes are disk-resident and "caching [is left] up to the
/// operating system and the disk drive". This class models that cache: each
/// page the cursors or hash probes touch is looked up in an LRU of
/// `capacity` frames; a miss is a physical disk read, a hit is free. Wire a
/// pool into SelectOptions::buffer_pool to measure how the algorithms'
/// access patterns (SF's short sequential bursts vs TA's random probes)
/// behave under different cache sizes — the bench_buffer_pool harness does
/// exactly that.
///
/// Thread-compatible (one pool per thread / query stream); not thread-safe.
class BufferPool {
 public:
  /// `capacity` frames (pages). Must be >= 1.
  explicit BufferPool(size_t capacity);

  /// Touches page `key` (any stable 64-bit page identity). Returns true on
  /// a cache hit; on a miss the page is faulted in, evicting the LRU page
  /// if the pool is full.
  bool Touch(uint64_t key);

  /// Composes a page identity from a file/structure id and page number.
  static uint64_t PageKey(uint32_t file_id, uint64_t page_number) {
    return (static_cast<uint64_t>(file_id) << 40) ^ page_number;
  }

  size_t capacity() const { return capacity_; }
  size_t size() const { return map_.size(); }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t evictions() const { return evictions_; }
  double HitRate() const {
    uint64_t total = hits_ + misses_;
    return total == 0 ? 0.0 : static_cast<double>(hits_) / total;
  }

  /// Empties the pool (cold cache) and optionally the statistics.
  void Clear(bool reset_stats = true);

 private:
  size_t capacity_;
  // Front = most recently used.
  std::list<uint64_t> lru_;
  std::unordered_map<uint64_t, std::list<uint64_t>::iterator> map_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
  // Process-wide mirrors (simsel_buffer_pool_*), pooled across instances.
  obs::Counter* hits_metric_;
  obs::Counter* misses_metric_;
  obs::Counter* evictions_metric_;
  obs::Gauge* resident_metric_;
};

}  // namespace simsel

#endif  // SIMSEL_STORAGE_BUFFER_POOL_H_
