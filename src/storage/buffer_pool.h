#ifndef SIMSEL_STORAGE_BUFFER_POOL_H_
#define SIMSEL_STORAGE_BUFFER_POOL_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace simsel {

namespace obs {
class Counter;
class Gauge;
}  // namespace obs

/// LRU buffer pool simulator.
///
/// The paper's indexes are disk-resident and "caching [is left] up to the
/// operating system and the disk drive". This class models that cache: each
/// page the cursors or hash probes touch is looked up in an LRU of
/// `capacity` frames; a miss is a physical disk read, a hit is free. Wire a
/// pool into SelectOptions::buffer_pool to measure how the algorithms'
/// access patterns (SF's short sequential bursts vs TA's random probes)
/// behave under different cache sizes — the bench_buffer_pool harness does
/// exactly that.
///
/// Thread-safe: the frame table is sharded by key hash with one mutex and
/// one LRU chain per shard (capacity split evenly across shards), so
/// concurrent queries sharing one pool serialize only when their pages land
/// in the same shard. Hit/miss/eviction tallies are relaxed atomics. Small
/// pools (fewer than 2 * kFramesPerShard frames) keep a single shard, i.e.
/// exact global LRU order; large serving pools trade that for concurrency —
/// eviction is then LRU *within* the victim page's shard, which for a
/// hash-spread working set is statistically indistinguishable from global
/// LRU.
class BufferPool {
 public:
  /// Frames per shard the auto-sharding policy aims for, and the cap on the
  /// number of shards.
  static constexpr size_t kFramesPerShard = 64;
  static constexpr size_t kMaxShards = 16;

  /// `capacity` frames (pages), must be >= 1. `num_shards` 0 picks
  /// max(1, min(kMaxShards, capacity / kFramesPerShard)) rounded down to a
  /// power of two.
  explicit BufferPool(size_t capacity, size_t num_shards = 0);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Touches page `key` (any stable 64-bit page identity). Returns true on
  /// a cache hit; on a miss the page is faulted in, evicting the LRU page
  /// of the key's shard if that shard is full. Safe to call concurrently.
  bool Touch(uint64_t key);

  /// Composes a page identity from a file/structure id and page number.
  static uint64_t PageKey(uint32_t file_id, uint64_t page_number) {
    return (static_cast<uint64_t>(file_id) << 40) ^ page_number;
  }

  size_t capacity() const { return capacity_; }
  size_t num_shards() const { return shards_.size(); }
  /// Resident pages right now (locks each shard briefly; a snapshot, not a
  /// linearizable count, under concurrent Touch traffic).
  size_t size() const;
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  double HitRate() const {
    uint64_t h = hits();
    uint64_t total = h + misses();
    return total == 0 ? 0.0 : static_cast<double>(h) / total;
  }

  /// Empties the pool (cold cache) and optionally the instance statistics.
  /// The process-wide resident-pages gauge is reconciled (decremented by the
  /// dropped page count); the simsel_buffer_pool_* counters are monotone
  /// process totals and are never reset.
  void Clear(bool reset_stats = true);

 private:
  struct Shard {
    std::mutex mu;
    // Front = most recently used.
    std::list<uint64_t> lru;
    std::unordered_map<uint64_t, std::list<uint64_t>::iterator> map;
    size_t capacity = 0;
  };

  size_t ShardIndex(uint64_t key) const {
    // Fibonacci mix so sequential page numbers spread across shards.
    return ((key * 0x9E3779B97F4A7C15ull) >> 32) & shard_mask_;
  }

  size_t capacity_;
  size_t shard_mask_;  // num shards - 1 (power of two)
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  // Process-wide mirrors (simsel_buffer_pool_*), pooled across instances.
  obs::Counter* hits_metric_;
  obs::Counter* misses_metric_;
  obs::Counter* evictions_metric_;
  obs::Gauge* resident_metric_;
};

}  // namespace simsel

#endif  // SIMSEL_STORAGE_BUFFER_POOL_H_
