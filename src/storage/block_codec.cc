#include "storage/block_codec.h"

#include <cstring>

#include "simd/kernels.h"

namespace simsel {

namespace {

inline uint32_t FloatBits(float f) {
  uint32_t bits;
  std::memcpy(&bits, &f, sizeof(bits));
  return bits;
}

/// Bits needed to represent `v` (0 for v == 0).
inline uint32_t BitWidth(uint32_t v) {
  return v == 0 ? 0u : 32u - static_cast<uint32_t>(__builtin_clz(v));
}

}  // namespace

void EncodePostingBlock(const uint32_t* ids, const float* lens, size_t count,
                        std::vector<uint8_t>* dst) {
  AppendVarint32(dst, static_cast<uint32_t>(count));
  if (count == 0) return;

  // Ids: first raw, the rest as zigzag deltas. By-length blocks are sorted
  // by (len, id), so ids ascend within equal-length runs and only run
  // boundaries pay for a (still small) negative delta.
  AppendVarint32(dst, ids[0]);
  for (size_t i = 1; i < count; ++i) {
    int32_t delta = static_cast<int32_t>(ids[i] - ids[i - 1]);
    AppendVarint32(dst, ZigzagEncode32(delta));
  }

  // Lengths: fixed-width bit-packed deltas over the IEEE-754 bit patterns.
  // Within a block the lengths are ascending and near each other, so their
  // bit patterns (monotone for non-negative floats) cluster tightly; the
  // base/width form stays lossless for arbitrary floats regardless.
  uint32_t base_bits = FloatBits(lens[0]);
  for (size_t i = 1; i < count; ++i) {
    base_bits = std::min(base_bits, FloatBits(lens[i]));
  }
  uint32_t max_delta = 0;
  for (size_t i = 0; i < count; ++i) {
    max_delta = std::max(max_delta, FloatBits(lens[i]) - base_bits);
  }
  const uint32_t width = BitWidth(max_delta);
  for (int b = 0; b < 4; ++b) {
    dst->push_back(static_cast<uint8_t>(base_bits >> (8 * b)));
  }
  dst->push_back(static_cast<uint8_t>(width));
  // LSB-first bit stream; the accumulator never exceeds 7 + 32 bits.
  uint64_t acc = 0;
  unsigned acc_bits = 0;
  for (size_t i = 0; i < count; ++i) {
    acc |= static_cast<uint64_t>(FloatBits(lens[i]) - base_bits) << acc_bits;
    acc_bits += width;
    while (acc_bits >= 8) {
      dst->push_back(static_cast<uint8_t>(acc));
      acc >>= 8;
      acc_bits -= 8;
    }
  }
  if (acc_bits > 0) dst->push_back(static_cast<uint8_t>(acc));
}

bool DecodePostingBlock(const uint8_t* data, size_t size, size_t max_count,
                        uint32_t* ids, float* lens, size_t* count,
                        size_t* consumed, BlockDecodeScratch* scratch) {
  const uint8_t* p = data;
  const uint8_t* end = data + size;
  uint32_t n32;
  if ((p = ReadVarint32Bounded(p, end, &n32)) == nullptr) return false;
  const size_t n = n32;
  if (n > max_count) return false;
  *count = n;
  if (n == 0) {
    *consumed = static_cast<size_t>(p - data);
    return true;
  }

  // Ids: parse the varint stream into zigzag-decoded deltas (deltas[0] = 0),
  // then one SIMD prefix-sum pass materializes the absolute ids.
  uint32_t first_id;
  if ((p = ReadVarint32Bounded(p, end, &first_id)) == nullptr) return false;
  scratch->deltas.resize(n);
  scratch->deltas[0] = 0;
  for (size_t i = 1; i < n; ++i) {
    uint32_t zz;
    if ((p = ReadVarint32Bounded(p, end, &zz)) == nullptr) return false;
    scratch->deltas[i] = static_cast<uint32_t>(ZigzagDecode32(zz));
  }
  const simd::SpanKernels& kernels = simd::Kernels();
  kernels.delta_prefix_sum_u32(first_id, scratch->deltas.data(), n, ids);

  // Lengths: unpack the fixed-width deltas, then SIMD add-base + bitcast.
  if (end - p < 5) return false;
  uint32_t base_bits = 0;
  for (int b = 0; b < 4; ++b) {
    base_bits |= static_cast<uint32_t>(*p++) << (8 * b);
  }
  const uint32_t width = *p++;
  if (width > 32) return false;
  const size_t packed_bytes = (n * width + 7) / 8;
  if (static_cast<size_t>(end - p) < packed_bytes) return false;
  scratch->deltas.resize(n);
  if (width == 0) {
    std::memset(scratch->deltas.data(), 0, n * sizeof(uint32_t));
  } else {
    const uint64_t mask =
        width == 32 ? ~uint64_t{0} >> 32 : (uint64_t{1} << width) - 1;
    uint64_t acc = 0;
    unsigned acc_bits = 0;
    const uint8_t* q = p;
    for (size_t i = 0; i < n; ++i) {
      while (acc_bits < width) {
        acc |= static_cast<uint64_t>(*q++) << acc_bits;
        acc_bits += 8;
      }
      scratch->deltas[i] = static_cast<uint32_t>(acc & mask);
      acc >>= width;
      acc_bits -= width;
    }
  }
  p += packed_bytes;
  kernels.bits_add_base_f32(scratch->deltas.data(), n, base_bits, lens);
  *consumed = static_cast<size_t>(p - data);
  return true;
}

}  // namespace simsel
