#ifndef SIMSEL_STORAGE_CODEC_H_
#define SIMSEL_STORAGE_CODEC_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

namespace simsel {

/// \file
/// Little-endian fixed and varint codecs for the on-disk index format,
/// plus the FNV-1a checksum guarding serialized blocks. All Get* functions
/// return false on truncated or malformed input instead of crashing, so a
/// corrupt index file surfaces as Status::Corruption at load time.

void PutFixed32(std::vector<uint8_t>* dst, uint32_t v);
void PutFixed64(std::vector<uint8_t>* dst, uint64_t v);
void PutVarint32(std::vector<uint8_t>* dst, uint32_t v);
void PutVarint64(std::vector<uint8_t>* dst, uint64_t v);
/// Stores the IEEE-754 bit pattern as fixed32.
void PutFloat(std::vector<uint8_t>* dst, float v);
void PutDouble(std::vector<uint8_t>* dst, double v);
/// varint32 length followed by the raw bytes.
void PutLengthPrefixed(std::vector<uint8_t>* dst, std::string_view s);

/// Cursor over a byte span for decoding. `pos` advances past consumed bytes.
struct Decoder {
  const uint8_t* data = nullptr;
  size_t size = 0;
  size_t pos = 0;

  size_t remaining() const { return size - pos; }
  bool exhausted() const { return pos >= size; }
};

bool GetFixed32(Decoder* dec, uint32_t* v);
bool GetFixed64(Decoder* dec, uint64_t* v);
bool GetVarint32(Decoder* dec, uint32_t* v);
bool GetVarint64(Decoder* dec, uint64_t* v);
bool GetFloat(Decoder* dec, float* v);
bool GetDouble(Decoder* dec, double* v);
bool GetLengthPrefixed(Decoder* dec, std::string* s);

/// FNV-1a 64-bit hash; used both as serialization checksum and as the
/// bucket hash of the extendible hash table. The seeded overload continues
/// an existing hash, enabling streaming checksums over multiple buffers.
constexpr uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ULL;
uint64_t Fnv1a64(const void* data, size_t len,
                 uint64_t seed = kFnvOffsetBasis);
uint64_t Fnv1a64(uint64_t v);

}  // namespace simsel

#endif  // SIMSEL_STORAGE_CODEC_H_
