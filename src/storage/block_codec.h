#ifndef SIMSEL_STORAGE_BLOCK_CODEC_H_
#define SIMSEL_STORAGE_BLOCK_CODEC_H_

#include <cstdint>
#include <cstddef>
#include <vector>

namespace simsel {

/// \file
/// The one varint implementation in the tree, plus the compressed
/// posting-block codec built on it.
///
/// The low-level primitives here are shared by storage/codec.cc (the
/// general-purpose Put*/Get* layer) and index/compressed_lists.cc (the
/// id-sorted gap decoder), which used to carry private copies of the same
/// LEB128 loops. The block codec encodes one summary block of by-length
/// postings — ids zigzag-delta-coded as varints, lengths bit-packed as
/// fixed-width deltas over their IEEE-754 bit patterns — and is the wire
/// format of InvertedIndex kVersion 3 and of the PostingStore page image.
/// Decoding is lossless to the bit for any inputs (ids need not be sorted;
/// lengths may be any float bit pattern including -0.0 and NaN).

// --- LEB128 primitives (the single shared implementation). ---

/// Appends `v` as a little-endian base-128 varint (1-5 bytes).
inline void AppendVarint32(std::vector<uint8_t>* dst, uint32_t v) {
  while (v >= 0x80) {
    dst->push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  dst->push_back(static_cast<uint8_t>(v));
}

/// Appends `v` as a little-endian base-128 varint (1-10 bytes).
inline void AppendVarint64(std::vector<uint8_t>* dst, uint64_t v) {
  while (v >= 0x80) {
    dst->push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  dst->push_back(static_cast<uint8_t>(v));
}

/// Unchecked decode for trusted in-memory blobs (the caller guarantees a
/// well-formed stream, e.g. one it encoded itself). Returns the advanced
/// read pointer.
inline const uint8_t* ReadVarint32Fast(const uint8_t* p, uint32_t* v) {
  uint32_t out = *p & 0x7F;
  if ((*p++ & 0x80) != 0) {
    int shift = 7;
    for (;;) {
      out |= static_cast<uint32_t>(*p & 0x7F) << shift;
      if ((*p++ & 0x80) == 0) break;
      shift += 7;
    }
  }
  *v = out;
  return p;
}

/// Bounded decode: nullptr on truncation, overlong encoding, or a value
/// exceeding 64 bits; otherwise the advanced read pointer.
inline const uint8_t* ReadVarint64Bounded(const uint8_t* p, const uint8_t* end,
                                          uint64_t* v) {
  uint64_t out = 0;
  int shift = 0;
  while (shift <= 63) {
    if (p >= end) return nullptr;
    uint8_t byte = *p++;
    out |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *v = out;
      return p;
    }
    shift += 7;
  }
  return nullptr;  // over-long varint
}

/// Bounded 32-bit decode: additionally rejects values above UINT32_MAX.
inline const uint8_t* ReadVarint32Bounded(const uint8_t* p, const uint8_t* end,
                                          uint32_t* v) {
  uint64_t wide;
  p = ReadVarint64Bounded(p, end, &wide);
  if (p == nullptr || wide > 0xFFFFFFFFULL) return nullptr;
  *v = static_cast<uint32_t>(wide);
  return p;
}

/// Zigzag mapping so small-magnitude signed deltas get short varints.
inline uint32_t ZigzagEncode32(int32_t v) {
  return (static_cast<uint32_t>(v) << 1) ^ static_cast<uint32_t>(v >> 31);
}
inline int32_t ZigzagDecode32(uint32_t v) {
  return static_cast<int32_t>((v >> 1) ^ (~(v & 1) + 1));
}

// --- Compressed posting blocks. ---

/// Reusable decode staging owned by each consumer (one per ListCursor in
/// disk mode; Load paths keep a local one). `deltas` stages the parsed id /
/// length deltas handed to the SIMD prefix-sum kernels; `raw`/`ids`/`lens`
/// plus the cache key let PostingStore::ReadBlock skip re-decoding the
/// block it decoded last (spans clipped by a length bound revisit the same
/// block several times).
struct BlockDecodeScratch {
  std::vector<uint32_t> deltas;
  std::vector<uint8_t> raw;
  std::vector<uint32_t> ids;
  std::vector<float> lens;
  // Cache key of the decoded postings in ids/lens (owner == nullptr: none).
  const void* owner = nullptr;
  uint32_t token = 0;
  uint64_t first = 0;

  void InvalidateCache() { owner = nullptr; }
};

/// Appends one compressed block to `dst`:
///
///   varint32  count
///   varint32  ids[0]                                 (count > 0)
///   varint32  zigzag(ids[i] - ids[i-1])              (i in [1, count))
///   fixed32   base_bits = min over bit_cast<u32>(lens[i])
///   uint8     width in [0, 32]
///   bytes     ceil(count*width / 8) LSB-first fixed-width deltas
///             bit_cast<u32>(lens[i]) - base_bits
void EncodePostingBlock(const uint32_t* ids, const float* lens, size_t count,
                        std::vector<uint8_t>* dst);

/// Decodes one block from [data, data+size). On success writes `*count`
/// (<= max_count) postings to ids/lens, sets `*consumed` to the bytes read,
/// and returns true. Returns false on truncated or malformed input or a
/// count above max_count (nothing is written past max_count). `scratch`
/// provides the delta staging; its cache fields are not touched.
bool DecodePostingBlock(const uint8_t* data, size_t size, size_t max_count,
                        uint32_t* ids, float* lens, size_t* count,
                        size_t* consumed, BlockDecodeScratch* scratch);

}  // namespace simsel

#endif  // SIMSEL_STORAGE_BLOCK_CODEC_H_
