#include "storage/buffer_pool.h"

#include "common/logging.h"

namespace simsel {

BufferPool::BufferPool(size_t capacity) : capacity_(capacity) {
  SIMSEL_CHECK_MSG(capacity_ >= 1, "buffer pool needs at least one frame");
}

bool BufferPool::Touch(uint64_t key) {
  auto it = map_.find(key);
  if (it != map_.end()) {
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second);
    return true;
  }
  ++misses_;
  if (map_.size() >= capacity_) {
    uint64_t victim = lru_.back();
    lru_.pop_back();
    map_.erase(victim);
    ++evictions_;
  }
  lru_.push_front(key);
  map_[key] = lru_.begin();
  return false;
}

void BufferPool::Clear(bool reset_stats) {
  lru_.clear();
  map_.clear();
  if (reset_stats) {
    hits_ = 0;
    misses_ = 0;
    evictions_ = 0;
  }
}

}  // namespace simsel
