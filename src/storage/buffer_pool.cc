#include "storage/buffer_pool.h"

#include "common/logging.h"
#include "obs/metrics_registry.h"

namespace simsel {

BufferPool::BufferPool(size_t capacity) : capacity_(capacity) {
  SIMSEL_CHECK_MSG(capacity_ >= 1, "buffer pool needs at least one frame");
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  hits_metric_ = reg.GetCounter("simsel_buffer_pool_hits_total");
  misses_metric_ = reg.GetCounter("simsel_buffer_pool_misses_total");
  evictions_metric_ = reg.GetCounter("simsel_buffer_pool_evictions_total");
  resident_metric_ = reg.GetGauge("simsel_buffer_pool_resident_pages");
}

bool BufferPool::Touch(uint64_t key) {
  auto it = map_.find(key);
  if (it != map_.end()) {
    ++hits_;
    hits_metric_->Increment();
    lru_.splice(lru_.begin(), lru_, it->second);
    return true;
  }
  ++misses_;
  misses_metric_->Increment();
  if (map_.size() >= capacity_) {
    uint64_t victim = lru_.back();
    lru_.pop_back();
    map_.erase(victim);
    ++evictions_;
    evictions_metric_->Increment();
    resident_metric_->Add(-1);
  }
  lru_.push_front(key);
  map_[key] = lru_.begin();
  resident_metric_->Add(1);
  return false;
}

void BufferPool::Clear(bool reset_stats) {
  resident_metric_->Add(-static_cast<int64_t>(map_.size()));
  lru_.clear();
  map_.clear();
  if (reset_stats) {
    hits_ = 0;
    misses_ = 0;
    evictions_ = 0;
  }
}

}  // namespace simsel
