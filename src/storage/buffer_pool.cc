#include "storage/buffer_pool.h"

#include <algorithm>
#include <bit>

#include "common/logging.h"
#include "obs/metrics_registry.h"

namespace simsel {

BufferPool::BufferPool(size_t capacity, size_t num_shards)
    : capacity_(capacity) {
  SIMSEL_CHECK_MSG(capacity_ >= 1, "buffer pool needs at least one frame");
  if (num_shards == 0) {
    num_shards = std::min(kMaxShards, capacity_ / kFramesPerShard);
    if (num_shards == 0) num_shards = 1;
  }
  num_shards = std::min(num_shards, capacity_);
  num_shards = std::bit_floor(num_shards);  // power of two for ShardIndex
  shard_mask_ = num_shards - 1;
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
    shards_[i]->capacity =
        capacity_ / num_shards + (i < capacity_ % num_shards ? 1 : 0);
  }
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  hits_metric_ = reg.GetCounter("simsel_buffer_pool_hits_total");
  misses_metric_ = reg.GetCounter("simsel_buffer_pool_misses_total");
  evictions_metric_ = reg.GetCounter("simsel_buffer_pool_evictions_total");
  resident_metric_ = reg.GetGauge("simsel_buffer_pool_resident_pages");
}

BufferPool::~BufferPool() {
  // Reconcile the process-wide gauge: a destroyed pool holds no pages.
  resident_metric_->Add(-static_cast<int64_t>(size()));
}

bool BufferPool::Touch(uint64_t key) {
  Shard& shard = *shards_[ShardIndex(key)];
  bool evicted = false;
  bool hit = false;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      hit = true;
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    } else {
      if (shard.map.size() >= shard.capacity) {
        uint64_t victim = shard.lru.back();
        shard.lru.pop_back();
        shard.map.erase(victim);
        evicted = true;
      }
      shard.lru.push_front(key);
      shard.map[key] = shard.lru.begin();
    }
  }
  // Tallies outside the shard lock: they are atomics / lock-free metrics.
  if (hit) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    hits_metric_->Increment();
    return true;
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  misses_metric_->Increment();
  if (evicted) {
    evictions_.fetch_add(1, std::memory_order_relaxed);
    evictions_metric_->Increment();
    // Net resident change is zero: one page out, one page in.
  } else {
    resident_metric_->Add(1);
  }
  return false;
}

size_t BufferPool::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->map.size();
  }
  return total;
}

void BufferPool::Clear(bool reset_stats) {
  int64_t dropped = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    dropped += static_cast<int64_t>(shard->map.size());
    shard->lru.clear();
    shard->map.clear();
  }
  resident_metric_->Add(-dropped);
  if (reset_stats) {
    hits_.store(0, std::memory_order_relaxed);
    misses_.store(0, std::memory_order_relaxed);
    evictions_.store(0, std::memory_order_relaxed);
  }
}

}  // namespace simsel
