#include "storage/paged_file.h"

#include <cstring>
#include <fstream>

#include "storage/codec.h"

namespace simsel {

PagedFile::PagedFile(size_t page_size) : page_size_(page_size) {
  SIMSEL_CHECK_MSG(page_size_ >= 64, "page size too small");
}

uint64_t PagedFile::Append(const void* data, size_t len) {
  uint64_t offset = data_.size();
  const uint8_t* p = static_cast<const uint8_t*>(data);
  data_.insert(data_.end(), p, p + len);
  return offset;
}

Status PagedFile::ReadAt(uint64_t offset, size_t len, void* dst, bool random,
                         PageReadStats* stats) const {
  if (fault_injector_ != nullptr) {
    Status st = fault_injector_->MaybeFail();
    if (!st.ok()) return st;
  }
  if (offset + len > data_.size()) {
    return Status::OutOfRange("read past end of paged file");
  }
  uint64_t first = offset / page_size_;
  uint64_t last = len == 0 ? first : (offset + len - 1) / page_size_;
  if (random) {
    stats->rand_reads += last - first + 1;
    // A random read repositions the head; the sequential window is lost.
    stats->last_seq_page = last;
  } else {
    for (uint64_t p = first; p <= last; ++p) {
      if (p != stats->last_seq_page) ++stats->seq_reads;
      stats->last_seq_page = p;
    }
  }
  if (len > 0) std::memcpy(dst, data_.data() + offset, len);
  return Status::Ok();
}

Status PagedFile::SaveToFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::NotFound("cannot open for write: " + path);
  std::vector<uint8_t> header;
  PutFixed64(&header, page_size_);
  PutFixed64(&header, data_.size());
  out.write(reinterpret_cast<const char*>(header.data()),
            static_cast<std::streamsize>(header.size()));
  out.write(reinterpret_cast<const char*>(data_.data()),
            static_cast<std::streamsize>(data_.size()));
  // Checksum covers the header too, so a flipped page-size or length field
  // is detected, not silently accepted.
  uint64_t checksum = Fnv1a64(header.data(), header.size());
  checksum = Fnv1a64(data_.data(), data_.size(), checksum);
  std::vector<uint8_t> footer;
  PutFixed64(&footer, checksum);
  out.write(reinterpret_cast<const char*>(footer.data()),
            static_cast<std::streamsize>(footer.size()));
  if (!out) return Status::Internal("short write: " + path);
  return Status::Ok();
}

Result<PagedFile> PagedFile::LoadFromFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open for read: " + path);
  uint8_t header[16];
  in.read(reinterpret_cast<char*>(header), sizeof(header));
  if (!in) return Status::Corruption("truncated header: " + path);
  Decoder dec{header, sizeof(header), 0};
  uint64_t page_size, payload;
  GetFixed64(&dec, &page_size);
  GetFixed64(&dec, &payload);
  if (page_size < 64 || page_size > (64u << 20)) {
    return Status::Corruption("implausible page size in: " + path);
  }
  PagedFile file(static_cast<size_t>(page_size));
  file.data_.resize(payload);
  in.read(reinterpret_cast<char*>(file.data_.data()),
          static_cast<std::streamsize>(payload));
  if (!in) return Status::Corruption("truncated payload: " + path);
  uint8_t footer[8];
  in.read(reinterpret_cast<char*>(footer), sizeof(footer));
  if (!in) return Status::Corruption("truncated checksum: " + path);
  Decoder fdec{footer, sizeof(footer), 0};
  uint64_t checksum;
  GetFixed64(&fdec, &checksum);
  uint64_t expected = Fnv1a64(header, sizeof(header));
  expected = Fnv1a64(file.data_.data(), file.data_.size(), expected);
  if (checksum != expected) {
    return Status::Corruption("checksum mismatch: " + path);
  }
  return file;
}

}  // namespace simsel
