#include "storage/codec.h"

#include "storage/block_codec.h"

namespace simsel {

void PutFixed32(std::vector<uint8_t>* dst, uint32_t v) {
  for (int i = 0; i < 4; ++i) dst->push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void PutFixed64(std::vector<uint8_t>* dst, uint64_t v) {
  for (int i = 0; i < 8; ++i) dst->push_back(static_cast<uint8_t>(v >> (8 * i)));
}

// LEB128 lives in block_codec.h (the shared implementation); these wrappers
// keep the historical Put*/Get* surface.
void PutVarint32(std::vector<uint8_t>* dst, uint32_t v) {
  AppendVarint32(dst, v);
}

void PutVarint64(std::vector<uint8_t>* dst, uint64_t v) {
  AppendVarint64(dst, v);
}

void PutFloat(std::vector<uint8_t>* dst, float v) {
  uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutFixed32(dst, bits);
}

void PutDouble(std::vector<uint8_t>* dst, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutFixed64(dst, bits);
}

void PutLengthPrefixed(std::vector<uint8_t>* dst, std::string_view s) {
  PutVarint32(dst, static_cast<uint32_t>(s.size()));
  dst->insert(dst->end(), s.begin(), s.end());
}

bool GetFixed32(Decoder* dec, uint32_t* v) {
  if (dec->remaining() < 4) return false;
  uint32_t out = 0;
  for (int i = 0; i < 4; ++i) {
    out |= static_cast<uint32_t>(dec->data[dec->pos + i]) << (8 * i);
  }
  dec->pos += 4;
  *v = out;
  return true;
}

bool GetFixed64(Decoder* dec, uint64_t* v) {
  if (dec->remaining() < 8) return false;
  uint64_t out = 0;
  for (int i = 0; i < 8; ++i) {
    out |= static_cast<uint64_t>(dec->data[dec->pos + i]) << (8 * i);
  }
  dec->pos += 8;
  *v = out;
  return true;
}

bool GetVarint32(Decoder* dec, uint32_t* v) {
  uint64_t wide;
  if (!GetVarint64(dec, &wide)) return false;
  if (wide > 0xFFFFFFFFULL) return false;
  *v = static_cast<uint32_t>(wide);
  return true;
}

bool GetVarint64(Decoder* dec, uint64_t* v) {
  const uint8_t* next =
      ReadVarint64Bounded(dec->data + dec->pos, dec->data + dec->size, v);
  if (next == nullptr) return false;
  dec->pos = static_cast<size_t>(next - dec->data);
  return true;
}

bool GetFloat(Decoder* dec, float* v) {
  uint32_t bits;
  if (!GetFixed32(dec, &bits)) return false;
  std::memcpy(v, &bits, sizeof(*v));
  return true;
}

bool GetDouble(Decoder* dec, double* v) {
  uint64_t bits;
  if (!GetFixed64(dec, &bits)) return false;
  std::memcpy(v, &bits, sizeof(*v));
  return true;
}

bool GetLengthPrefixed(Decoder* dec, std::string* s) {
  uint32_t len;
  if (!GetVarint32(dec, &len)) return false;
  if (dec->remaining() < len) return false;
  s->assign(reinterpret_cast<const char*>(dec->data + dec->pos), len);
  dec->pos += len;
  return true;
}

uint64_t Fnv1a64(const void* data, size_t len, uint64_t seed) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

uint64_t Fnv1a64(uint64_t v) { return Fnv1a64(&v, sizeof(v)); }

}  // namespace simsel
