#include "storage/posting_store.h"

#include <cstring>

#include "common/logging.h"
#include "index/inverted_index.h"
#include "storage/codec.h"

namespace simsel {

PostingStore PostingStore::Build(const InvertedIndex& index,
                                 size_t page_bytes) {
  if (page_bytes == 0) page_bytes = index.options().page_bytes;
  PostingStore store;
  store.file_ = PagedFile(page_bytes);
  const size_t num_tokens = index.num_tokens();
  store.offsets_.resize(num_tokens);
  store.counts_.resize(num_tokens);
  std::vector<uint8_t> buf;
  for (uint32_t t = 0; t < num_tokens; ++t) {
    const size_t n = index.ListSize(t);
    store.counts_[t] = static_cast<uint32_t>(n);
    // Page-align each list start so scans don't share pages across lists.
    size_t pos = store.file_.size();
    size_t misalign = pos % page_bytes;
    if (misalign != 0 && n > 0) {
      std::vector<uint8_t> pad(page_bytes - misalign, 0);
      store.file_.Append(pad.data(), pad.size());
    }
    store.offsets_[t] = store.file_.size();
    const uint32_t* ids = index.LenIds(t);
    const float* lens = index.LenLens(t);
    buf.clear();
    buf.reserve(n * kPostingBytes);
    for (size_t i = 0; i < n; ++i) {
      PutFixed32(&buf, ids[i]);
      PutFloat(&buf, lens[i]);
    }
    store.file_.Append(buf.data(), buf.size());
  }
  return store;
}

uint64_t PostingStore::total_postings() const {
  uint64_t total = 0;
  for (uint32_t c : counts_) total += c;
  return total;
}

size_t PostingStore::ReadBlock(uint32_t token, size_t first, size_t count,
                               uint32_t* ids, float* lens, bool random,
                               PageReadStats* reader, Status* status) const {
  SIMSEL_DCHECK(token < counts_.size());
  if (status != nullptr) *status = Status::Ok();
  const size_t n = counts_[token];
  if (first >= n) return 0;
  count = std::min(count, n - first);
  std::vector<uint8_t> raw(count * kPostingBytes);
  // Stats-less callers get a fresh window per call: every read then charges
  // its first page, which is the conservative (seek-per-call) model.
  PageReadStats one_shot;
  PageReadStats* rs = reader != nullptr ? reader : &one_shot;
  const uint64_t seq_before = rs->seq_reads;
  const uint64_t rand_before = rs->rand_reads;
  Status st = file_.ReadAt(offsets_[token] + first * kPostingBytes,
                           raw.size(), raw.data(), random, rs);
  if (!st.ok()) {
    if (status == nullptr) {
      SIMSEL_CHECK_MSG(st.ok(), st.ToString().c_str());
    }
    *status = std::move(st);
    return 0;
  }
  seq_reads_.fetch_add(rs->seq_reads - seq_before, std::memory_order_relaxed);
  rand_reads_.fetch_add(rs->rand_reads - rand_before,
                        std::memory_order_relaxed);
  Decoder dec{raw.data(), raw.size(), 0};
  for (size_t i = 0; i < count; ++i) {
    GetFixed32(&dec, &ids[i]);
    GetFloat(&dec, &lens[i]);
  }
  return count;
}

Status PostingStore::Save(const std::string& path) const {
  // Directory block appended to a copy of the image, so the image itself
  // stays page-aligned: [image][directory][dir_size fixed64] inside one
  // checksummed PagedFile payload.
  PagedFile out(file_.page_size());
  out.Append(file_.contents().data(), file_.contents().size());
  std::vector<uint8_t> dir;
  PutFixed64(&dir, counts_.size());
  for (size_t t = 0; t < counts_.size(); ++t) {
    PutVarint64(&dir, offsets_[t]);
    PutVarint32(&dir, counts_[t]);
  }
  PutFixed64(&dir, dir.size() + 8);  // directory block size incl. this field
  out.Append(dir.data(), dir.size());
  return out.SaveToFile(path);
}

Result<PostingStore> PostingStore::Load(const std::string& path) {
  Result<PagedFile> file = PagedFile::LoadFromFile(path);
  if (!file.ok()) return file.status();
  const std::vector<uint8_t>& buf = file->contents();
  if (buf.size() < 8) return Status::Corruption("store too small: " + path);
  Decoder tail{buf.data(), buf.size(), buf.size() - 8};
  uint64_t dir_size;
  GetFixed64(&tail, &dir_size);
  if (dir_size < 16 || dir_size > buf.size()) {
    return Status::Corruption("bad directory size in: " + path);
  }
  size_t dir_start = buf.size() - dir_size;
  Decoder dec{buf.data(), buf.size() - 8, dir_start};
  uint64_t num_tokens;
  if (!GetFixed64(&dec, &num_tokens)) {
    return Status::Corruption("truncated directory in: " + path);
  }
  PostingStore store;
  store.offsets_.resize(num_tokens);
  store.counts_.resize(num_tokens);
  for (uint64_t t = 0; t < num_tokens; ++t) {
    uint64_t offset;
    uint32_t count;
    if (!GetVarint64(&dec, &offset) || !GetVarint32(&dec, &count)) {
      return Status::Corruption("truncated directory entry in: " + path);
    }
    if (offset + static_cast<uint64_t>(count) * kPostingBytes > dir_start) {
      return Status::Corruption("list range out of bounds in: " + path);
    }
    store.offsets_[t] = offset;
    store.counts_[t] = count;
  }
  store.file_ = PagedFile(file->page_size());
  store.file_.Append(buf.data(), dir_start);
  return store;
}

}  // namespace simsel
