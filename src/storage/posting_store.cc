#include "storage/posting_store.h"

#include <cstring>

#include "common/logging.h"
#include "index/inverted_index.h"
#include "storage/codec.h"

namespace simsel {

PostingStore PostingStore::Build(const InvertedIndex& index,
                                 size_t page_bytes) {
  if (page_bytes == 0) page_bytes = index.options().page_bytes;
  PostingStore store;
  store.file_ = PagedFile(page_bytes);
  store.block_postings_ = index.block_postings();
  const size_t bp = store.block_postings_;
  const size_t num_tokens = index.num_tokens();
  store.offsets_.resize(num_tokens);
  store.counts_.resize(num_tokens);
  store.blk_index_.assign(num_tokens + 1, 0);
  std::vector<uint8_t> buf;
  for (uint32_t t = 0; t < num_tokens; ++t) {
    const size_t n = index.ListSize(t);
    store.counts_[t] = static_cast<uint32_t>(n);
    // Page-align each list start so scans don't share pages across lists.
    size_t pos = store.file_.size();
    size_t misalign = pos % page_bytes;
    if (misalign != 0 && n > 0) {
      std::vector<uint8_t> pad(page_bytes - misalign, 0);
      store.file_.Append(pad.data(), pad.size());
    }
    store.offsets_[t] = store.file_.size();
    const uint32_t* ids = index.LenIds(t);
    const float* lens = index.LenLens(t);
    buf.clear();
    for (size_t first = 0; first < n; first += bp) {
      EncodePostingBlock(ids + first, lens + first, std::min(bp, n - first),
                         &buf);
      store.blk_ends_.push_back(static_cast<uint32_t>(buf.size()));
    }
    store.blk_index_[t + 1] = store.blk_ends_.size();
    store.file_.Append(buf.data(), buf.size());
  }
  return store;
}

uint64_t PostingStore::total_postings() const {
  uint64_t total = 0;
  for (uint32_t c : counts_) total += c;
  return total;
}

size_t PostingStore::ReadBlock(uint32_t token, size_t first, size_t count,
                               uint32_t* ids, float* lens, bool random,
                               PageReadStats* reader, Status* status,
                               BlockDecodeScratch* scratch) const {
  SIMSEL_DCHECK(token < counts_.size());
  if (status != nullptr) *status = Status::Ok();
  const size_t n = counts_[token];
  if (first >= n) return 0;
  count = std::min(count, n - first);
  if (scratch == nullptr) {
    thread_local BlockDecodeScratch shared;
    scratch = &shared;
  }
  const size_t bp = block_postings_;
  const size_t b0 = first / bp;
  const size_t b1 = (first + count - 1) / bp;
  const uint64_t base = blk_index_[token];
  // One physical read of the compressed span. The read always happens —
  // even when the decoded block is cached — so page accounting reflects
  // actual positioning, not the caller's scratch reuse pattern.
  const uint64_t bytes_begin = b0 == 0 ? 0 : blk_ends_[base + b0 - 1];
  const uint64_t bytes_end = blk_ends_[base + b1];
  scratch->raw.resize(bytes_end - bytes_begin);
  // Stats-less callers get a fresh window per call: every read then charges
  // its first page, which is the conservative (seek-per-call) model.
  PageReadStats one_shot;
  PageReadStats* rs = reader != nullptr ? reader : &one_shot;
  const uint64_t seq_before = rs->seq_reads;
  const uint64_t rand_before = rs->rand_reads;
  Status st = file_.ReadAt(offsets_[token] + bytes_begin, scratch->raw.size(),
                           scratch->raw.data(), random, rs);
  if (!st.ok()) {
    if (status == nullptr) {
      SIMSEL_CHECK_MSG(st.ok(), st.ToString().c_str());
    }
    *status = std::move(st);
    return 0;
  }
  seq_reads_.fetch_add(rs->seq_reads - seq_before, std::memory_order_relaxed);
  rand_reads_.fetch_add(rs->rand_reads - rand_before,
                        std::memory_order_relaxed);
  size_t out = 0;
  for (size_t b = b0; b <= b1; ++b) {
    const size_t blk_first = b * bp;
    const size_t blk_count = std::min(bp, n - blk_first);
    const bool cached = scratch->owner == this && scratch->token == token &&
                        scratch->first == blk_first &&
                        scratch->ids.size() >= blk_count;
    if (!cached) {
      scratch->InvalidateCache();  // ids/lens are garbage until decode is done
      scratch->ids.resize(bp);
      scratch->lens.resize(bp);
      const uint64_t bs =
          (b == 0 ? 0 : blk_ends_[base + b - 1]) - bytes_begin;
      const uint64_t be = blk_ends_[base + b] - bytes_begin;
      size_t got = 0, consumed = 0;
      // The image was built by EncodePostingBlock and checksummed by
      // PagedFile, so a decode failure is an internal invariant violation,
      // not an I/O condition.
      const bool ok =
          DecodePostingBlock(scratch->raw.data() + bs, be - bs, blk_count,
                             scratch->ids.data(), scratch->lens.data(), &got,
                             &consumed, scratch) &&
          got == blk_count && consumed == be - bs;
      SIMSEL_CHECK_MSG(ok, "corrupt posting block in store image");
      scratch->owner = this;
      scratch->token = token;
      scratch->first = blk_first;
    }
    const size_t lo = std::max(first, blk_first);
    const size_t hi = std::min(first + count, blk_first + blk_count);
    std::memcpy(ids + out, scratch->ids.data() + (lo - blk_first),
                (hi - lo) * sizeof(uint32_t));
    std::memcpy(lens + out, scratch->lens.data() + (lo - blk_first),
                (hi - lo) * sizeof(float));
    out += hi - lo;
  }
  SIMSEL_DCHECK(out == count);
  return count;
}

Status PostingStore::Save(const std::string& path) const {
  // Directory block appended to a copy of the image, so the image itself
  // stays page-aligned: [image][directory][dir_size fixed64] inside one
  // checksummed PagedFile payload.
  PagedFile out(file_.page_size());
  out.Append(file_.contents().data(), file_.contents().size());
  std::vector<uint8_t> dir;
  PutFixed64(&dir, counts_.size());
  PutFixed64(&dir, block_postings_);
  for (size_t t = 0; t < counts_.size(); ++t) {
    PutVarint64(&dir, offsets_[t]);
    PutVarint32(&dir, counts_[t]);
    // Per-block compressed sizes (the ends are reconstructed on Load).
    uint32_t prev_end = 0;
    for (uint64_t b = blk_index_[t]; b < blk_index_[t + 1]; ++b) {
      PutVarint32(&dir, blk_ends_[b] - prev_end);
      prev_end = blk_ends_[b];
    }
  }
  PutFixed64(&dir, dir.size() + 8);  // directory block size incl. this field
  out.Append(dir.data(), dir.size());
  return out.SaveToFile(path);
}

Result<PostingStore> PostingStore::Load(const std::string& path) {
  Result<PagedFile> file = PagedFile::LoadFromFile(path);
  if (!file.ok()) return file.status();
  const std::vector<uint8_t>& buf = file->contents();
  if (buf.size() < 8) return Status::Corruption("store too small: " + path);
  Decoder tail{buf.data(), buf.size(), buf.size() - 8};
  uint64_t dir_size;
  GetFixed64(&tail, &dir_size);
  if (dir_size < 24 || dir_size > buf.size()) {
    return Status::Corruption("bad directory size in: " + path);
  }
  size_t dir_start = buf.size() - dir_size;
  Decoder dec{buf.data(), buf.size() - 8, dir_start};
  uint64_t num_tokens, block_postings;
  if (!GetFixed64(&dec, &num_tokens) || !GetFixed64(&dec, &block_postings) ||
      block_postings == 0) {
    return Status::Corruption("truncated directory in: " + path);
  }
  PostingStore store;
  store.block_postings_ = block_postings;
  store.offsets_.resize(num_tokens);
  store.counts_.resize(num_tokens);
  store.blk_index_.assign(num_tokens + 1, 0);
  for (uint64_t t = 0; t < num_tokens; ++t) {
    uint64_t offset;
    uint32_t count;
    if (!GetVarint64(&dec, &offset) || !GetVarint32(&dec, &count)) {
      return Status::Corruption("truncated directory entry in: " + path);
    }
    const uint64_t num_blocks =
        (count + block_postings - 1) / block_postings;
    uint32_t end = 0;
    for (uint64_t b = 0; b < num_blocks; ++b) {
      uint32_t size;
      if (!GetVarint32(&dec, &size)) {
        return Status::Corruption("truncated block directory in: " + path);
      }
      end += size;
      store.blk_ends_.push_back(end);
    }
    if (offset + static_cast<uint64_t>(end) > dir_start) {
      return Status::Corruption("list range out of bounds in: " + path);
    }
    store.offsets_[t] = offset;
    store.counts_[t] = count;
    store.blk_index_[t + 1] = store.blk_ends_.size();
  }
  store.file_ = PagedFile(file->page_size());
  store.file_.Append(buf.data(), dir_start);
  return store;
}

}  // namespace simsel
