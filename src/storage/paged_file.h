#ifndef SIMSEL_STORAGE_PAGED_FILE_H_
#define SIMSEL_STORAGE_PAGED_FILE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/fault_injector.h"

namespace simsel {

/// Per-reader page-read accounting: the sequential/random tallies plus the
/// sequential-window page the OS-readahead simulation depends on. The window
/// is *reader* state, not file state — two query threads scanning the same
/// file each have their own notion of "the page under the head" — so each
/// concurrent reader owns one of these and passes it to the const ReadAt
/// overload. Shareable PagedFile images stay immutable under reads.
struct PageReadStats {
  uint64_t seq_reads = 0;
  uint64_t rand_reads = 0;
  // Last page charged by a sequential read; reads within it are free.
  uint64_t last_seq_page = UINT64_MAX;

  void Reset() {
    seq_reads = 0;
    rand_reads = 0;
    last_seq_page = UINT64_MAX;
  }
};

/// In-memory image of a disk file with page-granular read accounting.
///
/// The paper's indexes are disk-resident; their cost model is dominated by
/// sequential vs random page reads. PagedFile simulates that: every ReadAt
/// charges the pages the range spans, and consecutive sequential reads that
/// stay on an already-charged page are free, mirroring OS readahead of a
/// hot page. Save/Load persist the image with an FNV-1a checksum so that
/// corruption is detected at load time.
///
/// Thread safety: the const ReadAt overload never mutates the file — all
/// accounting lands in the caller's PageReadStats — so any number of readers
/// may share one image concurrently. The convenience overload without a
/// stats argument charges the file's own instance stats and is for
/// single-threaded use (tests, tools). Append/Save/Load are exclusive.
class PagedFile {
 public:
  static constexpr size_t kDefaultPageSize = 4096;

  explicit PagedFile(size_t page_size = kDefaultPageSize);

  size_t page_size() const { return page_size_; }
  size_t size() const { return data_.size(); }
  size_t num_pages() const {
    return (data_.size() + page_size_ - 1) / page_size_;
  }

  /// Appends `len` bytes and returns the offset they were written at.
  uint64_t Append(const void* data, size_t len);

  /// Reads `len` bytes at `offset` into `dst`, charging the touched pages to
  /// `*stats` (`random` selects the counter and resets the sequential
  /// window). Const and side-effect-free on the file: safe to call from any
  /// number of threads concurrently, each with its own stats.
  Status ReadAt(uint64_t offset, size_t len, void* dst, bool random,
                PageReadStats* stats) const;

  /// Single-threaded convenience: charges the file's instance stats.
  Status ReadAt(uint64_t offset, size_t len, void* dst, bool random = false) {
    return ReadAt(offset, len, dst, random, &stats_);
  }

  /// Raw view for zero-copy decoding (does not count page reads).
  const std::vector<uint8_t>& contents() const { return data_; }
  std::vector<uint8_t>* mutable_contents() { return &data_; }

  uint64_t sequential_page_reads() const { return stats_.seq_reads; }
  uint64_t random_page_reads() const { return stats_.rand_reads; }
  void ResetCounters() { stats_.Reset(); }

  /// Writes `page_size | payload | fnv64(payload)` to `path`.
  Status SaveToFile(const std::string& path) const;

  /// Loads a file written by SaveToFile; returns Corruption on a bad
  /// checksum or truncated file.
  static Result<PagedFile> LoadFromFile(const std::string& path);

  /// Attaches a scripted fault source (borrowed, may be null to detach).
  /// While armed, ReadAt fails with Unavailable before touching accounting
  /// or the destination buffer. Tests only; production images leave this
  /// null, which costs one pointer test per read.
  void set_fault_injector(FaultInjector* injector) {
    fault_injector_ = injector;
  }
  FaultInjector* fault_injector() const { return fault_injector_; }

 private:
  size_t page_size_;
  std::vector<uint8_t> data_;
  // Accounting for the stats-less ReadAt overload only.
  PageReadStats stats_;
  // Borrowed test hook; consulted at the top of ReadAt.
  FaultInjector* fault_injector_ = nullptr;
};

}  // namespace simsel

#endif  // SIMSEL_STORAGE_PAGED_FILE_H_
