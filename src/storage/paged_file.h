#ifndef SIMSEL_STORAGE_PAGED_FILE_H_
#define SIMSEL_STORAGE_PAGED_FILE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace simsel {

/// In-memory image of a disk file with page-granular read accounting.
///
/// The paper's indexes are disk-resident; their cost model is dominated by
/// sequential vs random page reads. PagedFile simulates that: every ReadAt
/// charges the pages the range spans, and consecutive sequential reads that
/// stay on an already-charged page are free, mirroring OS readahead of a
/// hot page. Save/Load persist the image with an FNV-1a checksum so that
/// corruption is detected at load time.
class PagedFile {
 public:
  static constexpr size_t kDefaultPageSize = 4096;

  explicit PagedFile(size_t page_size = kDefaultPageSize);

  size_t page_size() const { return page_size_; }
  size_t size() const { return data_.size(); }
  size_t num_pages() const {
    return (data_.size() + page_size_ - 1) / page_size_;
  }

  /// Appends `len` bytes and returns the offset they were written at.
  uint64_t Append(const void* data, size_t len);

  /// Reads `len` bytes at `offset` into `dst`. `random` selects the counter
  /// the touched pages are charged to. Returns OutOfRange past EOF.
  Status ReadAt(uint64_t offset, size_t len, void* dst, bool random = false);

  /// Raw view for zero-copy decoding (does not count page reads).
  const std::vector<uint8_t>& contents() const { return data_; }
  std::vector<uint8_t>* mutable_contents() { return &data_; }

  uint64_t sequential_page_reads() const { return seq_reads_; }
  uint64_t random_page_reads() const { return rand_reads_; }
  void ResetCounters();

  /// Writes `page_size | payload | fnv64(payload)` to `path`.
  Status SaveToFile(const std::string& path) const;

  /// Loads a file written by SaveToFile; returns Corruption on a bad
  /// checksum or truncated file.
  static Result<PagedFile> LoadFromFile(const std::string& path);

 private:
  size_t page_size_;
  std::vector<uint8_t> data_;
  uint64_t seq_reads_ = 0;
  uint64_t rand_reads_ = 0;
  // Last page charged by a sequential read; reads within it are free.
  uint64_t last_seq_page_ = UINT64_MAX;
};

}  // namespace simsel

#endif  // SIMSEL_STORAGE_PAGED_FILE_H_
