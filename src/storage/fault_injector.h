#ifndef SIMSEL_STORAGE_FAULT_INJECTOR_H_
#define SIMSEL_STORAGE_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>

#include "common/status.h"

namespace simsel {

/// Scripted transient-read-failure source for tests. A PagedFile consults an
/// attached injector at the top of every ReadAt; while the injector is armed
/// the read fails with Status::Unavailable *before* any accounting or byte
/// copy happens, exactly like a storage layer returning EAGAIN. Arm it with
/// FailNextReads(n) to fail the next n reads (use a huge n for a persistent
/// outage), then let BatchSelect's bounded retry — or the test itself —
/// observe the recovery.
///
/// Thread safety: fully atomic; one injector may sit under any number of
/// concurrent query threads, and the countdown hands out exactly n failures
/// across all of them.
class FaultInjector {
 public:
  /// Arms the injector: the next `n` reads fail. Replaces (not adds to) any
  /// previous arming.
  void FailNextReads(uint64_t n) {
    remaining_.store(static_cast<int64_t>(n), std::memory_order_relaxed);
  }

  /// Consult point for the storage layer: returns Unavailable and decrements
  /// the countdown while armed, OK otherwise.
  Status MaybeFail() {
    // Fast path: a disarmed injector is one relaxed load.
    if (remaining_.load(std::memory_order_relaxed) <= 0) return Status::Ok();
    // Claim one failure; the CAS loop keeps the handed-out count exact under
    // concurrency (never more than the armed n).
    int64_t cur = remaining_.load(std::memory_order_relaxed);
    while (cur > 0) {
      if (remaining_.compare_exchange_weak(cur, cur - 1,
                                           std::memory_order_relaxed)) {
        injected_.fetch_add(1, std::memory_order_relaxed);
        return Status::Unavailable("injected transient read failure");
      }
    }
    return Status::Ok();
  }

  /// Total failures injected since construction/Reset.
  uint64_t injected() const {
    return injected_.load(std::memory_order_relaxed);
  }

  /// Reads still armed to fail.
  uint64_t remaining() const {
    int64_t r = remaining_.load(std::memory_order_relaxed);
    return r > 0 ? static_cast<uint64_t>(r) : 0;
  }

  void Reset() {
    remaining_.store(0, std::memory_order_relaxed);
    injected_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<int64_t> remaining_{0};
  std::atomic<uint64_t> injected_{0};
};

}  // namespace simsel

#endif  // SIMSEL_STORAGE_FAULT_INJECTOR_H_
