#ifndef SIMSEL_STORAGE_POSTING_STORE_H_
#define SIMSEL_STORAGE_POSTING_STORE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/paged_file.h"

namespace simsel {

class InvertedIndex;

/// Disk-resident image of the by-length posting lists.
///
/// The paper's inverted lists are "specialized disk resident indexes"; this
/// store is that representation: every posting serialized as 8 bytes
/// (fixed32 id + float len) into a PagedFile, lists page-aligned so one
/// list's scan never pays for a neighbor's pages. Cursors read through
/// ReadBlock — an honest byte copy out of the page image, charged to the
/// PagedFile's sequential/random counters — instead of dereferencing the
/// in-memory arrays. Wire a store into SelectOptions::posting_store (with
/// an optional BufferPool) to run any algorithm in disk mode.
///
/// Persistence: the underlying PagedFile round-trips via Save/Load with the
/// list directory re-encoded in the image header.
class PostingStore {
 public:
  /// Serializes `index`'s by-length lists. `page_bytes` is the modeled disk
  /// page size (defaults to the index's).
  static PostingStore Build(const InvertedIndex& index, size_t page_bytes = 0);

  size_t num_tokens() const { return counts_.size(); }
  size_t ListSize(uint32_t token) const { return counts_[token]; }
  uint64_t total_postings() const;

  /// Disk bytes including page-alignment padding.
  size_t SizeBytes() const { return file_.size(); }
  size_t page_bytes() const { return file_.page_size(); }

  /// Copies postings [first, first + count) of `token`'s list out of the
  /// page image. `random` charges the touched pages as a random read (the
  /// first fetch after a seek); sequential continuation reads are free
  /// within an already-charged page. Returns the number of postings read.
  size_t ReadBlock(uint32_t token, size_t first, size_t count, uint32_t* ids,
                   float* lens, bool random = false) const;

  uint64_t sequential_page_reads() const {
    return file_.sequential_page_reads();
  }
  uint64_t random_page_reads() const { return file_.random_page_reads(); }
  void ResetCounters() const { file_.ResetCounters(); }

  /// Persists / restores the image (checksummed; see PagedFile).
  Status Save(const std::string& path) const;
  static Result<PostingStore> Load(const std::string& path);

 private:
  PostingStore() : file_(PagedFile::kDefaultPageSize) {}

  static constexpr size_t kPostingBytes = 8;

  mutable PagedFile file_;
  std::vector<uint64_t> offsets_;  // byte offset of each list
  std::vector<uint32_t> counts_;
};

}  // namespace simsel

#endif  // SIMSEL_STORAGE_POSTING_STORE_H_
