#ifndef SIMSEL_STORAGE_POSTING_STORE_H_
#define SIMSEL_STORAGE_POSTING_STORE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/block_codec.h"
#include "storage/paged_file.h"

namespace simsel {

class InvertedIndex;

/// Disk-resident image of the by-length posting lists.
///
/// The paper's inverted lists are "specialized disk resident indexes"; this
/// store is that representation: every list serialized as a run of
/// compressed posting blocks (storage/block_codec.h) aligned to the index's
/// summary blocks, lists page-aligned so one list's scan never pays for a
/// neighbor's pages. Cursors read through ReadBlock — an honest byte fetch
/// out of the page image followed by a block decode, charged to the
/// caller's PageReadStats — instead of dereferencing the in-memory arrays.
/// Wire a store into SelectOptions::posting_store (with an optional
/// BufferPool) to run any algorithm in disk mode.
///
/// Thread safety: ReadBlock never mutates the page image. Each reader (one
/// ListCursor per list per query) passes its own PageReadStats and its own
/// BlockDecodeScratch so the sequential-window simulation and the decode
/// staging stay per-reader; the store-level sequential/random totals are
/// relaxed atomics, so one store serves any number of concurrent queries.
/// Build/Save/Load are exclusive.
///
/// Persistence: the underlying PagedFile round-trips via Save/Load with the
/// list/block directory re-encoded in the image header.
class PostingStore {
 public:
  /// Serializes `index`'s by-length lists. `page_bytes` is the modeled disk
  /// page size (defaults to the index's). Block granularity follows
  /// index.block_postings() so store blocks and summary blocks coincide.
  static PostingStore Build(const InvertedIndex& index, size_t page_bytes = 0);

  PostingStore(PostingStore&& other) noexcept { *this = std::move(other); }
  PostingStore& operator=(PostingStore&& other) noexcept {
    file_ = std::move(other.file_);
    block_postings_ = other.block_postings_;
    offsets_ = std::move(other.offsets_);
    counts_ = std::move(other.counts_);
    blk_index_ = std::move(other.blk_index_);
    blk_ends_ = std::move(other.blk_ends_);
    seq_reads_.store(other.seq_reads_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    rand_reads_.store(other.rand_reads_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    return *this;
  }

  size_t num_tokens() const { return counts_.size(); }
  size_t ListSize(uint32_t token) const { return counts_[token]; }
  uint64_t total_postings() const;

  /// Postings per compressed block (matches the source index's summaries).
  size_t block_postings() const { return block_postings_; }

  /// Disk bytes including page-alignment padding.
  size_t SizeBytes() const { return file_.size(); }
  size_t page_bytes() const { return file_.page_size(); }

  /// Copies postings [first, first + count) of `token`'s list out of the
  /// page image: one physical read of the compressed blocks covering the
  /// range, then a per-block decode. `random` charges the touched pages as
  /// a random read (the first fetch after a seek); sequential continuation
  /// reads are free within an already-charged page. `reader`, when
  /// non-null, carries the caller's sequential window across calls (one per
  /// cursor; required for faithful accounting under concurrency — a null
  /// reader treats each call as freshly positioned). `scratch`, when
  /// non-null, provides the decode staging and caches the last decoded
  /// block, so re-reads within one block (e.g. spans clipped by a length
  /// bound) skip the decode — never the physical read, which is charged
  /// identically either way. A null scratch falls back to a thread-local.
  /// Returns the number of postings read. `status`, when non-null, receives
  /// the read outcome (OK, or the injected / real failure) and a failed
  /// call returns 0 postings with the destination buffers untouched. A null
  /// `status` keeps the historical contract: an unexpected read failure is
  /// a checked programming error (crash), appropriate for callers with no
  /// recovery path.
  size_t ReadBlock(uint32_t token, size_t first, size_t count, uint32_t* ids,
                   float* lens, bool random = false,
                   PageReadStats* reader = nullptr, Status* status = nullptr,
                   BlockDecodeScratch* scratch = nullptr) const;

  /// Aggregate physical page reads across every reader of this store
  /// (relaxed atomics; exact once readers have quiesced).
  uint64_t sequential_page_reads() const {
    return seq_reads_.load(std::memory_order_relaxed);
  }
  uint64_t random_page_reads() const {
    return rand_reads_.load(std::memory_order_relaxed);
  }
  void ResetCounters() const {
    seq_reads_.store(0, std::memory_order_relaxed);
    rand_reads_.store(0, std::memory_order_relaxed);
  }

  /// Persists / restores the image (checksummed; see PagedFile).
  Status Save(const std::string& path) const;
  static Result<PostingStore> Load(const std::string& path);

  /// Attaches a scripted fault source to the underlying file (borrowed; null
  /// detaches). See FaultInjector.
  void set_fault_injector(FaultInjector* injector) {
    file_.set_fault_injector(injector);
  }

 private:
  PostingStore() : file_(PagedFile::kDefaultPageSize) {}

  PagedFile file_;
  size_t block_postings_ = 128;
  std::vector<uint64_t> offsets_;  // byte offset of each list's first block
  std::vector<uint32_t> counts_;
  // Per-list block layout in CSR form: list t's blocks are
  // blk_ends_[blk_index_[t] .. blk_index_[t+1]), each entry the end byte
  // offset of that compressed block relative to the list start.
  std::vector<uint64_t> blk_index_;  // size num_tokens + 1
  std::vector<uint32_t> blk_ends_;
  // Store-wide totals pooled across concurrent readers.
  mutable std::atomic<uint64_t> seq_reads_{0};
  mutable std::atomic<uint64_t> rand_reads_{0};
};

}  // namespace simsel

#endif  // SIMSEL_STORAGE_POSTING_STORE_H_
