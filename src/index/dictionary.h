#ifndef SIMSEL_INDEX_DICTIONARY_H_
#define SIMSEL_INDEX_DICTIONARY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace simsel {

/// Dense integer handle for a token of the universe U.
using TokenId = uint32_t;

/// Token universe: interns token strings to dense TokenIds and tracks
/// document frequency N(t) — the number of *sets* containing each token,
/// which is the denominator of idf(t) = log2(1 + N / N(t)).
class Dictionary {
 public:
  Dictionary() = default;

  /// Returns the id of `token`, interning it if new.
  TokenId Intern(std::string_view token);

  /// Returns the id of `token` if present.
  std::optional<TokenId> Find(std::string_view token) const;

  /// Records that one more set contains `token` (call once per distinct
  /// token per set, not per occurrence).
  void AddSetOccurrence(TokenId id);

  /// Document frequency N(t).
  uint32_t df(TokenId id) const { return dfs_[id]; }

  const std::string& token(TokenId id) const { return tokens_[id]; }

  /// Number of distinct tokens.
  size_t size() const { return tokens_.size(); }

  /// Bytes of token text plus df table (Figure 5 accounting).
  size_t SizeBytes() const;

 private:
  // Heterogeneous lookup so Find/Intern take string_view without allocating.
  struct StringHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };

  std::unordered_map<std::string, TokenId, StringHash, std::equal_to<>> map_;
  std::vector<std::string> tokens_;
  std::vector<uint32_t> dfs_;
};

}  // namespace simsel

#endif  // SIMSEL_INDEX_DICTIONARY_H_
