#include "index/list_cursor.h"

#include <algorithm>

#include "common/logging.h"
#include "obs/metrics_registry.h"
#include "simd/kernels.h"

namespace simsel {

namespace {

// Process-wide cursor counters, resolved once. Per-posting accounting stays
// in plain per-cursor ints; only the flush at end-of-scan touches these.
struct CursorMetrics {
  obs::Counter* lists_opened;
  obs::Counter* postings_read;
  obs::Counter* postings_skipped;
  obs::Counter* read_faults;
};

const CursorMetrics& GetCursorMetrics() {
  static const CursorMetrics m = [] {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
    return CursorMetrics{reg.GetCounter("simsel_lists_opened_total"),
                         reg.GetCounter("simsel_postings_read_total"),
                         reg.GetCounter("simsel_postings_skipped_total"),
                         reg.GetCounter("simsel_cursor_read_faults_total")};
  }();
  return m;
}

}  // namespace

ListCursor::ListCursor(const InvertedIndex& index, TokenId token,
                       bool use_skip, AccessCounters* counters,
                       BufferPool* pool, const PostingStore* store)
    : index_(&index),
      ids_(index.LenIds(token)),
      lens_(index.LenLens(token)),
      size_(index.ListSize(token)),
      use_skip_(use_skip),
      counters_(counters),
      pool_(pool),
      store_(store),
      token_(token),
      entries_per_page_(index.entries_per_page()),
      page_bytes_(index.options().page_bytes) {
  GetCursorMetrics().lists_opened->Increment();
  if (counters_ != nullptr) counters_->elements_total += size_;
  if (store_ != nullptr) {
    SIMSEL_DCHECK(store_->ListSize(token) == size_);
    // Buffer one compressed block: the store's decode granularity, which
    // Build aligned with the index's summary blocks.
    SIMSEL_DCHECK(store_->block_postings() == index.block_postings());
    blk_ids_.resize(store_->block_postings());
    blk_lens_.resize(store_->block_postings());
  }
}

bool ListCursor::EnsureBlock(bool random) {
  if (store_ == nullptr) return true;
  size_t pos = static_cast<size_t>(pos_);
  if (blk_count_ > 0 && pos >= blk_first_ && pos < blk_first_ + blk_count_) {
    return true;
  }
  size_t block = blk_ids_.size();
  blk_first_ = pos - pos % block;
  Status st;
  blk_count_ = store_->ReadBlock(token_, blk_first_, block, blk_ids_.data(),
                                 blk_lens_.data(), random, &store_reads_, &st,
                                 &scratch_);
  if (!st.ok()) {
    Fail(std::move(st), pos);
    return false;
  }
  SIMSEL_DCHECK(blk_count_ > 0);
  return true;
}

void ListCursor::Fail(Status st, size_t first_unread) {
  status_ = std::move(st);
  GetCursorMetrics().read_faults->Increment();
  blk_count_ = 0;
  if (!completed_) {
    completed_ = true;
    if (first_unread < size_) {
      local_skipped_ += size_ - first_unread;
      if (counters_ != nullptr) {
        counters_->elements_skipped += size_ - first_unread;
      }
    }
    FlushMetrics();
  }
  // Park at end: AtEnd() true, frontier +inf, every further call a no-op.
  pos_ = static_cast<int64_t>(size_);
}

void ListCursor::TouchPool(int64_t page) {
  if (pool_ == nullptr) return;
  bool hit = pool_->Touch(
      BufferPool::PageKey(token_, static_cast<uint64_t>(page)));
  if (counters_ != nullptr) {
    if (hit) {
      ++counters_->pool_hits;
    } else {
      ++counters_->pool_misses;
    }
  }
}

void ListCursor::FlushMetrics() {
  if (metrics_flushed_) return;
  metrics_flushed_ = true;
  const CursorMetrics& m = GetCursorMetrics();
  if (local_reads_ > 0) m.postings_read->Increment(local_reads_);
  if (local_skipped_ > 0) m.postings_skipped->Increment(local_skipped_);
}

void ListCursor::ChargeRead() {
  ++local_reads_;
  if (counters_ == nullptr && pool_ == nullptr) return;
  if (counters_ != nullptr) ++counters_->elements_read;
  int64_t page = pos_ / static_cast<int64_t>(entries_per_page_);
  if (page != last_page_) {
    if (counters_ != nullptr) ++counters_->seq_page_reads;
    TouchPool(page);
    last_page_ = page;
  }
}

void ListCursor::ChargeSpan(size_t start, size_t end) {
  if (end <= start) return;
  const size_t k = end - start;
  local_reads_ += k;
  bool random_landing = pending_random_;
  pending_random_ = false;
  if (counters_ == nullptr && pool_ == nullptr) return;
  if (counters_ != nullptr) counters_->elements_read += k;
  // Page accounting, identical to k consecutive ChargeRead() calls: one
  // charge per page transition, except that a landing page reached through a
  // summary seek is a random read (the seek path charged it already when
  // random_landing, see SeekSpanStart) -- here the landing page is charged
  // as random instead of sequential exactly when the jump repositioned the
  // sequential window.
  const int64_t first_page =
      static_cast<int64_t>(start / entries_per_page_);
  const int64_t last_span_page =
      static_cast<int64_t>((end - 1) / entries_per_page_);
  for (int64_t page = first_page; page <= last_span_page; ++page) {
    if (page == first_page && random_landing) {
      if (counters_ != nullptr) ++counters_->rand_page_reads;
      TouchPool(page);
      last_page_ = page;
      continue;
    }
    if (page != last_page_) {
      if (counters_ != nullptr) ++counters_->seq_page_reads;
      TouchPool(page);
      last_page_ = page;
    }
  }
}

void ListCursor::Next() {
  if (AtEnd()) return;
  ++pos_;
  if (!AtEnd()) {
    if (!EnsureBlock(/*random=*/pending_random_)) return;
    if (pending_random_) {
      // A span-seek landed just before this posting; its page is reached by
      // a random jump, mirroring the landing read of SeekLengthGE.
      pending_random_ = false;
      ++local_reads_;
      last_page_ = pos_ / static_cast<int64_t>(entries_per_page_);
      TouchPool(last_page_);
      if (counters_ != nullptr) {
        ++counters_->elements_read;
        ++counters_->rand_page_reads;
      }
      return;
    }
    ChargeRead();
  }
}

void ListCursor::SeekLengthGE(float target) {
  if (AtEnd()) return;
  if (pos_ >= 0 && len() >= target) return;  // already positioned past
  size_t start = static_cast<size_t>(pos_ + 1);
  if (use_skip_) {
    uint64_t probes = 0;
    size_t dest = index_->SeekFirstGE(token_, target, &probes);
    if (dest < start) dest = start;  // forward only
    local_skipped_ += dest - start;
    if (counters_ != nullptr) {
      counters_->elements_skipped += dest - start;
      // The descent reads `probes` block summaries; charge the pages they
      // occupy as random reads, at least one per consulted seek.
      counters_->rand_page_reads +=
          1 + (probes * sizeof(PostingBlockSummary)) / page_bytes_;
    }
    pos_ = static_cast<int64_t>(dest);
    if (!AtEnd()) {
      // Landing after a random jump repositions the sequential window.
      if (!EnsureBlock(/*random=*/true)) return;
      last_page_ = pos_ / static_cast<int64_t>(entries_per_page_);
      TouchPool(last_page_);
      ++local_reads_;
      if (counters_ != nullptr) {
        ++counters_->elements_read;
        ++counters_->rand_page_reads;
      }
    }
    return;
  }
  // No skips: read-and-discard sequentially (the NSL ablation).
  do {
    ++pos_;
    if (AtEnd()) return;
    if (!EnsureBlock(/*random=*/false)) return;
    ChargeRead();
  } while (len() < target);
}

void ListCursor::SeekSpanStart(float target) {
  const size_t start = static_cast<size_t>(pos_ + 1);
  if (start >= size_ || lens_[start] >= target) return;
  if (use_skip_) {
    uint64_t probes = 0;
    size_t dest = index_->SeekFirstGE(token_, target, &probes);
    if (dest < start) dest = start;  // forward only
    local_skipped_ += dest - start;
    if (counters_ != nullptr) {
      counters_->elements_skipped += dest - start;
      counters_->rand_page_reads +=
          1 + (probes * sizeof(PostingBlockSummary)) / page_bytes_;
    }
    pos_ = static_cast<int64_t>(dest) - 1;
    // The landing posting is not read here; the first page the next span
    // (or Next) touches is the random-jump target.
    pending_random_ = dest < size_;
    return;
  }
  // NSL: the prefix below the window is read and discarded. One bulk charge,
  // same totals as stepping through it.
  const size_t dest = static_cast<size_t>(
      std::lower_bound(lens_ + start, lens_ + size_, target) - lens_);
  if (store_ != nullptr) {
    // Pull the discarded pages through the store sequentially.
    size_t p = start;
    while (p < dest) {
      pos_ = static_cast<int64_t>(p);
      if (!EnsureBlock(/*random=*/false)) {
        // Fail() charged [p, size) as skipped; charge the part actually
        // pulled before the fault so read+skipped still covers the list.
        ChargeSpan(start, p);
        pos_ = static_cast<int64_t>(size_);
        return;
      }
      p = blk_first_ + blk_count_;
    }
  }
  ChargeSpan(start, dest);
  pos_ = static_cast<int64_t>(dest) - 1;
}

PostingSpan ListCursor::NextSpan(size_t max_count, float max_len) {
  PostingSpan span;
  const size_t start = static_cast<size_t>(pos_ + 1);
  if (start >= size_ || max_count == 0) return span;
  if (lens_[start] > max_len) return span;

  // Clip to the enclosing summary block so a span never straddles blocks.
  const size_t bp = index_->block_postings();
  size_t end = std::min(size_, (start / bp + 1) * bp);
  end = std::min(end, start + max_count);
  if (max_len != kNoLengthBound) {
    const PostingBlockSummary& h = index_->Blocks(token_)[start / bp];
    if (h.max_len > max_len) {
      // Mixed block: find the true end of the qualifying run (count_le over
      // the sorted lengths == upper_bound index).
      end = start +
            simd::Kernels().count_le_f32(lens_ + start, end - start, max_len);
    }
  }
  if (end <= start) return span;

  if (store_ != nullptr) {
    // Disk mode: fetch the whole span out of the page image in one read, so
    // span boundaries — and therefore every algorithm's batching decisions —
    // are identical to memory mode.
    const size_t count = end - start;
    if (span_ids_.size() < count) {
      span_ids_.resize(count);
      span_lens_.resize(count);
    }
    Status st;
    size_t got = store_->ReadBlock(token_, start, count, span_ids_.data(),
                                   span_lens_.data(), pending_random_,
                                   &store_reads_, &st, &scratch_);
    if (!st.ok()) {
      Fail(std::move(st), start);
      return span;  // empty; the caller's loop sees an exhausted list
    }
    SIMSEL_DCHECK(got == count);
    (void)got;
    span.ids = span_ids_.data();
    span.lens = span_lens_.data();
  } else {
    span.ids = ids_ + start;
    span.lens = lens_ + start;
  }
  span.count = end - start;
  ChargeSpan(start, end);
  pos_ = static_cast<int64_t>(end) - 1;
  return span;
}

void ListCursor::MarkComplete() {
  if (completed_) return;
  completed_ = true;
  if (!AtEnd()) {
    size_t next_unread = static_cast<size_t>(pos_ + 1);
    if (next_unread < size_) {
      local_skipped_ += size_ - next_unread;
      if (counters_ != nullptr) {
        counters_->elements_skipped += size_ - next_unread;
      }
    }
  }
  pos_ = static_cast<int64_t>(size_);
  FlushMetrics();
}

}  // namespace simsel
