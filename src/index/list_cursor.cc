#include "index/list_cursor.h"

#include "common/logging.h"
#include "obs/metrics_registry.h"

namespace simsel {

namespace {

// Process-wide cursor counters, resolved once. Per-posting accounting stays
// in plain per-cursor ints; only the flush at end-of-scan touches these.
struct CursorMetrics {
  obs::Counter* lists_opened;
  obs::Counter* postings_read;
  obs::Counter* postings_skipped;
};

const CursorMetrics& GetCursorMetrics() {
  static const CursorMetrics m = [] {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
    return CursorMetrics{reg.GetCounter("simsel_lists_opened_total"),
                         reg.GetCounter("simsel_postings_read_total"),
                         reg.GetCounter("simsel_postings_skipped_total")};
  }();
  return m;
}

}  // namespace

ListCursor::ListCursor(const InvertedIndex& index, TokenId token,
                       bool use_skip, AccessCounters* counters,
                       BufferPool* pool, const PostingStore* store)
    : ids_(index.LenIds(token)),
      lens_(index.LenLens(token)),
      size_(index.ListSize(token)),
      skip_(use_skip ? index.skip(token) : nullptr),
      counters_(counters),
      pool_(pool),
      store_(store),
      token_(token),
      entries_per_page_(index.entries_per_page()),
      page_bytes_(index.options().page_bytes) {
  GetCursorMetrics().lists_opened->Increment();
  if (counters_ != nullptr) counters_->elements_total += size_;
  if (store_ != nullptr) {
    SIMSEL_DCHECK(store_->ListSize(token) == size_);
    size_t block = store_->page_bytes() / 8;
    blk_ids_.resize(block);
    blk_lens_.resize(block);
  }
}

void ListCursor::EnsureBlock(bool random) {
  if (store_ == nullptr) return;
  size_t pos = static_cast<size_t>(pos_);
  if (blk_count_ > 0 && pos >= blk_first_ && pos < blk_first_ + blk_count_) {
    return;
  }
  size_t block = blk_ids_.size();
  blk_first_ = pos - pos % block;
  blk_count_ = store_->ReadBlock(token_, blk_first_, block, blk_ids_.data(),
                                 blk_lens_.data(), random);
  SIMSEL_DCHECK(blk_count_ > 0);
}

void ListCursor::TouchPool(int64_t page) {
  if (pool_ == nullptr) return;
  bool hit = pool_->Touch(
      BufferPool::PageKey(token_, static_cast<uint64_t>(page)));
  if (counters_ != nullptr) {
    if (hit) {
      ++counters_->pool_hits;
    } else {
      ++counters_->pool_misses;
    }
  }
}

void ListCursor::FlushMetrics() {
  if (metrics_flushed_) return;
  metrics_flushed_ = true;
  const CursorMetrics& m = GetCursorMetrics();
  if (local_reads_ > 0) m.postings_read->Increment(local_reads_);
  if (local_skipped_ > 0) m.postings_skipped->Increment(local_skipped_);
}

void ListCursor::ChargeRead() {
  ++local_reads_;
  if (counters_ == nullptr && pool_ == nullptr) return;
  if (counters_ != nullptr) ++counters_->elements_read;
  int64_t page = pos_ / static_cast<int64_t>(entries_per_page_);
  if (page != last_page_) {
    if (counters_ != nullptr) ++counters_->seq_page_reads;
    TouchPool(page);
    last_page_ = page;
  }
}

void ListCursor::Next() {
  if (AtEnd()) return;
  ++pos_;
  if (!AtEnd()) {
    EnsureBlock(/*random=*/false);
    ChargeRead();
  }
}

void ListCursor::SeekLengthGE(float target) {
  if (AtEnd()) return;
  if (pos_ >= 0 && len() >= target) return;  // already positioned past
  size_t start = static_cast<size_t>(pos_ + 1);
  if (skip_ != nullptr) {
    uint64_t nodes = 0;
    size_t dest = skip_->SeekFirstGE(target, &nodes);
    if (dest < start) dest = start;  // forward only
    local_skipped_ += dest - start;
    if (counters_ != nullptr) {
      counters_->elements_skipped += dest - start;
      // Skip nodes are 8 bytes; charge the pages the descent touched, at
      // least one per seek that actually consulted the structure.
      if (nodes > 0) {
        counters_->rand_page_reads += 1 + (nodes * 8) / page_bytes_;
      }
    }
    pos_ = static_cast<int64_t>(dest);
    if (!AtEnd()) {
      // Landing after a random jump repositions the sequential window.
      EnsureBlock(/*random=*/true);
      last_page_ = pos_ / static_cast<int64_t>(entries_per_page_);
      TouchPool(last_page_);
      ++local_reads_;
      if (counters_ != nullptr) {
        ++counters_->elements_read;
        ++counters_->rand_page_reads;
      }
    }
    return;
  }
  // No skip index: read-and-discard sequentially (the NSL ablation).
  do {
    ++pos_;
    if (AtEnd()) return;
    EnsureBlock(/*random=*/false);
    ChargeRead();
  } while (len() < target);
}

void ListCursor::MarkComplete() {
  if (completed_) return;
  completed_ = true;
  if (!AtEnd()) {
    size_t next_unread = static_cast<size_t>(pos_ + 1);
    if (next_unread < size_) {
      local_skipped_ += size_ - next_unread;
      if (counters_ != nullptr) {
        counters_->elements_skipped += size_ - next_unread;
      }
    }
  }
  pos_ = static_cast<int64_t>(size_);
  FlushMetrics();
}

}  // namespace simsel
