#ifndef SIMSEL_INDEX_COLLECTION_H_
#define SIMSEL_INDEX_COLLECTION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "index/dictionary.h"
#include "text/tokenizer.h"

namespace simsel {

/// Dense identifier of a database set (a row of the base table).
using SetId = uint32_t;

/// One database set: the token multiset of a record, stored as sorted
/// distinct token ids with parallel term frequencies. The IDF measure uses
/// only the distinct tokens; TF/IDF and BM25 additionally use the tfs.
struct SetRecord {
  std::vector<TokenId> tokens;  // sorted ascending, distinct
  std::vector<uint32_t> tfs;    // parallel to tokens
  uint32_t multiset_size = 0;   // Σ tfs (BM25 document length)
};

/// The base table: every record string tokenized into a set, plus the token
/// dictionary with document frequencies. This is the paper's "Base Table"
/// (Figure 1) in First Normal Form, before any index is built on it.
class Collection {
 public:
  /// Tokenizes `records` with `tokenizer` and builds the dictionary and all
  /// sets. Record i becomes SetId i.
  static Collection Build(const std::vector<std::string>& records,
                          const Tokenizer& tokenizer);

  size_t size() const { return sets_.size(); }
  const SetRecord& set(SetId id) const { return sets_[id]; }
  const std::string& text(SetId id) const { return texts_[id]; }
  const Dictionary& dictionary() const { return dict_; }

  /// True if set `id` contains `token` (binary search).
  bool Contains(SetId id, TokenId token) const;

  /// Mean multiset size across sets (BM25's avgdl).
  double average_set_size() const { return avg_set_size_; }

  /// Bytes of the raw data table (record texts + ids); the Figure 5
  /// "Base table" bar.
  size_t BaseTableBytes() const;

  /// Bytes of the tokenized representation incl. dictionary.
  size_t TokenizedBytes() const;

 private:
  Dictionary dict_;
  std::vector<SetRecord> sets_;
  std::vector<std::string> texts_;
  double avg_set_size_ = 0.0;
};

}  // namespace simsel

#endif  // SIMSEL_INDEX_COLLECTION_H_
