#include "index/stats.h"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <vector>

namespace simsel {

IndexStats ComputeIndexStats(const InvertedIndex& index) {
  IndexStats stats;
  stats.num_tokens = index.num_tokens();
  stats.total_postings = index.total_postings();
  stats.min_set_length = std::numeric_limits<float>::infinity();
  stats.max_set_length = 0.0f;
  std::vector<size_t> sizes;
  sizes.reserve(index.num_tokens());
  stats.min_list = std::numeric_limits<size_t>::max();
  for (TokenId t = 0; t < index.num_tokens(); ++t) {
    size_t n = index.ListSize(t);
    stats.max_list = std::max(stats.max_list, n);
    if (n == 0) continue;
    stats.min_list = std::min(stats.min_list, n);
    ++stats.non_empty_lists;
    sizes.push_back(n);
    const float* lens = index.LenLens(t);
    stats.min_set_length = std::min(stats.min_set_length, lens[0]);
    stats.max_set_length = std::max(stats.max_set_length, lens[n - 1]);
    if (index.skip(t) != nullptr) ++stats.lists_with_skip;
    if (index.hash(t) != nullptr) ++stats.lists_with_hash;
  }
  if (sizes.empty()) {
    stats.min_list = 0;
    stats.min_set_length = 0.0f;
    return stats;
  }
  stats.avg_list =
      static_cast<double>(stats.total_postings) / sizes.size();
  std::sort(sizes.begin(), sizes.end());
  auto pct = [&](double p) {
    size_t idx = static_cast<size_t>(p * (sizes.size() - 1));
    return sizes[idx];
  };
  stats.p50_list = pct(0.50);
  stats.p90_list = pct(0.90);
  stats.p99_list = pct(0.99);
  return stats;
}

std::string IndexStats::ToString() const {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "tokens=%zu (non-empty %zu)  postings=%llu\n"
      "list sizes: min=%zu p50=%zu p90=%zu p99=%zu max=%zu avg=%.1f\n"
      "set lengths: [%.3f, %.3f]  skip-indexed lists=%zu  hashed lists=%zu",
      num_tokens, non_empty_lists, (unsigned long long)total_postings,
      min_list, p50_list, p90_list, p99_list, max_list, avg_list,
      min_set_length, max_set_length, lists_with_skip, lists_with_hash);
  return buf;
}

}  // namespace simsel
