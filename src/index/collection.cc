#include "index/collection.h"

#include <algorithm>

#include "common/logging.h"

namespace simsel {

Collection Collection::Build(const std::vector<std::string>& records,
                             const Tokenizer& tokenizer) {
  Collection c;
  c.sets_.reserve(records.size());
  c.texts_ = records;
  uint64_t total_multiset = 0;
  for (const std::string& rec : records) {
    SetRecord set;
    for (const TokenCount& tc : tokenizer.TokenizeCounted(rec)) {
      TokenId id = c.dict_.Intern(tc.token);
      set.tokens.push_back(id);
      set.tfs.push_back(tc.count);
      set.multiset_size += tc.count;
    }
    // TokenizeCounted returns tokens sorted by string; re-sort by TokenId so
    // set membership tests can binary search on ids.
    std::vector<size_t> order(set.tokens.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return set.tokens[a] < set.tokens[b];
    });
    SetRecord sorted;
    sorted.multiset_size = set.multiset_size;
    sorted.tokens.reserve(order.size());
    sorted.tfs.reserve(order.size());
    for (size_t i : order) {
      sorted.tokens.push_back(set.tokens[i]);
      sorted.tfs.push_back(set.tfs[i]);
    }
    for (TokenId t : sorted.tokens) c.dict_.AddSetOccurrence(t);
    total_multiset += sorted.multiset_size;
    c.sets_.push_back(std::move(sorted));
  }
  c.avg_set_size_ =
      c.sets_.empty()
          ? 0.0
          : static_cast<double>(total_multiset) / static_cast<double>(c.sets_.size());
  return c;
}

bool Collection::Contains(SetId id, TokenId token) const {
  const std::vector<TokenId>& toks = sets_[id].tokens;
  return std::binary_search(toks.begin(), toks.end(), token);
}

size_t Collection::BaseTableBytes() const {
  size_t bytes = 0;
  for (const std::string& t : texts_) bytes += t.size() + sizeof(SetId);
  return bytes;
}

size_t Collection::TokenizedBytes() const {
  size_t bytes = dict_.SizeBytes();
  for (const SetRecord& s : sets_) {
    bytes += s.tokens.size() * (sizeof(TokenId) + sizeof(uint32_t)) +
             sizeof(uint32_t);
  }
  return bytes;
}

}  // namespace simsel
