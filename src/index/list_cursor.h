#ifndef SIMSEL_INDEX_LIST_CURSOR_H_
#define SIMSEL_INDEX_LIST_CURSOR_H_

#include <cstdint>

#include <vector>

#include "common/metrics.h"
#include "index/inverted_index.h"
#include "storage/buffer_pool.h"
#include "storage/posting_store.h"

namespace simsel {

/// Forward cursor over one by-length inverted list with access accounting.
///
/// The cursor models the disk behaviour of the paper's algorithms:
///  - Next() reads (decodes) the next posting: one element read, and a
///    sequential page read whenever a page boundary is crossed;
///  - SeekLengthGE() advances to the first posting with len >= target.
///    With the skip index enabled the jumped-over postings are *skipped*
///    (counted but never read) at the cost of a few random page reads; with
///    it disabled (the paper's "NSL" ablation) the prefix is read
///    sequentially and discarded.
///
/// A new cursor is positioned before the first posting; call Next() or
/// SeekLengthGE() to load one. The constructor charges the list's size to
/// counters->elements_total (the pruning-power denominator of Figure 7).
class ListCursor {
 public:
  /// `use_skip` enables the skip index if the index built one for `token`.
  /// `pool`, if non-null, receives a Touch per distinct page access and the
  /// hit/miss tallies are charged to `counters` (cold-cache simulation).
  /// `store`, if non-null, switches the cursor to disk mode: postings are
  /// fetched page-by-page out of the store's byte image instead of the
  /// index's arrays (the skip index stays in memory, as in the paper).
  ListCursor(const InvertedIndex& index, TokenId token, bool use_skip,
             AccessCounters* counters, BufferPool* pool = nullptr,
             const PostingStore* store = nullptr);

  size_t size() const { return size_; }
  /// Position of the current posting (valid when positioned).
  size_t pos() const { return static_cast<size_t>(pos_); }
  /// True once the cursor has moved past the last posting (or the list is
  /// empty). A cursor that was never advanced is not AtEnd unless empty.
  bool AtEnd() const { return pos_ >= static_cast<int64_t>(size_); }
  /// True when id()/len() are valid.
  bool positioned() const { return pos_ >= 0 && !AtEnd(); }

  uint32_t id() const {
    return store_ != nullptr ? blk_ids_[pos_ - blk_first_]
                             : ids_[pos_];
  }
  float len() const {
    return store_ != nullptr ? blk_lens_[pos_ - blk_first_]
                             : lens_[pos_];
  }

  /// Advances to (and reads) the next posting. No-op when AtEnd.
  void Next();

  /// Advances to the first posting with len >= target (forward only; no-op
  /// if the current posting already qualifies). The landing posting is read.
  void SeekLengthGE(float target);

  /// Stops consuming this list: the remaining unread suffix is charged to
  /// elements_skipped so pruning-power accounting sees it as pruned.
  void MarkComplete();

 private:
  void ChargeRead();
  void TouchPool(int64_t page);
  /// Mirrors the per-cursor read/skip tallies into the process-wide metrics
  /// registry (simsel_postings_read_total / simsel_postings_skipped_total),
  /// once per cursor, when the scan completes via MarkComplete.
  void FlushMetrics();
  /// Disk mode: ensures the block holding `pos_` is buffered. `random`
  /// marks the fetch as a seek landing rather than a sequential refill.
  void EnsureBlock(bool random);

  const uint32_t* ids_;
  const float* lens_;
  size_t size_;
  const SkipIndex* skip_;
  AccessCounters* counters_;
  BufferPool* pool_;
  const PostingStore* store_;
  TokenId token_;
  size_t entries_per_page_;
  size_t page_bytes_;
  int64_t pos_ = -1;
  int64_t last_page_ = -1;
  bool completed_ = false;
  bool metrics_flushed_ = false;
  // Per-cursor tallies mirrored into the metrics registry by MarkComplete
  // (plain ints on the hot path; one atomic add per list at flush time).
  uint64_t local_reads_ = 0;
  uint64_t local_skipped_ = 0;
  // Disk-mode block buffer (one modeled page of postings).
  std::vector<uint32_t> blk_ids_;
  std::vector<float> blk_lens_;
  size_t blk_first_ = 0;
  size_t blk_count_ = 0;
};

}  // namespace simsel

#endif  // SIMSEL_INDEX_LIST_CURSOR_H_
