#ifndef SIMSEL_INDEX_LIST_CURSOR_H_
#define SIMSEL_INDEX_LIST_CURSOR_H_

#include <cstdint>
#include <limits>

#include <vector>

#include "common/metrics.h"
#include "index/inverted_index.h"
#include "storage/block_codec.h"
#include "storage/buffer_pool.h"
#include "storage/posting_store.h"

namespace simsel {

/// A borrowed, contiguous run of by-length postings handed out by
/// ListCursor::NextSpan: parallel id/len arrays of `count` entries, already
/// charged to the access counters. Valid until the next cursor call (disk
/// mode reuses the cursor's block buffer).
struct PostingSpan {
  const uint32_t* ids = nullptr;
  const float* lens = nullptr;
  size_t count = 0;
  bool empty() const { return count == 0; }
};

/// Forward cursor over one by-length inverted list with access accounting.
///
/// The cursor models the disk behaviour of the paper's algorithms:
///  - Next() reads (decodes) the next posting: one element read, and a
///    sequential page read whenever a page boundary is crossed;
///  - SeekLengthGE() advances to the first posting with len >= target.
///    With skips enabled the jumped-over postings are *skipped* (counted
///    but never read) at the cost of a few random page reads for the
///    block-summary descent; with it disabled (the paper's "NSL" ablation)
///    the prefix is read sequentially and discarded.
///
/// Block-at-a-time consumption (the fast path of SF/iNRA/Hybrid):
///  - SeekSpanStart() lands just BEFORE the Theorem-1 window so the landing
///    posting is consumed by the first span, not by the seek;
///  - NextSpan() hands out a contiguous {ids, lens} slice capped at a
///    summary-block boundary and at a length bound, with the element/page
///    accounting charged once for the whole span (same totals as the
///    equivalent Next() walk).
///
/// A new cursor is positioned before the first posting; call Next() or
/// SeekLengthGE() to load one. The constructor charges the list's size to
/// counters->elements_total (the pruning-power denominator of Figure 7).
class ListCursor {
 public:
  /// No length bound: spans stop only at block boundaries / list end.
  static constexpr float kNoLengthBound =
      std::numeric_limits<float>::infinity();

  /// `use_skip` enables seeks through the block summaries ("skip" mode);
  /// disabled is the paper's NSL ablation (prefixes read sequentially).
  /// `pool`, if non-null, receives a Touch per distinct page access and the
  /// hit/miss tallies are charged to `counters` (cold-cache simulation).
  /// `store`, if non-null, switches the cursor to disk mode: postings are
  /// fetched page-by-page out of the store's byte image instead of the
  /// index's arrays (the summaries stay in memory, as in the paper).
  ListCursor(const InvertedIndex& index, TokenId token, bool use_skip,
             AccessCounters* counters, BufferPool* pool = nullptr,
             const PostingStore* store = nullptr);

  size_t size() const { return size_; }
  /// Position of the current posting (valid when positioned).
  size_t pos() const { return static_cast<size_t>(pos_); }
  /// True once the cursor has moved past the last posting (or the list is
  /// empty). A cursor that was never advanced is not AtEnd unless empty.
  bool AtEnd() const { return pos_ >= static_cast<int64_t>(size_); }
  /// True when id()/len() are valid.
  bool positioned() const { return pos_ >= 0 && !AtEnd(); }

  uint32_t id() const {
    return store_ != nullptr ? blk_ids_[pos_ - blk_first_]
                             : ids_[pos_];
  }
  float len() const {
    return store_ != nullptr ? blk_lens_[pos_ - blk_first_]
                             : lens_[pos_];
  }

  /// Length of the next unconsumed posting, +inf when none remains. This is
  /// the list frontier for threshold arithmetic; it charges nothing (the
  /// bound is implied by the seek landing and the block summaries).
  float FrontierLen() const {
    const size_t next = static_cast<size_t>(pos_ + 1);
    return next < size_ ? lens_[next] : kNoLengthBound;
  }
  /// True when no unconsumed posting with len <= max_len remains (the list
  /// is exhausted or its frontier left the length window).
  bool FrontierPast(float max_len) const {
    const size_t next = static_cast<size_t>(pos_ + 1);
    return next >= size_ || lens_[next] > max_len;
  }

  /// Advances to (and reads) the next posting. No-op when AtEnd.
  void Next();

  /// Advances to the first posting with len >= target (forward only; no-op
  /// if the current posting already qualifies). The landing posting is read.
  void SeekLengthGE(float target);

  /// Positions the cursor just before the first posting with len >= target,
  /// so the next NextSpan() starts exactly at the window. The jumped-over
  /// prefix is skipped (summary mode) or read-and-discarded (NSL mode); the
  /// landing posting itself is NOT read. Forward only; no-op if the next
  /// unconsumed posting already qualifies.
  void SeekSpanStart(float target);

  /// Reads the next run of consecutive postings: at most `max_count`, none
  /// with len > max_len, never crossing a summary-block boundary (nor a
  /// store-page boundary in disk mode). The whole span is charged as read
  /// in one step — identical element/page totals as consuming it through
  /// Next(). Afterwards the cursor is positioned on the span's last
  /// posting. Returns an empty span (cursor unmoved, nothing charged) when
  /// the list is exhausted or the frontier exceeds max_len.
  PostingSpan NextSpan(size_t max_count, float max_len = kNoLengthBound);

  /// Stops consuming this list: the remaining unread suffix is charged to
  /// elements_skipped so pruning-power accounting sees it as pruned.
  void MarkComplete();

  /// Non-OK after a disk-mode read failed (see FaultInjector). A failed
  /// cursor fails *soft*: it reads as exhausted (AtEnd, +inf frontier) so
  /// algorithm loops wind down naturally, the unread suffix is charged to
  /// elements_skipped, and the algorithm collects this status at exit to
  /// surface in QueryResult::status.
  const Status& status() const { return status_; }
  bool ok() const { return status_.ok(); }

 private:
  void ChargeRead();
  /// Charges postings [start, end) as read in one step: elements, page
  /// transitions (the first page as a random read when the span lands after
  /// a summary seek), and buffer-pool touches.
  void ChargeSpan(size_t start, size_t end);
  void TouchPool(int64_t page);
  /// Mirrors the per-cursor read/skip tallies into the process-wide metrics
  /// registry (simsel_postings_read_total / simsel_postings_skipped_total),
  /// once per cursor, when the scan completes via MarkComplete.
  void FlushMetrics();
  /// Disk mode: ensures the block holding `pos_` is buffered. `random`
  /// marks the fetch as a seek landing rather than a sequential refill.
  /// Returns false — with the cursor failed soft (see Fail) — when the
  /// store read failed; callers must bail out without touching the buffer.
  bool EnsureBlock(bool random);
  /// Fails the cursor soft: records `st`, charges [first_unread, size) to
  /// elements_skipped, and parks the cursor at end so every further call is
  /// a no-op.
  void Fail(Status st, size_t first_unread);

  const InvertedIndex* index_;
  const uint32_t* ids_;
  const float* lens_;
  size_t size_;
  bool use_skip_;
  AccessCounters* counters_;
  BufferPool* pool_;
  const PostingStore* store_;
  TokenId token_;
  size_t entries_per_page_;
  size_t page_bytes_;
  int64_t pos_ = -1;
  int64_t last_page_ = -1;
  bool completed_ = false;
  bool metrics_flushed_ = false;
  // The next span landing follows a summary jump: its first page is charged
  // as a random read, like the old landing read after a skip descent.
  bool pending_random_ = false;
  // Per-cursor tallies mirrored into the metrics registry by MarkComplete
  // (plain ints on the hot path; one atomic add per list at flush time).
  uint64_t local_reads_ = 0;
  uint64_t local_skipped_ = 0;
  // Disk-mode block buffer (one summary block of postings, the store's
  // decode granularity) for Next()/seeks.
  std::vector<uint32_t> blk_ids_;
  std::vector<float> blk_lens_;
  size_t blk_first_ = 0;
  size_t blk_count_ = 0;
  // Disk-mode span staging: NextSpan fetches its whole range here so span
  // boundaries match memory mode exactly (no store-page clipping).
  std::vector<uint32_t> span_ids_;
  std::vector<float> span_lens_;
  // Disk-mode decode staging, one per cursor: keeps the last decoded block
  // cached so revisiting it (clipped spans, block refills) skips the
  // decompression while the physical page reads stay fully charged.
  BlockDecodeScratch scratch_;
  // Disk-mode per-cursor physical read accounting: the store's page image is
  // shared across concurrent queries, so the sequential window lives here.
  PageReadStats store_reads_;
  // First read failure observed on this cursor (sticky; OK while healthy).
  Status status_;
};

}  // namespace simsel

#endif  // SIMSEL_INDEX_LIST_CURSOR_H_
