#include "index/dictionary.h"

#include "common/logging.h"

namespace simsel {

TokenId Dictionary::Intern(std::string_view token) {
  auto it = map_.find(token);
  if (it != map_.end()) return it->second;
  TokenId id = static_cast<TokenId>(tokens_.size());
  tokens_.emplace_back(token);
  dfs_.push_back(0);
  map_.emplace(tokens_.back(), id);
  return id;
}

std::optional<TokenId> Dictionary::Find(std::string_view token) const {
  auto it = map_.find(token);
  if (it == map_.end()) return std::nullopt;
  return it->second;
}

void Dictionary::AddSetOccurrence(TokenId id) {
  SIMSEL_DCHECK(id < dfs_.size());
  ++dfs_[id];
}

size_t Dictionary::SizeBytes() const {
  size_t bytes = dfs_.size() * sizeof(uint32_t);
  for (const std::string& t : tokens_) bytes += t.size() + sizeof(uint32_t);
  return bytes;
}

}  // namespace simsel
