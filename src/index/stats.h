#ifndef SIMSEL_INDEX_STATS_H_
#define SIMSEL_INDEX_STATS_H_

#include <string>

#include "index/inverted_index.h"
#include "sim/idf.h"

namespace simsel {

/// Descriptive statistics of an inverted index, for capacity planning,
/// the CLI's `stats` command and the benchmark environment printouts.
struct IndexStats {
  size_t num_tokens = 0;       // distinct tokens (lists)
  size_t non_empty_lists = 0;
  uint64_t total_postings = 0;
  size_t min_list = 0;
  size_t max_list = 0;
  double avg_list = 0.0;
  size_t p50_list = 0;  // median over non-empty lists
  size_t p90_list = 0;
  size_t p99_list = 0;
  float min_set_length = 0.0f;
  float max_set_length = 0.0f;
  size_t lists_with_skip = 0;
  size_t lists_with_hash = 0;

  /// Multi-line human-readable rendering.
  std::string ToString() const;
};

/// Scans the index once and aggregates.
IndexStats ComputeIndexStats(const InvertedIndex& index);

}  // namespace simsel

#endif  // SIMSEL_INDEX_STATS_H_
