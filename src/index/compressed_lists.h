#ifndef SIMSEL_INDEX_COMPRESSED_LISTS_H_
#define SIMSEL_INDEX_COMPRESSED_LISTS_H_

#include <cstdint>
#include <vector>

#include "common/metrics.h"
#include "index/inverted_index.h"

namespace simsel {

/// Delta-varint compressed id-sorted posting lists — the classic IR
/// encoding, provided as a space/time alternative for the sort-by-id merge
/// (which reads every posting, so its cost is dominated by list bytes).
///
/// Ids are gap-encoded with varints; set lengths are not stored per posting
/// at all — they are a function of the id, kept once in a global float
/// table. The result is typically 3-5x smaller than the fixed 8-byte
/// postings. Length-sorted lists cannot use this trick (their id order is
/// permuted per list), which is part of why the paper's weight-sorted
/// indexes are larger — see the Figure 5 bench.
class CompressedIdLists {
 public:
  /// Encodes from an index built with `build_id_lists`.
  static CompressedIdLists Build(const InvertedIndex& index);

  size_t num_tokens() const { return offsets_.size() - 1; }
  size_t ListSize(TokenId t) const { return counts_[t]; }
  uint64_t total_postings() const;

  /// Compressed bytes (blob + offset/count tables + length table).
  size_t SizeBytes() const;
  /// Bytes of the varint blob alone.
  size_t BlobBytes() const { return blob_.size(); }

  float set_length(uint32_t id) const { return set_len_[id]; }

  /// Sequential decoder over one list. Usage:
  ///   for (Cursor c = lists.OpenList(t, &counters); c.Valid(); c.Next())
  ///     use(c.id(), lists.set_length(c.id()));
  /// Charges one element read per decoded posting and sequential page reads
  /// at 4 KiB granularity over the compressed bytes.
  class Cursor {
   public:
    bool Valid() const { return remaining_ > 0; }
    uint32_t id() const { return id_; }
    void Next();

   private:
    friend class CompressedIdLists;
    const uint8_t* pos_ = nullptr;
    const uint8_t* blob_start_ = nullptr;  // for page accounting
    size_t remaining_ = 0;
    uint32_t id_ = 0;
    int64_t last_page_ = -1;
    AccessCounters* counters_ = nullptr;

    void Decode();
  };

  Cursor OpenList(TokenId t, AccessCounters* counters = nullptr) const;

 private:
  static constexpr size_t kPageBytes = 4096;

  std::vector<uint64_t> offsets_;  // byte offset of each list in blob_
  std::vector<uint32_t> counts_;   // postings per list
  std::vector<uint8_t> blob_;      // concatenated delta varints
  std::vector<float> set_len_;     // indexed by set id
};

}  // namespace simsel

#endif  // SIMSEL_INDEX_COMPRESSED_LISTS_H_
