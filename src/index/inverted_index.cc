#include "index/inverted_index.h"

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "common/logging.h"

#include "storage/codec.h"
#include "storage/paged_file.h"

namespace simsel {

InvertedIndex InvertedIndex::Build(const Collection& collection,
                                   const IdfMeasure& measure,
                                   InvertedIndexOptions options) {
  std::vector<float> lengths(collection.size());
  for (SetId s = 0; s < collection.size(); ++s) {
    lengths[s] = measure.set_length(s);
  }
  return BuildWithLengths(collection, lengths, options);
}

InvertedIndex InvertedIndex::BuildWithLengths(
    const Collection& collection, const std::vector<float>& set_lengths,
    InvertedIndexOptions options) {
  SIMSEL_CHECK_MSG(set_lengths.size() == collection.size(),
                   "one length per set required");
  InvertedIndex index;
  index.options_ = options;
  const size_t num_tokens = collection.dictionary().size();

  // Pass 1: list sizes -> CSR offsets.
  index.offsets_.assign(num_tokens + 1, 0);
  for (SetId s = 0; s < collection.size(); ++s) {
    for (TokenId t : collection.set(s).tokens) ++index.offsets_[t + 1];
  }
  for (size_t t = 0; t < num_tokens; ++t) {
    index.offsets_[t + 1] += index.offsets_[t];
  }
  const uint64_t total = index.offsets_[num_tokens];

  // Pass 2: fill by-id lists (iterating sets in id order yields id order).
  index.id_ids_.resize(total);
  index.id_lens_.resize(total);
  std::vector<uint64_t> cursor(index.offsets_.begin(),
                               index.offsets_.end() - 1);
  for (SetId s = 0; s < collection.size(); ++s) {
    float len = set_lengths[s];
    for (TokenId t : collection.set(s).tokens) {
      uint64_t pos = cursor[t]++;
      index.id_ids_[pos] = s;
      index.id_lens_[pos] = len;
    }
  }

  // Pass 3: by-length lists = per-token stable sort of the by-id lists by
  // (len, id). Ids ascend within equal lengths because the sort is stable
  // over an id-ascending input.
  index.len_ids_.resize(total);
  index.len_lens_.resize(total);
  std::vector<uint32_t> order;
  for (TokenId t = 0; t < num_tokens; ++t) {
    const uint64_t begin = index.offsets_[t];
    const size_t n = index.ListSize(t);
    order.resize(n);
    std::iota(order.begin(), order.end(), 0);
    const float* lens = index.id_lens_.data() + begin;
    std::stable_sort(order.begin(), order.end(),
                     [lens](uint32_t a, uint32_t b) {
                       return lens[a] < lens[b];
                     });
    for (size_t i = 0; i < n; ++i) {
      index.len_ids_[begin + i] = index.id_ids_[begin + order[i]];
      index.len_lens_[begin + i] = index.id_lens_[begin + order[i]];
    }
  }

  if (!options.build_id_lists) {
    index.id_ids_.clear();
    index.id_ids_.shrink_to_fit();
    index.id_lens_.clear();
    index.id_lens_.shrink_to_fit();
  }

  index.BuildDerived();
  return index;
}

void InvertedIndex::BuildDerived() {
  const size_t num_tokens = offsets_.size() - 1;
  skips_.clear();
  hashes_.clear();
  if (options_.build_skip) {
    skips_.resize(num_tokens);
    for (TokenId t = 0; t < num_tokens; ++t) {
      size_t n = ListSize(t);
      if (n > options_.skip_fanout) {
        skips_[t] = std::make_unique<SkipIndex>(
            len_lens_.data() + offsets_[t], n, options_.skip_fanout);
      }
    }
  }
  if (options_.build_hash) {
    hashes_.resize(num_tokens);
    for (TokenId t = 0; t < num_tokens; ++t) {
      size_t n = ListSize(t);
      if (n == 0) continue;
      auto hash = std::make_unique<ExtendibleHash>(options_.hash_page_bytes);
      const uint32_t* ids = LenIds(t);
      const float* lens = LenLens(t);
      for (size_t i = 0; i < n; ++i) hash->Insert(ids[i], lens[i]);
      hashes_[t] = std::move(hash);
    }
  }
}

size_t InvertedIndex::ListBytesTotal() const {
  size_t orders = id_ids_.empty() ? 1 : 2;
  return orders * ListBytesOneOrder() + offsets_.size() * sizeof(uint64_t);
}

size_t InvertedIndex::SkipBytes() const {
  size_t bytes = 0;
  for (const auto& s : skips_) {
    if (s != nullptr) bytes += s->SizeBytes();
  }
  return bytes;
}

size_t InvertedIndex::HashBytes() const {
  size_t bytes = 0;
  for (const auto& h : hashes_) {
    if (h != nullptr) bytes += h->SizeBytes();
  }
  return bytes;
}

bool InvertedIndex::Validate() const {
  const size_t num_tokens = this->num_tokens();
  for (TokenId t = 0; t < num_tokens; ++t) {
    const size_t n = ListSize(t);
    const uint32_t* lids = LenIds(t);
    const float* llens = LenLens(t);
    for (size_t i = 1; i < n; ++i) {
      if (llens[i - 1] > llens[i] ||
          (llens[i - 1] == llens[i] && lids[i - 1] >= lids[i])) {
        std::fprintf(stderr, "InvertedIndex: by-length order violated "
                             "(token %u pos %zu)\n", t, i);
        return false;
      }
    }
    if (!id_ids_.empty()) {
      const uint32_t* iids = IdIds(t);
      for (size_t i = 1; i < n; ++i) {
        if (iids[i - 1] >= iids[i]) {
          std::fprintf(stderr, "InvertedIndex: by-id order violated "
                               "(token %u pos %zu)\n", t, i);
          return false;
        }
      }
    }
    const ExtendibleHash* h = hash(t);
    if (h != nullptr) {
      if (h->size() != n) {
        std::fprintf(stderr, "InvertedIndex: hash size mismatch (token %u)\n",
                     t);
        return false;
      }
      for (size_t i = 0; i < n; ++i) {
        float len = 0;
        if (!h->Lookup(lids[i], &len) || len != llens[i]) {
          std::fprintf(stderr,
                       "InvertedIndex: hash entry mismatch (token %u id %u)\n",
                       t, lids[i]);
          return false;
        }
      }
    }
    const SkipIndex* s = skip(t);
    if (s != nullptr && n > 0) {
      // The skip index must locate the first entry for a handful of probes.
      for (size_t i = 0; i < n; i += std::max<size_t>(1, n / 8)) {
        size_t pos = s->SeekFirstGE(llens[i]);
        if (pos > i || llens[pos] < llens[i]) {
          std::fprintf(stderr, "InvertedIndex: skip seek wrong (token %u)\n",
                       t);
          return false;
        }
      }
    }
  }
  return true;
}

namespace {
constexpr uint32_t kMagic = 0x53494E56;  // "SINV"
constexpr uint32_t kVersion = 1;
}  // namespace

Status InvertedIndex::Save(const std::string& path) const {
  PagedFile file(options_.page_bytes);
  std::vector<uint8_t> buf;
  PutFixed32(&buf, kMagic);
  PutFixed32(&buf, kVersion);
  PutFixed64(&buf, options_.page_bytes);
  PutFixed64(&buf, options_.skip_fanout);
  PutFixed64(&buf, options_.hash_page_bytes);
  buf.push_back(options_.build_id_lists ? 1 : 0);
  buf.push_back(options_.build_skip ? 1 : 0);
  buf.push_back(options_.build_hash ? 1 : 0);
  PutFixed64(&buf, offsets_.size());
  for (uint64_t o : offsets_) PutVarint64(&buf, o);
  // By-length lists: ids delta-coded within runs of equal length would be
  // possible, but plain varints keep Load simple and already halve the size.
  for (uint32_t id : len_ids_) PutVarint32(&buf, id);
  for (float len : len_lens_) PutFloat(&buf, len);
  buf.push_back(id_ids_.empty() ? 0 : 1);
  for (uint32_t id : id_ids_) PutVarint32(&buf, id);
  for (float len : id_lens_) PutFloat(&buf, len);
  file.Append(buf.data(), buf.size());
  return file.SaveToFile(path);
}

Result<InvertedIndex> InvertedIndex::Load(const std::string& path) {
  Result<PagedFile> file = PagedFile::LoadFromFile(path);
  if (!file.ok()) return file.status();
  const std::vector<uint8_t>& buf = file->contents();
  Decoder dec{buf.data(), buf.size(), 0};
  uint32_t magic, version;
  if (!GetFixed32(&dec, &magic) || magic != kMagic) {
    return Status::Corruption("bad magic in index file: " + path);
  }
  if (!GetFixed32(&dec, &version) || version != kVersion) {
    return Status::Corruption("unsupported index version in: " + path);
  }
  InvertedIndex index;
  uint64_t page_bytes, skip_fanout, hash_page_bytes;
  if (!GetFixed64(&dec, &page_bytes) || !GetFixed64(&dec, &skip_fanout) ||
      !GetFixed64(&dec, &hash_page_bytes) || dec.remaining() < 3) {
    return Status::Corruption("truncated index options in: " + path);
  }
  index.options_.page_bytes = page_bytes;
  index.options_.skip_fanout = skip_fanout;
  index.options_.hash_page_bytes = hash_page_bytes;
  index.options_.build_id_lists = dec.data[dec.pos++] != 0;
  index.options_.build_skip = dec.data[dec.pos++] != 0;
  index.options_.build_hash = dec.data[dec.pos++] != 0;
  uint64_t num_offsets;
  if (!GetFixed64(&dec, &num_offsets) || num_offsets == 0) {
    return Status::Corruption("bad offset table in: " + path);
  }
  index.offsets_.resize(num_offsets);
  for (uint64_t i = 0; i < num_offsets; ++i) {
    if (!GetVarint64(&dec, &index.offsets_[i])) {
      return Status::Corruption("truncated offsets in: " + path);
    }
  }
  uint64_t total = index.offsets_.back();
  index.len_ids_.resize(total);
  index.len_lens_.resize(total);
  for (uint64_t i = 0; i < total; ++i) {
    if (!GetVarint32(&dec, &index.len_ids_[i])) {
      return Status::Corruption("truncated postings in: " + path);
    }
  }
  for (uint64_t i = 0; i < total; ++i) {
    if (!GetFloat(&dec, &index.len_lens_[i])) {
      return Status::Corruption("truncated lengths in: " + path);
    }
  }
  if (dec.exhausted()) return Status::Corruption("missing id lists flag");
  bool has_id_lists = dec.data[dec.pos++] != 0;
  if (has_id_lists) {
    index.id_ids_.resize(total);
    index.id_lens_.resize(total);
    for (uint64_t i = 0; i < total; ++i) {
      if (!GetVarint32(&dec, &index.id_ids_[i])) {
        return Status::Corruption("truncated id postings in: " + path);
      }
    }
    for (uint64_t i = 0; i < total; ++i) {
      if (!GetFloat(&dec, &index.id_lens_[i])) {
        return Status::Corruption("truncated id lengths in: " + path);
      }
    }
  }
  index.BuildDerived();
  return index;
}

}  // namespace simsel
