#include "index/inverted_index.h"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <numeric>
#include <thread>

#include "common/logging.h"
#include "common/thread_pool.h"

#include "simd/kernels.h"
#include "storage/block_codec.h"
#include "storage/codec.h"
#include "storage/paged_file.h"

namespace simsel {

namespace {

/// Below this many postings the per-token passes run serially: spawning
/// workers would cost more than the work (the unit-test corpora all land
/// here, which also keeps their builds deterministic under sanitizers).
constexpr uint64_t kParallelBuildThreshold = 1u << 18;

std::unique_ptr<ThreadPool> MakeBuildPool(const InvertedIndexOptions& options,
                                          uint64_t total_postings) {
  size_t threads = options.build_threads;
  if (threads == 0) {
    if (total_postings < kParallelBuildThreshold) return nullptr;
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  if (threads <= 1) return nullptr;
  return std::make_unique<ThreadPool>(threads);
}

/// Runs fn(t) for every token, on the pool when one was made.
void ForEachToken(ThreadPool* pool, size_t num_tokens,
                  const std::function<void(size_t)>& fn) {
  if (pool != nullptr) {
    ParallelFor(pool, num_tokens, fn);
  } else {
    for (size_t t = 0; t < num_tokens; ++t) fn(t);
  }
}

}  // namespace

InvertedIndex InvertedIndex::Build(const Collection& collection,
                                   const IdfMeasure& measure,
                                   InvertedIndexOptions options) {
  std::vector<float> lengths(collection.size());
  for (SetId s = 0; s < collection.size(); ++s) {
    lengths[s] = measure.set_length(s);
  }
  return BuildWithLengths(collection, lengths, options);
}

InvertedIndex InvertedIndex::BuildWithLengths(
    const Collection& collection, const std::vector<float>& set_lengths,
    InvertedIndexOptions options) {
  SIMSEL_CHECK_MSG(set_lengths.size() == collection.size(),
                   "one length per set required");
  return BuildRangeWithLengths(collection, set_lengths, 0,
                               static_cast<SetId>(collection.size()), options);
}

InvertedIndex InvertedIndex::BuildShard(const Collection& collection,
                                        const IdfMeasure& measure, SetId begin,
                                        SetId end, InvertedIndexOptions options) {
  SIMSEL_CHECK_MSG(begin <= end && end <= collection.size(),
                   "shard range out of bounds");
  // Lengths come from the global measure; only the range is ever read, but
  // the vector is indexed by global id to keep the fill loop uniform.
  std::vector<float> lengths(collection.size(), 0.0f);
  for (SetId s = begin; s < end; ++s) lengths[s] = measure.set_length(s);
  return BuildRangeWithLengths(collection, lengths, begin, end, options);
}

InvertedIndex InvertedIndex::BuildRangeWithLengths(
    const Collection& collection, const std::vector<float>& set_lengths,
    SetId range_begin, SetId range_end, InvertedIndexOptions options) {
  InvertedIndex index;
  index.options_ = options;
  const size_t num_tokens = collection.dictionary().size();

  // Pass 1: list sizes -> CSR offsets.
  index.offsets_.assign(num_tokens + 1, 0);
  for (SetId s = range_begin; s < range_end; ++s) {
    for (TokenId t : collection.set(s).tokens) ++index.offsets_[t + 1];
  }
  for (size_t t = 0; t < num_tokens; ++t) {
    index.offsets_[t + 1] += index.offsets_[t];
  }
  const uint64_t total = index.offsets_[num_tokens];

  // Pass 2: fill by-id lists (iterating sets in id order yields id order).
  index.id_ids_.resize(total);
  index.id_lens_.resize(total);
  std::vector<uint64_t> cursor(index.offsets_.begin(),
                               index.offsets_.end() - 1);
  for (SetId s = range_begin; s < range_end; ++s) {
    float len = set_lengths[s];
    for (TokenId t : collection.set(s).tokens) {
      uint64_t pos = cursor[t]++;
      index.id_ids_[pos] = s;
      index.id_lens_[pos] = len;
    }
  }

  // Pass 3: by-length lists = per-token stable sort of the by-id lists by
  // (len, id). Ids ascend within equal lengths because the sort is stable
  // over an id-ascending input. Tokens are independent, so the pass (and
  // every derived structure below) parallelizes per token.
  index.len_ids_.resize(total);
  index.len_lens_.resize(total);
  std::unique_ptr<ThreadPool> pool = MakeBuildPool(options, total);
  ForEachToken(pool.get(), num_tokens, [&index](size_t t) {
    thread_local std::vector<uint32_t> order;
    const uint64_t begin = index.offsets_[t];
    const size_t n = index.ListSize(static_cast<TokenId>(t));
    order.resize(n);
    std::iota(order.begin(), order.end(), 0);
    const float* lens = index.id_lens_.data() + begin;
    std::stable_sort(order.begin(), order.end(),
                     [lens](uint32_t a, uint32_t b) {
                       return lens[a] < lens[b];
                     });
    for (size_t i = 0; i < n; ++i) {
      index.len_ids_[begin + i] = index.id_ids_[begin + order[i]];
      index.len_lens_[begin + i] = index.id_lens_[begin + order[i]];
    }
  });

  if (!options.build_id_lists) {
    index.id_ids_.clear();
    index.id_ids_.shrink_to_fit();
    index.id_lens_.clear();
    index.id_lens_.shrink_to_fit();
  }

  // Pass 4: per-set MinHash signatures for the sketch prefilter tier. Sets
  // are independent, so the pass reuses the build pool; the fixed seed makes
  // the section identical across builds and thread counts.
  if (options.build_sketches && options.sketch.valid() &&
      range_end > range_begin) {
    const uint32_t k = options.sketch.k;
    const std::vector<uint64_t> seeds = sketch::ComponentSeeds(options.sketch);
    index.sketch_begin_ = range_begin;
    index.sketch_sigs_.resize(
        static_cast<size_t>(range_end - range_begin) * k);
    ForEachToken(pool.get(), range_end - range_begin,
                 [&index, &collection, &seeds, range_begin, k](size_t i) {
                   const SetRecord& set =
                       collection.set(range_begin + static_cast<SetId>(i));
                   sketch::ComputeSignature(
                       set.tokens.data(), set.tokens.size(), seeds,
                       index.sketch_sigs_.data() + i * static_cast<size_t>(k));
                 });
  }

  index.BuildDerived();
  return index;
}

void InvertedIndex::BuildDerived() {
  const size_t num_tokens = offsets_.size() - 1;
  SIMSEL_CHECK_MSG(options_.block_postings >= 1, "block_postings must be >= 1");
  skips_.clear();
  hashes_.clear();
  // Block summaries in CSR layout: ceil(size / block) blocks per token.
  const size_t bp = options_.block_postings;
  block_offsets_.assign(num_tokens + 1, 0);
  for (size_t t = 0; t < num_tokens; ++t) {
    block_offsets_[t + 1] = block_offsets_[t] + (ListSize(t) + bp - 1) / bp;
  }
  blocks_.resize(block_offsets_[num_tokens]);
  if (options_.build_skip) skips_.resize(num_tokens);
  if (options_.build_hash) hashes_.resize(num_tokens);

  std::unique_ptr<ThreadPool> pool =
      MakeBuildPool(options_, total_postings());
  ForEachToken(pool.get(), num_tokens, [this, bp](size_t t) {
    const size_t n = ListSize(static_cast<TokenId>(t));
    const uint32_t* ids = LenIds(static_cast<TokenId>(t));
    const float* lens = LenLens(static_cast<TokenId>(t));
    PostingBlockSummary* blocks = blocks_.data() + block_offsets_[t];
    for (size_t first = 0, b = 0; first < n; first += bp, ++b) {
      const size_t last = std::min(n, first + bp) - 1;
      blocks[b] = PostingBlockSummary{lens[first], lens[last], ids[first],
                                      ids[last]};
    }
    if (options_.build_skip && n > options_.skip_fanout) {
      skips_[t] = std::make_unique<SkipIndex>(lens, n, options_.skip_fanout);
    }
    if (options_.build_hash && n > 0) {
      auto hash = std::make_unique<ExtendibleHash>(options_.hash_page_bytes);
      for (size_t i = 0; i < n; ++i) hash->Insert(ids[i], lens[i]);
      hashes_[t] = std::move(hash);
    }
  });
}

size_t InvertedIndex::SeekFirstGE(TokenId t, float target,
                                  uint64_t* probes) const {
  const size_t n = ListSize(t);
  if (n == 0) return 0;
  const PostingBlockSummary* blocks = Blocks(t);
  // First block whose max_len reaches the target; every earlier block lies
  // wholly below it. max_len is non-decreasing across blocks.
  size_t lo = 0, hi = NumBlocks(t);
  uint64_t visited = 0;
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    ++visited;
    if (blocks[mid].max_len < target) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (probes != nullptr) *probes += std::max<uint64_t>(visited, 1);
  if (lo == NumBlocks(t)) return n;
  const float* lens = LenLens(t);
  const size_t first = lo * options_.block_postings;
  const size_t last = std::min(n, first + options_.block_postings);
  // count_lt over the sorted landing block == lower_bound index.
  return first + simd::Kernels().count_lt_f32(lens + first, last - first,
                                              target);
}

size_t InvertedIndex::SeekFirstGT(TokenId t, float target,
                                  uint64_t* probes) const {
  const size_t n = ListSize(t);
  if (n == 0) return 0;
  const PostingBlockSummary* blocks = Blocks(t);
  size_t lo = 0, hi = NumBlocks(t);
  uint64_t visited = 0;
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    ++visited;
    if (blocks[mid].max_len <= target) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (probes != nullptr) *probes += std::max<uint64_t>(visited, 1);
  if (lo == NumBlocks(t)) return n;
  const float* lens = LenLens(t);
  const size_t first = lo * options_.block_postings;
  const size_t last = std::min(n, first + options_.block_postings);
  // count_le over the sorted landing block == upper_bound index.
  return first + simd::Kernels().count_le_f32(lens + first, last - first,
                                              target);
}

PostingRange InvertedIndex::WindowSpan(TokenId t, float lo_len, float hi_len,
                                       uint64_t* probes) const {
  PostingRange range;
  range.begin = SeekFirstGE(t, lo_len, probes);
  range.end = std::max(range.begin, SeekFirstGT(t, hi_len, probes));
  return range;
}

size_t InvertedIndex::ListBytesTotal() const {
  size_t orders = id_ids_.empty() ? 1 : 2;
  return orders * ListBytesOneOrder() + offsets_.size() * sizeof(uint64_t);
}

size_t InvertedIndex::SkipBytes() const {
  size_t bytes = 0;
  for (const auto& s : skips_) {
    if (s != nullptr) bytes += s->SizeBytes();
  }
  return bytes;
}

size_t InvertedIndex::HashBytes() const {
  size_t bytes = 0;
  for (const auto& h : hashes_) {
    if (h != nullptr) bytes += h->SizeBytes();
  }
  return bytes;
}

bool InvertedIndex::Validate() const {
  const size_t num_tokens = this->num_tokens();
  for (TokenId t = 0; t < num_tokens; ++t) {
    const size_t n = ListSize(t);
    const uint32_t* lids = LenIds(t);
    const float* llens = LenLens(t);
    for (size_t i = 1; i < n; ++i) {
      if (llens[i - 1] > llens[i] ||
          (llens[i - 1] == llens[i] && lids[i - 1] >= lids[i])) {
        std::fprintf(stderr, "InvertedIndex: by-length order violated "
                             "(token %u pos %zu)\n", t, i);
        return false;
      }
    }
    if (!id_ids_.empty()) {
      const uint32_t* iids = IdIds(t);
      for (size_t i = 1; i < n; ++i) {
        if (iids[i - 1] >= iids[i]) {
          std::fprintf(stderr, "InvertedIndex: by-id order violated "
                               "(token %u pos %zu)\n", t, i);
          return false;
        }
      }
    }
    const ExtendibleHash* h = hash(t);
    if (h != nullptr) {
      if (h->size() != n) {
        std::fprintf(stderr, "InvertedIndex: hash size mismatch (token %u)\n",
                     t);
        return false;
      }
      for (size_t i = 0; i < n; ++i) {
        float len = 0;
        if (!h->Lookup(lids[i], &len) || len != llens[i]) {
          std::fprintf(stderr,
                       "InvertedIndex: hash entry mismatch (token %u id %u)\n",
                       t, lids[i]);
          return false;
        }
      }
    }
    // Block summaries: CSR shape, per-block extrema matching the data.
    const size_t bp = options_.block_postings;
    if (NumBlocks(t) != (n + bp - 1) / bp) {
      std::fprintf(stderr, "InvertedIndex: block count mismatch (token %u)\n",
                   t);
      return false;
    }
    const PostingBlockSummary* blocks = Blocks(t);
    for (size_t first = 0, b = 0; first < n; first += bp, ++b) {
      const size_t last = std::min(n, first + bp) - 1;
      if (blocks[b].min_len != llens[first] ||
          blocks[b].max_len != llens[last] ||
          blocks[b].first_id != lids[first] ||
          blocks[b].last_id != lids[last]) {
        std::fprintf(stderr, "InvertedIndex: block summary wrong "
                             "(token %u block %zu)\n", t, b);
        return false;
      }
    }
    // The summary seeks must agree with a direct scan for a few probes.
    for (size_t i = 0; i < n; i += std::max<size_t>(1, n / 8)) {
      if (SeekFirstGE(t, llens[i]) > i ||
          llens[SeekFirstGE(t, llens[i])] < llens[i]) {
        std::fprintf(stderr, "InvertedIndex: block seek wrong (token %u)\n",
                     t);
        return false;
      }
    }
    const SkipIndex* s = skip(t);
    if (s != nullptr && n > 0) {
      // The skip index must locate the first entry for a handful of probes.
      for (size_t i = 0; i < n; i += std::max<size_t>(1, n / 8)) {
        size_t pos = s->SeekFirstGE(llens[i]);
        if (pos > i || llens[pos] < llens[i]) {
          std::fprintf(stderr, "InvertedIndex: skip seek wrong (token %u)\n",
                       t);
          return false;
        }
      }
    }
  }
  return true;
}

namespace {
constexpr uint32_t kMagic = 0x53494E56;  // "SINV"
}  // namespace

void InvertedIndex::EncodeTo(std::vector<uint8_t>* bufp, uint32_t version,
                             IndexFileStats* stats) const {
  SIMSEL_CHECK_MSG(
      version >= kVersionLegacy && version <= kVersionLatest,
      "unsupported index serialization version");
  std::vector<uint8_t>& buf = *bufp;
  const size_t num_tokens = this->num_tokens();
  PutFixed32(&buf, kMagic);
  PutFixed32(&buf, version);
  PutFixed64(&buf, options_.page_bytes);
  PutFixed64(&buf, options_.skip_fanout);
  PutFixed64(&buf, options_.hash_page_bytes);
  PutFixed64(&buf, options_.block_postings);
  buf.push_back(options_.build_id_lists ? 1 : 0);
  buf.push_back(options_.build_skip ? 1 : 0);
  buf.push_back(options_.build_hash ? 1 : 0);
  PutFixed64(&buf, offsets_.size());
  for (uint64_t o : offsets_) PutVarint64(&buf, o);

  // By-length lists.
  const size_t len_payload_begin = buf.size();
  if (version == kVersionLegacy) {
    // v2: plain varint ids, then fixed32 length bit patterns.
    for (uint32_t id : len_ids_) PutVarint32(&buf, id);
    for (float len : len_lens_) PutFloat(&buf, len);
  } else {
    // v3: compressed posting blocks aligned to the summary blocks, so the
    // on-disk block structure is exactly the structure cursors consume.
    const size_t bp = options_.block_postings;
    for (size_t t = 0; t < num_tokens; ++t) {
      const size_t n = ListSize(static_cast<TokenId>(t));
      const uint32_t* ids = LenIds(static_cast<TokenId>(t));
      const float* lens = LenLens(static_cast<TokenId>(t));
      for (size_t first = 0; first < n; first += bp) {
        EncodePostingBlock(ids + first, lens + first, std::min(bp, n - first),
                           &buf);
      }
    }
  }
  const size_t len_payload = buf.size() - len_payload_begin;

  // By-id lists.
  buf.push_back(id_ids_.empty() ? 0 : 1);
  const size_t id_payload_begin = buf.size();
  if (!id_ids_.empty()) {
    if (version == kVersionLegacy) {
      for (uint32_t id : id_ids_) PutVarint32(&buf, id);
      for (float len : id_lens_) PutFloat(&buf, len);
    } else {
      // v3: classic gap varints (ids strictly ascend per list); lengths are
      // a function of the set id and are reconstructed at Load from the
      // by-length lists, so they are not serialized at all.
      for (size_t t = 0; t < num_tokens; ++t) {
        const size_t n = ListSize(static_cast<TokenId>(t));
        const uint32_t* ids = IdIds(static_cast<TokenId>(t));
        uint32_t prev = 0;
        for (size_t i = 0; i < n; ++i) {
          PutVarint32(&buf, i == 0 ? ids[i] : ids[i] - prev);
          prev = ids[i];
        }
      }
    }
  }
  const size_t id_payload = buf.size() - id_payload_begin;

  // v4: trailing MinHash sketch section (params + raw signature words).
  size_t sketch_payload = 0;
  if (version >= 4) {
    buf.push_back(has_sketches() ? 1 : 0);
    if (has_sketches()) {
      const size_t sketch_begin_pos = buf.size();
      const sketch::SketchParams& p = options_.sketch;
      PutFixed32(&buf, p.k);
      PutFixed32(&buf, p.bands);
      PutFixed32(&buf, p.rows);
      PutFixed64(&buf, p.seed);
      PutDouble(&buf, p.miss_bound);
      PutVarint64(&buf, sketch_begin_);
      PutVarint64(&buf, sketch_num_sets());
      for (uint64_t w : sketch_sigs_) PutFixed64(&buf, w);
      sketch_payload = buf.size() - sketch_begin_pos;
    }
  }

  if (stats != nullptr) {
    // PagedFile wraps the payload in a 16-byte header + 8-byte checksum.
    stats->file_bytes = buf.size() + 24;
    stats->len_payload_bytes = len_payload;
    stats->id_payload_bytes = id_payload;
    stats->sketch_payload_bytes = sketch_payload;
  }
}

Status InvertedIndex::Save(const std::string& path, uint32_t version,
                           IndexFileStats* stats) const {
  PagedFile file(options_.page_bytes);
  std::vector<uint8_t> buf;
  EncodeTo(&buf, version, stats);
  file.Append(buf.data(), buf.size());
  return file.SaveToFile(path);
}

IndexFileStats InvertedIndex::EncodedStats(uint32_t version) const {
  std::vector<uint8_t> buf;
  IndexFileStats stats;
  EncodeTo(&buf, version, &stats);
  return stats;
}

Result<InvertedIndex> InvertedIndex::Load(const std::string& path) {
  Result<PagedFile> file = PagedFile::LoadFromFile(path);
  if (!file.ok()) return file.status();
  const std::vector<uint8_t>& buf = file->contents();
  Decoder dec{buf.data(), buf.size(), 0};
  uint32_t magic, version;
  if (!GetFixed32(&dec, &magic) || magic != kMagic) {
    return Status::Corruption("bad magic in index file: " + path);
  }
  if (!GetFixed32(&dec, &version) || version < kVersionLegacy ||
      version > kVersionLatest) {
    return Status::Corruption("unsupported index version in: " + path);
  }
  InvertedIndex index;
  uint64_t page_bytes, skip_fanout, hash_page_bytes, block_postings;
  if (!GetFixed64(&dec, &page_bytes) || !GetFixed64(&dec, &skip_fanout) ||
      !GetFixed64(&dec, &hash_page_bytes) ||
      !GetFixed64(&dec, &block_postings) || block_postings == 0 ||
      dec.remaining() < 3) {
    return Status::Corruption("truncated index options in: " + path);
  }
  index.options_.page_bytes = page_bytes;
  index.options_.skip_fanout = skip_fanout;
  index.options_.hash_page_bytes = hash_page_bytes;
  index.options_.block_postings = block_postings;
  index.options_.build_id_lists = dec.data[dec.pos++] != 0;
  index.options_.build_skip = dec.data[dec.pos++] != 0;
  index.options_.build_hash = dec.data[dec.pos++] != 0;
  uint64_t num_offsets;
  if (!GetFixed64(&dec, &num_offsets) || num_offsets == 0) {
    return Status::Corruption("bad offset table in: " + path);
  }
  index.offsets_.resize(num_offsets);
  for (uint64_t i = 0; i < num_offsets; ++i) {
    if (!GetVarint64(&dec, &index.offsets_[i])) {
      return Status::Corruption("truncated offsets in: " + path);
    }
  }
  const size_t num_tokens = num_offsets - 1;
  uint64_t total = index.offsets_.back();
  index.len_ids_.resize(total);
  index.len_lens_.resize(total);
  if (version == kVersionLegacy) {
    for (uint64_t i = 0; i < total; ++i) {
      if (!GetVarint32(&dec, &index.len_ids_[i])) {
        return Status::Corruption("truncated postings in: " + path);
      }
    }
    for (uint64_t i = 0; i < total; ++i) {
      if (!GetFloat(&dec, &index.len_lens_[i])) {
        return Status::Corruption("truncated lengths in: " + path);
      }
    }
  } else {
    const size_t bp = index.options_.block_postings;
    BlockDecodeScratch scratch;
    for (size_t t = 0; t < num_tokens; ++t) {
      const uint64_t begin = index.offsets_[t];
      const uint64_t n = index.offsets_[t + 1] - begin;
      for (uint64_t first = 0; first < n; first += bp) {
        const size_t expect = static_cast<size_t>(std::min<uint64_t>(bp, n - first));
        size_t got = 0, consumed = 0;
        if (!DecodePostingBlock(dec.data + dec.pos, dec.size - dec.pos,
                                expect, index.len_ids_.data() + begin + first,
                                index.len_lens_.data() + begin + first, &got,
                                &consumed, &scratch) ||
            got != expect) {
          return Status::Corruption("bad posting block in: " + path);
        }
        dec.pos += consumed;
      }
    }
  }
  if (dec.exhausted()) return Status::Corruption("missing id lists flag");
  bool has_id_lists = dec.data[dec.pos++] != 0;
  if (has_id_lists) {
    index.id_ids_.resize(total);
    index.id_lens_.resize(total);
    if (version == kVersionLegacy) {
      for (uint64_t i = 0; i < total; ++i) {
        if (!GetVarint32(&dec, &index.id_ids_[i])) {
          return Status::Corruption("truncated id postings in: " + path);
        }
      }
      for (uint64_t i = 0; i < total; ++i) {
        if (!GetFloat(&dec, &index.id_lens_[i])) {
          return Status::Corruption("truncated id lengths in: " + path);
        }
      }
    } else {
      // v3 stores gaps only; lengths come from the by-length lists (a
      // length is a per-set value, so one table keyed by set id covers
      // every posting).
      uint32_t max_id = 0;
      for (uint64_t i = 0; i < total; ++i) {
        max_id = std::max(max_id, index.len_ids_[i]);
      }
      std::vector<float> len_of_id(total == 0 ? 0 : size_t{max_id} + 1, 0.0f);
      for (uint64_t i = 0; i < total; ++i) {
        len_of_id[index.len_ids_[i]] = index.len_lens_[i];
      }
      for (size_t t = 0; t < num_tokens; ++t) {
        const uint64_t begin = index.offsets_[t];
        const uint64_t n = index.offsets_[t + 1] - begin;
        uint32_t prev = 0;
        for (uint64_t i = 0; i < n; ++i) {
          uint32_t gap;
          if (!GetVarint32(&dec, &gap)) {
            return Status::Corruption("truncated id postings in: " + path);
          }
          const uint32_t id = i == 0 ? gap : prev + gap;
          if (id > max_id) {
            return Status::Corruption("id posting out of range in: " + path);
          }
          prev = id;
          index.id_ids_[begin + i] = id;
          index.id_lens_[begin + i] = len_of_id[id];
        }
      }
    }
  }
  // v4: trailing MinHash sketch section.
  index.options_.build_sketches = false;
  if (version >= 4) {
    if (dec.exhausted()) return Status::Corruption("missing sketch flag");
    const bool has_sketch = dec.data[dec.pos++] != 0;
    if (has_sketch) {
      sketch::SketchParams& p = index.options_.sketch;
      uint64_t sketch_begin = 0, num_sets = 0;
      if (!GetFixed32(&dec, &p.k) || !GetFixed32(&dec, &p.bands) ||
          !GetFixed32(&dec, &p.rows) || !GetFixed64(&dec, &p.seed) ||
          !GetDouble(&dec, &p.miss_bound) ||
          !GetVarint64(&dec, &sketch_begin) ||
          !GetVarint64(&dec, &num_sets) || !p.valid()) {
        return Status::Corruption("bad sketch section header in: " + path);
      }
      const uint64_t words = num_sets * p.k;
      if (num_sets > (uint64_t{1} << 32) || words > dec.remaining() / 8) {
        return Status::Corruption("truncated sketch section in: " + path);
      }
      index.sketch_begin_ = static_cast<SetId>(sketch_begin);
      index.sketch_sigs_.resize(words);
      for (uint64_t i = 0; i < words; ++i) {
        GetFixed64(&dec, &index.sketch_sigs_[i]);
      }
      index.options_.build_sketches = true;
    }
  }
  index.BuildDerived();
  return index;
}

}  // namespace simsel
