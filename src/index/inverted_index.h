#ifndef SIMSEL_INDEX_INVERTED_INDEX_H_
#define SIMSEL_INDEX_INVERTED_INDEX_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "container/extendible_hash.h"
#include "container/skip_index.h"
#include "index/collection.h"
#include "sim/idf.h"
#include "sketch/minhash.h"

namespace simsel {

/// Construction knobs for the inverted index (Section VIII-A's setup).
struct InvertedIndexOptions {
  /// Modeled disk page size for list storage (drives page accounting).
  size_t page_bytes = 4096;
  /// Skip-index promotion stride (paper: skip lists capped at 10MB/list;
  /// a fanout of 64 keeps ours well under 1% of list bytes).
  size_t skip_fanout = 64;
  /// Bucket page size of the per-list extendible hash (paper tuned 1 KiB).
  size_t hash_page_bytes = 1024;
  /// Posting-block granularity of the per-block summaries: every by-length
  /// list is covered by fixed-size blocks of this many postings, each with a
  /// {min_len, max_len, first_id, last_id} summary. Length seeks binary-
  /// search the summaries and span reads never cross a block boundary.
  size_t block_postings = 128;
  /// Worker threads for the per-token build passes (sorting, summaries,
  /// skip indexes, hashes). 0 = auto: parallel only when the index is large
  /// enough to amortize spawning workers. The result is identical either
  /// way (every pass is per-token deterministic).
  size_t build_threads = 0;
  /// Build the by-id sorted lists (needed by the sort-by-id baseline).
  bool build_id_lists = true;
  /// Build per-list skip indexes (needed for skip-enabled length bounding).
  bool build_skip = true;
  /// Build per-list extendible hashes (needed by TA/iTA random access).
  bool build_hash = true;
  /// Build per-set MinHash signatures for the sketch prefilter tier
  /// (src/sketch/). Persisted in the version-4 index image; without them
  /// SelectOptions::prefilter silently falls through to the exact kernels.
  bool build_sketches = true;
  /// Sketch family parameters (see sketch/minhash.h). Fixed default seed so
  /// two builds of one collection produce identical sketch sections.
  sketch::SketchParams sketch;
};

/// Summary of one fixed-size block of by-length postings. Because the list
/// is sorted by (len, id), min/max_len of consecutive blocks are themselves
/// sorted, so a binary search over summaries lands the Theorem-1 window in
/// O(log #blocks); max_len also clips a span's length bound in O(1) when
/// the whole block qualifies. first/last_id bound the ids a block can
/// contribute (useful to merge candidates against a block at a time).
struct PostingBlockSummary {
  float min_len;
  float max_len;
  uint32_t first_id;
  uint32_t last_id;
};

/// A half-open range [begin, end) of positions in one by-length list.
struct PostingRange {
  size_t begin = 0;
  size_t end = 0;
  size_t size() const { return end - begin; }
  bool empty() const { return begin >= end; }
};

/// Byte accounting of one serialized index file (see Save): the whole file
/// plus the posting payloads alone — the compression-sensitive part the
/// Figure 5 bench and the bench meta track across format versions.
struct IndexFileStats {
  uint64_t file_bytes = 0;
  /// By-length posting payload (ids + lengths, excluding headers/offsets).
  uint64_t len_payload_bytes = 0;
  /// By-id posting payload (0 when id lists are not built).
  uint64_t id_payload_bytes = 0;
  /// MinHash signature payload (version >= 4 with sketches built; else 0).
  uint64_t sketch_payload_bytes = 0;
};

/// The paper's specialized index (Section III-B): one inverted list per
/// token. Two sort orders are materialized:
///
///  - by increasing (len(s), id): since len(q) and idf(q^i) are constant per
///    list, this is exactly decreasing per-list contribution w_i order — the
///    order the TA/NRA-family algorithms consume (Figure 3);
///  - by increasing id: consumed by the multiway sort-by-id merge (Figure 2).
///
/// Each by-length list optionally carries a SkipIndex (skip to the first
/// entry inside the Length Boundedness window) and an ExtendibleHash mapping
/// set id -> len for TA-style random-access probes.
///
/// Lists are stored struct-of-arrays in CSR layout: ids and lengths in two
/// flat arrays with a shared per-token offset table.
class InvertedIndex {
 public:
  /// Builds the index for `collection` with lengths from `measure`.
  static InvertedIndex Build(const Collection& collection,
                             const IdfMeasure& measure,
                             InvertedIndexOptions options = {});

  /// Builds with explicit per-set normalized lengths (`set_lengths[s]` for
  /// set s). Used to index other measures of the family — e.g. TF/IDF
  /// selection stores ||s|| with tf weighting (see core/tfidf_select.h).
  static InvertedIndex BuildWithLengths(const Collection& collection,
                                        const std::vector<float>& set_lengths,
                                        InvertedIndexOptions options = {});

  /// Builds a shard index over the contiguous global id range [begin, end):
  /// the token space is the collection's full dictionary, the postings are
  /// only those of sets in the range, and they carry their *global* set ids
  /// and lengths from the *global* measure. Scoring against a shard index is
  /// therefore bit-identical to scoring against the full index — df/idf and
  /// len(s) are collection-wide statistics — which is what lets the serving
  /// layer (serve/sharded_selector.h) merge per-shard answers into exactly
  /// the single-index answer. Tokens absent from the range simply get empty
  /// lists (and no skip index or hash).
  static InvertedIndex BuildShard(const Collection& collection,
                                  const IdfMeasure& measure, SetId begin,
                                  SetId end, InvertedIndexOptions options = {});

  size_t num_tokens() const { return offsets_.size() - 1; }
  uint64_t total_postings() const { return len_ids_.size(); }
  const InvertedIndexOptions& options() const { return options_; }

  /// Postings per modeled page (8 bytes per posting).
  size_t entries_per_page() const { return options_.page_bytes / 8; }

  size_t ListSize(TokenId t) const { return offsets_[t + 1] - offsets_[t]; }

  /// By-length list of token `t` (parallel arrays, ListSize(t) entries).
  const uint32_t* LenIds(TokenId t) const { return len_ids_.data() + offsets_[t]; }
  const float* LenLens(TokenId t) const { return len_lens_.data() + offsets_[t]; }

  /// By-id list of token `t`; null data if build_id_lists was false.
  const uint32_t* IdIds(TokenId t) const {
    return id_ids_.empty() ? nullptr : id_ids_.data() + offsets_[t];
  }
  const float* IdLens(TokenId t) const {
    return id_lens_.empty() ? nullptr : id_lens_.data() + offsets_[t];
  }

  /// Skip index over the by-length list, or null if not built.
  const SkipIndex* skip(TokenId t) const {
    return skips_.empty() ? nullptr : skips_[t].get();
  }

  /// Block-summary layer over the by-length lists (always built).
  size_t block_postings() const { return options_.block_postings; }
  size_t NumBlocks(TokenId t) const {
    return block_offsets_[t + 1] - block_offsets_[t];
  }
  const PostingBlockSummary* Blocks(TokenId t) const {
    return blocks_.data() + block_offsets_[t];
  }

  /// First position in `t`'s by-length list with len >= target (ListSize(t)
  /// if none): binary search over the block summaries, then over the landing
  /// block. `probes`, if non-null, is incremented by the number of summary
  /// entries inspected (the random-access cost of the descent, which
  /// callers convert to modeled page reads).
  size_t SeekFirstGE(TokenId t, float target, uint64_t* probes = nullptr) const;
  /// First position with len > target (the exclusive end of a length bound).
  size_t SeekFirstGT(TokenId t, float target, uint64_t* probes = nullptr) const;

  /// The Theorem-1 window [lo_len, hi_len] of token `t` as a contiguous
  /// posting range, located entirely through the block summaries.
  PostingRange WindowSpan(TokenId t, float lo_len, float hi_len,
                          uint64_t* probes = nullptr) const;

  /// Extendible hash (set id -> len) over the list, or null if not built.
  const ExtendibleHash* hash(TokenId t) const {
    return hashes_.empty() ? nullptr : hashes_[t].get();
  }

  /// Figure 5 size accounting (bytes): the lists themselves (one sort order),
  /// both sort orders, skip indexes, and extendible hashes.
  size_t ListBytesOneOrder() const { return len_ids_.size() * 8; }
  size_t ListBytesTotal() const;
  size_t SkipBytes() const;
  size_t HashBytes() const;
  size_t BlockSummaryBytes() const {
    return blocks_.size() * sizeof(PostingBlockSummary);
  }

  /// Per-set MinHash signatures (sketch prefilter tier). Row i holds the
  /// params.k 64-bit components of set sketch_begin() + i; empty when the
  /// index was built (or loaded from a version < 4 image) without sketches.
  bool has_sketches() const { return !sketch_sigs_.empty(); }
  const sketch::SketchParams& sketch_params() const { return options_.sketch; }
  /// First set id covered by the sketch rows (the shard begin for
  /// BuildShard, 0 otherwise).
  SetId sketch_begin() const { return sketch_begin_; }
  size_t sketch_num_sets() const {
    return has_sketches() ? sketch_sigs_.size() / options_.sketch.k : 0;
  }
  const uint64_t* sketch_signatures() const { return sketch_sigs_.data(); }
  size_t SketchBytes() const { return sketch_sigs_.size() * sizeof(uint64_t); }

  /// Serialized format versions Save accepts (Load reads all):
  ///  - 2: plain varint ids + fixed32 lengths, both sort orders in full;
  ///  - 3: by-length lists as compressed posting blocks (storage/
  ///    block_codec.h) aligned to the summary blocks, by-id lists as gap
  ///    varints with the lengths reconstructed from a set-id table;
  ///  - 4: version 3 plus a trailing MinHash sketch section (params +
  ///    per-set signatures; see docs/FORMATS.md).
  static constexpr uint32_t kVersionLegacy = 2;
  static constexpr uint32_t kVersionBlocks = 3;
  static constexpr uint32_t kVersionLatest = 4;

  /// Serializes lists + options to `path` (skip/hash are derived structures
  /// and are rebuilt on Load). `version` selects the wire format — the
  /// latest by default; kVersionLegacy is kept writable for migration and
  /// for the format-size comparisons in the Figure 5 bench. `stats`, when
  /// non-null, receives the byte accounting of the written file.
  Status Save(const std::string& path, uint32_t version = kVersionLatest,
              IndexFileStats* stats = nullptr) const;
  static Result<InvertedIndex> Load(const std::string& path);

  /// Byte accounting of the serialized form without writing a file.
  IndexFileStats EncodedStats(uint32_t version = kVersionLatest) const;

  /// Structural invariant check (for tests and post-Load paranoia):
  /// by-length lists sorted by (len, id), by-id lists strictly id-sorted,
  /// equal per-token sizes across orders, hash entries matching postings.
  /// Returns false and logs the first violation to stderr.
  bool Validate() const;

 private:
  InvertedIndex() = default;
  void EncodeTo(std::vector<uint8_t>* buf, uint32_t version,
                IndexFileStats* stats) const;
  static InvertedIndex BuildRangeWithLengths(
      const Collection& collection, const std::vector<float>& set_lengths,
      SetId range_begin, SetId range_end, InvertedIndexOptions options);
  void BuildDerived();

  InvertedIndexOptions options_;
  std::vector<uint64_t> offsets_;  // size num_tokens + 1
  std::vector<uint32_t> len_ids_;  // by (len asc, id asc)
  std::vector<float> len_lens_;
  std::vector<uint32_t> id_ids_;   // by id asc
  std::vector<float> id_lens_;
  std::vector<std::unique_ptr<SkipIndex>> skips_;
  std::vector<std::unique_ptr<ExtendibleHash>> hashes_;
  std::vector<PostingBlockSummary> blocks_;  // concatenated per token
  std::vector<uint64_t> block_offsets_;      // size num_tokens + 1
  // Sketch section: num_sets rows of options_.sketch.k signature words for
  // sets [sketch_begin_, sketch_begin_ + num_sets). Empty when not built.
  std::vector<uint64_t> sketch_sigs_;
  SetId sketch_begin_ = 0;
};

}  // namespace simsel

#endif  // SIMSEL_INDEX_INVERTED_INDEX_H_
