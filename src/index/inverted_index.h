#ifndef SIMSEL_INDEX_INVERTED_INDEX_H_
#define SIMSEL_INDEX_INVERTED_INDEX_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "container/extendible_hash.h"
#include "container/skip_index.h"
#include "index/collection.h"
#include "sim/idf.h"

namespace simsel {

/// Construction knobs for the inverted index (Section VIII-A's setup).
struct InvertedIndexOptions {
  /// Modeled disk page size for list storage (drives page accounting).
  size_t page_bytes = 4096;
  /// Skip-index promotion stride (paper: skip lists capped at 10MB/list;
  /// a fanout of 64 keeps ours well under 1% of list bytes).
  size_t skip_fanout = 64;
  /// Bucket page size of the per-list extendible hash (paper tuned 1 KiB).
  size_t hash_page_bytes = 1024;
  /// Build the by-id sorted lists (needed by the sort-by-id baseline).
  bool build_id_lists = true;
  /// Build per-list skip indexes (needed for skip-enabled length bounding).
  bool build_skip = true;
  /// Build per-list extendible hashes (needed by TA/iTA random access).
  bool build_hash = true;
};

/// The paper's specialized index (Section III-B): one inverted list per
/// token. Two sort orders are materialized:
///
///  - by increasing (len(s), id): since len(q) and idf(q^i) are constant per
///    list, this is exactly decreasing per-list contribution w_i order — the
///    order the TA/NRA-family algorithms consume (Figure 3);
///  - by increasing id: consumed by the multiway sort-by-id merge (Figure 2).
///
/// Each by-length list optionally carries a SkipIndex (skip to the first
/// entry inside the Length Boundedness window) and an ExtendibleHash mapping
/// set id -> len for TA-style random-access probes.
///
/// Lists are stored struct-of-arrays in CSR layout: ids and lengths in two
/// flat arrays with a shared per-token offset table.
class InvertedIndex {
 public:
  /// Builds the index for `collection` with lengths from `measure`.
  static InvertedIndex Build(const Collection& collection,
                             const IdfMeasure& measure,
                             InvertedIndexOptions options = {});

  /// Builds with explicit per-set normalized lengths (`set_lengths[s]` for
  /// set s). Used to index other measures of the family — e.g. TF/IDF
  /// selection stores ||s|| with tf weighting (see core/tfidf_select.h).
  static InvertedIndex BuildWithLengths(const Collection& collection,
                                        const std::vector<float>& set_lengths,
                                        InvertedIndexOptions options = {});

  size_t num_tokens() const { return offsets_.size() - 1; }
  uint64_t total_postings() const { return len_ids_.size(); }
  const InvertedIndexOptions& options() const { return options_; }

  /// Postings per modeled page (8 bytes per posting).
  size_t entries_per_page() const { return options_.page_bytes / 8; }

  size_t ListSize(TokenId t) const { return offsets_[t + 1] - offsets_[t]; }

  /// By-length list of token `t` (parallel arrays, ListSize(t) entries).
  const uint32_t* LenIds(TokenId t) const { return len_ids_.data() + offsets_[t]; }
  const float* LenLens(TokenId t) const { return len_lens_.data() + offsets_[t]; }

  /// By-id list of token `t`; null data if build_id_lists was false.
  const uint32_t* IdIds(TokenId t) const {
    return id_ids_.empty() ? nullptr : id_ids_.data() + offsets_[t];
  }
  const float* IdLens(TokenId t) const {
    return id_lens_.empty() ? nullptr : id_lens_.data() + offsets_[t];
  }

  /// Skip index over the by-length list, or null if not built.
  const SkipIndex* skip(TokenId t) const {
    return skips_.empty() ? nullptr : skips_[t].get();
  }

  /// Extendible hash (set id -> len) over the list, or null if not built.
  const ExtendibleHash* hash(TokenId t) const {
    return hashes_.empty() ? nullptr : hashes_[t].get();
  }

  /// Figure 5 size accounting (bytes): the lists themselves (one sort order),
  /// both sort orders, skip indexes, and extendible hashes.
  size_t ListBytesOneOrder() const { return len_ids_.size() * 8; }
  size_t ListBytesTotal() const;
  size_t SkipBytes() const;
  size_t HashBytes() const;

  /// Serializes lists + options to `path` (skip/hash are derived structures
  /// and are rebuilt on Load).
  Status Save(const std::string& path) const;
  static Result<InvertedIndex> Load(const std::string& path);

  /// Structural invariant check (for tests and post-Load paranoia):
  /// by-length lists sorted by (len, id), by-id lists strictly id-sorted,
  /// equal per-token sizes across orders, hash entries matching postings.
  /// Returns false and logs the first violation to stderr.
  bool Validate() const;

 private:
  InvertedIndex() = default;
  void BuildDerived();

  InvertedIndexOptions options_;
  std::vector<uint64_t> offsets_;  // size num_tokens + 1
  std::vector<uint32_t> len_ids_;  // by (len asc, id asc)
  std::vector<float> len_lens_;
  std::vector<uint32_t> id_ids_;   // by id asc
  std::vector<float> id_lens_;
  std::vector<std::unique_ptr<SkipIndex>> skips_;
  std::vector<std::unique_ptr<ExtendibleHash>> hashes_;
};

}  // namespace simsel

#endif  // SIMSEL_INDEX_INVERTED_INDEX_H_
