#include "index/compressed_lists.h"

#include "common/logging.h"
#include "storage/block_codec.h"

namespace simsel {

CompressedIdLists CompressedIdLists::Build(const InvertedIndex& index) {
  SIMSEL_CHECK_MSG(index.options().build_id_lists,
                   "compressed lists need build_id_lists");
  CompressedIdLists out;
  const size_t num_tokens = index.num_tokens();
  out.offsets_.resize(num_tokens + 1, 0);
  out.counts_.resize(num_tokens, 0);

  uint32_t max_id = 0;
  for (TokenId t = 0; t < num_tokens; ++t) {
    const size_t n = index.ListSize(t);
    out.counts_[t] = static_cast<uint32_t>(n);
    out.offsets_[t] = out.blob_.size();
    const uint32_t* ids = index.IdIds(t);
    uint32_t prev = 0;
    for (size_t i = 0; i < n; ++i) {
      // First gap is the id itself; ids strictly increase within a list.
      uint32_t gap = (i == 0) ? ids[i] : ids[i] - prev;
      AppendVarint32(&out.blob_, gap);
      prev = ids[i];
      max_id = std::max(max_id, ids[i]);
    }
  }
  out.offsets_[num_tokens] = out.blob_.size();

  // Global id -> length table (lengths are per set, not per posting).
  out.set_len_.assign(static_cast<size_t>(max_id) + 1, 0.0f);
  for (TokenId t = 0; t < num_tokens; ++t) {
    const uint32_t* ids = index.IdIds(t);
    const float* lens = index.IdLens(t);
    for (size_t i = 0; i < index.ListSize(t); ++i) {
      out.set_len_[ids[i]] = lens[i];
    }
  }
  return out;
}

uint64_t CompressedIdLists::total_postings() const {
  uint64_t total = 0;
  for (uint32_t c : counts_) total += c;
  return total;
}

size_t CompressedIdLists::SizeBytes() const {
  return blob_.size() + offsets_.size() * sizeof(uint64_t) +
         counts_.size() * sizeof(uint32_t) + set_len_.size() * sizeof(float);
}

void CompressedIdLists::Cursor::Decode() {
  // Shared fast-path varint decode (block_codec.h); the blob is internal so
  // it cannot be malformed.
  uint32_t gap;
  pos_ = ReadVarint32Fast(pos_, &gap);
  id_ += gap;
  if (counters_ != nullptr) {
    ++counters_->elements_read;
    int64_t page =
        static_cast<int64_t>((pos_ - blob_start_) / kPageBytes);
    if (page != last_page_) {
      ++counters_->seq_page_reads;
      last_page_ = page;
    }
  }
}

void CompressedIdLists::Cursor::Next() {
  SIMSEL_DCHECK(Valid());
  --remaining_;
  if (remaining_ > 0) Decode();
}

CompressedIdLists::Cursor CompressedIdLists::OpenList(
    TokenId t, AccessCounters* counters) const {
  Cursor cursor;
  cursor.pos_ = blob_.data() + offsets_[t];
  cursor.blob_start_ = blob_.data();
  cursor.remaining_ = counts_[t];
  cursor.counters_ = counters;
  if (counters != nullptr) counters->elements_total += counts_[t];
  if (cursor.remaining_ > 0) cursor.Decode();
  return cursor;
}

}  // namespace simsel
