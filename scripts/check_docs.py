#!/usr/bin/env python3
"""Docs gate for scripts/check.sh.

Three checks, all required:

  1. Internal links: every relative markdown link in the scanned docs
     (docs/*.md plus README.md, DESIGN.md, EXPERIMENTS.md, ROADMAP.md) must
     point at a file or directory that exists in the repo, and every
     `#fragment` — same-file (`#section`) or cross-file (`FILE.md#section`)
     — must match a heading in the target document (GitHub slug rules:
     lowercased, punctuation stripped, spaces to hyphens, `-N` suffixes on
     duplicates). External (http/https/mailto) links are ignored.

  2. CLI flags: every `--flag` named on a line that invokes simsel_cli in
     the scanned docs must appear in `simsel_cli --help` output, so the
     documentation can never advertise a flag the binary dropped.

  3. Metric names: every `simsel_*` metric registered in src/ (a string
     literal passed to GetCounter/GetGauge/GetHistogram) must be named in
     docs/OBSERVABILITY.md, and every `simsel_*` name that document
     mentions must be registered somewhere in src/ — so the metric table
     can neither lag behind the code nor advertise series the registry
     never exports. Doc-side `_bucket`/`_sum`/`_count` suffixes resolve to
     their histogram family.

Usage: scripts/check_docs.py [--cli <path/to/simsel_cli>]

Without --cli the flag check is skipped (link and metric checking need no
build). Exits 0 when every check passes, 1 otherwise, listing each failure
as `file:line: message`.
"""

import argparse
import glob
import os
import re
import subprocess
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

SCANNED = sorted(glob.glob(os.path.join(REPO, "docs", "*.md"))) + [
    os.path.join(REPO, name)
    for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md", "ROADMAP.md")
]

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
FLAG_RE = re.compile(r"--[a-z][a-z0-9-]*")

# A metric name literal handed to the registry, tolerant of a line break
# between the call and its first argument.
REGISTER_RE = re.compile(
    r"Get(?:Counter|Gauge|Histogram)\(\s*\"(simsel_[a-z0-9_]+)\"", re.S
)
METRIC_NAME_RE = re.compile(r"simsel_[a-z0-9_]+")
# simsel_-prefixed words in the doc that are not metric names.
NOT_METRICS = {"simsel_cli"}
OBSERVABILITY_DOC = os.path.join(REPO, "docs", "OBSERVABILITY.md")


HEADING_RE = re.compile(r"^#{1,6}\s+(.*)")


def github_slug(text):
    """The anchor GitHub generates for a heading."""
    text = re.sub(r"`([^`]*)`", r"\1", text)  # unwrap inline code
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # links -> text
    text = re.sub(r"[^\w\- ]", "", text.strip().lower())
    return text.replace(" ", "-")


_slug_cache = {}


def heading_slugs(path):
    """All heading anchors of a markdown file, duplicate-suffixed like
    GitHub (`#name`, `#name-1`, ...). Fenced code blocks are skipped so a
    `# comment` inside a shell example is not a heading."""
    if path not in _slug_cache:
        slugs, counts, in_code = set(), {}, False
        with open(path, encoding="utf-8") as f:
            for line in f.read().splitlines():
                if line.lstrip().startswith("```"):
                    in_code = not in_code
                    continue
                if in_code:
                    continue
                m = HEADING_RE.match(line)
                if not m:
                    continue
                slug = github_slug(m.group(1))
                n = counts.get(slug, 0)
                counts[slug] = n + 1
                slugs.add(slug if n == 0 else "%s-%d" % (slug, n))
        _slug_cache[path] = slugs
    return _slug_cache[path]


def check_links(path, lines, errors):
    base = os.path.dirname(path)
    rel = os.path.relpath(path, REPO)
    for lineno, line in enumerate(lines, 1):
        for target in LINK_RE.findall(line):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            if target.startswith("#"):
                if target[1:] not in heading_slugs(path):
                    errors.append(
                        "%s:%d: broken anchor -> %s (no such heading)"
                        % (rel, lineno, target)
                    )
                continue
            file_part, _, frag = target.partition("#")
            resolved = os.path.normpath(os.path.join(base, file_part))
            if not os.path.exists(resolved):
                errors.append(
                    "%s:%d: broken link -> %s" % (rel, lineno, target)
                )
            elif frag and resolved.endswith(".md"):
                if frag not in heading_slugs(resolved):
                    errors.append(
                        "%s:%d: broken anchor -> %s (no heading #%s in %s)"
                        % (rel, lineno, target, frag,
                           os.path.relpath(resolved, REPO))
                    )


def check_flags(path, lines, help_flags, errors):
    for lineno, line in enumerate(lines, 1):
        if "simsel_cli" not in line:
            continue
        for flag in FLAG_RE.findall(line):
            if flag not in help_flags:
                errors.append(
                    "%s:%d: flag %s not in simsel_cli --help"
                    % (os.path.relpath(path, REPO), lineno, flag)
                )


def registered_metrics():
    """(name -> first src file registering it) for every simsel_* literal."""
    out = {}
    for ext in ("cc", "h", "cpp"):
        for path in sorted(glob.glob(os.path.join(REPO, "src", "**", "*." + ext),
                                     recursive=True)):
            with open(path, encoding="utf-8") as f:
                content = f.read()
            for name in REGISTER_RE.findall(content):
                out.setdefault(name, os.path.relpath(path, REPO))
    return out


def check_metrics(errors):
    registered = registered_metrics()
    if not registered:
        errors.append("src/: no registered simsel_* metrics found "
                      "(registration scan is broken)")
        return
    doc_rel = os.path.relpath(OBSERVABILITY_DOC, REPO)
    if not os.path.exists(OBSERVABILITY_DOC):
        errors.append("%s: missing (metric table lives there)" % doc_rel)
        return
    with open(OBSERVABILITY_DOC, encoding="utf-8") as f:
        doc_lines = f.read().splitlines()
    documented = {}
    for lineno, line in enumerate(doc_lines, 1):
        for name in METRIC_NAME_RE.findall(line):
            if name not in NOT_METRICS:
                documented.setdefault(name, lineno)
    for name, src in sorted(registered.items()):
        if name not in documented:
            errors.append("%s: registered metric %s not documented in %s"
                          % (src, name, doc_rel))
    for name, lineno in sorted(documented.items()):
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in registered:
                base = name[: -len(suffix)]
                break
        if base not in registered:
            errors.append("%s:%d: documented metric %s not registered in src/"
                          % (doc_rel, lineno, name))


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--cli", help="path to a built simsel_cli binary")
    args = parser.parse_args()

    help_flags = None
    if args.cli:
        proc = subprocess.run(
            [args.cli, "--help"], capture_output=True, text=True
        )
        if proc.returncode != 0:
            print(
                "check_docs: `%s --help` exited %d (must print help on "
                "stdout and exit 0)" % (args.cli, proc.returncode)
            )
            return 1
        help_flags = set(FLAG_RE.findall(proc.stdout))
        if not help_flags:
            print("check_docs: no flags found in --help output")
            return 1

    errors = []
    for path in SCANNED:
        if not os.path.exists(path):
            errors.append("%s: scanned doc missing" % os.path.relpath(path, REPO))
            continue
        with open(path, encoding="utf-8") as f:
            lines = f.read().splitlines()
        check_links(path, lines, errors)
        if help_flags is not None:
            check_flags(path, lines, help_flags, errors)
    check_metrics(errors)

    for err in errors:
        print("check_docs: %s" % err)
    scanned = ", ".join(os.path.relpath(p, REPO) for p in SCANNED)
    if errors:
        print("check_docs: FAILED (%d problems) over %s" % (len(errors), scanned))
        return 1
    print(
        "check_docs: OK — links, metric names%s verified over %s"
        % ("" if help_flags is None else " and simsel_cli flags", scanned)
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
