#!/usr/bin/env bash
# Developer gate: builds the tree with warnings-as-errors and
# AddressSanitizer, then runs the full test suite. Usage:
#
#   scripts/check.sh              # ASan build + ctest in build-asan/
#   SIMSEL_CHECK_TSAN=1 scripts/check.sh   # ThreadSanitizer instead
#
# Keep this green before sending changes; it is the same configuration the
# sanitizer options in CMakeLists.txt expose.
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${SIMSEL_CHECK_TSAN:-0}" == "1" ]]; then
  build_dir=build-tsan
  san_flag=-DSIMSEL_ENABLE_TSAN=ON
else
  build_dir=build-asan
  san_flag=-DSIMSEL_ENABLE_ASAN=ON
fi

cmake -B "$build_dir" -S . -DSIMSEL_WERROR=ON "$san_flag" \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$build_dir" -j "$(nproc)"
ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc)"
echo "check.sh: all tests passed ($build_dir)"
