#!/usr/bin/env bash
# Developer gate: two sanitizer legs, both required.
#
#   1. AddressSanitizer: warnings-as-errors build + the full test suite
#      (build-asan/).
#   2. ThreadSanitizer: the concurrency-labeled tests — thread_pool_test,
#      buffer_pool_test, parallel_test and the concurrency_test soak, which
#      runs mixed algorithms in disk and memory mode against one shared
#      index/store/pool — must produce zero race reports (build-tsan/).
#
# Usage:
#
#   scripts/check.sh                       # ASan full suite + TSan -L concurrency
#   SIMSEL_CHECK_TSAN=1 scripts/check.sh   # widen the TSan leg to the full suite
#
# Keep this green before sending changes; it is the same configuration the
# sanitizer options in CMakeLists.txt expose.
#
# Perf changes: guard wall-clock with scripts/bench_compare.py. Run the
# bench twice — once on the pre-change tree, once on your change — and diff
# the artifacts (fails on >10% regression):
#
#   (cd build/bench && ./bench_micro --benchmark_filter=BM_Query)
#   mv build/bench/BENCH_micro.json BENCH_micro_baseline.json
#   # ...apply your change, rebuild, rerun...
#   scripts/bench_compare.py BENCH_micro_baseline.json build/bench/BENCH_micro.json
set -euo pipefail
cd "$(dirname "$0")/.."

jobs="$(nproc)"

echo "== check.sh leg 1/2: AddressSanitizer, full suite =="
cmake -B build-asan -S . -DSIMSEL_WERROR=ON -DSIMSEL_ENABLE_ASAN=ON \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build-asan -j "$jobs"
ctest --test-dir build-asan --output-on-failure -j "$jobs"

echo "== check.sh leg 2/2: ThreadSanitizer =="
cmake -B build-tsan -S . -DSIMSEL_WERROR=ON -DSIMSEL_ENABLE_TSAN=ON \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build-tsan -j "$jobs"
# TSan makes any report fatal (halt_on_error) so a race fails ctest even if
# the test's assertions would have passed.
if [[ "${SIMSEL_CHECK_TSAN:-0}" == "1" ]]; then
  TSAN_OPTIONS="halt_on_error=1" \
    ctest --test-dir build-tsan --output-on-failure -j "$jobs"
else
  TSAN_OPTIONS="halt_on_error=1" \
    ctest --test-dir build-tsan --output-on-failure -j "$jobs" -L concurrency
fi

echo "check.sh: all legs passed (build-asan + build-tsan)"
