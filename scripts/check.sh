#!/usr/bin/env bash
# Developer gate: builds the tree with warnings-as-errors and
# AddressSanitizer, then runs the full test suite. Usage:
#
#   scripts/check.sh              # ASan build + ctest in build-asan/
#   SIMSEL_CHECK_TSAN=1 scripts/check.sh   # ThreadSanitizer instead
#
# Keep this green before sending changes; it is the same configuration the
# sanitizer options in CMakeLists.txt expose.
#
# Perf changes: guard wall-clock with scripts/bench_compare.py. Run the
# bench twice — once on the pre-change tree, once on your change — and diff
# the artifacts (fails on >10% regression):
#
#   (cd build/bench && ./bench_micro --benchmark_filter=BM_Query)
#   mv build/bench/BENCH_micro.json BENCH_micro_baseline.json
#   # ...apply your change, rebuild, rerun...
#   scripts/bench_compare.py BENCH_micro_baseline.json build/bench/BENCH_micro.json
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${SIMSEL_CHECK_TSAN:-0}" == "1" ]]; then
  build_dir=build-tsan
  san_flag=-DSIMSEL_ENABLE_TSAN=ON
else
  build_dir=build-asan
  san_flag=-DSIMSEL_ENABLE_ASAN=ON
fi

cmake -B "$build_dir" -S . -DSIMSEL_WERROR=ON "$san_flag" \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$build_dir" -j "$(nproc)"
ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc)"
echo "check.sh: all tests passed ($build_dir)"
