#!/usr/bin/env bash
# Developer gate: nine legs, all required.
#
#   1. AddressSanitizer: warnings-as-errors build + the full test suite
#      (build-asan/).
#   2. Scalar-kernel rerun: the same build-asan suite again with
#      SIMSEL_FORCE_SCALAR=1, so every test also passes with the SIMD
#      dispatch pinned to the scalar reference kernels (the configuration
#      non-x86 machines run; also proves no test depends on a particular
#      variant).
#   3. Docs: scripts/check_docs.py verifies every internal markdown link in
#      docs/*.md, README.md, DESIGN.md, EXPERIMENTS.md and ROADMAP.md, that
#      every simsel_cli flag the docs mention exists in the built
#      binary's --help output (uses build-asan's simsel_cli from leg 1),
#      and that the metric names registered in src/ and the table in
#      docs/OBSERVABILITY.md agree in both directions.
#   4. Prometheus exposition lint: `simsel_cli --stats` output piped
#      through scripts/check_prom.py — every line must parse, no series
#      may repeat, every family needs # HELP and # TYPE, histogram +Inf
#      buckets must equal their _count.
#   5. ThreadSanitizer: the concurrency-labeled tests — thread_pool_test,
#      buffer_pool_test, parallel_test, query_control_test (which cancels
#      in-flight queries on a shared selector), the concurrency_test
#      soak, which runs mixed algorithms in disk and memory mode against
#      one shared index/store/pool, serving_test's scatter-gather +
#      result-cache soak, dynamic_concurrency_test's readers x writer
#      x online-Rebuild soak on one DynamicSelector (epoch reclamation,
#      delta publish, segment swap), server_test's live-socket
#      integration tests (admission, drain, SLO), and
#      prefilter_parity_test's concurrent mixed on/off readers against a
#      live writer (the sketch tier's exactness claim under races) — must
#      produce zero race reports (build-tsan/).
#   6. UndefinedBehaviorSanitizer: the codec / SIMD-kernel / store tests
#      under -fsanitize=undefined with non-recoverable reports
#      (build-ubsan/) — the block codec's bit packing and the per-variant
#      kernels are exactly where UB (shifts, misaligned loads, overflow)
#      would hide.
#   7. Serving smoke: bench_ycsb (build-asan) stands up a live TCP server
#      over a DynamicServing back end and drives it closed- and open-loop
#      through src/gen/load.h — zero transport errors, full shed/ok
#      accounting and a clean drain are its exit-code contract, so the
#      whole network serving path runs under ASan on every gate.
#   8. Perf regression: a plain RelWithDebInfo build runs
#      bench_micro --benchmark_filter=BM_Query and scripts/bench_compare.py
#      diffs the artifact against the committed baseline
#      (bench/baselines/BENCH_micro.json); >10% regression on any query
#      benchmark — mean or p99 — fails the gate.
#   9. Prefilter exactness gate: the same plain build runs bench_prefilter
#      (every query compared tier-on vs tier-off across all algorithms and
#      thresholds) and scripts/bench_compare.py --prefilter-gate enforces
#      the artifact's claims — all cells byte-identical and the SF tau=0.9
#      elements-read reduction at least 2x.
#
# Usage:
#
#   scripts/check.sh                       # all nine legs
#   SIMSEL_CHECK_TSAN=1 scripts/check.sh   # widen the TSan leg to the full suite
#   SIMSEL_CHECK_SKIP_BENCH=1 scripts/check.sh  # skip legs 8-9 (e.g. loaded CI box)
#
# Keep this green before sending changes; it is the same configuration the
# sanitizer options in CMakeLists.txt expose.
#
# Refreshing the perf baseline (only for intentional perf-profile changes —
# explain the shift in the same commit):
#
#   (cd build-bench/bench && ./bench_micro --benchmark_filter=BM_Query)
#   cp build-bench/bench/BENCH_micro.json bench/baselines/BENCH_micro.json
set -euo pipefail
cd "$(dirname "$0")/.."

jobs="$(nproc)"

echo "== check.sh leg 1/9: AddressSanitizer, full suite =="
cmake -B build-asan -S . -DSIMSEL_WERROR=ON -DSIMSEL_ENABLE_ASAN=ON \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build-asan -j "$jobs"
ctest --test-dir build-asan --output-on-failure -j "$jobs"

echo "== check.sh leg 2/9: full suite with SIMSEL_FORCE_SCALAR=1 =="
SIMSEL_FORCE_SCALAR=1 \
  ctest --test-dir build-asan --output-on-failure -j "$jobs"

echo "== check.sh leg 3/9: documentation links, CLI flags, metric names =="
scripts/check_docs.py --cli build-asan/examples/simsel_cli

echo "== check.sh leg 4/9: Prometheus exposition lint =="
build-asan/examples/simsel_cli --stats --words=2000 2>/dev/null \
  | scripts/check_prom.py

echo "== check.sh leg 5/9: ThreadSanitizer =="
cmake -B build-tsan -S . -DSIMSEL_WERROR=ON -DSIMSEL_ENABLE_TSAN=ON \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build-tsan -j "$jobs"
# TSan makes any report fatal (halt_on_error) so a race fails ctest even if
# the test's assertions would have passed.
if [[ "${SIMSEL_CHECK_TSAN:-0}" == "1" ]]; then
  TSAN_OPTIONS="halt_on_error=1" \
    ctest --test-dir build-tsan --output-on-failure -j "$jobs"
else
  TSAN_OPTIONS="halt_on_error=1" \
    ctest --test-dir build-tsan --output-on-failure -j "$jobs" -L concurrency
fi

echo "== check.sh leg 6/9: UndefinedBehaviorSanitizer, codec + kernels =="
cmake -B build-ubsan -S . -DSIMSEL_WERROR=ON -DSIMSEL_ENABLE_UBSAN=ON \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build-ubsan -j "$jobs" \
      --target codec_test simd_kernels_test posting_store_test \
               index_version_test
ctest --test-dir build-ubsan --output-on-failure -j "$jobs" \
      -R 'codec_test|simd_kernels_test|posting_store_test|index_version_test'

echo "== check.sh leg 7/9: network serving smoke (bench_ycsb under ASan) =="
cmake --build build-asan -j "$jobs" --target bench_ycsb
(cd build-asan/bench && ./bench_ycsb --words=6000 --queries=60 --conns=2 \
     --requests=30 --seconds=1)

if [[ "${SIMSEL_CHECK_SKIP_BENCH:-0}" == "1" ]]; then
  echo "== check.sh leg 8/9: perf regression — SKIPPED (SIMSEL_CHECK_SKIP_BENCH=1) =="
else
  echo "== check.sh leg 8/9: perf regression vs bench/baselines/BENCH_micro.json =="
  # Sanitizer builds are useless for timing: a separate plain build.
  cmake -B build-bench -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build build-bench -j "$jobs" --target bench_micro
  (cd build-bench/bench && ./bench_micro --benchmark_filter=BM_Query)
  scripts/bench_compare.py bench/baselines/BENCH_micro.json \
      build-bench/bench/BENCH_micro.json
fi

if [[ "${SIMSEL_CHECK_SKIP_BENCH:-0}" == "1" ]]; then
  echo "== check.sh leg 9/9: prefilter exactness gate — SKIPPED (SIMSEL_CHECK_SKIP_BENCH=1) =="
else
  echo "== check.sh leg 9/9: prefilter exactness gate (bench_prefilter ablation) =="
  cmake -B build-bench -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build build-bench -j "$jobs" --target bench_prefilter
  (cd build-bench/bench && ./bench_prefilter --words=50000 --queries=100)
  scripts/bench_compare.py --prefilter-gate build-bench/bench/BENCH_prefilter.json
fi

echo "check.sh: all legs passed"
