#!/usr/bin/env python3
"""Lint Prometheus text exposition (format 0.0.4) read from stdin or a file.

Used by scripts/check.sh: `simsel_cli --stats | scripts/check_prom.py`
verifies that the exporter's output is something a real scraper would
accept. Checks, all required:

  * every non-comment line parses as `name{labels} value` or `name value`,
    with a valid metric name, well-formed label pairs (quoted, escaped) and
    a finite integer or float value;
  * no duplicate series: the same `name{labels}` may appear at most once;
  * every sample's family (name stripped of `_bucket`/`_sum`/`_count` for
    histograms) has both a `# HELP` and a `# TYPE` comment before its first
    sample, and each family declares HELP/TYPE at most once;
  * `# TYPE` names one of counter/gauge/histogram/summary/untyped;
  * histogram families end their `_bucket` series with an `le="+Inf"`
    bucket whose value equals the family's `_count`.

Exit status: 0 clean, 1 on any lint error, 2 when the input is empty
(an empty exposition almost certainly means the producing command failed).
"""

import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_RE = re.compile(
    r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\["\\n])*)"'
)
VALUE_RE = re.compile(r"^[+-]?(?:[0-9]*\.?[0-9]+(?:[eE][+-]?[0-9]+)?|Inf|NaN)$")
TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}
HISTOGRAM_SUFFIXES = ("_bucket", "_sum", "_count")


def family_of(name, typed):
    """Strip histogram suffixes when the stem is a declared histogram."""
    for suffix in HISTOGRAM_SUFFIXES:
        if name.endswith(suffix):
            stem = name[: -len(suffix)]
            if typed.get(stem) == "histogram":
                return stem
    return name


def parse_labels(body, lineno, errors):
    """Return the canonical label string, or None on malformed labels."""
    pos = 0
    pairs = []
    while pos < len(body):
        m = LABEL_RE.match(body, pos)
        if not m:
            errors.append("line %d: malformed label at %r" % (lineno, body[pos:]))
            return None
        pairs.append((m.group(1), m.group(2)))
        pos = m.end()
        if pos < len(body):
            if body[pos] != ",":
                errors.append("line %d: expected ',' in labels at %r"
                              % (lineno, body[pos:]))
                return None
            pos += 1
    names = [k for k, _ in pairs]
    if len(names) != len(set(names)):
        errors.append("line %d: repeated label name" % lineno)
        return None
    return ",".join('%s="%s"' % kv for kv in pairs)


def main():
    if len(sys.argv) > 2:
        print("usage: check_prom.py [exposition.txt]  (default stdin)",
              file=sys.stderr)
        return 2
    text = (open(sys.argv[1], encoding="utf-8").read()
            if len(sys.argv) == 2 else sys.stdin.read())
    if not text.strip():
        print("check_prom: empty exposition input", file=sys.stderr)
        return 2

    errors = []
    helped = {}   # family -> lineno of # HELP
    typed = {}    # family -> declared type
    seen = {}     # (name, labels) -> lineno
    samples = []  # (name, labels, value, lineno)

    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 2 and parts[1] in ("HELP", "TYPE"):
                if len(parts) < 3 or not NAME_RE.match(parts[2]):
                    errors.append("line %d: malformed %s comment"
                                  % (lineno, parts[1]))
                    continue
                name = parts[2]
                if parts[1] == "HELP":
                    if name in helped:
                        errors.append("line %d: duplicate HELP for %s"
                                      % (lineno, name))
                    helped.setdefault(name, lineno)
                else:
                    if len(parts) < 4 or parts[3] not in TYPES:
                        errors.append("line %d: TYPE for %s must be one of %s"
                                      % (lineno, name, "/".join(sorted(TYPES))))
                        continue
                    if name in typed:
                        errors.append("line %d: duplicate TYPE for %s"
                                      % (lineno, name))
                    typed.setdefault(name, parts[3])
            continue

        # Sample line: name[{labels}] value [timestamp]
        m = re.match(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{(.*)\})?\s+(\S+)"
                     r"(\s+[+-]?[0-9]+)?\s*$", line)
        if not m:
            errors.append("line %d: unparsable sample: %r" % (lineno, line))
            continue
        name, label_body, value = m.group(1), m.group(3), m.group(4)
        if not VALUE_RE.match(value):
            errors.append("line %d: invalid value %r" % (lineno, value))
            continue
        labels = ""
        if label_body is not None:
            labels = parse_labels(label_body, lineno, errors)
            if labels is None:
                continue
        series = (name, labels)
        if series in seen:
            errors.append("line %d: duplicate series %s{%s} (first at line %d)"
                          % (lineno, name, labels, seen[series]))
        else:
            seen[series] = lineno
        samples.append((name, labels, value, lineno))

    for name, labels, value, lineno in samples:
        family = family_of(name, typed)
        if family not in helped:
            errors.append("line %d: %s has no # HELP for family %s"
                          % (lineno, name, family))
        if family not in typed:
            errors.append("line %d: %s has no # TYPE for family %s"
                          % (lineno, name, family))

    # Histogram invariant: the +Inf cumulative bucket equals _count.
    for family, kind in sorted(typed.items()):
        if kind != "histogram":
            continue
        counts = {labels: value for name, labels, value, _ in samples
                  if name == family + "_count"}
        for labels, count in counts.items():
            inf_labels = (labels + "," if labels else "") + 'le="+Inf"'
            inf = next((v for n, l, v, _ in samples
                        if n == family + "_bucket" and l == inf_labels), None)
            if inf is None:
                errors.append("%s{%s}: histogram missing le=\"+Inf\" bucket"
                              % (family, labels))
            elif float(inf) != float(count):
                errors.append("%s{%s}: +Inf bucket %s != count %s"
                              % (family, labels, inf, count))

    for err in errors:
        print("check_prom: %s" % err)
    if errors:
        print("check_prom: FAILED (%d problems, %d series)"
              % (len(errors), len(seen)))
        return 1
    print("check_prom: OK — %d series, %d families" % (len(seen), len(typed)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
