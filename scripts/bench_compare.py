#!/usr/bin/env python3
"""Diff two BENCH_*.json artifacts and fail on wall-clock regressions.

Usage:
    scripts/bench_compare.py BASELINE.json CANDIDATE.json [--threshold 0.10]
    scripts/bench_compare.py --prefilter-gate BENCH_prefilter.json

Compares, between the two artifacts:

  * every `simsel_query_latency_usec{...}` histogram in the metrics
    snapshot — both the mean and the p99 latency per algorithm (the mean
    catches broad slowdowns, the p99 catches tail regressions the mean
    hides), and
  * every numeric cell of tables whose column name looks like a wall-clock
    measure (contains "ms", "us", "sec", "time", "wall" or "latency"),
    matched by table title + first-column row key.

A comparison REGRESSES when the candidate is more than `--threshold`
(default 10%) slower than the baseline. Exit status: 0 when nothing
regressed, 1 on any regression, 2 on usage/format errors. Entries present
in only one artifact are reported but never fail the run (benches evolve).

Tiny absolute values are noise: rows where the baseline is below
`--min-usec` (default 1.0) are skipped.

`--prefilter-gate` is a different mode: it takes a single
BENCH_prefilter.json artifact and enforces the sketch tier's acceptance
claims — every ablation cell byte-identical ("identical" column all "yes"),
the SF elements-read ratio at tau=0.9 at least `--min-read-ratio` (default
2.0), and the tier actually engaging at tau=0.9. The measured false-positive
overhead is reported but never gated (it is a property of the workload, not
a correctness claim).
"""

import argparse
import json
import re
import sys

TIME_COLUMN = re.compile(r"(^|[^a-z])(ms|us|usec|msec|sec|s)([^a-z]|$)|time|wall|latency")


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_compare: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def latency_histograms(doc, stat="mean"):
    """name -> `stat` usec, for the per-algorithm query latency histograms.

    `stat` is a key of the exported histogram snapshot: "mean" for the
    average, "p99" for the tail (log-bucketed, <=12.5% relative bucket
    error — well inside the regression threshold).
    """
    out = {}
    hists = doc.get("metrics", {}).get("histograms", {})
    for name, h in hists.items():
        if "latency" not in name:
            continue
        if h.get("count", 0) > 0 and stat in h:
            out[name] = float(h[stat])
    return out


def table_times(doc):
    """(title, row_key, column) -> value, for wall-clock-looking columns."""
    out = {}
    for table in doc.get("tables", []):
        title = table.get("title", "")
        columns = table.get("columns", [])
        time_cols = [
            c for c, col in enumerate(columns)
            if c > 0 and TIME_COLUMN.search(col.lower())
        ]
        if not time_cols:
            continue
        for row in table.get("rows", []):
            if not row:
                continue
            for c in time_cols:
                if c >= len(row):
                    continue
                try:
                    value = float(row[c])
                except ValueError:
                    continue
                out[(title, row[0], columns[c])] = value
    return out


def compare(kind, base, cand, threshold, min_value):
    regressions = []
    for key in sorted(set(base) | set(cand), key=str):
        b, c = base.get(key), cand.get(key)
        if b is None or c is None:
            side = "baseline" if c is None else "candidate"
            print(f"  [{kind}] {key}: only in {side}, skipped")
            continue
        if b < min_value:
            continue
        delta = (c - b) / b
        marker = " <-- REGRESSION" if delta > threshold else ""
        print(f"  [{kind}] {key}: {b:.3f} -> {c:.3f} ({delta:+.1%}){marker}")
        if delta > threshold:
            regressions.append((kind, key, b, c, delta))
    return regressions


def find_table(doc, title_prefix):
    for table in doc.get("tables", []):
        if table.get("title", "").startswith(title_prefix):
            return table
    return None


def prefilter_gate(path, min_read_ratio):
    """Enforce the sketch tier's acceptance claims on one artifact."""
    doc = load(path)
    failures = []

    ablation = find_table(doc, "Prefilter ablation")
    if ablation is None:
        print("prefilter-gate: no 'Prefilter ablation' table in artifact",
              file=sys.stderr)
        return 2
    cols = ablation.get("columns", [])
    try:
        c_tau = cols.index("tau")
        c_algo = cols.index("algo")
        c_ratio = cols.index("read_ratio")
        c_ident = cols.index("identical")
    except ValueError as e:
        print(f"prefilter-gate: ablation table misses a column: {e}",
              file=sys.stderr)
        return 2

    sf_gated = False
    for row in ablation.get("rows", []):
        tau, algo = row[c_tau], row[c_algo]
        if row[c_ident] != "yes":
            failures.append(f"tau={tau} {algo}: results NOT identical "
                            "with the tier on")
        if tau == "0.9" and algo == "SF":
            sf_gated = True
            ratio = float(row[c_ratio])
            verdict = "ok" if ratio >= min_read_ratio else "FAIL"
            print(f"  [gate] SF tau=0.9 elements-read ratio: {ratio:.2f} "
                  f"(need >= {min_read_ratio:.1f}) {verdict}")
            if ratio < min_read_ratio:
                failures.append(f"SF tau=0.9 read ratio {ratio:.2f} < "
                                f"{min_read_ratio:.1f}")
    if not sf_gated:
        failures.append("no SF tau=0.9 row in the ablation table")

    admission = find_table(doc, "Prefilter admission")
    if admission is not None:
        acols = admission.get("columns", [])
        for row in admission.get("rows", []):
            entry = dict(zip(acols, row))
            print(f"  [info] tau={entry.get('tau')}: "
                  f"engaged={entry.get('engaged')} "
                  f"admitted={entry.get('admitted')} "
                  f"fp={entry.get('fp')} ({entry.get('fp_pct')}% overhead)")
            if entry.get("tau") == "0.9" and entry.get("engaged") == "0":
                failures.append("tier never engaged at tau=0.9")

    if failures:
        print("\nFAIL: prefilter gate:")
        for f in failures:
            print(f"  - {f}")
        return 1
    print("\nOK: prefilter tier is exact and meets the elements-read gate")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline", nargs="?")
    ap.add_argument("candidate", nargs="?")
    ap.add_argument("--threshold", type=float, default=0.10,
                    help="relative slowdown that fails the run (default 0.10)")
    ap.add_argument("--min-usec", type=float, default=1.0,
                    help="ignore rows with a baseline below this value")
    ap.add_argument("--prefilter-gate", metavar="ARTIFACT",
                    help="gate a BENCH_prefilter.json artifact instead of "
                         "diffing two artifacts")
    ap.add_argument("--min-read-ratio", type=float, default=2.0,
                    help="SF tau=0.9 elements-read reduction the prefilter "
                         "gate requires (default 2.0)")
    args = ap.parse_args()

    if args.prefilter_gate:
        return prefilter_gate(args.prefilter_gate, args.min_read_ratio)
    if not args.baseline or not args.candidate:
        ap.error("baseline and candidate artifacts are required "
                 "(or use --prefilter-gate)")

    base_doc, cand_doc = load(args.baseline), load(args.candidate)
    for name, doc in (("baseline", base_doc), ("candidate", cand_doc)):
        meta = doc.get("meta", {})
        sha = meta.get("git_sha", "unstamped")
        compiler = meta.get("compiler", "?")
        print(f"{name}: {doc.get('bench', '?')} @ {sha} ({compiler})")

    regressions = []
    regressions += compare("latency", latency_histograms(base_doc),
                           latency_histograms(cand_doc),
                           args.threshold, args.min_usec)
    regressions += compare("p99", latency_histograms(base_doc, "p99"),
                           latency_histograms(cand_doc, "p99"),
                           args.threshold, args.min_usec)
    regressions += compare("table", table_times(base_doc),
                           table_times(cand_doc),
                           args.threshold, args.min_usec)

    if regressions:
        print(f"\nFAIL: {len(regressions)} wall-clock regression(s) beyond "
              f"{args.threshold:.0%}")
        return 1
    print("\nOK: no wall-clock regression beyond "
          f"{args.threshold:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
