#!/usr/bin/env python3
"""Diff two BENCH_*.json artifacts and fail on wall-clock regressions.

Usage:
    scripts/bench_compare.py BASELINE.json CANDIDATE.json [--threshold 0.10]

Compares, between the two artifacts:

  * every `simsel_query_latency_usec{...}` histogram in the metrics
    snapshot — both the mean and the p99 latency per algorithm (the mean
    catches broad slowdowns, the p99 catches tail regressions the mean
    hides), and
  * every numeric cell of tables whose column name looks like a wall-clock
    measure (contains "ms", "us", "sec", "time", "wall" or "latency"),
    matched by table title + first-column row key.

A comparison REGRESSES when the candidate is more than `--threshold`
(default 10%) slower than the baseline. Exit status: 0 when nothing
regressed, 1 on any regression, 2 on usage/format errors. Entries present
in only one artifact are reported but never fail the run (benches evolve).

Tiny absolute values are noise: rows where the baseline is below
`--min-usec` (default 1.0) are skipped.
"""

import argparse
import json
import re
import sys

TIME_COLUMN = re.compile(r"(^|[^a-z])(ms|us|usec|msec|sec|s)([^a-z]|$)|time|wall|latency")


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_compare: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def latency_histograms(doc, stat="mean"):
    """name -> `stat` usec, for the per-algorithm query latency histograms.

    `stat` is a key of the exported histogram snapshot: "mean" for the
    average, "p99" for the tail (log-bucketed, <=12.5% relative bucket
    error — well inside the regression threshold).
    """
    out = {}
    hists = doc.get("metrics", {}).get("histograms", {})
    for name, h in hists.items():
        if "latency" not in name:
            continue
        if h.get("count", 0) > 0 and stat in h:
            out[name] = float(h[stat])
    return out


def table_times(doc):
    """(title, row_key, column) -> value, for wall-clock-looking columns."""
    out = {}
    for table in doc.get("tables", []):
        title = table.get("title", "")
        columns = table.get("columns", [])
        time_cols = [
            c for c, col in enumerate(columns)
            if c > 0 and TIME_COLUMN.search(col.lower())
        ]
        if not time_cols:
            continue
        for row in table.get("rows", []):
            if not row:
                continue
            for c in time_cols:
                if c >= len(row):
                    continue
                try:
                    value = float(row[c])
                except ValueError:
                    continue
                out[(title, row[0], columns[c])] = value
    return out


def compare(kind, base, cand, threshold, min_value):
    regressions = []
    for key in sorted(set(base) | set(cand), key=str):
        b, c = base.get(key), cand.get(key)
        if b is None or c is None:
            side = "baseline" if c is None else "candidate"
            print(f"  [{kind}] {key}: only in {side}, skipped")
            continue
        if b < min_value:
            continue
        delta = (c - b) / b
        marker = " <-- REGRESSION" if delta > threshold else ""
        print(f"  [{kind}] {key}: {b:.3f} -> {c:.3f} ({delta:+.1%}){marker}")
        if delta > threshold:
            regressions.append((kind, key, b, c, delta))
    return regressions


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("candidate")
    ap.add_argument("--threshold", type=float, default=0.10,
                    help="relative slowdown that fails the run (default 0.10)")
    ap.add_argument("--min-usec", type=float, default=1.0,
                    help="ignore rows with a baseline below this value")
    args = ap.parse_args()

    base_doc, cand_doc = load(args.baseline), load(args.candidate)
    for name, doc in (("baseline", base_doc), ("candidate", cand_doc)):
        meta = doc.get("meta", {})
        sha = meta.get("git_sha", "unstamped")
        compiler = meta.get("compiler", "?")
        print(f"{name}: {doc.get('bench', '?')} @ {sha} ({compiler})")

    regressions = []
    regressions += compare("latency", latency_histograms(base_doc),
                           latency_histograms(cand_doc),
                           args.threshold, args.min_usec)
    regressions += compare("p99", latency_histograms(base_doc, "p99"),
                           latency_histograms(cand_doc, "p99"),
                           args.threshold, args.min_usec)
    regressions += compare("table", table_times(base_doc),
                           table_times(cand_doc),
                           args.threshold, args.min_usec)

    if regressions:
        print(f"\nFAIL: {len(regressions)} wall-clock regression(s) beyond "
              f"{args.threshold:.0%}")
        return 1
    print("\nOK: no wall-clock regression beyond "
          f"{args.threshold:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
