// Micro-benchmarks of the substrate containers (google-benchmark): skip
// index seeks, extendible hash probes, B+-tree seeks and scans, loser-tree
// merging, tokenization, and single-query latencies of the main algorithms.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <memory>

#include "bench_util.h"
#include "btree/bplus_tree.h"
#include "common/rng.h"
#include "container/extendible_hash.h"
#include "core/dynamic.h"
#include "container/loser_tree.h"
#include "container/skip_index.h"
#include "eval/experiment.h"
#include "index/compressed_lists.h"
#include "simd/kernels.h"
#include "storage/posting_store.h"
#include "text/tokenizer.h"

namespace simsel {
namespace {

std::vector<float> SortedLengths(size_t n) {
  Rng rng(1);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.NextDouble() * 100.0);
  std::sort(v.begin(), v.end());
  return v;
}

void BM_SkipIndexSeek(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<float> lens = SortedLengths(n);
  SkipIndex skip(lens.data(), n, 64);
  Rng rng(2);
  for (auto _ : state) {
    float target = static_cast<float>(rng.NextDouble() * 100.0);
    benchmark::DoNotOptimize(skip.SeekFirstGE(target));
  }
}
BENCHMARK(BM_SkipIndexSeek)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_BinarySearchBaseline(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<float> lens = SortedLengths(n);
  Rng rng(2);
  for (auto _ : state) {
    float target = static_cast<float>(rng.NextDouble() * 100.0);
    benchmark::DoNotOptimize(
        std::lower_bound(lens.begin(), lens.end(), target));
  }
}
BENCHMARK(BM_BinarySearchBaseline)->Arg(1 << 16);

void BM_ExtendibleHashLookup(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  ExtendibleHash hash(1024);
  for (size_t i = 0; i < n; ++i) {
    hash.Insert(i * 7919, static_cast<float>(i));
  }
  Rng rng(3);
  float v;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hash.Lookup(rng.NextBounded(n) * 7919, &v));
  }
}
BENCHMARK(BM_ExtendibleHashLookup)->Arg(1 << 10)->Arg(1 << 16);

void BM_ExtendibleHashInsert(benchmark::State& state) {
  Rng rng(4);
  for (auto _ : state) {
    state.PauseTiming();
    ExtendibleHash hash(1024);
    state.ResumeTiming();
    for (int i = 0; i < 10000; ++i) hash.Insert(rng.NextU64(), 1.0f);
  }
}
BENCHMARK(BM_ExtendibleHashInsert);

void BM_BPlusTreeSeek(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  BPlusTree<uint64_t, float> tree;
  std::vector<std::pair<uint64_t, float>> items;
  for (size_t i = 0; i < n; ++i) items.push_back({i * 3, 0.0f});
  tree.Build(items);
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.SeekGE(rng.NextBounded(n * 3)).Valid());
  }
}
BENCHMARK(BM_BPlusTreeSeek)->Arg(1 << 14)->Arg(1 << 20);

void BM_BPlusTreeScan1K(benchmark::State& state) {
  BPlusTree<uint64_t, float> tree;
  std::vector<std::pair<uint64_t, float>> items;
  for (size_t i = 0; i < (1 << 18); ++i) items.push_back({i, 0.0f});
  tree.Build(items);
  Rng rng(6);
  for (auto _ : state) {
    auto s = tree.SeekGE(rng.NextBounded(1 << 17));
    uint64_t sum = 0;
    for (int i = 0; i < 1000 && s.Valid(); ++i, s.Next()) sum += s.key();
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_BPlusTreeScan1K);

void BM_LoserTreeMerge(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  Rng rng(7);
  std::vector<std::vector<uint32_t>> lists(k);
  for (auto& list : lists) {
    for (int i = 0; i < 2000; ++i) {
      list.push_back(static_cast<uint32_t>(rng.NextBounded(1u << 30)));
    }
    std::sort(list.begin(), list.end());
  }
  for (auto _ : state) {
    LoserTree<uint32_t> tree(k);
    std::vector<size_t> pos(k, 0);
    for (size_t i = 0; i < k; ++i) tree.SetInitial(i, lists[i][0], true);
    tree.Build();
    uint64_t sum = 0;
    while (!tree.empty()) {
      size_t i = tree.top_source();
      sum += tree.top_key();
      ++pos[i];
      bool valid = pos[i] < lists[i].size();
      tree.Replace(valid ? lists[i][pos[i]] : 0, valid);
    }
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_LoserTreeMerge)->Arg(4)->Arg(16)->Arg(64);

void BM_CompressedDecode(benchmark::State& state) {
  BenchEnvOptions opts;
  opts.num_words = 20000;
  static BenchEnv* env = new BenchEnv(MakeBenchEnv(opts));
  static CompressedIdLists* lists =
      new CompressedIdLists(CompressedIdLists::Build(env->selector->index()));
  // Longest list.
  static TokenId token = [] {
    TokenId best = 0;
    const InvertedIndex& idx = env->selector->index();
    for (TokenId t = 0; t < idx.num_tokens(); ++t) {
      if (idx.ListSize(t) > idx.ListSize(best)) best = t;
    }
    return best;
  }();
  for (auto _ : state) {
    uint64_t sum = 0;
    for (auto c = lists->OpenList(token); c.Valid(); c.Next()) sum += c.id();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() *
                          env->selector->index().ListSize(token));
}
BENCHMARK(BM_CompressedDecode);

void BM_PostingStoreRead(benchmark::State& state) {
  BenchEnvOptions opts;
  opts.num_words = 20000;
  static BenchEnv* env = new BenchEnv(MakeBenchEnv(opts));
  static PostingStore* store =
      new PostingStore(PostingStore::Build(env->selector->index()));
  static TokenId token = [] {
    TokenId best = 0;
    const InvertedIndex& idx = env->selector->index();
    for (TokenId t = 0; t < idx.num_tokens(); ++t) {
      if (idx.ListSize(t) > idx.ListSize(best)) best = t;
    }
    return best;
  }();
  std::vector<uint32_t> ids(512);
  std::vector<float> lens(512);
  for (auto _ : state) {
    size_t n = store->ListSize(token);
    uint64_t sum = 0;
    for (size_t first = 0; first < n; first += 512) {
      size_t got = store->ReadBlock(token, first, 512, ids.data(),
                                    lens.data());
      for (size_t i = 0; i < got; ++i) sum += ids[i];
    }
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_PostingStoreRead);

void BM_QGramTokenize(benchmark::State& state) {
  Tokenizer tok;
  std::string text = "similarity selection queries on string collections";
  for (auto _ : state) {
    benchmark::DoNotOptimize(tok.TokenizeCounted(text));
  }
}
BENCHMARK(BM_QGramTokenize);

// End-to-end single-query latency per algorithm on a small environment.
// SIMSEL_BENCH_WORDS overrides the corpus size (the perf-smoke ctest run
// uses a tiny one so the kernels are exercised in the tier-1 loop).
struct QueryEnv {
  QueryEnv() {
    BenchEnvOptions opts;
    opts.num_words = 20000;
    if (const char* words = std::getenv("SIMSEL_BENCH_WORDS")) {
      int parsed = std::atoi(words);
      if (parsed > 0) opts.num_words = static_cast<size_t>(parsed);
    }
    opts.with_sql_baseline = true;
    env = MakeBenchEnv(opts);
    query = env.selector->Prepare(env.words[123]);
  }
  BenchEnv env;
  PreparedQuery query;
};

QueryEnv& GetQueryEnv() {
  static QueryEnv* env = new QueryEnv();
  return *env;
}

void BM_Query(benchmark::State& state, AlgorithmKind kind) {
  QueryEnv& qe = GetQueryEnv();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        qe.env.selector->SelectPrepared(qe.query, 0.8, kind, {}));
  }
}
BENCHMARK_CAPTURE(BM_Query, SF, AlgorithmKind::kSf);
BENCHMARK_CAPTURE(BM_Query, Hybrid, AlgorithmKind::kHybrid);
BENCHMARK_CAPTURE(BM_Query, iNRA, AlgorithmKind::kInra);
BENCHMARK_CAPTURE(BM_Query, iTA, AlgorithmKind::kIta);
BENCHMARK_CAPTURE(BM_Query, SQL, AlgorithmKind::kSql);
BENCHMARK_CAPTURE(BM_Query, SortById, AlgorithmKind::kSortById);

// Insert-while-query mixed scenario on the dynamic main+delta selector:
// each iteration appends one record and runs one query against the same
// DynamicSelector, exercising the append publish, the epoch pin and the
// per-token delta index on every query. The selector is recreated (outside
// the timed region) every 4096 iterations so the delta stays bounded and
// the per-iteration cost is stationary for bench_compare.py's gate.
void BM_QueryWithInserts(benchmark::State& state) {
  QueryEnv& qe = GetQueryEnv();
  const std::vector<std::string>& words = qe.env.words;
  std::unique_ptr<DynamicSelector> dyn;
  size_t i = 0;
  for (auto _ : state) {
    if (i % 4096 == 0) {
      state.PauseTiming();
      dyn = std::make_unique<DynamicSelector>(words);
      state.ResumeTiming();
    }
    dyn->AddRecord(words[(i * 13) % words.size()]);
    benchmark::DoNotOptimize(dyn->Select(words[123], 0.8));
    ++i;
  }
}
BENCHMARK(BM_QueryWithInserts);

}  // namespace
}  // namespace simsel

// Custom main (instead of BENCHMARK_MAIN) so the run also leaves a
// BENCH_micro.json artifact with the metrics-registry snapshot — the
// BM_Query benchmarks drive the instrumented selectors, so the registry
// holds per-algorithm latency histograms and access counters afterwards.
// The meta block additionally records which SIMD kernel variant the run
// dispatched and the serialized index sizes of both format versions, so
// artifacts stay comparable across machines and across the v2 -> v3
// compression change.
int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  {
    using simsel::bench::BenchReport;
    using simsel::bench::Fmt;
    BenchReport& report = BenchReport::Global();
    report.SetMeta("simd_kernel", simsel::simd::Kernels().name);
    const simsel::InvertedIndex& index =
        simsel::GetQueryEnv().env.selector->index();
    simsel::IndexFileStats v2 =
        index.EncodedStats(simsel::InvertedIndex::kVersionLegacy);
    simsel::IndexFileStats v3 =
        index.EncodedStats(simsel::InvertedIndex::kVersionLatest);
    report.SetMeta("index_file_bytes_v2", std::to_string(v2.file_bytes));
    report.SetMeta("index_file_bytes_v3", std::to_string(v3.file_bytes));
    report.SetMeta("len_payload_bytes_v2",
                   std::to_string(v2.len_payload_bytes));
    report.SetMeta("len_payload_bytes_v3",
                   std::to_string(v3.len_payload_bytes));
    report.SetMeta("len_payload_v3_over_v2",
                   Fmt(static_cast<double>(v3.len_payload_bytes) /
                       static_cast<double>(v2.len_payload_bytes)));
  }
  simsel::bench::WriteBenchReport("micro");
  return 0;
}
