#ifndef SIMSEL_BENCH_BENCH_UTIL_H_
#define SIMSEL_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "eval/experiment.h"
#include "obs/export.h"
#include "obs/metrics_registry.h"

namespace simsel::bench {

/// Accumulates every table a bench binary prints so the run can be exported
/// as one machine-readable artifact. PrintTable records into the global
/// report automatically; call WriteBenchReport("<name>") at the end of main
/// to write BENCH_<name>.json (tables + a full metrics-registry snapshot).
class BenchReport {
 public:
  struct Table {
    std::string title;
    std::vector<std::string> columns;
    std::vector<std::vector<std::string>> rows;
  };

  static BenchReport& Global() {
    static BenchReport* report = new BenchReport();
    return *report;
  }

  void Add(Table table) { tables_.push_back(std::move(table)); }
  const std::vector<Table>& tables() const { return tables_; }

  /// Adds (or overwrites) one run-specific meta key emitted in the JSON
  /// artifact's "meta" block alongside the build-stamped ones — e.g. the
  /// dispatched SIMD kernel variant or the on-disk index payload bytes.
  void SetMeta(const std::string& key, std::string value) {
    for (auto& kv : meta_) {
      if (kv.first == key) {
        kv.second = std::move(value);
        return;
      }
    }
    meta_.emplace_back(key, std::move(value));
  }
  const std::vector<std::pair<std::string, std::string>>& meta() const {
    return meta_;
  }

 private:
  std::vector<Table> tables_;
  std::vector<std::pair<std::string, std::string>> meta_;
};

/// Prints a row-major table: header then one row per entry, with the first
/// column left-aligned and numeric columns right-aligned. Also emits a
/// machine-readable TSV block (prefixed with '#tsv') for plotting, and
/// records the table into BenchReport::Global() for the JSON artifact.
inline void PrintTable(const std::string& title,
                       const std::vector<std::string>& columns,
                       const std::vector<std::vector<std::string>>& rows) {
  BenchReport::Global().Add({title, columns, rows});
  std::printf("\n== %s ==\n", title.c_str());
  std::vector<size_t> widths(columns.size());
  for (size_t c = 0; c < columns.size(); ++c) widths[c] = columns[c].size();
  for (const auto& row : rows) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c == 0) {
        std::printf("%-*s", static_cast<int>(widths[c] + 2), row[c].c_str());
      } else {
        std::printf("%*s  ", static_cast<int>(widths[c]), row[c].c_str());
      }
    }
    std::printf("\n");
  };
  print_row(columns);
  for (const auto& row : rows) print_row(row);
  // TSV for plotting.
  std::printf("#tsv\t%s", title.c_str());
  for (const auto& col : columns) std::printf("\t%s", col.c_str());
  std::printf("\n");
  for (const auto& row : rows) {
    std::printf("#tsv\t%s", title.c_str());
    for (const auto& cell : row) std::printf("\t%s", cell.c_str());
    std::printf("\n");
  }
}

inline std::string Fmt(double v, const char* fmt = "%.3f") {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

inline std::string FmtMb(size_t bytes) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f", bytes / (1024.0 * 1024.0));
  return buf;
}

/// An algorithm configuration evaluated by the figure benches.
struct AlgoSpec {
  AlgorithmKind kind;
  SelectOptions options;
  std::string label;
};

/// The algorithm set of Figures 6 and 7 (Section VIII-B/C).
inline std::vector<AlgoSpec> PaperAlgorithms(bool include_sql) {
  std::vector<AlgoSpec> algos;
  algos.push_back({AlgorithmKind::kSortById, {}, "sort-by-id"});
  if (include_sql) algos.push_back({AlgorithmKind::kSql, {}, "SQL"});
  algos.push_back({AlgorithmKind::kTa, {}, "TA"});
  algos.push_back({AlgorithmKind::kNra, {}, "NRA"});
  algos.push_back({AlgorithmKind::kInra, {}, "iNRA"});
  algos.push_back({AlgorithmKind::kIta, {}, "iTA"});
  algos.push_back({AlgorithmKind::kSf, {}, "SF"});
  algos.push_back({AlgorithmKind::kHybrid, {}, "Hybrid"});
  return algos;
}

/// Runs every algorithm over one workload at one threshold.
inline std::vector<WorkloadStats> RunSweep(const SimilaritySelector& selector,
                                           const Workload& workload,
                                           double tau,
                                           const std::vector<AlgoSpec>& algos) {
  std::vector<WorkloadStats> stats;
  stats.reserve(algos.size());
  for (const AlgoSpec& algo : algos) {
    stats.push_back(RunWorkload(selector, workload, tau, algo.kind,
                                algo.options, algo.label));
  }
  return stats;
}

/// Writes BENCH_<name>.json in the working directory: every table recorded
/// by PrintTable plus a snapshot of the process-wide metrics registry, so a
/// bench run leaves a diffable perf artifact next to its stdout report.
/// A "meta" block (git SHA, compiler, CXX flags — stamped by the build via
/// SIMSEL_GIT_SHA et al.) makes the artifact attributable across commits.
/// Returns true on success.
inline bool WriteBenchReport(const std::string& name) {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("bench");
  w.String(name);
  w.Key("meta");
  w.BeginObject();
  w.Key("git_sha");
#ifdef SIMSEL_GIT_SHA
  w.String(SIMSEL_GIT_SHA);
#else
  w.String("unknown");
#endif
  w.Key("compiler");
#ifdef SIMSEL_COMPILER
  w.String(SIMSEL_COMPILER);
#else
  w.String("unknown");
#endif
  w.Key("cxx_flags");
#ifdef SIMSEL_CXX_FLAGS
  w.String(SIMSEL_CXX_FLAGS);
#else
  w.String("unknown");
#endif
  for (const auto& kv : BenchReport::Global().meta()) {
    w.Key(kv.first);
    w.String(kv.second);
  }
  w.EndObject();
  w.Key("tables");
  w.BeginArray();
  for (const BenchReport::Table& t : BenchReport::Global().tables()) {
    w.BeginObject();
    w.Key("title");
    w.String(t.title);
    w.Key("columns");
    w.BeginArray();
    for (const std::string& col : t.columns) w.String(col);
    w.EndArray();
    w.Key("rows");
    w.BeginArray();
    for (const auto& row : t.rows) {
      w.BeginArray();
      for (const std::string& cell : row) w.String(cell);
      w.EndArray();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();
  w.Key("metrics");
  w.Raw(obs::ToJson(obs::MetricsRegistry::Global().Snapshot()));
  w.EndObject();
  std::string path = "BENCH_" + name + ".json";
  bool ok = obs::WriteTextFile(path, w.str() + "\n");
  if (ok) std::printf("\nwrote %s\n", path.c_str());
  return ok;
}

/// The paper's query-size buckets (Section VIII-A), in 3-grams per word.
struct Bucket {
  const char* label;
  int min_tokens;
  int max_tokens;
};
inline const Bucket kBuckets[] = {
    {"1-5", 1, 5}, {"6-10", 6, 10}, {"11-15", 11, 15}, {"16-20", 16, 20}};

}  // namespace simsel::bench

#endif  // SIMSEL_BENCH_BENCH_UTIL_H_
