// Reproduces Figure 9: the effect of skip lists. Without them ("NSL"),
// algorithms using Length Boundedness must sequentially read and discard
// the list prefix below τ·len(q) instead of jumping over it.
//
// Usage: bench_fig9_skip_lists [--words=N] [--queries=N]

#include <cstdio>

#include "bench_util.h"
#include "gen/workload.h"

namespace simsel {
namespace {

using bench::AlgoSpec;
using bench::Fmt;
using bench::PrintTable;

int Main(int argc, char** argv) {
  BenchEnvOptions env_opts;
  env_opts.num_words = FlagValue(argc, argv, "words", 100000);
  env_opts.with_sql_baseline = false;
  const size_t num_queries = FlagValue(argc, argv, "queries", 100);
  std::printf("Building env over %zu word occurrences...\n",
              env_opts.num_words);
  BenchEnv env = MakeBenchEnv(env_opts);

  SelectOptions nsl;
  nsl.use_skip_index = false;
  const std::vector<AlgoSpec> algos = {
      {AlgorithmKind::kInra, {}, "iNRA"},
      {AlgorithmKind::kInra, nsl, "iNRA NSL"},
      {AlgorithmKind::kIta, {}, "iTA"},
      {AlgorithmKind::kIta, nsl, "iTA NSL"},
      {AlgorithmKind::kSf, {}, "SF"},
      {AlgorithmKind::kSf, nsl, "SF NSL"},
      {AlgorithmKind::kHybrid, {}, "Hybrid"},
      {AlgorithmKind::kHybrid, nsl, "Hybrid NSL"},
  };

  std::vector<std::string> columns = {"Sweep"};
  for (const AlgoSpec& a : algos) columns.push_back(a.label);

  std::vector<std::vector<std::string>> time_rows, read_rows;
  for (double tau : {0.6, 0.7, 0.8, 0.9}) {
    WorkloadOptions wo;
    wo.num_queries = num_queries;
    wo.min_tokens = 11;
    wo.max_tokens = 15;
    wo.seed = 1000;
    Workload wl =
        GenerateWordWorkload(env.words, env.selector->tokenizer(), wo);
    std::vector<WorkloadStats> stats =
        bench::RunSweep(*env.selector, wl, tau, algos);
    std::vector<std::string> trow = {"tau=" + Fmt(tau, "%.1f")};
    std::vector<std::string> rrow = trow;
    for (const WorkloadStats& s : stats) {
      trow.push_back(Fmt(s.avg_ms));
      rrow.push_back(Fmt(
          s.counters.elements_read / std::max<double>(1.0, s.num_queries),
          "%.0f"));
    }
    time_rows.push_back(std::move(trow));
    read_rows.push_back(std::move(rrow));
  }
  PrintTable("Figure 9: wall-clock ms/query, skip lists vs NSL", columns,
             time_rows);
  PrintTable("Figure 9 (detail): elements read per query", columns,
             read_rows);

  std::printf(
      "\nExpected shape (paper): skip lists give roughly a 2x improvement "
      "for every LB algorithm (growing with query size), at a tiny space "
      "cost compared with the extendible hashing TA needs.\n");
  bench::WriteBenchReport("fig9_skip_lists");
  return 0;
}

}  // namespace
}  // namespace simsel

int main(int argc, char** argv) { return simsel::Main(argc, argv); }
