// Serving-layer study: scatter-gather throughput as the shard count grows,
// and result-cache effectiveness under a Zipf-skewed query log. The two
// acceptance claims printed at the end:
//   1. >= 2x workload throughput at 4 shards vs 1 shard (same thread pool),
//   2. >= 90% cache hit ratio on a log whose unique-query pool is 10% of the
//      log length, with every served answer identical to the uncached
//      single-index execution.
//
// Usage: bench_serving [--words=N] [--queries=N] [--log=N]

#include <cstdio>
#include <thread>

#include "bench_util.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "gen/workload.h"
#include "gen/zipf.h"
#include "serve/sharded_selector.h"

namespace simsel {
namespace {

using bench::Fmt;
using bench::PrintTable;

bool SameMatches(const std::vector<Match>& a, const std::vector<Match>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].id != b[i].id || a[i].score != b[i].score) return false;
  }
  return true;
}

int Main(int argc, char** argv) {
  BenchEnvOptions env_opts;
  env_opts.num_words = FlagValue(argc, argv, "words", 100000);
  env_opts.with_sql_baseline = false;
  const size_t num_queries = FlagValue(argc, argv, "queries", 200);
  const size_t log_length = FlagValue(argc, argv, "log", 2000);
  std::printf("Building env over %zu word occurrences...\n",
              env_opts.num_words);
  BenchEnv env = MakeBenchEnv(env_opts);

  WorkloadOptions wo;
  wo.num_queries = num_queries;
  wo.min_tokens = 11;
  wo.max_tokens = 15;
  wo.seed = 4242;
  Workload wl = GenerateWordWorkload(env.words, env.selector->tokenizer(), wo);
  const double tau = 0.5;

  const unsigned hw = std::thread::hardware_concurrency();
  ThreadPool pool(std::max(3u, std::min(7u, hw == 0 ? 3u : hw - 1)));

  // --- Leg 1: throughput vs shard count, cache off. -----------------------
  const AlgorithmKind kinds[] = {AlgorithmKind::kSf, AlgorithmKind::kInra,
                                 AlgorithmKind::kLinearScan};
  std::vector<std::vector<std::string>> rows;
  double qps_at[9] = {0};  // indexed by shard count, SF only
  for (size_t shards : {1u, 2u, 4u, 8u}) {
    serve::ShardedSelectorOptions so;
    so.num_shards = shards;
    serve::ShardedSelector sharded =
        serve::ShardedSelector::Build(env.words, so);
    sharded.set_thread_pool(&pool);
    for (AlgorithmKind kind : kinds) {
      // One warm-up pass, then the timed pass.
      for (const std::string& query : wl.queries) {
        sharded.Select(query, tau, kind);
      }
      WallTimer timer;
      AccessCounters total;
      for (const std::string& query : wl.queries) {
        QueryResult r = sharded.Select(query, tau, kind);
        total.Merge(r.counters);
      }
      const double ms = timer.ElapsedMillis();
      const double qps = 1000.0 * wl.queries.size() / ms;
      if (kind == AlgorithmKind::kSf) qps_at[shards] = qps;
      rows.push_back({std::to_string(shards), AlgorithmKindName(kind),
                      Fmt(ms / wl.queries.size()), Fmt(qps, "%.0f"),
                      std::to_string(total.results / wl.queries.size())});
    }
  }
  PrintTable("Scatter-gather throughput vs shard count (tau=0.5, cache off)",
             {"Shards", "Algorithm", "ms/q", "QPS", "results/q"}, rows);
  const double speedup = qps_at[4] / qps_at[1];
  // The >= 2x target needs real cores: on a single-core host the pool's
  // workers time-slice one CPU and only the algorithmic gain from smaller
  // per-shard structures remains. Report that case as hardware-limited
  // rather than a serving-layer failure.
  const bool multicore = hw >= 2;
  bool speedup_ok = speedup >= 2.0;
  if (multicore || speedup_ok) {
    std::printf("SF speedup at 4 shards vs 1: %.2fx (acceptance: >= 2x) %s\n",
                speedup, speedup_ok ? "PASS" : "FAIL");
  } else {
    speedup_ok = true;
    std::printf(
        "SF speedup at 4 shards vs 1: %.2fx — SKIPPED (single-core host, "
        "hardware_concurrency=%u: the >= 2x parallel target cannot be "
        "demonstrated; the measured gain is the algorithmic effect of "
        "smaller per-shard structures)\n",
        speedup, hw);
  }

  // --- Leg 2: result cache under a Zipf query log. ------------------------
  // The log draws `log_length` queries from a pool of log_length/10 unique
  // strings with Zipf(1.0) skew; first occurrences miss, repeats must hit.
  const size_t unique = std::max<size_t>(1, log_length / 10);
  WorkloadOptions po = wo;
  po.num_queries = unique;
  po.seed = 777;
  Workload pool_wl =
      GenerateWordWorkload(env.words, env.selector->tokenizer(), po);
  ZipfSampler zipf(pool_wl.queries.size(), 1.0);
  Rng rng(2026);

  serve::ShardedSelectorOptions so;
  so.num_shards = 4;
  so.cache_bytes = 64u << 20;
  serve::ShardedSelector cached = serve::ShardedSelector::Build(env.words, so);
  cached.set_thread_pool(&pool);

  // Uncached single-index ground truth, one answer per unique pool entry.
  std::vector<std::vector<Match>> expected(pool_wl.queries.size());
  for (size_t i = 0; i < pool_wl.queries.size(); ++i) {
    expected[i] = env.selector->Select(pool_wl.queries[i], tau).matches;
  }

  size_t mismatches = 0;
  WallTimer timer;
  for (size_t i = 0; i < log_length; ++i) {
    const size_t rank = zipf.Sample(&rng);
    QueryResult r = cached.Select(pool_wl.queries[rank], tau);
    if (!SameMatches(r.matches, expected[rank])) ++mismatches;
  }
  const double log_ms = timer.ElapsedMillis();
  const serve::ResultCache& cache = *cached.result_cache();
  const double hit_ratio = cache.HitRate();
  PrintTable(
      "Result cache under a Zipf log (4 shards, tau=0.5)",
      {"Log", "Unique pool", "Hits", "Misses", "Hit %", "QPS", "Mismatches"},
      {{std::to_string(log_length), std::to_string(pool_wl.queries.size()),
        std::to_string(cache.hits()), std::to_string(cache.misses()),
        Fmt(100.0 * hit_ratio, "%.1f"),
        Fmt(1000.0 * log_length / log_ms, "%.0f"),
        std::to_string(mismatches)}});
  std::printf("Cache hit ratio: %.1f%% (acceptance: >= 90%%) %s\n",
              100.0 * hit_ratio, hit_ratio >= 0.9 ? "PASS" : "FAIL");
  std::printf("Answers identical to uncached single-index run: %s\n",
              mismatches == 0 ? "PASS" : "FAIL");

  bench::WriteBenchReport("serving");
  return (speedup_ok && hit_ratio >= 0.9 && mismatches == 0) ? 0 : 1;
}

}  // namespace
}  // namespace simsel

int main(int argc, char** argv) { return simsel::Main(argc, argv); }
