// Reproduces Figure 5: total index size per algorithm family, broken into
// base table, q-gram table, composite B-tree (the SQL approach), inverted
// lists, skip lists and extendible hashing (the specialized indexes).
//
// Usage: bench_fig5_index_size [--words=N]

#include <cstdio>

#include "bench_util.h"
#include "index/compressed_lists.h"

namespace simsel {
namespace {

int Main(int argc, char** argv) {
  BenchEnvOptions opts;
  opts.num_words = FlagValue(argc, argv, "words", 100000);
  opts.with_sql_baseline = true;
  std::printf("Building indexes over %zu word occurrences...\n",
              opts.num_words);
  BenchEnv env = MakeBenchEnv(opts);
  IndexSizeReport sizes = env.selector->Sizes();
  CompressedIdLists compressed =
      CompressedIdLists::Build(env.selector->index());

  bench::PrintTable(
      "Figure 5: index components (MB)",
      {"Component", "MB"},
      {
          {"Base table", bench::FmtMb(sizes.base_table)},
          {"Q-gram table", bench::FmtMb(sizes.gram_table)},
          {"B-tree (clustered)", bench::FmtMb(sizes.btree)},
          {"Inverted lists (both orders)", bench::FmtMb(sizes.inverted_lists)},
          {"Skip lists", bench::FmtMb(sizes.skip_lists)},
          {"Extendible hashing", bench::FmtMb(sizes.extendible_hash)},
          {"Compressed id lists (extension)",
           bench::FmtMb(compressed.SizeBytes())},
      });

  // Per-algorithm stacks as in the figure's x-axis.
  size_t sql = sizes.base_table + sizes.gram_table + sizes.btree;
  size_t ta = sizes.base_table + sizes.inverted_lists + sizes.skip_lists +
              sizes.extendible_hash;  // TA/iTA need random access
  size_t nra = sizes.base_table + sizes.inverted_lists + sizes.skip_lists;
  size_t sf = sizes.base_table + sizes.inverted_lists / 2 + sizes.skip_lists;
  bench::PrintTable(
      "Figure 5: index size per approach (MB)",
      {"Approach", "MB", "vs base table"},
      {
          {"SQL (DB)", bench::FmtMb(sql),
           bench::Fmt(sql / static_cast<double>(sizes.base_table), "%.1fx")},
          {"TA / iTA", bench::FmtMb(ta),
           bench::Fmt(ta / static_cast<double>(sizes.base_table), "%.1fx")},
          {"sort-by-id + NRA / iNRA", bench::FmtMb(nra),
           bench::Fmt(nra / static_cast<double>(sizes.base_table), "%.1fx")},
          {"SF / Hybrid (one list order)", bench::FmtMb(sf),
           bench::Fmt(sf / static_cast<double>(sizes.base_table), "%.1fx")},
      });
  std::printf(
      "\nExpected shape (paper): every index dwarfs the base table (3-gram "
      "explosion); SQL is the largest (26x there), inverted-list family much "
      "smaller (9x); extendible hashing is a large surcharge only TA-style "
      "random access needs; skip lists are almost free.\n");
  bench::WriteBenchReport("fig5_index_size");
  return 0;
}

}  // namespace
}  // namespace simsel

int main(int argc, char** argv) { return simsel::Main(argc, argv); }
