// Reproduces Figure 5: total index size per algorithm family, broken into
// base table, q-gram table, composite B-tree (the SQL approach), inverted
// lists, skip lists and extendible hashing (the specialized indexes). Also
// compares the serialized index format versions: bytes per posting under
// the legacy v2 layout vs the compressed-block v3 layout, per
// token-frequency decile (rare tokens compress differently than frequent
// ones — short lists amortize block headers poorly but have tiny deltas).
//
// Usage: bench_fig5_index_size [--words=N]

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "index/compressed_lists.h"
#include "storage/block_codec.h"
#include "storage/codec.h"

namespace simsel {
namespace {

/// Serialized by-length payload bytes of one list under each format.
struct ListBytes {
  size_t v2 = 0;
  size_t v3 = 0;
};

ListBytes MeasureList(const InvertedIndex& index, TokenId t) {
  ListBytes out;
  const size_t n = index.ListSize(t);
  const uint32_t* ids = index.LenIds(t);
  const float* lens = index.LenLens(t);
  std::vector<uint8_t> buf;
  // v2: plain varint ids + fixed32 length bit patterns.
  for (size_t i = 0; i < n; ++i) PutVarint32(&buf, ids[i]);
  out.v2 = buf.size() + n * sizeof(float);
  // v3: compressed posting blocks at the index's summary granularity.
  buf.clear();
  const size_t bp = index.block_postings();
  for (size_t first = 0; first < n; first += bp) {
    EncodePostingBlock(ids + first, lens + first, std::min(bp, n - first),
                       &buf);
  }
  out.v3 = buf.size();
  return out;
}

/// Per-token-frequency-decile v2-vs-v3 comparison: nonempty lists sorted by
/// document frequency (list size), split into 10 equal-count deciles.
void PrintCompressionByDecile(const InvertedIndex& index) {
  std::vector<TokenId> tokens;
  for (TokenId t = 0; t < index.num_tokens(); ++t) {
    if (index.ListSize(t) > 0) tokens.push_back(t);
  }
  std::sort(tokens.begin(), tokens.end(), [&index](TokenId a, TokenId b) {
    return index.ListSize(a) < index.ListSize(b);
  });
  std::vector<std::vector<std::string>> rows;
  size_t total_v2 = 0, total_v3 = 0;
  uint64_t total_postings = 0;
  for (size_t d = 0; d < 10 && !tokens.empty(); ++d) {
    const size_t begin = d * tokens.size() / 10;
    const size_t end = (d + 1) * tokens.size() / 10;
    if (begin >= end) continue;
    size_t v2 = 0, v3 = 0;
    uint64_t postings = 0;
    for (size_t i = begin; i < end; ++i) {
      ListBytes b = MeasureList(index, tokens[i]);
      v2 += b.v2;
      v3 += b.v3;
      postings += index.ListSize(tokens[i]);
    }
    total_v2 += v2;
    total_v3 += v3;
    total_postings += postings;
    rows.push_back(
        {"d" + std::to_string(d + 1) + " (df<=" +
             std::to_string(index.ListSize(tokens[end - 1])) + ")",
         std::to_string(postings),
         bench::Fmt(v2 / static_cast<double>(postings), "%.2f"),
         bench::Fmt(v3 / static_cast<double>(postings), "%.2f"),
         bench::Fmt(v2 / static_cast<double>(v3), "%.2fx")});
  }
  rows.push_back({"all", std::to_string(total_postings),
                  bench::Fmt(total_v2 / static_cast<double>(total_postings),
                             "%.2f"),
                  bench::Fmt(total_v3 / static_cast<double>(total_postings),
                             "%.2f"),
                  bench::Fmt(total_v2 / static_cast<double>(total_v3),
                             "%.2fx")});
  bench::PrintTable(
      "Index format v2 vs v3: by-length payload per token-frequency decile",
      {"Decile", "Postings", "v2 B/posting", "v3 B/posting", "ratio"}, rows);
}

int Main(int argc, char** argv) {
  BenchEnvOptions opts;
  opts.num_words = FlagValue(argc, argv, "words", 100000);
  opts.with_sql_baseline = true;
  std::printf("Building indexes over %zu word occurrences...\n",
              opts.num_words);
  BenchEnv env = MakeBenchEnv(opts);
  IndexSizeReport sizes = env.selector->Sizes();
  CompressedIdLists compressed =
      CompressedIdLists::Build(env.selector->index());

  bench::PrintTable(
      "Figure 5: index components (MB)",
      {"Component", "MB"},
      {
          {"Base table", bench::FmtMb(sizes.base_table)},
          {"Q-gram table", bench::FmtMb(sizes.gram_table)},
          {"B-tree (clustered)", bench::FmtMb(sizes.btree)},
          {"Inverted lists (both orders)", bench::FmtMb(sizes.inverted_lists)},
          {"Skip lists", bench::FmtMb(sizes.skip_lists)},
          {"Extendible hashing", bench::FmtMb(sizes.extendible_hash)},
          {"Compressed id lists (extension)",
           bench::FmtMb(compressed.SizeBytes())},
      });

  // Per-algorithm stacks as in the figure's x-axis.
  size_t sql = sizes.base_table + sizes.gram_table + sizes.btree;
  size_t ta = sizes.base_table + sizes.inverted_lists + sizes.skip_lists +
              sizes.extendible_hash;  // TA/iTA need random access
  size_t nra = sizes.base_table + sizes.inverted_lists + sizes.skip_lists;
  size_t sf = sizes.base_table + sizes.inverted_lists / 2 + sizes.skip_lists;
  bench::PrintTable(
      "Figure 5: index size per approach (MB)",
      {"Approach", "MB", "vs base table"},
      {
          {"SQL (DB)", bench::FmtMb(sql),
           bench::Fmt(sql / static_cast<double>(sizes.base_table), "%.1fx")},
          {"TA / iTA", bench::FmtMb(ta),
           bench::Fmt(ta / static_cast<double>(sizes.base_table), "%.1fx")},
          {"sort-by-id + NRA / iNRA", bench::FmtMb(nra),
           bench::Fmt(nra / static_cast<double>(sizes.base_table), "%.1fx")},
          {"SF / Hybrid (one list order)", bench::FmtMb(sf),
           bench::Fmt(sf / static_cast<double>(sizes.base_table), "%.1fx")},
      });
  PrintCompressionByDecile(env.selector->index());
  IndexFileStats v2 =
      env.selector->index().EncodedStats(InvertedIndex::kVersionLegacy);
  IndexFileStats v3 =
      env.selector->index().EncodedStats(InvertedIndex::kVersionLatest);
  bench::BenchReport::Global().SetMeta("index_file_bytes_v2",
                                       std::to_string(v2.file_bytes));
  bench::BenchReport::Global().SetMeta("index_file_bytes_v3",
                                       std::to_string(v3.file_bytes));

  std::printf(
      "\nExpected shape (paper): every index dwarfs the base table (3-gram "
      "explosion); SQL is the largest (26x there), inverted-list family much "
      "smaller (9x); extendible hashing is a large surcharge only TA-style "
      "random access needs; skip lists are almost free.\n");
  bench::WriteBenchReport("fig5_index_size");
  return 0;
}

}  // namespace
}  // namespace simsel

int main(int argc, char** argv) { return simsel::Main(argc, argv); }
