// Reproduces Figure 7: pruning power — the percentage of inverted-list
// elements each algorithm avoids reading — over the same three sweeps as
// Figure 6. Inverted-list algorithms only (SQL does not read lists).
//
// Usage: bench_fig7_pruning [--words=N] [--queries=N]

#include <cstdio>

#include "bench_util.h"
#include "gen/workload.h"

namespace simsel {
namespace {

using bench::AlgoSpec;
using bench::Fmt;
using bench::PrintTable;

int Main(int argc, char** argv) {
  BenchEnvOptions env_opts;
  env_opts.num_words = FlagValue(argc, argv, "words", 100000);
  env_opts.with_sql_baseline = false;
  const size_t num_queries = FlagValue(argc, argv, "queries", 100);
  std::printf("Building env over %zu word occurrences...\n",
              env_opts.num_words);
  BenchEnv env = MakeBenchEnv(env_opts);
  const std::vector<AlgoSpec> algos = bench::PaperAlgorithms(false);

  auto columns = [&]() {
    std::vector<std::string> cols = {"Sweep"};
    for (const AlgoSpec& a : algos) cols.push_back(a.label);
    return cols;
  }();

  auto run_row = [&](const std::string& label, const Workload& wl,
                     double tau) {
    std::vector<WorkloadStats> stats =
        bench::RunSweep(*env.selector, wl, tau, algos);
    std::vector<std::string> row = {label};
    for (const WorkloadStats& s : stats) {
      row.push_back(Fmt(100.0 * s.pruning_power, "%.1f"));
    }
    return row;
  };

  {
    std::vector<std::vector<std::string>> rows;
    for (double tau : {0.6, 0.7, 0.8, 0.9}) {
      WorkloadOptions wo;
      wo.num_queries = num_queries;
      wo.min_tokens = 11;
      wo.max_tokens = 15;
      wo.seed = 1000;
      Workload wl = GenerateWordWorkload(env.words,
                                         env.selector->tokenizer(), wo);
      rows.push_back(run_row("tau=" + Fmt(tau, "%.1f"), wl, tau));
    }
    PrintTable("Figure 7(a): % elements pruned vs threshold", columns, rows);
  }
  {
    std::vector<std::vector<std::string>> rows;
    for (const bench::Bucket& bucket : bench::kBuckets) {
      WorkloadOptions wo;
      wo.num_queries = num_queries;
      wo.min_tokens = bucket.min_tokens;
      wo.max_tokens = bucket.max_tokens;
      wo.seed = 2000;
      Workload wl = GenerateWordWorkload(env.words,
                                         env.selector->tokenizer(), wo);
      if (wl.queries.empty()) continue;
      rows.push_back(run_row(bucket.label, wl, 0.8));
    }
    PrintTable("Figure 7(b): % elements pruned vs query size", columns, rows);
  }
  {
    std::vector<std::vector<std::string>> rows;
    for (int mods : {0, 1, 2, 3}) {
      WorkloadOptions wo;
      wo.num_queries = num_queries;
      wo.min_tokens = 11;
      wo.max_tokens = 15;
      wo.modifications = mods;
      wo.seed = 3000;
      Workload wl = GenerateWordWorkload(env.words,
                                         env.selector->tokenizer(), wo);
      rows.push_back(run_row("mods=" + std::to_string(mods), wl, 0.6));
    }
    PrintTable("Figure 7(c): % elements pruned vs modifications", columns,
               rows);
  }

  std::printf(
      "\nExpected shape (paper): sort-by-id prunes nothing; iTA prunes the "
      "most (random accesses complete scores directly); SF/Hybrid/iNRA reach "
      "~95%% at tau=0.9; pruning of the LB-based algorithms grows with query "
      "size while TA/NRA stay flat.\n");
  bench::WriteBenchReport("fig7_pruning");
  return 0;
}

}  // namespace
}  // namespace simsel

int main(int argc, char** argv) { return simsel::Main(argc, argv); }
