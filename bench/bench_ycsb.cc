// YCSB-style load study of the network serving front end: a live TCP server
// (serve::Server over DynamicServing) driven by the src/gen/load.h harness
// in both pacing disciplines:
//   1. closed loop — per-connection lockstep, measuring service capacity,
//   2. open loop — a fixed arrival schedule swept from half to twice the
//      measured capacity, with Zipf query popularity and a read/insert mix,
//      which is where admission-control shedding becomes visible.
// Acceptance (exit code): zero transport/protocol errors in every leg, all
// requests accounted for (ok + partial + shed == sent), and the server
// drains to an empty system (queue depth 0) on shutdown.
//
// Usage: bench_ycsb [--words=N] [--queries=N] [--conns=N] [--requests=N]
//                   [--seconds=S]

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "gen/load.h"
#include "gen/workload.h"
#include "serve/dynamic_serving.h"
#include "serve/server.h"

namespace simsel {
namespace {

using bench::Fmt;
using bench::PrintTable;

std::string Quantiles(const obs::HistogramSnapshot& h) {
  return Fmt(h.Quantile(0.5) / 1000.0) + "/" + Fmt(h.Quantile(0.99) / 1000.0) +
         "/" + Fmt(h.Quantile(0.999) / 1000.0);
}

std::vector<std::string> StatsRow(const std::string& label,
                                  const load::LoadStats& s) {
  return {label,
          std::to_string(s.sent),
          Fmt(s.throughput_rps(), "%.0f"),
          Fmt(s.latency_usec.Quantile(0.5) / 1000.0),
          Fmt(s.latency_usec.Quantile(0.99) / 1000.0),
          Fmt(s.latency_usec.Quantile(0.999) / 1000.0),
          std::to_string(s.ok),
          std::to_string(s.partial),
          std::to_string(s.shed),
          std::to_string(s.errors)};
}

/// ok+partial+shed must cover every request that got a response; errors are
/// transport or protocol failures and fail the bench.
bool Accounted(const load::LoadStats& s) {
  return s.errors == 0 && s.ok + s.partial + s.shed == s.sent;
}

int Main(int argc, char** argv) {
  BenchEnvOptions env_opts;
  env_opts.num_words = FlagValue(argc, argv, "words", 20000);
  env_opts.with_sql_baseline = false;
  const size_t pool_size = FlagValue(argc, argv, "queries", 120);
  const size_t conns = FlagValue(argc, argv, "conns", 4);
  const size_t requests = FlagValue(argc, argv, "requests", 60);
  const double seconds = FlagValue(argc, argv, "seconds", 2);
  std::printf("Building env over %zu word occurrences...\n",
              env_opts.num_words);
  BenchEnv env = MakeBenchEnv(env_opts);

  WorkloadOptions wo;
  wo.num_queries = pool_size;
  wo.min_tokens = 6;
  wo.max_tokens = 15;
  wo.seed = 20260808;
  Workload queries =
      GenerateWordWorkload(env.words, env.selector->tokenizer(), wo);
  WorkloadOptions io = wo;
  io.seed = 9090;
  io.modifications = 2;  // inserts are near-duplicates, the realistic mix
  Workload inserts =
      GenerateWordWorkload(env.words, env.selector->tokenizer(), io);
  if (queries.queries.empty() || inserts.queries.empty()) {
    std::printf("FAIL: empty workload (corpus too small)\n");
    return 1;
  }

  ThreadPool rebuild_pool(1);
  serve::DynamicServingOptions dso;
  dso.cache_bytes = 4u << 20;
  dso.rebuild_threshold = 1024;
  dso.pool = &rebuild_pool;
  serve::DynamicServing serving(env.words, dso);

  serve::ServerOptions so;
  so.num_workers = 2;
  so.max_queue = 32;
  so.deadline_ms = 200;
  serve::Server server(&serving, so);
  Status st = server.Start();
  if (!st.ok()) {
    std::printf("FAIL: server start: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("serving on 127.0.0.1:%u (workers=%zu max_queue=%zu "
              "deadline=%zums)\n",
              server.port(), so.num_workers, so.max_queue, so.deadline_ms);

  load::LoadOptions lo;
  lo.port = server.port();
  lo.num_connections = conns;
  lo.queries = &queries.queries;
  lo.inserts = &inserts.queries;
  lo.insert_fraction = 0.05;
  lo.zipf_skew = 0.99;
  lo.tau = 0.5;
  lo.seed = 7;

  bool pass = true;
  std::vector<std::vector<std::string>> rows;

  // --- Leg 1: closed loop (capacity). --------------------------------------
  lo.requests_per_connection = requests;
  load::LoadStats closed = load::RunClosedLoop(lo);
  rows.push_back(StatsRow("closed x" + std::to_string(conns), closed));
  pass = pass && Accounted(closed);
  const double capacity = closed.throughput_rps();

  // --- Leg 2: open-loop rate sweep around capacity. ------------------------
  for (double mult : {0.5, 1.0, 2.0}) {
    double rate = std::max(10.0, capacity * mult);
    lo.rate_per_sec = rate;
    lo.total_requests = static_cast<size_t>(rate * seconds);
    load::LoadStats open = load::RunOpenLoop(lo);
    rows.push_back(StatsRow("open " + Fmt(mult, "%.1f") + "x", open));
    pass = pass && Accounted(open);
  }
  PrintTable(
      "YCSB-style load vs live server (Zipf 0.99, 5% inserts)",
      {"Leg", "sent", "rps", "p50ms", "p99ms", "p999ms", "ok", "partial",
       "shed", "err"},
      rows);

  server.Shutdown();
  const bool drained = server.queue_depth() == 0;
  std::printf("closed-loop capacity: %.0f req/s; server after drain: "
              "queue_depth=%zu ok=%llu partial=%llu shed=%llu err=%llu "
              "inserts=%llu\n",
              capacity, server.queue_depth(),
              static_cast<unsigned long long>(server.ok_count()),
              static_cast<unsigned long long>(server.partial_count()),
              static_cast<unsigned long long>(server.shed_count()),
              static_cast<unsigned long long>(server.error_count()),
              static_cast<unsigned long long>(server.insert_count()));
  obs::HistogramSnapshot lat = server.latency_snapshot();
  std::printf("server-side admitted latency p50/p99/p999 (ms): %s over %llu "
              "requests\n",
              Quantiles(lat).c_str(),
              static_cast<unsigned long long>(lat.count));
  pass = pass && drained;
  std::printf("zero errors, full accounting, clean drain: %s\n",
              pass ? "PASS" : "FAIL");

  bench::BenchReport::Global().SetMeta("closed_loop_rps",
                                       Fmt(capacity, "%.1f"));
  bench::BenchReport::Global().SetMeta("server_p99_usec",
                                       std::to_string(lat.Quantile(0.99)));
  if (!bench::WriteBenchReport("ycsb")) return 1;
  return pass ? 0 : 1;
}

}  // namespace
}  // namespace simsel

int main(int argc, char** argv) { return simsel::Main(argc, argv); }
