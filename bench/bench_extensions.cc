// Extension benchmarks — everything beyond the paper's own figures:
//   (1) the prefix-filter baseline (Related Work [2]) vs the paper's
//       algorithms;
//   (2) TF/IDF selection with boosted bounds (Section IV remark) vs a
//       linear scan;
//   (3) top-k selection (the paper's future work) vs exhaustive top-k;
//   (4) the adaptive planner's decisions across thresholds;
//   (5) batch-parallel throughput (future work: parallel versions).
//
// Usage: bench_extensions [--words=N] [--queries=N]

#include <cstdio>

#include "bench_util.h"
#include "common/timer.h"
#include "core/adaptive.h"
#include "core/linear_scan.h"
#include "core/parallel.h"
#include "core/sort_by_id.h"
#include "core/tfidf_select.h"
#include "core/topk.h"
#include "gen/workload.h"
#include "index/compressed_lists.h"
#include "sim/tfidf.h"

namespace simsel {
namespace {

using bench::Fmt;
using bench::PrintTable;

int Main(int argc, char** argv) {
  BenchEnvOptions env_opts;
  env_opts.num_words = FlagValue(argc, argv, "words", 100000);
  env_opts.with_sql_baseline = false;
  const size_t num_queries = FlagValue(argc, argv, "queries", 100);
  std::printf("Building env over %zu word occurrences...\n",
              env_opts.num_words);
  BenchEnv env = MakeBenchEnv(env_opts);
  const SimilaritySelector& sel = *env.selector;

  WorkloadOptions wo;
  wo.num_queries = num_queries;
  wo.min_tokens = 11;
  wo.max_tokens = 15;
  wo.seed = 1000;
  Workload wl = GenerateWordWorkload(env.words, sel.tokenizer(), wo);

  // (1) Prefix filter vs the paper's algorithms.
  {
    std::vector<bench::AlgoSpec> algos = {
        {AlgorithmKind::kSf, {}, "SF"},
        {AlgorithmKind::kInra, {}, "iNRA"},
        {AlgorithmKind::kPrefixFilter, {}, "PrefixFilter"},
    };
    std::vector<std::vector<std::string>> rows;
    for (double tau : {0.6, 0.8, 0.9}) {
      std::vector<WorkloadStats> stats =
          bench::RunSweep(sel, wl, tau, algos);
      std::vector<std::string> row = {"tau=" + Fmt(tau, "%.1f")};
      for (const WorkloadStats& s : stats) {
        row.push_back(Fmt(s.avg_ms));
        row.push_back(Fmt(100.0 * s.pruning_power, "%.1f"));
      }
      rows.push_back(std::move(row));
    }
    PrintTable("Extension 1: prefix-filter baseline (ms | pruned %)",
               {"Sweep", "SF ms", "SF %", "iNRA ms", "iNRA %", "PF ms",
                "PF %"},
               rows);
  }

  // (2) TF/IDF selection via boosted bounds.
  {
    Tokenizer tokenizer = sel.tokenizer();
    TfIdfMeasure tfidf(sel.collection());
    TfIdfSelector tfidf_sel(tfidf);
    std::vector<std::vector<std::string>> rows;
    for (double tau : {0.6, 0.8, 0.9}) {
      double sel_ms = 0, scan_ms = 0, verified = 0, results = 0;
      for (const std::string& query : wl.queries) {
        PreparedQuery q =
            tfidf.PrepareQuery(tokenizer.TokenizeCounted(query));
        WallTimer t1;
        QueryResult fast = tfidf_sel.Select(q, tau);
        sel_ms += t1.ElapsedMillis();
        WallTimer t2;
        QueryResult slow = LinearScanSelect(tfidf, sel.collection(), q, tau);
        scan_ms += t2.ElapsedMillis();
        verified += static_cast<double>(fast.counters.rows_scanned);
        results += static_cast<double>(slow.matches.size());
      }
      double n = static_cast<double>(wl.queries.size());
      rows.push_back({"tau=" + Fmt(tau, "%.1f"), Fmt(sel_ms / n),
                      Fmt(scan_ms / n), Fmt(verified / n, "%.1f"),
                      Fmt(results / n, "%.1f")});
    }
    PrintTable("Extension 2: TF/IDF boosted-bounds selection",
               {"Sweep", "boosted ms", "scan ms", "verified/q", "results/q"},
               rows);
  }

  // (3) Top-k vs exhaustive top-k.
  {
    std::vector<std::vector<std::string>> rows;
    for (size_t k : {1u, 10u, 50u}) {
      double topk_ms = 0, scan_ms = 0, read_frac = 0;
      for (const std::string& query : wl.queries) {
        PreparedQuery q = sel.Prepare(query);
        WallTimer t1;
        QueryResult fast = TopKSelect(sel.index(), sel.measure(), q, k, {});
        topk_ms += t1.ElapsedMillis();
        WallTimer t2;
        LinearScanTopK(sel.measure(), sel.collection(), q, k);
        scan_ms += t2.ElapsedMillis();
        if (fast.counters.elements_total > 0) {
          read_frac += static_cast<double>(fast.counters.elements_read) /
                       static_cast<double>(fast.counters.elements_total);
        }
      }
      double n = static_cast<double>(wl.queries.size());
      rows.push_back({"k=" + std::to_string(k), Fmt(topk_ms / n),
                      Fmt(scan_ms / n), Fmt(100.0 * read_frac / n, "%.1f")});
    }
    PrintTable("Extension 3: top-k selection",
               {"Sweep", "topk ms", "scan ms", "% lists read"}, rows);
  }

  // (4) Adaptive planner decisions.
  {
    std::vector<std::vector<std::string>> rows;
    for (double tau : {0.05, 0.2, 0.5, 0.8, 0.95}) {
      size_t sf = 0, merge = 0;
      for (const std::string& query : wl.queries) {
        PreparedQuery q = sel.Prepare(query);
        PlanDecision d = ChooseAlgorithm(sel.index(), sel.measure(), q, tau);
        if (d.kind == AlgorithmKind::kSortById) {
          ++merge;
        } else {
          ++sf;
        }
      }
      rows.push_back({"tau=" + Fmt(tau, "%.2f"), std::to_string(sf),
                      std::to_string(merge)});
    }
    PrintTable("Extension 4: adaptive planner choices",
               {"Sweep", "SF", "sort-by-id"}, rows);
  }

  // (6) Compressed vs raw sort-by-id merge.
  {
    CompressedIdLists compressed = CompressedIdLists::Build(sel.index());
    std::vector<std::vector<std::string>> rows;
    double raw_ms = 0, comp_ms = 0;
    for (const std::string& query : wl.queries) {
      PreparedQuery q = sel.Prepare(query);
      WallTimer t1;
      SortByIdSelect(sel.index(), sel.measure(), q, 0.8);
      raw_ms += t1.ElapsedMillis();
      WallTimer t2;
      SortByIdCompressedSelect(compressed, sel.measure(), q, 0.8);
      comp_ms += t2.ElapsedMillis();
    }
    double nq = static_cast<double>(wl.queries.size());
    rows.push_back(
        {"raw 8B postings", Fmt(raw_ms / nq),
         bench::FmtMb(sel.index().ListBytesOneOrder())});
    rows.push_back({"delta-varint", Fmt(comp_ms / nq),
                    bench::FmtMb(compressed.SizeBytes())});
    PrintTable("Extension 6: compressed id lists (sort-by-id, tau=0.8)",
               {"Encoding", "ms/q", "MB"}, rows);
  }

  // (5) Batch-parallel throughput.
  {
    std::vector<std::vector<std::string>> rows;
    for (size_t threads : {1u, 2u, 4u}) {
      ThreadPool pool(threads);
      WallTimer timer;
      BatchSelect(sel, wl.queries, 0.8, AlgorithmKind::kSf, {}, &pool);
      double secs = timer.ElapsedSeconds();
      rows.push_back(
          {std::to_string(threads) + " threads",
           Fmt(wl.queries.size() / secs, "%.0f"), Fmt(secs * 1e3, "%.1f")});
    }
    PrintTable("Extension 5: batch throughput (SF, tau=0.8)",
               {"Pool", "queries/s", "total ms"}, rows);
  }
  bench::WriteBenchReport("extensions");
  return 0;
}

}  // namespace
}  // namespace simsel

int main(int argc, char** argv) { return simsel::Main(argc, argv); }
