// Reproduces Table I: average precision of TFIDF vs IDF vs BM25 vs BM25'
// on eight datasets of graded error (cu1 = heaviest errors .. cu8 =
// lightest), showing that dropping the tf component does not hurt retrieval
// quality. Datasets are synthesized by the error-model factory since the
// original cu benchmark data is not distributed (see DESIGN.md §2).
//
// Usage: bench_table1_precision [--clean=N] [--dups=N] [--queries=N]

#include <cstdio>

#include "bench_util.h"
#include "eval/precision.h"
#include "gen/corpus.h"
#include "gen/error_model.h"
#include "sim/measure.h"
#include "sim/setops.h"

namespace simsel {
namespace {

int Main(int argc, char** argv) {
  const size_t num_clean = FlagValue(argc, argv, "clean", 1500);
  const size_t dups = FlagValue(argc, argv, "dups", 4);
  const size_t queries = FlagValue(argc, argv, "queries", 60);

  CorpusOptions co;
  co.num_records = num_clean;
  co.vocab_size = std::max<size_t>(500, num_clean * 2);
  co.min_words = 2;
  co.max_words = 4;
  co.seed = 7;
  Corpus corpus = GenerateCorpus(co);
  Tokenizer tokenizer(TokenizerOptions{.q = 3});

  std::printf("Table I reproduction: %zu clean records, %zu duplicates each, "
              "%zu queries per cell\n",
              num_clean, dups, queries);

  const MeasureKind kinds[] = {MeasureKind::kTfIdf, MeasureKind::kIdf,
                               MeasureKind::kBm25, MeasureKind::kBm25Prime};
  const SetOverlapKind overlap_kinds[] = {
      SetOverlapKind::kJaccard, SetOverlapKind::kDice, SetOverlapKind::kCosine};
  std::vector<std::vector<std::string>> rows, overlap_rows;
  for (int level = 1; level <= 8; ++level) {
    DirtyDatasetOptions dso;
    dso.level = level;
    dso.num_clean = num_clean;
    dso.duplicates_per_record = static_cast<int>(dups);
    dso.seed = 100 + level;
    LabeledDataset ds = MakeDirtyDataset(corpus.records, dso);
    Collection coll = Collection::Build(ds.records, tokenizer);

    PrecisionExperimentOptions opts;
    opts.num_queries = queries;
    opts.seed = 900 + level;
    std::vector<std::string> row = {"cu" + std::to_string(level)};
    for (MeasureKind kind : kinds) {
      auto measure = MakeMeasure(kind, coll);
      double map =
          MeanAveragePrecision(ds, level, coll, *measure, tokenizer, opts);
      row.push_back(bench::Fmt(map));
    }
    rows.push_back(std::move(row));

    // Companion table: the unweighted coefficients the paper's Section II
    // argues against ("not all tokens are equally important").
    std::vector<std::string> orow = {"cu" + std::to_string(level)};
    for (SetOverlapKind kind : overlap_kinds) {
      SetOverlapMeasure measure(coll, kind);
      double map =
          MeanAveragePrecision(ds, level, coll, measure, tokenizer, opts);
      orow.push_back(bench::Fmt(map));
    }
    overlap_rows.push_back(std::move(orow));
  }
  bench::PrintTable("Table I: average precision",
                    {"Dataset", "TFIDF", "IDF", "BM25", "BM25'"}, rows);
  bench::PrintTable(
      "Table I companion: unweighted coefficients (not in the paper)",
      {"Dataset", "Jaccard", "Dice", "Cosine"}, overlap_rows);
  std::printf(
      "\nExpected shape (paper): IDF within ~0.005 of TFIDF and BM25' within "
      "~0.005 of BM25 on every row; precision rises from cu1 to cu8.\n"
      "Companion table caveat: weighting by token rarity (Section II's "
      "motivation) pays off most when records share frequent low-information "
      "tokens ('Main', 'St.'); the synthetic vocabulary underrepresents that "
      "structure, so unweighted coefficients look closer here than they "
      "would on real address/title data.\n");
  bench::WriteBenchReport("table1_precision");
  return 0;
}

}  // namespace
}  // namespace simsel

int main(int argc, char** argv) { return simsel::Main(argc, argv); }
