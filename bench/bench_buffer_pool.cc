// Cold-cache study (beyond the paper's figures, quantifying its disk-cost
// arguments): replay a workload through LRU buffer pools of varying size and
// compare physical page misses per algorithm. SF's short sequential bursts
// should be far more cache-friendly than TA's random hash probes — this is
// the access-pattern difference behind the paper's wall-clock gaps on disk.
//
// Usage: bench_buffer_pool [--words=N] [--queries=N]

#include <cstdio>

#include "bench_util.h"
#include "common/timer.h"
#include "gen/workload.h"
#include "storage/buffer_pool.h"
#include "storage/posting_store.h"

namespace simsel {
namespace {

using bench::AlgoSpec;
using bench::Fmt;
using bench::PrintTable;

int Main(int argc, char** argv) {
  BenchEnvOptions env_opts;
  env_opts.num_words = FlagValue(argc, argv, "words", 100000);
  env_opts.with_sql_baseline = false;
  const size_t num_queries = FlagValue(argc, argv, "queries", 100);
  std::printf("Building env over %zu word occurrences...\n",
              env_opts.num_words);
  BenchEnv env = MakeBenchEnv(env_opts);

  WorkloadOptions wo;
  wo.num_queries = num_queries;
  wo.min_tokens = 11;
  wo.max_tokens = 15;
  wo.seed = 1000;
  Workload wl =
      GenerateWordWorkload(env.words, env.selector->tokenizer(), wo);
  const double tau = 0.8;

  const AlgorithmKind kinds[] = {AlgorithmKind::kSf, AlgorithmKind::kInra,
                                 AlgorithmKind::kHybrid, AlgorithmKind::kIta,
                                 AlgorithmKind::kTa, AlgorithmKind::kNra};

  std::vector<std::string> columns = {"Pool frames"};
  for (AlgorithmKind kind : kinds) columns.push_back(AlgorithmKindName(kind));
  std::vector<std::vector<std::string>> miss_rows, rate_rows;

  for (size_t frames : {64u, 256u, 1024u, 8192u}) {
    std::vector<std::string> mrow = {std::to_string(frames)};
    std::vector<std::string> rrow = mrow;
    for (AlgorithmKind kind : kinds) {
      BufferPool pool(frames);
      SelectOptions opts;
      opts.buffer_pool = &pool;
      AccessCounters total;
      for (const std::string& query : wl.queries) {
        PreparedQuery q = env.selector->Prepare(query);
        QueryResult r = env.selector->SelectPrepared(q, tau, kind, opts);
        total.Merge(r.counters);
      }
      mrow.push_back(
          Fmt(total.pool_misses / static_cast<double>(wl.queries.size()),
              "%.1f"));
      rrow.push_back(Fmt(100.0 * pool.HitRate(), "%.1f"));
    }
    miss_rows.push_back(std::move(mrow));
    rate_rows.push_back(std::move(rrow));
  }

  PrintTable("Buffer pool: physical page misses per query (tau=0.8)",
             columns, miss_rows);
  PrintTable("Buffer pool: hit rate % across the workload", columns,
             rate_rows);

  // Disk mode: the same workload through the byte-level posting store.
  {
    PostingStore store = PostingStore::Build(env.selector->index());
    std::vector<std::vector<std::string>> rows;
    for (AlgorithmKind kind : kinds) {
      store.ResetCounters();
      SelectOptions opts;
      opts.posting_store = &store;
      WallTimer timer;
      for (const std::string& query : wl.queries) {
        PreparedQuery q = env.selector->Prepare(query);
        env.selector->SelectPrepared(q, tau, kind, opts);
      }
      double nq = static_cast<double>(wl.queries.size());
      rows.push_back(
          {AlgorithmKindName(kind), Fmt(timer.ElapsedMillis() / nq),
           Fmt(store.sequential_page_reads() / nq, "%.1f"),
           Fmt(store.random_page_reads() / nq, "%.1f")});
    }
    rows.push_back({"(store size MB)", bench::FmtMb(store.SizeBytes()), "",
                    ""});
    PrintTable("Disk mode: byte-level posting store (tau=0.8)",
               {"Algorithm", "ms/q", "seq pages/q", "rand pages/q"}, rows);
  }
  std::printf(
      "\nExpected shape: SF needs the fewest physical reads at every pool "
      "size; TA/iTA miss rates stay high until the pool holds most hash "
      "buckets (random probes defeat small caches), mirroring the paper's "
      "argument that random access is expensive on disk.\n");
  bench::WriteBenchReport("buffer_pool");
  return 0;
}

}  // namespace
}  // namespace simsel

int main(int argc, char** argv) { return simsel::Main(argc, argv); }
