// Ablation of the sketch prefilter tier: elements read and wall-clock for
// SF / iNRA / Hybrid with the tier on vs off, across τ ∈ {0.5, 0.7, 0.9},
// plus the tier's admission telemetry (engage rate, admitted candidates,
// measured false positives). Every query's matches are compared on vs off —
// the "identical" column is the exactness claim made empirically;
// scripts/bench_compare.py --prefilter-gate enforces both it and the τ=0.9
// elements-read reduction.
//
// The gated ratio is on elements_read — inverted-list postings, the metric
// every pruning figure in this repo (and the paper) reports. The "work"
// columns charge the tier for its own probes too (elements_read +
// rows_scanned + hash_probes) so the sketch path is not reported as free.
//
// Usage: bench_prefilter [--words=N] [--queries=N]

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/timer.h"
#include "gen/workload.h"
#include "obs/metrics_registry.h"
#include "sketch/prefilter.h"

namespace simsel {
namespace {

using bench::Fmt;
using bench::PrintTable;

struct TierRun {
  double total_ms = 0.0;
  uint64_t elements = 0;
  uint64_t elements_read = 0;
  size_t results = 0;
};

struct AblationCell {
  TierRun on;
  TierRun off;
  bool identical = true;
};

AblationCell RunPair(const SimilaritySelector& selector,
                     const Workload& workload, double tau,
                     AlgorithmKind kind) {
  AblationCell cell;
  SelectOptions on, off;
  off.prefilter = false;
  for (const std::string& query : workload.queries) {
    PreparedQuery q = selector.Prepare(query);
    WallTimer on_timer;
    QueryResult a = selector.SelectPrepared(q, tau, kind, on);
    cell.on.total_ms += on_timer.ElapsedMicros() / 1000.0;
    WallTimer off_timer;
    QueryResult b = selector.SelectPrepared(q, tau, kind, off);
    cell.off.total_ms += off_timer.ElapsedMicros() / 1000.0;
    for (TierRun* run : {&cell.on, &cell.off}) {
      const AccessCounters& c = (run == &cell.on) ? a.counters : b.counters;
      run->elements += c.elements_read + c.rows_scanned + c.hash_probes;
      run->elements_read += c.elements_read;
      run->results += c.results;
    }
    if (a.matches.size() != b.matches.size()) {
      cell.identical = false;
    } else {
      for (size_t i = 0; i < a.matches.size(); ++i) {
        if (a.matches[i].id != b.matches[i].id ||
            a.matches[i].score != b.matches[i].score) {
          cell.identical = false;
          break;
        }
      }
    }
  }
  return cell;
}

int Main(int argc, char** argv) {
  BenchEnvOptions env_opts;
  env_opts.num_words = FlagValue(argc, argv, "words", 50000);
  env_opts.with_sql_baseline = false;
  const size_t num_queries = FlagValue(argc, argv, "queries", 100);
  std::printf("Building env over %zu word occurrences...\n",
              env_opts.num_words);
  BenchEnv env = MakeBenchEnv(env_opts);
  const SimilaritySelector& selector = *env.selector;
  if (selector.prefilter() == nullptr) {
    std::fprintf(stderr, "index carries no sketch section; nothing to bench\n");
    return 1;
  }
  const sketch::SketchParams& params = selector.prefilter()->params();
  bench::BenchReport::Global().SetMeta("sketch_k", std::to_string(params.k));
  bench::BenchReport::Global().SetMeta(
      "sketch_bands", std::to_string(params.bands) + "x" +
                          std::to_string(params.rows));
  bench::BenchReport::Global().SetMeta(
      "sketch_bytes", std::to_string(selector.Sizes().sketches));

  WorkloadOptions wo;
  wo.num_queries = num_queries;
  wo.min_tokens = 6;
  wo.max_tokens = 15;
  wo.seed = 7000;
  Workload wl = GenerateWordWorkload(env.words, selector.tokenizer(), wo);

  const struct {
    AlgorithmKind kind;
    const char* label;
  } kAlgos[] = {{AlgorithmKind::kSf, "SF"},
                {AlgorithmKind::kInra, "iNRA"},
                {AlgorithmKind::kHybrid, "Hybrid"}};

  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  obs::Counter* engaged = reg.GetCounter("simsel_prefilter_engaged_total");
  obs::Counter* fallthrough =
      reg.GetCounter("simsel_prefilter_fallthrough_total");
  obs::Counter* admitted = reg.GetCounter("simsel_prefilter_admitted_total");
  obs::Counter* fp = reg.GetCounter("simsel_prefilter_fp_total");

  std::vector<std::vector<std::string>> ablation_rows;
  std::vector<std::vector<std::string>> admission_rows;
  for (double tau : {0.5, 0.7, 0.9}) {
    const uint64_t engaged0 = engaged->Value();
    const uint64_t fallthrough0 = fallthrough->Value();
    const uint64_t admitted0 = admitted->Value();
    const uint64_t fp0 = fp->Value();
    for (const auto& algo : kAlgos) {
      AblationCell cell = RunPair(selector, wl, tau, algo.kind);
      const double read_ratio =
          cell.on.elements_read > 0
              ? static_cast<double>(cell.off.elements_read) /
                    cell.on.elements_read
              : 0.0;
      const double work_ratio =
          cell.on.elements > 0
              ? static_cast<double>(cell.off.elements) / cell.on.elements
              : 0.0;
      ablation_rows.push_back(
          {Fmt(tau, "%.1f"), algo.label,
           std::to_string(cell.off.elements_read),
           std::to_string(cell.on.elements_read), Fmt(read_ratio, "%.2f"),
           std::to_string(cell.off.elements), std::to_string(cell.on.elements),
           Fmt(work_ratio, "%.2f"), Fmt(cell.off.total_ms, "%.1f"),
           Fmt(cell.on.total_ms, "%.1f"), cell.identical ? "yes" : "NO"});
    }
    const uint64_t eng = engaged->Value() - engaged0;
    const uint64_t fall = fallthrough->Value() - fallthrough0;
    const uint64_t adm = admitted->Value() - admitted0;
    const uint64_t fps = fp->Value() - fp0;
    admission_rows.push_back(
        {Fmt(tau, "%.1f"), std::to_string(eng), std::to_string(fall),
         std::to_string(adm), std::to_string(fps),
         Fmt(adm > 0 ? 100.0 * fps / adm : 0.0, "%.2f")});
  }
  PrintTable("Prefilter ablation: elements read (gated) and total work, "
             "tier on vs off",
             {"tau", "algo", "read_off", "read_on", "read_ratio", "work_off",
              "work_on", "work_ratio", "ms_off", "ms_on", "identical"},
             ablation_rows);
  PrintTable(
      "Prefilter admission telemetry (per tau sweep, all algorithms)",
      {"tau", "engaged", "fallthrough", "admitted", "fp", "fp_pct"},
      admission_rows);

  if (!bench::WriteBenchReport("prefilter")) return 1;
  return 0;
}

}  // namespace
}  // namespace simsel

int main(int argc, char** argv) { return simsel::Main(argc, argv); }
