// Reproduces Figure 6: wall-clock time per query for every algorithm as a
// function of (a) the similarity threshold, (b) the query size bucket, and
// (c) the number of modifications per query word. The average number of
// results per query — the figure's secondary axis — is reported alongside.
//
// Usage: bench_fig6_wallclock [--words=N] [--queries=N]

#include <cstdio>

#include "bench_util.h"
#include "gen/workload.h"

namespace simsel {
namespace {

using bench::AlgoSpec;
using bench::Fmt;
using bench::PrintTable;

int Main(int argc, char** argv) {
  BenchEnvOptions env_opts;
  env_opts.num_words = FlagValue(argc, argv, "words", 100000);
  env_opts.with_sql_baseline = true;
  const size_t num_queries = FlagValue(argc, argv, "queries", 100);
  std::printf("Building env over %zu word occurrences...\n",
              env_opts.num_words);
  BenchEnv env = MakeBenchEnv(env_opts);
  const std::vector<AlgoSpec> algos = bench::PaperAlgorithms(true);

  auto columns = [&]() {
    std::vector<std::string> cols = {"Sweep", "avg results"};
    for (const AlgoSpec& a : algos) cols.push_back(a.label);
    return cols;
  }();

  auto run_row = [&](const std::string& label, const Workload& wl,
                     double tau) {
    std::vector<WorkloadStats> stats =
        bench::RunSweep(*env.selector, wl, tau, algos);
    std::vector<std::string> row = {label, Fmt(stats[0].avg_results, "%.1f")};
    for (const WorkloadStats& s : stats) row.push_back(Fmt(s.avg_ms));
    return row;
  };

  // (a) threshold sweep: 11-15 grams, 0 modifications.
  {
    std::vector<std::vector<std::string>> rows;
    for (double tau : {0.6, 0.7, 0.8, 0.9}) {
      WorkloadOptions wo;
      wo.num_queries = num_queries;
      wo.min_tokens = 11;
      wo.max_tokens = 15;
      wo.modifications = 0;
      wo.seed = 1000;
      Workload wl = GenerateWordWorkload(env.words,
                                         env.selector->tokenizer(), wo);
      rows.push_back(run_row("tau=" + Fmt(tau, "%.1f"), wl, tau));
    }
    PrintTable("Figure 6(a): wall-clock ms/query vs threshold", columns, rows);
  }

  // (b) query-size sweep: tau = 0.8, 0 modifications.
  {
    std::vector<std::vector<std::string>> rows;
    for (const bench::Bucket& bucket : bench::kBuckets) {
      WorkloadOptions wo;
      wo.num_queries = num_queries;
      wo.min_tokens = bucket.min_tokens;
      wo.max_tokens = bucket.max_tokens;
      wo.modifications = 0;
      wo.seed = 2000;
      Workload wl = GenerateWordWorkload(env.words,
                                         env.selector->tokenizer(), wo);
      if (wl.queries.empty()) continue;
      rows.push_back(run_row(bucket.label, wl, 0.8));
    }
    PrintTable("Figure 6(b): wall-clock ms/query vs query size", columns,
               rows);
  }

  // (c) modifications sweep: tau = 0.6, 11-15 grams.
  {
    std::vector<std::vector<std::string>> rows;
    for (int mods : {0, 1, 2, 3}) {
      WorkloadOptions wo;
      wo.num_queries = num_queries;
      wo.min_tokens = 11;
      wo.max_tokens = 15;
      wo.modifications = mods;
      wo.seed = 3000;
      Workload wl = GenerateWordWorkload(env.words,
                                         env.selector->tokenizer(), wo);
      rows.push_back(run_row("mods=" + std::to_string(mods), wl, 0.6));
    }
    PrintTable("Figure 6(c): wall-clock ms/query vs modifications", columns,
               rows);
  }

  std::printf(
      "\nExpected shape (paper): SF fastest overall (sub-ms at tau=0.9 "
      "scale), iNRA/Hybrid/SQL close behind; sort-by-id flat in tau; classic "
      "TA/NRA slowest by 1-2 orders of magnitude; LB-based algorithms get "
      "FASTER as queries grow while TA deteriorates; costs drop as "
      "modifications make queries more selective.\n");
  bench::WriteBenchReport("fig6_wallclock");
  return 0;
}

}  // namespace
}  // namespace simsel

int main(int argc, char** argv) { return simsel::Main(argc, argv); }
