// Reproduces Figure 8: the effect of the Length Boundedness property.
// Every algorithm that can use it is run with length bounding enabled and
// disabled ("NLB"), over a threshold sweep (wall-clock, 8a) and a query-size
// sweep for SQL and SF (8b), plus the pruning-power view (8c).
//
// Usage: bench_fig8_length_bounding [--words=N] [--queries=N]

#include <cstdio>

#include "bench_util.h"
#include "gen/workload.h"

namespace simsel {
namespace {

using bench::AlgoSpec;
using bench::Fmt;
using bench::PrintTable;

std::vector<AlgoSpec> LbAlgorithms() {
  SelectOptions nlb;
  nlb.length_bounding = false;
  return {
      {AlgorithmKind::kSql, {}, "SQL"},
      {AlgorithmKind::kSql, nlb, "SQL NLB"},
      {AlgorithmKind::kInra, {}, "iNRA"},
      {AlgorithmKind::kInra, nlb, "iNRA NLB"},
      {AlgorithmKind::kIta, {}, "iTA"},
      {AlgorithmKind::kIta, nlb, "iTA NLB"},
      {AlgorithmKind::kSf, {}, "SF"},
      {AlgorithmKind::kSf, nlb, "SF NLB"},
      {AlgorithmKind::kHybrid, {}, "Hybrid"},
      {AlgorithmKind::kHybrid, nlb, "Hybrid NLB"},
  };
}

int Main(int argc, char** argv) {
  BenchEnvOptions env_opts;
  env_opts.num_words = FlagValue(argc, argv, "words", 100000);
  env_opts.with_sql_baseline = true;
  const size_t num_queries = FlagValue(argc, argv, "queries", 100);
  std::printf("Building env over %zu word occurrences...\n",
              env_opts.num_words);
  BenchEnv env = MakeBenchEnv(env_opts);
  const std::vector<AlgoSpec> algos = LbAlgorithms();

  std::vector<std::string> columns = {"Sweep"};
  for (const AlgoSpec& a : algos) columns.push_back(a.label);

  // (a) wall-clock vs threshold.
  {
    std::vector<std::vector<std::string>> time_rows, prune_rows;
    for (double tau : {0.6, 0.7, 0.8, 0.9}) {
      WorkloadOptions wo;
      wo.num_queries = num_queries;
      wo.min_tokens = 11;
      wo.max_tokens = 15;
      wo.seed = 1000;
      Workload wl = GenerateWordWorkload(env.words,
                                         env.selector->tokenizer(), wo);
      std::vector<WorkloadStats> stats =
          bench::RunSweep(*env.selector, wl, tau, algos);
      std::vector<std::string> trow = {"tau=" + Fmt(tau, "%.1f")};
      std::vector<std::string> prow = trow;
      for (const WorkloadStats& s : stats) {
        trow.push_back(Fmt(s.avg_ms));
        prow.push_back(Fmt(100.0 * s.pruning_power, "%.1f"));
      }
      time_rows.push_back(std::move(trow));
      prune_rows.push_back(std::move(prow));
    }
    PrintTable("Figure 8(a): wall-clock ms/query, LB vs NLB", columns,
               time_rows);
    PrintTable("Figure 8(c): % elements pruned, LB vs NLB", columns,
               prune_rows);
  }

  // (b) SQL and SF detail vs query size (the paper's zoomed panel).
  {
    std::vector<AlgoSpec> detail = {algos[0], algos[1], algos[6], algos[7]};
    std::vector<std::string> cols = {"Query size"};
    for (const AlgoSpec& a : detail) cols.push_back(a.label);
    std::vector<std::vector<std::string>> rows;
    for (const bench::Bucket& bucket : bench::kBuckets) {
      WorkloadOptions wo;
      wo.num_queries = num_queries;
      wo.min_tokens = bucket.min_tokens;
      wo.max_tokens = bucket.max_tokens;
      wo.seed = 2000;
      Workload wl = GenerateWordWorkload(env.words,
                                         env.selector->tokenizer(), wo);
      if (wl.queries.empty()) continue;
      std::vector<WorkloadStats> stats =
          bench::RunSweep(*env.selector, wl, 0.8, detail);
      std::vector<std::string> row = {bucket.label};
      for (const WorkloadStats& s : stats) row.push_back(Fmt(s.avg_ms));
      rows.push_back(std::move(row));
    }
    PrintTable("Figure 8(b): SQL and SF ms/query vs query size, LB vs NLB",
               cols, rows);
  }

  std::printf(
      "\nExpected shape (paper): length bounding yields up to ~4x on both "
      "wall-clock and pruning for a given algorithm, and the gap widens with "
      "query size (larger queries skip a larger list prefix).\n");
  bench::WriteBenchReport("fig8_length_bounding");
  return 0;
}

}  // namespace
}  // namespace simsel

int main(int argc, char** argv) { return simsel::Main(argc, argv); }
