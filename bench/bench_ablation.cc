// Property ablation (the design-choice study DESIGN.md calls out): measure
// each semantic property's individual contribution to iNRA's and Hybrid's
// cost by disabling one at a time — Order Preservation, Magnitude
// Boundedness, the F<τ admission cutoff, and lazy candidate scans.
// Complements Figures 8/9, which only ablate Length Boundedness and skip
// lists.
//
// Usage: bench_ablation [--words=N] [--queries=N]

#include <cstdio>

#include "bench_util.h"
#include "gen/workload.h"

namespace simsel {
namespace {

using bench::Fmt;
using bench::PrintTable;

struct Variant {
  const char* label;
  SelectOptions options;
};

std::vector<Variant> Variants() {
  std::vector<Variant> v;
  v.push_back({"all on", {}});
  SelectOptions o;
  o.order_preservation = false;
  v.push_back({"-OP", o});
  o = SelectOptions();
  o.magnitude_bound = false;
  v.push_back({"-MB", o});
  o = SelectOptions();
  o.f_cutoff = false;
  v.push_back({"-Fcut", o});
  o = SelectOptions();
  o.lazy_candidate_scan = false;
  v.push_back({"-lazy", o});
  o = SelectOptions();
  o.order_preservation = false;
  o.magnitude_bound = false;
  o.f_cutoff = false;
  o.lazy_candidate_scan = false;
  v.push_back({"none (LB only)", o});
  return v;
}

int Main(int argc, char** argv) {
  BenchEnvOptions env_opts;
  env_opts.num_words = FlagValue(argc, argv, "words", 100000);
  env_opts.with_sql_baseline = false;
  const size_t num_queries = FlagValue(argc, argv, "queries", 100);
  std::printf("Building env over %zu word occurrences...\n",
              env_opts.num_words);
  BenchEnv env = MakeBenchEnv(env_opts);

  WorkloadOptions wo;
  wo.num_queries = num_queries;
  wo.min_tokens = 11;
  wo.max_tokens = 15;
  wo.seed = 1000;
  Workload wl =
      GenerateWordWorkload(env.words, env.selector->tokenizer(), wo);
  const double tau = 0.8;

  for (AlgorithmKind kind : {AlgorithmKind::kInra, AlgorithmKind::kHybrid}) {
    std::vector<std::vector<std::string>> rows;
    for (const Variant& variant : Variants()) {
      WorkloadStats stats = RunWorkload(*env.selector, wl, tau, kind,
                                        variant.options, variant.label);
      double per_q = 1.0 / static_cast<double>(stats.num_queries);
      rows.push_back(
          {variant.label, Fmt(stats.avg_ms),
           Fmt(stats.counters.elements_read * per_q, "%.0f"),
           Fmt(stats.counters.candidate_inserts * per_q, "%.1f"),
           Fmt(stats.counters.candidate_scan_steps * per_q, "%.0f"),
           Fmt(100.0 * stats.pruning_power, "%.1f")});
    }
    PrintTable(std::string("Ablation of ") + AlgorithmKindName(kind) +
                   " (tau=0.8, 11-15 grams)",
               {"Variant", "ms/q", "reads/q", "cand/q", "scan steps/q",
                "pruned %"},
               rows);
  }
  std::printf(
      "\nReading guide: -MB inflates candidate counts (hopeless sets get "
      "admitted); -OP delays completion so scan steps grow; -Fcut admits "
      "candidates that can never qualify; -lazy multiplies scan steps. "
      "'none' retains only Length Boundedness and is the floor the paper's "
      "Section V improvements build on.\n");
  bench::WriteBenchReport("ablation");
  return 0;
}

}  // namespace
}  // namespace simsel

int main(int argc, char** argv) { return simsel::Main(argc, argv); }
