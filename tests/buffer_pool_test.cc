#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "obs/metrics_registry.h"
#include "storage/buffer_pool.h"
#include "test_util.h"

namespace simsel {
namespace {

TEST(BufferPoolTest, ColdMissesThenHits) {
  BufferPool pool(4);
  EXPECT_FALSE(pool.Touch(1));
  EXPECT_FALSE(pool.Touch(2));
  EXPECT_TRUE(pool.Touch(1));
  EXPECT_TRUE(pool.Touch(2));
  EXPECT_EQ(pool.hits(), 2u);
  EXPECT_EQ(pool.misses(), 2u);
  EXPECT_DOUBLE_EQ(pool.HitRate(), 0.5);
}

TEST(BufferPoolTest, LruEviction) {
  BufferPool pool(2);
  pool.Touch(1);
  pool.Touch(2);
  pool.Touch(3);  // evicts 1 (LRU)
  EXPECT_EQ(pool.evictions(), 1u);
  EXPECT_FALSE(pool.Touch(1));  // 1 was evicted -> miss, evicts 2
  EXPECT_TRUE(pool.Touch(3));   // still resident
}

TEST(BufferPoolTest, TouchRefreshesRecency) {
  BufferPool pool(2);
  pool.Touch(1);
  pool.Touch(2);
  pool.Touch(1);  // 1 becomes MRU
  pool.Touch(3);  // evicts 2, not 1
  EXPECT_TRUE(pool.Touch(1));
  EXPECT_FALSE(pool.Touch(2));
}

TEST(BufferPoolTest, CapacityBound) {
  BufferPool pool(8);
  for (uint64_t i = 0; i < 100; ++i) pool.Touch(i);
  EXPECT_EQ(pool.size(), 8u);
  EXPECT_EQ(pool.misses(), 100u);
  EXPECT_EQ(pool.evictions(), 92u);
}

TEST(BufferPoolTest, ClearResets) {
  BufferPool pool(4);
  pool.Touch(1);
  pool.Touch(1);
  pool.Clear();
  EXPECT_EQ(pool.size(), 0u);
  EXPECT_EQ(pool.hits(), 0u);
  EXPECT_FALSE(pool.Touch(1));  // cold again
}

TEST(BufferPoolTest, PageKeySeparatesFiles) {
  EXPECT_NE(BufferPool::PageKey(1, 0), BufferPool::PageKey(2, 0));
  EXPECT_NE(BufferPool::PageKey(1, 0), BufferPool::PageKey(1, 1));
}

TEST(BufferPoolTest, SmallPoolsStaySingleShard) {
  // Exact global LRU order is part of the contract for small pools — the
  // deterministic eviction tests above depend on it.
  EXPECT_EQ(BufferPool(2).num_shards(), 1u);
  EXPECT_EQ(BufferPool(100).num_shards(), 1u);
}

TEST(BufferPoolTest, LargePoolsShardAndStillBoundCapacity) {
  BufferPool pool(1024);
  EXPECT_GT(pool.num_shards(), 1u);
  for (uint64_t i = 0; i < 5000; ++i) pool.Touch(i);
  EXPECT_LE(pool.size(), pool.capacity());
  EXPECT_EQ(pool.misses(), 5000u);
  // The Fibonacci spread fills shards roughly evenly, so nearly the whole
  // capacity ends up resident.
  EXPECT_GE(pool.size(), pool.capacity() / 2);
}

TEST(BufferPoolTest, ExplicitShardCountRoundsDownToPowerOfTwo) {
  BufferPool pool(256, 3);
  EXPECT_EQ(pool.num_shards(), 2u);
  BufferPool one(4, 8);  // shards never exceed capacity
  EXPECT_LE(one.num_shards(), 4u);
}

TEST(BufferPoolTest, ResidentGaugeReconciledAcrossClearEvictAndDestroy) {
  obs::Gauge* gauge = obs::MetricsRegistry::Global().GetGauge(
      "simsel_buffer_pool_resident_pages");
  const int64_t before = gauge->Value();
  {
    BufferPool pool(16);
    for (uint64_t i = 0; i < 10; ++i) pool.Touch(i);
    EXPECT_EQ(gauge->Value(), before + 10);
    pool.Clear();
    EXPECT_EQ(gauge->Value(), before);  // Clear gives the pages back
    // Evictions swap one page for another: the gauge saturates at capacity.
    for (uint64_t i = 0; i < 100; ++i) pool.Touch(i);
    EXPECT_EQ(gauge->Value(), before + 16);
  }
  // The destructor releases whatever was still resident, so pools created
  // and dropped in a loop (as the benchmarks do) leave no gauge drift.
  EXPECT_EQ(gauge->Value(), before);
}

TEST(BufferPoolTest, ConcurrentTouchesKeepTalliesConsistent) {
  BufferPool pool(256);
  constexpr size_t kThreads = 8;
  constexpr size_t kPerThread = 2000;
  ThreadPool tp(kThreads);
  ParallelFor(&tp, kThreads, [&](size_t t) {
    Rng rng(t + 1);
    for (size_t i = 0; i < kPerThread; ++i) pool.Touch(rng.NextBounded(1024));
  });
  EXPECT_EQ(pool.hits() + pool.misses(), kThreads * kPerThread);
  EXPECT_LE(pool.size(), pool.capacity());
  // Every miss faulted a page in, every eviction took one out.
  EXPECT_EQ(pool.misses() - pool.evictions(), pool.size());
}

// --- Integration with the algorithms. ---

TEST(BufferPoolIntegrationTest, RepeatQueryHitsCache) {
  SimilaritySelector sel = testing_util::MakeSelector(300, 181, false);
  BufferPool pool(100000);  // large: no capacity evictions
  SelectOptions opts;
  opts.buffer_pool = &pool;
  opts.prefilter = false;  // pool traffic flows through the kernels
  PreparedQuery q = sel.Prepare(sel.collection().text(3));

  QueryResult first = sel.SelectPrepared(q, 0.8, AlgorithmKind::kSf, opts);
  EXPECT_GT(first.counters.pool_misses, 0u);
  QueryResult second = sel.SelectPrepared(q, 0.8, AlgorithmKind::kSf, opts);
  // Everything the second run touches was faulted in by the first.
  EXPECT_EQ(second.counters.pool_misses, 0u);
  EXPECT_GT(second.counters.pool_hits, 0u);
  // The pool must not change the answer.
  QueryResult bare = sel.SelectPrepared(q, 0.8, AlgorithmKind::kSf, {});
  testing_util::ExpectSameMatches(bare.matches, second.matches, "pooled");
}

TEST(BufferPoolIntegrationTest, TinyPoolThrashesOnRandomProbes) {
  SimilaritySelector sel = testing_util::MakeSelector(300, 181, false);
  BufferPool big(100000), tiny(2);
  SelectOptions big_opts, tiny_opts;
  big_opts.buffer_pool = &big;
  tiny_opts.buffer_pool = &tiny;
  PreparedQuery q = sel.Prepare(sel.collection().text(3));
  // Warm both pools once, then compare steady-state miss counts.
  sel.SelectPrepared(q, 0.8, AlgorithmKind::kIta, big_opts);
  sel.SelectPrepared(q, 0.8, AlgorithmKind::kIta, tiny_opts);
  QueryResult warm = sel.SelectPrepared(q, 0.8, AlgorithmKind::kIta, big_opts);
  QueryResult thrash =
      sel.SelectPrepared(q, 0.8, AlgorithmKind::kIta, tiny_opts);
  EXPECT_GE(thrash.counters.pool_misses, warm.counters.pool_misses);
}

TEST(BufferPoolIntegrationTest, CountersUntouchedWithoutPool) {
  SimilaritySelector sel = testing_util::MakeSelector(200, 191, false);
  QueryResult r = sel.Select(sel.collection().text(0), 0.8);
  EXPECT_EQ(r.counters.pool_hits, 0u);
  EXPECT_EQ(r.counters.pool_misses, 0u);
}

}  // namespace
}  // namespace simsel
