#include <gtest/gtest.h>

#include "eval/experiment.h"
#include "gen/workload.h"

namespace simsel {
namespace {

TEST(FlagValueTest, ParsesAndDefaults) {
  const char* argv_c[] = {"prog", "--words=1234", "--queries=7", "--bad=x",
                          "positional"};
  char** argv = const_cast<char**>(argv_c);
  EXPECT_EQ(FlagValue(5, argv, "words", 99), 1234u);
  EXPECT_EQ(FlagValue(5, argv, "queries", 99), 7u);
  EXPECT_EQ(FlagValue(5, argv, "missing", 42), 42u);
  // Malformed value falls back.
  EXPECT_EQ(FlagValue(5, argv, "bad", 5), 5u);
}

TEST(BenchEnvTest, BuildsRequestedScale) {
  BenchEnvOptions opts;
  opts.num_words = 3000;
  opts.vocab_size = 500;
  BenchEnv env = MakeBenchEnv(opts);
  EXPECT_EQ(env.words.size(), 3000u);
  EXPECT_EQ(env.selector->collection().size(), 3000u);
  EXPECT_GT(env.selector->index().total_postings(), 3000u);
  EXPECT_EQ(env.selector->gram_table(), nullptr);
}

TEST(BenchEnvTest, SqlBaselineOnRequest) {
  BenchEnvOptions opts;
  opts.num_words = 500;
  opts.with_sql_baseline = true;
  BenchEnv env = MakeBenchEnv(opts);
  ASSERT_NE(env.selector->gram_table(), nullptr);
  EXPECT_EQ(env.selector->gram_table()->num_rows(),
            env.selector->index().total_postings());
}

TEST(BenchEnvTest, DeterministicForSeed) {
  BenchEnvOptions opts;
  opts.num_words = 800;
  BenchEnv a = MakeBenchEnv(opts);
  BenchEnv b = MakeBenchEnv(opts);
  EXPECT_EQ(a.words, b.words);
  opts.seed = 123;
  BenchEnv c = MakeBenchEnv(opts);
  EXPECT_NE(a.words, c.words);
}

TEST(RunWorkloadTest, AggregatesAcrossQueries) {
  BenchEnvOptions opts;
  opts.num_words = 1500;
  BenchEnv env = MakeBenchEnv(opts);
  WorkloadOptions wo;
  wo.num_queries = 12;
  wo.min_tokens = 4;
  wo.max_tokens = 20;
  Workload wl =
      GenerateWordWorkload(env.words, env.selector->tokenizer(), wo);
  ASSERT_EQ(wl.queries.size(), 12u);
  WorkloadStats stats = RunWorkload(*env.selector, wl, 0.8,
                                    AlgorithmKind::kSf, {}, "sf");
  EXPECT_EQ(stats.label, "sf");
  EXPECT_EQ(stats.num_queries, 12u);
  EXPECT_GT(stats.total_ms, 0.0);
  EXPECT_NEAR(stats.avg_ms, stats.total_ms / 12.0, 1e-9);
  EXPECT_GT(stats.counters.elements_total, 0u);
  EXPECT_GE(stats.pruning_power, 0.0);
  EXPECT_LE(stats.pruning_power, 1.0);
  // Every query has an exact match in the DB at tau=0.8.
  EXPECT_GE(stats.avg_results, 1.0);
}

TEST(RunWorkloadTest, EmptyWorkload) {
  BenchEnvOptions opts;
  opts.num_words = 300;
  BenchEnv env = MakeBenchEnv(opts);
  Workload empty;
  WorkloadStats stats = RunWorkload(*env.selector, empty, 0.8,
                                    AlgorithmKind::kSf, {}, "none");
  EXPECT_EQ(stats.num_queries, 0u);
  EXPECT_EQ(stats.avg_ms, 0.0);
}

}  // namespace
}  // namespace simsel
