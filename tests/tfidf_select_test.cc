#include <gtest/gtest.h>

#include "core/linear_scan.h"
#include "core/tfidf_select.h"
#include "test_util.h"

namespace simsel {
namespace {

// A corpus with real multiset structure (repeated words within records) so
// tf components matter.
struct Fixture {
  Fixture() : tokenizer(TokenizerOptions{.q = 3}) {
    CorpusOptions co;
    co.num_records = 300;
    co.vocab_size = 60;  // small vocabulary -> records repeat words
    co.min_words = 1;
    co.max_words = 4;
    co.seed = 71;
    Corpus corpus = GenerateCorpus(co);
    records = corpus.records;
    collection = std::make_unique<Collection>(
        Collection::Build(records, tokenizer));
    measure = std::make_unique<TfIdfMeasure>(*collection);
    selector = std::make_unique<TfIdfSelector>(*measure);
  }

  PreparedQuery Prepare(const std::string& text) const {
    return measure->PrepareQuery(tokenizer.TokenizeCounted(text));
  }

  Tokenizer tokenizer;
  std::vector<std::string> records;
  std::unique_ptr<Collection> collection;
  std::unique_ptr<TfIdfMeasure> measure;
  std::unique_ptr<TfIdfSelector> selector;
};

const Fixture& F() {
  static const Fixture* f = new Fixture();
  return *f;
}

class TfIdfSelectParam : public ::testing::TestWithParam<double> {};

TEST_P(TfIdfSelectParam, MatchesLinearScan) {
  const double tau = GetParam();
  const Fixture& f = F();
  std::vector<std::string> queries =
      testing_util::MakeQueries(f.records, 25, 81);
  for (const std::string& query : queries) {
    PreparedQuery q = f.Prepare(query);
    QueryResult expected =
        LinearScanSelect(*f.measure, *f.collection, q, tau);
    QueryResult actual = f.selector->Select(q, tau);
    testing_util::ExpectSameMatches(expected.matches, actual.matches,
                                    "tfidf tau=" + std::to_string(tau) +
                                        " q=" + query);
  }
}

INSTANTIATE_TEST_SUITE_P(Thresholds, TfIdfSelectParam,
                         ::testing::Values(0.3, 0.5, 0.7, 0.85, 0.95),
                         [](const auto& info) {
                           return "tau" + std::to_string(static_cast<int>(
                                              info.param * 100 + 0.5));
                         });

TEST(TfIdfSelectTest, AblationsStayExact) {
  const Fixture& f = F();
  PreparedQuery q = f.Prepare(f.records[7]);
  QueryResult expected = LinearScanSelect(*f.measure, *f.collection, q, 0.7);
  for (int variant = 0; variant < 2; ++variant) {
    SelectOptions o;
    if (variant == 0) o.length_bounding = false;
    if (variant == 1) o.use_skip_index = false;
    QueryResult actual = f.selector->Select(q, 0.7, o);
    testing_util::ExpectSameMatches(expected.matches, actual.matches,
                                    "variant " + std::to_string(variant));
  }
}

TEST(TfIdfSelectTest, BoostedLengthWindowHoldsForAllMatches) {
  // Boosted Theorem 1: τ·||q||/mtfq <= ||s|| <= max_mtf·||q||/τ.
  const Fixture& f = F();
  const double tau = 0.6;
  for (size_t r = 0; r < 20; ++r) {
    PreparedQuery q = f.Prepare(f.records[r]);
    if (q.tokens.empty()) continue;
    uint32_t mtfq = 1, max_db_tf = 1;
    for (size_t i = 0; i < q.tokens.size(); ++i) {
      mtfq = std::max(mtfq, q.tfs[i]);
      max_db_tf = std::max(max_db_tf, f.measure->max_tf(q.tokens[i]));
    }
    QueryResult matches = LinearScanSelect(*f.measure, *f.collection, q, tau);
    for (const Match& m : matches.matches) {
      double len = f.measure->set_length(m.id);
      EXPECT_GE(len, tau * q.length / mtfq * (1 - 1e-6)) << m.id;
      EXPECT_LE(len, max_db_tf * q.length / tau * (1 + 1e-6)) << m.id;
    }
  }
}

TEST(TfIdfSelectTest, PrunesRelativeToFullLists) {
  const Fixture& f = F();
  PreparedQuery q = f.Prepare(f.records[3]);
  QueryResult r = f.selector->Select(q, 0.9);
  EXPECT_LT(r.counters.elements_read, r.counters.elements_total);
  // Verification only touches surviving candidates, not the whole DB.
  EXPECT_LT(r.counters.rows_scanned, f.collection->size());
}

TEST(TfIdfSelectTest, EmptyQuery) {
  const Fixture& f = F();
  PreparedQuery q = f.Prepare("");
  EXPECT_TRUE(f.selector->Select(q, 0.5).matches.empty());
}

TEST(TfIdfSelectTest, SelfMatchAtHighThreshold) {
  const Fixture& f = F();
  for (size_t r = 0; r < 10; ++r) {
    PreparedQuery q = f.Prepare(f.records[r]);
    QueryResult res = f.selector->Select(q, 0.999);
    bool found_self = false;
    for (const Match& m : res.matches) found_self |= (m.id == r);
    EXPECT_TRUE(found_self) << f.records[r];
  }
}

}  // namespace
}  // namespace simsel
