#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "storage/paged_file.h"

namespace simsel {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(PagedFileTest, AppendAndReadBack) {
  PagedFile file(256);
  std::string payload = "the quick brown fox";
  uint64_t off = file.Append(payload.data(), payload.size());
  EXPECT_EQ(off, 0u);
  std::string out(payload.size(), '\0');
  ASSERT_TRUE(file.ReadAt(off, out.size(), out.data()).ok());
  EXPECT_EQ(out, payload);
}

TEST(PagedFileTest, ReadPastEndFails) {
  PagedFile file(256);
  file.Append("abc", 3);
  char buf[8];
  Status s = file.ReadAt(0, 8, buf);
  EXPECT_EQ(s.code(), StatusCode::kOutOfRange);
}

TEST(PagedFileTest, SequentialReadsChargeNewPagesOnly) {
  PagedFile file(64);
  std::vector<uint8_t> block(256, 0xAB);
  file.Append(block.data(), block.size());
  char buf[16];
  // Four reads within the first page: one page charge.
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(file.ReadAt(i * 16, 16, buf).ok());
  }
  EXPECT_EQ(file.sequential_page_reads(), 1u);
  // Read crossing into the second page.
  ASSERT_TRUE(file.ReadAt(60, 8, buf).ok());
  EXPECT_EQ(file.sequential_page_reads(), 2u);
}

TEST(PagedFileTest, RandomReadsChargeEveryTouchedPage) {
  PagedFile file(64);
  std::vector<uint8_t> block(256, 0x5A);
  file.Append(block.data(), block.size());
  char buf[128];
  ASSERT_TRUE(file.ReadAt(0, 128, buf, /*random=*/true).ok());
  EXPECT_EQ(file.random_page_reads(), 2u);
  EXPECT_EQ(file.sequential_page_reads(), 0u);
}

TEST(PagedFileTest, ResetCountersZeroes) {
  PagedFile file(64);
  file.Append("0123456789", 10);
  char buf[4];
  ASSERT_TRUE(file.ReadAt(0, 4, buf).ok());
  file.ResetCounters();
  EXPECT_EQ(file.sequential_page_reads(), 0u);
  EXPECT_EQ(file.random_page_reads(), 0u);
}

TEST(PagedFileTest, SaveLoadRoundtrip) {
  std::string path = TempPath("simsel_pf_roundtrip.bin");
  PagedFile file(128);
  std::string payload = "persistent bytes";
  file.Append(payload.data(), payload.size());
  ASSERT_TRUE(file.SaveToFile(path).ok());

  Result<PagedFile> loaded = PagedFile::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->page_size(), 128u);
  ASSERT_EQ(loaded->size(), payload.size());
  std::string out(payload.size(), '\0');
  ASSERT_TRUE(loaded->ReadAt(0, out.size(), out.data()).ok());
  EXPECT_EQ(out, payload);
  std::remove(path.c_str());
}

TEST(PagedFileTest, LoadDetectsCorruption) {
  std::string path = TempPath("simsel_pf_corrupt.bin");
  PagedFile file(128);
  file.Append("data to corrupt", 15);
  ASSERT_TRUE(file.SaveToFile(path).ok());
  // Flip one payload byte on disk.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(16 + 3);  // past the 16-byte header
    char c;
    f.seekg(16 + 3);
    f.get(c);
    f.seekp(16 + 3);
    f.put(static_cast<char>(c ^ 0xFF));
  }
  Result<PagedFile> loaded = PagedFile::LoadFromFile(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(PagedFileTest, LoadDetectsTruncation) {
  std::string path = TempPath("simsel_pf_trunc.bin");
  PagedFile file(128);
  std::vector<uint8_t> data(100, 7);
  file.Append(data.data(), data.size());
  ASSERT_TRUE(file.SaveToFile(path).ok());
  std::filesystem::resize_file(path, 50);
  Result<PagedFile> loaded = PagedFile::LoadFromFile(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(PagedFileTest, LoadMissingFileIsNotFound) {
  Result<PagedFile> loaded =
      PagedFile::LoadFromFile(TempPath("simsel_pf_nope.bin"));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST(PagedFileTest, NumPagesRoundsUp) {
  PagedFile file(64);
  EXPECT_EQ(file.num_pages(), 0u);
  std::vector<uint8_t> d(65, 1);
  file.Append(d.data(), d.size());
  EXPECT_EQ(file.num_pages(), 2u);
}

}  // namespace
}  // namespace simsel
