#ifndef SIMSEL_TESTS_TEST_UTIL_H_
#define SIMSEL_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "core/selector.h"
#include "gen/corpus.h"
#include "gen/error_model.h"
#include "text/tokenizer.h"

namespace simsel {
namespace testing_util {

/// Small deterministic word collection with structured overlaps: a pool of
/// base words plus corrupted near-duplicates, so thresholds in (0.5, 1.0)
/// produce non-trivial result sets.
inline std::vector<std::string> MakeWordRecords(size_t n, uint64_t seed) {
  CorpusOptions o;
  o.num_records = n;
  o.vocab_size = std::max<size_t>(20, n / 4);
  o.min_words = 1;
  o.max_words = 1;
  o.seed = seed;
  return GenerateCorpus(o).records;
}

/// Builds a selector over word records with every structure enabled.
inline SimilaritySelector MakeSelector(size_t n, uint64_t seed,
                                       bool with_sql = true) {
  BuildOptions build;
  build.tokenizer.q = 3;
  build.build_sql_baseline = with_sql;
  // Small pages so page accounting and skip indexes are exercised even on
  // test-sized lists.
  build.index.page_bytes = 512;
  build.index.skip_fanout = 8;
  build.index.hash_page_bytes = 256;
  build.btree_page_bytes = 512;
  return SimilaritySelector::Build(MakeWordRecords(n, seed), build);
}

/// Sample query strings: half are records from the collection (exact
/// matches exist), half are corrupted copies.
inline std::vector<std::string> MakeQueries(
    const std::vector<std::string>& records, size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::string> queries;
  queries.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    std::string q = records[rng.NextBounded(records.size())];
    if (i % 2 == 1) q = ApplyModifications(q, 1 + (i % 3), &rng);
    queries.push_back(std::move(q));
  }
  return queries;
}

/// Asserts two match vectors are identical (ids and exact scores).
inline void ExpectSameMatches(const std::vector<Match>& expected,
                              const std::vector<Match>& actual,
                              const std::string& context) {
  ASSERT_EQ(expected.size(), actual.size())
      << context << ": result count mismatch";
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i].id, actual[i].id) << context << " at rank " << i;
    EXPECT_DOUBLE_EQ(expected[i].score, actual[i].score)
        << context << " score of id " << actual[i].id;
  }
}

}  // namespace testing_util
}  // namespace simsel

#endif  // SIMSEL_TESTS_TEST_UTIL_H_
