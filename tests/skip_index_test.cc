#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.h"
#include "container/skip_index.h"

namespace simsel {
namespace {

std::vector<float> RandomSorted(size_t n, uint64_t seed, float max_value,
                                bool with_duplicates) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (size_t i = 0; i < n; ++i) {
    float x = static_cast<float>(rng.NextDouble()) * max_value;
    if (with_duplicates) x = std::round(x * 8.0f) / 8.0f;  // force ties
    v[i] = x;
  }
  std::sort(v.begin(), v.end());
  return v;
}

size_t ReferenceFirstGE(const std::vector<float>& v, float target) {
  return static_cast<size_t>(
      std::lower_bound(v.begin(), v.end(), target) - v.begin());
}

TEST(SkipIndexTest, MatchesLowerBoundOnRandomData) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    std::vector<float> v = RandomSorted(5000, seed, 100.0f, false);
    SkipIndex skip(v.data(), v.size(), 16);
    Rng rng(seed + 100);
    for (int i = 0; i < 500; ++i) {
      float target = static_cast<float>(rng.NextDouble()) * 110.0f - 5.0f;
      EXPECT_EQ(skip.SeekFirstGE(target), ReferenceFirstGE(v, target))
          << "target=" << target;
    }
  }
}

TEST(SkipIndexTest, HandlesDuplicates) {
  std::vector<float> v = RandomSorted(3000, 7, 20.0f, true);
  SkipIndex skip(v.data(), v.size(), 8);
  // Probe exactly at every distinct value: must land on the FIRST equal.
  for (size_t i = 0; i < v.size(); i += 37) {
    EXPECT_EQ(skip.SeekFirstGE(v[i]), ReferenceFirstGE(v, v[i]));
  }
}

TEST(SkipIndexTest, ExtremeTargets) {
  std::vector<float> v = RandomSorted(1000, 11, 50.0f, false);
  SkipIndex skip(v.data(), v.size(), 16);
  EXPECT_EQ(skip.SeekFirstGE(-1.0f), 0u);
  EXPECT_EQ(skip.SeekFirstGE(0.0f), 0u);
  EXPECT_EQ(skip.SeekFirstGE(1000.0f), v.size());
}

TEST(SkipIndexTest, SmallListsHaveNoLevels) {
  std::vector<float> v = {1.0f, 2.0f, 3.0f};
  SkipIndex skip(v.data(), v.size(), 16);
  EXPECT_EQ(skip.num_levels(), 0u);
  EXPECT_EQ(skip.SeekFirstGE(2.5f), 2u);
  EXPECT_EQ(skip.SeekFirstGE(0.5f), 0u);
}

TEST(SkipIndexTest, EmptyList) {
  SkipIndex skip(nullptr, 0, 16);
  EXPECT_EQ(skip.SeekFirstGE(1.0f), 0u);
  EXPECT_EQ(skip.num_nodes(), 0u);
}

TEST(SkipIndexTest, SeekLastLE) {
  std::vector<float> v = {1.0f, 2.0f, 2.0f, 5.0f, 9.0f};
  SkipIndex skip(v.data(), v.size(), 2);
  EXPECT_EQ(skip.SeekLastLE(2.0f), 2u);
  EXPECT_EQ(skip.SeekLastLE(4.9f), 2u);
  EXPECT_EQ(skip.SeekLastLE(9.0f), 4u);
  EXPECT_EQ(skip.SeekLastLE(100.0f), 4u);
  EXPECT_EQ(skip.SeekLastLE(0.5f), v.size());  // sentinel: nothing <= target
}

TEST(SkipIndexTest, NodeBudgetIsSmall) {
  std::vector<float> v = RandomSorted(100000, 13, 1000.0f, false);
  SkipIndex skip(v.data(), v.size(), 64);
  // Geometric series: roughly n/63 nodes total.
  EXPECT_LT(skip.num_nodes(), v.size() / 32);
  EXPECT_GT(skip.num_levels(), 1u);
  EXPECT_EQ(skip.SizeBytes(), skip.num_nodes() * 8);
}

TEST(SkipIndexTest, VisitCountsAreLogarithmic) {
  std::vector<float> v = RandomSorted(100000, 17, 1000.0f, false);
  SkipIndex skip(v.data(), v.size(), 64);
  uint64_t visits = 0;
  skip.SeekFirstGE(500.0f, &visits);
  // Each level scans at most ~fanout nodes plus the base tail.
  EXPECT_LT(visits, 64u * (skip.num_levels() + 2));
  EXPECT_GT(visits, 0u);
}

TEST(SkipIndexTest, TinyFanout) {
  std::vector<float> v = RandomSorted(500, 19, 10.0f, true);
  SkipIndex skip(v.data(), v.size(), 2);
  for (float t = -1.0f; t < 12.0f; t += 0.37f) {
    EXPECT_EQ(skip.SeekFirstGE(t), ReferenceFirstGE(v, t));
  }
}

}  // namespace
}  // namespace simsel
