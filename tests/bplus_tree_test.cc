#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "btree/bplus_tree.h"
#include "common/rng.h"
#include "rel/gram_table.h"

namespace simsel {
namespace {

using IntTree = BPlusTree<int, int>;

IntTree::Options SmallPages() {
  IntTree::Options o;
  o.page_bytes = 256;  // tiny pages force splits and deep trees
  return o;
}

TEST(BPlusTreeTest, EmptyTree) {
  IntTree tree;
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_TRUE(tree.Validate());
  EXPECT_FALSE(tree.SeekGE(1).Valid());
  EXPECT_FALSE(tree.Begin().Valid());
  EXPECT_FALSE(tree.Lookup(5));
}

TEST(BPlusTreeTest, InsertAndLookup) {
  IntTree tree(SmallPages());
  for (int i = 0; i < 1000; ++i) tree.Insert(i * 2, i);
  EXPECT_EQ(tree.size(), 1000u);
  ASSERT_TRUE(tree.Validate());
  int v = -1;
  EXPECT_TRUE(tree.Lookup(500, &v));
  EXPECT_EQ(v, 250);
  EXPECT_FALSE(tree.Lookup(501));
}

TEST(BPlusTreeTest, RandomInsertMatchesMultimap) {
  IntTree tree(SmallPages());
  std::multimap<int, int> reference;
  Rng rng(3);
  for (int i = 0; i < 5000; ++i) {
    int key = static_cast<int>(rng.NextBounded(2000));
    tree.Insert(key, i);
    reference.emplace(key, i);
  }
  ASSERT_TRUE(tree.Validate());
  EXPECT_EQ(tree.size(), reference.size());
  // Full scan equals sorted reference keys.
  std::vector<int> tree_keys, ref_keys;
  for (auto s = tree.Begin(); s.Valid(); s.Next()) tree_keys.push_back(s.key());
  for (const auto& [k, v] : reference) ref_keys.push_back(k);
  EXPECT_EQ(tree_keys, ref_keys);
}

TEST(BPlusTreeTest, SeekGEMatchesLowerBound) {
  IntTree tree(SmallPages());
  std::multimap<int, int> reference;
  Rng rng(7);
  for (int i = 0; i < 3000; ++i) {
    int key = static_cast<int>(rng.NextBounded(5000));
    tree.Insert(key, i);
    reference.emplace(key, i);
  }
  for (int probe = -10; probe < 5100; probe += 53) {
    auto scan = tree.SeekGE(probe);
    auto it = reference.lower_bound(probe);
    if (it == reference.end()) {
      EXPECT_FALSE(scan.Valid()) << probe;
    } else {
      ASSERT_TRUE(scan.Valid()) << probe;
      EXPECT_EQ(scan.key(), it->first) << probe;
    }
  }
}

TEST(BPlusTreeTest, RangeScanMatchesReference) {
  IntTree tree(SmallPages());
  std::multimap<int, int> reference;
  Rng rng(11);
  for (int i = 0; i < 2000; ++i) {
    int key = static_cast<int>(rng.NextBounded(1000));
    tree.Insert(key, i);
    reference.emplace(key, i);
  }
  int lo = 200, hi = 400;
  std::vector<int> got;
  for (auto s = tree.SeekGE(lo); s.Valid() && s.key() <= hi; s.Next()) {
    got.push_back(s.key());
  }
  std::vector<int> expected;
  for (auto it = reference.lower_bound(lo);
       it != reference.end() && it->first <= hi; ++it) {
    expected.push_back(it->first);
  }
  EXPECT_EQ(got, expected);
}

TEST(BPlusTreeTest, DuplicateKeysAllReachableViaScan) {
  IntTree tree(SmallPages());
  for (int rep = 0; rep < 100; ++rep) tree.Insert(42, rep);
  for (int rep = 0; rep < 50; ++rep) tree.Insert(41, rep);
  ASSERT_TRUE(tree.Validate());
  size_t count42 = 0;
  for (auto s = tree.SeekGE(42); s.Valid() && s.key() == 42; s.Next()) {
    ++count42;
  }
  EXPECT_EQ(count42, 100u);
}

TEST(BPlusTreeTest, BulkBuildMatchesInserts) {
  std::vector<std::pair<int, int>> items;
  Rng rng(13);
  for (int i = 0; i < 4000; ++i) {
    items.push_back({static_cast<int>(rng.NextBounded(999)), i});
  }
  std::sort(items.begin(), items.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  IntTree built(SmallPages());
  built.Build(items);
  ASSERT_TRUE(built.Validate());
  EXPECT_EQ(built.size(), items.size());
  size_t i = 0;
  for (auto s = built.Begin(); s.Valid(); s.Next(), ++i) {
    EXPECT_EQ(s.key(), items[i].first);
  }
  EXPECT_EQ(i, items.size());
}

TEST(BPlusTreeTest, BulkBuildEmpty) {
  IntTree tree(SmallPages());
  tree.Build({});
  EXPECT_TRUE(tree.Validate());
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_FALSE(tree.Begin().Valid());
}

TEST(BPlusTreeTest, SeekChargesHeightPlusOnePages) {
  IntTree tree(SmallPages());
  for (int i = 0; i < 5000; ++i) tree.Insert(i, i);
  EXPECT_GT(tree.height(), 1u);
  AccessCounters counters;
  tree.SeekGE(2500, &counters);
  EXPECT_EQ(counters.rand_page_reads, tree.height() + 1);
}

TEST(BPlusTreeTest, ScanChargesSequentialPagesPerLeaf) {
  IntTree tree(SmallPages());
  for (int i = 0; i < 2000; ++i) tree.Insert(i, i);
  AccessCounters counters;
  size_t rows = 0;
  for (auto s = tree.SeekGE(0, &counters); s.Valid(); s.Next()) ++rows;
  EXPECT_EQ(rows, 2000u);
  // One sequential page charge per leaf hop; leaves hold >= 4 entries.
  EXPECT_GE(counters.seq_page_reads, tree.num_leaves() - 1);
  EXPECT_LE(counters.seq_page_reads, tree.num_leaves() + 1);
}

TEST(BPlusTreeTest, SizeBytesCountsNodes) {
  IntTree tree(SmallPages());
  for (int i = 0; i < 1000; ++i) tree.Insert(i, i);
  EXPECT_EQ(tree.SizeBytes(),
            (tree.num_leaves() + tree.num_internal()) * 256);
}

TEST(BPlusTreeTest, GramKeyOrdering) {
  GramKeyLess less;
  EXPECT_TRUE(less({1, 2.0f, 3}, {2, 0.0f, 0}));
  EXPECT_TRUE(less({1, 2.0f, 3}, {1, 3.0f, 0}));
  EXPECT_TRUE(less({1, 2.0f, 3}, {1, 2.0f, 4}));
  EXPECT_FALSE(less({1, 2.0f, 3}, {1, 2.0f, 3}));
}

TEST(BPlusTreeTest, CompositeKeyTree) {
  BPlusTree<GramKey, float, GramKeyLess> tree;
  Rng rng(17);
  for (int i = 0; i < 3000; ++i) {
    GramKey key{static_cast<TokenId>(rng.NextBounded(50)),
                static_cast<float>(rng.NextDouble() * 10),
                static_cast<SetId>(i)};
    tree.Insert(key, 1.0f);
  }
  ASSERT_TRUE(tree.Validate());
  // Range scan of one gram stays within that gram.
  auto s = tree.SeekGE(GramKey{25, 0.0f, 0});
  while (s.Valid() && s.key().gram == 25) s.Next();
  if (s.Valid()) {
    EXPECT_GT(s.key().gram, 25u);
  }
}

}  // namespace
}  // namespace simsel
