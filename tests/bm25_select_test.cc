#include <gtest/gtest.h>

#include "core/bm25_select.h"
#include "core/linear_scan.h"
#include "test_util.h"

namespace simsel {
namespace {

struct Fixture {
  explicit Fixture(bool drop_tf) : tokenizer(TokenizerOptions{.q = 3}) {
    CorpusOptions co;
    co.num_records = 250;
    co.vocab_size = 50;  // repeats -> real tf structure
    co.min_words = 1;
    co.max_words = 4;
    co.seed = 91;
    records = GenerateCorpus(co).records;
    collection =
        std::make_unique<Collection>(Collection::Build(records, tokenizer));
    measure = std::make_unique<Bm25Measure>(*collection, drop_tf);
    selector = std::make_unique<Bm25Selector>(*measure);
  }

  PreparedQuery Prepare(const std::string& text) const {
    return measure->PrepareQuery(tokenizer.TokenizeCounted(text));
  }

  Tokenizer tokenizer;
  std::vector<std::string> records;
  std::unique_ptr<Collection> collection;
  std::unique_ptr<Bm25Measure> measure;
  std::unique_ptr<Bm25Selector> selector;
};

class Bm25SelectParam
    : public ::testing::TestWithParam<std::tuple<bool, double>> {};

TEST_P(Bm25SelectParam, MatchesLinearScan) {
  const auto& [drop_tf, tau] = GetParam();
  Fixture f(drop_tf);
  std::vector<std::string> queries =
      testing_util::MakeQueries(f.records, 20, 97);
  for (const std::string& query : queries) {
    PreparedQuery q = f.Prepare(query);
    QueryResult expected = LinearScanSelect(*f.measure, *f.collection, q, tau);
    QueryResult actual = f.selector->Select(q, tau);
    testing_util::ExpectSameMatches(
        expected.matches, actual.matches,
        std::string(f.measure->name()) + " tau=" + std::to_string(tau));
  }
}

// BM25 scores are unnormalized; thresholds span the useful range for this
// corpus (exact matches score ~15-40 here).
INSTANTIATE_TEST_SUITE_P(
    Flavors, Bm25SelectParam,
    ::testing::Combine(::testing::Bool(), ::testing::Values(2.0, 8.0, 20.0)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param) ? "prime" : "bm25") + "_tau" +
             std::to_string(static_cast<int>(std::get<1>(info.param)));
    });

TEST(Bm25SelectTest, ContributionBoundDecreasesWithDocLength) {
  Fixture f(false);
  PreparedQuery q = f.Prepare(f.records[0]);
  ASSERT_FALSE(q.tokens.empty());
  double prev = std::numeric_limits<double>::infinity();
  for (double d : {1.0, 5.0, 20.0, 100.0}) {
    double bound = f.selector->ContributionBound(q, 0, d);
    EXPECT_LT(bound, prev);
    prev = bound;
  }
}

TEST(Bm25SelectTest, BoundDominatesActualContribution) {
  Fixture f(false);
  PreparedQuery q = f.Prepare(f.records[3]);
  // For every set, the summed per-list bounds dominate the exact score.
  for (SetId s = 0; s < 50; ++s) {
    double bound = 0.0;
    for (size_t i = 0; i < q.tokens.size(); ++i) {
      bound += f.selector->ContributionBound(q, i, f.measure->doc_length(s));
    }
    EXPECT_GE(bound * (1 + 1e-9), f.measure->Score(q, s)) << s;
  }
}

TEST(Bm25SelectTest, PrunesAtHighThresholds) {
  Fixture f(false);
  PreparedQuery q = f.Prepare(f.records[5]);
  QueryResult strict = f.selector->Select(q, 25.0);
  QueryResult loose = f.selector->Select(q, 1.0);
  EXPECT_LE(strict.counters.rows_scanned, loose.counters.rows_scanned);
  EXPECT_EQ(strict.counters.elements_read + strict.counters.elements_skipped,
            strict.counters.elements_total);
}

TEST(Bm25SelectTest, EmptyQuery) {
  Fixture f(false);
  PreparedQuery q = f.Prepare("");
  EXPECT_TRUE(f.selector->Select(q, 1.0).matches.empty());
}

TEST(Bm25SelectTest, PostingsOrderedByDocLength) {
  Fixture f(false);
  const InvertedIndex& idx = f.selector->index();
  for (TokenId t = 0; t < idx.num_tokens(); ++t) {
    const float* dls = idx.LenLens(t);
    for (size_t i = 1; i < idx.ListSize(t); ++i) {
      EXPECT_LE(dls[i - 1], dls[i]);
    }
  }
}

}  // namespace
}  // namespace simsel
