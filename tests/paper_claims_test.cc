#include <gtest/gtest.h>

#include "test_util.h"

namespace simsel {
namespace {

// Tests pinning specific claims from the paper's narrative, on data crafted
// to exhibit them.

// Every claim here is about the exact kernels' access patterns, so the
// sketch tier (which answers eligible queries without touching the lists)
// is pinned off throughout.
SelectOptions Kernels() {
  SelectOptions options;
  options.prefilter = false;
  return options;
}

// Section V: "Assume that set lengths are unique and τ = 1. The Length
// Boundedness property will restrict the search space to only one set.
// Clearly, in this case we can construct examples where NRA will have to
// examine every single set in the database instead." (Lemma 1's intuition.)
TEST(PaperClaimsTest, UniqueLengthsAtTauOne) {
  // Records of strictly growing token counts -> strictly growing lengths.
  std::vector<std::string> records;
  std::string rec;
  for (int i = 0; i < 40; ++i) {
    rec += static_cast<char>('a' + (i % 26));
    rec += static_cast<char>('a' + ((i * 7) % 26));
    records.push_back(rec);  // prefixes: every set strictly contains prior
  }
  BuildOptions build;
  build.index.skip_fanout = 4;  // lists are short; make sure skips exist
  SimilaritySelector sel = SimilaritySelector::Build(records, build);
  PreparedQuery q = sel.Prepare(records[20]);
  const double tau = 0.9999;

  QueryResult inra = sel.SelectPrepared(q, tau, AlgorithmKind::kInra, Kernels());
  QueryResult nra = sel.SelectPrepared(q, tau, AlgorithmKind::kNra, Kernels());
  // Both find exactly the record itself.
  ASSERT_EQ(inra.matches.size(), 1u);
  EXPECT_EQ(inra.matches[0].id, 20u);
  ASSERT_EQ(nra.matches.size(), 1u);
  // The LB window isolates a tiny slice; classic NRA reads arbitrarily more.
  EXPECT_LT(inra.counters.elements_read * 4, nra.counters.elements_read)
      << "iNRA read " << inra.counters.elements_read << ", NRA read "
      << nra.counters.elements_read;
}

// Section VI: SF reads shorter (rare) lists first, so in the typical case
// it reads no more elements than iNRA (Lemma 2's direction, which dominates
// in practice per the paper's Figure 6/7).
TEST(PaperClaimsTest, SfUsuallyReadsNoMoreThanInra) {
  SimilaritySelector sel = testing_util::MakeSelector(400, 1001, false);
  size_t sf_wins = 0, ties = 0, inra_wins = 0;
  for (SetId s = 0; s < 60; ++s) {
    PreparedQuery q = sel.Prepare(sel.collection().text(s * 5));
    uint64_t sf =
        sel.SelectPrepared(q, 0.8, AlgorithmKind::kSf, Kernels()).counters
            .elements_read;
    uint64_t inra =
        sel.SelectPrepared(q, 0.8, AlgorithmKind::kInra, Kernels()).counters
            .elements_read;
    if (sf < inra) {
      ++sf_wins;
    } else if (sf == inra) {
      ++ties;
    } else {
      ++inra_wins;
    }
  }
  // The depth-first strategy should win or tie the vast majority of
  // instances (the paper's Lemma 3 shows adversarial exceptions exist).
  EXPECT_GT(sf_wins + ties, inra_wins * 3)
      << "sf_wins=" << sf_wins << " ties=" << ties
      << " inra_wins=" << inra_wins;
}

// Section VI, Figure 3's moral: with lists of very different idf, SF skips
// most of the long (frequent-token) lists. Set lengths must actually vary —
// with identical lengths neither LB nor OP can discriminate (SF then
// legitimately reads the whole frequent list to resolve candidates).
TEST(PaperClaimsTest, SfSkipsLongFrequentLists) {
  // One token in every record ("zz"), plus 1-5 per-record unique tokens so
  // set lengths take five distinct values.
  std::vector<std::string> records;
  for (int i = 0; i < 200; ++i) {
    std::string rec = "zz";
    for (int w = 0; w <= i % 5; ++w) {
      rec += " u" + std::to_string(i) + static_cast<char>('a' + w);
    }
    records.push_back(rec);
  }
  BuildOptions build;
  build.tokenizer.kind = TokenizerKind::kWord;
  build.index.skip_fanout = 8;
  SimilaritySelector sel = SimilaritySelector::Build(records, build);
  PreparedQuery q = sel.Prepare(records[7]);
  QueryResult r = sel.SelectPrepared(q, 0.9, AlgorithmKind::kSf, Kernels());
  ASSERT_FALSE(r.matches.empty());
  EXPECT_EQ(r.matches[0].id, 7u);
  // The "zz" list has 200 entries; the window + λ cutoffs must confine SF
  // to a small slice of it.
  EXPECT_GT(r.counters.elements_skipped, r.counters.elements_read)
      << "read " << r.counters.elements_read << " of "
      << r.counters.elements_total;
  EXPECT_LT(r.counters.elements_read, 100u);
}

// Section VIII-B: sort-by-id's cost is flat in the threshold; the improved
// algorithms get cheaper as τ rises.
TEST(PaperClaimsTest, SortByIdFlatInThreshold) {
  SimilaritySelector sel = testing_util::MakeSelector(300, 1003, false);
  PreparedQuery q = sel.Prepare(sel.collection().text(11));
  uint64_t low =
      sel.SelectPrepared(q, 0.5, AlgorithmKind::kSortById, Kernels()).counters
          .elements_read;
  uint64_t high =
      sel.SelectPrepared(q, 0.95, AlgorithmKind::kSortById, Kernels()).counters
          .elements_read;
  EXPECT_EQ(low, high);
  uint64_t sf_low = sel.SelectPrepared(q, 0.5, AlgorithmKind::kSf, Kernels())
                        .counters.elements_read;
  uint64_t sf_high = sel.SelectPrepared(q, 0.95, AlgorithmKind::kSf, Kernels())
                         .counters.elements_read;
  EXPECT_LE(sf_high, sf_low);
  EXPECT_LT(sf_high, high);
}

// Section II: exact matches always score 1 under the normalized measure —
// "with length normalization an exact match always has score equal to 1".
TEST(PaperClaimsTest, ExactMatchScoresOne) {
  SimilaritySelector sel = testing_util::MakeSelector(200, 1005, false);
  for (SetId s = 0; s < 20; ++s) {
    PreparedQuery q = sel.Prepare(sel.collection().text(s));
    EXPECT_NEAR(sel.measure().Score(q, s), 1.0, 1e-5);
  }
}

// Section VIII-C: "iTA has the largest pruning power ... Nevertheless, the
// random I/Os come at a cost" — its probes show up as random page reads.
TEST(PaperClaimsTest, ItaTradesProbesForPruning) {
  SimilaritySelector sel = testing_util::MakeSelector(400, 1007, true);
  AccessCounters ita, sf;
  for (SetId s = 0; s < 20; ++s) {
    PreparedQuery q = sel.Prepare(sel.collection().text(s * 9));
    ita.Merge(sel.SelectPrepared(q, 0.8, AlgorithmKind::kIta, Kernels()).counters);
    sf.Merge(sel.SelectPrepared(q, 0.8, AlgorithmKind::kSf, Kernels()).counters);
  }
  EXPECT_GE(ita.PruningPower(), sf.PruningPower() - 0.02);
  EXPECT_GT(ita.hash_probes, 0u);
  EXPECT_GT(ita.rand_page_reads, sf.rand_page_reads);
  EXPECT_EQ(sf.hash_probes, 0u);
}

}  // namespace
}  // namespace simsel
