// The exactness acceptance test of the sketch prefilter tier: with the tier
// on, every algorithm in every execution mode (memory, disk, static,
// dynamic with unfolded delta records, sharded, concurrent) must return
// matches byte-identical — same ids, same exact score bits — to the tier
// being off. Counters legitimately differ (that is the point of the tier);
// answers never may.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "core/dynamic.h"
#include "core/selector.h"
#include "serve/sharded_selector.h"
#include "storage/posting_store.h"
#include "test_util.h"

namespace simsel {
namespace {

using testing_util::ExpectSameMatches;
using testing_util::MakeQueries;
using testing_util::MakeSelector;
using testing_util::MakeWordRecords;

// Every kind with defined SelectOptions semantics; the tier must be a
// no-op for the ineligible baselines (scan, SQL, sort-by-id) and
// answer-preserving for the rest.
const AlgorithmKind kAllKinds[] = {
    AlgorithmKind::kLinearScan, AlgorithmKind::kSql,
    AlgorithmKind::kSortById,   AlgorithmKind::kTa,
    AlgorithmKind::kNra,        AlgorithmKind::kIta,
    AlgorithmKind::kInra,       AlgorithmKind::kSf,
    AlgorithmKind::kHybrid,     AlgorithmKind::kPrefixFilter,
};

const double kTaus[] = {0.5, 0.7, 0.9, 0.95};

std::string Ctx(AlgorithmKind kind, double tau, const char* mode) {
  return std::string(AlgorithmKindName(kind)) + " tau=" + std::to_string(tau) +
         " " + mode;
}

TEST(PrefilterParityTest, MemoryModeAllAlgorithms) {
  SimilaritySelector sel = MakeSelector(400, 4242, /*with_sql=*/true);
  ASSERT_NE(sel.prefilter(), nullptr);
  std::vector<std::string> queries;
  for (SetId s = 0; s < 15; ++s) queries.push_back(sel.collection().text(s * 9));
  for (const std::string& extra :
       MakeQueries(MakeWordRecords(400, 4242), 10, 7)) {
    queries.push_back(extra);
  }
  SelectOptions on, off;
  off.prefilter = false;
  for (AlgorithmKind kind : kAllKinds) {
    for (double tau : kTaus) {
      for (const std::string& query : queries) {
        PreparedQuery q = sel.Prepare(query);
        QueryResult a = sel.SelectPrepared(q, tau, kind, on);
        QueryResult b = sel.SelectPrepared(q, tau, kind, off);
        ExpectSameMatches(b.matches, a.matches, Ctx(kind, tau, "memory"));
      }
    }
  }
}

TEST(PrefilterParityTest, DiskModeAllAlgorithms) {
  SimilaritySelector sel = MakeSelector(300, 555, /*with_sql=*/false);
  ASSERT_NE(sel.prefilter(), nullptr);
  PostingStore store = PostingStore::Build(sel.index());
  SelectOptions on, off;
  on.posting_store = &store;
  off.posting_store = &store;
  off.prefilter = false;
  for (AlgorithmKind kind :
       {AlgorithmKind::kTa, AlgorithmKind::kNra, AlgorithmKind::kIta,
        AlgorithmKind::kInra, AlgorithmKind::kSf, AlgorithmKind::kHybrid,
        AlgorithmKind::kPrefixFilter}) {
    for (double tau : kTaus) {
      for (SetId s = 0; s < 10; ++s) {
        PreparedQuery q = sel.Prepare(sel.collection().text(s * 13));
        QueryResult a = sel.SelectPrepared(q, tau, kind, on);
        QueryResult b = sel.SelectPrepared(q, tau, kind, off);
        ExpectSameMatches(b.matches, a.matches, Ctx(kind, tau, "disk"));
      }
    }
  }
}

// Dynamic index: delta records added after the build carry their own
// signatures (sketched against the main segment's hash family) and flow
// through the DeltaScreen, both before and after a Rebuild folds them in.
TEST(PrefilterParityTest, DynamicWithDeltaRecords) {
  std::vector<std::string> records = MakeWordRecords(250, 888);
  DynamicSelector dyn(records);
  // Append near-duplicates of existing records so the delta actually holds
  // answers at high thresholds.
  for (SetId s = 0; s < 25; ++s) dyn.AddRecord(records[s * 7]);
  ASSERT_EQ(dyn.delta_size(), 25u);
  SelectOptions on, off;
  off.prefilter = false;
  auto sweep = [&](const char* mode) {
    for (AlgorithmKind kind :
         {AlgorithmKind::kInra, AlgorithmKind::kSf, AlgorithmKind::kHybrid,
          AlgorithmKind::kTa}) {
      for (double tau : kTaus) {
        for (SetId s = 0; s < 12; ++s) {
          std::string query = records[s * 11];
          QueryResult a = dyn.Select(query, tau, kind, on);
          QueryResult b = dyn.Select(query, tau, kind, off);
          ExpectSameMatches(b.matches, a.matches, Ctx(kind, tau, mode));
        }
      }
    }
  };
  sweep("delta");
  dyn.Rebuild();
  ASSERT_EQ(dyn.delta_size(), 0u);
  sweep("post-rebuild");
  // New appends against the rebuilt main (fresh statistics, fresh sketches).
  for (SetId s = 0; s < 10; ++s) dyn.AddRecord(records[s * 3]);
  sweep("delta-after-rebuild");
}

TEST(PrefilterParityTest, ShardedScatterGather) {
  std::vector<std::string> records = MakeWordRecords(360, 99);
  serve::ShardedSelectorOptions opts;
  opts.num_shards = 4;
  opts.build.tokenizer.q = 3;
  serve::ShardedSelector sharded = serve::ShardedSelector::Build(records, opts);
  SimilaritySelector flat =
      SimilaritySelector::Build(records, opts.build);
  SelectOptions on, off;
  off.prefilter = false;
  for (AlgorithmKind kind :
       {AlgorithmKind::kSf, AlgorithmKind::kInra, AlgorithmKind::kHybrid}) {
    for (double tau : kTaus) {
      for (SetId s = 0; s < 10; ++s) {
        const std::string& query = records[s * 17];
        QueryResult a = sharded.Select(query, tau, kind, on);
        QueryResult b = sharded.Select(query, tau, kind, off);
        ExpectSameMatches(b.matches, a.matches, Ctx(kind, tau, "sharded"));
        // And both agree with the unsharded single-index answer.
        QueryResult flat_ref = flat.Select(query, tau, kind, off);
        ExpectSameMatches(flat_ref.matches, a.matches,
                          Ctx(kind, tau, "sharded-vs-flat"));
      }
    }
  }
}

// A saved-index round trip through the latest format preserves the tier:
// the loaded selector re-derives banding tables and router from the
// persisted sketch section and answers identically.
TEST(PrefilterParityTest, SurvivesSaveLoadRoundTrip) {
  std::vector<std::string> records = MakeWordRecords(300, 1234);
  BuildOptions build;
  build.tokenizer.q = 3;
  SimilaritySelector built = SimilaritySelector::Build(records, build);
  ASSERT_NE(built.prefilter(), nullptr);
  std::string path = ::testing::TempDir() + "prefilter_parity.simsel";
  ASSERT_TRUE(built.SaveIndex(path, InvertedIndex::kVersionLatest).ok());
  Result<SimilaritySelector> loaded =
      SimilaritySelector::BuildWithSavedIndex(records, path, build);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  std::remove(path.c_str());
  ASSERT_NE(loaded->prefilter(), nullptr);
  for (double tau : kTaus) {
    for (SetId s = 0; s < 12; ++s) {
      std::string query = records[s * 5];
      QueryResult a = built.Select(query, tau, AlgorithmKind::kSf, {});
      QueryResult b = loaded->Select(query, tau, AlgorithmKind::kSf, {});
      ExpectSameMatches(a.matches, b.matches,
                        "roundtrip tau=" + std::to_string(tau));
    }
  }
}

// Concurrent soak (run under TSAN by scripts/check.sh): readers with the
// tier on race readers with it off and concurrent delta appends; every
// thread checks its answers against a serial reference on the snapshot it
// pinned. The tier's state is immutable after Attach, so the only shared
// mutable state is the dynamic selector's own (already TSAN-clean) core.
TEST(PrefilterParityTest, ConcurrentMixedOnOffReaders) {
  std::vector<std::string> records = MakeWordRecords(200, 321);
  DynamicSelector dyn(records);
  std::atomic<bool> stop{false};
  std::atomic<size_t> checked{0};

  std::thread writer([&] {
    for (SetId s = 0; s < 30 && !stop.load(); ++s) {
      dyn.AddRecord(records[s % records.size()]);
    }
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      SelectOptions on, off;
      off.prefilter = false;
      for (int i = 0; i < 40; ++i) {
        const std::string& query = records[(t * 37 + i * 11) % records.size()];
        const double tau = (i % 2) ? 0.9 : 0.7;
        // Pin one snapshot so both runs and the reference see the same cut.
        DynamicSelector::Snapshot snap = dyn.snapshot();
        PreparedQuery q = snap.Prepare(query);
        QueryResult a = snap.SelectPrepared(q, tau, AlgorithmKind::kSf, on);
        QueryResult b = snap.SelectPrepared(q, tau, AlgorithmKind::kSf, off);
        ExpectSameMatches(b.matches, a.matches,
                          "concurrent t=" + std::to_string(t));
        checked.fetch_add(1);
      }
    });
  }
  for (std::thread& r : readers) r.join();
  stop.store(true);
  writer.join();
  EXPECT_EQ(checked.load(), 160u);
}

}  // namespace
}  // namespace simsel
