#include <gtest/gtest.h>

#include <tuple>

#include "test_util.h"

namespace simsel {
namespace {

using testing_util::MakeQueries;
using testing_util::MakeSelector;

const SimilaritySelector& Selector() {
  static const SimilaritySelector* selector = new SimilaritySelector(
      MakeSelector(400, /*seed=*/501, /*with_sql=*/true));
  return *selector;
}

const std::vector<std::string>& Queries() {
  static const std::vector<std::string>* queries = [] {
    std::vector<std::string> texts;
    for (SetId s = 0; s < Selector().collection().size(); ++s) {
      texts.push_back(Selector().collection().text(s));
    }
    return new std::vector<std::string>(MakeQueries(texts, 15, 511));
  }();
  return *queries;
}

// Every list-consuming algorithm must conserve accounting: each posting of
// each query list is either read or skipped, never both, never neither.
class AccountingConservation
    : public ::testing::TestWithParam<std::tuple<AlgorithmKind, double>> {};

TEST_P(AccountingConservation, ReadPlusSkippedEqualsTotal) {
  const auto& [kind, tau] = GetParam();
  const SimilaritySelector& sel = Selector();
  for (const std::string& query : Queries()) {
    PreparedQuery q = sel.Prepare(query);
    QueryResult r = sel.SelectPrepared(q, tau, kind, {});
    EXPECT_EQ(r.counters.elements_read + r.counters.elements_skipped,
              r.counters.elements_total)
        << AlgorithmKindName(kind) << " tau=" << tau << " q=" << query;
    EXPECT_EQ(r.counters.results, r.matches.size());
  }
}

INSTANTIATE_TEST_SUITE_P(
    ListAlgorithms, AccountingConservation,
    ::testing::Combine(
        ::testing::Values(AlgorithmKind::kSortById, AlgorithmKind::kTa,
                          AlgorithmKind::kNra, AlgorithmKind::kIta,
                          AlgorithmKind::kInra, AlgorithmKind::kSf,
                          AlgorithmKind::kHybrid,
                          AlgorithmKind::kPrefixFilter),
        ::testing::Values(0.5, 0.8, 0.95)),
    [](const auto& info) {
      std::string name = AlgorithmKindName(std::get<0>(info.param));
      if (name == "sort-by-id") name = "SortById";
      return name + "_tau" +
             std::to_string(
                 static_cast<int>(std::get<1>(info.param) * 100 + 0.5));
    });

// Ablation variants must conserve too (seeks take different code paths).
TEST(AccountingConservationTest, AblationVariants) {
  const SimilaritySelector& sel = Selector();
  for (int variant = 0; variant < 3; ++variant) {
    SelectOptions o;
    if (variant == 0) o.length_bounding = false;
    if (variant == 1) o.use_skip_index = false;
    if (variant == 2) {
      o.order_preservation = false;
      o.magnitude_bound = false;
    }
    for (AlgorithmKind kind :
         {AlgorithmKind::kInra, AlgorithmKind::kSf, AlgorithmKind::kHybrid,
          AlgorithmKind::kIta}) {
      for (const std::string& query : Queries()) {
        PreparedQuery q = sel.Prepare(query);
        QueryResult r = sel.SelectPrepared(q, 0.8, kind, o);
        EXPECT_EQ(r.counters.elements_read + r.counters.elements_skipped,
                  r.counters.elements_total)
            << AlgorithmKindName(kind) << " variant " << variant;
      }
    }
  }
}

// Monotonicity of pruning in the threshold, pooled over a workload (SF and
// iNRA read monotonically less as tau rises).
TEST(AccountingMonotonicityTest, ReadsDecreaseWithThreshold) {
  const SimilaritySelector& sel = Selector();
  for (AlgorithmKind kind : {AlgorithmKind::kSf, AlgorithmKind::kInra}) {
    uint64_t prev = UINT64_MAX;
    for (double tau : {0.5, 0.7, 0.9}) {
      uint64_t reads = 0;
      for (const std::string& query : Queries()) {
        PreparedQuery q = sel.Prepare(query);
        reads += sel.SelectPrepared(q, tau, kind, {}).counters.elements_read;
      }
      EXPECT_LE(reads, prev) << AlgorithmKindName(kind) << " tau=" << tau;
      prev = reads;
    }
  }
}

// Random accesses: only the TA family and the hash-backed paths issue
// hash probes.
TEST(AccountingProbesTest, OnlyTaFamilyProbes) {
  const SimilaritySelector& sel = Selector();
  PreparedQuery q = sel.Prepare(sel.collection().text(3));
  for (AlgorithmKind kind :
       {AlgorithmKind::kSortById, AlgorithmKind::kNra, AlgorithmKind::kInra,
        AlgorithmKind::kSf, AlgorithmKind::kHybrid}) {
    QueryResult r = sel.SelectPrepared(q, 0.8, kind, {});
    EXPECT_EQ(r.counters.hash_probes, 0u) << AlgorithmKindName(kind);
  }
  QueryResult ta = sel.SelectPrepared(q, 0.8, AlgorithmKind::kTa, {});
  EXPECT_GT(ta.counters.hash_probes, 0u);
}

// SQL accounting: rows scanned are bounded by the gram table rows of the
// query's tokens.
TEST(AccountingSqlTest, RowsBoundedByLists) {
  const SimilaritySelector& sel = Selector();
  PreparedQuery q = sel.Prepare(sel.collection().text(5));
  QueryResult r = sel.SelectPrepared(q, 0.8, AlgorithmKind::kSql, {});
  uint64_t bound = 0;
  for (TokenId t : q.tokens) bound += sel.index().ListSize(t);
  EXPECT_LE(r.counters.rows_scanned, bound);
  EXPECT_GT(r.counters.rows_scanned, 0u);
}

}  // namespace
}  // namespace simsel
