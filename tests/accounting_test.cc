#include <gtest/gtest.h>

#include <tuple>

#include "test_util.h"

namespace simsel {
namespace {

using testing_util::MakeQueries;
using testing_util::MakeSelector;

const SimilaritySelector& Selector() {
  static const SimilaritySelector* selector = new SimilaritySelector(
      MakeSelector(400, /*seed=*/501, /*with_sql=*/true));
  return *selector;
}

const std::vector<std::string>& Queries() {
  static const std::vector<std::string>* queries = [] {
    std::vector<std::string> texts;
    for (SetId s = 0; s < Selector().collection().size(); ++s) {
      texts.push_back(Selector().collection().text(s));
    }
    return new std::vector<std::string>(MakeQueries(texts, 15, 511));
  }();
  return *queries;
}

// Every list-consuming algorithm must conserve accounting: each posting of
// each query list is either read or skipped, never both, never neither.
class AccountingConservation
    : public ::testing::TestWithParam<std::tuple<AlgorithmKind, double>> {};

TEST_P(AccountingConservation, ReadPlusSkippedEqualsTotal) {
  const auto& [kind, tau] = GetParam();
  const SimilaritySelector& sel = Selector();
  for (const std::string& query : Queries()) {
    PreparedQuery q = sel.Prepare(query);
    QueryResult r = sel.SelectPrepared(q, tau, kind, {});
    EXPECT_EQ(r.counters.elements_read + r.counters.elements_skipped,
              r.counters.elements_total)
        << AlgorithmKindName(kind) << " tau=" << tau << " q=" << query;
    EXPECT_EQ(r.counters.results, r.matches.size());
  }
}

INSTANTIATE_TEST_SUITE_P(
    ListAlgorithms, AccountingConservation,
    ::testing::Combine(
        ::testing::Values(AlgorithmKind::kSortById, AlgorithmKind::kTa,
                          AlgorithmKind::kNra, AlgorithmKind::kIta,
                          AlgorithmKind::kInra, AlgorithmKind::kSf,
                          AlgorithmKind::kHybrid,
                          AlgorithmKind::kPrefixFilter),
        ::testing::Values(0.5, 0.8, 0.95)),
    [](const auto& info) {
      std::string name = AlgorithmKindName(std::get<0>(info.param));
      if (name == "sort-by-id") name = "SortById";
      return name + "_tau" +
             std::to_string(
                 static_cast<int>(std::get<1>(info.param) * 100 + 0.5));
    });

// Ablation variants must conserve too (seeks take different code paths).
TEST(AccountingConservationTest, AblationVariants) {
  const SimilaritySelector& sel = Selector();
  for (int variant = 0; variant < 3; ++variant) {
    SelectOptions o;
    if (variant == 0) o.length_bounding = false;
    if (variant == 1) o.use_skip_index = false;
    if (variant == 2) {
      o.order_preservation = false;
      o.magnitude_bound = false;
    }
    for (AlgorithmKind kind :
         {AlgorithmKind::kInra, AlgorithmKind::kSf, AlgorithmKind::kHybrid,
          AlgorithmKind::kIta}) {
      for (const std::string& query : Queries()) {
        PreparedQuery q = sel.Prepare(query);
        QueryResult r = sel.SelectPrepared(q, 0.8, kind, o);
        EXPECT_EQ(r.counters.elements_read + r.counters.elements_skipped,
                  r.counters.elements_total)
            << AlgorithmKindName(kind) << " variant " << variant;
      }
    }
  }
}

// Monotonicity of pruning in the threshold, pooled over a workload (SF and
// iNRA read monotonically less as tau rises).
TEST(AccountingMonotonicityTest, ReadsDecreaseWithThreshold) {
  const SimilaritySelector& sel = Selector();
  for (AlgorithmKind kind : {AlgorithmKind::kSf, AlgorithmKind::kInra}) {
    uint64_t prev = UINT64_MAX;
    for (double tau : {0.5, 0.7, 0.9}) {
      uint64_t reads = 0;
      for (const std::string& query : Queries()) {
        PreparedQuery q = sel.Prepare(query);
        reads += sel.SelectPrepared(q, tau, kind, {}).counters.elements_read;
      }
      EXPECT_LE(reads, prev) << AlgorithmKindName(kind) << " tau=" << tau;
      prev = reads;
    }
  }
}

// Random accesses: only the TA family and the hash-backed paths issue
// hash probes.
TEST(AccountingProbesTest, OnlyTaFamilyProbes) {
  const SimilaritySelector& sel = Selector();
  PreparedQuery q = sel.Prepare(sel.collection().text(3));
  // Kernel accounting contract, so the sketch tier (which charges its band
  // and signature probes to hash_probes too) is pinned off.
  SelectOptions options;
  options.prefilter = false;
  for (AlgorithmKind kind :
       {AlgorithmKind::kSortById, AlgorithmKind::kNra, AlgorithmKind::kInra,
        AlgorithmKind::kSf, AlgorithmKind::kHybrid}) {
    QueryResult r = sel.SelectPrepared(q, 0.8, kind, options);
    EXPECT_EQ(r.counters.hash_probes, 0u) << AlgorithmKindName(kind);
  }
  QueryResult ta = sel.SelectPrepared(q, 0.8, AlgorithmKind::kTa, options);
  EXPECT_GT(ta.counters.hash_probes, 0u);
}

// AccessCounters itself: Merge covers every field, PruningPower tolerates
// the empty-query case, and ToString renders every field (the buffer-pool
// tallies included) in the documented key=value order.
TEST(AccessCountersTest, MergeCoversEveryField) {
  AccessCounters a;
  a.elements_read = 1;
  a.elements_skipped = 2;
  a.elements_total = 3;
  a.seq_page_reads = 4;
  a.rand_page_reads = 5;
  a.hash_probes = 6;
  a.candidate_inserts = 7;
  a.candidate_prunes = 8;
  a.candidate_scan_steps = 9;
  a.rows_scanned = 10;
  a.pool_hits = 11;
  a.pool_misses = 12;
  a.results = 13;
  AccessCounters b = a;
  b.Merge(a);
  EXPECT_EQ(b.elements_read, 2u);
  EXPECT_EQ(b.elements_skipped, 4u);
  EXPECT_EQ(b.elements_total, 6u);
  EXPECT_EQ(b.seq_page_reads, 8u);
  EXPECT_EQ(b.rand_page_reads, 10u);
  EXPECT_EQ(b.hash_probes, 12u);
  EXPECT_EQ(b.candidate_inserts, 14u);
  EXPECT_EQ(b.candidate_prunes, 16u);
  EXPECT_EQ(b.candidate_scan_steps, 18u);
  EXPECT_EQ(b.rows_scanned, 20u);
  EXPECT_EQ(b.pool_hits, 22u);
  EXPECT_EQ(b.pool_misses, 24u);
  EXPECT_EQ(b.results, 26u);
}

TEST(AccessCountersTest, PruningPowerGuardsZeroTotal) {
  AccessCounters c;
  EXPECT_EQ(c.PruningPower(), 0.0);
  c.elements_total = 100;
  c.elements_read = 25;
  EXPECT_DOUBLE_EQ(c.PruningPower(), 0.75);
  // Reads beyond the total (double-charged landings) clamp at zero pruning.
  c.elements_read = 200;
  EXPECT_EQ(c.PruningPower(), 0.0);
}

TEST(AccessCountersTest, ToStringLocksFormat) {
  AccessCounters c;
  c.elements_read = 1;
  c.elements_skipped = 2;
  c.elements_total = 4;
  c.seq_page_reads = 5;
  c.rand_page_reads = 6;
  c.hash_probes = 7;
  c.candidate_inserts = 8;
  c.candidate_prunes = 9;
  c.candidate_scan_steps = 10;
  c.rows_scanned = 11;
  c.pool_hits = 12;
  c.pool_misses = 13;
  c.results = 14;
  EXPECT_EQ(c.ToString(),
            "read=1 skipped=2 total=4 seq_pages=5 rand_pages=6 probes=7 "
            "cand_ins=8 cand_prune=9 cand_scan=10 rows=11 pool_hits=12 "
            "pool_misses=13 results=14 pruning=0.750");
}

// SQL accounting: rows scanned are bounded by the gram table rows of the
// query's tokens.
TEST(AccountingSqlTest, RowsBoundedByLists) {
  const SimilaritySelector& sel = Selector();
  PreparedQuery q = sel.Prepare(sel.collection().text(5));
  QueryResult r = sel.SelectPrepared(q, 0.8, AlgorithmKind::kSql, {});
  uint64_t bound = 0;
  for (TokenId t : q.tokens) bound += sel.index().ListSize(t);
  EXPECT_LE(r.counters.rows_scanned, bound);
  EXPECT_GT(r.counters.rows_scanned, 0u);
}

}  // namespace
}  // namespace simsel
