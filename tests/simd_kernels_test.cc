// Scalar-vs-SIMD parity for the span kernels (simd/kernels.h). Every
// variant the running machine supports must be *bit-exact* against the
// scalar reference on adversarial inputs: empty blocks, single elements,
// all-equal lengths, maximum (wrapping) id deltas, and unaligned tails of
// every length around the 4/8-lane vector widths. The suite also pins the
// dispatch contract: SIMSEL_FORCE_SCALAR=1 must resolve to the scalar
// table (the check.sh scalar leg reruns everything under that env).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <random>
#include <string>
#include <vector>

#include "simd/kernels.h"

namespace simsel::simd {
namespace {

/// Every kernel table the machine can run, scalar first.
std::vector<const SpanKernels*> AvailableVariants() {
  std::vector<const SpanKernels*> v = {&ScalarKernels()};
  if (Sse42Kernels() != nullptr) v.push_back(Sse42Kernels());
  if (Avx2Kernels() != nullptr) v.push_back(Avx2Kernels());
  return v;
}

uint32_t FloatToBits(float f) {
  uint32_t bits;
  std::memcpy(&bits, &f, sizeof(bits));
  return bits;
}

// Tail lengths around the vector widths: 0..9 covers both the 4-lane and
// 8-lane remainders, the larger ones exercise full vector bodies + tails.
const size_t kSizes[] = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 15, 16, 17, 31, 33, 67};

TEST(SimdKernelsTest, DeltaPrefixSumParity) {
  std::mt19937 rng(20260808);
  for (const SpanKernels* k : AvailableVariants()) {
    SCOPED_TRACE(k->name);
    for (size_t n : kSizes) {
      // Adversarial delta patterns: zero, max-uint32 (wrap every step),
      // alternating sign (zigzag-decoded negatives), and random.
      std::vector<std::vector<uint32_t>> patterns;
      patterns.emplace_back(n, 0u);
      patterns.emplace_back(n, std::numeric_limits<uint32_t>::max());
      std::vector<uint32_t> alt(n);
      for (size_t i = 0; i < n; ++i) {
        alt[i] = i % 2 == 0 ? 5u : static_cast<uint32_t>(-3);
      }
      patterns.push_back(std::move(alt));
      std::vector<uint32_t> rnd(n);
      for (uint32_t& d : rnd) d = rng();
      patterns.push_back(std::move(rnd));
      for (const std::vector<uint32_t>& deltas : patterns) {
        for (uint32_t first : {0u, 1u, 0xFFFFFFF0u}) {
          std::vector<uint32_t> expect(n), got(n);
          ScalarKernels().delta_prefix_sum_u32(first, deltas.data(), n,
                                               expect.data());
          k->delta_prefix_sum_u32(first, deltas.data(), n, got.data());
          ASSERT_EQ(expect, got) << "n=" << n << " first=" << first;
        }
      }
    }
  }
}

TEST(SimdKernelsTest, BitsAddBaseParity) {
  std::mt19937 rng(7);
  for (const SpanKernels* k : AvailableVariants()) {
    SCOPED_TRACE(k->name);
    for (size_t n : kSizes) {
      std::vector<uint32_t> deltas(n);
      for (uint32_t& d : deltas) d = rng() & 0xFFFFF;
      for (uint32_t base : {0u, FloatToBits(0.25f), 0x7F7FFFF0u}) {
        std::vector<float> expect(n), got(n);
        ScalarKernels().bits_add_base_f32(deltas.data(), n, base,
                                          expect.data());
        k->bits_add_base_f32(deltas.data(), n, base, got.data());
        // Compare bit patterns: the kernel must be exact even for inputs
        // that land on NaN/inf patterns.
        for (size_t i = 0; i < n; ++i) {
          ASSERT_EQ(FloatToBits(expect[i]), FloatToBits(got[i]))
              << "n=" << n << " i=" << i;
        }
      }
    }
  }
}

TEST(SimdKernelsTest, CountBoundsParity) {
  std::mt19937 rng(99);
  for (const SpanKernels* k : AvailableVariants()) {
    SCOPED_TRACE(k->name);
    for (size_t n : kSizes) {
      // Ascending with long equal runs (the all-equal-lens block case).
      std::vector<float> values(n);
      float v = 0.5f;
      for (size_t i = 0; i < n; ++i) {
        if (rng() % 3 == 0) v += 0.25f;  // equal runs of expected length 3
        values[i] = v;
      }
      std::vector<float> bounds = {-1.0f, 0.5f, v, v + 1.0f,
                                   std::numeric_limits<float>::infinity()};
      for (size_t i = 0; i < n; ++i) bounds.push_back(values[i]);
      for (float bound : bounds) {
        ASSERT_EQ(ScalarKernels().count_le_f32(values.data(), n, bound),
                  k->count_le_f32(values.data(), n, bound))
            << "n=" << n << " bound=" << bound;
        ASSERT_EQ(ScalarKernels().count_lt_f32(values.data(), n, bound),
                  k->count_lt_f32(values.data(), n, bound))
            << "n=" << n << " bound=" << bound;
      }
    }
  }
}

TEST(SimdKernelsTest, CountBoundsMatchStdBounds) {
  // The scalar reference itself must agree with the STL on sorted input —
  // this is the contract SeekFirstGE/GT and the span clip rely on.
  std::vector<float> values = {0.1f, 0.1f, 0.2f, 0.5f, 0.5f, 0.5f, 0.9f};
  for (float bound : {0.05f, 0.1f, 0.3f, 0.5f, 0.9f, 1.5f}) {
    EXPECT_EQ(ScalarKernels().count_lt_f32(values.data(), values.size(),
                                           bound),
              static_cast<size_t>(
                  std::lower_bound(values.begin(), values.end(), bound) -
                  values.begin()));
    EXPECT_EQ(ScalarKernels().count_le_f32(values.data(), values.size(),
                                           bound),
              static_cast<size_t>(
                  std::upper_bound(values.begin(), values.end(), bound) -
                  values.begin()));
  }
}

/// Strictly-ascending random array of `n` uint32s.
std::vector<uint32_t> AscendingIds(std::mt19937& rng, size_t n,
                                   uint32_t max_gap) {
  std::vector<uint32_t> out(n);
  uint32_t v = rng() % 5;
  for (size_t i = 0; i < n; ++i) {
    out[i] = v;
    v += 1 + rng() % max_gap;
  }
  return out;
}

TEST(SimdKernelsTest, IntersectPositionsParity) {
  std::mt19937 rng(1234);
  for (const SpanKernels* k : AvailableVariants()) {
    SCOPED_TRACE(k->name);
    for (size_t na : kSizes) {
      for (size_t nb : {size_t{0}, size_t{1}, size_t{7}, size_t{16},
                        size_t{33}}) {
        for (uint32_t max_gap : {1u, 3u, 50u}) {
          std::vector<uint32_t> a = AscendingIds(rng, na, max_gap);
          std::vector<uint32_t> b = AscendingIds(rng, nb, max_gap);
          std::vector<uint32_t> expect(std::min(na, nb)),
              got(std::min(na, nb));
          size_t en = ScalarKernels().intersect_pos_u32(
              a.data(), na, b.data(), nb, expect.data());
          size_t gn =
              k->intersect_pos_u32(a.data(), na, b.data(), nb, got.data());
          ASSERT_EQ(en, gn) << "na=" << na << " nb=" << nb;
          for (size_t i = 0; i < en; ++i) {
            ASSERT_EQ(expect[i], got[i]) << "na=" << na << " nb=" << nb;
          }
        }
      }
    }
  }
}

TEST(SimdKernelsTest, IntersectIdenticalAndDisjoint) {
  for (const SpanKernels* k : AvailableVariants()) {
    SCOPED_TRACE(k->name);
    std::vector<uint32_t> a = {1, 2, 3, 4, 5, 6, 7, 8, 9};
    std::vector<uint32_t> pos(a.size());
    // Full overlap: every position in order.
    ASSERT_EQ(k->intersect_pos_u32(a.data(), a.size(), a.data(), a.size(),
                                   pos.data()),
              a.size());
    for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(pos[i], i);
    // Disjoint (interleaved) ids: no matches.
    std::vector<uint32_t> b = {10, 20, 30, 40};
    EXPECT_EQ(k->intersect_pos_u32(a.data(), a.size(), b.data(), b.size(),
                                   pos.data()),
              0u);
  }
}

TEST(SimdKernelsTest, DispatchHonorsForceScalar) {
  const char* force = std::getenv("SIMSEL_FORCE_SCALAR");
  const bool forced =
      force != nullptr && *force != '\0' && std::string(force) != "0";
  if (forced) {
    EXPECT_STREQ(Kernels().name, "scalar");
  } else {
    // Unforced: the dispatched table must be one of the variants this
    // machine actually supports (the best one, but "one of" is the portable
    // assertion).
    bool known = false;
    for (const SpanKernels* k : AvailableVariants()) {
      if (&Kernels() == k) known = true;
    }
    EXPECT_TRUE(known) << Kernels().name;
  }
}

}  // namespace
}  // namespace simsel::simd
