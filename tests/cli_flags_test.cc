// Regression tests for the strict CLI numeric-flag parsing (PR 9's
// serving-path hardening): a present flag must parse in full and fall
// inside its documented range or the parse fails with a diagnostic — no
// typo may silently fall back to a default.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/cli_flags.h"

namespace simsel {
namespace {

/// argv builder: prepends the program name and keeps the strings alive.
class Argv {
 public:
  explicit Argv(std::vector<std::string> args) : strings_(std::move(args)) {
    strings_.insert(strings_.begin(), "simsel_cli");
    for (std::string& s : strings_) ptrs_.push_back(s.data());
  }
  int argc() const { return static_cast<int>(ptrs_.size()); }
  char* const* argv() const { return ptrs_.data(); }

 private:
  std::vector<std::string> strings_;
  std::vector<char*> ptrs_;
};

uint64_t MustParse(const Argv& a, const char* key, uint64_t fallback,
                   uint64_t lo, uint64_t hi) {
  uint64_t out = 0;
  std::string error;
  EXPECT_TRUE(
      cli::ParseCountFlag(a.argc(), a.argv(), key, fallback, lo, hi, &out,
                          &error))
      << error;
  return out;
}

std::string MustFail(const Argv& a, const char* key, uint64_t lo,
                     uint64_t hi) {
  uint64_t out = 0;
  std::string error;
  EXPECT_FALSE(
      cli::ParseCountFlag(a.argc(), a.argv(), key, 7, lo, hi, &out, &error));
  EXPECT_FALSE(error.empty());
  // The failure must never leak a value: the caller prints and exits.
  return error;
}

TEST(ParseCountFlagTest, AbsentFlagKeepsFallback) {
  Argv a({"query", "--other=3"});
  EXPECT_EQ(MustParse(a, "shards", 42, 0, 100), 42u);
}

TEST(ParseCountFlagTest, WellFormedValuesParse) {
  EXPECT_EQ(MustParse(Argv({"--shards=4"}), "shards", 1, 1, 256), 4u);
  EXPECT_EQ(MustParse(Argv({"--port=0"}), "port", 1, 0, 65535), 0u);
  EXPECT_EQ(MustParse(Argv({"--port=65535"}), "port", 1, 0, 65535), 65535u);
  EXPECT_EQ(MustParse(Argv({"--n=18446744073709551615"}), "n", 0, 0,
                      std::numeric_limits<uint64_t>::max()),
            std::numeric_limits<uint64_t>::max());
}

TEST(ParseCountFlagTest, LastOccurrenceWins) {
  Argv a({"--shards=2", "--shards=9"});
  EXPECT_EQ(MustParse(a, "shards", 1, 1, 256), 9u);
}

TEST(ParseCountFlagTest, TrailingJunkIsRejectedNotTruncated) {
  // The motivating bug class: strtoull("4x") == 4, so `--shards=4x` used to
  // run with 4 shards as if the typo were intentional.
  std::string error = MustFail(Argv({"--shards=4x"}), "shards", 1, 256);
  EXPECT_NE(error.find("--shards"), std::string::npos);
  EXPECT_NE(error.find("4x"), std::string::npos);
  EXPECT_NE(error.find("not an unsigned integer"), std::string::npos);
}

TEST(ParseCountFlagTest, NonDigitFormsAreRejected) {
  for (const char* bad : {"--k=+4", "--k=-1", "--k=0x10", "--k= 12",
                          "--k=12 ", "--k=", "--k=4.0", "--k=1e3"}) {
    MustFail(Argv({bad}), "k", 0, std::numeric_limits<uint64_t>::max());
  }
}

TEST(ParseCountFlagTest, OverflowIsRejected) {
  // One past UINT64_MAX: strtoull saturates with ERANGE; must not wrap or
  // silently clamp.
  MustFail(Argv({"--n=18446744073709551616"}), "n", 0,
           std::numeric_limits<uint64_t>::max());
}

TEST(ParseCountFlagTest, RangeIsEnforcedWithBoundsInTheMessage) {
  std::string error = MustFail(Argv({"--port=70000"}), "port", 0, 65535);
  EXPECT_NE(error.find("[0, 65535]"), std::string::npos);
  MustFail(Argv({"--shards=0"}), "shards", 1, 256);
  MustFail(Argv({"--shards=257"}), "shards", 1, 256);
  EXPECT_EQ(MustParse(Argv({"--shards=1"}), "shards", 4, 1, 256), 1u);
  EXPECT_EQ(MustParse(Argv({"--shards=256"}), "shards", 4, 1, 256), 256u);
}

TEST(ParseTauFlagTest, BothFormsAndBothConventions) {
  double tau = 0.0;
  std::string error;
  Argv eq({"--tau=0.75"});
  EXPECT_TRUE(cli::ParseTauFlag(eq.argc(), eq.argv(), 0.5, &tau, &error));
  EXPECT_DOUBLE_EQ(tau, 0.75);
  Argv space({"--tau", "0.25"});
  EXPECT_TRUE(
      cli::ParseTauFlag(space.argc(), space.argv(), 0.5, &tau, &error));
  EXPECT_DOUBLE_EQ(tau, 0.25);
  Argv pct({"--tau=80"});  // percentage convention
  EXPECT_TRUE(cli::ParseTauFlag(pct.argc(), pct.argv(), 0.5, &tau, &error));
  EXPECT_DOUBLE_EQ(tau, 0.8);
  Argv absent({"query"});
  EXPECT_TRUE(
      cli::ParseTauFlag(absent.argc(), absent.argv(), 0.5, &tau, &error));
  EXPECT_DOUBLE_EQ(tau, 0.5);
}

TEST(ParseTauFlagTest, MalformedAndOutOfRangeFail) {
  for (std::vector<std::string> bad :
       {std::vector<std::string>{"--tau=abc"},
        std::vector<std::string>{"--tau=0.5x"},
        std::vector<std::string>{"--tau=0"},
        std::vector<std::string>{"--tau=-0.5"},
        std::vector<std::string>{"--tau=101"},
        std::vector<std::string>{"--tau=inf"},
        std::vector<std::string>{"--tau=nan"}}) {
    double tau = 0.0;
    std::string error;
    Argv a(bad);
    EXPECT_FALSE(cli::ParseTauFlag(a.argc(), a.argv(), 0.5, &tau, &error))
        << bad[0];
    EXPECT_FALSE(error.empty());
  }
}

TEST(HasFlagAndStringFlagTest, ExactMatchAndValueExtraction) {
  Argv a({"serve", "--dynamic", "--listen=0.0.0.0", "--dynamic2"});
  EXPECT_TRUE(cli::HasFlag(a.argc(), a.argv(), "--dynamic"));
  EXPECT_FALSE(cli::HasFlag(a.argc(), a.argv(), "--dyn"));
  EXPECT_EQ(cli::StringFlag(a.argc(), a.argv(), "listen"), "0.0.0.0");
  EXPECT_EQ(cli::StringFlag(a.argc(), a.argv(), "port"), "");
}

}  // namespace
}  // namespace simsel
