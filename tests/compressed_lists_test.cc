#include <gtest/gtest.h>

#include "core/sort_by_id.h"
#include "index/compressed_lists.h"
#include "test_util.h"

namespace simsel {
namespace {

using testing_util::MakeSelector;

const SimilaritySelector& Selector() {
  static const SimilaritySelector* selector = new SimilaritySelector(
      MakeSelector(400, /*seed=*/601, /*with_sql=*/false));
  return *selector;
}

const CompressedIdLists& Lists() {
  static const CompressedIdLists* lists =
      new CompressedIdLists(CompressedIdLists::Build(Selector().index()));
  return *lists;
}

TEST(CompressedListsTest, DecodesEveryListExactly) {
  const InvertedIndex& index = Selector().index();
  const CompressedIdLists& lists = Lists();
  ASSERT_EQ(lists.num_tokens(), index.num_tokens());
  EXPECT_EQ(lists.total_postings(), index.total_postings());
  for (TokenId t = 0; t < index.num_tokens(); ++t) {
    ASSERT_EQ(lists.ListSize(t), index.ListSize(t));
    const uint32_t* ids = index.IdIds(t);
    const float* lens = index.IdLens(t);
    size_t i = 0;
    for (auto cursor = lists.OpenList(t); cursor.Valid(); cursor.Next(), ++i) {
      ASSERT_EQ(cursor.id(), ids[i]) << "token " << t << " pos " << i;
      ASSERT_EQ(lists.set_length(cursor.id()), lens[i]);
    }
    EXPECT_EQ(i, index.ListSize(t));
  }
}

TEST(CompressedListsTest, CompressionActuallySaves) {
  const InvertedIndex& index = Selector().index();
  const CompressedIdLists& lists = Lists();
  // The blob should be well under the 8 bytes/posting of raw postings.
  EXPECT_LT(lists.BlobBytes(), index.total_postings() * 4);
  EXPECT_LT(lists.SizeBytes(), index.ListBytesOneOrder());
}

TEST(CompressedListsTest, MergeMatchesUncompressed) {
  const SimilaritySelector& sel = Selector();
  const CompressedIdLists& lists = Lists();
  for (double tau : {0.5, 0.8, 0.95}) {
    for (SetId s = 0; s < 15; ++s) {
      PreparedQuery q = sel.Prepare(sel.collection().text(s * 7));
      QueryResult expected =
          SortByIdSelect(sel.index(), sel.measure(), q, tau);
      QueryResult actual =
          SortByIdCompressedSelect(lists, sel.measure(), q, tau);
      testing_util::ExpectSameMatches(expected.matches, actual.matches,
                                      "tau=" + std::to_string(tau));
      // Same number of postings consumed.
      EXPECT_EQ(actual.counters.elements_read,
                expected.counters.elements_read);
    }
  }
}

TEST(CompressedListsTest, AccountingConserved) {
  const SimilaritySelector& sel = Selector();
  PreparedQuery q = sel.Prepare(sel.collection().text(2));
  QueryResult r = SortByIdCompressedSelect(Lists(), sel.measure(), q, 0.8);
  EXPECT_EQ(r.counters.elements_read, r.counters.elements_total);
  EXPECT_GT(r.counters.seq_page_reads, 0u);
}

TEST(CompressedListsTest, EmptyQuery) {
  const SimilaritySelector& sel = Selector();
  PreparedQuery q = sel.Prepare("");
  EXPECT_TRUE(
      SortByIdCompressedSelect(Lists(), sel.measure(), q, 0.5).matches.empty());
}

}  // namespace
}  // namespace simsel
