#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "index/inverted_index.h"
#include "storage/paged_file.h"
#include "test_util.h"

namespace simsel {
namespace {

struct Fixture {
  explicit Fixture(size_t n = 300, InvertedIndexOptions opts = {})
      : tokenizer(TokenizerOptions{.q = 3}),
        collection(Collection::Build(
            testing_util::MakeWordRecords(n, /*seed=*/5), tokenizer)),
        measure(collection),
        index(InvertedIndex::Build(collection, measure, opts)) {}

  Tokenizer tokenizer;
  Collection collection;
  IdfMeasure measure;
  InvertedIndex index;
};

TEST(InvertedIndexTest, EveryPostingMatchesCollection) {
  Fixture f;
  uint64_t postings = 0;
  for (TokenId t = 0; t < f.index.num_tokens(); ++t) {
    size_t n = f.index.ListSize(t);
    postings += n;
    const uint32_t* ids = f.index.LenIds(t);
    const float* lens = f.index.LenLens(t);
    for (size_t i = 0; i < n; ++i) {
      EXPECT_TRUE(f.collection.Contains(ids[i], t));
      EXPECT_FLOAT_EQ(lens[i], f.measure.set_length(ids[i]));
    }
  }
  EXPECT_EQ(postings, f.index.total_postings());
  // Total postings = Σ per-set distinct tokens.
  uint64_t expected = 0;
  for (SetId s = 0; s < f.collection.size(); ++s) {
    expected += f.collection.set(s).tokens.size();
  }
  EXPECT_EQ(postings, expected);
}

TEST(InvertedIndexTest, ByLengthListsSortedLenThenId) {
  // Property 1 substrate: the sort order that makes per-list contributions
  // decrease monotonically.
  Fixture f;
  for (TokenId t = 0; t < f.index.num_tokens(); ++t) {
    size_t n = f.index.ListSize(t);
    const uint32_t* ids = f.index.LenIds(t);
    const float* lens = f.index.LenLens(t);
    for (size_t i = 1; i < n; ++i) {
      ASSERT_TRUE(lens[i - 1] < lens[i] ||
                  (lens[i - 1] == lens[i] && ids[i - 1] < ids[i]))
          << "token " << t << " pos " << i;
    }
  }
}

TEST(InvertedIndexTest, ByIdListsSortedById) {
  Fixture f;
  for (TokenId t = 0; t < f.index.num_tokens(); ++t) {
    size_t n = f.index.ListSize(t);
    const uint32_t* ids = f.index.IdIds(t);
    ASSERT_NE(ids, nullptr);
    for (size_t i = 1; i < n; ++i) {
      ASSERT_LT(ids[i - 1], ids[i]);
    }
  }
}

TEST(InvertedIndexTest, ListSizesMatchDf) {
  Fixture f;
  for (TokenId t = 0; t < f.index.num_tokens(); ++t) {
    EXPECT_EQ(f.index.ListSize(t), f.collection.dictionary().df(t));
  }
}

TEST(InvertedIndexTest, HashIndexAgreesWithLists) {
  Fixture f;
  for (TokenId t = 0; t < f.index.num_tokens(); ++t) {
    const ExtendibleHash* hash = f.index.hash(t);
    size_t n = f.index.ListSize(t);
    if (n == 0) {
      EXPECT_EQ(hash, nullptr);
      continue;
    }
    ASSERT_NE(hash, nullptr);
    EXPECT_EQ(hash->size(), n);
    const uint32_t* ids = f.index.LenIds(t);
    const float* lens = f.index.LenLens(t);
    for (size_t i = 0; i < n; ++i) {
      float len = 0;
      ASSERT_TRUE(hash->Lookup(ids[i], &len));
      EXPECT_FLOAT_EQ(len, lens[i]);
    }
  }
}

TEST(InvertedIndexTest, SkipIndexOnlyOnLongLists) {
  InvertedIndexOptions opts;
  opts.skip_fanout = 8;
  Fixture f(300, opts);
  for (TokenId t = 0; t < f.index.num_tokens(); ++t) {
    const SkipIndex* skip = f.index.skip(t);
    if (f.index.ListSize(t) > 8) {
      EXPECT_NE(skip, nullptr) << "token " << t;
    } else {
      EXPECT_EQ(skip, nullptr) << "token " << t;
    }
  }
}

TEST(InvertedIndexTest, OptionalStructuresCanBeDisabled) {
  InvertedIndexOptions opts;
  opts.build_id_lists = false;
  opts.build_skip = false;
  opts.build_hash = false;
  Fixture f(100, opts);
  EXPECT_EQ(f.index.IdIds(0), nullptr);
  EXPECT_EQ(f.index.skip(0), nullptr);
  EXPECT_EQ(f.index.hash(0), nullptr);
  EXPECT_EQ(f.index.SkipBytes(), 0u);
  EXPECT_EQ(f.index.HashBytes(), 0u);
}

TEST(InvertedIndexTest, SizeAccounting) {
  Fixture f;
  EXPECT_EQ(f.index.ListBytesOneOrder(), f.index.total_postings() * 8);
  EXPECT_GT(f.index.ListBytesTotal(), 2 * f.index.ListBytesOneOrder());
  EXPECT_GT(f.index.HashBytes(), 0u);
  // Skip lists are tiny relative to the lists themselves.
  EXPECT_LT(f.index.SkipBytes(), f.index.ListBytesOneOrder());
}

TEST(InvertedIndexTest, ValidatePasses) {
  Fixture f;
  EXPECT_TRUE(f.index.Validate());
  InvertedIndexOptions bare;
  bare.build_id_lists = false;
  bare.build_hash = false;
  bare.build_skip = false;
  Fixture minimal(150, bare);
  EXPECT_TRUE(minimal.index.Validate());
}

TEST(InvertedIndexTest, SaveLoadRoundtrip) {
  Fixture f;
  auto path =
      (std::filesystem::temp_directory_path() / "simsel_index.bin").string();
  ASSERT_TRUE(f.index.Save(path).ok());
  Result<InvertedIndex> loaded = InvertedIndex::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->num_tokens(), f.index.num_tokens());
  ASSERT_EQ(loaded->total_postings(), f.index.total_postings());
  for (TokenId t = 0; t < f.index.num_tokens(); ++t) {
    ASSERT_EQ(loaded->ListSize(t), f.index.ListSize(t));
    for (size_t i = 0; i < f.index.ListSize(t); ++i) {
      ASSERT_EQ(loaded->LenIds(t)[i], f.index.LenIds(t)[i]);
      ASSERT_EQ(loaded->LenLens(t)[i], f.index.LenLens(t)[i]);
      ASSERT_EQ(loaded->IdIds(t)[i], f.index.IdIds(t)[i]);
    }
    // Derived structures are rebuilt.
    EXPECT_EQ(loaded->skip(t) != nullptr, f.index.skip(t) != nullptr);
    EXPECT_EQ(loaded->hash(t) != nullptr, f.index.hash(t) != nullptr);
  }
  EXPECT_TRUE(loaded->Validate());
  std::remove(path.c_str());
}

TEST(InvertedIndexTest, LoadRejectsGarbage) {
  auto path =
      (std::filesystem::temp_directory_path() / "simsel_garbage.bin").string();
  {
    PagedFile file(4096);
    file.Append("not an index at all", 19);
    ASSERT_TRUE(file.SaveToFile(path).ok());
  }
  Result<InvertedIndex> loaded = InvertedIndex::Load(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace simsel
