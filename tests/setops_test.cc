#include <gtest/gtest.h>

#include <cmath>

#include "core/linear_scan.h"
#include "sim/setops.h"
#include "text/tokenizer.h"

namespace simsel {
namespace {

struct Fixture {
  Fixture()
      : tokenizer(TokenizerOptions{.kind = TokenizerKind::kWord}),
        collection(Collection::Build(
            {"a b c d", "a b c", "a b", "x y z", "a"}, tokenizer)) {}

  PreparedQuery Prepare(const SimilarityMeasure& m, const std::string& text) {
    return m.PrepareQuery(tokenizer.TokenizeCounted(text));
  }

  Tokenizer tokenizer;
  Collection collection;
};

TEST(SetOpsTest, JaccardValues) {
  Fixture f;
  SetOverlapMeasure jaccard(f.collection, SetOverlapKind::kJaccard);
  PreparedQuery q = f.Prepare(jaccard, "a b c");
  EXPECT_DOUBLE_EQ(jaccard.Score(q, 0), 3.0 / 4.0);  // {abc} vs {abcd}
  EXPECT_DOUBLE_EQ(jaccard.Score(q, 1), 1.0);
  EXPECT_DOUBLE_EQ(jaccard.Score(q, 2), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(jaccard.Score(q, 3), 0.0);
}

TEST(SetOpsTest, DiceValues) {
  Fixture f;
  SetOverlapMeasure dice(f.collection, SetOverlapKind::kDice);
  PreparedQuery q = f.Prepare(dice, "a b c");
  EXPECT_DOUBLE_EQ(dice.Score(q, 0), 2.0 * 3 / (3 + 4));
  EXPECT_DOUBLE_EQ(dice.Score(q, 1), 1.0);
}

TEST(SetOpsTest, CosineValues) {
  Fixture f;
  SetOverlapMeasure cosine(f.collection, SetOverlapKind::kCosine);
  PreparedQuery q = f.Prepare(cosine, "a b c");
  EXPECT_DOUBLE_EQ(cosine.Score(q, 0), 3.0 / std::sqrt(3.0 * 4.0));
}

TEST(SetOpsTest, OverlapCoefficient) {
  Fixture f;
  SetOverlapMeasure overlap(f.collection, SetOverlapKind::kOverlap);
  PreparedQuery q = f.Prepare(overlap, "a b c");
  // {a} ⊂ {a,b,c}: overlap coefficient is 1 for containment.
  EXPECT_DOUBLE_EQ(overlap.Score(q, 4), 1.0);
}

TEST(SetOpsTest, UnknownTokensDiluteScores) {
  Fixture f;
  SetOverlapMeasure jaccard(f.collection, SetOverlapKind::kJaccard);
  PreparedQuery clean = f.Prepare(jaccard, "a b c");
  PreparedQuery noisy = f.Prepare(jaccard, "a b c zzz");
  EXPECT_GT(jaccard.Score(clean, 1), jaccard.Score(noisy, 1));
}

TEST(SetOpsTest, ScoresInUnitInterval) {
  Fixture f;
  for (SetOverlapKind kind :
       {SetOverlapKind::kJaccard, SetOverlapKind::kDice,
        SetOverlapKind::kCosine, SetOverlapKind::kOverlap}) {
    SetOverlapMeasure m(f.collection, kind);
    PreparedQuery q = f.Prepare(m, "a b x");
    for (SetId s = 0; s < f.collection.size(); ++s) {
      double score = m.Score(q, s);
      EXPECT_GE(score, 0.0);
      EXPECT_LE(score, 1.0);
    }
  }
}

TEST(SetOpsTest, WorksWithLinearScanSelect) {
  Fixture f;
  SetOverlapMeasure jaccard(f.collection, SetOverlapKind::kJaccard);
  PreparedQuery q = f.Prepare(jaccard, "a b c");
  QueryResult r = LinearScanSelect(jaccard, f.collection, q, 0.7);
  ASSERT_EQ(r.matches.size(), 2u);  // sets 0 (0.75) and 1 (1.0)
  EXPECT_EQ(r.matches[0].id, 0u);
  EXPECT_EQ(r.matches[1].id, 1u);
}

TEST(SetOpsTest, NamesAreDistinct) {
  Fixture f;
  SetOverlapMeasure a(f.collection, SetOverlapKind::kJaccard);
  SetOverlapMeasure b(f.collection, SetOverlapKind::kDice);
  EXPECT_NE(a.name(), b.name());
}

}  // namespace
}  // namespace simsel
