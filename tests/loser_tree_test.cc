#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "container/loser_tree.h"

namespace simsel {
namespace {

// Merges k sorted lists through the loser tree and returns the output order.
std::vector<uint32_t> MergeWithTree(
    const std::vector<std::vector<uint32_t>>& lists) {
  size_t k = lists.size();
  std::vector<size_t> pos(k, 0);
  LoserTree<uint32_t> tree(k);
  for (size_t i = 0; i < k; ++i) {
    tree.SetInitial(i, lists[i].empty() ? 0 : lists[i][0], !lists[i].empty());
  }
  tree.Build();
  std::vector<uint32_t> out;
  while (!tree.empty()) {
    size_t i = tree.top_source();
    out.push_back(tree.top_key());
    ++pos[i];
    bool valid = pos[i] < lists[i].size();
    tree.Replace(valid ? lists[i][pos[i]] : 0, valid);
  }
  return out;
}

TEST(LoserTreeTest, MergesTwoLists) {
  std::vector<std::vector<uint32_t>> lists = {{1, 3, 5}, {2, 4, 6}};
  EXPECT_EQ(MergeWithTree(lists), (std::vector<uint32_t>{1, 2, 3, 4, 5, 6}));
}

TEST(LoserTreeTest, SingleSource) {
  std::vector<std::vector<uint32_t>> lists = {{7, 8, 9}};
  EXPECT_EQ(MergeWithTree(lists), (std::vector<uint32_t>{7, 8, 9}));
}

TEST(LoserTreeTest, EmptySources) {
  std::vector<std::vector<uint32_t>> lists = {{}, {5}, {}};
  EXPECT_EQ(MergeWithTree(lists), (std::vector<uint32_t>{5}));
}

TEST(LoserTreeTest, AllEmpty) {
  std::vector<std::vector<uint32_t>> lists = {{}, {}};
  EXPECT_TRUE(MergeWithTree(lists).empty());
}

TEST(LoserTreeTest, DuplicateKeysAcrossLists) {
  std::vector<std::vector<uint32_t>> lists = {{1, 2, 2}, {2, 2, 3}};
  EXPECT_EQ(MergeWithTree(lists), (std::vector<uint32_t>{1, 2, 2, 2, 2, 3}));
}

TEST(LoserTreeTest, TieBreaksBySourceIndex) {
  LoserTree<uint32_t> tree(3);
  tree.SetInitial(0, 5, true);
  tree.SetInitial(1, 5, true);
  tree.SetInitial(2, 5, true);
  tree.Build();
  EXPECT_EQ(tree.top_source(), 0u);
  tree.Replace(0, false);
  EXPECT_EQ(tree.top_source(), 1u);
  tree.Replace(0, false);
  EXPECT_EQ(tree.top_source(), 2u);
}

TEST(LoserTreeTest, RandomizedAgainstStdSort) {
  Rng rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    size_t k = 1 + rng.NextBounded(9);  // 1..9 sources, odd counts included
    std::vector<std::vector<uint32_t>> lists(k);
    std::vector<uint32_t> expected;
    for (auto& list : lists) {
      size_t len = rng.NextBounded(40);
      for (size_t i = 0; i < len; ++i) {
        list.push_back(static_cast<uint32_t>(rng.NextBounded(100)));
      }
      std::sort(list.begin(), list.end());
      expected.insert(expected.end(), list.begin(), list.end());
    }
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(MergeWithTree(lists), expected) << "trial " << trial;
  }
}

}  // namespace
}  // namespace simsel
